/**
 * @file
 * Regenerates the Sec. VI-D sparsity sweep: ViTCoD's average
 * speedups over all five baselines across 60/70/80/90% attention
 * sparsity (paper: 127.2x / 77.0x / 46.5x / 6.8x / 4.3x over CPU /
 * EdgeGPU / GPU / SpAtten / Sanger).
 */

#include <iostream>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"

using namespace vitcod;

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    bench::printHeader(
        "Sec. VI-D - speedups across sparsity ratios",
        "paper averages across 60/70/80/90%: 127.2x/77.0x/46.5x/"
        "6.8x/4.3x over CPU/EdgeGPU/GPU/SpAtten/Sanger");

    auto devices = accel::makeAllDevices();
    bench::PlanCache cache;
    std::vector<double> ratios = {0.6, 0.7, 0.8, 0.9};
    std::vector<model::VitModelConfig> models =
        model::coreSixModels();
    if (opts.smoke) { // plan builds dominate the wall time
        ratios = {0.9};
        models = {model::deitTiny()};
    }

    std::map<std::string, RunningStat> per_ratio_all;
    Table t({"Sparsity", "vs CPU", "vs EdgeGPU", "vs GPU",
             "vs SpAtten", "vs Sanger"});
    std::map<std::string, RunningStat> overall;
    for (double s : ratios) {
        std::map<std::string, RunningStat> stat;
        for (const auto &m : models) {
            const auto &plan = cache.get(m, s, true);
            std::map<std::string, double> secs;
            for (auto &d : devices)
                secs[d->name()] = d->runAttention(plan).seconds;
            for (auto &d : devices) {
                if (d->name() == "ViTCoD")
                    continue;
                const double ratio =
                    secs[d->name()] / secs["ViTCoD"];
                stat[d->name()].add(ratio);
                overall[d->name()].add(ratio);
            }
        }
        t.row().cell(s * 100.0, 0);
        for (const char *b :
             {"CPU", "EdgeGPU", "GPU", "SpAtten", "Sanger"})
            t.cellRatio(stat[b].geomean(), 1);
    }
    t.row().cell("avg");
    for (const char *b :
         {"CPU", "EdgeGPU", "GPU", "SpAtten", "Sanger"})
        t.cellRatio(overall[b].geomean(), 1);
    t.print(std::cout);

    std::cout << "\nReading: ViTCoD's lead grows with sparsity (its "
                 "latency scales with surviving nonzeros while the "
                 "baselines' does not), matching the paper's "
                 "60->90% trend.\n";
    return 0;
}
