/**
 * @file
 * Full-model forward-pass throughput bench and the second source of
 * perf-regression CI JSON rows. For each model (DeiT-Tiny, and
 * DeiT-Small outside --smoke) it builds the ViTCoD plan at the
 * model's nominal sparsity, draws one weight set, and times the
 * whole forward pass — patch embed, every layer's QKV / per-head
 * sparse attention / projection / MLP, classifier — three ways:
 *
 *  - ModelExecutor on a Reference-pinned engine (the scalar
 *    baseline),
 *  - ModelExecutor on an Optimized engine, single-threaded,
 *  - ModelExecutor on an Optimized engine over a ThreadPool
 *    (--threads N, default 4).
 *
 * One JsonRow per measurement; speedups are ratios of two timings
 * from the same run, so the CI gate (bench/baselines/
 * model_exec_baseline.json via scripts/check_perf_regression.py)
 * is robust to runner speed. The gated row: DeiT-Tiny forward at
 * threads=1 must hold its min_speedup floor.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/model_exec/model_executor.h"
#include "core/pipeline.h"
#include "linalg/engine/thread_pool.h"

using namespace vitcod;
using core::model_exec::ExecTrace;
using core::model_exec::ExecutorConfig;
using core::model_exec::ModelExecutor;
using core::model_exec::ModelWeights;

namespace {

/** Best-of-R wall time of @p fn in milliseconds. */
template <typename Fn>
double
bestMs(size_t reps, Fn &&fn)
{
    double best = 1e300;
    for (size_t i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double, std::milli>(t1 - t0)
                      .count());
    }
    return best;
}

double
sink(const linalg::Matrix &m)
{
    // Cheap data dependence so the optimizer cannot drop the run.
    return static_cast<double>(m(0, 0)) +
           m(m.rows() - 1, m.cols() - 1);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    // Best-of-2 even in smoke: the gated speedup is a ratio of two
    // single measurements, and one scheduling hiccup on a shared CI
    // runner should not fail the perf gate.
    const size_t reps = opts.smoke ? 2 : 3;
    const size_t mt_threads = opts.threads ? opts.threads : 4;
    const size_t num_classes = 1000;

    if (!opts.json)
        bench::printHeader("full-model forward latency",
                           "Fig. 15/17 latency axis (CPU execution)");

    std::vector<std::string> models = {"DeiT-Tiny"};
    if (!opts.smoke)
        models.push_back("DeiT-Small");

    linalg::engine::ThreadPool pool(mt_threads);
    const linalg::engine::KernelEngine ref_eng(
        {.tier = linalg::engine::KernelTier::Reference});
    const linalg::engine::KernelEngine opt1(
        {.tier = linalg::engine::KernelTier::Optimized});
    const linalg::engine::KernelEngine optN(
        {.tier = linalg::engine::KernelTier::Optimized}, &pool);

    double guard = 0.0;
    for (const std::string &name : models) {
        const auto m = model::modelByName(name);
        const auto plan = core::buildModelPlan(
            m, core::makePipelineConfig(m.nominalSparsity, false));

        Rng rng(opts.seed);
        const ExecutorConfig ecfg{.numClasses = num_classes};
        const ModelWeights w =
            ModelWeights::random(m, 0, num_classes, rng);
        const auto input = linalg::Matrix::randomNormal(
            m.stages[0].tokens, m.stages[0].embedDim, rng);

        ModelExecutor ref_exec(&plan, ModelWeights(w), ecfg,
                               &ref_eng);
        ModelExecutor opt_exec(&plan, ModelWeights(w), ecfg, &opt1);
        ModelExecutor mt_exec(&plan, ModelWeights(w), ecfg, &optN);

        const double ref_ms =
            bestMs(reps, [&] { guard += sink(ref_exec.forward(input)); });
        const double opt_ms =
            bestMs(reps, [&] { guard += sink(opt_exec.forward(input)); });
        const double mt_ms =
            bestMs(reps, [&] { guard += sink(mt_exec.forward(input)); });

        ExecTrace trace;
        guard += sink(opt_exec.forward(input, &trace));
        const double gmacs =
            static_cast<double>(trace.totalMacs) / 1e9;

        const auto n = static_cast<uint64_t>(m.stages[0].tokens);
        const auto d = static_cast<uint64_t>(m.stages[0].embedDim);
        bench::JsonRow()
            .set("bench", "model_exec")
            .set("kernel", "forward")
            .set("model", name)
            .set("n", n)
            .set("d", d)
            .set("sparsity", m.nominalSparsity)
            .set("layers", static_cast<uint64_t>(m.totalLayers()))
            .set("threads", 1)
            .set("ref_ms", ref_ms)
            .set("opt_ms", opt_ms)
            .set("speedup", ref_ms / opt_ms)
            .set("gmacs", gmacs)
            .set("opt_gmacps", gmacs / (opt_ms * 1e-3))
            .print();
        // --threads 1 would duplicate the single-thread row's
        // perf-gate identity keys and shadow the gated measurement.
        if (mt_threads != 1)
            bench::JsonRow()
                .set("bench", "model_exec")
                .set("kernel", "forward")
                .set("model", name)
                .set("n", n)
                .set("d", d)
                .set("sparsity", m.nominalSparsity)
                .set("layers",
                     static_cast<uint64_t>(m.totalLayers()))
                .set("threads", static_cast<uint64_t>(mt_threads))
                .set("ref_ms", ref_ms)
                .set("opt_ms", mt_ms)
                .set("speedup", ref_ms / mt_ms)
                .set("scaling_vs_1t", opt_ms / mt_ms)
                .set("gmacs", gmacs)
                .set("opt_gmacps", gmacs / (mt_ms * 1e-3))
                .print();

        // Batch amortization row: per-sample latency of a batch-4
        // forward through the warm arena + mask-structure cache.
        const size_t batch = 4;
        std::vector<linalg::Matrix> inputs(batch, input);
        const double batch_ms = bestMs(reps, [&] {
            guard += sink(mt_exec.forwardBatch(inputs).front());
        });
        bench::JsonRow()
            .set("bench", "model_exec")
            .set("kernel", "forward_batch")
            .set("model", name)
            .set("n", n)
            .set("d", d)
            .set("sparsity", m.nominalSparsity)
            .set("batch", static_cast<uint64_t>(batch))
            .set("threads", static_cast<uint64_t>(mt_threads))
            .set("batch_ms", batch_ms)
            .set("per_sample_ms", batch_ms / static_cast<double>(batch))
            .print();

        // The executor must have stayed inside its arena.
        if (opt_exec.arena().growths() != 0 ||
            mt_exec.arena().growths() != 0)
            fatal("bench_model_exec: arena grew after reservation");
    }

    if (!opts.json)
        std::printf("# guard %.3g (ignore; defeats dead-code elim)\n",
                    guard);

    const auto st = opt1.stats();
    if (st.gemmOptimized == 0 || st.spmmOptimized == 0)
        fatal("bench_model_exec: optimized path never dispatched");
    return 0;
}
