/**
 * @file
 * Pipelined-simulator bench: prices the same schedules under
 * SimMode::Analytic and SimMode::Pipelined (sim/pipeline_model.h)
 * and reports (a) the cycle ratio between the two — exactly 1.0 on
 * a deep-FIFO machine, the validation contract of
 * docs/SIMULATOR.md, and > 1.0 on a shallow-FIFO machine behind a
 * starved DRAM where backpressure stalls are real — and (b) the
 * event-processing throughput of the machine itself. The ratios
 * are ratios of two cycle counts from the same run, so the
 * perf-smoke gate (bench/baselines/pipeline_baseline.json)
 * transfers across runner speeds; events/sec is gated only by a
 * loose absolute floor.
 */

#include <chrono>
#include <iostream>
#include <vector>

#include "accel/vitcod_accel.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "core/schedule/builder.h"

using namespace vitcod;

namespace {

/** End-to-end schedule of @p plan for @p cfg's hardware. */
core::schedule::ModelSchedule
scheduleFor(const accel::ViTCoDConfig &cfg,
            const core::ModelPlan &plan)
{
    const core::schedule::ScheduleBuilder builder(
        {.hw = accel::scheduleParams(cfg), .buildLayouts = false});
    return builder.build(plan, /*end_to_end=*/true);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    if (!opts.json)
        bench::printHeader(
            "Pipelined simulator - backpressure pricing and "
            "event throughput",
            "event-driven twin of the analytic recurrence; "
            "validation contract in docs/SIMULATOR.md");

    bench::PlanCache cache;
    const double sparsity = 0.9;
    std::vector<model::VitModelConfig> models = {model::deitTiny()};
    if (!opts.smoke) {
        models.push_back(model::deitSmall());
        models.push_back(model::deitBase());
    }

    Table t({"Model", "Analytic (us)", "Deep pipe (us)", "Ratio",
             "Starved analytic (us)", "Starved pipe (us)", "Ratio",
             "Stall share", "Events/s (M)"});
    for (const auto &m : models) {
        const auto &plan = cache.get(m, sparsity, true);

        // Deep-FIFO machine at the paper's bandwidth: stall-free,
        // must agree with the analytic recurrence cycle-exactly.
        accel::ViTCoDConfig deep_cfg;
        deep_cfg.pipeline.fetchFifoDepth = size_t{1} << 20;
        deep_cfg.pipeline.writebackFifoDepth = size_t{1} << 20;
        const accel::ViTCoDAccelerator deep(deep_cfg);
        const auto sched = scheduleFor(deep_cfg, plan);
        const accel::RunStats da =
            deep.runSchedule(sched, sim::SimMode::Analytic);
        const accel::RunStats dp =
            deep.runSchedule(sched, sim::SimMode::Pipelined);
        const double deep_ratio = static_cast<double>(dp.cycles) /
                                  static_cast<double>(da.cycles);

        // Shallow FIFOs + stage latencies behind an edge-class DRAM:
        // the pipelined model exposes stalls the recurrence cannot.
        accel::ViTCoDConfig tight_cfg;
        tight_cfg.dram.bandwidthGBps = 12.8;
        tight_cfg.pipeline.fetchFifoDepth = 2;
        tight_cfg.pipeline.writebackFifoDepth = 1;
        tight_cfg.pipeline.fifoChunkBytes = 1024;
        tight_cfg.pipeline.fetchLatency = 8;
        tight_cfg.pipeline.denserLatency = 4;
        tight_cfg.pipeline.sparserLatency = 4;
        tight_cfg.pipeline.writebackLatency = 8;
        const accel::ViTCoDAccelerator tight(tight_cfg);
        const accel::RunStats ta =
            tight.runSchedule(sched, sim::SimMode::Analytic);
        const accel::RunStats tp =
            tight.runSchedule(sched, sim::SimMode::Pipelined);
        const double tight_ratio = static_cast<double>(tp.cycles) /
                                   static_cast<double>(ta.cycles);
        const double stall_share =
            static_cast<double>(tp.pipeline.stallCycles()) /
            static_cast<double>(tp.pipeline.fetch.total() * 4);

        // Event throughput of the machine itself (wall time of the
        // whole pipelined pricing, events from its exact count).
        const int reps = opts.smoke ? 3 : 10;
        const auto t0 = std::chrono::steady_clock::now();
        uint64_t events = 0;
        for (int r = 0; r < reps; ++r)
            events +=
                tight.runSchedule(sched, sim::SimMode::Pipelined)
                    .pipeline.events;
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        const double events_per_sec =
            secs > 0.0 ? static_cast<double>(events) / secs : 0.0;

        if (opts.json) {
            const auto row = [&](const char *kernel, double value) {
                bench::JsonRow()
                    .set("bench", "pipeline")
                    .set("kernel", kernel)
                    .set("n", static_cast<uint64_t>(m.maxTokens()))
                    .set("d",
                         static_cast<uint64_t>(m.maxEmbedDim()))
                    .set("sparsity", sparsity)
                    .set("threads", 1)
                    .set("metric", "value")
                    .set("value", value)
                    .print();
            };
            row("cycle_ratio_deep", deep_ratio);
            row("cycle_ratio_tight", tight_ratio);
            row("events_per_sec", events_per_sec);
        } else {
            t.row()
                .cell(m.name)
                .cell(da.seconds * 1e6, 1)
                .cell(dp.seconds * 1e6, 1)
                .cellRatio(deep_ratio, 4)
                .cell(ta.seconds * 1e6, 1)
                .cell(tp.seconds * 1e6, 1)
                .cellRatio(tight_ratio, 3)
                .cell(stall_share, 3)
                .cell(events_per_sec / 1e6, 2);
        }
    }
    if (!opts.json) {
        t.print(std::cout);
        std::cout
            << "\nDeep ratio is the validation contract (== 1.0); "
               "the starved ratio is the backpressure the analytic "
               "model cannot see.\n";
    }
    return 0;
}
