/**
 * @file
 * Regenerates Fig. 4: FLOPs breakdown (top) and measured EdgeGPU
 * latency breakdown (bottom) for the seven evaluated models. The
 * paper's headline reading: the self-attention module is NOT the
 * FLOPs bottleneck but consistently exceeds 50% of the measured
 * latency (69% for LeViT-128), with the Q.K^T / S.V multiplies and
 * their reshapes at up to 53% of the attention module.
 */

#include <iostream>

#include "accel/platform.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "model/flops.h"

using namespace vitcod;
using model::OpGroup;

namespace {

double
groupPct(const model::Breakdown &b, OpGroup g)
{
    return 100.0 * model::groupOf(b, g).flops / model::totalFlops(b);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Fig. 4 - FLOPs and EdgeGPU latency breakdowns",
        "Fig. 4; SA module >50% of latency despite modest FLOPs "
        "share (Jetson TX2-class EdgeGPU)");

    printBanner(std::cout,
                "FLOPs breakdown (% of total, dense models)");
    Table f({"Model", "Attn(SA)%", "  QK+SV%", "MLP%", "LN%",
             "Other%"});
    for (const auto &m : model::allSevenModels()) {
        const auto b = model::modelBreakdown(m);
        const double sa = groupPct(b, OpGroup::QkvProj) +
                          groupPct(b, OpGroup::AttnMatMul) +
                          groupPct(b, OpGroup::Softmax) +
                          groupPct(b, OpGroup::OutProj);
        f.row()
            .cell(m.name)
            .cell(sa, 1)
            .cell(groupPct(b, OpGroup::AttnMatMul), 1)
            .cell(groupPct(b, OpGroup::Mlp), 1)
            .cell(groupPct(b, OpGroup::LayerNorm), 1)
            .cell(groupPct(b, OpGroup::Other), 1);
    }
    f.print(std::cout);

    printBanner(std::cout,
                "EdgeGPU (TX2) latency breakdown (% of end-to-end)");
    accel::PlatformModel edge(accel::edgeGpuTx2());
    Table l({"Model", "Total(ms)", "SA%", "  QK+SV+reshape% of SA",
             "MLP%", "Rest%"});
    for (const auto &m : model::allSevenModels()) {
        const double t_qkv = edge.opGroupSeconds(m, OpGroup::QkvProj);
        const double t_mm =
            edge.opGroupSeconds(m, OpGroup::AttnMatMul);
        const double t_rs = edge.opGroupSeconds(m, OpGroup::Reshape);
        const double t_sm = edge.opGroupSeconds(m, OpGroup::Softmax);
        const double t_op = edge.opGroupSeconds(m, OpGroup::OutProj);
        const double t_mlp = edge.opGroupSeconds(m, OpGroup::Mlp);
        const double t_ln =
            edge.opGroupSeconds(m, OpGroup::LayerNorm);
        const double t_other = edge.opGroupSeconds(m, OpGroup::Other);

        const double sa = t_qkv + t_mm + t_rs + t_sm + t_op;
        const double total = sa + t_mlp + t_ln + t_other;
        l.row()
            .cell(m.name)
            .cell(total * 1e3, 2)
            .cell(100.0 * sa / total, 1)
            .cell(100.0 * (t_mm + t_rs) / sa, 1)
            .cell(100.0 * t_mlp / total, 1)
            .cell(100.0 * (t_ln + t_other) / total, 1);
    }
    l.print(std::cout);

    std::cout << "\nReading: attention dominates measured latency "
                 "(>50% on every model) even though MLPs dominate "
                 "FLOPs - the paper's motivating observation.\n";
    return 0;
}
