/**
 * @file
 * Regenerates Fig. 15: (a) core attention speedups at each model's
 * nominal sparsity (normalized to CPU, plus the ViTCoD-relative
 * averages the text quotes: 235.3x / 142.9x / 86.0x / 10.1x / 6.8x
 * over CPU / EdgeGPU / GPU / SpAtten / Sanger at 90%), and (b)
 * end-to-end ViT speedups. Also prints the Sec. VI-B 80%-sparsity
 * comparison (paper: 4.8x / 3.2x) and the end-to-end accelerator
 * comparison (paper: 3.1x / 2.1x).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"

using namespace vitcod;

namespace {

void
speedupTable(bench::PlanCache &cache, double sparsity_override,
             bool end_to_end, const char *title)
{
    auto devices = accel::makeAllDevices();
    printBanner(std::cout, title);

    std::vector<std::string> headers = {"Model", "Sparsity"};
    for (const auto &d : devices)
        headers.push_back(d->name());
    Table t(headers);

    std::map<std::string, RunningStat> vs_vitcod;
    for (const auto &m : model::allSevenModels()) {
        const double s = sparsity_override > 0 ? sparsity_override
                                               : m.nominalSparsity;
        const auto &plan = cache.get(m, s, true);
        std::map<std::string, double> secs;
        for (auto &d : devices)
            secs[d->name()] = bench::runSeconds(*d, plan, end_to_end);

        t.row().cell(m.name).cell(s * 100.0, 0);
        const double cpu = secs["CPU"];
        for (auto &d : devices)
            t.cellRatio(cpu / secs[d->name()], 1);
        for (auto &d : devices)
            if (d->name() != "ViTCoD")
                vs_vitcod[d->name()].add(secs[d->name()] /
                                         secs["ViTCoD"]);
    }
    t.print(std::cout);

    std::cout << "\nViTCoD average speedup over each baseline "
                 "(geomean over 7 models):\n";
    Table avg({"Baseline", "Speedup"});
    for (auto &[name, stat] : vs_vitcod)
        avg.row().cell(name).cellRatio(stat.geomean(), 1);
    avg.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    bench::printHeader("Fig. 15 - overall performance comparison",
                       "Sec. VI-B, Fig. 15(a)/(b); paper reports "
                       "235.3x/142.9x/86.0x/10.1x/6.8x core-attention "
                       "speedups at 90% sparsity");
    bench::PlanCache cache;

    if (opts.smoke) { // one table exercises the full sweep machinery
        speedupTable(cache, /*override=*/0.9, /*e2e=*/false,
                     "Sec. VI-B: core attention at uniform 90% "
                     "sparsity (smoke subset)");
        return 0;
    }
    speedupTable(cache, /*override=*/0.0, /*e2e=*/false,
                 "Fig. 15(a): core attention speedups, normalized "
                 "to CPU (nominal sparsity: DeiT 90%, LeViT 80%)");
    speedupTable(cache, /*override=*/0.9, /*e2e=*/false,
                 "Sec. VI-B: core attention at uniform 90% sparsity "
                 "(paper: 10.1x over SpAtten, 6.8x over Sanger)");
    speedupTable(cache, /*override=*/0.8, /*e2e=*/false,
                 "Sec. VI-B: core attention at uniform 80% sparsity "
                 "(paper: 4.8x over SpAtten, 3.2x over Sanger)");
    speedupTable(cache, /*override=*/0.0, /*e2e=*/true,
                 "Fig. 15(b): end-to-end ViT speedups, normalized "
                 "to CPU (paper: 33.8x over CPU, 5.6x over EdgeGPU; "
                 "3.1x/2.1x over SpAtten/Sanger)");
    return 0;
}
