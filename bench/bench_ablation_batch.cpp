/**
 * @file
 * Batch-scaling study following the paper's comparison methodology
 * (Sec. VI-A: "when benchmarking with GPUs w/ larger batch size, we
 * scale up the accelerators' hardware resource to have a comparable
 * peak throughput for a fair comparison following [30]"). Larger
 * batches amortize the GPU's dispatch overhead and raise its matmul
 * efficiency; the ViTCoD side scales MAC lines and DRAM bandwidth
 * by the batch factor and processes the batch as independent
 * samples. This is the extension experiment behind Fig. 15's GPU
 * column.
 */

#include <algorithm>
#include <iostream>

#include "accel/platform.h"
#include "accel/vitcod_accel.h"
#include "bench/bench_util.h"
#include "common/table.h"

using namespace vitcod;

int
main()
{
    bench::printHeader(
        "Batch scaling - GPU vs throughput-matched ViTCoD",
        "Sec. VI-A methodology; ViTCoD resources scale with batch, "
        "GPU amortizes dispatch and gains efficiency");

    bench::PlanCache cache;
    const auto &plan = cache.get(model::deitBase(), 0.9, true);

    Table t({"Batch", "GPU attn/img (us)", "ViTCoD attn/img (us)",
             "ViTCoD MACs", "Speedup/img", "GPU img/s",
             "ViTCoD img/s"});
    for (size_t batch : {1, 2, 4, 8, 16, 32}) {
        // GPU: dispatch is per kernel, not per image; efficiency
        // grows with the batched matmul size (saturating).
        accel::PlatformConfig g = accel::gpu2080Ti();
        g.dispatchSeconds /= static_cast<double>(batch);
        g.attnMatmulEff = std::min(
            0.35, g.attnMatmulEff * static_cast<double>(batch));
        accel::PlatformModel gpu(g);

        // ViTCoD: scale compute and bandwidth with the batch, run
        // the batch as independent samples on the scaled fabric.
        accel::ViTCoDConfig v;
        v.macArray.macLines = 64 * batch;
        v.dram.bandwidthGBps = 76.8 * static_cast<double>(batch);
        v.qkvBufBytes = 128 * 1024 * batch;
        v.sBufferBytes = 96 * 1024 * batch;
        accel::ViTCoDAccelerator vitcod(v);

        const double gpu_img = gpu.runAttention(plan).seconds;
        const double acc_img = vitcod.runAttention(plan).seconds;
        t.row()
            .cell(static_cast<uint64_t>(batch))
            .cell(gpu_img * 1e6, 1)
            .cell(acc_img * 1e6, 1)
            .cell(static_cast<uint64_t>(v.macArray.totalMacs()))
            .cellRatio(gpu_img / acc_img, 1)
            .cell(1.0 / gpu_img, 0)
            .cell(1.0 / acc_img, 0);
    }
    t.print(std::cout);

    std::cout << "\nReading: batching closes part of the GPU's "
                 "dispatch-bound gap, but the throughput-matched "
                 "ViTCoD keeps a large lead - the reason the paper "
                 "scales accelerator resources rather than "
                 "comparing batch-1 only.\n";
    return 0;
}
