/**
 * @file
 * Regenerates Fig. 9(b): training trajectories of DeiT models with
 * AE modules inserted (50% head compression). The auto-encoder is
 * actually trained here — Adam on synthetic correlated-head Q/K
 * data — and the accuracy trace comes from the finetuning-recovery
 * proxy anchored at the converged reconstruction error.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/accuracy_proxy.h"
#include "core/autoencoder.h"

using namespace vitcod;

int
main()
{
    bench::printHeader(
        "Fig. 9(b) - ViT + AE training trajectories (DeiT)",
        "Fig. 9(b): reconstruction loss and test loss both fall; "
        "accuracy recovers to ~baseline after finetuning");

    const size_t epochs = 100;
    for (const auto &m :
         {model::deitBase(), model::deitSmall(), model::deitTiny()}) {
        const auto &stage = m.stages[0];
        const size_t c = stage.heads / 2 ? stage.heads / 2 : 1;

        Rng rng(2024 + stage.heads);
        const auto data = core::synthesizeHeadData(
            4096, stage.heads, std::max<size_t>(1, stage.heads / 3),
            0.15, rng);
        core::AutoEncoder ae({stage.heads, c, 99});
        core::AeTrainConfig tc;
        tc.epochs = epochs;
        const auto traj = ae.trainSgd(data, tc);
        const double rel_err = ae.relativeError(data);

        const core::AccuracyProxy proxy;
        const double final_acc = proxy.estimate(
            m.baselineQuality, m.task, 1.0, rel_err);
        const auto acc_curve = core::AccuracyProxy::finetuneCurve(
            epochs, 0.55 * m.baselineQuality, final_acc);

        printBanner(std::cout,
                    m.name + " (AE " + std::to_string(stage.heads) +
                        " -> " + std::to_string(c) + " heads)");
        Table t({"Epoch", "ReconLoss", "Accuracy(%)", "TestLoss"});
        for (size_t e = 0; e < epochs; e += 10) {
            t.row()
                .cell(static_cast<uint64_t>(e))
                .cell(traj.points[e].reconLoss, 5)
                .cell(acc_curve[e], 2)
                .cell(-std::log(acc_curve[e] / 100.0), 3);
        }
        t.row()
            .cell(static_cast<uint64_t>(epochs - 1))
            .cell(traj.finalLoss(), 5)
            .cell(acc_curve.back(), 2)
            .cell(-std::log(acc_curve.back() / 100.0), 3);
        t.print(std::cout);
        std::cout << "final rel. reconstruction error: " << rel_err
                  << " | baseline top-1: " << m.baselineQuality
                  << "% | recovered: " << acc_curve.back() << "%\n";
    }

    std::cout << "\nReading: both losses decrease monotonically and "
                 "accuracy recovers to within ~0.5% of the vanilla "
                 "model - Fig. 9(b)'s behavior.\n";
    return 0;
}
