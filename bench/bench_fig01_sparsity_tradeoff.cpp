/**
 * @file
 * Regenerates Fig. 1: quality-vs-sparsity trade-offs contrasting
 * NLP Transformers (dynamic masks, BLEU on IWSLT EN->DE) against
 * ViTs (fixed masks, ImageNet top-1). Two views are printed: the
 * encoded published curves, and this reproduction's own pipeline
 * (synthetic maps -> Algorithm 1 -> accuracy proxy) swept over the
 * same sparsity grid.
 */

#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "model/tradeoff_curves.h"

using namespace vitcod;

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    bench::printHeader("Fig. 1 - NLP vs ViT sparsity trade-off",
                       "Fig. 1; ViTs hold accuracy to 90-95% fixed "
                       "sparsity, NLP collapses past ~50-70%");

    const double grid[] = {0.10, 0.30, 0.50, 0.70, 0.90, 0.95};

    printBanner(std::cout, "Published curves (encoded from Fig. 1)");
    std::vector<std::string> headers = {"Curve", "Pattern"};
    for (double s : grid)
        headers.push_back(std::to_string(static_cast<int>(s * 100)) +
                          "%");
    Table t(headers);
    for (const auto &c : model::nlpBleuCurves()) {
        t.row().cell(c.name).cell("dynamic");
        for (double s : grid)
            t.cell(c.qualityAt(s), 1);
    }
    for (const auto &c : model::vitAccuracyCurves()) {
        t.row().cell(c.name).cell("fixed");
        for (double s : grid)
            t.cell(c.qualityAt(s), 1);
    }
    t.print(std::cout);

    printBanner(std::cout,
                "This reproduction: Algorithm 1 + accuracy proxy "
                "(top-1 %, fixed masks)");
    Table r(headers);
    bench::PlanCache cache;
    std::vector<model::VitModelConfig> repro_models = {
        model::deitBase(), model::deitSmall()};
    if (opts.smoke) // plan builds dominate; one small model suffices
        repro_models = {model::deitSmall()};
    for (const auto &m : repro_models) {
        r.row().cell(m.name + " (repro)").cell("fixed");
        for (double s : grid) {
            const auto &plan = cache.get(m, s, true);
            r.cell(plan.estimatedQuality, 1);
        }
    }
    r.print(std::cout);

    std::cout << "\nReading: fixed-mask ViT rows lose <1.5% top-1 "
                 "through 90-95% sparsity, while every dynamic NLP "
                 "curve loses >5 BLEU past 50%.\n";
    return 0;
}
