/**
 * @file
 * Regenerates Fig. 19: (a) normalized latency with its
 * computation / preprocessing / data-movement breakdown averaged
 * across 60/70/80/90% sparsity, (b) the same at 90% alone, plus
 * normalized energy efficiency (paper: 9.8x over Sanger, the most
 * competitive baseline) and the two-step decomposition of ViTCoD's
 * gains (split&conquer ~2.7x over Sanger, AE a further ~2.5x; data
 * movement share 50% -> 28%).
 */

#include <iostream>

#include "accel/vitcod_accel.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"

using namespace vitcod;

namespace {

struct DeviceAgg
{
    RunningStat seconds;
    RunningStat compute_frac;
    RunningStat preprocess_frac;
    RunningStat move_frac;
    RunningStat energy;
};

void
section(bench::PlanCache &cache,
        const std::vector<model::VitModelConfig> &models,
        const std::vector<double> &ratios, const char *title)
{
    auto devices = accel::makeAllDevices();
    printBanner(std::cout, title);

    std::map<std::string, DeviceAgg> agg;
    for (const auto &m : models) {
        for (double s : ratios) {
            const auto &plan = cache.get(m, s, true);
            for (auto &d : devices) {
                const accel::RunStats rs = d->runAttention(plan);
                auto &a = agg[d->name()];
                a.seconds.add(rs.seconds);
                a.compute_frac.add(rs.computeSeconds / rs.seconds);
                a.preprocess_frac.add(rs.preprocessSeconds /
                                      rs.seconds);
                a.move_frac.add(rs.dataMoveSeconds / rs.seconds);
                a.energy.add(rs.energyJoules());
            }
        }
    }

    const double vitcod_t = agg["ViTCoD"].seconds.geomean();
    const double vitcod_e = agg["ViTCoD"].energy.geomean();
    Table t({"Device", "Norm. latency", "Compute%", "Preprocess%",
             "DataMove%", "Energy (x ViTCoD)"});
    for (auto &d : devices) {
        auto &a = agg[d->name()];
        t.row()
            .cell(d->name())
            .cellRatio(a.seconds.geomean() / vitcod_t, 1)
            .cell(100.0 * a.compute_frac.mean(), 1)
            .cell(100.0 * a.preprocess_frac.mean(), 1)
            .cell(100.0 * a.move_frac.mean(), 1)
            .cellRatio(a.energy.geomean() / vitcod_e, 1);
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    bench::printHeader(
        "Fig. 19 - latency breakdown & energy efficiency",
        "Fig. 19; paper: 9.8x energy efficiency over Sanger; data "
        "movement share 50% -> 28% with the AE");
    bench::PlanCache cache;

    std::vector<model::VitModelConfig> models =
        model::coreSixModels();
    std::vector<double> ratios = {0.6, 0.7, 0.8, 0.9};
    if (opts.smoke) { // plan builds dominate the wall time
        models = {model::deitTiny()};
        ratios = {0.9};
    }
    section(cache, models, ratios,
            "(a) Averaged across 60/70/80/90% sparsity "
            "(latency normalized to ViTCoD; energy eff. normalized "
            "to each device vs ViTCoD)");
    section(cache, models, {0.9}, "(b) At 90% sparsity");

    // ---- Decomposition of ViTCoD's two innovations vs Sanger.
    printBanner(std::cout,
                "Innovation decomposition at 90% (paper: S&C gives "
                "~2.7x over Sanger, AE a further ~2.5x)");
    auto devices = accel::makeAllDevices();
    accel::Device *sanger = nullptr;
    for (auto &d : devices)
        if (d->name() == "Sanger")
            sanger = d.get();

    accel::ViTCoDAccelerator vitcod_full;
    accel::ViTCoDConfig no_ae_cfg;
    no_ae_cfg.enableAeEngines = false;
    no_ae_cfg.name = "ViTCoD-noAE";
    accel::ViTCoDAccelerator vitcod_no_ae(no_ae_cfg);

    RunningStat sc_gain, ae_gain, move_before, move_after;
    for (const auto &m : models) {
        const auto &plan_ae = cache.get(m, 0.9, true);
        const auto &plan_no = cache.get(m, 0.9, false);
        const double t_sanger =
            sanger->runAttention(plan_no).seconds;
        const accel::RunStats no_ae =
            vitcod_no_ae.runAttention(plan_no);
        const accel::RunStats full =
            vitcod_full.runAttention(plan_ae);
        sc_gain.add(t_sanger / no_ae.seconds);
        ae_gain.add(no_ae.seconds / full.seconds);
        move_before.add(no_ae.dataMoveSeconds / no_ae.seconds);
        move_after.add(full.dataMoveSeconds / full.seconds);
    }
    Table d({"Step", "Speedup (geomean)", "DataMove share"});
    d.row()
        .cell("Split&Conquer vs Sanger")
        .cellRatio(sc_gain.geomean(), 2)
        .cell(100.0 * move_before.mean(), 1);
    d.row()
        .cell("+ Auto-encoder")
        .cellRatio(ae_gain.geomean(), 2)
        .cell(100.0 * move_after.mean(), 1);
    d.print(std::cout);

    std::cout << "\nReading: ViTCoD leads both latency and energy "
                 "efficiency; the AE shifts the remaining time from "
                 "data movement toward computation.\n";
    return 0;
}
