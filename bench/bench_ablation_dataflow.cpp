/**
 * @file
 * Design Exploration 2 ablation (paper Sec. V-A): S-stationary vs
 * K-stationary dataflow for sparse attention at matched sparsity.
 * The S-stationary side is isolated from Sanger's model by zeroing
 * its prediction/packing overheads and letting it run ViTCoD's own
 * fixed masks (its pack efficiency stands in for the spatially-
 * mapped PE utilization); the K-stationary side is the ViTCoD
 * engine without the AE. The table also reports the S-stationary
 * register pressure the paper calls out: partial sums held per PE.
 */

#include <iostream>

#include "accel/sanger.h"
#include "accel/vitcod_accel.h"
#include "bench/bench_util.h"
#include "common/table.h"

using namespace vitcod;

int
main()
{
    bench::printHeader(
        "Design ablation - S-stationary vs K-stationary dataflow",
        "Sec. V-A Design Exploration 2 + Fig. 11; K-stationary "
        "suits fixed sparse masks, S-stationary needs large "
        "partial-sum buffers");

    accel::ViTCoDConfig k_cfg;
    k_cfg.enableAeEngines = false; // isolate pure dataflow
    k_cfg.name = "K-stationary";
    accel::ViTCoDAccelerator k_stationary(k_cfg);

    bench::PlanCache cache;
    Table t({"Model", "Sparsity", "K-stat (us)", "S-stat (us)",
             "K-stat advantage", "S-stat partial sums (KiB)"});
    for (const auto &m : {model::deitBase(), model::deitSmall(),
                          model::levit128()}) {
        for (double s : {0.6, 0.8, 0.9}) {
            const auto &plan = cache.get(m, s, false);

            accel::SangerConfig s_cfg;
            s_cfg.name = "S-stationary";
            s_cfg.operatingSparsity = s;  // same masks
            s_cfg.predictionCostFactor = 0.0; // fixed masks: free
            s_cfg.packCyclesPerRow = 0;
            accel::SangerAccelerator s_stationary(s_cfg);

            const double t_k =
                k_stationary.runAttention(plan).seconds * 1e6;
            const double t_s =
                s_stationary.runAttention(plan).seconds * 1e6;

            // S-stationary holds one partial sum per mapped score:
            // a full row block of the attention map per head.
            const auto &stage = m.stages[0];
            const double ps_kib =
                static_cast<double>(stage.tokens) * stage.tokens *
                (1.0 - s) * 4.0 / 1024.0;
            t.row()
                .cell(m.name)
                .cell(s * 100.0, 0)
                .cell(t_k, 1)
                .cell(t_s, 1)
                .cellRatio(t_s / t_k, 2)
                .cell(ps_kib, 1);
        }
    }
    t.print(std::cout);

    std::cout << "\nReading: with fixed masks the K-stationary "
                 "dataflow wins at high sparsity while needing only "
                 "column-sized accumulators; S-stationary's partial "
                 "sums grow with the surviving map.\n";
    return 0;
}
