#include "bench_util.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/logging.h"
#include "obs/trace.h"

namespace vitcod::bench {

const core::ModelPlan &
PlanCache::get(const model::VitModelConfig &m, double sparsity,
               bool use_ae)
{
    std::ostringstream key;
    key << m.name << '/' << sparsity << '/' << use_ae;
    auto it = cache_.find(key.str());
    if (it == cache_.end()) {
        it = cache_
                 .emplace(key.str(),
                          core::buildModelPlan(
                              m, core::makePipelineConfig(sparsity,
                                                          use_ae)))
                 .first;
    }
    return it->second;
}

double
runSeconds(const accel::Device &dev, const core::ModelPlan &plan,
           bool end_to_end)
{
    return end_to_end ? dev.runEndToEnd(plan).seconds
                      : dev.runAttention(plan).seconds;
}

void
printHeader(const std::string &experiment,
            const std::string &paper_reference)
{
    std::printf("=============================================="
                "==============\n");
    std::printf("ViTCoD reproduction | %s\n", experiment.c_str());
    std::printf("Paper reference: %s\n", paper_reference.c_str());
    std::printf("HW config: 64 MAC lines x 8 MACs @ 500 MHz, "
                "320 KB SRAM, DDR4 76.8 GB/s\n");
    std::printf("=============================================="
                "==============\n");
}

namespace {

uint64_t
parseUintValue(const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0')
        fatal(flag, " expects an unsigned integer, got '", text, "'");
    return v;
}

/** Destination of the atexit trace export (set once by parseCli). */
std::string &
traceOutPath()
{
    static std::string path;
    return path;
}

void
exportTraceAtExit()
{
    obs::TraceSession &session = obs::TraceSession::instance();
    session.stop();
    const obs::TraceExportStats ts =
        session.writeJsonFile(traceOutPath());
    std::fprintf(stderr,
                 "trace: wrote %zu events (%zu dropped) to %s\n",
                 ts.events, ts.dropped, traceOutPath().c_str());
}

void
startTracing(std::string path)
{
    if (path.empty())
        fatal("--trace expects a file path");
    if (!traceOutPath().empty())
        return; // parseCli called twice; first path wins
    traceOutPath() = std::move(path);
    obs::TraceSession::instance().start();
    std::atexit(exportTraceAtExit);
}

} // namespace

CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--json") == 0) {
            opts.json = true;
        } else if (std::strcmp(arg, "--smoke") == 0) {
            opts.smoke = true;
        } else if (std::strcmp(arg, "--seed") == 0) {
            if (i + 1 >= argc)
                fatal("--seed expects a value");
            opts.seed = parseUintValue("--seed", argv[++i]);
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            opts.seed = parseUintValue("--seed", arg + 7);
        } else if (std::strcmp(arg, "--threads") == 0) {
            if (i + 1 >= argc)
                fatal("--threads expects a value");
            opts.threads = parseUintValue("--threads", argv[++i]);
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            opts.threads = parseUintValue("--threads", arg + 10);
        } else if (std::strcmp(arg, "--isa") == 0) {
            if (i + 1 >= argc)
                fatal("--isa expects a value");
            opts.isa = argv[++i];
        } else if (std::strncmp(arg, "--isa=", 6) == 0) {
            opts.isa = arg + 6;
        } else if (std::strcmp(arg, "--trace") == 0) {
            if (i + 1 >= argc)
                fatal("--trace expects a file path");
            opts.traceOut = argv[++i];
        } else if (std::strncmp(arg, "--trace=", 8) == 0) {
            opts.traceOut = arg + 8;
        }
    }
    if (!opts.traceOut.empty())
        startTracing(opts.traceOut);
    return opts;
}

namespace {

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
numberToJson(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

JsonRow &
JsonRow::set(const std::string &key, double v)
{
    fields_.emplace_back(key, numberToJson(v));
    return *this;
}

JsonRow &
JsonRow::set(const std::string &key, uint64_t v)
{
    fields_.emplace_back(key, std::to_string(v));
    return *this;
}

JsonRow &
JsonRow::set(const std::string &key, int v)
{
    fields_.emplace_back(key, std::to_string(v));
    return *this;
}

JsonRow &
JsonRow::set(const std::string &key, const char *v)
{
    return set(key, std::string(v));
}

JsonRow &
JsonRow::set(const std::string &key, const std::string &v)
{
    fields_.emplace_back(key, '"' + escapeJson(v) + '"');
    return *this;
}

std::string
JsonRow::str() const
{
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
        if (i)
            out += ", ";
        out += '"' + escapeJson(fields_[i].first) + "\": " +
               fields_[i].second;
    }
    out += "}";
    return out;
}

void
JsonRow::print(std::FILE *out) const
{
    std::fprintf(out, "%s\n", str().c_str());
    std::fflush(out);
}

} // namespace vitcod::bench
