#include "bench_util.h"

#include <cstdio>
#include <sstream>

namespace vitcod::bench {

const core::ModelPlan &
PlanCache::get(const model::VitModelConfig &m, double sparsity,
               bool use_ae)
{
    std::ostringstream key;
    key << m.name << '/' << sparsity << '/' << use_ae;
    auto it = cache_.find(key.str());
    if (it == cache_.end()) {
        it = cache_
                 .emplace(key.str(),
                          core::buildModelPlan(
                              m, core::makePipelineConfig(sparsity,
                                                          use_ae)))
                 .first;
    }
    return it->second;
}

double
runSeconds(accel::Device &dev, const core::ModelPlan &plan,
           bool end_to_end)
{
    return end_to_end ? dev.runEndToEnd(plan).seconds
                      : dev.runAttention(plan).seconds;
}

void
printHeader(const std::string &experiment,
            const std::string &paper_reference)
{
    std::printf("=============================================="
                "==============\n");
    std::printf("ViTCoD reproduction | %s\n", experiment.c_str());
    std::printf("Paper reference: %s\n", paper_reference.c_str());
    std::printf("HW config: 64 MAC lines x 8 MACs @ 500 MHz, "
                "320 KB SRAM, DDR4 76.8 GB/s\n");
    std::printf("=============================================="
                "==============\n");
}

} // namespace vitcod::bench
