/**
 * @file
 * Regenerates Fig. 3: roofline analysis of the key attention
 * bottleneck (S = Q.K^T) on the ViTCoD accelerator. Three scenarios
 * bracket the design space, as in the paper:
 *
 *  - "Sparse ViTs, no reuse": the diagonal pattern at 90% sparsity
 *    with every score loading its own Q/K rows — the paper's 0.6
 *    ops/byte worst case that motivates the whole design;
 *  - "Dense ViTs": dense attention with window-limited row reuse
 *    (the paper's ~3.9 ops/byte);
 *  - "ViTCoD": polarized denser/sparser masks + AE compression +
 *    Q forwarding, measured from the simulator's actual SDDMM
 *    traffic — pushed toward/past the compute ridge.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "accel/vitcod_accel.h"
#include "bench/bench_util.h"
#include "common/table.h"

using namespace vitcod;

int
main()
{
    bench::printHeader("Fig. 3 - roofline analysis (S = Q.K^T)",
                       "Fig. 3; dense ~3.9 ops/B, sparse ~0.6 ops/B, "
                       "ViTCoD pushed toward the compute roof");

    accel::ViTCoDAccelerator acc;
    const auto &hw = acc.config();
    const double peak_gops =
        2.0 * hw.macArray.totalMacs() * hw.freqGhz; // MAC = 2 ops
    const double bw = hw.dram.bandwidthGBps;
    const double ridge = peak_gops / bw;
    std::printf("Compute roof: %.0f GOPS | Bandwidth roof: %.1f GB/s"
                " | ridge point: %.2f ops/byte\n\n",
                peak_gops, bw, ridge);

    bench::PlanCache cache;
    const auto model_cfg = model::deitBase();
    const auto &sparse_plan = cache.get(model_cfg, 0.9, true);
    const auto &nude_plan = cache.get(model_cfg, 0.9, false);
    const auto &dense_plan = cache.get(model_cfg, 0.0, false);

    const size_t layer = 6;
    const auto shapes = model::attentionShapes(model_cfg);
    const double n = static_cast<double>(shapes[layer].tokens);
    const double dk = static_cast<double>(shapes[layer].headDim);
    const double h = static_cast<double>(shapes[layer].heads);
    const double eb = 2.0;

    Table t({"Workload", "SDDMM ops", "DRAM bytes", "Ops/Byte",
             "Attainable GOPS", "Bound"});
    auto add_row = [&](const std::string &name, double ops,
                       double bytes) {
        const double intensity = ops / bytes;
        const double attain =
            std::min(peak_gops, intensity * bw);
        t.row()
            .cell(name)
            .cell(formatOps(ops))
            .cell(formatBytes(bytes))
            .cell(intensity, 2)
            .cell(attain, 1)
            .cell(intensity < ridge ? "memory" : "compute");
    };

    // Worst case: every surviving score gathers its own Q and K row.
    {
        double nnz = 0.0;
        for (const auto &head : sparse_plan.heads)
            if (head.layer == layer)
                nnz += static_cast<double>(head.plan.mask.nnz());
        add_row("Sparse ViTs (no reuse)", 2.0 * nnz * dk,
                nnz * 2.0 * dk * eb);
    }

    // Dense attention, generic K-stationary engine: every K column
    // streams all Q rows (no cross-column reuse) — the paper's
    // "Dense ViTs" placement below the ridge.
    add_row("Dense ViTs (per-column Q streams)",
            2.0 * n * n * dk * h,
            (n * n + n) * dk * eb * h);

    // Dense attention on ViTCoD's Q-block-tiled buffers, from the
    // simulator.
    {
        const auto st = acc.simulateAttentionLayer(dense_plan, layer);
        add_row("Dense ViTs (ViTCoD buffers)", 2.0 * n * n * dk * h,
                static_cast<double>(st.sddmmRead));
    }

    // Polarized masks without the AE module.
    {
        const auto st = acc.simulateAttentionLayer(nude_plan, layer);
        add_row("Sparse+Polarized (no AE)",
                static_cast<double>(st.attentionMacs),
                static_cast<double>(st.sddmmRead));
    }

    // Full ViTCoD: polarized + AE compression + Q forwarding.
    {
        const auto st = acc.simulateAttentionLayer(sparse_plan, layer);
        add_row("ViTCoD (denser/sparser + AE)",
                static_cast<double>(st.attentionMacs + st.decodeMacs),
                static_cast<double>(st.sddmmRead));
    }
    t.print(std::cout);

    std::cout << "\nReading: without reuse the diagonal sparse "
                 "pattern sits far below the ridge (bandwidth "
                 "bound); ViTCoD's polarization + AE raise the "
                 "intensity toward the compute roof, matching the "
                 "paper's Fig. 3 arrow.\n";
    return 0;
}
