/**
 * @file
 * Regenerates the Sec. VI-C "Breakdown Pruning and Reordering"
 * ablation on DeiT-Base/Small/Tiny: full split&conquer vs
 * reordering-only (isolates the pruning benefit; paper: 5.14x
 * average, 8.14x at 90%) and vs pruning-only (isolates the
 * reordering benefit; paper: 2.59x average, 2.03x at 90%).
 */

#include <iostream>

#include "accel/vitcod_accel.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "model/attention_gen.h"

using namespace vitcod;

namespace {

core::ModelPlan
variantPlan(const model::VitModelConfig &m, double sparsity, int mode)
{
    auto plan = core::buildModelPlan(
        m, core::makePipelineConfig(sparsity, true));
    if (mode == 0)
        return plan; // full split & conquer
    const model::AttentionMapGenerator gen(m, plan.cfg.gen);
    core::SplitConquerConfig sc = plan.cfg.splitConquer;
    for (auto &h : plan.heads) {
        const auto a = gen.generate(h.layer, h.head);
        h.plan = (mode == 1) ? core::pruneOnly(a, sc)
                             : core::reorderOnly(a, sc);
    }
    return plan;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    bench::printHeader(
        "Sec. VI-C ablation - pruning vs reordering breakdown",
        "paper: pruning benefit 5.14x avg (8.14x @90%); reordering "
        "benefit 2.59x avg (2.03x @90%)");

    accel::ViTCoDAccelerator acc;
    Table t({"Model", "Sparsity", "Full (us)", "PruneOnly (us)",
             "ReorderOnly (us)", "Reorder benefit",
             "Prune benefit"});
    RunningStat prune_benefit, reorder_benefit;
    RunningStat prune_at90, reorder_at90;

    std::vector<model::VitModelConfig> models = {
        model::deitBase(), model::deitSmall(), model::deitTiny()};
    std::vector<double> sparsities = {0.6, 0.7, 0.8, 0.9};
    if (opts.smoke) { // one cheap point per code path
        models = {model::deitTiny()};
        sparsities = {0.9};
    }
    for (const auto &m : models) {
        for (double s : sparsities) {
            const double t_full =
                acc.runAttention(variantPlan(m, s, 0)).seconds * 1e6;
            const double t_prune =
                acc.runAttention(variantPlan(m, s, 1)).seconds * 1e6;
            const double t_reorder =
                acc.runAttention(variantPlan(m, s, 2)).seconds * 1e6;
            const double rb = t_prune / t_full;
            const double pb = t_reorder / t_full;
            reorder_benefit.add(rb);
            prune_benefit.add(pb);
            if (s == 0.9) {
                reorder_at90.add(rb);
                prune_at90.add(pb);
            }
            t.row()
                .cell(m.name)
                .cell(s * 100.0, 0)
                .cell(t_full, 1)
                .cell(t_prune, 1)
                .cell(t_reorder, 1)
                .cellRatio(rb, 2)
                .cellRatio(pb, 2);
        }
    }
    t.print(std::cout);

    std::cout << "\nAverages across 60/70/80/90% (geomean, 3 DeiT "
                 "models):\n  pruning benefit    (full vs "
                 "reorder-only): "
              << prune_benefit.geomean() << "x (paper 5.14x); at 90%: "
              << prune_at90.geomean() << "x (paper 8.14x)\n"
              << "  reordering benefit (full vs prune-only):   "
              << reorder_benefit.geomean()
              << "x (paper 2.59x); at 90%: " << reorder_at90.geomean()
              << "x (paper 2.03x)\n";
    return 0;
}
