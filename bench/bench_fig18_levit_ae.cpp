/**
 * @file
 * Regenerates Fig. 18: AE training trajectories for the LeViT
 * family. LeViT stages have different head counts (e.g. 4/8/12 for
 * LeViT-128), so one AE per stage is trained; the table reports the
 * per-stage trajectories and the model-level accuracy recovery.
 */

#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/accuracy_proxy.h"
#include "core/autoencoder.h"

using namespace vitcod;

int
main()
{
    bench::printHeader(
        "Fig. 18 - LeViT + AE training trajectories",
        "Fig. 18: reconstruction loss falls by orders of magnitude; "
        "dashed-line (vanilla) accuracy recovered within ~0.5%");

    const size_t epochs = 100;
    for (const auto &m :
         {model::levit256(), model::levit192(), model::levit128()}) {
        printBanner(std::cout, m.name);
        double worst_err = 0.0;
        Table t({"Stage", "Heads->c", "Recon@0", "Recon@25",
                 "Recon@50", "Recon@99"});
        for (size_t s = 0; s < m.stages.size(); ++s) {
            const auto &stage = m.stages[s];
            const size_t c = (stage.heads + 1) / 2;
            Rng rng(77 + 13 * s + stage.heads);
            const auto data = core::synthesizeHeadData(
                2048, stage.heads,
                std::max<size_t>(1, stage.heads / 3), 0.15, rng);
            core::AutoEncoder ae({stage.heads, c, 7 + s});
            core::AeTrainConfig tc;
            tc.epochs = epochs;
            const auto traj = ae.trainSgd(data, tc);
            worst_err = std::max(worst_err, ae.relativeError(data));
            t.row()
                .cell("stage " + std::to_string(s))
                .cell(std::to_string(stage.heads) + "->" +
                      std::to_string(c))
                .cell(traj.points[0].reconLoss, 5)
                .cell(traj.points[25].reconLoss, 5)
                .cell(traj.points[50].reconLoss, 5)
                .cell(traj.points[99].reconLoss, 5);
        }
        t.print(std::cout);

        const core::AccuracyProxy proxy;
        const double final_acc =
            proxy.estimate(m.baselineQuality, m.task, 1.0, worst_err);
        const auto curve = core::AccuracyProxy::finetuneCurve(
            epochs, 0.5 * m.baselineQuality, final_acc);
        std::cout << "accuracy: epoch0 " << curve.front()
                  << "% -> epoch99 " << curve.back()
                  << "% (vanilla " << m.baselineQuality << "%)\n";
    }

    std::cout << "\nReading: every stage's AE converges and the "
                 "model accuracy returns to within ~0.5% of the "
                 "vanilla dashed line, as in Fig. 18.\n";
    return 0;
}
