/**
 * @file
 * Serving throughput–latency curves plus the production soak
 * harness.
 *
 * Default mode sweeps scheduler policy (fifo / bucketed / priority /
 * continuous) x backend mix (homogeneous ViTCoD pool vs
 * heterogeneous ViTCoD+CPU) x offered Poisson arrival rate, serving
 * a fixed two-task mix (DeiT-Tiny @ 90%, LeViT-128 @ 80%) through a
 * 4-worker pool each time. Reports wall-clock latency percentiles,
 * offered vs completion throughput, batch sizes, plan-switch counts
 * and plan-cache behavior — one human table plus one JSON row per
 * configuration (machine-readable, for BENCH_*.json trajectories).
 *
 * --soak switches to the overload soak harness: a bursty
 * (Markov-modulated) trace at 2x the pool's wall-clock capacity —
 * workers are paced to real time via ServerConfig::realtimeFactor —
 * driven through (a) the SLO-aware continuous-batching server with
 * admission control and (b) a fifo server with admission off, on
 * the same trace. Reports sustained QPS, admitted-request
 * p50/p95/p99, shed rate and queue depth; the full run offers
 * >= 10^6 requests, --smoke a CI-sized slice whose "slo" row is
 * gated in perf-smoke CI (bench/baselines/serving_soak_baseline
 * .json). See docs/SERVING.md.
 *
 * Flags: --soak, --seed N, --json, --smoke.
 */

#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "serve/load_gen.h"
#include "serve/plan_cache.h"
#include "serve/server.h"

namespace {

struct Mix
{
    const char *label;
    std::vector<std::string> backends;
};

using namespace vitcod;

/** One soak run: bursty 2x-overload trace through one server shape. */
void
runSoak(const bench::CliOptions &opts)
{
    const serve::PlanKey deit{"DeiT-Tiny", 0.9, true, false};

    // Pool capacity is set by pacing workers to real time: one
    // request occupies a worker for kTargetServiceSeconds of wall
    // time, so capacity = workers / target, independent of how fast
    // the simulator happens to run on this machine.
    constexpr double kTargetServiceSeconds = 100e-6;
    constexpr size_t kWorkers = 4;
    constexpr double kOverload = 2.0;

    const double service =
        serve::PlanCache().get(deit)->simEstimate.seconds;
    const double factor = kTargetServiceSeconds / service;
    const double capacityRps =
        static_cast<double>(kWorkers) / kTargetServiceSeconds;

    // SLO: 20 service times of queue-exit latency (in the
    // simEstimate clock domain the admission controller works in);
    // the grace band doubles it before shedding.
    const double sloSimSeconds = 20.0 * service;

    const size_t kRequests = opts.smoke ? 30'000 : 1'200'000;
    // The fifo contrast run has no shedding, so at 2x overload its
    // drain tail costs as much wall time again as the submit window;
    // cap it so the full soak stays dominated by the gated run.
    const size_t kFifoRequests =
        std::min<size_t>(kRequests, 100'000);

    if (!opts.json) {
        bench::printHeader(
            "serving soak: bursty 2x overload, SLO admission",
            "ROADMAP item 3 (production-scale serving)");
        std::printf("capacity %.0f rps (%zu workers x %.0f us "
                    "service), offering %.0f rps\n\n",
                    capacityRps, kWorkers,
                    kTargetServiceSeconds * 1e6,
                    capacityRps * kOverload);
        std::printf("%-6s %9s %10s %9s %8s %8s %8s %7s %10s\n",
                    "mode", "requests", "sustained", "offered",
                    "p50 ms", "p95 ms", "p99 ms", "shed%",
                    "max depth");
    }

    struct Shape
    {
        const char *label;
        bool slo;
        size_t requests;
    };
    const std::vector<Shape> shapes = {
        {"slo", true, kRequests},
        {"fifo", false, kFifoRequests},
    };

    for (const Shape &shape : shapes) {
        serve::ServerConfig cfg;
        cfg.backends.assign(kWorkers, "ViTCoD");
        cfg.realtimeFactor = factor;
        if (shape.slo) {
            cfg.scheduler.policy =
                serve::SchedulerPolicy::Continuous;
            cfg.scheduler.maxBatch = 8;
            cfg.scheduler.maxWaitSeconds = 5e-3;
            cfg.admission.enabled = true;
            cfg.admission.defaultSloSeconds = sloSimSeconds;
            cfg.admission.shedMultiplier = 2.0;
        } else {
            cfg.scheduler.policy = serve::SchedulerPolicy::Fifo;
            cfg.scheduler.maxBatch = 8;
        }

        serve::InferenceServer server(cfg);

        serve::TrafficConfig traffic;
        traffic.process = serve::ArrivalProcess::MarkovOnOff;
        traffic.ratePerSec = capacityRps * kOverload;
        traffic.burstRateMultiplier = 8.0;
        traffic.meanBurstSeconds = 0.05;
        traffic.meanIdleSeconds = 0.20;
        traffic.requests = shape.requests;
        traffic.mix = {deit};
        traffic.seed = opts.seed;

        const serve::TrafficReport rep =
            serve::runTraffic(server, traffic);
        const serve::StatsSnapshot s = server.snapshot();

        if (!opts.json)
            std::printf("%-6s %9zu %10.0f %9.0f %8.3f %8.3f "
                        "%8.3f %6.1f%% %10.0f\n",
                        shape.label, shape.requests,
                        rep.completionRps, rep.offeredRps,
                        s.wallP50 * 1e3, s.wallP95 * 1e3,
                        s.wallP99 * 1e3, rep.shedRate * 100,
                        s.maxQueueDepth);

        bench::JsonRow()
            .set("bench", "serving_soak")
            .set("kernel", shape.label)
            .set("requests", static_cast<uint64_t>(shape.requests))
            .set("offered_rps", rep.offeredRps)
            .set("sustained_qps", rep.completionRps)
            .set("wall_p50_ms", s.wallP50 * 1e3)
            .set("wall_p95_ms", s.wallP95 * 1e3)
            .set("wall_p99_ms", s.wallP99 * 1e3)
            .set("shed_rate", rep.shedRate)
            .set("shed", static_cast<uint64_t>(rep.shed))
            .set("admitted", s.admitted)
            .set("deprioritized", s.deprioritized)
            .set("mean_queue_depth", s.meanQueueDepth)
            .set("max_queue_depth", s.maxQueueDepth)
            .set("mean_batch", s.meanBatchSize)
            .set("slo_sim_s", shape.slo ? sloSimSeconds : 0.0)
            .set("realtime_factor", factor)
            .set("seed", opts.seed)
            .print();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    bool soak = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--soak") == 0)
            soak = true;

    if (soak) {
        runSoak(opts);
        return 0;
    }

    if (!opts.json)
        bench::printHeader("serving throughput-latency curves",
                           "Sec. V-B3 (one-time compilation, "
                           "amortized across requests)");

    const serve::PlanKey deit{"DeiT-Tiny", 0.9, true, false};
    const serve::PlanKey levit{"LeViT-128", 0.8, true, false};

    std::vector<Mix> mixes = {
        {"4xViTCoD", {"ViTCoD", "ViTCoD", "ViTCoD", "ViTCoD"}},
        {"2xViTCoD+2xCPU", {"ViTCoD", "ViTCoD", "CPU", "CPU"}},
    };
    std::vector<serve::SchedulerPolicy> policies = {
        serve::SchedulerPolicy::Fifo,
        serve::SchedulerPolicy::SizeBucketed,
        serve::SchedulerPolicy::Priority,
        serve::SchedulerPolicy::Continuous,
    };
    std::vector<double> rates = {1000, 2000, 4000};
    size_t kRequests = 500;
    if (opts.smoke) { // one curve point, small trace
        mixes.resize(1);
        policies = {serve::SchedulerPolicy::Continuous};
        rates = {2000};
        kRequests = 100;
    }

    if (!opts.json)
        std::printf("%-16s %-11s %7s %9s %8s %8s %8s %7s %9s\n",
                    "backends", "policy", "rate/s", "complete",
                    "p50 ms", "p95 ms", "p99 ms", "batch",
                    "switches");

    for (const Mix &mix : mixes) {
        for (const auto policy : policies) {
            for (const double rate : rates) {
                serve::ServerConfig cfg;
                cfg.backends = mix.backends;
                cfg.scheduler.policy = policy;
                cfg.scheduler.maxBatch = 8;
                cfg.scheduler.maxWaitSeconds = 2e-3;

                serve::InferenceServer server(cfg);

                serve::TrafficConfig traffic;
                traffic.ratePerSec = rate;
                traffic.requests = kRequests;
                traffic.mix = {deit, levit};
                traffic.mixWeights = {0.7, 0.3};
                traffic.priorityLevels =
                    policy == serve::SchedulerPolicy::Priority ? 3
                                                               : 1;
                traffic.seed = opts.seed;

                const serve::TrafficReport rep =
                    serve::runTraffic(server, traffic);
                const serve::StatsSnapshot s = server.snapshot();
                const serve::PlanCache::Stats pc =
                    server.planCacheStats();

                uint64_t switches = 0;
                double simBusy = 0;
                for (const auto &b : s.backends) {
                    switches += b.planSwitches;
                    simBusy +=
                        b.busySimSeconds + b.switchSimSeconds;
                }

                if (!opts.json)
                    std::printf("%-16s %-11s %7.0f %9.0f %8.3f "
                                "%8.3f %8.3f %7.2f %9llu\n",
                                mix.label,
                                serve::schedulerPolicyName(policy),
                                rate, rep.completionRps,
                                s.wallP50 * 1e3, s.wallP95 * 1e3,
                                s.wallP99 * 1e3, s.meanBatchSize,
                                static_cast<unsigned long long>(
                                    switches));

                bench::JsonRow()
                    .set("bench", "serving")
                    .set("backends", mix.label)
                    .set("policy",
                         serve::schedulerPolicyName(policy))
                    .set("rate_rps", rate)
                    .set("requests",
                         static_cast<uint64_t>(kRequests))
                    .set("offered_rps", rep.offeredRps)
                    .set("completion_rps", rep.completionRps)
                    .set("achieved_rps", rep.achievedRps)
                    .set("wall_p50_ms", s.wallP50 * 1e3)
                    .set("wall_p95_ms", s.wallP95 * 1e3)
                    .set("wall_p99_ms", s.wallP99 * 1e3)
                    .set("queue_p95_ms", s.queueP95 * 1e3)
                    .set("sim_p50_us", s.simP50 * 1e6)
                    .set("mean_batch", s.meanBatchSize)
                    .set("mean_queue_depth", s.meanQueueDepth)
                    .set("plan_switches", switches)
                    .set("sim_busy_s", simBusy)
                    .set("energy_j", s.totalEnergyJoules)
                    .set("cache_hit_rate", pc.hitRate())
                    .set("seed", opts.seed)
                    .print();
            }
        }
    }
    return 0;
}
