/**
 * @file
 * Serving throughput–latency curves. Sweeps scheduler policy
 * (fifo / bucketed / priority) x backend mix (homogeneous ViTCoD
 * pool vs heterogeneous ViTCoD+CPU) x offered Poisson arrival rate,
 * serving a fixed two-task mix (DeiT-Tiny @ 90%, LeViT-128 @ 80%)
 * through a 4-worker pool each time. Reports wall-clock latency
 * percentiles, achieved throughput, batch sizes, plan-switch counts
 * and plan-cache behavior — one human table plus one JSON row per
 * configuration (machine-readable, for BENCH_*.json trajectories).
 *
 * Flags: --seed N (traffic seed), --json (suppress the table).
 */

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "serve/load_gen.h"
#include "serve/server.h"

namespace {

struct Mix
{
    const char *label;
    std::vector<std::string> backends;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace vitcod;

    const bench::CliOptions opts = bench::parseCli(argc, argv);

    if (!opts.json)
        bench::printHeader("serving throughput-latency curves",
                           "Sec. V-B3 (one-time compilation, "
                           "amortized across requests)");

    const serve::PlanKey deit{"DeiT-Tiny", 0.9, true, false};
    const serve::PlanKey levit{"LeViT-128", 0.8, true, false};

    std::vector<Mix> mixes = {
        {"4xViTCoD", {"ViTCoD", "ViTCoD", "ViTCoD", "ViTCoD"}},
        {"2xViTCoD+2xCPU", {"ViTCoD", "ViTCoD", "CPU", "CPU"}},
    };
    std::vector<serve::SchedulerPolicy> policies = {
        serve::SchedulerPolicy::Fifo,
        serve::SchedulerPolicy::SizeBucketed,
        serve::SchedulerPolicy::Priority,
    };
    std::vector<double> rates = {1000, 2000, 4000};
    size_t kRequests = 500;
    if (opts.smoke) { // one curve point, small trace
        mixes.resize(1);
        policies = {serve::SchedulerPolicy::Fifo};
        rates = {2000};
        kRequests = 100;
    }

    if (!opts.json)
        std::printf("%-16s %-9s %7s %9s %8s %8s %8s %7s %9s\n",
                    "backends", "policy", "rate/s", "achieved",
                    "p50 ms", "p95 ms", "p99 ms", "batch",
                    "switches");

    for (const Mix &mix : mixes) {
        for (const auto policy : policies) {
            for (const double rate : rates) {
                serve::ServerConfig cfg;
                cfg.backends = mix.backends;
                cfg.scheduler.policy = policy;
                cfg.scheduler.maxBatch = 8;
                cfg.scheduler.maxWaitSeconds = 2e-3;

                serve::InferenceServer server(cfg);

                serve::TrafficConfig traffic;
                traffic.ratePerSec = rate;
                traffic.requests = kRequests;
                traffic.mix = {deit, levit};
                traffic.mixWeights = {0.7, 0.3};
                traffic.priorityLevels =
                    policy == serve::SchedulerPolicy::Priority ? 3
                                                               : 1;
                traffic.seed = opts.seed;

                const serve::TrafficReport rep =
                    serve::runPoissonTraffic(server, traffic);
                const serve::StatsSnapshot s = server.snapshot();
                const serve::PlanCache::Stats pc =
                    server.planCacheStats();

                uint64_t switches = 0;
                double simBusy = 0;
                for (const auto &b : s.backends) {
                    switches += b.planSwitches;
                    simBusy +=
                        b.busySimSeconds + b.switchSimSeconds;
                }

                if (!opts.json)
                    std::printf("%-16s %-9s %7.0f %9.0f %8.3f "
                                "%8.3f %8.3f %7.2f %9llu\n",
                                mix.label,
                                serve::schedulerPolicyName(policy),
                                rate, rep.achievedRps,
                                s.wallP50 * 1e3, s.wallP95 * 1e3,
                                s.wallP99 * 1e3, s.meanBatchSize,
                                static_cast<unsigned long long>(
                                    switches));

                bench::JsonRow()
                    .set("bench", "serving")
                    .set("backends", mix.label)
                    .set("policy",
                         serve::schedulerPolicyName(policy))
                    .set("rate_rps", rate)
                    .set("requests",
                         static_cast<uint64_t>(kRequests))
                    .set("achieved_rps", rep.achievedRps)
                    .set("wall_p50_ms", s.wallP50 * 1e3)
                    .set("wall_p95_ms", s.wallP95 * 1e3)
                    .set("wall_p99_ms", s.wallP99 * 1e3)
                    .set("queue_p95_ms", s.queueP95 * 1e3)
                    .set("sim_p50_us", s.simP50 * 1e6)
                    .set("mean_batch", s.meanBatchSize)
                    .set("mean_queue_depth", s.meanQueueDepth)
                    .set("plan_switches", switches)
                    .set("sim_busy_s", simBusy)
                    .set("energy_j", s.totalEnergyJoules)
                    .set("cache_hit_rate", pc.hitRate())
                    .set("seed", opts.seed)
                    .print();
            }
        }
    }
    return 0;
}
