/**
 * @file
 * Regenerates Table I: the taxonomy of representative sparse
 * accelerators.
 */

#include <iostream>

#include "accel/taxonomy.h"
#include "bench/bench_util.h"
#include "common/table.h"

using namespace vitcod;

int
main()
{
    bench::printHeader("Table I - sparse accelerator taxonomy",
                       "Table I");
    Table t({"Accelerator", "Field", "Workloads", "Dataflow",
             "Pattern", "Regularity", "Traffic", "BandW", "Sparsity",
             "Co-design"});
    for (const auto &row : accel::taxonomyTable()) {
        t.row()
            .cell(row.name)
            .cell(row.applicationField)
            .cell(row.workloads)
            .cell(row.dataflow)
            .cell(row.sparsityPattern)
            .cell(row.patternRegularity)
            .cell(row.offChipTraffic)
            .cell(row.bandwidthRequirement)
            .cell(row.sparsity)
            .cell(row.algoHwCoDesign ? "yes" : "no");
    }
    t.print(std::cout);
    return 0;
}
