/**
 * @file
 * google-benchmark microbenchmarks of the golden kernels and the
 * simulation substrate at DeiT shapes — library QA rather than a
 * paper figure: these are the functional references every
 * accelerator model is validated against, so their throughput
 * bounds the test suite's and benches' wall time.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/split_conquer.h"
#include "linalg/kernels.h"
#include "linalg/sparse_kernels.h"
#include "model/attention_gen.h"
#include "sim/event_queue.h"

using namespace vitcod;

namespace {

sparse::BitMask
deitMask(double sparsity)
{
    const model::AttentionMapGenerator gen(model::deitSmall());
    core::SplitConquerConfig sc;
    sc.mode = core::PruneMode::TargetSparsity;
    sc.targetSparsity = sparsity;
    return core::splitConquer(gen.generate(6, 0), sc).mask;
}

void
BM_GemmQkvProjection(benchmark::State &state)
{
    Rng rng(1);
    const auto x = linalg::Matrix::randomNormal(197, 384, rng);
    const auto w = linalg::Matrix::randomNormal(384, 384, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::gemm(x, w));
    state.SetItemsProcessed(state.iterations() * 197 * 384 * 384);
}
BENCHMARK(BM_GemmQkvProjection);

void
BM_DenseAttentionScores(benchmark::State &state)
{
    Rng rng(2);
    const auto q = linalg::Matrix::randomNormal(197, 64, rng);
    const auto k = linalg::Matrix::randomNormal(197, 64, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::gemmTransB(q, k));
    state.SetItemsProcessed(state.iterations() * 197 * 197 * 64);
}
BENCHMARK(BM_DenseAttentionScores);

void
BM_Sddmm(benchmark::State &state)
{
    const double sparsity = state.range(0) / 100.0;
    Rng rng(3);
    const auto q = linalg::Matrix::randomNormal(197, 64, rng);
    const auto k = linalg::Matrix::randomNormal(197, 64, rng);
    const auto mask = deitMask(sparsity);
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::sddmm(q, k, mask, 0.125f));
    state.SetItemsProcessed(state.iterations() * mask.nnz() * 64);
}
BENCHMARK(BM_Sddmm)->Arg(50)->Arg(80)->Arg(90)->Arg(95);

void
BM_SpmmAttention(benchmark::State &state)
{
    const double sparsity = state.range(0) / 100.0;
    Rng rng(4);
    const auto q = linalg::Matrix::randomNormal(197, 64, rng);
    const auto k = linalg::Matrix::randomNormal(197, 64, rng);
    const auto v = linalg::Matrix::randomNormal(197, 64, rng);
    const auto mask = deitMask(sparsity);
    const auto s =
        linalg::maskedSoftmaxRows(linalg::sddmm(q, k, mask, 0.125f));
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::spmm(s, v));
    state.SetItemsProcessed(state.iterations() * s.nnz() * 64);
}
BENCHMARK(BM_SpmmAttention)->Arg(50)->Arg(90);

void
BM_SplitConquerOneHead(benchmark::State &state)
{
    const model::AttentionMapGenerator gen(model::deitBase());
    const auto a = gen.generate(6, 3);
    core::SplitConquerConfig sc;
    sc.mode = core::PruneMode::TargetSparsity;
    sc.targetSparsity = 0.9;
    for (auto _ : state)
        benchmark::DoNotOptimize(core::splitConquer(a, sc));
}
BENCHMARK(BM_SplitConquerOneHead);

void
BM_AttentionMapGeneration(benchmark::State &state)
{
    const model::AttentionMapGenerator gen(model::deitBase());
    size_t layer = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.generate(layer % 12, 0));
        ++layer;
    }
}
BENCHMARK(BM_AttentionMapGeneration);

void
BM_EventQueueThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        uint64_t fired = 0;
        for (sim::Tick t = 0; t < 10000; ++t)
            eq.schedule(t, [&fired] { ++fired; });
        eq.runUntilEmpty();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

} // namespace

BENCHMARK_MAIN();
