/**
 * @file
 * Shared helpers for the experiment harnesses: plan caching (plans
 * are deterministic, so one build per (model, sparsity, AE) tuple
 * suffices), speedup aggregation and a standard header that records
 * the hardware configuration every experiment ran with.
 */

#ifndef VITCOD_BENCH_BENCH_UTIL_H
#define VITCOD_BENCH_BENCH_UTIL_H

#include <map>
#include <string>
#include <vector>

#include "accel/device.h"
#include "core/pipeline.h"

namespace vitcod::bench {

/** Cache of deterministic model plans keyed by (name, sparsity, ae). */
class PlanCache
{
  public:
    const core::ModelPlan &get(const model::VitModelConfig &m,
                               double sparsity, bool use_ae);

  private:
    std::map<std::string, core::ModelPlan> cache_;
};

/** Latency of one device on one plan, core attention or end-to-end. */
double runSeconds(accel::Device &dev, const core::ModelPlan &plan,
                  bool end_to_end);

/** Print the standard experiment banner (paper Sec. VI-A config). */
void printHeader(const std::string &experiment,
                 const std::string &paper_reference);

} // namespace vitcod::bench

#endif // VITCOD_BENCH_BENCH_UTIL_H
