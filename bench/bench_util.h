/**
 * @file
 * Shared helpers for the experiment harnesses: plan caching (plans
 * are deterministic, so one build per (model, sparsity, AE) tuple
 * suffices), speedup aggregation, a standard header that records
 * the hardware configuration every experiment ran with, common CLI
 * options (--seed, --json) and machine-readable JSON result rows
 * that downstream tooling can collect into BENCH_*.json
 * trajectories.
 */

#ifndef VITCOD_BENCH_BENCH_UTIL_H
#define VITCOD_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "accel/device.h"
#include "core/pipeline.h"

namespace vitcod::bench {

/** Cache of deterministic model plans keyed by (name, sparsity, ae). */
class PlanCache
{
  public:
    const core::ModelPlan &get(const model::VitModelConfig &m,
                               double sparsity, bool use_ae);

  private:
    std::map<std::string, core::ModelPlan> cache_;
};

/** Latency of one device on one plan, core attention or end-to-end. */
double runSeconds(const accel::Device &dev,
                  const core::ModelPlan &plan, bool end_to_end);

/** Print the standard experiment banner (paper Sec. VI-A config). */
void printHeader(const std::string &experiment,
                 const std::string &paper_reference);

/** Options every bench accepts; unknown argv entries are ignored. */
struct CliOptions
{
    uint64_t seed = 1; //!< --seed N / --seed=N
    bool json = false; //!< --json: machine-readable rows only

    /**
     * --smoke: minimal deterministic run for CI — fewest sweep
     * points / repetitions that still exercise every code path.
     * CMake registers each bench with --smoke under the "bench"
     * CTest label.
     */
    bool smoke = false;

    /** --threads N / --threads=N: worker threads (0 = bench picks). */
    size_t threads = 0;

    /**
     * --trace FILE / --trace=FILE: record an obs::TraceSession span
     * trace of the whole bench run and write Chrome trace_event
     * JSON to FILE at process exit (empty = tracing off).
     */
    std::string traceOut;

    /**
     * --isa NAME / --isa=NAME: restrict kernel benches to one ISA
     * level ("scalar", "neon", "avx2", "avx512"; empty = all
     * compiled levels). Validated by the bench that uses it.
     */
    std::string isa;
};

/**
 * Parse --seed / --json / --smoke / --threads / --trace / --isa
 * from argv;
 * fatal() on a malformed value. When --trace is given, the
 * process-wide obs::TraceSession is started immediately and an
 * atexit hook stops it and writes the JSON file, so every bench
 * gets tracing without touching its main().
 */
CliOptions parseCli(int argc, char **argv);

/**
 * One machine-readable result row, printed as a single-line JSON
 * object with insertion-ordered keys:
 *
 *   JsonRow().set("bench", "serving").set("p50_ms", 1.2).print();
 */
class JsonRow
{
  public:
    JsonRow &set(const std::string &key, double v);
    JsonRow &set(const std::string &key, uint64_t v);
    JsonRow &set(const std::string &key, int v);
    JsonRow &set(const std::string &key, const char *v);
    JsonRow &set(const std::string &key, const std::string &v);

    /** Serialize to one line (no trailing newline). */
    std::string str() const;

    /** Print the row plus newline. */
    void print(std::FILE *out = stdout) const;

  private:
    /** key -> pre-serialized JSON value, in insertion order. */
    std::vector<std::pair<std::string, std::string>> fields_;
};

} // namespace vitcod::bench

#endif // VITCOD_BENCH_BENCH_UTIL_H
