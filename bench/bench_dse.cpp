/**
 * @file
 * Design-space exploration throughput + quality harness: times the
 * three search algorithms (exhaustive grid, coordinate descent,
 * simulated annealing) of dse::Explorer on a DeiT workload bundle
 * and reports, per algorithm, how many configurations were priced,
 * the frontier size, the evaluation throughput (the Schedule-IR
 * pricing loop is the hot path), and the quality of the result —
 * best-latency speedup over the default accelerator and whether a
 * point dominating the default on latency at equal-or-lower area
 * was found. One JsonRow per (algorithm, workload bundle).
 *
 * --smoke prices the small smokeSpace() grid on DeiT-Tiny only;
 * the full run explores defaultSpace() on a Tiny+Small bundle.
 */

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "dse/explorer.h"

using namespace vitcod;

namespace {

void
report(const std::string &bundle, const std::string &algorithm,
       const dse::DseResult &r, bool json)
{
    const dse::Objectives &base = r.baseline;
    const dse::DsePoint &best = r.frontier.bestLatency();
    const double speedup =
        base.latencySeconds / best.obj.latencySeconds;
    bool dominating = false;
    for (const dse::DsePoint &p : r.frontier.points())
        if (p.obj.latencySeconds < base.latencySeconds &&
            p.obj.areaMm2 <= base.areaMm2)
            dominating = true;
    const double evals_per_sec =
        r.wallSeconds > 0
            ? static_cast<double>(r.evaluated) / r.wallSeconds
            : 0.0;

    if (json) {
        bench::JsonRow()
            .set("bench", "dse")
            .set("bundle", bundle)
            .set("algorithm", algorithm)
            .set("evaluated", r.evaluated)
            .set("frontier", static_cast<uint64_t>(
                                 r.frontier.points().size()))
            .set("wall_ms", r.wallSeconds * 1e3)
            .set("evals_per_sec", evals_per_sec)
            .set("best_latency_us",
                 best.obj.latencySeconds * 1e6)
            .set("speedup_vs_default", speedup)
            .set("dominates_default", dominating ? 1 : 0)
            .print();
    } else {
        std::printf(
            "%-18s %-11s evaluated %5llu  frontier %3zu  "
            "%8.1f evals/s  best %8.2f us  speedup %.3fx  "
            "dominates_default %d\n",
            bundle.c_str(), algorithm.c_str(),
            static_cast<unsigned long long>(r.evaluated),
            r.frontier.points().size(), evals_per_sec,
            best.obj.latencySeconds * 1e6, speedup, dominating);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);

    if (!opts.json)
        bench::printHeader("Design-space exploration",
                           "Sec. VII design-space insights");

    std::vector<dse::WorkloadSpec> bundle = {
        {"DeiT-Tiny", 0.9, true, false, 1.0}};
    std::string bundle_name = "DeiT-Tiny@0.9";
    if (!opts.smoke) {
        bundle.push_back({"DeiT-Small", 0.9, true, false, 1.0});
        bundle_name = "DeiT-Tiny+Small@0.9";
    }

    dse::ExplorerConfig ec;
    ec.seed = opts.seed;
    ec.threads = opts.threads; // 0 = shared engine pool
    if (opts.smoke) {
        ec.annealChains = 2;
        ec.annealSteps = 40;
    }
    dse::Explorer explorer(bundle,
                           opts.smoke
                               ? dse::HwConfigSpace::smokeSpace()
                               : dse::HwConfigSpace::defaultSpace(),
                           ec);

    report(bundle_name, "exhaustive", explorer.exhaustive(),
           opts.json);
    report(bundle_name, "coordinate", explorer.coordinateDescent(),
           opts.json);
    report(bundle_name, "anneal", explorer.anneal(), opts.json);
    return 0;
}
