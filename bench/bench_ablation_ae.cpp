/**
 * @file
 * Auto-encoder ablation (DESIGN.md design-choice index): ViTCoD
 * with/without the AE module and with/without the two-pronged
 * architecture, plus a DRAM-bandwidth sweep showing where the
 * trade-movement-for-compute bet pays off. The paper's Fig. 19
 * analysis attributes ~2.5x to the AE at its (bandwidth-starved)
 * operating point; this reproduction's more aggressive overlap
 * makes the default 76.8 GB/s point compute-bound, so the AE's
 * latency gain concentrates at lower bandwidths while the traffic
 * gain is universal (documented in EXPERIMENTS.md).
 */

#include <iostream>

#include "accel/vitcod_accel.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"

using namespace vitcod;

int
main()
{
    bench::printHeader(
        "Design ablation - AE module & two-pronged architecture",
        "Fig. 19 analysis + Sec. V-B; AE trades DRAM traffic for "
        "decoder computation");

    bench::PlanCache cache;

    printBanner(std::cout,
                "2x2 ablation at 90% sparsity (geomean over the six "
                "DeiT/LeViT models; latency normalized to full "
                "ViTCoD)");
    struct Variant
    {
        const char *name;
        bool ae;
        bool two_pronged;
    };
    const Variant variants[] = {
        {"ViTCoD (full)", true, true},
        {"- AE", false, true},
        {"- two-pronged", true, false},
        {"- both", false, false},
    };

    double full_latency = 0.0;
    Table t({"Variant", "Norm. latency", "Attn DRAM (KiB/model)",
             "MACs (G/model)"});
    for (const auto &v : variants) {
        accel::ViTCoDConfig cfg;
        cfg.enableAeEngines = v.ae;
        cfg.twoPronged = v.two_pronged;
        cfg.name = v.name;
        accel::ViTCoDAccelerator acc(cfg);
        RunningStat lat, traffic, macs;
        for (const auto &m : model::coreSixModels()) {
            const auto &plan = cache.get(m, 0.9, v.ae);
            const accel::RunStats rs = acc.runAttention(plan);
            lat.add(rs.seconds);
            traffic.add(static_cast<double>(rs.dramTotal()));
            macs.add(static_cast<double>(rs.macs));
        }
        if (full_latency == 0.0)
            full_latency = lat.geomean();
        t.row()
            .cell(v.name)
            .cellRatio(lat.geomean() / full_latency, 2)
            .cell(traffic.geomean() / 1024.0, 0)
            .cell(macs.geomean() / 1e9, 2);
    }
    t.print(std::cout);

    printBanner(std::cout,
                "AE benefit vs DRAM bandwidth (DeiT-Base, 90% "
                "sparsity)");
    Table b({"Bandwidth (GB/s)", "no-AE (us)", "AE (us)",
             "AE speedup", "AE traffic saving"});
    for (double bw : {9.6, 19.2, 38.4, 76.8, 153.6}) {
        accel::ViTCoDConfig on_cfg, off_cfg;
        on_cfg.dram.bandwidthGBps = bw;
        off_cfg.dram.bandwidthGBps = bw;
        off_cfg.enableAeEngines = false;
        accel::ViTCoDAccelerator on(on_cfg), off(off_cfg);
        const auto &plan_ae = cache.get(model::deitBase(), 0.9, true);
        const auto &plan_no =
            cache.get(model::deitBase(), 0.9, false);
        const accel::RunStats a = on.runAttention(plan_ae);
        const accel::RunStats n = off.runAttention(plan_no);
        b.row()
            .cell(bw, 1)
            .cell(n.seconds * 1e6, 1)
            .cell(a.seconds * 1e6, 1)
            .cellRatio(n.seconds / a.seconds, 2)
            .cellRatio(static_cast<double>(n.dramTotal()) /
                           static_cast<double>(a.dramTotal()),
                       2);
    }
    b.print(std::cout);

    std::cout << "\nReading: both innovations contribute; the AE's "
                 "latency leverage grows as bandwidth shrinks while "
                 "its traffic/energy saving is constant.\n";
    return 0;
}
