/**
 * @file
 * Kernel-engine throughput bench and the source of the perf-
 * regression CI's JSON rows. For each (n, d, sparsity) attention
 * shape it times
 *
 *  - the scalar golden pipeline
 *    spmm(maskedSoftmaxRows(sddmm(q,k,mask))) as the reference,
 *  - the KernelEngine single-threaded (tiled kernels, Auto dispatch:
 *    CSR row-stationary or CSC K-stationary SDDMM by sparsity),
 *  - the KernelEngine over a ThreadPool (--threads N, default 4),
 *
 * plus the dense QKV-projection GEMM, and emits one JsonRow per
 * measurement with the reference/optimized times and the speedup.
 * CI compares the speedup fields against
 * bench/baselines/engine_baseline.json — speedups are ratios of two
 * timings from the same run, so the gate is robust to runner speed.
 *
 * The headline row the acceptance gate watches: sparse_attn at
 * n=196 d=64 sparsity=0.90 threads=1 must hold speedup >= 3x.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "linalg/engine/engine.h"
#include "linalg/engine/thread_pool.h"
#include "linalg/kernels.h"
#include "linalg/sparse_kernels.h"
#include "sparse/bitmask.h"

using namespace vitcod;

namespace {

/**
 * Deterministic polarized attention mask at an exact nnz budget:
 * a handful of dense "global token" columns, a diagonal band, then
 * seeded random scatter up to the target — the workload shape
 * split-and-conquer produces, without the pipeline's cost.
 */
sparse::BitMask
polarizedMask(size_t n, double sparsity, Rng &rng)
{
    sparse::BitMask mask(n, n);
    const auto target =
        static_cast<size_t>(static_cast<double>(n * n) *
                            (1.0 - sparsity));
    const size_t global_cols = std::max<size_t>(1, n / 32);
    size_t nnz = 0;
    for (size_t r = 0; r < n && nnz < target; ++r) {
        for (size_t c = 0; c < global_cols && nnz < target; ++c) {
            if (!mask.get(r, c)) {
                mask.set(r, c, true);
                ++nnz;
            }
        }
        if (nnz < target && !mask.get(r, r)) {
            mask.set(r, r, true);
            ++nnz;
        }
    }
    while (nnz < target) {
        const auto r = static_cast<size_t>(rng.uniformInt(n));
        const auto c = static_cast<size_t>(rng.uniformInt(n));
        if (!mask.get(r, c)) {
            mask.set(r, c, true);
            ++nnz;
        }
    }
    return mask;
}

/** Best-of-R wall time of @p fn in milliseconds. */
template <typename Fn>
double
bestMs(size_t reps, Fn &&fn)
{
    double best = 1e300;
    for (size_t i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double, std::milli>(t1 - t0)
                      .count());
    }
    return best;
}

double
sink(const linalg::Matrix &m)
{
    // Cheap data dependence so the optimizer cannot drop the run.
    return static_cast<double>(m(0, 0)) + m(m.rows() - 1, m.cols() - 1);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    const size_t reps = opts.smoke ? 3 : 20;
    const size_t mt_threads = opts.threads ? opts.threads : 4;

    if (!opts.json)
        bench::printHeader("kernel engine throughput",
                           "engine QA (no paper figure)");

    linalg::engine::ThreadPool pool(mt_threads);
    const linalg::engine::KernelEngine ref_eng(
        {.mode = linalg::engine::DispatchMode::Reference});
    const linalg::engine::KernelEngine opt1(
        {.mode = linalg::engine::DispatchMode::Optimized});
    const linalg::engine::KernelEngine optN(
        {.mode = linalg::engine::DispatchMode::Optimized}, &pool);

    const size_t n = 196; // DeiT-Base attention shape
    const size_t d = 64;
    double guard = 0.0;

    std::vector<double> sparsities = {0.5, 0.9, 0.95, 0.98};
    if (opts.smoke)
        sparsities = {0.9};

    for (double sp : sparsities) {
        Rng rng(opts.seed);
        const auto q = linalg::Matrix::randomNormal(n, d, rng);
        const auto k = linalg::Matrix::randomNormal(n, d, rng);
        const auto v = linalg::Matrix::randomNormal(n, d, rng);
        const auto mask = polarizedMask(n, sp, rng);
        const float scale = 0.125f;
        const double flops =
            static_cast<double>(mask.nnz()) * d * 2.0 * 2.0;

        const double ref_ms = bestMs(reps, [&] {
            guard += sink(linalg::spmm(
                linalg::maskedSoftmaxRows(
                    linalg::sddmm(q, k, mask, scale)),
                v));
        });
        const double opt_ms = bestMs(reps, [&] {
            guard += sink(opt1.sparseAttention(q, k, v, mask, scale));
        });
        const double mt_ms = bestMs(reps, [&] {
            guard += sink(optN.sparseAttention(q, k, v, mask, scale));
        });

        bench::JsonRow()
            .set("bench", "engine")
            .set("kernel", "sparse_attn")
            .set("n", static_cast<uint64_t>(n))
            .set("d", static_cast<uint64_t>(d))
            .set("sparsity", sp)
            .set("nnz", static_cast<uint64_t>(mask.nnz()))
            .set("threads", 1)
            .set("ref_ms", ref_ms)
            .set("opt_ms", opt_ms)
            .set("speedup", ref_ms / opt_ms)
            .set("opt_gflops", flops / (opt_ms * 1e6))
            .print();
        bench::JsonRow()
            .set("bench", "engine")
            .set("kernel", "sparse_attn")
            .set("n", static_cast<uint64_t>(n))
            .set("d", static_cast<uint64_t>(d))
            .set("sparsity", sp)
            .set("nnz", static_cast<uint64_t>(mask.nnz()))
            .set("threads", static_cast<uint64_t>(mt_threads))
            .set("ref_ms", ref_ms)
            .set("opt_ms", mt_ms)
            .set("speedup", ref_ms / mt_ms)
            .set("scaling_vs_1t", opt_ms / mt_ms)
            .set("opt_gflops", flops / (mt_ms * 1e6))
            .print();
    }

    // Dense GEMM: the QKV projection shape (n x 384 times 384 x 384).
    {
        Rng rng(opts.seed + 1);
        const size_t dm = 384;
        const auto x = linalg::Matrix::randomNormal(n, dm, rng);
        const auto w = linalg::Matrix::randomNormal(dm, dm, rng);
        const double flops = 2.0 * static_cast<double>(n) * dm * dm;

        const double ref_ms =
            bestMs(reps, [&] { guard += sink(linalg::gemm(x, w)); });
        const double opt_ms =
            bestMs(reps, [&] { guard += sink(opt1.gemm(x, w)); });
        const double mt_ms =
            bestMs(reps, [&] { guard += sink(optN.gemm(x, w)); });

        bench::JsonRow()
            .set("bench", "engine")
            .set("kernel", "gemm")
            .set("n", static_cast<uint64_t>(n))
            .set("d", static_cast<uint64_t>(dm))
            .set("threads", 1)
            .set("ref_ms", ref_ms)
            .set("opt_ms", opt_ms)
            .set("speedup", ref_ms / opt_ms)
            .set("opt_gflops", flops / (opt_ms * 1e6))
            .print();
        bench::JsonRow()
            .set("bench", "engine")
            .set("kernel", "gemm")
            .set("n", static_cast<uint64_t>(n))
            .set("d", static_cast<uint64_t>(dm))
            .set("threads", static_cast<uint64_t>(mt_threads))
            .set("ref_ms", ref_ms)
            .set("opt_ms", mt_ms)
            .set("speedup", ref_ms / mt_ms)
            .set("scaling_vs_1t", opt_ms / mt_ms)
            .set("opt_gflops", flops / (mt_ms * 1e6))
            .print();
    }

    if (!opts.json)
        std::printf("# guard %.3g (ignore; defeats dead-code elim)\n",
                    guard);

    // Engine-side sanity: the optimized paths must actually have run.
    const auto st = opt1.stats();
    if (st.sddmmCsr + st.sddmmCsc == 0 || st.spmmOptimized == 0)
        fatal("bench_engine: optimized path never dispatched");
    return 0;
}
