/**
 * @file
 * Kernel-engine throughput bench and the source of the perf-
 * regression CI's JSON rows. For each (n, d, sparsity) attention
 * shape it times
 *
 *  - the scalar golden pipeline
 *    spmm(maskedSoftmaxRows(sddmm(q,k,mask))) as the reference,
 *  - the KernelEngine single-threaded once per compiled ISA level
 *    (scalar / NEON / AVX2 / AVX-512, each pinned via
 *    EngineConfig::isa) — one JSON row per (kernel, ISA),
 *  - the KernelEngine over a ThreadPool (--threads N, default 4)
 *    at the auto-resolved ISA,
 *
 * plus the dense QKV-projection GEMM. Each per-ISA row carries two
 * ratios: "speedup" (scalar golden reference / this ISA) and
 * "isa_speedup" (optimized-scalar tier / this ISA — the pure
 * vectorization win). A summary row with isa="best" names the
 * fastest level in "best_isa". Compiled levels the host cannot run
 * emit a row with "skipped": 1 so the CI gate can skip-with-notice
 * instead of failing on a missing row. `--isa=LEVEL` restricts the
 * sweep to one level.
 *
 * CI compares the speedup fields against
 * bench/baselines/engine_baseline.json — speedups are ratios of two
 * timings from the same run, so the gate is robust to runner speed.
 *
 * The headline row the acceptance gate watches: sparse_attn at
 * n=196 d=64 sparsity=0.90 threads=1 isa=avx2 must hold
 * isa_speedup >= 3x over the optimized scalar tier.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "linalg/engine/engine.h"
#include "linalg/engine/isa/isa.h"
#include "linalg/engine/kernels_opt.h"
#include "linalg/engine/thread_pool.h"
#include "linalg/kernels.h"
#include "linalg/sparse_kernels.h"
#include "sparse/bitmask.h"

using namespace vitcod;
using linalg::engine::IsaLevel;
using linalg::engine::KernelEngine;
using linalg::engine::KernelTier;
namespace eisa = linalg::engine::isa;

namespace {

/**
 * Deterministic polarized attention mask at an exact nnz budget:
 * a handful of dense "global token" columns, a diagonal band, then
 * seeded random scatter up to the target — the workload shape
 * split-and-conquer produces, without the pipeline's cost.
 */
sparse::BitMask
polarizedMask(size_t n, double sparsity, Rng &rng)
{
    sparse::BitMask mask(n, n);
    const auto target =
        static_cast<size_t>(static_cast<double>(n * n) *
                            (1.0 - sparsity));
    const size_t global_cols = std::max<size_t>(1, n / 32);
    size_t nnz = 0;
    for (size_t r = 0; r < n && nnz < target; ++r) {
        for (size_t c = 0; c < global_cols && nnz < target; ++c) {
            if (!mask.get(r, c)) {
                mask.set(r, c, true);
                ++nnz;
            }
        }
        if (nnz < target && !mask.get(r, r)) {
            mask.set(r, r, true);
            ++nnz;
        }
    }
    while (nnz < target) {
        const auto r = static_cast<size_t>(rng.uniformInt(n));
        const auto c = static_cast<size_t>(rng.uniformInt(n));
        if (!mask.get(r, c)) {
            mask.set(r, c, true);
            ++nnz;
        }
    }
    return mask;
}

/** Best-of-R wall time of @p fn in milliseconds. */
template <typename Fn>
double
bestMs(size_t reps, Fn &&fn)
{
    double best = 1e300;
    for (size_t i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double, std::milli>(t1 - t0)
                      .count());
    }
    return best;
}

double
sink(const linalg::Matrix &m)
{
    // Cheap data dependence so the optimizer cannot drop the run.
    return static_cast<double>(m(0, 0)) + m(m.rows() - 1, m.cols() - 1);
}

/** Per-ISA launch counter of @p st for @p level. */
uint64_t
isaLaunches(const linalg::engine::DispatchStats &st, IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar: return st.isaScalar;
    case IsaLevel::Neon: return st.isaNeon;
    case IsaLevel::Avx2: return st.isaAvx2;
    case IsaLevel::Avx512: return st.isaAvx512;
    }
    return 0;
}

/** One single-threaded engine pinned to a host-supported level. */
struct IsaEngine
{
    IsaLevel level;
    const KernelEngine *engine; // owned by main (or scalar1)
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    const size_t reps = opts.smoke ? 3 : 20;
    const size_t mt_threads = opts.threads ? opts.threads : 4;

    if (!opts.json)
        bench::printHeader("kernel engine throughput",
                           "engine QA (no paper figure)");

    // ISA sweep: every compiled level, or just --isa=LEVEL.
    std::optional<IsaLevel> only;
    if (!opts.isa.empty() && opts.isa != "auto") {
        only = linalg::engine::parseIsaName(opts.isa);
        if (!only)
            fatal("--isa: unknown ISA level '", opts.isa, "'");
        if (!eisa::isaCompiled(*only))
            fatal("--isa ", opts.isa,
                  ": level not compiled into this binary");
    }
    // Optimized-scalar tier: denominator of "isa_speedup" (always
    // measured even under --isa so the ratio stays well-defined).
    const KernelEngine scalar1({.tier = KernelTier::Optimized,
                                .isa = IsaLevel::Scalar});

    const eisa::CpuFeatures host = eisa::hostCpuFeatures();
    std::vector<std::unique_ptr<KernelEngine>> owned;
    std::vector<IsaEngine> engines;  // host-supported, pinned 1T
    std::vector<IsaLevel> skipped;   // compiled but unsupported here
    for (IsaLevel level : eisa::compiledIsaLevels()) {
        if (only && *only != level)
            continue;
        if (!eisa::cpuSupports(host, level)) {
            skipped.push_back(level);
        } else if (level == IsaLevel::Scalar) {
            engines.push_back({level, &scalar1});
        } else {
            owned.push_back(std::make_unique<KernelEngine>(
                linalg::engine::EngineConfig{
                    .tier = KernelTier::Optimized, .isa = level}));
            engines.push_back({level, owned.back().get()});
        }
    }

    linalg::engine::ThreadPool pool(mt_threads);
    const KernelEngine optN({.tier = KernelTier::Optimized}, &pool);

    const size_t n = 196; // DeiT-Base attention shape
    const size_t d = 64;
    double guard = 0.0;

    /**
     * Emit the full row set for one kernel shape: a row per ISA
     * level, skip rows, the isa="best" summary row and the
     * multithreaded auto-ISA row. @p run must invoke the kernel
     * under test on the engine it is given.
     */
    const auto emitGroup = [&](const char *kernel, size_t gn,
                               size_t gd, double sp, uint64_t nnz,
                               bool has_sp, double flops,
                               double ref_ms, const auto &run) {
        const auto base = [&](const char *isa_name, int threads) {
            bench::JsonRow row;
            row.set("bench", "engine")
                .set("kernel", kernel)
                .set("n", static_cast<uint64_t>(gn))
                .set("d", static_cast<uint64_t>(gd));
            if (has_sp)
                row.set("sparsity", sp)
                    .set("nnz", nnz);
            row.set("threads", threads).set("isa", isa_name);
            return row;
        };

        const double scalar_ms =
            bestMs(reps, [&] { guard += run(scalar1); });
        double best_ms = 1e300;
        IsaLevel best = IsaLevel::Scalar;
        for (const IsaEngine &ie : engines) {
            const double ms = ie.level == IsaLevel::Scalar
                                  ? scalar_ms
                                  : bestMs(reps, [&] {
                                        guard += run(*ie.engine);
                                    });
            if (ms < best_ms) {
                best_ms = ms;
                best = ie.level;
            }
            base(linalg::engine::isaName(ie.level), 1)
                .set("ref_ms", ref_ms)
                .set("opt_ms", ms)
                .set("speedup", ref_ms / ms)
                .set("isa_speedup", scalar_ms / ms)
                .set("opt_gflops", flops / (ms * 1e6))
                .print();
        }
        for (IsaLevel level : skipped)
            base(linalg::engine::isaName(level), 1)
                .set("skipped", 1)
                .set("reason", std::string("host lacks ") +
                                   linalg::engine::isaName(level))
                .print();
        base("best", 1)
            .set("best_isa", linalg::engine::isaName(best))
            .set("ref_ms", ref_ms)
            .set("opt_ms", best_ms)
            .set("speedup", ref_ms / best_ms)
            .set("isa_speedup", scalar_ms / best_ms)
            .set("opt_gflops", flops / (best_ms * 1e6))
            .print();

        const double mt_ms =
            bestMs(reps, [&] { guard += run(optN); });
        base("auto", static_cast<int>(mt_threads))
            .set("isa_resolved",
                 linalg::engine::isaName(optN.isaLevel()))
            .set("ref_ms", ref_ms)
            .set("opt_ms", mt_ms)
            .set("speedup", ref_ms / mt_ms)
            .set("scaling_vs_1t", best_ms / mt_ms)
            .set("opt_gflops", flops / (mt_ms * 1e6))
            .print();
    };

    std::vector<double> sparsities = {0.5, 0.9, 0.95, 0.98};
    if (opts.smoke)
        sparsities = {0.9};

    for (double sp : sparsities) {
        Rng rng(opts.seed);
        const auto q = linalg::Matrix::randomNormal(n, d, rng);
        const auto k = linalg::Matrix::randomNormal(n, d, rng);
        const auto v = linalg::Matrix::randomNormal(n, d, rng);
        const auto mask = polarizedMask(n, sp, rng);
        const float scale = 0.125f;
        const double flops =
            static_cast<double>(mask.nnz()) * d * 2.0 * 2.0;

        const double ref_ms = bestMs(reps, [&] {
            guard += sink(linalg::spmm(
                linalg::maskedSoftmaxRows(
                    linalg::sddmm(q, k, mask, scale)),
                v));
        });
        // Prebuilt layout + preallocated output, exactly like the
        // ModelExecutor request path: the rows measure the kernels,
        // not the allocator or the engine's structure cache.
        std::vector<uint32_t> row_ptr, col_idx, col_ptr, row_idx;
        linalg::engine::maskToCsrStructure(mask, row_ptr, col_idx);
        const bool use_csc =
            static_cast<double>(mask.nnz()) <
            (1.0 - linalg::engine::EngineConfig{}.cscSparsityThreshold) *
                static_cast<double>(n * n);
        if (use_csc)
            linalg::engine::csrToCscStructure(n, n, row_ptr, col_idx,
                                              col_ptr, row_idx);
        const linalg::engine::MaskLayoutView layout{
            n, n, &row_ptr, &col_idx, &col_ptr, &row_idx, use_csc};
        linalg::Matrix attn_out;
        emitGroup("sparse_attn", n, d, sp, mask.nnz(), true, flops,
                  ref_ms, [&](const KernelEngine &eng) {
                      eng.sparseAttentionInto(q, k, v, mask, layout,
                                              scale, attn_out);
                      return sink(attn_out);
                  });
    }

    // Dense GEMM: the QKV projection shape (n x 384 times 384 x 384).
    {
        Rng rng(opts.seed + 1);
        const size_t dm = 384;
        const auto x = linalg::Matrix::randomNormal(n, dm, rng);
        const auto w = linalg::Matrix::randomNormal(dm, dm, rng);
        const double flops = 2.0 * static_cast<double>(n) * dm * dm;

        const double ref_ms =
            bestMs(reps, [&] { guard += sink(linalg::gemm(x, w)); });
        linalg::Matrix gemm_out;
        emitGroup("gemm", n, dm, 0.0, 0, false, flops, ref_ms,
                  [&](const KernelEngine &eng) {
                      eng.gemmInto(x, w, gemm_out);
                      return sink(gemm_out);
                  });
    }

    if (!opts.json)
        std::printf("# guard %.3g (ignore; defeats dead-code elim)\n",
                    guard);

    // Engine-side sanity: every pinned engine must have dispatched
    // its optimized kernels on exactly the ISA it was pinned to.
    for (const IsaEngine &ie : engines) {
        const auto st = ie.engine->stats();
        if (st.sddmmCsr + st.sddmmCsc == 0 || st.spmmOptimized == 0)
            fatal("bench_engine: optimized path never dispatched on ",
                  linalg::engine::isaName(ie.level));
        if (isaLaunches(st, ie.level) == 0)
            fatal("bench_engine: engine pinned to ",
                  linalg::engine::isaName(ie.level),
                  " never launched kernels at that level");
    }
    return 0;
}
