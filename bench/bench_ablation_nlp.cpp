/**
 * @file
 * Regenerates the Sec. VI-B "Discussion of NLP Models" experiment:
 * on BERT-Base-class NLP workloads ViTCoD's static masks degrade
 * accuracy (e.g. -1.18% at 60% on GLUE-MRPC), so a fair comparison
 * charges ViTCoD with on-the-fly dynamic mask prediction; even so
 * it keeps 1.93x / 3.69x attention speedups over Sanger at 60% /
 * 90% sparsity.
 */

#include <iostream>

#include "accel/sanger.h"
#include "accel/vitcod_accel.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "core/accuracy_proxy.h"

using namespace vitcod;

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    bench::printHeader(
        "Sec. VI-B - NLP models with dynamic-prediction overhead",
        "paper: 1.93x / 3.69x over Sanger at 60% / 90% sparsity "
        "once prediction overhead is charged to ViTCoD");

    accel::ViTCoDConfig dyn_cfg;
    dyn_cfg.dynamicMaskPrediction = true;
    dyn_cfg.name = "ViTCoD+dynPred";
    accel::ViTCoDAccelerator vitcod_dyn(dyn_cfg);
    accel::ViTCoDAccelerator vitcod_static;
    accel::SangerAccelerator sanger;

    const core::AccuracyProxy proxy;
    bench::PlanCache cache;

    Table t({"Workload", "Sparsity", "Sanger (us)",
             "ViTCoD static (us)", "ViTCoD +dynPred (us)",
             "Speedup (static)", "Speedup (+dynPred)",
             "Static-mask acc. drop (%)"});
    std::vector<size_t> seqs = {128, 384, 512};
    if (opts.smoke) // one short sequence keeps the plan build cheap
        seqs = {128};
    for (size_t seq : seqs) {
        const auto m = model::bertBase(seq);
        for (double s : {0.6, 0.9}) {
            const auto &plan = cache.get(m, s, true);
            const double t_sa =
                sanger.runAttention(plan).seconds * 1e6;
            const double t_st =
                vitcod_static.runAttention(plan).seconds * 1e6;
            const double t_dy =
                vitcod_dyn.runAttention(plan).seconds * 1e6;
            const double drop = proxy.dropFromMask(
                plan.avgRetainedMass, model::Task::NlpGlue);
            t.row()
                .cell(m.name)
                .cell(s * 100.0, 0)
                .cell(t_sa, 1)
                .cell(t_st, 1)
                .cell(t_dy, 1)
                .cellRatio(t_sa / t_st, 2)
                .cellRatio(t_sa / t_dy, 2)
                .cell(drop, 2);
        }
    }
    t.print(std::cout);

    std::cout << "\nReading: static masks cost NLP accuracy (the "
                 "reason ViTCoD targets ViTs), and charging dynamic "
                 "prediction shrinks but does not erase ViTCoD's "
                 "advantage over Sanger — larger at 90% than 60%, "
                 "as the paper reports.\n";
    return 0;
}
