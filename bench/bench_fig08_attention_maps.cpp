/**
 * @file
 * Regenerates Fig. 2 / Fig. 8: the structure of DeiT-Base's 144
 * attention maps before and after the split-and-conquer algorithm.
 * Instead of bitmap plots, the harness reports the structural
 * statistics the figures visualize — diagonal concentration, dense
 * (global-token) columns, per-column imbalance and the density of
 * the fronted block — plus an ASCII rendering of one example head.
 */

#include <iostream>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/split_conquer.h"
#include "model/attention_gen.h"
#include "sparse/mask_io.h"

using namespace vitcod;

namespace {

void
asciiRender(const sparse::BitMask &mask, size_t cells)
{
    const size_t n = mask.rows();
    for (size_t br = 0; br < cells; ++br) {
        for (size_t bc = 0; bc < cells; ++bc) {
            size_t nnz = 0, tot = 0;
            for (size_t r = br * n / cells; r < (br + 1) * n / cells;
                 ++r)
                for (size_t c = bc * n / cells;
                     c < (bc + 1) * n / cells; ++c) {
                    nnz += mask.get(r, c);
                    ++tot;
                }
            const double d =
                static_cast<double>(nnz) / static_cast<double>(tot);
            std::cout << (d > 0.6   ? '#'
                          : d > 0.3 ? '+'
                          : d > 0.1 ? '.'
                                    : ' ');
        }
        std::cout << '\n';
    }
}

} // namespace

int
main()
{
    bench::printHeader(
        "Fig. 2/8 - attention map structure under split & conquer",
        "Fig. 8: 144 DeiT-Base heads pruned (90%) + reordered show "
        "a clustered dense block at the left and a sparse diagonal "
        "remainder");

    const auto m = model::deitBase();
    const model::AttentionMapGenerator gen(m);
    core::SplitConquerConfig sc;
    sc.mode = core::PruneMode::TargetSparsity;
    sc.targetSparsity = 0.9;

    RunningStat diag_pruned, diag_full, ngt_stat, cv_pruned,
        cv_reordered, front_density, retained;
    const auto shapes = gen.shapes();
    for (size_t l = 0; l < shapes.size(); ++l) {
        for (size_t head = 0; head < shapes[l].heads; ++head) {
            const auto a = gen.generate(l, head);
            const auto pruned = core::pruneOnly(a, sc);
            const auto full = core::splitConquer(a, sc);
            const auto prof_p =
                sparse::profileMask(pruned.mask, 10, 0.3, 0);
            const auto prof_f = sparse::profileMask(
                full.mask, 10, 0.3,
                std::max<size_t>(1, full.numGlobalTokens));
            diag_pruned.add(prof_p.diagonalFraction);
            diag_full.add(prof_f.diagonalFraction);
            ngt_stat.add(static_cast<double>(full.numGlobalTokens));
            cv_pruned.add(prof_p.columnCv);
            cv_reordered.add(prof_f.columnCv);
            if (full.numGlobalTokens > 0)
                front_density.add(prof_f.firstBlockDensity);
            retained.add(full.retainedMass);
        }
    }

    Table t({"Statistic (144 heads)", "Prune only",
             "Prune + Reorder"});
    t.row()
        .cell("diagonal fraction (|i-j|<=10)")
        .cell(diag_pruned.mean(), 3)
        .cell(diag_full.mean(), 3);
    t.row()
        .cell("per-column nnz CV (imbalance)")
        .cell(cv_pruned.mean(), 3)
        .cell(cv_reordered.mean(), 3);
    t.row()
        .cell("global tokens Ngt (mean)")
        .cell("0")
        .cell(ngt_stat.mean(), 1);
    t.row()
        .cell("fronted-block density")
        .cell("-")
        .cell(front_density.mean(), 3);
    t.row()
        .cell("retained attention mass")
        .cell(retained.mean(), 3)
        .cell(retained.mean(), 3);
    t.print(std::cout);

    printBanner(std::cout,
                "Example head (layer 11, head 0): pruned mask "
                "before reordering");
    {
        const auto a = gen.generate(11, 0);
        asciiRender(core::pruneOnly(a, sc).mask, 48);
    }
    printBanner(std::cout,
                "Same head after reordering (global tokens fronted)");
    {
        const auto a = gen.generate(11, 0);
        asciiRender(core::splitConquer(a, sc).mask, 48);
    }
    // Dump the example head as real PBM images (viewable with any
    // image tool) - the literal Fig. 8 panels.
    {
        const auto a = gen.generate(11, 0);
        sparse::writePbmFile("fig08_prune_only.pbm",
                             core::pruneOnly(a, sc).mask);
        sparse::writePbmFile("fig08_prune_reorder.pbm",
                             core::splitConquer(a, sc).mask);
        std::cout << "\nwrote fig08_prune_only.pbm and "
                     "fig08_prune_reorder.pbm (197x197 bitmaps)\n";
    }

    std::cout << "\nReading: reordering fronts a dense block (left "
                 "columns) and leaves a diagonal-dominated sparse "
                 "remainder - Fig. 8(c)'s structure.\n";
    return 0;
}
