/**
 * @file
 * Telemetry-layer overhead bench and the source of the obs perf-
 * regression CI rows. Measures
 *
 *  - ns per *disabled* span guard (the cost every instrumented
 *    callsite pays when no trace session is running: one relaxed
 *    atomic load and a branch),
 *  - ns per *enabled* span (ring-buffer record path),
 *  - ns per metrics counter inc / histogram observe,
 *  - the bench_engine hot-loop kernel (sparse_attn, n=196 d=64
 *    sparsity=0.90, single thread) as the denominator for the
 *    overhead claim.
 *
 * The gated row is `tracer_overhead`: its `speedup` field is
 * kernel_ns / disabled_span_cost_per_call_ns, where a call pays
 * kSpansPerCall guards (the sparse_attention span plus the sddmm /
 * softmax / spmm spans it dispatches). The acceptance criterion
 * "disabled-tracer overhead <= 1% of the hot loop" is exactly
 * speedup >= 100, which bench/baselines/obs_baseline.json pins as
 * min_speedup. With --smoke the bench also enforces the 1% gate
 * itself and exits nonzero on violation.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "linalg/engine/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparse/bitmask.h"

using namespace vitcod;

namespace {

/** Spans executed per sparseAttention call: the wrapping
 *  sparse_attention span plus sddmm, softmax and spmm. */
constexpr double kSpansPerCall = 4.0;

/** Best-of-R wall time of @p fn over @p iters calls, in ns/call. */
template <typename Fn>
double
bestNsPerOp(size_t reps, size_t iters, Fn &&fn)
{
    double best = 1e300;
    for (size_t r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < iters; ++i)
            fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best,
            std::chrono::duration<double, std::nano>(t1 - t0).count() /
                static_cast<double>(iters));
    }
    return best;
}

sparse::BitMask
randomMask(size_t n, double sparsity, Rng &rng)
{
    sparse::BitMask mask(n, n);
    const auto target = static_cast<size_t>(
        static_cast<double>(n * n) * (1.0 - sparsity));
    size_t nnz = 0;
    for (size_t r = 0; r < n; ++r) { // diagonal keeps rows non-empty
        mask.set(r, r, true);
        ++nnz;
    }
    while (nnz < target) {
        const auto r = static_cast<size_t>(rng.uniformInt(n));
        const auto c = static_cast<size_t>(rng.uniformInt(n));
        if (!mask.get(r, c)) {
            mask.set(r, c, true);
            ++nnz;
        }
    }
    return mask;
}

double
sink(const linalg::Matrix &m)
{
    return static_cast<double>(m(0, 0)) +
           m(m.rows() - 1, m.cols() - 1);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    const size_t reps = opts.smoke ? 3 : 10;
    const size_t iters = opts.smoke ? (1u << 18) : (1u << 20);

    if (!opts.json)
        bench::printHeader("telemetry overhead",
                           "observability QA (no paper figure)");

    obs::TraceSession &session = obs::TraceSession::instance();
    session.stop(); // measure the disabled path first

    const double disabled_ns = bestNsPerOp(reps, iters, [] {
        VITCOD_TRACE_SPAN("probe", "bench");
    });

    {
        obs::TraceConfig cfg;
        cfg.ringCapacity = 1 << 16;
        session.start(cfg);
    }
    const double enabled_ns = bestNsPerOp(reps, iters, [] {
        VITCOD_TRACE_SPAN("probe", "bench", "i", 1.0);
    });
    session.stop();

    obs::MetricsRegistry reg;
    obs::Counter &ctr = reg.counter("bench_probe_total");
    obs::Histogram &hist = reg.histogram("bench_probe_seconds");
    const double counter_ns =
        bestNsPerOp(reps, iters, [&] { ctr.inc(); });
    double v = 1e-6;
    const double observe_ns = bestNsPerOp(reps, iters, [&] {
        hist.observe(v);
        v += 1e-9; // walk across buckets; defeats branch predictor
    });

    // The hot loop the 1% claim is made against: bench_engine's
    // headline sparse_attn shape on the single-threaded engine.
    const size_t n = 196, d = 64;
    const double sp = 0.9;
    Rng rng(opts.seed);
    const auto q = linalg::Matrix::randomNormal(n, d, rng);
    const auto k = linalg::Matrix::randomNormal(n, d, rng);
    const auto val = linalg::Matrix::randomNormal(n, d, rng);
    const auto mask = randomMask(n, sp, rng);
    const linalg::engine::KernelEngine eng(
        {.tier = linalg::engine::KernelTier::Optimized});

    double guard = 0.0;
    const size_t kreps = opts.smoke ? 5 : 30;
    const double kernel_ns = bestNsPerOp(kreps, 1, [&] {
        guard += sink(eng.sparseAttention(q, k, val, mask, 0.125f));
    });

    const double per_call_ns = kSpansPerCall * disabled_ns;
    const double overhead_pct = 100.0 * per_call_ns / kernel_ns;
    const double speedup = kernel_ns / per_call_ns;

    bench::JsonRow()
        .set("bench", "obs")
        .set("kernel", "span_disabled")
        .set("threads", 1)
        .set("ns_per_op", disabled_ns)
        .print();
    bench::JsonRow()
        .set("bench", "obs")
        .set("kernel", "span_enabled")
        .set("threads", 1)
        .set("ns_per_op", enabled_ns)
        .print();
    bench::JsonRow()
        .set("bench", "obs")
        .set("kernel", "counter_inc")
        .set("threads", 1)
        .set("ns_per_op", counter_ns)
        .print();
    bench::JsonRow()
        .set("bench", "obs")
        .set("kernel", "histogram_observe")
        .set("threads", 1)
        .set("ns_per_op", observe_ns)
        .print();
    bench::JsonRow()
        .set("bench", "obs")
        .set("kernel", "tracer_overhead")
        .set("n", static_cast<uint64_t>(n))
        .set("d", static_cast<uint64_t>(d))
        .set("sparsity", sp)
        .set("threads", 1)
        .set("kernel_ms", kernel_ns * 1e-6)
        .set("spans_per_call", kSpansPerCall)
        .set("disabled_span_ns", disabled_ns)
        .set("overhead_pct", overhead_pct)
        .set("speedup", speedup)
        .print();

    if (!opts.json)
        std::printf("# guard %.3g (ignore; defeats dead-code elim)\n",
                    guard);

    if (opts.smoke && overhead_pct > 1.0)
        fatal("bench_obs: disabled-tracer overhead ", overhead_pct,
              "% exceeds the 1% acceptance gate (", disabled_ns,
              " ns/span vs ", kernel_ns * 1e-6, " ms/kernel)");
    return 0;
}
