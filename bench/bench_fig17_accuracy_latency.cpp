/**
 * @file
 * Regenerates Fig. 17: accuracy-vs-latency trade-off of the full
 * ViTCoD algorithm (split & conquer + 50% AE) against unpruned
 * baselines on the ViTCoD accelerator, for the six DeiT/LeViT
 * models — the paper reports 45.1-85.8% (DeiT) and 72.0-84.3%
 * (LeViT) attention-latency reductions at <1% accuracy drop, and an
 * ablation over sparsity ratios 50-95%.
 */

#include <iostream>

#include "accel/vitcod_accel.h"
#include "bench/bench_util.h"
#include "common/table.h"

using namespace vitcod;

int
main(int argc, char **argv)
{
    const bench::CliOptions opts = bench::parseCli(argc, argv);
    bench::printHeader(
        "Fig. 17 - accuracy vs attention latency",
        "Fig. 17 + Sec. VI-C; DeiT sustains 90% sparsity, LeViT "
        "80%, both at <1% accuracy drop");

    accel::ViTCoDAccelerator acc;
    bench::PlanCache cache;

    std::vector<model::VitModelConfig> op_models =
        model::coreSixModels();
    std::vector<model::VitModelConfig> abl_models = {
        model::deitBase(), model::levit256()};
    std::vector<double> abl_sparsities = {0.5, 0.6, 0.7,
                                          0.8, 0.9, 0.95};
    if (opts.smoke) { // plan builds dominate the wall time
        op_models = {model::deitTiny()};
        abl_models = {model::deitTiny()};
        abl_sparsities = {0.9};
    }

    printBanner(std::cout,
                "Operating points (nominal sparsity, AE 50%)");
    Table t({"Model", "Sparsity", "Top-1 dense", "Top-1 ViTCoD",
             "Attn lat (us) dense", "Attn lat (us) ViTCoD",
             "Latency reduction"});
    for (const auto &m : op_models) {
        const auto &dense = cache.get(m, 0.0, false);
        const auto &sparse = cache.get(m, m.nominalSparsity, true);
        const double t_d = acc.runAttention(dense).seconds * 1e6;
        const double t_s = acc.runAttention(sparse).seconds * 1e6;
        t.row()
            .cell(m.name)
            .cell(m.nominalSparsity * 100.0, 0)
            .cell(m.baselineQuality, 1)
            .cell(sparse.estimatedQuality, 1)
            .cell(t_d, 1)
            .cell(t_s, 1)
            .cell(100.0 * (1.0 - t_s / t_d), 1);
    }
    t.print(std::cout);

    printBanner(std::cout,
                "Sparsity-ratio ablation (DeiT-Base & LeViT-256)");
    Table a({"Model", "Sparsity", "Top-1 est.", "Accuracy drop",
             "Attn latency (us)", "Reduction vs dense"});
    for (const auto &m : abl_models) {
        const auto &dense = cache.get(m, 0.0, false);
        const double t_d = acc.runAttention(dense).seconds * 1e6;
        for (double s : abl_sparsities) {
            const auto &plan = cache.get(m, s, true);
            const double t_s = acc.runAttention(plan).seconds * 1e6;
            a.row()
                .cell(m.name)
                .cell(s * 100.0, 0)
                .cell(plan.estimatedQuality, 2)
                .cell(m.baselineQuality - plan.estimatedQuality, 2)
                .cell(t_s, 1)
                .cell(100.0 * (1.0 - t_s / t_d), 1);
        }
    }
    a.print(std::cout);

    std::cout << "\nReading: large attention-latency cuts at <1% "
                 "drop up to each family's nominal sparsity; drops "
                 "grow past it (DeiT tolerates 90%, LeViT 80%).\n";
    return 0;
}
