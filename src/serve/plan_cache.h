/**
 * @file
 * Shared, thread-safe cache of compiled serving plans. Each distinct
 * PlanKey is built exactly once — the ViTCoD algorithm pipeline
 * (Fig. 10) plus the instruction compiler (Fig. 14) both run on the
 * first request for a task — and the resulting immutable
 * CompiledPlan is shared by reference across every worker thereafter
 * ("one-time compilation cost for each task", Sec. V-B3).
 *
 * Concurrency: the first requester of a key publishes an in-flight
 * slot and compiles *outside* the cache lock; concurrent requesters
 * of the same key block on a shared_future instead of compiling
 * twice. An optional capacity bounds the cache with LRU eviction.
 */

#ifndef VITCOD_SERVE_PLAN_CACHE_H
#define VITCOD_SERVE_PLAN_CACHE_H

#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "accel/compiler.h"
#include "core/pipeline.h"
#include "serve/request.h"

namespace vitcod::serve {

/** Everything a worker needs to serve one task; immutable once built. */
struct CompiledPlan
{
    PlanKey key;
    core::ModelPlan plan;      //!< algorithm output (all backends)

    /**
     * The compiled Schedule IR: masks scanned and the static
     * schedule derived exactly once per task. The instruction
     * stream below is lowered from it, the simulated estimate is
     * priced from it, and ModelExec workers execute from its
     * per-head layouts.
     */
    core::schedule::ModelSchedule schedule;

    accel::Program program;    //!< instruction stream (ViTCoD backend)

    /**
     * ViTCoD-simulated cost of one inference of this plan (priced
     * from the schedule at compile time). ServerStats reports it
     * against each backend's measured per-request latency.
     */
    accel::RunStats simEstimate;

    /**
     * Simulated cost of switching a backend onto this plan: stream
     * the model weights over the configured DRAM. Charged by a
     * backend whenever consecutive batches change plans.
     */
    Seconds weightLoadSeconds = 0;

    /** Wall time the build + compile actually took. */
    double compileWallSeconds = 0;
};

/** Estimated parameter bytes of @p m at @p elem_bytes per weight. */
Bytes modelWeightBytes(const model::VitModelConfig &m,
                       size_t elem_bytes);

/**
 * Tuned-config hook: load a design-space-exploration result file
 * (a dse::ParetoFrontier JSON, see docs/DSE.md) and return its
 * best-latency point applied onto @p base. Pass the result as the
 * PlanCache / ServerConfig hardware config to compile and price
 * plans against the tuned accelerator instead of the default;
 * fatal() when the file is missing, malformed or has an empty
 * frontier.
 */
accel::ViTCoDConfig
tunedHwConfig(const std::string &frontier_path,
              const accel::ViTCoDConfig &base = {});

/** Thread-safe LRU cache of CompiledPlans. */
class PlanCache
{
  public:
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        double compileWallSeconds = 0; //!< total time spent compiling

        double
        hitRate() const
        {
            const uint64_t n = hits + misses;
            return n ? static_cast<double>(hits) /
                           static_cast<double>(n)
                     : 0.0;
        }
    };

    /**
     * @param hw Hardware configuration the Programs are compiled for.
     * @param capacity Max resident plans; 0 = unbounded.
     */
    explicit PlanCache(accel::ViTCoDConfig hw = {}, size_t capacity = 0);

    /**
     * Resolve @p key, compiling on first sight. Blocks while another
     * thread compiles the same key. Never returns null.
     */
    std::shared_ptr<const CompiledPlan> get(const PlanKey &key);

    Stats stats() const;

    /** Resident (fully built) plan count. */
    size_t size() const;

    const accel::ViTCoDConfig &hwConfig() const { return hw_; }

  private:
    using PlanPtr = std::shared_ptr<const CompiledPlan>;

    struct Entry
    {
        std::shared_future<PlanPtr> future;
        std::list<std::string>::iterator lruIt; //!< valid when ready
        bool ready = false;
    };

    /** Build + compile one plan; runs outside lock_. */
    PlanPtr build(const PlanKey &key) const;

    accel::ViTCoDConfig hw_;
    size_t capacity_;

    mutable std::mutex lock_;
    std::unordered_map<std::string, Entry> entries_;
    std::list<std::string> lru_; //!< front = most recently used
    Stats stats_;
};

} // namespace vitcod::serve

#endif // VITCOD_SERVE_PLAN_CACHE_H
