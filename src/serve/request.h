/**
 * @file
 * Request/response currency of the serving runtime. A request names
 * the *task* it wants served — (model, sparsity, AE, scope) — not a
 * plan object: plans are deterministic in that key, so the server
 * resolves them through its PlanCache and amortizes the one-time
 * compilation cost (paper Sec. V-B3) across all traffic for the
 * task.
 */

#ifndef VITCOD_SERVE_REQUEST_H
#define VITCOD_SERVE_REQUEST_H

#include <cstdint>
#include <string>

#include "common/units.h"

namespace vitcod::serve {

/**
 * Identity of a servable task. Two requests with equal keys share
 * the same ModelPlan and compiled Program.
 */
struct PlanKey
{
    std::string model = "DeiT-Small"; //!< model::modelByName() name
    double sparsity = 0.9;        //!< attention-mask target sparsity
    bool useAe = true;            //!< auto-encoder compression on?
    bool endToEnd = false;        //!< full inference vs core attention

    bool operator==(const PlanKey &o) const = default;

    /** Canonical string form; used as the cache/bucket key. */
    std::string str() const;
};

/** One inference request admitted to the server. */
struct InferenceRequest
{
    uint64_t id = 0;
    PlanKey key;
    int priority = 0;        //!< higher runs earlier (Priority policy)
    double submitSeconds = 0; //!< server-epoch wall time of admission

    /**
     * The plan's schedule-derived per-request simulated latency
     * (CompiledPlan::simEstimate) the request was admitted under.
     * The admission controller charges this to its backlog at
     * admit time and releases exactly the same value at
     * completion, so the backlog never drifts even if the plan
     * recompiles mid-flight with a different estimate.
     */
    double predictedServiceSeconds = 0;

    /** True when admission demoted the request into its grace band. */
    bool deprioritized = false;
};

/** Completion record for one request. */
struct InferenceResponse
{
    uint64_t id = 0;
    std::string backend;      //!< worker backend that served it
    size_t batchSize = 0;     //!< size of the batch it rode in
    int priority = 0;

    /** Server-epoch wall time spent queued before dispatch. */
    double queueSeconds = 0;
    /** Server-epoch wall time from submit to completion. */
    double wallLatencySeconds = 0;
    /** Simulated device time for this request (marginal, per-item). */
    Seconds simSeconds = 0;
    /** Simulated device time of the whole batch (incl. plan switch). */
    Seconds simBatchSeconds = 0;
    /** Simulated energy of this request's share of the batch. */
    double energyJoules = 0;
    /** Echo of InferenceRequest::predictedServiceSeconds. */
    double predictedServiceSeconds = 0;
    /** Echo of InferenceRequest::deprioritized. */
    bool deprioritized = false;
};

} // namespace vitcod::serve

#endif // VITCOD_SERVE_REQUEST_H
