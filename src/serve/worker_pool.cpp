#include "serve/worker_pool.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vitcod::serve {

WorkerPool::WorkerPool(
    std::vector<std::unique_ptr<ServeBackend>> backends,
    BatchScheduler &scheduler, PlanCache &cache, ServerStats &stats,
    std::function<void(const InferenceResponse &)> on_complete,
    std::function<double()> clock, double realtime_factor)
    : backends_(std::move(backends)), scheduler_(scheduler),
      cache_(cache), stats_(stats),
      onComplete_(std::move(on_complete)), clock_(std::move(clock)),
      realtimeFactor_(realtime_factor)
{
    VITCOD_ASSERT(!backends_.empty(), "worker pool needs >= 1 backend");
    for (size_t i = 0; i < backends_.size(); ++i)
        stats_.registerBackend(i, backends_[i]->name());
}

WorkerPool::~WorkerPool()
{
    join();
}

void
WorkerPool::start()
{
    if (pool_)
        return;
    pool_ = std::make_unique<linalg::engine::ThreadPool>(
        backends_.size());
    for (size_t i = 0; i < backends_.size(); ++i)
        pool_->submit([this, i] { workerMain(i); });
}

void
WorkerPool::join()
{
    if (!pool_)
        return;
    pool_->waitIdle();
    pool_.reset();
}

void
WorkerPool::workerMain(size_t idx)
{
    ServeBackend &backend = *backends_[idx];
    obs::TraceSession::instance().setThreadName(
        "serve-" + std::to_string(idx) + "-" + backend.name());

    obs::MetricsRegistry &reg = obs::metrics();
    obs::Counter &batchesTotal = reg.counter(
        "vitcod_serve_batches_total", "Batches executed by workers");
    obs::Counter &completedTotal =
        reg.counter("vitcod_serve_requests_completed_total",
                    "Requests completed by workers");
    obs::Histogram &wallLatency =
        reg.histogram("vitcod_serve_wall_latency_seconds",
                      "Request wall latency, submit to completion");
    obs::Histogram &batchSize = reg.histogram(
        "vitcod_serve_batch_size", "Requests per executed batch");

    // Virtual device clock: ticks advance by each batch's simulated
    // duration, giving busy time in the backend's clock domain.
    sim::EventQueue deviceClock;

    // Continuous-batching affinity: the plan this worker executed
    // last. The scheduler prefers topping up this plan's next batch
    // (requests that arrived while the previous batch ran) so the
    // worker refills in flight without a weight reload.
    PlanKey residentPlan;
    bool hasResident = false;

    while (auto batch = scheduler_.waitBatch(
               hasResident ? &residentPlan : nullptr)) {
        const size_t n = batch->requests.size();

        obs::SpanGuard batchSpan("batch", "serve", "size", double(n),
                                 "worker", double(idx));
        // Flow waypoints land on this worker's track, tying each
        // request's submit arrow to the batch that executes it.
        for (const InferenceRequest &req : batch->requests)
            obs::flowStep("request", req.id, "serve");

        const auto cp = cache_.get(batch->key);

        const double t0 = clock_();
        ServeBackend::BatchResult r;
        {
            VITCOD_TRACE_SPAN("execute", "serve", "size", double(n));
            r = backend.runBatch(*cp, n);
        }
        // Real-time pacing: occupy the worker for the batch's
        // simulated duration (scaled), so wall-clock capacity is
        // finite and overload behaves like a physical device.
        if (realtimeFactor_ > 0) {
            const double target = r.stats.seconds * realtimeFactor_;
            const double elapsed = clock_() - t0;
            if (target > elapsed)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(target - elapsed));
        }
        const double t1 = clock_();
        residentPlan = batch->key;
        hasResident = true;

        deviceClock.scheduleAfter(
            secondsToCycles(r.stats.seconds, backend.freqGhz()),
            [] {});
        deviceClock.runUntilEmpty();
        batchSpan.tick(deviceClock.curTick());

        stats_.recordBatch(idx, n, r.perRequestSeconds * n,
                           r.switchSeconds, r.switched, t1 - t0,
                           deviceClock.curTick(),
                           r.stats.energyJoules());
        // Predicted-vs-measured per plan: the schedule-derived
        // simulation estimate against what this backend reported.
        stats_.recordPlanBatch(batch->key.str(),
                               cp->simEstimate.seconds,
                               r.perRequestSeconds, n);
        batchesTotal.inc();
        batchSize.observe(static_cast<double>(n));

        for (const InferenceRequest &req : batch->requests) {
            InferenceResponse resp;
            resp.id = req.id;
            resp.backend = backend.name();
            resp.batchSize = n;
            resp.priority = req.priority;
            resp.queueSeconds =
                batch->formedSeconds - req.submitSeconds;
            resp.wallLatencySeconds = t1 - req.submitSeconds;
            resp.simSeconds = r.perRequestSeconds;
            resp.simBatchSeconds = r.stats.seconds;
            resp.energyJoules =
                r.stats.energyJoules() / static_cast<double>(n);
            resp.predictedServiceSeconds =
                req.predictedServiceSeconds;
            resp.deprioritized = req.deprioritized;
            stats_.recordResponse(resp);
            obs::flowEnd("request", req.id, "serve");
            completedTotal.inc();
            wallLatency.observe(resp.wallLatencySeconds);
            if (onComplete_)
                onComplete_(resp);
        }
    }
}

} // namespace vitcod::serve
