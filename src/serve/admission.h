/**
 * @file
 * SLO-aware admission control. The serving runtime is open-loop:
 * clients offer traffic at whatever rate they like, so under
 * overload the only choice is *where* the excess latency goes — into
 * an unbounded queue (every request eventually violates its SLO) or
 * into explicit shed decisions at the door (admitted requests keep
 * their latency bound, rejected ones fail fast and can be retried
 * elsewhere). This controller implements the second option.
 *
 * The predictor is the Schedule IR's own cost model: every
 * CompiledPlan carries `simEstimate`, the schedule-priced simulated
 * latency of one inference. The controller keeps a *backlog* — the
 * sum of the predicted service seconds of every admitted request
 * that has not yet completed — and predicts a new request's
 * queue-exit latency as
 *
 *     predictedExit = backlog / workers + service
 *
 * i.e. the queued work divided across the worker pool, plus the
 * request's own service time. The decision ladder against the
 * request's SLO (per-plan override, else the default):
 *
 *     predictedExit <= slo                  -> Admit
 *     predictedExit <= slo * shedMultiplier -> Deprioritize
 *     otherwise                             -> Shed
 *
 * Deprioritized requests are admitted but demoted (the Priority
 * policy serves them after on-SLO traffic); shed requests never
 * enter the queue. All quantities are in the simEstimate clock
 * domain (simulated device seconds); when the server throttles
 * workers to real time (ServerConfig::realtimeFactor) the same
 * numbers describe wall time up to that factor. See
 * docs/SERVING.md.
 *
 * Thread safety: decide() and release() take an internal lock;
 * admission is on the submit path and release on the completion
 * path, so both are cross-thread.
 */

#ifndef VITCOD_SERVE_ADMISSION_H
#define VITCOD_SERVE_ADMISSION_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace vitcod::serve {

/** Outcome of one admission decision. */
enum class AdmissionDecision { Admit, Deprioritize, Shed };

/** Printable decision name. */
const char *admissionDecisionName(AdmissionDecision d);

/** Admission policy knobs. */
struct AdmissionConfig
{
    /** Off by default: every request is admitted unchanged. */
    bool enabled = false;

    /**
     * Latency SLO applied to plans without a planSloSeconds entry,
     * in the simEstimate clock domain. <= 0 admits unconditionally
     * (backlog is still tracked).
     */
    double defaultSloSeconds = 0.0;

    /**
     * Per-plan (or per-tenant: key by PlanKey::str()) SLO override.
     * Lets latency-critical tasks shed earlier than batch traffic
     * sharing the same pool.
     */
    std::unordered_map<std::string, double> planSloSeconds;

    /**
     * Grace band: requests predicted to exit within
     * [slo, slo * shedMultiplier] are admitted but deprioritized
     * instead of shed. 1.0 disables the band (admit-or-shed).
     */
    double shedMultiplier = 2.0;

    /** Priority demotion applied to deprioritized requests. */
    int deprioritizeDelta = 1;
};

/**
 * Tracks predicted in-flight work and decides admit / deprioritize /
 * shed per request. One instance per server, shared by all submit
 * threads.
 */
class AdmissionController
{
  public:
    AdmissionController() = default;

    /** @param workers Pool size the backlog is divided across. */
    AdmissionController(AdmissionConfig cfg, size_t workers);

    /**
     * Decide one request of plan @p plan_key whose predicted
     * per-request service time is @p service_seconds. Admit and
     * Deprioritize charge the backlog; Shed does not.
     */
    AdmissionDecision decide(const std::string &plan_key,
                             double service_seconds);

    /**
     * Retire one admitted request's predicted service time from the
     * backlog; call exactly once per completion with the value the
     * request was admitted under (InferenceRequest /
     * InferenceResponse::predictedServiceSeconds).
     */
    void release(double service_seconds);

    /** Predicted in-flight work, in simEstimate seconds. */
    double backlogSeconds() const;

    /** Admitted-but-not-completed request count. */
    uint64_t inflight() const;

    /** SLO applied to @p plan_key (override, else default). */
    double sloFor(const std::string &plan_key) const;

    const AdmissionConfig &config() const { return cfg_; }

  private:
    AdmissionConfig cfg_;
    double workers_ = 1.0;

    mutable std::mutex lock_;
    double backlog_ = 0.0;
    uint64_t inflight_ = 0;
};

} // namespace vitcod::serve

#endif // VITCOD_SERVE_ADMISSION_H
