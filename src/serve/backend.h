/**
 * @file
 * Worker-side execution backends. A ServeBackend adapts one
 * simulated execution target to the serving runtime's unit of work —
 * a same-plan batch — and owns the serving-specific cost model:
 *
 *  - the per-request simulated time of a plan is memoized for
 *    simulator backends (they are deterministic in (plan, config),
 *    so one run per task per backend suffices; batches scale it);
 *    backends that really execute kernels (CPUKernel) opt out via
 *    memoizeRuns() and run — and re-time — every batch;
 *  - switching a backend between plans pays the plan's
 *    weightLoadSeconds (stream the new model's weights), which is
 *    what makes same-plan batching profitable in simulated time and
 *    differentiates scheduler policies under mixed traffic.
 *
 * A backend instance is owned by exactly one worker thread, so it
 * keeps no locks; all cross-thread sharing happens through the
 * immutable CompiledPlan and the const Device API.
 */

#ifndef VITCOD_SERVE_BACKEND_H
#define VITCOD_SERVE_BACKEND_H

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "accel/compiler.h"
#include "accel/device.h"
#include "core/model_exec/model_executor.h"
#include "linalg/engine/engine.h"
#include "serve/plan_cache.h"

namespace vitcod::serve {

/** One worker's execution target. */
class ServeBackend
{
  public:
    /** Outcome of one batch. */
    struct BatchResult
    {
        /** Whole-batch simulated run (includes any switch cost). */
        accel::RunStats stats;
        /** Marginal simulated seconds of one request. */
        Seconds perRequestSeconds = 0;
        /** Plan-switch cost charged to this batch (0 if none). */
        Seconds switchSeconds = 0;
        bool switched = false;
    };

    ServeBackend(std::string name, double freq_ghz);
    virtual ~ServeBackend() = default;

    const std::string &name() const { return name_; }

    /** Clock for converting simulated seconds into sim::Tick. */
    double freqGhz() const { return freqGhz_; }

    /** Serve a batch of @p n requests of @p cp. */
    BatchResult runBatch(const CompiledPlan &cp, size_t n);

  protected:
    /**
     * Execute/simulate a single inference of @p cp. Deterministic
     * for simulator backends (which is what makes memoization
     * sound); measured-wall-time backends return a fresh timing per
     * call and must override memoizeRuns().
     */
    virtual accel::RunStats runOnce(const CompiledPlan &cp) const = 0;

    /**
     * Memoize runOnce per plan key? True for deterministic
     * simulators. Backends that really execute work (CPUKernel)
     * return false so every batch runs — and times — the kernels.
     */
    virtual bool memoizeRuns() const { return true; }

  private:
    std::string name_;
    double freqGhz_;
    std::string lastPlan_;          //!< empty = cold (first batch)
    std::unordered_map<std::string, accel::RunStats> memo_;
};

/**
 * The ViTCoD accelerator as a serving backend: executes the cached,
 * shared immutable Program through the instruction Interpreter — the
 * compile step never runs on the serving fast path.
 */
class ViTCoDServeBackend : public ServeBackend
{
  public:
    explicit ViTCoDServeBackend(accel::ViTCoDConfig cfg = {});

  protected:
    accel::RunStats runOnce(const CompiledPlan &cp) const override;

  private:
    accel::Interpreter interp_;
};

/**
 * Host-CPU functional backend: actually executes every head's
 * SDDMM -> masked softmax -> SpMM through the KernelEngine on
 * deterministic synthetic Q/K/V, and reports the measured wall time
 * as the serving cost. Unlike the analytic simulators this backend
 * puts the kernel engine itself on the serving hot path — it is the
 * target the perf-regression CI watches end to end.
 */
class KernelServeBackend : public ServeBackend
{
  public:
    /**
     * @param eng Kernel executor; defaults to the shared
     *        Auto-dispatch engine.
     */
    explicit KernelServeBackend(
        const linalg::engine::KernelEngine *eng =
            &linalg::engine::KernelEngine::shared());

  protected:
    accel::RunStats runOnce(const CompiledPlan &cp) const override;

    /** Real execution: never replay a stale wall-time measurement. */
    bool memoizeRuns() const override { return false; }

  private:
    const linalg::engine::KernelEngine *engine_;
};

/**
 * Whole-model execution backend: serves each request as a full
 * N-layer forward pass (patch embed -> every transformer layer with
 * per-head sparse attention -> classifier) through a ModelExecutor,
 * reporting measured wall time — the end-to-end latency quantity the
 * paper's Fig. 15/17 speedups are about, where CPUKernel only times
 * isolated attention blocks.
 *
 * Per plan key the backend keeps a resident executor (plan copy,
 * deterministic random weights, warm BufferArena + mask-structure
 * cache), so steady-state traffic re-runs a warmed model instead of
 * rebuilding state — the serving analogue of the paper's one-time
 * preprocessing argument. Residency is LRU-bounded
 * (statesCapacity): unlike the shared PlanCache, this state carries
 * full weight sets (~88 MB for DeiT-Small) per worker, so unbounded
 * growth under many-task traffic would OOM. A backend is owned by
 * one worker thread; the state map needs no locks.
 */
class ModelExecServeBackend : public ServeBackend
{
  public:
    /**
     * @param eng Kernel executor; nullptr (the default) gives this
     *        backend its own Auto-dispatch engine over the shared
     *        ThreadPool, so lastTrace()'s dispatch delta counts
     *        only this worker's kernels — the shared engine's
     *        process-global counters would fold concurrent
     *        workers into each other's traces.
     * @param num_classes Classifier width of the served models.
     * @param states_capacity Max resident per-plan executors
     *        (LRU-evicted beyond it); 0 = unbounded.
     */
    explicit ModelExecServeBackend(
        const linalg::engine::KernelEngine *eng = nullptr,
        size_t num_classes = 1000, size_t states_capacity = 4);

    /** Trace of the most recent runOnce (empty before any run). */
    const core::model_exec::ExecTrace &lastTrace() const
    {
        return lastTrace_;
    }

  protected:
    accel::RunStats runOnce(const CompiledPlan &cp) const override;

    /** Real execution: never replay a stale wall-time measurement. */
    bool memoizeRuns() const override { return false; }

  private:
    /** Resident per-plan execution state. */
    struct PlanState
    {
        core::ModelPlan plan; //!< owned copy (outlives the executor)
        /** Owned copy of the cache's compiled schedule: the executor
         *  runs from its layouts, so residency never rescans a mask
         *  or rebuilds a schedule. */
        core::schedule::ModelSchedule schedule;
        std::unique_ptr<core::model_exec::ModelExecutor> exec;
        linalg::Matrix input; //!< deterministic synthetic patches
    };

    PlanState &stateFor(const CompiledPlan &cp) const;

    /** This worker's private engine; built only when the ctor got
     *  nullptr, so injecting a pool-free engine never touches the
     *  shared ThreadPool. */
    std::unique_ptr<linalg::engine::KernelEngine> ownEngine_;
    const linalg::engine::KernelEngine *engine_;
    size_t numClasses_;
    size_t statesCapacity_;
    mutable std::unordered_map<std::string,
                               std::unique_ptr<PlanState>>
        states_;
    /** front = most recently used plan key. */
    mutable std::list<std::string> lru_;
    mutable core::model_exec::ExecTrace lastTrace_;
};

/** Any analytic Device (platform models, SpAtten, Sanger). */
class DeviceServeBackend : public ServeBackend
{
  public:
    DeviceServeBackend(std::unique_ptr<accel::Device> dev,
                       double freq_ghz);

  protected:
    accel::RunStats runOnce(const CompiledPlan &cp) const override;

  private:
    std::unique_ptr<accel::Device> dev_;
};

/**
 * Backend factory by spec name: "ViTCoD", "CPU", "GPU", "EdgeGPU",
 * "SpAtten", "Sanger", "CPUKernel" (functional kernel-engine
 * execution on the host), "ModelExec" (whole-model forward passes
 * through the ModelExecutor). ViTCoD backends compile-share via
 * @p hw, which must match the PlanCache's config. fatal() on
 * unknown specs.
 */
std::unique_ptr<ServeBackend>
makeServeBackend(const std::string &spec,
                 const accel::ViTCoDConfig &hw);

} // namespace vitcod::serve

#endif // VITCOD_SERVE_BACKEND_H
