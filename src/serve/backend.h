/**
 * @file
 * Worker-side execution backends. A ServeBackend adapts one
 * simulated execution target to the serving runtime's unit of work —
 * a same-plan batch — and owns the serving-specific cost model:
 *
 *  - the per-request simulated time of a plan is memoized for
 *    simulator backends (they are deterministic in (plan, config),
 *    so one run per task per backend suffices; batches scale it);
 *    backends that really execute kernels (CPUKernel) opt out via
 *    memoizeRuns() and run — and re-time — every batch;
 *  - switching a backend between plans pays the plan's
 *    weightLoadSeconds (stream the new model's weights), which is
 *    what makes same-plan batching profitable in simulated time and
 *    differentiates scheduler policies under mixed traffic.
 *
 * A backend instance is owned by exactly one worker thread, so it
 * keeps no locks; all cross-thread sharing happens through the
 * immutable CompiledPlan and the const Device API.
 */

#ifndef VITCOD_SERVE_BACKEND_H
#define VITCOD_SERVE_BACKEND_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "accel/compiler.h"
#include "accel/device.h"
#include "linalg/engine/engine.h"
#include "serve/plan_cache.h"

namespace vitcod::serve {

/** One worker's execution target. */
class ServeBackend
{
  public:
    /** Outcome of one batch. */
    struct BatchResult
    {
        /** Whole-batch simulated run (includes any switch cost). */
        accel::RunStats stats;
        /** Marginal simulated seconds of one request. */
        Seconds perRequestSeconds = 0;
        /** Plan-switch cost charged to this batch (0 if none). */
        Seconds switchSeconds = 0;
        bool switched = false;
    };

    ServeBackend(std::string name, double freq_ghz);
    virtual ~ServeBackend() = default;

    const std::string &name() const { return name_; }

    /** Clock for converting simulated seconds into sim::Tick. */
    double freqGhz() const { return freqGhz_; }

    /** Serve a batch of @p n requests of @p cp. */
    BatchResult runBatch(const CompiledPlan &cp, size_t n);

  protected:
    /**
     * Execute/simulate a single inference of @p cp. Deterministic
     * for simulator backends (which is what makes memoization
     * sound); measured-wall-time backends return a fresh timing per
     * call and must override memoizeRuns().
     */
    virtual accel::RunStats runOnce(const CompiledPlan &cp) const = 0;

    /**
     * Memoize runOnce per plan key? True for deterministic
     * simulators. Backends that really execute work (CPUKernel)
     * return false so every batch runs — and times — the kernels.
     */
    virtual bool memoizeRuns() const { return true; }

  private:
    std::string name_;
    double freqGhz_;
    std::string lastPlan_;          //!< empty = cold (first batch)
    std::unordered_map<std::string, accel::RunStats> memo_;
};

/**
 * The ViTCoD accelerator as a serving backend: executes the cached,
 * shared immutable Program through the instruction Interpreter — the
 * compile step never runs on the serving fast path.
 */
class ViTCoDServeBackend : public ServeBackend
{
  public:
    explicit ViTCoDServeBackend(accel::ViTCoDConfig cfg = {});

  protected:
    accel::RunStats runOnce(const CompiledPlan &cp) const override;

  private:
    accel::Interpreter interp_;
};

/**
 * Host-CPU functional backend: actually executes every head's
 * SDDMM -> masked softmax -> SpMM through the KernelEngine on
 * deterministic synthetic Q/K/V, and reports the measured wall time
 * as the serving cost. Unlike the analytic simulators this backend
 * puts the kernel engine itself on the serving hot path — it is the
 * target the perf-regression CI watches end to end.
 */
class KernelServeBackend : public ServeBackend
{
  public:
    /**
     * @param eng Kernel executor; defaults to the shared
     *        Auto-dispatch engine.
     */
    explicit KernelServeBackend(
        const linalg::engine::KernelEngine *eng =
            &linalg::engine::KernelEngine::shared());

  protected:
    accel::RunStats runOnce(const CompiledPlan &cp) const override;

    /** Real execution: never replay a stale wall-time measurement. */
    bool memoizeRuns() const override { return false; }

  private:
    const linalg::engine::KernelEngine *engine_;
};

/** Any analytic Device (platform models, SpAtten, Sanger). */
class DeviceServeBackend : public ServeBackend
{
  public:
    DeviceServeBackend(std::unique_ptr<accel::Device> dev,
                       double freq_ghz);

  protected:
    accel::RunStats runOnce(const CompiledPlan &cp) const override;

  private:
    std::unique_ptr<accel::Device> dev_;
};

/**
 * Backend factory by spec name: "ViTCoD", "CPU", "GPU", "EdgeGPU",
 * "SpAtten", "Sanger", "CPUKernel" (functional kernel-engine
 * execution on the host). ViTCoD backends compile-share via @p hw,
 * which must match the PlanCache's config. fatal() on unknown specs.
 */
std::unique_ptr<ServeBackend>
makeServeBackend(const std::string &spec,
                 const accel::ViTCoDConfig &hw);

} // namespace vitcod::serve

#endif // VITCOD_SERVE_BACKEND_H
