#include "serve/admission.h"

#include "common/logging.h"

namespace vitcod::serve {

const char *
admissionDecisionName(AdmissionDecision d)
{
    switch (d) {
    case AdmissionDecision::Admit: return "admit";
    case AdmissionDecision::Deprioritize: return "deprioritize";
    case AdmissionDecision::Shed: return "shed";
    }
    return "?";
}

AdmissionController::AdmissionController(AdmissionConfig cfg,
                                         size_t workers)
    : cfg_(std::move(cfg)),
      workers_(static_cast<double>(workers ? workers : 1))
{
    VITCOD_ASSERT(cfg_.shedMultiplier >= 1.0,
                  "shedMultiplier must be >= 1");
}

AdmissionDecision
AdmissionController::decide(const std::string &plan_key,
                            double service_seconds)
{
    std::lock_guard<std::mutex> g(lock_);
    const double slo = [&] {
        auto it = cfg_.planSloSeconds.find(plan_key);
        return it != cfg_.planSloSeconds.end()
                   ? it->second
                   : cfg_.defaultSloSeconds;
    }();

    AdmissionDecision d = AdmissionDecision::Admit;
    if (cfg_.enabled && slo > 0) {
        const double predictedExit =
            backlog_ / workers_ + service_seconds;
        if (predictedExit > slo * cfg_.shedMultiplier)
            d = AdmissionDecision::Shed;
        else if (predictedExit > slo)
            d = AdmissionDecision::Deprioritize;
    }
    if (d != AdmissionDecision::Shed) {
        backlog_ += service_seconds;
        ++inflight_;
    }
    return d;
}

void
AdmissionController::release(double service_seconds)
{
    std::lock_guard<std::mutex> g(lock_);
    backlog_ -= service_seconds;
    if (backlog_ < 0) // float drift over millions of releases
        backlog_ = 0;
    if (inflight_ > 0)
        --inflight_;
}

double
AdmissionController::backlogSeconds() const
{
    std::lock_guard<std::mutex> g(lock_);
    return backlog_;
}

uint64_t
AdmissionController::inflight() const
{
    std::lock_guard<std::mutex> g(lock_);
    return inflight_;
}

double
AdmissionController::sloFor(const std::string &plan_key) const
{
    auto it = cfg_.planSloSeconds.find(plan_key);
    return it != cfg_.planSloSeconds.end() ? it->second
                                           : cfg_.defaultSloSeconds;
}

} // namespace vitcod::serve
