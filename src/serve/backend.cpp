#include "serve/backend.h"

#include <utility>

#include "accel/platform.h"
#include "accel/sanger.h"
#include "accel/spatten.h"
#include "accel/vitcod_accel.h"
#include "common/logging.h"

namespace vitcod::serve {

ServeBackend::ServeBackend(std::string name, double freq_ghz)
    : name_(std::move(name)), freqGhz_(freq_ghz)
{
}

ServeBackend::BatchResult
ServeBackend::runBatch(const CompiledPlan &cp, size_t n)
{
    VITCOD_ASSERT(n >= 1, "empty batch");
    const std::string key = cp.key.str();

    auto it = memo_.find(key);
    if (it == memo_.end())
        it = memo_.emplace(key, runOnce(cp)).first;
    const accel::RunStats &one = it->second;

    BatchResult r;
    r.perRequestSeconds = one.seconds;
    // A batch is n back-to-back inferences of the same plan; weights
    // stream per inference either way, so the batch scales linearly
    // and the win lives in the avoided plan switches below.
    for (size_t i = 0; i < n; ++i)
        r.stats += one;
    r.stats.device = name_;
    r.stats.model = one.model;
    r.stats.utilization = one.utilization;

    if (lastPlan_ != key) {
        r.switched = true;
        r.switchSeconds = cp.weightLoadSeconds;
        r.stats.seconds += r.switchSeconds;
        r.stats.dataMoveSeconds += r.switchSeconds;
        lastPlan_ = key;
    }
    return r;
}

ViTCoDServeBackend::ViTCoDServeBackend(accel::ViTCoDConfig cfg)
    : ServeBackend(cfg.name, cfg.freqGhz), interp_(cfg)
{
}

accel::RunStats
ViTCoDServeBackend::runOnce(const CompiledPlan &cp) const
{
    return interp_.execute(cp.program);
}

DeviceServeBackend::DeviceServeBackend(
    std::unique_ptr<accel::Device> dev, double freq_ghz)
    : ServeBackend(dev->name(), freq_ghz), dev_(std::move(dev))
{
}

accel::RunStats
DeviceServeBackend::runOnce(const CompiledPlan &cp) const
{
    return cp.key.endToEnd ? dev_->runEndToEnd(cp.plan)
                           : dev_->runAttention(cp.plan);
}

std::unique_ptr<ServeBackend>
makeServeBackend(const std::string &spec,
                 const accel::ViTCoDConfig &hw)
{
    if (spec == "ViTCoD")
        return std::make_unique<ViTCoDServeBackend>(hw);
    if (spec == "CPU")
        return std::make_unique<DeviceServeBackend>(
            std::make_unique<accel::PlatformModel>(
                accel::cpuXeon6230R()),
            /*freq_ghz=*/1.0);
    if (spec == "GPU")
        return std::make_unique<DeviceServeBackend>(
            std::make_unique<accel::PlatformModel>(accel::gpu2080Ti()),
            /*freq_ghz=*/1.0);
    if (spec == "EdgeGPU")
        return std::make_unique<DeviceServeBackend>(
            std::make_unique<accel::PlatformModel>(
                accel::edgeGpuXavierNX()),
            /*freq_ghz=*/1.0);
    if (spec == "SpAtten")
        return std::make_unique<DeviceServeBackend>(
            std::make_unique<accel::SpAttenAccelerator>(),
            accel::SpAttenConfig{}.freqGhz);
    if (spec == "Sanger")
        return std::make_unique<DeviceServeBackend>(
            std::make_unique<accel::SangerAccelerator>(),
            accel::SangerConfig{}.freqGhz);
    fatal("unknown serve backend '", spec,
          "' (expected ViTCoD|CPU|GPU|EdgeGPU|SpAtten|Sanger)");
}

} // namespace vitcod::serve
