#include "serve/backend.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "accel/platform.h"
#include "accel/sanger.h"
#include "accel/spatten.h"
#include "accel/vitcod_accel.h"
#include "common/logging.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace vitcod::serve {

ServeBackend::ServeBackend(std::string name, double freq_ghz)
    : name_(std::move(name)), freqGhz_(freq_ghz)
{
}

ServeBackend::BatchResult
ServeBackend::runBatch(const CompiledPlan &cp, size_t n)
{
    VITCOD_ASSERT(n >= 1, "empty batch");
    const std::string key = cp.key.str();

    accel::RunStats fresh;
    const accel::RunStats *one_ptr;
    if (memoizeRuns()) {
        auto it = memo_.find(key);
        if (it == memo_.end())
            it = memo_.emplace(key, runOnce(cp)).first;
        one_ptr = &it->second;
    } else {
        fresh = runOnce(cp);
        one_ptr = &fresh;
    }
    const accel::RunStats &one = *one_ptr;

    BatchResult r;
    r.perRequestSeconds = one.seconds;
    // A batch is n back-to-back inferences of the same plan; weights
    // stream per inference either way, so the batch scales linearly
    // and the win lives in the avoided plan switches below.
    for (size_t i = 0; i < n; ++i)
        r.stats += one;
    r.stats.device = name_;
    r.stats.model = one.model;
    r.stats.utilization = one.utilization;

    if (lastPlan_ != key) {
        r.switched = true;
        r.switchSeconds = cp.weightLoadSeconds;
        r.stats.seconds += r.switchSeconds;
        r.stats.dataMoveSeconds += r.switchSeconds;
        lastPlan_ = key;
    }
    return r;
}

ViTCoDServeBackend::ViTCoDServeBackend(accel::ViTCoDConfig cfg)
    : ServeBackend(cfg.name, cfg.freqGhz), interp_(cfg)
{
}

accel::RunStats
ViTCoDServeBackend::runOnce(const CompiledPlan &cp) const
{
    return interp_.execute(cp.program);
}

KernelServeBackend::KernelServeBackend(
    const linalg::engine::KernelEngine *eng)
    : ServeBackend("CPUKernel", /*freq_ghz=*/1.0), engine_(eng)
{
    VITCOD_ASSERT(engine_ != nullptr, "null kernel engine");
}

accel::RunStats
KernelServeBackend::runOnce(const CompiledPlan &cp) const
{
    const core::ModelPlan &plan = cp.plan;

    accel::RunStats st;
    st.model = plan.model.name;

    // Deterministic synthetic inputs, generated OUTSIDE the timed
    // window so st.seconds measures the kernels, not the RNG.
    struct HeadInputs
    {
        linalg::Matrix q, k, v;
        float scale;
    };
    Rng rng(plan.cfg.seed);
    std::vector<HeadInputs> inputs;
    inputs.reserve(plan.heads.size());
    for (const core::HeadPlan &hp : plan.heads) {
        const size_t n = hp.plan.tokens;
        const size_t dk = plan.model.stageForLayer(hp.layer).headDim;
        inputs.push_back(
            {linalg::Matrix::randomNormal(n, dk, rng),
             linalg::Matrix::randomNormal(n, dk, rng),
             linalg::Matrix::randomNormal(n, dk, rng),
             static_cast<float>(
                 1.0 / std::sqrt(static_cast<double>(dk)))});
    }

    const auto t0 = std::chrono::steady_clock::now();
    for (size_t h = 0; h < plan.heads.size(); ++h) {
        const core::HeadPlan &hp = plan.heads[h];
        const HeadInputs &in = inputs[h];
        const linalg::Matrix out = engine_->sparseAttention(
            in.q, in.k, in.v, hp.plan.mask, in.scale);
        VITCOD_ASSERT(out.rows() == hp.plan.tokens &&
                          out.cols() == in.q.cols(),
                      "kernel backend output shape mismatch");
        // SDDMM + SpMM MACs at this head's mask.
        st.macs += static_cast<MacOps>(hp.plan.mask.nnz()) *
                   in.q.cols() * 2;
    }
    const auto t1 = std::chrono::steady_clock::now();

    st.seconds = std::chrono::duration<double>(t1 - t0).count();
    st.computeSeconds = st.seconds;
    st.utilization = 1.0;
    return st;
}

ModelExecServeBackend::ModelExecServeBackend(
    const linalg::engine::KernelEngine *eng, size_t num_classes,
    size_t states_capacity)
    : ServeBackend("ModelExec", /*freq_ghz=*/1.0),
      engine_(eng), numClasses_(num_classes),
      statesCapacity_(states_capacity)
{
    if (!engine_) {
        ownEngine_ = std::make_unique<linalg::engine::KernelEngine>(
            linalg::engine::EngineConfig{},
            &linalg::engine::ThreadPool::shared());
        engine_ = ownEngine_.get();
    }
}

ModelExecServeBackend::PlanState &
ModelExecServeBackend::stateFor(const CompiledPlan &cp) const
{
    const std::string key = cp.key.str();
    auto it = states_.find(key);
    if (it != states_.end()) {
        lru_.remove(key);
        lru_.push_front(key);
        return *it->second;
    }

    // First sight of this task on this worker: copy the plan and
    // its compiled schedule (the CompiledPlan's lifetime is the
    // cache's, not ours), draw the deterministic weight set and
    // build the resident executor over the copied schedule — no
    // mask scan, no schedule rebuild.
    auto st = std::make_unique<PlanState>();
    st->plan = cp.plan;
    st->schedule = cp.schedule;
    Rng rng(cp.plan.cfg.seed);
    core::model_exec::ModelWeights w =
        core::model_exec::ModelWeights::random(
            st->plan.model, /*in_dim=*/0, numClasses_, rng);
    st->exec = std::make_unique<core::model_exec::ModelExecutor>(
        &st->plan, std::move(w),
        core::model_exec::ExecutorConfig{.numClasses = numClasses_},
        engine_, &st->schedule);
    const auto &stage0 = st->plan.model.stages.front();
    st->input = linalg::Matrix::randomNormal(
        stage0.tokens, st->exec->config().inDim, rng);
    it = states_.emplace(key, std::move(st)).first;
    lru_.push_front(key);
    if (statesCapacity_ && states_.size() > statesCapacity_) {
        states_.erase(lru_.back());
        lru_.pop_back();
    }
    return *it->second;
}

accel::RunStats
ModelExecServeBackend::runOnce(const CompiledPlan &cp) const
{
    PlanState &st = stateFor(cp);

    const auto t0 = std::chrono::steady_clock::now();
    const linalg::Matrix logits =
        st.exec->forward(st.input, &lastTrace_);
    const auto t1 = std::chrono::steady_clock::now();
    VITCOD_ASSERT(logits.cols() == numClasses_,
                  "model exec backend logits shape mismatch");

    accel::RunStats stats;
    stats.model = st.plan.model.name;
    stats.macs = st.exec->forwardMacs();
    stats.seconds = std::chrono::duration<double>(t1 - t0).count();
    stats.computeSeconds = stats.seconds;
    stats.utilization = 1.0;
    return stats;
}

DeviceServeBackend::DeviceServeBackend(
    std::unique_ptr<accel::Device> dev, double freq_ghz)
    : ServeBackend(dev->name(), freq_ghz), dev_(std::move(dev))
{
}

accel::RunStats
DeviceServeBackend::runOnce(const CompiledPlan &cp) const
{
    return cp.key.endToEnd ? dev_->runEndToEnd(cp.plan)
                           : dev_->runAttention(cp.plan);
}

std::unique_ptr<ServeBackend>
makeServeBackend(const std::string &spec,
                 const accel::ViTCoDConfig &hw)
{
    if (spec == "ViTCoD")
        return std::make_unique<ViTCoDServeBackend>(hw);
    if (spec == "CPU")
        return std::make_unique<DeviceServeBackend>(
            std::make_unique<accel::PlatformModel>(
                accel::cpuXeon6230R()),
            /*freq_ghz=*/1.0);
    if (spec == "GPU")
        return std::make_unique<DeviceServeBackend>(
            std::make_unique<accel::PlatformModel>(accel::gpu2080Ti()),
            /*freq_ghz=*/1.0);
    if (spec == "EdgeGPU")
        return std::make_unique<DeviceServeBackend>(
            std::make_unique<accel::PlatformModel>(
                accel::edgeGpuXavierNX()),
            /*freq_ghz=*/1.0);
    if (spec == "SpAtten")
        return std::make_unique<DeviceServeBackend>(
            std::make_unique<accel::SpAttenAccelerator>(),
            accel::SpAttenConfig{}.freqGhz);
    if (spec == "Sanger")
        return std::make_unique<DeviceServeBackend>(
            std::make_unique<accel::SangerAccelerator>(),
            accel::SangerConfig{}.freqGhz);
    if (spec == "CPUKernel")
        return std::make_unique<KernelServeBackend>();
    if (spec == "ModelExec")
        return std::make_unique<ModelExecServeBackend>();
    fatal("unknown serve backend '", spec,
          "' (expected ViTCoD|CPU|GPU|EdgeGPU|SpAtten|Sanger|"
          "CPUKernel|ModelExec)");
}

} // namespace vitcod::serve
