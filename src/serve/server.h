/**
 * @file
 * The serving facade: wires PlanCache + BatchScheduler + WorkerPool
 * + ServerStats into one object with a submit/drain/shutdown
 * lifecycle. Admission resolves the request's plan through the
 * cache, so the first request of a task pays the one-time build +
 * compile (or call warmup() beforehand) and everything after it is
 * a cache hit; workers then share the immutable CompiledPlan.
 *
 * Typical use (see examples/serve_traffic.cpp):
 *
 *   serve::ServerConfig cfg;
 *   cfg.backends = {"ViTCoD", "ViTCoD", "CPU", "CPU"};
 *   serve::InferenceServer server(cfg);
 *   server.warmup({keyA, keyB});
 *   ... server.submit(keyA) from any threads ...
 *   server.drain();
 *   auto snap = server.snapshot();
 */

#ifndef VITCOD_SERVE_SERVER_H
#define VITCOD_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/admission.h"
#include "serve/backend.h"
#include "serve/batch_scheduler.h"
#include "serve/plan_cache.h"
#include "serve/server_stats.h"
#include "serve/worker_pool.h"

namespace vitcod::serve {

/** Whole-server configuration. */
struct ServerConfig
{
    /**
     * One worker per entry; each spec names a backend (see
     * makeServeBackend). Heterogeneous mixes are allowed.
     */
    std::vector<std::string> backends = {"ViTCoD"};

    /** Batch formation policy and knobs (clock is overridden). */
    SchedulerConfig scheduler;

    /**
     * SLO-aware admission control (disabled by default): predicts
     * each request's queue-exit latency from the plan's simEstimate
     * and the current backlog, and admits / deprioritizes / sheds
     * against the per-plan SLO. Shed requests are counted in
     * ServerStats and the obs metrics registry; submit() returns 0
     * for them. See docs/SERVING.md.
     */
    AdmissionConfig admission;

    /**
     * When > 0, workers pace each batch to simSeconds * factor of
     * wall time, giving the pool a finite wall-clock capacity (the
     * soak harness uses this to create real overload). 0 = run the
     * simulators flat out.
     */
    double realtimeFactor = 0.0;

    /** Plan cache capacity; 0 = unbounded. */
    size_t planCacheCapacity = 0;

    /** Hardware config Programs are compiled for (ViTCoD workers). */
    accel::ViTCoDConfig hw;

    /**
     * Optional DSE result file (dse::ParetoFrontier JSON). When
     * non-empty, the frontier's best-latency point is applied onto
     * hw before the cache and workers are built, so plans compile
     * and price against the tuned accelerator (see tunedHwConfig()
     * and docs/DSE.md).
     */
    std::string tunedFrontierPath;

    /**
     * When non-empty, the server starts the process-wide
     * obs::TraceSession at construction and writes the recorded
     * Chrome trace_event JSON here at shutdown() — request
     * lifecycle spans, flow arrows across worker tracks, kernel
     * spans (see docs/OBSERVABILITY.md).
     */
    std::string traceOutPath;
};

/** A running inference service over simulated accelerators. */
class InferenceServer
{
  public:
    /**
     * Construct and start the worker pool.
     * @param on_response Optional per-completion callback, invoked
     *        from worker threads.
     */
    explicit InferenceServer(
        ServerConfig cfg,
        std::function<void(const InferenceResponse &)> on_response =
            {});

    /** Drains and joins; equivalent to shutdown(). */
    ~InferenceServer();

    /** Pre-build the plans of @p keys so traffic never compiles. */
    void warmup(const std::vector<PlanKey> &keys);

    /**
     * Offer one request. Thread-safe. Returns the request id, or 0
     * when admission control shed the request (nothing was queued;
     * ids start at 1). Blocks only when @p key was never seen
     * (plan build+compile).
     */
    uint64_t submit(const PlanKey &key, int priority = 0);

    /** Block until every submitted request has completed. */
    void drain();

    /**
     * Stop admission, drain pending work, join workers. Idempotent;
     * submit() after shutdown is invalid.
     */
    void shutdown();

    /** Seconds since server start (the epoch all stamps share). */
    double nowSeconds() const;

    /** Aggregate metrics at this instant. */
    StatsSnapshot snapshot() const;

    PlanCache::Stats planCacheStats() const { return cache_.stats(); }

    const AdmissionController &admission() const { return admission_; }

    size_t queueDepth() const { return scheduler_.depth(); }

    size_t workers() const { return pool_->size(); }

    const ServerConfig &config() const { return cfg_; }

  private:
    void onComplete(const InferenceResponse &resp);

    ServerConfig cfg_;
    std::chrono::steady_clock::time_point epoch_;

    PlanCache cache_;
    BatchScheduler scheduler_;
    AdmissionController admission_;
    ServerStats stats_;
    std::function<void(const InferenceResponse &)> userCallback_;
    std::unique_ptr<WorkerPool> pool_;

    std::atomic<uint64_t> nextId_{1};
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::mutex doneLock_;
    std::condition_variable doneCv_;
    bool traceExported_ = false; //!< shutdown() is idempotent
};

} // namespace vitcod::serve

#endif // VITCOD_SERVE_SERVER_H
