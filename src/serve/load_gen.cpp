#include "serve/load_gen.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"

namespace vitcod::serve {

namespace {

constexpr double kPi = 3.14159265358979323846;

/** Exponential draw with mean 1/rate; uniform() in [0,1) keeps the
 *  log argument in (0, 1]. */
double
expDraw(Rng &rng, double rate)
{
    return -std::log(1.0 - rng.uniform()) / rate;
}

std::vector<double>
poissonArrivals(const TrafficConfig &cfg, Rng &rng)
{
    std::vector<double> t(cfg.requests);
    double now = 0;
    for (size_t i = 0; i < cfg.requests; ++i) {
        now += expDraw(rng, cfg.ratePerSec);
        t[i] = now;
    }
    return t;
}

std::vector<double>
markovArrivals(const TrafficConfig &cfg, Rng &rng)
{
    VITCOD_ASSERT(cfg.burstRateMultiplier >= 1.0,
                  "burstRateMultiplier must be >= 1");
    VITCOD_ASSERT(cfg.meanBurstSeconds > 0 && cfg.meanIdleSeconds > 0,
                  "state dwell means must be positive");

    // Solve the state rates so the duty-cycle-weighted mean equals
    // ratePerSec: duty * k * rIdle + (1 - duty) * rIdle = mean.
    const double duty = cfg.meanBurstSeconds /
                        (cfg.meanBurstSeconds + cfg.meanIdleSeconds);
    const double idleRate =
        cfg.ratePerSec /
        (duty * cfg.burstRateMultiplier + (1.0 - duty));
    const double burstRate = idleRate * cfg.burstRateMultiplier;

    std::vector<double> t;
    t.reserve(cfg.requests);
    double now = 0;
    bool burst = true; // start hot so short traces still see a burst
    double stateEnd = expDraw(rng, 1.0 / cfg.meanBurstSeconds);
    while (t.size() < cfg.requests) {
        const double rate = burst ? burstRate : idleRate;
        const double next = now + expDraw(rng, rate);
        if (next > stateEnd) {
            // Memorylessness makes truncate-and-resample exact: jump
            // to the state boundary and draw in the new state.
            now = stateEnd;
            burst = !burst;
            stateEnd =
                now + expDraw(rng, 1.0 / (burst
                                              ? cfg.meanBurstSeconds
                                              : cfg.meanIdleSeconds));
            continue;
        }
        now = next;
        t.push_back(now);
    }
    return t;
}

std::vector<double>
diurnalArrivals(const TrafficConfig &cfg, Rng &rng)
{
    VITCOD_ASSERT(cfg.diurnalAmplitude >= 0 &&
                      cfg.diurnalAmplitude < 1,
                  "diurnalAmplitude must be in [0, 1)");
    VITCOD_ASSERT(cfg.diurnalPeriodSeconds > 0,
                  "diurnalPeriodSeconds must be positive");

    // Lewis thinning against the peak-rate majorant.
    const double peak = cfg.ratePerSec * (1.0 + cfg.diurnalAmplitude);
    std::vector<double> t;
    t.reserve(cfg.requests);
    double now = 0;
    while (t.size() < cfg.requests) {
        now += expDraw(rng, peak);
        const double rate =
            cfg.ratePerSec *
            (1.0 + cfg.diurnalAmplitude *
                       std::sin(2.0 * kPi * now /
                                cfg.diurnalPeriodSeconds));
        if (rng.uniform() * peak < rate)
            t.push_back(now);
    }
    return t;
}

} // namespace

ArrivalProcess
arrivalProcessByName(const std::string &name)
{
    if (name == "poisson")
        return ArrivalProcess::Poisson;
    if (name == "markov")
        return ArrivalProcess::MarkovOnOff;
    if (name == "diurnal")
        return ArrivalProcess::Diurnal;
    fatal("unknown arrival process '", name,
          "' (expected poisson|markov|diurnal)");
}

const char *
arrivalProcessName(ArrivalProcess p)
{
    switch (p) {
    case ArrivalProcess::Poisson: return "poisson";
    case ArrivalProcess::MarkovOnOff: return "markov";
    case ArrivalProcess::Diurnal: return "diurnal";
    }
    return "?";
}

std::vector<double>
generateArrivalTimes(const TrafficConfig &cfg)
{
    VITCOD_ASSERT(cfg.ratePerSec > 0, "arrival rate must be positive");
    Rng rng(cfg.seed);
    switch (cfg.process) {
    case ArrivalProcess::Poisson: return poissonArrivals(cfg, rng);
    case ArrivalProcess::MarkovOnOff: return markovArrivals(cfg, rng);
    case ArrivalProcess::Diurnal: return diurnalArrivals(cfg, rng);
    }
    return {};
}

TrafficReport
runTraffic(InferenceServer &server, const TrafficConfig &cfg)
{
    VITCOD_ASSERT(!cfg.mix.empty(), "traffic mix is empty");
    VITCOD_ASSERT(cfg.mixWeights.empty() ||
                      cfg.mixWeights.size() == cfg.mix.size(),
                  "mixWeights must match mix");

    if (cfg.warmup)
        server.warmup(cfg.mix);

    std::vector<double> cumWeights;
    if (!cfg.mixWeights.empty()) {
        double acc = 0;
        for (double w : cfg.mixWeights) {
            VITCOD_ASSERT(w >= 0, "negative mix weight");
            acc += w;
            cumWeights.push_back(acc);
        }
        VITCOD_ASSERT(acc > 0, "mix weights sum to zero");
    }

    // Independent stream for the request mix: the arrival-time trace
    // is a pure function of (seed, process knobs) alone.
    Rng mixRng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
    auto pickKey = [&]() -> const PlanKey & {
        if (cumWeights.empty())
            return cfg.mix[mixRng.uniformInt(cfg.mix.size())];
        const double u = mixRng.uniform(0.0, cumWeights.back());
        for (size_t i = 0; i < cumWeights.size(); ++i)
            if (u < cumWeights[i])
                return cfg.mix[i];
        return cfg.mix.back();
    };

    const std::vector<double> arrivals = generateArrivalTimes(cfg);

    TrafficReport rep;
    rep.offeredRatePerSec = cfg.ratePerSec;

    const auto start = std::chrono::steady_clock::now();
    auto lastSubmit = start;
    for (size_t i = 0; i < cfg.requests; ++i) {
        if (cfg.openLoop) {
            std::this_thread::sleep_until(
                start +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(arrivals[i])));
        }
        const int prio =
            cfg.priorityLevels > 1
                ? static_cast<int>(mixRng.uniformInt(
                      static_cast<uint64_t>(cfg.priorityLevels)))
                : 0;
        const uint64_t id = server.submit(pickKey(), prio);
        ++rep.submitted;
        if (id == 0)
            ++rep.shed;
        lastSubmit = std::chrono::steady_clock::now();
    }
    rep.submitWindowSeconds =
        std::chrono::duration<double>(lastSubmit - start).count();

    server.drain();

    rep.durationSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    rep.offeredRps =
        rep.submitWindowSeconds > 0
            ? static_cast<double>(rep.submitted) /
                  rep.submitWindowSeconds
            : 0.0;
    rep.completionRps =
        rep.durationSeconds > 0
            ? static_cast<double>(rep.submitted - rep.shed) /
                  rep.durationSeconds
            : 0.0;
    rep.achievedRps = rep.completionRps;
    rep.shedRate = rep.submitted > 0
                       ? static_cast<double>(rep.shed) /
                             static_cast<double>(rep.submitted)
                       : 0.0;
    return rep;
}

TrafficReport
runPoissonTraffic(InferenceServer &server, const TrafficConfig &cfg)
{
    return runTraffic(server, cfg);
}

} // namespace vitcod::serve
