#include "serve/load_gen.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"

namespace vitcod::serve {

TrafficReport
runPoissonTraffic(InferenceServer &server, const TrafficConfig &cfg)
{
    VITCOD_ASSERT(!cfg.mix.empty(), "traffic mix is empty");
    VITCOD_ASSERT(cfg.ratePerSec > 0, "arrival rate must be positive");
    VITCOD_ASSERT(cfg.mixWeights.empty() ||
                      cfg.mixWeights.size() == cfg.mix.size(),
                  "mixWeights must match mix");

    if (cfg.warmup)
        server.warmup(cfg.mix);

    std::vector<double> cumWeights;
    if (!cfg.mixWeights.empty()) {
        double acc = 0;
        for (double w : cfg.mixWeights) {
            VITCOD_ASSERT(w >= 0, "negative mix weight");
            acc += w;
            cumWeights.push_back(acc);
        }
        VITCOD_ASSERT(acc > 0, "mix weights sum to zero");
    }

    Rng rng(cfg.seed);
    auto pickKey = [&]() -> const PlanKey & {
        if (cumWeights.empty())
            return cfg.mix[rng.uniformInt(cfg.mix.size())];
        const double u = rng.uniform(0.0, cumWeights.back());
        for (size_t i = 0; i < cumWeights.size(); ++i)
            if (u < cumWeights[i])
                return cfg.mix[i];
        return cfg.mix.back();
    };

    const auto start = std::chrono::steady_clock::now();
    double arrival = 0.0;
    for (size_t i = 0; i < cfg.requests; ++i) {
        // Exponential inter-arrival; 1 - uniform() stays in (0, 1].
        arrival +=
            -std::log(1.0 - rng.uniform()) / cfg.ratePerSec;
        if (cfg.openLoop) {
            std::this_thread::sleep_until(
                start + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(arrival)));
        }
        const int prio =
            cfg.priorityLevels > 1
                ? static_cast<int>(rng.uniformInt(
                      static_cast<uint64_t>(cfg.priorityLevels)))
                : 0;
        server.submit(pickKey(), prio);
    }

    server.drain();

    TrafficReport rep;
    rep.submitted = cfg.requests;
    rep.offeredRatePerSec = cfg.ratePerSec;
    rep.durationSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    rep.achievedRps =
        rep.durationSeconds > 0
            ? static_cast<double>(cfg.requests) / rep.durationSeconds
            : 0.0;
    return rep;
}

} // namespace vitcod::serve
