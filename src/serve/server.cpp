#include "serve/server.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vitcod::serve {

namespace {

SchedulerConfig
withClock(SchedulerConfig sc, std::function<double()> clock)
{
    sc.clock = std::move(clock);
    return sc;
}

/** Resolve the tuned-config hook before anything consumes cfg.hw. */
ServerConfig
withTunedHw(ServerConfig cfg)
{
    if (!cfg.tunedFrontierPath.empty())
        cfg.hw = tunedHwConfig(cfg.tunedFrontierPath, cfg.hw);
    return cfg;
}

} // namespace

InferenceServer::InferenceServer(
    ServerConfig cfg,
    std::function<void(const InferenceResponse &)> on_response)
    : cfg_(withTunedHw(std::move(cfg))),
      epoch_(std::chrono::steady_clock::now()),
      cache_(cfg_.hw, cfg_.planCacheCapacity),
      scheduler_(withClock(cfg_.scheduler,
                           [this] { return nowSeconds(); })),
      admission_(cfg_.admission, cfg_.backends.size()),
      userCallback_(std::move(on_response))
{
    VITCOD_ASSERT(!cfg_.backends.empty(),
                  "server needs >= 1 backend spec");
    std::vector<std::unique_ptr<ServeBackend>> backends;
    backends.reserve(cfg_.backends.size());
    for (const auto &spec : cfg_.backends)
        backends.push_back(makeServeBackend(spec, cfg_.hw));

    pool_ = std::make_unique<WorkerPool>(
        std::move(backends), scheduler_, cache_, stats_,
        [this](const InferenceResponse &r) { onComplete(r); },
        [this] { return nowSeconds(); }, cfg_.realtimeFactor);
    pool_->start();

    if (!cfg_.traceOutPath.empty())
        obs::TraceSession::instance().start();
}

InferenceServer::~InferenceServer()
{
    shutdown();
}

void
InferenceServer::warmup(const std::vector<PlanKey> &keys)
{
    for (const PlanKey &k : keys)
        cache_.get(k);
}

uint64_t
InferenceServer::submit(const PlanKey &key, int priority)
{
    VITCOD_ASSERT(!scheduler_.stopped(),
                  "submit() after shutdown()");
    VITCOD_TRACE_SPAN("submit", "serve");
    // Admission-time plan resolution: compiles on first sight of the
    // task, shares the cached plan on every request after. The
    // plan's schedule-priced simEstimate is also the admission
    // controller's service-time predictor.
    const auto cp = cache_.get(key);
    const double service = cp->simEstimate.seconds;

    const AdmissionDecision decision =
        admission_.decide(key.str(), service);
    stats_.recordAdmission(decision);
    if (decision == AdmissionDecision::Shed) {
        obs::metrics()
            .counter("vitcod_serve_requests_shed_total",
                     "Requests rejected by SLO admission control")
            .inc();
        return 0;
    }
    if (decision == AdmissionDecision::Deprioritize) {
        priority -= cfg_.admission.deprioritizeDelta;
        obs::metrics()
            .counter("vitcod_serve_requests_deprioritized_total",
                     "Requests admitted in the SLO grace band")
            .inc();
    }

    InferenceRequest req;
    req.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    req.key = key;
    req.priority = priority;
    req.predictedServiceSeconds = service;
    req.deprioritized =
        decision == AdmissionDecision::Deprioritize;

    const uint64_t id = req.id;
    submitted_.fetch_add(1, std::memory_order_acq_rel);
    // Flow arrow tail: the matching steps/head are emitted on the
    // worker track that ends up executing this request.
    obs::flowStart("request", id, "serve");
    obs::metrics()
        .counter("vitcod_serve_requests_submitted_total",
                 "Requests admitted by InferenceServer::submit")
        .inc();
    scheduler_.submit(std::move(req));
    const size_t depth = scheduler_.depth();
    stats_.sampleQueueDepth(depth);
    obs::metrics()
        .gauge("vitcod_serve_queue_depth",
               "Scheduler queue depth observed at last submit")
        .set(static_cast<double>(depth));
    obs::counterEvent("queue_depth", static_cast<double>(depth),
                      "serve");
    return id;
}

void
InferenceServer::onComplete(const InferenceResponse &resp)
{
    // Retire the request's predicted service time from the
    // admission backlog before anything else: the next submit's
    // queue-exit prediction must see the freed capacity.
    admission_.release(resp.predictedServiceSeconds);
    if (userCallback_)
        userCallback_(resp);
    {
        std::lock_guard<std::mutex> g(doneLock_);
        completed_.fetch_add(1, std::memory_order_acq_rel);
    }
    doneCv_.notify_all();
}

void
InferenceServer::drain()
{
    std::unique_lock<std::mutex> g(doneLock_);
    doneCv_.wait(g, [this] {
        return completed_.load(std::memory_order_acquire) >=
               submitted_.load(std::memory_order_acquire);
    });
}

void
InferenceServer::shutdown()
{
    scheduler_.stop();
    if (pool_)
        pool_->join();
    if (!cfg_.traceOutPath.empty() && !traceExported_) {
        traceExported_ = true;
        obs::TraceSession &session = obs::TraceSession::instance();
        session.stop();
        const obs::TraceExportStats ts =
            session.writeJsonFile(cfg_.traceOutPath);
        inform("trace: wrote ", ts.events, " events (", ts.dropped,
               " dropped, ", ts.threads, " tracks) to ",
               cfg_.traceOutPath);
    }
}

double
InferenceServer::nowSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

StatsSnapshot
InferenceServer::snapshot() const
{
    return stats_.snapshot(nowSeconds());
}

} // namespace vitcod::serve
