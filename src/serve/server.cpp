#include "serve/server.h"

#include <utility>

#include "common/logging.h"

namespace vitcod::serve {

namespace {

SchedulerConfig
withClock(SchedulerConfig sc, std::function<double()> clock)
{
    sc.clock = std::move(clock);
    return sc;
}

/** Resolve the tuned-config hook before anything consumes cfg.hw. */
ServerConfig
withTunedHw(ServerConfig cfg)
{
    if (!cfg.tunedFrontierPath.empty())
        cfg.hw = tunedHwConfig(cfg.tunedFrontierPath, cfg.hw);
    return cfg;
}

} // namespace

InferenceServer::InferenceServer(
    ServerConfig cfg,
    std::function<void(const InferenceResponse &)> on_response)
    : cfg_(withTunedHw(std::move(cfg))),
      epoch_(std::chrono::steady_clock::now()),
      cache_(cfg_.hw, cfg_.planCacheCapacity),
      scheduler_(withClock(cfg_.scheduler,
                           [this] { return nowSeconds(); })),
      userCallback_(std::move(on_response))
{
    VITCOD_ASSERT(!cfg_.backends.empty(),
                  "server needs >= 1 backend spec");
    std::vector<std::unique_ptr<ServeBackend>> backends;
    backends.reserve(cfg_.backends.size());
    for (const auto &spec : cfg_.backends)
        backends.push_back(makeServeBackend(spec, cfg_.hw));

    pool_ = std::make_unique<WorkerPool>(
        std::move(backends), scheduler_, cache_, stats_,
        [this](const InferenceResponse &r) { onComplete(r); },
        [this] { return nowSeconds(); });
    pool_->start();
}

InferenceServer::~InferenceServer()
{
    shutdown();
}

void
InferenceServer::warmup(const std::vector<PlanKey> &keys)
{
    for (const PlanKey &k : keys)
        cache_.get(k);
}

uint64_t
InferenceServer::submit(const PlanKey &key, int priority)
{
    VITCOD_ASSERT(!scheduler_.stopped(),
                  "submit() after shutdown()");
    // Admission-time plan resolution: compiles on first sight of the
    // task, shares the cached plan on every request after.
    cache_.get(key);

    InferenceRequest req;
    req.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    req.key = key;
    req.priority = priority;

    const uint64_t id = req.id;
    submitted_.fetch_add(1, std::memory_order_acq_rel);
    scheduler_.submit(std::move(req));
    stats_.sampleQueueDepth(scheduler_.depth());
    return id;
}

void
InferenceServer::onComplete(const InferenceResponse &resp)
{
    if (userCallback_)
        userCallback_(resp);
    {
        std::lock_guard<std::mutex> g(doneLock_);
        completed_.fetch_add(1, std::memory_order_acq_rel);
    }
    doneCv_.notify_all();
}

void
InferenceServer::drain()
{
    std::unique_lock<std::mutex> g(doneLock_);
    doneCv_.wait(g, [this] {
        return completed_.load(std::memory_order_acquire) >=
               submitted_.load(std::memory_order_acquire);
    });
}

void
InferenceServer::shutdown()
{
    scheduler_.stop();
    if (pool_)
        pool_->join();
}

double
InferenceServer::nowSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

StatsSnapshot
InferenceServer::snapshot() const
{
    return stats_.snapshot(nowSeconds());
}

} // namespace vitcod::serve
