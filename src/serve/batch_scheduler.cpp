#include "serve/batch_scheduler.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_map>

#include "common/logging.h"

namespace vitcod::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

SchedulerPolicy
schedulerPolicyByName(const std::string &name)
{
    if (name == "fifo")
        return SchedulerPolicy::Fifo;
    if (name == "bucketed")
        return SchedulerPolicy::SizeBucketed;
    if (name == "priority")
        return SchedulerPolicy::Priority;
    if (name == "continuous")
        return SchedulerPolicy::Continuous;
    fatal("unknown scheduler policy '", name,
          "' (expected fifo|bucketed|priority|continuous)");
}

const char *
schedulerPolicyName(SchedulerPolicy p)
{
    switch (p) {
    case SchedulerPolicy::Fifo: return "fifo";
    case SchedulerPolicy::SizeBucketed: return "bucketed";
    case SchedulerPolicy::Priority: return "priority";
    case SchedulerPolicy::Continuous: return "continuous";
    }
    return "?";
}

BatchScheduler::BatchScheduler(SchedulerConfig cfg) : cfg_(std::move(cfg))
{
    VITCOD_ASSERT(cfg_.maxBatch >= 1, "maxBatch must be positive");
    if (!cfg_.clock) {
        const auto t0 = std::chrono::steady_clock::now();
        cfg_.clock = [t0] {
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                .count();
        };
    }
}

void
BatchScheduler::submit(InferenceRequest req)
{
    {
        std::lock_guard<std::mutex> g(lock_);
        req.submitSeconds = cfg_.clock();
        queue_.push_back(std::move(req));
    }
    cv_.notify_one();
}

std::vector<InferenceRequest>
BatchScheduler::takeMatching(const PlanKey &key, size_t limit)
{
    std::vector<InferenceRequest> taken;
    size_t w = 0;
    for (size_t r = 0; r < queue_.size(); ++r) {
        if (taken.size() < limit && queue_[r].key == key) {
            taken.push_back(std::move(queue_[r]));
        } else {
            if (w != r)
                queue_[w] = std::move(queue_[r]);
            ++w;
        }
    }
    queue_.resize(w);
    return taken;
}

std::optional<Batch>
BatchScheduler::formFifo(double now)
{
    if (queue_.empty())
        return std::nullopt;
    Batch b;
    b.key = queue_.front().key;
    b.formedSeconds = now;
    while (!queue_.empty() && b.requests.size() < cfg_.maxBatch &&
           queue_.front().key == b.key) {
        b.requests.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }
    return b;
}

std::optional<Batch>
BatchScheduler::formBucketed(double now, bool flush)
{
    if (queue_.empty())
        return std::nullopt;

    struct Bucket
    {
        size_t count = 0;
        double oldest = kInf;
        const PlanKey *key = nullptr;
    };
    std::unordered_map<std::string, Bucket> buckets;
    for (const auto &r : queue_) {
        Bucket &bk = buckets[r.key.str()];
        ++bk.count;
        bk.oldest = std::min(bk.oldest, r.submitSeconds);
        bk.key = &r.key;
    }

    const PlanKey *pick = nullptr;
    double pickOldest = kInf;
    for (const auto &[ks, bk] : buckets) {
        const bool ready = flush || bk.count >= cfg_.maxBatch ||
                           now - bk.oldest >= cfg_.maxWaitSeconds;
        if (ready && bk.oldest < pickOldest) {
            pickOldest = bk.oldest;
            pick = bk.key;
        }
    }
    if (!pick)
        return std::nullopt;

    Batch b;
    b.key = *pick;
    b.formedSeconds = now;
    b.requests = takeMatching(b.key, cfg_.maxBatch);
    return b;
}

std::optional<Batch>
BatchScheduler::formPriority(double now)
{
    if (queue_.empty())
        return std::nullopt;

    // Leader: highest priority, ties broken by arrival order.
    size_t leader = 0;
    for (size_t i = 1; i < queue_.size(); ++i)
        if (queue_[i].priority > queue_[leader].priority)
            leader = i;

    Batch b;
    b.key = queue_[leader].key;
    b.formedSeconds = now;

    // Members: same plan as the leader, highest priority first
    // (stable on arrival order), up to maxBatch.
    std::vector<size_t> members;
    for (size_t i = 0; i < queue_.size(); ++i)
        if (queue_[i].key == b.key)
            members.push_back(i);
    std::stable_sort(members.begin(), members.end(),
                     [this](size_t a, size_t c) {
                         return queue_[a].priority > queue_[c].priority;
                     });
    if (members.size() > cfg_.maxBatch)
        members.resize(cfg_.maxBatch);

    // Move the selected requests out in priority order, then compact
    // the survivors in one pass: O(n) moves, zero request copies.
    std::vector<char> selected(queue_.size(), 0);
    b.requests.reserve(members.size());
    for (size_t idx : members) {
        b.requests.push_back(std::move(queue_[idx]));
        selected[idx] = 1;
    }
    size_t w = 0;
    for (size_t r = 0; r < queue_.size(); ++r) {
        if (selected[r])
            continue;
        if (w != r)
            queue_[w] = std::move(queue_[r]);
        ++w;
    }
    queue_.resize(w);
    return b;
}

std::optional<Batch>
BatchScheduler::formContinuous(double now, const PlanKey *affinity)
{
    if (queue_.empty())
        return std::nullopt;

    // Refill with the worker's resident plan when possible (no
    // weight reload), unless the head of the queue is starving —
    // then arrival order wins — or the plan has no queued requests.
    const PlanKey *plan = &queue_.front().key;
    if (affinity &&
        now - queue_.front().submitSeconds <= cfg_.maxWaitSeconds) {
        for (const auto &r : queue_) {
            if (r.key == *affinity) {
                plan = affinity;
                break;
            }
        }
    }

    Batch b;
    b.key = *plan;
    b.formedSeconds = now;
    b.requests = takeMatching(b.key, cfg_.maxBatch);
    return b;
}

std::optional<Batch>
BatchScheduler::formBatch(double now, bool flush,
                          const PlanKey *affinity)
{
    switch (cfg_.policy) {
    case SchedulerPolicy::Fifo: return formFifo(now);
    case SchedulerPolicy::SizeBucketed: return formBucketed(now, flush);
    case SchedulerPolicy::Priority: return formPriority(now);
    case SchedulerPolicy::Continuous:
        return formContinuous(now, affinity);
    }
    return std::nullopt;
}

double
BatchScheduler::nextDeadline() const
{
    if (cfg_.policy != SchedulerPolicy::SizeBucketed || queue_.empty())
        return kInf;
    std::unordered_map<std::string, double> oldest;
    for (const auto &r : queue_) {
        auto [it, fresh] = oldest.try_emplace(r.key.str(),
                                              r.submitSeconds);
        if (!fresh)
            it->second = std::min(it->second, r.submitSeconds);
    }
    double dl = kInf;
    for (const auto &[k, t] : oldest)
        dl = std::min(dl, t + cfg_.maxWaitSeconds);
    return dl;
}

std::optional<Batch>
BatchScheduler::nextBatch(const PlanKey *affinity)
{
    std::lock_guard<std::mutex> g(lock_);
    return formBatch(cfg_.clock(), stopped_, affinity);
}

std::optional<Batch>
BatchScheduler::waitBatch(const PlanKey *affinity)
{
    std::unique_lock<std::mutex> g(lock_);
    for (;;) {
        auto b = formBatch(cfg_.clock(), stopped_, affinity);
        if (b) {
            if (!queue_.empty())
                cv_.notify_one();
            return b;
        }
        if (stopped_ && queue_.empty())
            return std::nullopt;

        const double dl = nextDeadline();
        if (dl == kInf) {
            cv_.wait(g);
        } else {
            const double remain = dl - cfg_.clock();
            if (remain > 0)
                cv_.wait_for(g, std::chrono::duration<double>(remain));
        }
    }
}

void
BatchScheduler::stop()
{
    {
        std::lock_guard<std::mutex> g(lock_);
        stopped_ = true;
    }
    cv_.notify_all();
}

bool
BatchScheduler::stopped() const
{
    std::lock_guard<std::mutex> g(lock_);
    return stopped_;
}

size_t
BatchScheduler::depth() const
{
    std::lock_guard<std::mutex> g(lock_);
    return queue_.size();
}

} // namespace vitcod::serve
