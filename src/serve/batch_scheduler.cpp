#include "serve/batch_scheduler.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_map>

#include "common/logging.h"

namespace vitcod::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

SchedulerPolicy
schedulerPolicyByName(const std::string &name)
{
    if (name == "fifo")
        return SchedulerPolicy::Fifo;
    if (name == "bucketed")
        return SchedulerPolicy::SizeBucketed;
    if (name == "priority")
        return SchedulerPolicy::Priority;
    fatal("unknown scheduler policy '", name,
          "' (expected fifo|bucketed|priority)");
}

const char *
schedulerPolicyName(SchedulerPolicy p)
{
    switch (p) {
    case SchedulerPolicy::Fifo: return "fifo";
    case SchedulerPolicy::SizeBucketed: return "bucketed";
    case SchedulerPolicy::Priority: return "priority";
    }
    return "?";
}

BatchScheduler::BatchScheduler(SchedulerConfig cfg) : cfg_(std::move(cfg))
{
    VITCOD_ASSERT(cfg_.maxBatch >= 1, "maxBatch must be positive");
    if (!cfg_.clock) {
        const auto t0 = std::chrono::steady_clock::now();
        cfg_.clock = [t0] {
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                .count();
        };
    }
}

void
BatchScheduler::submit(InferenceRequest req)
{
    {
        std::lock_guard<std::mutex> g(lock_);
        req.submitSeconds = cfg_.clock();
        queue_.push_back(std::move(req));
    }
    cv_.notify_one();
}

std::optional<Batch>
BatchScheduler::formFifo(double now)
{
    if (queue_.empty())
        return std::nullopt;
    Batch b;
    b.key = queue_.front().key;
    b.formedSeconds = now;
    while (!queue_.empty() && b.requests.size() < cfg_.maxBatch &&
           queue_.front().key == b.key) {
        b.requests.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }
    return b;
}

std::optional<Batch>
BatchScheduler::formBucketed(double now, bool flush)
{
    if (queue_.empty())
        return std::nullopt;

    struct Bucket
    {
        size_t count = 0;
        double oldest = kInf;
        const PlanKey *key = nullptr;
    };
    std::unordered_map<std::string, Bucket> buckets;
    for (const auto &r : queue_) {
        Bucket &bk = buckets[r.key.str()];
        ++bk.count;
        bk.oldest = std::min(bk.oldest, r.submitSeconds);
        bk.key = &r.key;
    }

    const PlanKey *pick = nullptr;
    double pickOldest = kInf;
    for (const auto &[ks, bk] : buckets) {
        const bool ready = flush || bk.count >= cfg_.maxBatch ||
                           now - bk.oldest >= cfg_.maxWaitSeconds;
        if (ready && bk.oldest < pickOldest) {
            pickOldest = bk.oldest;
            pick = bk.key;
        }
    }
    if (!pick)
        return std::nullopt;

    Batch b;
    b.key = *pick;
    b.formedSeconds = now;
    for (auto it = queue_.begin();
         it != queue_.end() && b.requests.size() < cfg_.maxBatch;) {
        if (it->key == b.key) {
            b.requests.push_back(std::move(*it));
            it = queue_.erase(it);
        } else {
            ++it;
        }
    }
    return b;
}

std::optional<Batch>
BatchScheduler::formPriority(double now)
{
    if (queue_.empty())
        return std::nullopt;

    // Leader: highest priority, ties broken by arrival order.
    size_t leader = 0;
    for (size_t i = 1; i < queue_.size(); ++i)
        if (queue_[i].priority > queue_[leader].priority)
            leader = i;

    Batch b;
    b.key = queue_[leader].key;
    b.formedSeconds = now;

    // Members: same plan as the leader, highest priority first
    // (stable on arrival order), up to maxBatch.
    std::vector<size_t> members;
    for (size_t i = 0; i < queue_.size(); ++i)
        if (queue_[i].key == b.key)
            members.push_back(i);
    std::stable_sort(members.begin(), members.end(),
                     [this](size_t a, size_t c) {
                         return queue_[a].priority > queue_[c].priority;
                     });
    if (members.size() > cfg_.maxBatch)
        members.resize(cfg_.maxBatch);

    for (size_t idx : members)
        b.requests.push_back(queue_[idx]);

    std::sort(members.begin(), members.end(),
              std::greater<size_t>());
    for (size_t idx : members)
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
    return b;
}

std::optional<Batch>
BatchScheduler::formBatch(double now, bool flush)
{
    switch (cfg_.policy) {
    case SchedulerPolicy::Fifo: return formFifo(now);
    case SchedulerPolicy::SizeBucketed: return formBucketed(now, flush);
    case SchedulerPolicy::Priority: return formPriority(now);
    }
    return std::nullopt;
}

double
BatchScheduler::nextDeadline() const
{
    if (cfg_.policy != SchedulerPolicy::SizeBucketed || queue_.empty())
        return kInf;
    std::unordered_map<std::string, double> oldest;
    for (const auto &r : queue_) {
        auto [it, fresh] = oldest.try_emplace(r.key.str(),
                                              r.submitSeconds);
        if (!fresh)
            it->second = std::min(it->second, r.submitSeconds);
    }
    double dl = kInf;
    for (const auto &[k, t] : oldest)
        dl = std::min(dl, t + cfg_.maxWaitSeconds);
    return dl;
}

std::optional<Batch>
BatchScheduler::nextBatch()
{
    std::lock_guard<std::mutex> g(lock_);
    return formBatch(cfg_.clock(), stopped_);
}

std::optional<Batch>
BatchScheduler::waitBatch()
{
    std::unique_lock<std::mutex> g(lock_);
    for (;;) {
        auto b = formBatch(cfg_.clock(), stopped_);
        if (b) {
            if (!queue_.empty())
                cv_.notify_one();
            return b;
        }
        if (stopped_ && queue_.empty())
            return std::nullopt;

        const double dl = nextDeadline();
        if (dl == kInf) {
            cv_.wait(g);
        } else {
            const double remain = dl - cfg_.clock();
            if (remain > 0)
                cv_.wait_for(g, std::chrono::duration<double>(remain));
        }
    }
}

void
BatchScheduler::stop()
{
    {
        std::lock_guard<std::mutex> g(lock_);
        stopped_ = true;
    }
    cv_.notify_all();
}

bool
BatchScheduler::stopped() const
{
    std::lock_guard<std::mutex> g(lock_);
    return stopped_;
}

size_t
BatchScheduler::depth() const
{
    std::lock_guard<std::mutex> g(lock_);
    return queue_.size();
}

} // namespace vitcod::serve
