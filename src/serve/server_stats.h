/**
 * @file
 * Thread-safe aggregation of serving metrics. Latency is tracked in
 * two currencies — *wall* time (what a client of the serving process
 * observes, including queueing and batching delay) and *simulated*
 * device time (what the modeled hardware would take) — because the
 * runtime serves real traffic through simulated silicon. Per-backend
 * counters additionally keep a sim::Tick busy clock, fed by each
 * worker's EventQueue, so utilization can be reported in the
 * device's own clock domain.
 *
 * Percentiles are exact: raw samples are retained (one double per
 * request per track) and selected with nth_element at snapshot time,
 * which at serving-simulation scales (<= millions of requests) is
 * cheaper than getting histogram ranges wrong.
 */

#ifndef VITCOD_SERVE_SERVER_STATS_H
#define VITCOD_SERVE_SERVER_STATS_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/request.h"
#include "sim/event_queue.h"

namespace vitcod::serve {

/** Point-in-time aggregate view; all fields are plain values. */
struct StatsSnapshot
{
    /** Per-backend (= per-worker) counters. */
    struct Backend
    {
        std::string name;
        uint64_t batches = 0;
        uint64_t requests = 0;
        uint64_t planSwitches = 0;
        Seconds busySimSeconds = 0;   //!< marginal service time
        Seconds switchSimSeconds = 0; //!< weight-reload time
        sim::Tick busyTicks = 0;      //!< busy time in device ticks
        double busyWallSeconds = 0;
        double energyJoules = 0;
        /** busyWallSeconds / elapsed — worker occupancy. */
        double wallUtilization = 0;
        /** (busySim + switchSim) / elapsed — offered sim load. */
        double simUtilization = 0;
    };

    uint64_t completed = 0;
    double elapsedSeconds = 0;
    double throughputRps = 0;

    /** @name Admission-control outcomes (all zero when disabled)
     *  @{ */
    uint64_t admitted = 0;      //!< incl. deprioritized
    uint64_t deprioritized = 0; //!< admitted in the grace band
    uint64_t shed = 0;          //!< rejected at the door
    /** shed / (admitted + shed); 0 when no decisions were taken. */
    double shedRate = 0;
    /** @} */

    /** @name Wall-clock request latency (submit -> completion)
     *  @{ */
    double wallP50 = 0, wallP95 = 0, wallP99 = 0;
    double wallMean = 0, wallMax = 0;
    /** @} */

    /** @name Wall-clock queueing delay (submit -> dispatch)
     *  @{ */
    double queueP50 = 0, queueP95 = 0, queueP99 = 0;
    /** @} */

    /** @name Simulated per-request device time
     *  @{ */
    double simP50 = 0, simP95 = 0, simP99 = 0;
    /** @} */

    double meanBatchSize = 0;
    double meanQueueDepth = 0;
    double maxQueueDepth = 0;
    double totalEnergyJoules = 0;

    std::vector<Backend> backends;

    /**
     * Per-plan predicted-vs-measured latency. `predicted` is the
     * PlanCache's schedule-derived ViTCoD simulation of one
     * inference; `measured` is what the serving backends actually
     * reported per request (interpreter time for simulator
     * backends — which matches the prediction cycle-for-cycle — or
     * wall time for real-execution backends). The ratio is the
     * honesty check the shared Schedule IR exists to enable.
     */
    struct PlanLatency
    {
        std::string key;
        /**
         * Request-weighted mean of the per-request predictions the
         * plan served under — same normalization as
         * measuredMeanSeconds, so ratio() compares like with like
         * even if the plan recompiles mid-run with a different
         * estimate.
         */
        Seconds predictedSeconds = 0;
        /** Request-weighted mean of measured per-request service. */
        Seconds measuredMeanSeconds = 0;
        uint64_t requests = 0;

        /** measured / predicted (0 when predicted is 0). */
        double ratio() const
        {
            return predictedSeconds > 0
                       ? measuredMeanSeconds / predictedSeconds
                       : 0.0;
        }
    };

    /**
     * Sorted by plan key at snapshot time (the accumulation map is
     * unordered for O(1) hot-path updates), so JSON/stats output
     * order is deterministic run over run.
     */
    std::vector<PlanLatency> plans;

    /**
     * Values of every obs::metrics() metric at snapshot time, so a
     * periodic StatsSnapshot poll carries the telemetry registry
     * (queue depth gauge, latency histograms, ...) alongside the
     * exact-percentile aggregates above.
     */
    obs::MetricsSnapshot metrics;
};

/** Shared metrics sink for the whole server. */
class ServerStats
{
  public:
    /** Declare worker @p worker's backend; call before start. */
    void registerBackend(size_t worker, const std::string &name);

    /** Record one executed batch on @p worker. */
    void recordBatch(size_t worker, size_t batch_size,
                     Seconds sim_seconds, Seconds switch_seconds,
                     bool switched, double wall_seconds,
                     sim::Tick busy_ticks, double energy_joules);

    /** Record one completed request. */
    void recordResponse(const InferenceResponse &resp);

    /**
     * Record one executed batch against its plan's schedule-derived
     * prediction: @p predicted_seconds is the CompiledPlan's
     * simulated per-request latency, @p measured_seconds the
     * backend's reported per-request service time, @p requests the
     * batch size.
     */
    void recordPlanBatch(const std::string &plan_key,
                         Seconds predicted_seconds,
                         Seconds measured_seconds, size_t requests);

    /** Record an observation of the scheduler queue depth. */
    void sampleQueueDepth(size_t depth);

    /** Record one admission decision (admit/deprioritize/shed). */
    void recordAdmission(AdmissionDecision d);

    /**
     * Aggregate view after @p elapsed_seconds of serving. The
     * obs::metrics() registry snapshot is taken *after* the stats
     * lock is released — the registry has its own locking, and
     * nesting foreign locks under lock_ risks cross-module lock
     * inversion.
     */
    StatsSnapshot snapshot(double elapsed_seconds) const;

  private:
    struct BackendCounters
    {
        std::string name;
        uint64_t batches = 0;
        uint64_t requests = 0;
        uint64_t planSwitches = 0;
        Seconds busySimSeconds = 0;
        Seconds switchSimSeconds = 0;
        sim::Tick busyTicks = 0;
        double busyWallSeconds = 0;
        double energyJoules = 0;
    };

    struct PlanCounters
    {
        Seconds predictedSum = 0; //!< sum of per-request predictions
        Seconds measuredSum = 0;  //!< sum of per-request measurements
        uint64_t requests = 0;
    };

    mutable std::mutex lock_;
    std::vector<BackendCounters> backends_;
    std::unordered_map<std::string, PlanCounters> plans_;
    uint64_t admitted_ = 0;
    uint64_t deprioritized_ = 0;
    uint64_t shed_ = 0;
    std::vector<double> wallLatency_;
    std::vector<double> queueWait_;
    std::vector<double> simService_;
    RunningStat batchSize_;
    RunningStat queueDepth_;
    double energyJoules_ = 0;
};

} // namespace vitcod::serve

#endif // VITCOD_SERVE_SERVER_STATS_H
