#include "serve/server_stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vitcod::serve {

namespace {

/** Exact percentile of @p v (copied; nth_element). 0 when empty. */
double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    const double rank =
        std::ceil(p * static_cast<double>(v.size())) - 1;
    const auto idx = static_cast<size_t>(std::clamp(
        rank, 0.0, static_cast<double>(v.size() - 1)));
    std::nth_element(v.begin(),
                     v.begin() + static_cast<std::ptrdiff_t>(idx),
                     v.end());
    return v[idx];
}

} // namespace

void
ServerStats::registerBackend(size_t worker, const std::string &name)
{
    std::lock_guard<std::mutex> g(lock_);
    if (backends_.size() <= worker)
        backends_.resize(worker + 1);
    backends_[worker].name = name;
}

void
ServerStats::recordBatch(size_t worker, size_t batch_size,
                         Seconds sim_seconds, Seconds switch_seconds,
                         bool switched, double wall_seconds,
                         sim::Tick busy_ticks, double energy_joules)
{
    std::lock_guard<std::mutex> g(lock_);
    VITCOD_ASSERT(worker < backends_.size(),
                  "recordBatch for unregistered worker ", worker);
    BackendCounters &b = backends_[worker];
    ++b.batches;
    b.requests += batch_size;
    b.planSwitches += switched ? 1 : 0;
    b.busySimSeconds += sim_seconds;
    b.switchSimSeconds += switch_seconds;
    b.busyTicks = busy_ticks;
    b.busyWallSeconds += wall_seconds;
    b.energyJoules += energy_joules;
    batchSize_.add(static_cast<double>(batch_size));
    energyJoules_ += energy_joules;
}

void
ServerStats::recordResponse(const InferenceResponse &resp)
{
    std::lock_guard<std::mutex> g(lock_);
    wallLatency_.push_back(resp.wallLatencySeconds);
    queueWait_.push_back(resp.queueSeconds);
    simService_.push_back(resp.simSeconds);
}

void
ServerStats::recordPlanBatch(const std::string &plan_key,
                             Seconds predicted_seconds,
                             Seconds measured_seconds,
                             size_t requests)
{
    std::lock_guard<std::mutex> g(lock_);
    PlanCounters &p = plans_[plan_key];
    // Both sides accumulate request-weighted, so the snapshot's
    // per-request means (and their ratio) stay comparable no matter
    // how batches were sized or whether the prediction changed.
    p.predictedSum +=
        predicted_seconds * static_cast<double>(requests);
    p.measuredSum +=
        measured_seconds * static_cast<double>(requests);
    p.requests += requests;
}

void
ServerStats::sampleQueueDepth(size_t depth)
{
    std::lock_guard<std::mutex> g(lock_);
    queueDepth_.add(static_cast<double>(depth));
}

void
ServerStats::recordAdmission(AdmissionDecision d)
{
    std::lock_guard<std::mutex> g(lock_);
    switch (d) {
    case AdmissionDecision::Admit: ++admitted_; break;
    case AdmissionDecision::Deprioritize:
        ++admitted_;
        ++deprioritized_;
        break;
    case AdmissionDecision::Shed: ++shed_; break;
    }
}

StatsSnapshot
ServerStats::snapshot(double elapsed_seconds) const
{
    std::unique_lock<std::mutex> g(lock_);

    StatsSnapshot s;
    s.completed = wallLatency_.size();
    s.elapsedSeconds = elapsed_seconds;
    s.throughputRps =
        elapsed_seconds > 0
            ? static_cast<double>(s.completed) / elapsed_seconds
            : 0.0;

    s.admitted = admitted_;
    s.deprioritized = deprioritized_;
    s.shed = shed_;
    s.shedRate = (admitted_ + shed_) > 0
                     ? static_cast<double>(shed_) /
                           static_cast<double>(admitted_ + shed_)
                     : 0.0;

    s.wallP50 = percentile(wallLatency_, 0.50);
    s.wallP95 = percentile(wallLatency_, 0.95);
    s.wallP99 = percentile(wallLatency_, 0.99);
    if (!wallLatency_.empty()) {
        RunningStat rs;
        for (double x : wallLatency_)
            rs.add(x);
        s.wallMean = rs.mean();
        s.wallMax = rs.max();
    }

    s.queueP50 = percentile(queueWait_, 0.50);
    s.queueP95 = percentile(queueWait_, 0.95);
    s.queueP99 = percentile(queueWait_, 0.99);

    s.simP50 = percentile(simService_, 0.50);
    s.simP95 = percentile(simService_, 0.95);
    s.simP99 = percentile(simService_, 0.99);

    s.meanBatchSize = batchSize_.mean();
    s.meanQueueDepth = queueDepth_.mean();
    s.maxQueueDepth = queueDepth_.count() ? queueDepth_.max() : 0.0;
    s.totalEnergyJoules = energyJoules_;

    for (const auto &b : backends_) {
        StatsSnapshot::Backend out;
        out.name = b.name;
        out.batches = b.batches;
        out.requests = b.requests;
        out.planSwitches = b.planSwitches;
        out.busySimSeconds = b.busySimSeconds;
        out.switchSimSeconds = b.switchSimSeconds;
        out.busyTicks = b.busyTicks;
        out.busyWallSeconds = b.busyWallSeconds;
        out.energyJoules = b.energyJoules;
        if (elapsed_seconds > 0) {
            out.wallUtilization = b.busyWallSeconds / elapsed_seconds;
            out.simUtilization =
                (b.busySimSeconds + b.switchSimSeconds) /
                elapsed_seconds;
        }
        s.backends.push_back(std::move(out));
    }

    for (const auto &[key, p] : plans_) {
        StatsSnapshot::PlanLatency pl;
        pl.key = key;
        pl.requests = p.requests;
        if (p.requests > 0) {
            pl.predictedSeconds =
                p.predictedSum / static_cast<double>(p.requests);
            pl.measuredMeanSeconds =
                p.measuredSum / static_cast<double>(p.requests);
        }
        s.plans.push_back(std::move(pl));
    }
    // The accumulation map is unordered (O(1) per-batch updates);
    // sort here so snapshot/JSON output order is deterministic.
    std::sort(s.plans.begin(), s.plans.end(),
              [](const StatsSnapshot::PlanLatency &a,
                 const StatsSnapshot::PlanLatency &b) {
                  return a.key < b.key;
              });

    // Released before touching the metrics registry: it takes its
    // own lock, and nesting it under lock_ would couple two
    // modules' lock orders (obs callbacks may reach serve code).
    g.unlock();
    s.metrics = obs::metrics().snapshot();
    return s;
}

} // namespace vitcod::serve
