#include "serve/plan_cache.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "dse/pareto.h"
#include "model/vit_config.h"

namespace vitcod::serve {

accel::ViTCoDConfig
tunedHwConfig(const std::string &frontier_path,
              const accel::ViTCoDConfig &base)
{
    const dse::ParetoFrontier f =
        dse::ParetoFrontier::readJsonFile(frontier_path);
    if (f.points().empty())
        fatal("tuned-config frontier '", frontier_path,
              "' has no points");
    return f.bestLatency().hw.apply(base);
}

std::string
PlanKey::str() const
{
    std::ostringstream oss;
    oss << model << '/' << sparsity << '/' << (useAe ? "ae" : "noae")
        << '/' << (endToEnd ? "e2e" : "attn");
    return oss.str();
}

Bytes
modelWeightBytes(const model::VitModelConfig &m, size_t elem_bytes)
{
    uint64_t params = 0;
    for (const auto &st : m.stages) {
        const uint64_t qkv = 3ull * st.embedDim * st.heads * st.headDim;
        const uint64_t proj =
            static_cast<uint64_t>(st.heads) * st.headDim * st.embedDim;
        const uint64_t mlp =
            2ull * st.mlpRatio * st.embedDim * st.embedDim;
        params += st.layers * (qkv + proj + mlp);
    }
    return params * elem_bytes;
}

PlanCache::PlanCache(accel::ViTCoDConfig hw, size_t capacity)
    : hw_(std::move(hw)), capacity_(capacity)
{
}

PlanCache::PlanPtr
PlanCache::build(const PlanKey &key) const
{
    const auto t0 = std::chrono::steady_clock::now();

    auto cp = std::make_shared<CompiledPlan>();
    cp->key = key;
    const model::VitModelConfig m = model::modelByName(key.model);
    cp->plan = core::buildModelPlan(
        m, core::makePipelineConfig(key.sparsity, key.useAe));
    // One schedule build per task: the compiler lowers it, the
    // simulator prices it, ModelExec workers execute from it.
    cp->schedule =
        core::schedule::ScheduleBuilder({accel::scheduleParams(hw_)})
            .build(cp->plan, key.endToEnd);
    cp->program = accel::Compiler(hw_).compile(cp->schedule);
    cp->simEstimate =
        accel::ViTCoDAccelerator(hw_).runSchedule(cp->schedule);
    cp->weightLoadSeconds =
        static_cast<double>(modelWeightBytes(m, hw_.elemBytes)) /
        (hw_.dram.bandwidthGBps * 1e9);

    cp->compileWallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return cp;
}

std::shared_ptr<const CompiledPlan>
PlanCache::get(const PlanKey &key)
{
    const std::string k = key.str();
    std::promise<PlanPtr> promise;
    std::shared_future<PlanPtr> hit;
    {
        std::lock_guard<std::mutex> g(lock_);
        auto it = entries_.find(k);
        if (it != entries_.end()) {
            ++stats_.hits;
            if (it->second.ready)
                lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            // Copy the future so the entry may be evicted while we
            // wait without invalidating our handle.
            hit = it->second.future;
        } else {
            ++stats_.misses;
            Entry e;
            e.future = promise.get_future().share();
            entries_.emplace(k, std::move(e));
        }
    }
    if (hit.valid())
        return hit.get();

    PlanPtr cp = build(key);

    {
        std::lock_guard<std::mutex> g(lock_);
        stats_.compileWallSeconds += cp->compileWallSeconds;
        auto it = entries_.find(k);
        if (it != entries_.end()) {
            lru_.push_front(k);
            it->second.lruIt = lru_.begin();
            it->second.ready = true;
        }
        if (capacity_ > 0) {
            while (lru_.size() > capacity_) {
                const std::string victim = lru_.back();
                lru_.pop_back();
                entries_.erase(victim);
                ++stats_.evictions;
            }
        }
    }

    promise.set_value(cp);
    return cp;
}

PlanCache::Stats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> g(lock_);
    return stats_;
}

size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> g(lock_);
    return lru_.size();
}

} // namespace vitcod::serve
