/**
 * @file
 * The concurrent heart of the serving runtime: N worker threads,
 * each owning one ServeBackend (heterogeneous mixes allowed — e.g.
 * ViTCoD accelerators alongside a CPU platform model), drain the
 * BatchScheduler until it is stopped *and* empty. Workers refill
 * continuously: as soon as one finishes a batch it asks the
 * scheduler for the next, passing the plan it just executed as its
 * affinity hint so the Continuous policy can top up the resident
 * plan's next batch without a weight reload. Each worker keeps
 * a private sim::EventQueue as its virtual device clock: every
 * executed batch schedules its simulated duration there, so the
 * tick counter accumulates per-backend simulated busy time in the
 * device's own clock domain, separate from the wall-clock timing
 * the worker also records.
 *
 * Worker loops run as long-lived tasks on a linalg::engine::
 * ThreadPool (one pool thread per backend) rather than ad-hoc
 * std::threads — the same pool component the KernelEngine uses for
 * its parallel-for, so thread lifecycle logic lives in one place.
 */

#ifndef VITCOD_SERVE_WORKER_POOL_H
#define VITCOD_SERVE_WORKER_POOL_H

#include <functional>
#include <memory>
#include <vector>

#include "linalg/engine/thread_pool.h"
#include "serve/backend.h"
#include "serve/batch_scheduler.h"
#include "serve/plan_cache.h"
#include "serve/server_stats.h"

namespace vitcod::serve {

/** Fixed pool of backend-owning worker threads. */
class WorkerPool
{
  public:
    /**
     * @param backends One per worker; the pool takes ownership.
     * @param on_complete Called from worker threads once per request
     *        (after stats are recorded); may be empty.
     * @param clock Shared server epoch clock (seconds).
     * @param realtime_factor When > 0, each worker sleeps until a
     *        batch has occupied it for simSeconds * factor of wall
     *        time, pacing the simulated device in (scaled) real
     *        time — this is what makes overload physical for the
     *        soak harness instead of every simulated batch
     *        completing instantly. 0 (default) = run flat out.
     */
    WorkerPool(std::vector<std::unique_ptr<ServeBackend>> backends,
               BatchScheduler &scheduler, PlanCache &cache,
               ServerStats &stats,
               std::function<void(const InferenceResponse &)>
                   on_complete,
               std::function<double()> clock,
               double realtime_factor = 0.0);

    /** Joins all workers; requires the scheduler to be stopped. */
    ~WorkerPool();

    /** Launch the worker threads. Idempotent. */
    void start();

    /**
     * Wait for every worker to exit. Returns once the scheduler has
     * been stopped and fully drained. Idempotent.
     */
    void join();

    size_t size() const { return backends_.size(); }

  private:
    void workerMain(size_t idx);

    std::vector<std::unique_ptr<ServeBackend>> backends_;
    BatchScheduler &scheduler_;
    PlanCache &cache_;
    ServerStats &stats_;
    std::function<void(const InferenceResponse &)> onComplete_;
    std::function<double()> clock_;
    double realtimeFactor_ = 0.0;

    /** One pool thread per backend; null until start(). */
    std::unique_ptr<linalg::engine::ThreadPool> pool_;
};

} // namespace vitcod::serve

#endif // VITCOD_SERVE_WORKER_POOL_H
