/**
 * @file
 * Open-loop traffic generation against an InferenceServer. Three
 * arrival processes, all seeded and deterministic (a (seed, config)
 * pair always offers the same arrival-time trace):
 *
 *  - Poisson: exponential inter-arrivals at a fixed mean rate — the
 *    classic memoryless baseline;
 *  - MarkovOnOff: a two-state Markov-modulated Poisson process.
 *    The generator alternates between a *burst* state and an *idle*
 *    state (exponentially distributed dwell times); within each
 *    state arrivals are Poisson at that state's rate. The state
 *    rates are solved so the long-run mean equals ratePerSec, which
 *    keeps sweeps comparable across processes while the trace is
 *    far burstier than Poisson (inter-arrival CV^2 > 1);
 *  - Diurnal: a non-homogeneous Poisson process whose rate follows
 *    a sinusoidal day curve around ratePerSec, sampled by Lewis
 *    thinning against the peak-rate majorant.
 *
 * Generation is open-loop: a saturated server builds queue (or
 * sheds, with admission control) instead of back-pressuring the
 * generator — which is what exposes the throughput/latency knee and
 * the shed behavior the serving bench sweeps. The request mix draws
 * plan keys (optionally weighted) and priorities from an
 * independent deterministic stream, so changing the mix never
 * perturbs the arrival times.
 */

#ifndef VITCOD_SERVE_LOAD_GEN_H
#define VITCOD_SERVE_LOAD_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.h"
#include "serve/server.h"

namespace vitcod::serve {

/** Arrival-time process family. */
enum class ArrivalProcess { Poisson, MarkovOnOff, Diurnal };

/** Parse "poisson" / "markov" / "diurnal"; fatal() otherwise. */
ArrivalProcess arrivalProcessByName(const std::string &name);

/** Printable process name. */
const char *arrivalProcessName(ArrivalProcess p);

/** Offered traffic description. */
struct TrafficConfig
{
    ArrivalProcess process = ArrivalProcess::Poisson;

    /** Long-run mean arrival rate, for every process family. */
    double ratePerSec = 1000.0;
    size_t requests = 1000; //!< total arrivals

    /** @name MarkovOnOff knobs
     *  burst-state rate = burstRateMultiplier x idle-state rate;
     *  dwell times are exponential with the given means. The two
     *  state rates are derived so the duty-cycle-weighted mean is
     *  exactly ratePerSec.
     *  @{ */
    double burstRateMultiplier = 8.0;
    double meanBurstSeconds = 0.05;
    double meanIdleSeconds = 0.20;
    /** @} */

    /** @name Diurnal knobs
     *  rate(t) = ratePerSec * (1 + amplitude * sin(2 pi t/period)).
     *  Amplitude must be in [0, 1).
     *  @{ */
    double diurnalPeriodSeconds = 10.0;
    double diurnalAmplitude = 0.8;
    /** @} */

    /** Plan mix; requests draw from it (uniform when weights empty). */
    std::vector<PlanKey> mix = {PlanKey{}};
    std::vector<double> mixWeights;

    /** Priorities drawn uniformly from [0, priorityLevels). */
    int priorityLevels = 1;

    uint64_t seed = 1;

    /** Pre-compile the mix before offering traffic. */
    bool warmup = true;

    /**
     * Sleep to the generated arrival times (true), or submit
     * back-to-back as fast as possible (false; a burst/stress mode).
     */
    bool openLoop = true;
};

/**
 * The deterministic arrival-time trace of @p cfg: cfg.requests
 * nondecreasing seconds offsets from the start of generation.
 * runTraffic() submits on exactly this trace; exposed separately so
 * tests and simulations can replay the same trace without a server.
 */
std::vector<double> generateArrivalTimes(const TrafficConfig &cfg);

/** What the generator actually offered/achieved. */
struct TrafficReport
{
    size_t submitted = 0; //!< offered to the server (includes shed)
    size_t shed = 0;      //!< rejected by admission (submit() == 0)

    double offeredRatePerSec = 0; //!< configured mean rate

    /**
     * Wall time of the submission window alone (first to last
     * submit). Offered load lives here: dividing by the full
     * duration (which includes drain time after the last arrival)
     * would understate it.
     */
    double submitWindowSeconds = 0;
    /** submitted / submitWindowSeconds — achieved offered rate. */
    double offeredRps = 0;

    /** First submit -> all admitted completed (submit + drain). */
    double durationSeconds = 0;
    /** (submitted - shed) / durationSeconds — completion rate. */
    double completionRps = 0;
    /** Legacy alias of completionRps. */
    double achievedRps = 0;

    /** shed / submitted (0 when nothing was offered). */
    double shedRate = 0;
};

/**
 * Offer @p cfg's traffic to @p server, block until all *admitted*
 * requests have completed (server.drain()), and report. The server
 * keeps running.
 */
TrafficReport runTraffic(InferenceServer &server,
                         const TrafficConfig &cfg);

/** Back-compat name; identical to runTraffic(). */
TrafficReport runPoissonTraffic(InferenceServer &server,
                                const TrafficConfig &cfg);

} // namespace vitcod::serve

#endif // VITCOD_SERVE_LOAD_GEN_H
