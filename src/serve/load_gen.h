/**
 * @file
 * Open-loop Poisson traffic generation against an InferenceServer.
 * Arrivals follow an exponential inter-arrival process at a fixed
 * offered rate — open-loop, so a saturated server builds queue
 * instead of back-pressuring the generator, which is what exposes
 * the throughput/latency knee the serving bench sweeps. The request
 * mix draws plan keys (optionally weighted) and priorities from the
 * repo's deterministic Rng, so a (seed, config) pair always offers
 * the same trace.
 */

#ifndef VITCOD_SERVE_LOAD_GEN_H
#define VITCOD_SERVE_LOAD_GEN_H

#include <cstdint>
#include <vector>

#include "serve/request.h"
#include "serve/server.h"

namespace vitcod::serve {

/** Offered traffic description. */
struct TrafficConfig
{
    double ratePerSec = 1000.0; //!< mean arrival rate
    size_t requests = 1000;     //!< total arrivals

    /** Plan mix; requests draw from it (uniform when weights empty). */
    std::vector<PlanKey> mix = {PlanKey{}};
    std::vector<double> mixWeights;

    /** Priorities drawn uniformly from [0, priorityLevels). */
    int priorityLevels = 1;

    uint64_t seed = 1;

    /** Pre-compile the mix before offering traffic. */
    bool warmup = true;

    /**
     * Sleep to the Poisson arrival times (true), or submit
     * back-to-back as fast as possible (false; a burst/stress mode).
     */
    bool openLoop = true;
};

/** What the generator actually offered/achieved. */
struct TrafficReport
{
    size_t submitted = 0;
    double offeredRatePerSec = 0; //!< configured rate
    double durationSeconds = 0;   //!< first submit -> all completed
    double achievedRps = 0;       //!< completed / duration
};

/**
 * Offer @p cfg's traffic to @p server, block until all of it has
 * completed (server.drain()), and report. The server keeps running.
 */
TrafficReport runPoissonTraffic(InferenceServer &server,
                                const TrafficConfig &cfg);

} // namespace vitcod::serve

#endif // VITCOD_SERVE_LOAD_GEN_H
