/**
 * @file
 * Request admission and batch formation. Incoming requests are
 * grouped into same-plan batches — only same-plan requests can share
 * a compiled Program and avoid a weight reload — under one of three
 * policies:
 *
 *  - Fifo: strict arrival order; a batch is the longest same-plan
 *    *prefix* of the queue (no reordering, lowest tail fairness
 *    risk, but mixed traffic yields small batches);
 *  - SizeBucketed: per-plan buckets dispatch when full (maxBatch) or
 *    when their oldest request has waited maxWaitSeconds (bounded
 *    staleness — the classic batching throughput/latency knob);
 *  - Priority: highest priority first (ties by arrival), batched
 *    with same-plan same-or-lower-priority requests;
 *  - Continuous: in-flight batching — a freed worker immediately
 *    pulls whatever is queued (never waits on a bucket boundary),
 *    preferring its *current* plan so the scheduler tops up an
 *    executing plan's next batch with requests that arrived while
 *    the previous one ran (no weight reload), and falling back to
 *    the oldest queued request's plan. A starvation guard bounds
 *    the affinity bias: once the head of the queue has waited
 *    longer than maxWaitSeconds, arrival order wins over plan
 *    affinity.
 *
 * Time is injected through a clock callable so unit tests drive
 * batch formation deterministically; the server passes its epoch
 * wall clock. Workers block in waitBatch() on a condition variable
 * and are woken by submissions, deadline expiry, or stop().
 */

#ifndef VITCOD_SERVE_BATCH_SCHEDULER_H
#define VITCOD_SERVE_BATCH_SCHEDULER_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/request.h"

namespace vitcod::serve {

/** Batch formation policy. */
enum class SchedulerPolicy { Fifo, SizeBucketed, Priority, Continuous };

/**
 * Parse "fifo" / "bucketed" / "priority" / "continuous"; fatal()
 * otherwise.
 */
SchedulerPolicy schedulerPolicyByName(const std::string &name);

/** Printable policy name. */
const char *schedulerPolicyName(SchedulerPolicy p);

struct SchedulerConfig
{
    SchedulerPolicy policy = SchedulerPolicy::SizeBucketed;
    size_t maxBatch = 8;          //!< dispatch threshold and cap
    double maxWaitSeconds = 2e-3; //!< bucket flush deadline

    /**
     * Time source for arrival stamps and deadlines; seconds on an
     * arbitrary monotonic epoch. Defaults to wall time since
     * scheduler construction.
     */
    std::function<double()> clock;
};

/** A group of same-plan requests dispatched together. */
struct Batch
{
    PlanKey key;
    std::vector<InferenceRequest> requests;
    double formedSeconds = 0; //!< clock() at dispatch
};

/** Thread-safe batching queue drained by the worker pool. */
class BatchScheduler
{
  public:
    explicit BatchScheduler(SchedulerConfig cfg = {});

    /** Admit one request (stamps submitSeconds); wakes one worker. */
    void submit(InferenceRequest req);

    /**
     * Form the next batch per policy, or nullopt when nothing is
     * dispatchable right now. Non-blocking; deterministic given the
     * injected clock. @p affinity is the calling worker's resident
     * plan (nullptr = none); only the Continuous policy uses it.
     */
    std::optional<Batch> nextBatch(const PlanKey *affinity = nullptr);

    /**
     * Block until a batch can be formed, a bucket deadline expires,
     * or stop() drains the queue. Returns nullopt only when stopped
     * *and* empty — pending requests are flushed out as batches
     * first, ignoring deadlines. @p affinity as in nextBatch().
     */
    std::optional<Batch> waitBatch(const PlanKey *affinity = nullptr);

    /** Stop admission of waiters; pending work is still drained. */
    void stop();

    bool stopped() const;

    /** Queued (not yet dispatched) request count. */
    size_t depth() const;

    const SchedulerConfig &config() const { return cfg_; }

  private:
    /** Policy dispatch; @p flush ignores bucket deadlines. */
    std::optional<Batch> formBatch(double now, bool flush,
                                   const PlanKey *affinity);

    std::optional<Batch> formFifo(double now);
    std::optional<Batch> formBucketed(double now, bool flush);
    std::optional<Batch> formPriority(double now);
    std::optional<Batch> formContinuous(double now,
                                        const PlanKey *affinity);

    /**
     * Move up to @p limit requests of @p key out of the queue (in
     * arrival order) and compact the remainder in the same single
     * pass — O(n) moves, zero request copies.
     */
    std::vector<InferenceRequest> takeMatching(const PlanKey &key,
                                               size_t limit);

    /**
     * Earliest bucket deadline, or +inf. Only meaningful for
     * SizeBucketed; others dispatch eagerly.
     */
    double nextDeadline() const;

    SchedulerConfig cfg_;

    mutable std::mutex lock_;
    std::condition_variable cv_;
    std::deque<InferenceRequest> queue_; //!< arrival order
    bool stopped_ = false;
};

} // namespace vitcod::serve

#endif // VITCOD_SERVE_BATCH_SCHEDULER_H
