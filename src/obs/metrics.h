/**
 * @file
 * Named-metrics registry: counters, gauges and log-bucketed
 * histograms with Prometheus text exposition and a JSON snapshot —
 * the aggregate companion to the span tracer in obs/trace.h (spans
 * answer "where did request #4217 go", metrics answer "what is the
 * p99 over the last million").
 *
 * Concurrency model: metric handles are registered once (mutex on
 * the registry map) and then updated lock-free — counters and
 * gauges are single relaxed atomics, histogram observations are one
 * relaxed atomic increment on a fixed bucket plus relaxed
 * accumulation of sum/min/max. Snapshots are read concurrently with
 * updates and are approximate only in the usual monotonic-counter
 * sense (a snapshot taken mid-update may miss in-flight
 * observations, never corrupt state).
 *
 * Histograms are log-bucketed with fixed, registry-independent
 * boundaries (kBucketsPerOctave sub-buckets per power of two), so
 * two histograms of the same metric — e.g. per-worker shards, or
 * snapshots from different processes — merge by bucket-wise
 * addition; merge is associative and commutative, pinned by
 * tests/obs/test_metrics.cpp.
 *
 * Naming follows Prometheus conventions: `[a-zA-Z_:][a-zA-Z0-9_:]*`,
 * unit-suffixed (`_seconds`, `_total`); register-time fatal() on
 * anything else keeps the exposition parseable.
 */

#ifndef VITCOD_OBS_METRICS_H
#define VITCOD_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vitcod::obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void inc(uint64_t by = 1)
    {
        value_.fetch_add(by, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Log-bucketed histogram over positive values. Bucket boundaries
 * are a fixed geometric grid: kBucketsPerOctave buckets per power
 * of two, spanning [kMinValue, kMaxValue); values below the range
 * land in the underflow bucket 0, values at or above the range in
 * the top bucket. Relative quantile error is bounded by the bucket
 * ratio 2^(1/kBucketsPerOctave) - 1 (~19%).
 */
class Histogram
{
  public:
    /** Sub-buckets per power of two. */
    static constexpr size_t kBucketsPerOctave = 4;
    /** Lower edge of bucket 1 (seconds-scale metrics: 100 ns). */
    static constexpr double kMinValue = 1e-7;
    /** Octaves covered above kMinValue. */
    static constexpr size_t kOctaves = 60;
    /** Bucket count incl. underflow (0) and overflow (last). */
    static constexpr size_t kBuckets =
        kOctaves * kBucketsPerOctave + 2;

    /** Fixed bucket index of @p v (pure function of v). */
    static size_t bucketOf(double v);

    /** Inclusive upper bound of bucket @p i (+inf for the last). */
    static double bucketUpperBound(size_t i);

    /** Record one observation (lock-free). */
    void observe(double v);

    /** Plain-value copy of this histogram's state. */
    struct Snapshot
    {
        std::array<uint64_t, kBuckets> buckets{};
        uint64_t count = 0;
        double sum = 0;
        double min = 0; //!< 0 when count == 0
        double max = 0;

        /**
         * Quantile estimate from bucket counts: the upper bound of
         * the bucket containing the q-th observation (exact min/max
         * for q<=0 / q>=1). 0 when empty.
         */
        double quantile(double q) const;

        double mean() const
        {
            return count ? sum / static_cast<double>(count) : 0.0;
        }

        /**
         * Bucket-wise merge (associative, commutative): the
         * distribution of the union of both observation streams.
         */
        Snapshot merged(const Snapshot &other) const;
    };

    Snapshot snapshot() const;

  private:
    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0}; //!< valid once count_ > 0
    std::atomic<double> max_{0.0};
};

/** Point-in-time values of every registered metric. */
struct MetricsSnapshot
{
    struct CounterValue
    {
        std::string name;
        uint64_t value = 0;
    };
    struct GaugeValue
    {
        std::string name;
        double value = 0;
    };
    struct HistogramValue
    {
        std::string name;
        Histogram::Snapshot hist;
    };

    /** Sorted by name (the registry map order). */
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;
};

/**
 * Registry of named metrics. Handles returned by
 * counter()/gauge()/histogram() are valid for the registry's
 * lifetime; re-registering a name returns the same handle (so
 * instrumentation sites can resolve lazily without coordination).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** @param help One-line description for the exposition. */
    Counter &counter(const std::string &name,
                     const std::string &help = "");
    Gauge &gauge(const std::string &name,
                 const std::string &help = "");
    Histogram &histogram(const std::string &name,
                         const std::string &help = "");

    MetricsSnapshot snapshot() const;

    /**
     * Prometheus text exposition format 0.0.4: HELP/TYPE comments,
     * counter/gauge samples, cumulative `_bucket{le=...}` series
     * plus `_sum`/`_count` per histogram. Empty histogram buckets
     * are elided (the grid is 242 buckets wide); `+Inf` is always
     * present.
     */
    void writePrometheus(std::ostream &os) const;

    /**
     * JSON object keyed by metric name; histograms serialize their
     * count/sum/min/max/mean and the p50/p90/p99 bucket estimates.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Process-wide default registry — what the serving runtime,
     * engine and DSE instrumentation register into.
     */
    static MetricsRegistry &global();

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Entry
    {
        Kind kind;
        std::string help;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &resolve(const std::string &name, Kind kind,
                   const std::string &help);

    mutable std::mutex lock_;
    std::map<std::string, Entry> entries_;
};

/** Shorthand for MetricsRegistry::global(). */
inline MetricsRegistry &
metrics()
{
    return MetricsRegistry::global();
}

} // namespace vitcod::obs

#endif // VITCOD_OBS_METRICS_H
