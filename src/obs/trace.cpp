#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace vitcod::obs {

namespace {

using Clock = std::chrono::steady_clock;

/** Stable, human-scale thread ids: 1, 2, 3... in first-use order. */
constexpr uint64_t kPid = 1;

} // namespace

/**
 * One thread's event ring. The owning thread is the only writer;
 * the exporter reads only after recording is disabled and the
 * active counter reached zero (see drainInto).
 */
struct TraceSession::Recorder
{
    explicit Recorder(uint64_t tid, size_t capacity)
        : tid(tid), slots(capacity)
    {
    }

    const uint64_t tid;
    std::vector<TraceEvent> slots;

    /** Events ever recorded; slot index = head % capacity. */
    std::atomic<uint64_t> head{0};

    /** Writers inside record(); exporter waits for 0. */
    std::atomic<int> active{0};

    /** Set via setThreadName; read at export (under registry lock). */
    std::string threadName;
};

struct TraceSession::Impl
{
    std::mutex registry;            //!< guards recorders + interned
    std::vector<std::unique_ptr<Recorder>> recorders;
    std::set<std::string, std::less<>> interned;
    TraceConfig cfg;
    Clock::time_point epoch = Clock::now();
};

TraceSession::TraceSession() : impl_(new Impl) {}

// Never runs (instance() holds a function-local leaked singleton);
// defined so ~unique_ptr instantiates against a complete Recorder.
TraceSession::~TraceSession() = default;

TraceSession &
TraceSession::instance()
{
    // Leaked singleton: worker threads (engine pool, serve pool) may
    // record during static destruction; the session must outlive
    // every thread.
    static TraceSession *session = new TraceSession();
    return *session;
}

int64_t
TraceSession::nowMicros() const
{
    if (impl_->cfg.clockMicros)
        return impl_->cfg.clockMicros();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - impl_->epoch)
        .count();
}

TraceSession::Recorder &
TraceSession::localRecorder()
{
    // One registration per (thread, session-lifetime); the pointer
    // is cached thread_local so the hot path never locks. Recorders
    // are owned by the session and survive thread exit, keeping a
    // finished worker's events exportable.
    thread_local Recorder *cached = nullptr;
    thread_local const TraceSession *cachedFor = nullptr;
    if (cached && cachedFor == this)
        return *cached;

    std::lock_guard<std::mutex> g(impl_->registry);
    const uint64_t tid = impl_->recorders.size() + 1;
    // Threads registering while tracing is off (e.g. pool workers
    // naming their track at startup) get a placeholder ring; start()
    // resizes every ring to the configured capacity, so any ring
    // that can actually receive events is full-size.
    const size_t cap =
        running() ? std::max<size_t>(16, impl_->cfg.ringCapacity) : 16;
    impl_->recorders.push_back(std::make_unique<Recorder>(tid, cap));
    cached = impl_->recorders.back().get();
    cachedFor = this;
    return *cached;
}

void
TraceSession::setThreadName(std::string_view name)
{
    Recorder &r = localRecorder();
    std::lock_guard<std::mutex> g(impl_->registry);
    r.threadName.assign(name);
}

const char *
TraceSession::intern(std::string_view s)
{
    std::lock_guard<std::mutex> g(impl_->registry);
    return impl_->interned.emplace(s).first->c_str();
}

void
TraceSession::start(TraceConfig cfg)
{
    if (running())
        return;
    std::lock_guard<std::mutex> g(impl_->registry);
    // Recording is disabled here, but a writer may have raced
    // past a previous stop(); wait it out before touching rings.
    for (const auto &r : impl_->recorders)
        while (r->active.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
    impl_->cfg = cfg;
    impl_->epoch = Clock::now();
    // Re-arm: drop events of any previous run and bring every ring
    // (including pre-start placeholder rings) to full capacity.
    for (auto &r : impl_->recorders) {
        r->head.store(0, std::memory_order_relaxed);
        r->slots.assign(std::max<size_t>(16, impl_->cfg.ringCapacity),
                        TraceEvent{});
    }
    // Enabled flips inside the registry lock so a concurrently
    // registering thread either sees running() and sizes its ring
    // fully, or registers first and is resized by the loop above.
    enabled_.store(true, std::memory_order_seq_cst);
}

void
TraceSession::stop()
{
    enabled_.store(false, std::memory_order_seq_cst);
}

void
TraceSession::record(const TraceEvent &ev)
{
    Recorder &r = localRecorder();
    // RCU-style guard: the exporter disables recording, then waits
    // for active == 0 before touching slots, so a writer that
    // loaded enabled == true just before stop() still finishes its
    // slot write safely.
    r.active.fetch_add(1, std::memory_order_acquire);
    if (enabled_.load(std::memory_order_relaxed)) {
        const uint64_t h = r.head.load(std::memory_order_relaxed);
        r.slots[h % r.slots.size()] = ev;
        r.head.store(h + 1, std::memory_order_release);
    }
    r.active.fetch_sub(1, std::memory_order_release);
}

size_t
TraceSession::bufferedEvents() const
{
    std::lock_guard<std::mutex> g(impl_->registry);
    size_t n = 0;
    for (const auto &r : impl_->recorders)
        n += std::min<uint64_t>(
            r->head.load(std::memory_order_acquire),
            r->slots.size());
    return n;
}

size_t
TraceSession::droppedEvents() const
{
    std::lock_guard<std::mutex> g(impl_->registry);
    size_t n = 0;
    for (const auto &r : impl_->recorders) {
        const uint64_t h = r->head.load(std::memory_order_acquire);
        if (h > r->slots.size())
            n += h - r->slots.size();
    }
    return n;
}

namespace {

void
writeJsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeJsonNumber(std::ostream &os, double v)
{
    // Integral values (ticks, ids, byte counts) print without a
    // fractional part so goldens stay readable.
    if (v == static_cast<double>(static_cast<int64_t>(v))) {
        os << static_cast<int64_t>(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << buf;
}

void
writeEvent(std::ostream &os, const TraceEvent &ev, uint64_t tid)
{
    os << "{\"name\": ";
    writeJsonString(os, ev.name ? ev.name : "");
    os << ", \"cat\": ";
    writeJsonString(os, ev.category && *ev.category ? ev.category
                                                    : "default");
    os << ", \"ph\": \"" << static_cast<char>(ev.phase) << "\"";
    os << ", \"pid\": " << kPid << ", \"tid\": " << tid;
    os << ", \"ts\": " << ev.tsMicros;
    if (ev.phase == Phase::Complete)
        os << ", \"dur\": " << ev.durMicros;
    if (ev.phase == Phase::FlowStart || ev.phase == Phase::FlowStep ||
        ev.phase == Phase::FlowEnd)
        os << ", \"id\": " << ev.id;
    if (ev.phase == Phase::FlowEnd)
        os << ", \"bp\": \"e\"";
    if (ev.phase == Phase::Instant)
        os << ", \"s\": \"t\"";

    const bool counter = ev.phase == Phase::Counter;
    if (counter || ev.argKey1 || ev.argStrKey || ev.hasTick) {
        os << ", \"args\": {";
        bool first = true;
        const auto emit = [&](const char *key, double v) {
            if (!first)
                os << ", ";
            first = false;
            writeJsonString(os, key);
            os << ": ";
            writeJsonNumber(os, v);
        };
        if (counter)
            emit("value", ev.argVal1);
        else if (ev.argKey1)
            emit(ev.argKey1, ev.argVal1);
        if (!counter && ev.argKey2)
            emit(ev.argKey2, ev.argVal2);
        if (!counter && ev.argStrKey) {
            if (!first)
                os << ", ";
            first = false;
            writeJsonString(os, ev.argStrKey);
            os << ": ";
            writeJsonString(os, ev.argStrVal ? ev.argStrVal : "");
        }
        if (ev.hasTick)
            emit("tick", static_cast<double>(ev.tick));
        os << "}";
    }
    os << "}";
}

} // namespace

TraceExportStats
TraceSession::writeJson(std::ostream &os)
{
    if (running())
        fatal("trace export requires a stopped session "
              "(TraceSession::stop() first)");

    std::lock_guard<std::mutex> g(impl_->registry);

    // Wait out writers that raced past the disable flag. Threads
    // never block inside record(), so this resolves in nanoseconds.
    for (const auto &r : impl_->recorders)
        while (r->active.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();

    struct Slot
    {
        const TraceEvent *ev;
        uint64_t tid;
    };
    std::vector<Slot> all;
    TraceExportStats stats;
    stats.threads = impl_->recorders.size();
    for (const auto &r : impl_->recorders) {
        const uint64_t head = r->head.load(std::memory_order_acquire);
        const uint64_t cap = r->slots.size();
        const uint64_t n = std::min(head, cap);
        if (head > cap)
            stats.dropped += head - cap;
        for (uint64_t i = head - n; i < head; ++i)
            all.push_back({&r->slots[i % cap], r->tid});
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Slot &a, const Slot &b) {
                         return a.ev->tsMicros < b.ev->tsMicros;
                     });
    stats.events = all.size();

    os << "{\"displayTimeUnit\": \"ms\",\n";
    os << "\"traceEvents\": [\n";
    bool first = true;
    // Thread-name metadata first: Perfetto labels tracks with them.
    // Unnamed recorders that produced events still get a default
    // label so every active track is named.
    for (const auto &r : impl_->recorders) {
        std::string name = r->threadName;
        if (name.empty()) {
            if (r->head.load(std::memory_order_acquire) == 0)
                continue;
            name = "thread-" + std::to_string(r->tid);
        }
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
           << kPid << ", \"tid\": " << r->tid
           << ", \"args\": {\"name\": ";
        writeJsonString(os, name);
        os << "}}";
    }
    for (const Slot &s : all) {
        if (!first)
            os << ",\n";
        first = false;
        writeEvent(os, *s.ev, s.tid);
    }
    os << "\n],\n";
    os << "\"otherData\": {\"tracer\": \"vitcod-obs\", "
          "\"clockDomain\": \"wall-micros\", \"dropped\": "
       << stats.dropped << "}}\n";
    return stats;
}

TraceExportStats
TraceSession::writeJsonFile(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    const TraceExportStats stats = writeJson(os);
    if (!os)
        fatal("write to '", path, "' failed");
    return stats;
}

namespace {

void
emitSimple(Phase ph, const char *name, const char *category,
           uint64_t id, double value)
{
    TraceSession &s = TraceSession::instance();
    TraceEvent ev;
    ev.name = name;
    ev.category = category;
    ev.phase = ph;
    ev.id = id;
    ev.argVal1 = value;
    ev.tsMicros = s.nowMicros();
    s.record(ev);
}

} // namespace

void
instant(const char *name, const char *category)
{
    if (!TraceSession::enabled())
        return;
    emitSimple(Phase::Instant, name, category, 0, 0);
}

void
counterEvent(const char *name, double value, const char *category)
{
    if (!TraceSession::enabled())
        return;
    emitSimple(Phase::Counter, name, category, 0, value);
}

void
flowStart(const char *name, uint64_t id, const char *category)
{
    if (!TraceSession::enabled())
        return;
    emitSimple(Phase::FlowStart, name, category, id, 0);
}

void
flowStep(const char *name, uint64_t id, const char *category)
{
    if (!TraceSession::enabled())
        return;
    emitSimple(Phase::FlowStep, name, category, id, 0);
}

void
flowEnd(const char *name, uint64_t id, const char *category)
{
    if (!TraceSession::enabled())
        return;
    emitSimple(Phase::FlowEnd, name, category, id, 0);
}

} // namespace vitcod::obs
