#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/logging.h"

namespace vitcod::obs {

namespace {

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    const auto first = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':';
    };
    const auto rest = [&](char c) {
        return first(c) ||
               std::isdigit(static_cast<unsigned char>(c));
    };
    if (!first(name.front()))
        return false;
    for (char c : name.substr(1))
        if (!rest(c))
            return false;
    return true;
}

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

/** Prometheus/JSON float: full round-trip precision, Inf-safe. */
void
writeNumber(std::ostream &os, double v)
{
    if (std::isinf(v)) {
        os << (v > 0 ? "+Inf" : "-Inf");
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace

size_t
Histogram::bucketOf(double v)
{
    if (!(v >= kMinValue)) // also catches NaN and negatives
        return 0;
    // log2(v / kMinValue) scaled to sub-buckets; the grid is fixed
    // so every histogram instance shares bucket boundaries.
    const double pos =
        std::log2(v / kMinValue) * static_cast<double>(
                                       kBucketsPerOctave);
    const auto idx = static_cast<size_t>(pos) + 1;
    return std::min(idx, kBuckets - 1);
}

double
Histogram::bucketUpperBound(size_t i)
{
    if (i >= kBuckets - 1)
        return std::numeric_limits<double>::infinity();
    // Bucket i covers (bound(i-1), bound(i)]; bucket 0 is the
    // underflow (-inf, kMinValue).
    return kMinValue *
           std::exp2(static_cast<double>(i) /
                     static_cast<double>(kBucketsPerOctave));
}

void
Histogram::observe(double v)
{
    buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // First observation initializes min/max; the count increment
    // comes last so a reader that sees count > 0 sees a valid
    // min/max from *some* observation.
    if (count_.load(std::memory_order_relaxed) == 0) {
        double expect = 0.0;
        min_.compare_exchange_strong(expect, v,
                                     std::memory_order_relaxed);
        expect = 0.0;
        max_.compare_exchange_strong(expect, v,
                                     std::memory_order_relaxed);
    }
    double cur = min_.load(std::memory_order_relaxed);
    while (v < cur && !min_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
    count_.fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot s;
    for (size_t i = 0; i < kBuckets; ++i)
        s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
}

double
Histogram::Snapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    if (q <= 0.0)
        return min;
    if (q >= 1.0)
        return max;
    const auto rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        seen += buckets[i];
        if (seen >= rank)
            return std::min(bucketUpperBound(i), max);
    }
    return max;
}

Histogram::Snapshot
Histogram::Snapshot::merged(const Snapshot &other) const
{
    Snapshot out = *this;
    for (size_t i = 0; i < kBuckets; ++i)
        out.buckets[i] += other.buckets[i];
    out.count += other.count;
    out.sum += other.sum;
    if (other.count) {
        out.min = count ? std::min(min, other.min) : other.min;
        out.max = count ? std::max(max, other.max) : other.max;
    }
    return out;
}

MetricsRegistry::Entry &
MetricsRegistry::resolve(const std::string &name, Kind kind,
                         const std::string &help)
{
    if (!validMetricName(name))
        fatal("invalid metric name '", name,
              "' (want [a-zA-Z_:][a-zA-Z0-9_:]*)");
    std::lock_guard<std::mutex> g(lock_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e;
        e.kind = kind;
        e.help = help;
        switch (kind) {
        case Kind::Counter:
            e.counter = std::make_unique<Counter>();
            break;
        case Kind::Gauge:
            e.gauge = std::make_unique<Gauge>();
            break;
        case Kind::Histogram:
            e.histogram = std::make_unique<Histogram>();
            break;
        }
        it = entries_.emplace(name, std::move(e)).first;
    } else if (it->second.kind != kind) {
        fatal("metric '", name,
              "' re-registered with a different type");
    } else if (it->second.help.empty() && !help.empty()) {
        it->second.help = help;
    }
    return it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &help)
{
    return *resolve(name, Kind::Counter, help).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name,
                       const std::string &help)
{
    return *resolve(name, Kind::Gauge, help).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help)
{
    return *resolve(name, Kind::Histogram, help).histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot s;
    std::lock_guard<std::mutex> g(lock_);
    for (const auto &[name, e] : entries_) {
        switch (e.kind) {
        case Kind::Counter:
            s.counters.push_back({name, e.counter->value()});
            break;
        case Kind::Gauge:
            s.gauges.push_back({name, e.gauge->value()});
            break;
        case Kind::Histogram:
            s.histograms.push_back({name, e.histogram->snapshot()});
            break;
        }
    }
    return s;
}

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> g(lock_);
    for (const auto &[name, e] : entries_) {
        if (!e.help.empty())
            os << "# HELP " << name << " " << e.help << "\n";
        switch (e.kind) {
        case Kind::Counter:
            os << "# TYPE " << name << " counter\n";
            os << name << " " << e.counter->value() << "\n";
            break;
        case Kind::Gauge:
            os << "# TYPE " << name << " gauge\n";
            os << name << " ";
            writeNumber(os, e.gauge->value());
            os << "\n";
            break;
        case Kind::Histogram: {
            os << "# TYPE " << name << " histogram\n";
            const Histogram::Snapshot h = e.histogram->snapshot();
            uint64_t cum = 0;
            for (size_t i = 0; i < Histogram::kBuckets; ++i) {
                cum += h.buckets[i];
                // Elide empty interior buckets: the fixed grid is
                // wide and Prometheus semantics only need the
                // populated cumulative steps plus +Inf.
                if (h.buckets[i] == 0 &&
                    i != Histogram::kBuckets - 1)
                    continue;
                os << name << "_bucket{le=\"";
                writeNumber(os, Histogram::bucketUpperBound(i));
                os << "\"} " << cum << "\n";
            }
            os << name << "_sum ";
            writeNumber(os, h.sum);
            os << "\n";
            os << name << "_count " << h.count << "\n";
            break;
        }
        }
    }
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    const MetricsSnapshot s = snapshot();
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &c : s.counters) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, c.name);
        os << ": " << c.value;
    }
    os << (first ? "}" : "\n  }");
    os << ",\n  \"gauges\": {";
    first = true;
    for (const auto &gv : s.gauges) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, gv.name);
        os << ": ";
        writeNumber(os, gv.value);
    }
    os << (first ? "}" : "\n  }");
    os << ",\n  \"histograms\": {";
    first = true;
    for (const auto &hv : s.histograms) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, hv.name);
        const auto &h = hv.hist;
        os << ": {\"count\": " << h.count << ", \"sum\": ";
        writeNumber(os, h.sum);
        os << ", \"min\": ";
        writeNumber(os, h.min);
        os << ", \"max\": ";
        writeNumber(os, h.max);
        os << ", \"mean\": ";
        writeNumber(os, h.mean());
        os << ", \"p50\": ";
        writeNumber(os, h.quantile(0.50));
        os << ", \"p90\": ";
        writeNumber(os, h.quantile(0.90));
        os << ", \"p99\": ";
        writeNumber(os, h.quantile(0.99));
        os << "}";
    }
    os << (first ? "}" : "\n  }");
    os << "\n}\n";
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked for the same reason as TraceSession: worker threads may
    // bump counters during static destruction.
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

} // namespace vitcod::obs
