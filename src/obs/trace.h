/**
 * @file
 * Cross-stack span tracer: per-thread ring-buffer recorders feeding
 * one process-wide TraceSession that exports Chrome
 * `trace_event`-format JSON (loadable in Perfetto or
 * chrome://tracing).
 *
 * Design constraints, in order:
 *
 *  1. **Near-zero cost when disabled.** Every instrumentation site
 *     compiles down to one relaxed atomic load and a branch
 *     (`TraceSession::enabled()`); no clock read, no allocation, no
 *     lock. `bench_obs --smoke` gates this path at <= 1% of the
 *     engine's hot kernel loop.
 *  2. **Lock-free recording when enabled.** Each thread owns a
 *     fixed-capacity ring of TraceEvent slots and is the only
 *     writer; recording never blocks and never allocates after the
 *     ring exists. The ring wraps: a burst beyond capacity
 *     overwrites the oldest events and is counted as dropped.
 *  3. **Safe draining.** Export runs only with recording disabled;
 *     an RCU-style active counter per recorder lets the exporter
 *     wait out writers that raced past the disable flag, so
 *     TSan-clean concurrent shutdown needs no locks on the hot
 *     path.
 *
 * Two clock domains ride on every event: wall time in microseconds
 * since the session epoch (the `ts` Chrome expects) and, when the
 * instrumentation site knows it, the simulated device time as a
 * sim::Tick argument — so one Perfetto view correlates what the
 * host did with what the modeled silicon would have been doing.
 *
 * Event names and categories are `const char*` and must either be
 * string literals or strings interned through
 * TraceSession::intern(), which gives dynamic names (plan keys,
 * kernel tags) a stable address for the recorder's POD slots.
 *
 * Usage:
 *
 *     obs::TraceSession::instance().start();
 *     {
 *         VITCOD_TRACE_SPAN("gemm", "engine");
 *         ...                       // span closes at scope exit
 *     }
 *     obs::TraceSession::instance().stop();
 *     obs::TraceSession::instance().writeJsonFile("trace.json");
 */

#ifndef VITCOD_OBS_TRACE_H
#define VITCOD_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_queue.h"

namespace vitcod::obs {

/** Chrome trace_event phases this tracer emits. */
enum class Phase : char
{
    Complete = 'X',  //!< span with duration
    Instant = 'i',   //!< point event
    Counter = 'C',   //!< named value over time
    FlowStart = 's', //!< flow arrow tail (e.g. request submitted)
    FlowStep = 't',  //!< flow arrow waypoint (e.g. dispatched)
    FlowEnd = 'f',   //!< flow arrow head (e.g. completed)
};

/**
 * One recorded event: a fixed-size POD slot of the per-thread ring.
 * Strings are borrowed pointers (literals or interned); numeric
 * payload is two optional named args plus an optional sim::Tick.
 */
struct TraceEvent
{
    const char *name = nullptr;
    const char *category = nullptr;
    int64_t tsMicros = 0;  //!< wall clock, µs since session epoch
    int64_t durMicros = 0; //!< Complete events only
    uint64_t id = 0;       //!< flow/counter correlation id
    Phase phase = Phase::Instant;

    /** @name Optional named numeric arguments (arg key null = unset)
     *  @{ */
    const char *argKey1 = nullptr;
    double argVal1 = 0;
    const char *argKey2 = nullptr;
    double argVal2 = 0;
    /** @} */

    /** @name Optional named string argument (literal or interned)
     *  @{ */
    const char *argStrKey = nullptr;
    const char *argStrVal = nullptr;
    /** @} */

    /** Simulated-clock stamp; meaningful when hasTick. */
    sim::Tick tick = 0;
    bool hasTick = false;
};

/** Tuning of one tracing run. */
struct TraceConfig
{
    /** Events per thread ring; older events drop past this. */
    size_t ringCapacity = 1 << 16;

    /**
     * Test hook: monotonic µs clock override. Production uses
     * steady_clock against the session epoch; tests inject a fake
     * clock so exported JSON is bit-deterministic (golden
     * fixtures).
     */
    int64_t (*clockMicros)() = nullptr;
};

/** What one export produced (also serialized into the JSON). */
struct TraceExportStats
{
    size_t events = 0;  //!< events written
    size_t dropped = 0; //!< ring-overwritten events across threads
    size_t threads = 0; //!< recorder tracks
};

/**
 * Process-wide trace collector. All methods are thread-safe; the
 * hot recording path (through the macros below) is lock-free.
 */
class TraceSession
{
  public:
    /** The process-wide session the macros record into. */
    static TraceSession &instance();

    /**
     * Enable recording. Clears all previously recorded events and
     * re-arms every thread's ring. No-op when already running.
     */
    void start(TraceConfig cfg = {});

    /** Disable recording; events stay buffered for export. */
    void stop();

    bool running() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * The disabled-path branch every instrumentation site takes:
     * one relaxed atomic load.
     */
    static bool enabled()
    {
        return instance().enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Give @p s a stable address for TraceEvent name/category
     * fields. Interned strings live until process exit; intended
     * for low-cardinality dynamic names (plan keys, bench tags),
     * not per-event payloads.
     */
    const char *intern(std::string_view s);

    /**
     * Record one event into the calling thread's ring. Callers
     * should gate on enabled() first; record() re-checks and drops
     * the event when disabled.
     */
    void record(const TraceEvent &ev);

    /**
     * Name the calling thread's track in exported traces (emitted
     * as Chrome thread_name metadata). Safe to call before start();
     * the name sticks for the thread's lifetime.
     */
    void setThreadName(std::string_view name);

    /**
     * Export everything recorded as Chrome trace_event JSON
     * (`{"traceEvents": [...], ...}`), sorted by timestamp.
     * @pre !running() — stop() first; export fatal()s otherwise.
     */
    TraceExportStats writeJson(std::ostream &os);

    /** writeJson() into @p path; fatal() on I/O failure. */
    TraceExportStats writeJsonFile(const std::string &path);

    /** Wall µs since the session epoch (respects the test clock). */
    int64_t nowMicros() const;

    /** Events currently buffered across all threads (diagnostic). */
    size_t bufferedEvents() const;

    /** Events dropped to ring wraparound across all threads. */
    size_t droppedEvents() const;

  private:
    TraceSession();
    ~TraceSession();
    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    struct Recorder;
    struct Impl;

    /** The calling thread's recorder (created on first use). */
    Recorder &localRecorder();

    std::atomic<bool> enabled_{false};
    Impl *impl_; //!< never freed: threads may outlive main
};

/**
 * RAII span: records a Complete ('X') event covering its lifetime.
 * When tracing is disabled at construction the guard is inert —
 * no clock read, nothing recorded at destruction (a span must not
 * straddle a start(): its begin timestamp would predate the
 * session epoch).
 */
class SpanGuard
{
  public:
    explicit SpanGuard(const char *name, const char *category = "")
        : name_(name), category_(category),
          live_(TraceSession::enabled())
    {
        if (live_)
            ev_.tsMicros = TraceSession::instance().nowMicros();
    }

    /** Span with one named numeric argument. */
    SpanGuard(const char *name, const char *category, const char *k1,
              double v1)
        : SpanGuard(name, category)
    {
        arg(k1, v1);
    }

    /** Span with two named numeric arguments. */
    SpanGuard(const char *name, const char *category, const char *k1,
              double v1, const char *k2, double v2)
        : SpanGuard(name, category)
    {
        arg(k1, v1);
        arg(k2, v2);
    }

    ~SpanGuard()
    {
        if (!live_)
            return;
        TraceSession &s = TraceSession::instance();
        ev_.name = name_;
        ev_.category = category_;
        ev_.phase = Phase::Complete;
        ev_.durMicros = s.nowMicros() - ev_.tsMicros;
        s.record(ev_);
    }

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

    /** Attach a named numeric argument (first two stick). */
    SpanGuard &arg(const char *key, double v)
    {
        if (live_) {
            if (!ev_.argKey1) {
                ev_.argKey1 = key;
                ev_.argVal1 = v;
            } else if (!ev_.argKey2) {
                ev_.argKey2 = key;
                ev_.argVal2 = v;
            }
        }
        return *this;
    }

    /**
     * Attach a named string argument (one slot; first call sticks).
     * Both pointers must be literals or interned strings — the
     * recorder's slots are POD and borrow them.
     */
    SpanGuard &argStr(const char *key, const char *value)
    {
        if (live_ && !ev_.argStrKey) {
            ev_.argStrKey = key;
            ev_.argStrVal = value;
        }
        return *this;
    }

    /** Stamp the span with a simulated-clock time. */
    SpanGuard &tick(sim::Tick t)
    {
        if (live_) {
            ev_.tick = t;
            ev_.hasTick = true;
        }
        return *this;
    }

    /** Whether this guard is recording (tracing was on). */
    bool live() const { return live_; }

  private:
    const char *name_;
    const char *category_;
    bool live_;
    TraceEvent ev_;
};

/** @name Free-function emitters (no-ops when tracing is disabled)
 *  @{ */

/** Point event on the calling thread's track. */
void instant(const char *name, const char *category = "");

/** Counter track sample (Chrome 'C' event). */
void counterEvent(const char *name, double value,
                  const char *category = "");

/** Flow tail: begins arrow @p id (e.g. at request submit). */
void flowStart(const char *name, uint64_t id,
               const char *category = "");

/** Flow waypoint on arrow @p id (e.g. at dispatch). */
void flowStep(const char *name, uint64_t id,
              const char *category = "");

/** Flow head: ends arrow @p id (e.g. at completion). */
void flowEnd(const char *name, uint64_t id,
             const char *category = "");

/** @} */

// Span macros: declare a scoped SpanGuard with a unique name. The
// expression compiles to a single relaxed-atomic load + branch when
// tracing is disabled. Arguments beyond (name, category) forward to
// the SpanGuard argument constructors:
//
//     VITCOD_TRACE_SPAN("sddmm", "engine", "nnz", double(nnz));
//
// Sites that need .tick() or conditional args declare a named
// SpanGuard instead of using the macro.
//
#define VITCOD_TRACE_CONCAT_(a, b) a##b
#define VITCOD_TRACE_CONCAT(a, b) VITCOD_TRACE_CONCAT_(a, b)
#define VITCOD_TRACE_SPAN(...)                                        \
    ::vitcod::obs::SpanGuard VITCOD_TRACE_CONCAT(vitcod_trace_span_,  \
                                                 __LINE__)            \
    {                                                                 \
        __VA_ARGS__                                                   \
    }

} // namespace vitcod::obs

#endif // VITCOD_OBS_TRACE_H
