/**
 * @file
 * The hardware design space the explorer searches (paper Sec. VI:
 * the accelerator evaluation sweeps PE allocations, SRAM budgets and
 * bandwidths around the chosen 64-line / 320 KB / 76.8 GB/s point).
 * A HwConfigSpace is a small grid: one value list per swept
 * accelerator knob, every non-swept knob taken from a base
 * ViTCoDConfig. Points are addressed by a single mixed-radix index
 * so search algorithms can walk the space without materializing it.
 *
 * The area proxy turns a configuration into a silicon-cost scalar
 * (mm^2-like units from published 28 nm-class densities) so the
 * explorer can trade latency and energy against hardware cost; see
 * docs/DSE.md for the exact formula and constants.
 */

#ifndef VITCOD_DSE_DESIGN_SPACE_H
#define VITCOD_DSE_DESIGN_SPACE_H

#include <cstddef>
#include <vector>

#include "accel/vitcod_accel.h"
#include "common/units.h"

namespace vitcod::dse {

/**
 * Area-proxy constants, 28 nm-class: a 16-bit MAC (datapath +
 * pipeline registers) near 700 um^2, dense SRAM near 0.6 um^2/bit,
 * and a PHY/controller share that scales with off-chip bandwidth.
 * Absolute mm^2 are a proxy, not a layout; ratios between
 * configurations are the meaningful output (same contract as the
 * energy model, sim/energy.h).
 */
struct AreaModel
{
    double macUm2 = 700.0;        //!< per MAC unit (engines + AE)
    double sramUm2PerByte = 4.8;  //!< 0.6 um^2/bit dense SRAM
    double ioUm2PerGBps = 5000.0; //!< DRAM PHY + controller share

    bool operator==(const AreaModel &) const = default;
};

/**
 * Area proxy of one accelerator configuration in mm^2-like units:
 * MAC units (denser/sparser engines plus the AE en/decoder lines),
 * every on-chip buffer of the floorplan (Q/K/S/V, index, output,
 * weight and the S-score region), and the bandwidth-proportional
 * I/O share.
 */
double areaProxyMm2(const accel::ViTCoDConfig &cfg,
                    const AreaModel &model = {});

/**
 * The swept grid. Each axis is a non-empty list of candidate values
 * for one ViTCoDConfig knob; the cartesian product (minus points
 * rejected by valid()) is the search space. Axis order is fixed and
 * public — guided search mutates one axis digit at a time.
 */
struct HwConfigSpace
{
    /** @name Axes, in digit order (index 0 varies fastest)
     *  @{ */
    std::vector<size_t> macLines = {64};      //!< engine MAC lines
    std::vector<size_t> macsPerLine = {8};    //!< MACs per line
    std::vector<size_t> aeLines = {16};       //!< AE en/decoder lines
    std::vector<double> sparserLineFrac = {0.0}; //!< PE split (0 = dynamic)
    std::vector<Bytes> qkvBufBytes = {128 * 1024};
    std::vector<Bytes> sBufferBytes = {96 * 1024};
    std::vector<double> bandwidthGBps = {76.8}; //!< off-chip GB/s
    /** Inter-stage FIFO depth (chunks) of the pipelined model; sets
     *  both the fetch and writeback FIFOs. Only the Pipelined
     *  objective mode (ExplorerConfig::simMode) reacts to it —
     *  pricing-only, so schedules memoize across the axis. */
    std::vector<size_t> pipeFifoDepth = {64};
    /** Per-stage latency adder (cycles) of the pipelined model;
     *  applied to all four stages. Pricing-only, like the depth. */
    std::vector<Cycles> pipeStageLatency = {0};
    /** @} */

    /** Every non-swept knob (frequency, energy, DRAM timing, ...). */
    accel::ViTCoDConfig base;

    /** Number of axes (digits) of the mixed-radix index. */
    static constexpr size_t kAxes = 9;

    /** Candidate count of one axis. @pre axis < kAxes. */
    size_t axisSize(size_t axis) const;

    /** Total grid size: the product of all axis sizes. */
    size_t size() const;

    /** Mixed-radix digits of @p index. @pre index < size(). */
    std::vector<size_t> decode(size_t index) const;

    /** Inverse of decode(). @pre digits[a] < axisSize(a). */
    size_t encode(const std::vector<size_t> &digits) const;

    /** Materialize point @p index onto the base configuration. */
    accel::ViTCoDConfig configAt(size_t index) const;

    /**
     * Structural feasibility of point @p index: the AE engines must
     * leave MAC lines for the denser/sparser engines (the
     * ViTCoDAccelerator constructor enforces the same), and every
     * count/capacity must be nonzero. Invalid points are skipped by
     * exhaustive search and treated as infinitely bad by guided
     * search.
     */
    bool valid(size_t index) const;

    /**
     * Sanity-check the axis lists themselves (non-empty, values
     * positive, fractions inside [0, 1)); fatal() on violation.
     * Explorers call this once up front.
     */
    void validate() const;

    /**
     * The default exploration grid around the paper's design point:
     * 4 MAC-line counts x 2 AE allocations x 3 PE splits x 3 Q/K/V
     * buffers x 3 S budgets x 4 bandwidths (~1.7k points).
     */
    static HwConfigSpace defaultSpace();

    /** A 2x2x2 subset of defaultSpace() for CI smoke runs. */
    static HwConfigSpace smokeSpace();
};

} // namespace vitcod::dse

#endif // VITCOD_DSE_DESIGN_SPACE_H
