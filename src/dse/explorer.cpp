#include "dse/explorer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "core/schedule/builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vitcod::dse {

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Memo key of one (workload, schedule-relevant params) pair. */
std::string
scheduleKey(size_t w, const core::schedule::HardwareParams &p)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << w << '|' << p.macLines << '|' << p.macsPerLine << '|'
        << p.elemBytes << '|' << p.indexBytes << '|' << p.qkvBufBytes
        << '|' << p.sBufferBytes << '|' << p.aeLines << '|'
        << p.aeDecodeRate << '|' << p.softmaxLanesPerEngine << '|'
        << p.colOverheadCycles << '|' << p.reconfigCycles << '|'
        << p.denseEff << '|' << p.gemmEff << '|' << p.twoPronged
        << '|' << p.enableAeEngines << '|' << p.dynamicMaskPrediction
        << '|' << p.predictionCostFactor << '|' << p.sparserLineFrac;
    return oss.str();
}

} // namespace

struct Explorer::Workload
{
    WorkloadSpec spec;
    core::ModelPlan plan;
};

Explorer::Explorer(std::vector<WorkloadSpec> workloads,
                   HwConfigSpace space, ExplorerConfig cfg)
    : specs_(std::move(workloads)), space_(std::move(space)),
      cfg_(cfg)
{
    VITCOD_ASSERT(!specs_.empty(), "DSE needs >= 1 workload");
    for (const WorkloadSpec &w : specs_)
        VITCOD_ASSERT(w.weight > 0.0, "workload weight must be > 0");
    space_.validate();

    if (cfg_.threads > 0) {
        ownPool_ =
            std::make_unique<linalg::engine::ThreadPool>(cfg_.threads);
        pool_ = ownPool_.get();
    } else {
        pool_ = &linalg::engine::ThreadPool::shared();
    }

    // The one-time algorithm cost of the bundle: each workload's
    // plan (mask generation + AE fitting) is built exactly once and
    // shared by every priced configuration.
    workloads_.resize(specs_.size());
    parallelOver(specs_.size(), [&](size_t i) {
        workloads_[i].spec = specs_[i];
        workloads_[i].plan = core::buildModelPlan(
            model::modelByName(specs_[i].model),
            core::makePipelineConfig(specs_[i].sparsity,
                                     specs_[i].useAe));
    });

    baseline_ = evaluateConfig(space_.base);
}

Explorer::~Explorer() = default;

std::shared_ptr<const core::schedule::ModelSchedule>
Explorer::scheduleFor(size_t w, const accel::ViTCoDConfig &cfg) const
{
    const core::schedule::HardwareParams params =
        accel::scheduleParams(cfg);
    const std::string key = scheduleKey(w, params);
    {
        std::lock_guard<std::mutex> g(schedLock_);
        auto it = schedules_.find(key);
        if (it != schedules_.end())
            return it->second;
    }
    // Built outside the lock: the schedule is a pure function of
    // (plan, params), so a concurrent duplicate build wastes a
    // little work but cannot diverge; emplace keeps the first.
    auto sched =
        std::make_shared<const core::schedule::ModelSchedule>(
            core::schedule::ScheduleBuilder(
                {.hw = params, .buildLayouts = false})
                .build(workloads_[w].plan,
                       workloads_[w].spec.endToEnd));
    std::lock_guard<std::mutex> g(schedLock_);
    return schedules_.emplace(key, std::move(sched)).first->second;
}

Objectives
Explorer::evaluateConfig(const accel::ViTCoDConfig &cfg) const
{
    VITCOD_TRACE_SPAN("evaluate", "dse", "workloads",
                      double(workloads_.size()));
    obs::metrics()
        .counter("vitcod_dse_evaluations_total",
                 "Accelerator configurations priced by the explorer")
        .inc();
    const accel::ViTCoDAccelerator acc(cfg);
    Objectives o;
    o.areaMm2 = areaProxyMm2(cfg);
    for (size_t w = 0; w < workloads_.size(); ++w) {
        const accel::RunStats rs =
            acc.runSchedule(*scheduleFor(w, cfg), cfg_.simMode);
        o.latencySeconds += workloads_[w].spec.weight * rs.seconds;
        o.energyJoules +=
            workloads_[w].spec.weight * rs.energyJoules();
    }
    return o;
}

DsePoint
Explorer::evaluateIndex(size_t index) const
{
    VITCOD_ASSERT(space_.valid(index),
                  "evaluateIndex on invalid point ", index);
    const accel::ViTCoDConfig cfg = space_.configAt(index);
    DsePoint p;
    p.index = index;
    p.hw = HwPoint::of(cfg);
    p.obj = evaluateConfig(cfg);
    return p;
}

double
Explorer::score(const Objectives &obj) const
{
    const auto rel = [](double v, double base) {
        return base > 0.0 ? v / base : v;
    };
    return cfg_.latencyWeight *
               rel(obj.latencySeconds, baseline_.latencySeconds) +
           cfg_.energyWeight *
               rel(obj.energyJoules, baseline_.energyJoules) +
           cfg_.areaWeight * rel(obj.areaMm2, baseline_.areaMm2);
}

void
Explorer::parallelOver(size_t n,
                       const std::function<void(size_t)> &fn) const
{
    pool_->parallelFor(0, n, /*grain=*/1,
                       [&](size_t begin, size_t end) {
                           for (size_t i = begin; i < end; ++i)
                               fn(i);
                       });
}

DseResult
Explorer::finish(const std::string &algorithm, uint64_t seed,
                 std::vector<DsePoint> points, double t0) const
{
    // Guided searches may visit a point from several chains/sweeps;
    // the frontier counts unique priced points.
    std::sort(points.begin(), points.end(),
              [](const DsePoint &a, const DsePoint &b) {
                  return a.index < b.index;
              });
    points.erase(std::unique(points.begin(), points.end(),
                             [](const DsePoint &a, const DsePoint &b) {
                                 return a.index == b.index;
                             }),
                 points.end());

    DseResult r;
    r.frontier.workloads = specs_;
    r.frontier.algorithm = algorithm;
    r.frontier.seed = seed;
    r.frontier.evaluated = points.size();
    for (const DsePoint &p : points)
        r.frontier.insert(p);
    r.evaluated = points.size();
    r.baseline = baseline_;
    r.wallSeconds = nowSeconds() - t0;
    obs::metrics()
        .gauge("vitcod_dse_frontier_points",
               "Unique priced points in the last finished search")
        .set(static_cast<double>(r.evaluated));
    return r;
}

DseResult
Explorer::exhaustive()
{
    const double t0 = nowSeconds();
    const size_t n = space_.size();
    VITCOD_TRACE_SPAN("exhaustive", "dse", "space", double(n));
    std::vector<DsePoint> slots(n);
    std::vector<char> priced(n, 0);
    parallelOver(n, [&](size_t i) {
        if (!space_.valid(i))
            return;
        slots[i] = evaluateIndex(i);
        priced[i] = 1;
    });
    std::vector<DsePoint> points;
    points.reserve(n);
    for (size_t i = 0; i < n; ++i)
        if (priced[i])
            points.push_back(std::move(slots[i]));
    return finish("exhaustive", 0, std::move(points), t0);
}

DseResult
Explorer::coordinateDescent()
{
    const double t0 = nowSeconds();
    VITCOD_TRACE_SPAN("coordinate_descent", "dse", "space",
                      double(space_.size()));

    // Start from the grid point nearest the base configuration.
    std::vector<size_t> digits(HwConfigSpace::kAxes, 0);
    const auto nearest = [](const auto &values, double target) {
        size_t best = 0;
        for (size_t i = 1; i < values.size(); ++i) {
            const double d =
                std::abs(static_cast<double>(values[i]) - target);
            const double bd = std::abs(
                static_cast<double>(values[best]) - target);
            if (d < bd)
                best = i;
        }
        return best;
    };
    const accel::ViTCoDConfig &b = space_.base;
    digits[0] = nearest(space_.macLines,
                        static_cast<double>(b.macArray.macLines));
    digits[1] = nearest(space_.macsPerLine,
                        static_cast<double>(b.macArray.macsPerLine));
    digits[2] =
        nearest(space_.aeLines, static_cast<double>(b.aeLines));
    digits[3] = nearest(space_.sparserLineFrac, b.sparserLineFrac);
    digits[4] = nearest(space_.qkvBufBytes,
                        static_cast<double>(b.qkvBufBytes));
    digits[5] = nearest(space_.sBufferBytes,
                        static_cast<double>(b.sBufferBytes));
    digits[6] =
        nearest(space_.bandwidthGBps, b.dram.bandwidthGBps);
    digits[7] =
        nearest(space_.pipeFifoDepth,
                static_cast<double>(b.pipeline.fetchFifoDepth));
    digits[8] =
        nearest(space_.pipeStageLatency,
                static_cast<double>(b.pipeline.fetchLatency));
    if (!space_.valid(space_.encode(digits))) {
        // Degenerate spaces: fall back to the first valid point.
        for (size_t i = 0; i < space_.size(); ++i)
            if (space_.valid(i)) {
                digits = space_.decode(i);
                break;
            }
    }

    std::map<size_t, DsePoint> seen;
    const auto priced = [&](size_t idx) -> const DsePoint & {
        auto it = seen.find(idx);
        if (it == seen.end())
            it = seen.emplace(idx, evaluateIndex(idx)).first;
        return it->second;
    };

    size_t current = space_.encode(digits);
    double currentScore = score(priced(current).obj);

    for (size_t sweep = 0; sweep < cfg_.descentSweeps; ++sweep) {
        VITCOD_TRACE_SPAN("sweep", "dse", "sweep", double(sweep));
        obs::counterEvent("dse_priced_points",
                          double(seen.size()), "dse");
        bool improved = false;
        for (size_t axis = 0; axis < HwConfigSpace::kAxes; ++axis) {
            // Candidate indices along this axis, unseen ones priced
            // in parallel before the sequential (deterministic) pick.
            std::vector<size_t> cand;
            for (size_t v = 0; v < space_.axisSize(axis); ++v) {
                std::vector<size_t> d = digits;
                d[axis] = v;
                const size_t idx = space_.encode(d);
                if (space_.valid(idx))
                    cand.push_back(idx);
            }
            std::vector<size_t> fresh;
            for (size_t idx : cand)
                if (seen.find(idx) == seen.end())
                    fresh.push_back(idx);
            std::vector<DsePoint> evals(fresh.size());
            parallelOver(fresh.size(), [&](size_t i) {
                evals[i] = evaluateIndex(fresh[i]);
            });
            for (size_t i = 0; i < fresh.size(); ++i)
                seen.emplace(fresh[i], std::move(evals[i]));

            for (size_t idx : cand) {
                const double s = score(seen.at(idx).obj);
                if (s < currentScore) {
                    currentScore = s;
                    current = idx;
                    digits = space_.decode(idx);
                    improved = true;
                }
            }
        }
        if (!improved)
            break;
    }

    std::vector<DsePoint> points;
    points.reserve(seen.size());
    for (auto &[idx, p] : seen)
        points.push_back(std::move(p));
    return finish("coordinate", 0, std::move(points), t0);
}

DseResult
Explorer::anneal()
{
    const double t0 = nowSeconds();
    const size_t chains = std::max<size_t>(1, cfg_.annealChains);
    const size_t steps = std::max<size_t>(2, cfg_.annealSteps);
    VITCOD_TRACE_SPAN("anneal", "dse", "chains", double(chains),
                      "steps", double(steps));

    std::vector<std::vector<DsePoint>> perChain(chains);
    parallelOver(chains, [&](size_t c) {
        VITCOD_TRACE_SPAN("chain", "dse", "chain", double(c));
        // Chain-disjoint deterministic streams: the seed and the
        // chain id mix through SplitMix64 inside Rng's expansion.
        Rng rng(cfg_.seed +
                0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(c + 1));

        std::map<size_t, DsePoint> seen;
        const auto priced = [&](size_t idx) -> const DsePoint & {
            auto it = seen.find(idx);
            if (it == seen.end())
                it = seen.emplace(idx, evaluateIndex(idx)).first;
            return it->second;
        };

        // Random valid start (bounded draws, then linear fallback).
        size_t current = space_.size();
        for (int tries = 0; tries < 64; ++tries) {
            const size_t idx = static_cast<size_t>(
                rng.uniformInt(space_.size()));
            if (space_.valid(idx)) {
                current = idx;
                break;
            }
        }
        if (current == space_.size()) {
            for (size_t i = 0; i < space_.size(); ++i)
                if (space_.valid(i)) {
                    current = i;
                    break;
                }
        }
        double currentScore = score(priced(current).obj);

        const double t_ratio =
            cfg_.annealEndTemp / cfg_.annealStartTemp;
        for (size_t step = 0; step < steps; ++step) {
            const double temp =
                cfg_.annealStartTemp *
                std::pow(t_ratio, static_cast<double>(step) /
                                      static_cast<double>(steps - 1));

            // Single-axis proposal: +-1 on one digit, reflecting at
            // the axis ends. Axes of size 1 propose nothing.
            std::vector<size_t> digits = space_.decode(current);
            const size_t axis = static_cast<size_t>(
                rng.uniformInt(HwConfigSpace::kAxes));
            const size_t radix = space_.axisSize(axis);
            if (radix < 2)
                continue;
            const bool up = rng.uniform() < 0.5;
            const size_t d = digits[axis];
            if (d == 0)
                digits[axis] = 1;
            else if (d == radix - 1)
                digits[axis] = radix - 2;
            else
                digits[axis] = up ? d + 1 : d - 1;

            const size_t idx = space_.encode(digits);
            if (!space_.valid(idx))
                continue;
            const double s = score(priced(idx).obj);
            const bool accept =
                s < currentScore ||
                rng.uniform() <
                    std::exp((currentScore - s) /
                             std::max(temp, 1e-12));
            if (accept) {
                current = idx;
                currentScore = s;
            }
        }

        perChain[c].reserve(seen.size());
        for (auto &[idx, p] : seen)
            perChain[c].push_back(std::move(p));
    });

    std::vector<DsePoint> points;
    for (auto &chain : perChain)
        points.insert(points.end(),
                      std::make_move_iterator(chain.begin()),
                      std::make_move_iterator(chain.end()));
    return finish("anneal", cfg_.seed, std::move(points), t0);
}

} // namespace vitcod::dse
