#include "dse/design_space.h"

#include "common/logging.h"

namespace vitcod::dse {

double
areaProxyMm2(const accel::ViTCoDConfig &cfg, const AreaModel &model)
{
    const double macs = static_cast<double>(
        (cfg.macArray.macLines + cfg.aeLines) *
        cfg.macArray.macsPerLine);
    const double sram_bytes = static_cast<double>(
        cfg.qkvBufBytes + cfg.sBufferBytes + cfg.idxBufBytes +
        cfg.outBufBytes + cfg.weightBufBytes);
    const double um2 = macs * model.macUm2 +
                       sram_bytes * model.sramUm2PerByte +
                       cfg.dram.bandwidthGBps * model.ioUm2PerGBps;
    return um2 * 1e-6;
}

size_t
HwConfigSpace::axisSize(size_t axis) const
{
    switch (axis) {
    case 0: return macLines.size();
    case 1: return macsPerLine.size();
    case 2: return aeLines.size();
    case 3: return sparserLineFrac.size();
    case 4: return qkvBufBytes.size();
    case 5: return sBufferBytes.size();
    case 6: return bandwidthGBps.size();
    case 7: return pipeFifoDepth.size();
    case 8: return pipeStageLatency.size();
    default: fatal("HwConfigSpace: axis ", axis, " out of range");
    }
}

size_t
HwConfigSpace::size() const
{
    size_t n = 1;
    for (size_t a = 0; a < kAxes; ++a)
        n *= axisSize(a);
    return n;
}

std::vector<size_t>
HwConfigSpace::decode(size_t index) const
{
    VITCOD_ASSERT(index < size(), "point index out of range");
    std::vector<size_t> digits(kAxes);
    for (size_t a = 0; a < kAxes; ++a) {
        const size_t radix = axisSize(a);
        digits[a] = index % radix;
        index /= radix;
    }
    return digits;
}

size_t
HwConfigSpace::encode(const std::vector<size_t> &digits) const
{
    VITCOD_ASSERT(digits.size() == kAxes, "need one digit per axis");
    size_t index = 0;
    for (size_t a = kAxes; a-- > 0;) {
        VITCOD_ASSERT(digits[a] < axisSize(a), "digit out of range");
        index = index * axisSize(a) + digits[a];
    }
    return index;
}

accel::ViTCoDConfig
HwConfigSpace::configAt(size_t index) const
{
    const std::vector<size_t> d = decode(index);
    accel::ViTCoDConfig cfg = base;
    cfg.macArray.macLines = macLines[d[0]];
    cfg.macArray.macsPerLine = macsPerLine[d[1]];
    cfg.aeLines = aeLines[d[2]];
    cfg.sparserLineFrac = sparserLineFrac[d[3]];
    cfg.qkvBufBytes = qkvBufBytes[d[4]];
    cfg.sBufferBytes = sBufferBytes[d[5]];
    cfg.dram.bandwidthGBps = bandwidthGBps[d[6]];
    cfg.pipeline.fetchFifoDepth = pipeFifoDepth[d[7]];
    cfg.pipeline.writebackFifoDepth = pipeFifoDepth[d[7]];
    cfg.pipeline.fetchLatency = pipeStageLatency[d[8]];
    cfg.pipeline.denserLatency = pipeStageLatency[d[8]];
    cfg.pipeline.sparserLatency = pipeStageLatency[d[8]];
    cfg.pipeline.writebackLatency = pipeStageLatency[d[8]];
    return cfg;
}

bool
HwConfigSpace::valid(size_t index) const
{
    const std::vector<size_t> d = decode(index);
    return macLines[d[0]] > aeLines[d[2]] && macLines[d[0]] > 0 &&
           macsPerLine[d[1]] > 0 && qkvBufBytes[d[4]] > 0 &&
           sBufferBytes[d[5]] > 0 && bandwidthGBps[d[6]] > 0.0 &&
           pipeFifoDepth[d[7]] > 0;
}

void
HwConfigSpace::validate() const
{
    for (size_t a = 0; a < kAxes; ++a)
        VITCOD_ASSERT(axisSize(a) > 0, "empty axis ", a,
                      " in HwConfigSpace");
    for (double f : sparserLineFrac)
        VITCOD_ASSERT(f >= 0.0 && f < 1.0,
                      "sparserLineFrac axis values must be in [0, 1)");
    for (double bw : bandwidthGBps)
        VITCOD_ASSERT(bw > 0.0, "bandwidth axis values must be > 0");
    for (size_t depth : pipeFifoDepth)
        VITCOD_ASSERT(depth > 0,
                      "pipeFifoDepth axis values must be >= 1");
    size_t n_valid = 0;
    for (size_t i = 0; i < size(); ++i)
        n_valid += valid(i) ? 1 : 0;
    VITCOD_ASSERT(n_valid > 0, "HwConfigSpace has no valid point");
}

HwConfigSpace
HwConfigSpace::defaultSpace()
{
    HwConfigSpace s;
    s.macLines = {32, 64, 96, 128};
    s.macsPerLine = {8};
    s.aeLines = {8, 16};
    s.sparserLineFrac = {0.0, 0.3, 0.5};
    s.qkvBufBytes = {64 * 1024, 128 * 1024, 192 * 1024};
    s.sBufferBytes = {32 * 1024, 64 * 1024, 96 * 1024};
    s.bandwidthGBps = {38.4, 76.8, 115.2, 153.6};
    return s;
}

HwConfigSpace
HwConfigSpace::smokeSpace()
{
    HwConfigSpace s;
    s.macLines = {64, 96};
    s.macsPerLine = {8};
    s.aeLines = {16};
    s.sparserLineFrac = {0.0, 0.5};
    s.qkvBufBytes = {128 * 1024};
    s.sBufferBytes = {32 * 1024, 96 * 1024};
    s.bandwidthGBps = {76.8, 115.2};
    return s;
}

} // namespace vitcod::dse
