#include "dse/pareto.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace vitcod::dse {

std::string
WorkloadSpec::str() const
{
    std::ostringstream oss;
    oss << model << '/' << sparsity << '/' << (useAe ? "ae" : "noae")
        << '/' << (endToEnd ? "e2e" : "attn") << '*' << weight;
    return oss.str();
}

bool
dominates(const Objectives &a, const Objectives &b)
{
    const bool no_worse = a.latencySeconds <= b.latencySeconds &&
                          a.energyJoules <= b.energyJoules &&
                          a.areaMm2 <= b.areaMm2;
    const bool better = a.latencySeconds < b.latencySeconds ||
                        a.energyJoules < b.energyJoules ||
                        a.areaMm2 < b.areaMm2;
    return no_worse && better;
}

HwPoint
HwPoint::of(const accel::ViTCoDConfig &cfg)
{
    HwPoint p;
    p.macLines = cfg.macArray.macLines;
    p.macsPerLine = cfg.macArray.macsPerLine;
    p.aeLines = cfg.aeLines;
    p.sparserLineFrac = cfg.sparserLineFrac;
    p.qkvBufBytes = cfg.qkvBufBytes;
    p.sBufferBytes = cfg.sBufferBytes;
    p.bandwidthGBps = cfg.dram.bandwidthGBps;
    p.pipeFifoDepth = cfg.pipeline.fetchFifoDepth;
    p.pipeStageLatency = cfg.pipeline.fetchLatency;
    return p;
}

accel::ViTCoDConfig
HwPoint::apply(accel::ViTCoDConfig base) const
{
    base.macArray.macLines = macLines;
    base.macArray.macsPerLine = macsPerLine;
    base.aeLines = aeLines;
    base.sparserLineFrac = sparserLineFrac;
    base.qkvBufBytes = qkvBufBytes;
    base.sBufferBytes = sBufferBytes;
    base.dram.bandwidthGBps = bandwidthGBps;
    base.pipeline.fetchFifoDepth = pipeFifoDepth;
    base.pipeline.writebackFifoDepth = pipeFifoDepth;
    base.pipeline.fetchLatency = pipeStageLatency;
    base.pipeline.denserLatency = pipeStageLatency;
    base.pipeline.sparserLatency = pipeStageLatency;
    base.pipeline.writebackLatency = pipeStageLatency;
    return base;
}

namespace {

/** Deterministic total order: latency, then area, energy, index. */
bool
pointLess(const DsePoint &a, const DsePoint &b)
{
    if (a.obj.latencySeconds != b.obj.latencySeconds)
        return a.obj.latencySeconds < b.obj.latencySeconds;
    if (a.obj.areaMm2 != b.obj.areaMm2)
        return a.obj.areaMm2 < b.obj.areaMm2;
    if (a.obj.energyJoules != b.obj.energyJoules)
        return a.obj.energyJoules < b.obj.energyJoules;
    return a.index < b.index;
}

} // namespace

bool
ParetoFrontier::insert(const DsePoint &p)
{
    for (const DsePoint &q : points_) {
        if (dominates(q.obj, p.obj) || q == p)
            return false;
    }
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [&](const DsePoint &q) {
                                     return dominates(p.obj, q.obj);
                                 }),
                  points_.end());
    points_.insert(std::upper_bound(points_.begin(), points_.end(), p,
                                    pointLess),
                   p);
    return true;
}

const DsePoint &
ParetoFrontier::bestLatency() const
{
    VITCOD_ASSERT(!points_.empty(), "empty frontier");
    return points_.front();
}

bool
ParetoFrontier::nonDominated(const Objectives &obj) const
{
    for (const DsePoint &q : points_)
        if (dominates(q.obj, obj))
            return false;
    return true;
}

// --------------------------------------------------------- JSON I/O

namespace {

constexpr const char *kFormat = "vitcod-dse-frontier";
constexpr uint64_t kVersion = 1;

/** Shortest-exact double form (17 significant digits round-trip). */
std::string
numStr(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
               << "0123456789abcdef"[c & 0xf];
        else
            os << c;
    }
    os << '"';
}

/**
 * Minimal JSON document model for reading frontier files back —
 * objects, arrays, strings, numbers and booleans; numbers keep
 * their source token so integers up to 64 bits parse exactly.
 */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; //!< string value or raw number token
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue &
    at(const std::string &key) const
    {
        for (const auto &[k, v] : fields)
            if (k == key)
                return v;
        fatal("dse frontier parse error: missing key '", key, "'");
    }

    double
    asDouble() const
    {
        VITCOD_ASSERT(kind == Kind::Number,
                      "dse frontier parse error: expected number");
        return std::strtod(text.c_str(), nullptr);
    }

    uint64_t
    asU64() const
    {
        VITCOD_ASSERT(kind == Kind::Number,
                      "dse frontier parse error: expected number");
        return std::strtoull(text.c_str(), nullptr, 10);
    }

    bool
    asBool() const
    {
        VITCOD_ASSERT(kind == Kind::Bool,
                      "dse frontier parse error: expected bool");
        return boolean;
    }

    const std::string &
    asString() const
    {
        VITCOD_ASSERT(kind == Kind::String,
                      "dse frontier parse error: expected string");
        return text;
    }
};

/** Recursive-descent parser over the JSON subset we emit. */
class JsonParser
{
  public:
    explicit JsonParser(std::istream &is)
    {
        std::ostringstream oss;
        oss << is.rdbuf();
        src_ = oss.str();
    }

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        VITCOD_ASSERT(pos_ == src_.size(),
                      "dse frontier parse error: trailing content");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < src_.size() &&
               std::isspace(static_cast<unsigned char>(src_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        VITCOD_ASSERT(pos_ < src_.size(),
                      "dse frontier parse error: unexpected end");
        return src_[pos_];
    }

    void
    expect(char c)
    {
        VITCOD_ASSERT(peek() == c, "dse frontier parse error: expected '",
                      std::string(1, c), "'");
        ++pos_;
    }

    JsonValue
    value()
    {
        const char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.text = string();
            return v;
        }
        if (c == 't' || c == 'f') {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = (c == 't');
            literal(c == 't' ? "true" : "false");
            return v;
        }
        if (c == 'n') {
            literal("null");
            return {};
        }
        return number();
    }

    void
    literal(const std::string &word)
    {
        VITCOD_ASSERT(src_.compare(pos_, word.size(), word) == 0,
                      "dse frontier parse error: bad literal");
        pos_ += word.size();
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            VITCOD_ASSERT(pos_ < src_.size(),
                          "dse frontier parse error: unterminated string");
            const char c = src_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                VITCOD_ASSERT(pos_ < src_.size(),
                              "dse frontier parse error: bad escape");
                const char e = src_[pos_++];
                if (e == 'u') {
                    VITCOD_ASSERT(pos_ + 4 <= src_.size(),
                                  "dse frontier parse error: bad \\u");
                    const auto code = static_cast<char>(std::strtoul(
                        src_.substr(pos_, 4).c_str(), nullptr, 16));
                    out.push_back(code);
                    pos_ += 4;
                } else {
                    out.push_back(e);
                }
            } else {
                out.push_back(c);
            }
        }
    }

    JsonValue
    number()
    {
        skipWs();
        const size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '-' || src_[pos_] == '+' ||
                src_[pos_] == '.' || src_[pos_] == 'e' ||
                src_[pos_] == 'E'))
            ++pos_;
        VITCOD_ASSERT(pos_ > start,
                      "dse frontier parse error: expected value");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.text = src_.substr(start, pos_ - start);
        return v;
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = string();
            expect(':');
            v.fields.emplace_back(std::move(key), value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    std::string src_;
    size_t pos_ = 0;
};

} // namespace

void
ParetoFrontier::writeJson(std::ostream &os) const
{
    os << "{\n";
    os << "  \"format\": \"" << kFormat << "\",\n";
    os << "  \"version\": " << kVersion << ",\n";
    os << "  \"algorithm\": ";
    writeEscaped(os, algorithm);
    os << ",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"evaluated\": " << evaluated << ",\n";
    os << "  \"workloads\": [";
    for (size_t i = 0; i < workloads.size(); ++i) {
        const WorkloadSpec &w = workloads[i];
        os << (i ? ",\n    " : "\n    ") << "{\"model\": ";
        writeEscaped(os, w.model);
        os << ", \"sparsity\": " << numStr(w.sparsity)
           << ", \"use_ae\": " << (w.useAe ? "true" : "false")
           << ", \"end_to_end\": " << (w.endToEnd ? "true" : "false")
           << ", \"weight\": " << numStr(w.weight) << '}';
    }
    os << (workloads.empty() ? "]" : "\n  ]") << ",\n";
    os << "  \"points\": [";
    for (size_t i = 0; i < points_.size(); ++i) {
        const DsePoint &p = points_[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"index\": " << p.index << ", \"mac_lines\": "
           << p.hw.macLines << ", \"macs_per_line\": "
           << p.hw.macsPerLine << ", \"ae_lines\": " << p.hw.aeLines
           << ", \"sparser_frac\": " << numStr(p.hw.sparserLineFrac)
           << ", \"qkv_buf_bytes\": " << p.hw.qkvBufBytes
           << ", \"s_buf_bytes\": " << p.hw.sBufferBytes
           << ", \"bandwidth_gbps\": " << numStr(p.hw.bandwidthGBps)
           << ", \"pipe_fifo_depth\": " << p.hw.pipeFifoDepth
           << ", \"pipe_stage_latency\": " << p.hw.pipeStageLatency
           << ", \"latency_s\": " << numStr(p.obj.latencySeconds)
           << ", \"energy_j\": " << numStr(p.obj.energyJoules)
           << ", \"area_mm2\": " << numStr(p.obj.areaMm2) << '}';
    }
    os << (points_.empty() ? "]" : "\n  ]") << "\n}\n";
}

void
ParetoFrontier::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writeJson(os);
    if (!os)
        fatal("write to '", path, "' failed");
}

ParetoFrontier
ParetoFrontier::readJson(std::istream &is)
{
    const JsonValue doc = JsonParser(is).parse();
    VITCOD_ASSERT(doc.kind == JsonValue::Kind::Object,
                  "dse frontier parse error: not an object");
    VITCOD_ASSERT(doc.at("format").asString() == kFormat,
                  "dse frontier parse error: wrong format tag");
    VITCOD_ASSERT(doc.at("version").asU64() == kVersion,
                  "dse frontier parse error: unsupported version");

    ParetoFrontier f;
    f.algorithm = doc.at("algorithm").asString();
    f.seed = doc.at("seed").asU64();
    f.evaluated = doc.at("evaluated").asU64();
    for (const JsonValue &wv : doc.at("workloads").items) {
        WorkloadSpec w;
        w.model = wv.at("model").asString();
        w.sparsity = wv.at("sparsity").asDouble();
        w.useAe = wv.at("use_ae").asBool();
        w.endToEnd = wv.at("end_to_end").asBool();
        w.weight = wv.at("weight").asDouble();
        f.workloads.push_back(std::move(w));
    }
    for (const JsonValue &pv : doc.at("points").items) {
        DsePoint p;
        p.index = pv.at("index").asU64();
        p.hw.macLines = pv.at("mac_lines").asU64();
        p.hw.macsPerLine = pv.at("macs_per_line").asU64();
        p.hw.aeLines = pv.at("ae_lines").asU64();
        p.hw.sparserLineFrac = pv.at("sparser_frac").asDouble();
        p.hw.qkvBufBytes = pv.at("qkv_buf_bytes").asU64();
        p.hw.sBufferBytes = pv.at("s_buf_bytes").asU64();
        p.hw.bandwidthGBps = pv.at("bandwidth_gbps").asDouble();
        p.hw.pipeFifoDepth = pv.at("pipe_fifo_depth").asU64();
        p.hw.pipeStageLatency = pv.at("pipe_stage_latency").asU64();
        p.obj.latencySeconds = pv.at("latency_s").asDouble();
        p.obj.energyJoules = pv.at("energy_j").asDouble();
        p.obj.areaMm2 = pv.at("area_mm2").asDouble();
        // Points re-enter through insert() so the frontier invariant
        // (mutual non-dominance, sort order) holds for any input.
        f.insert(p);
    }
    return f;
}

ParetoFrontier
ParetoFrontier::readJsonFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '", path, "' for reading");
    return readJson(is);
}

void
ParetoFrontier::writeCsv(std::ostream &os) const
{
    os << "index,mac_lines,macs_per_line,ae_lines,sparser_frac,"
          "qkv_buf_bytes,s_buf_bytes,bandwidth_gbps,pipe_fifo_depth,"
          "pipe_stage_latency,latency_s,energy_j,area_mm2\n";
    for (const DsePoint &p : points_) {
        os << p.index << ',' << p.hw.macLines << ','
           << p.hw.macsPerLine << ',' << p.hw.aeLines << ','
           << numStr(p.hw.sparserLineFrac) << ',' << p.hw.qkvBufBytes
           << ',' << p.hw.sBufferBytes << ','
           << numStr(p.hw.bandwidthGBps) << ',' << p.hw.pipeFifoDepth
           << ',' << p.hw.pipeStageLatency << ','
           << numStr(p.obj.latencySeconds) << ','
           << numStr(p.obj.energyJoules) << ','
           << numStr(p.obj.areaMm2) << '\n';
    }
}

void
ParetoFrontier::writeCsvFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writeCsv(os);
    if (!os)
        fatal("write to '", path, "' failed");
}

} // namespace vitcod::dse
