/**
 * @file
 * The design-space exploration engine (the "overall design space
 * exploration" usage paper Sec. VII advertises, automated): given a
 * workload bundle — one or more (model, sparsity, AE, scope) tasks,
 * each compiled once into a ModelPlan — and a HwConfigSpace, the
 * Explorer prices candidate accelerator configurations through the
 * Schedule IR (ScheduleBuilder -> ViTCoDAccelerator::runSchedule)
 * and accumulates the Pareto frontier over (latency, energy proxy,
 * area proxy).
 *
 * Cost structure: the expensive artifacts are reused aggressively.
 * Each workload's ModelPlan (mask generation + AE fitting) is built
 * exactly once per Explorer. Schedules are memoized by their
 * schedule-relevant HardwareParams, so pricing-only axes (off-chip
 * bandwidth and the pipeline FIFO/latency knobs — the only swept
 * knobs outside HardwareParams) re-price a cached schedule instead
 * of rebuilding it. Point evaluations are
 * independent and fan out over the engine ThreadPool; every search
 * algorithm is bitwise deterministic in (bundle, space, config) —
 * guided search draws from a seeded vitcod::Rng and results never
 * depend on thread scheduling.
 */

#ifndef VITCOD_DSE_EXPLORER_H
#define VITCOD_DSE_EXPLORER_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dse/design_space.h"
#include "dse/pareto.h"
#include "linalg/engine/thread_pool.h"

namespace vitcod::dse {

/** Search knobs of one Explorer instance. */
struct ExplorerConfig
{
    /** Worker threads for point fan-out; 0 = shared engine pool. */
    size_t threads = 0;

    /** Seed of the guided-search RNG (annealing proposals). */
    uint64_t seed = 1;

    /** @name Simulated annealing
     *  @{ */
    size_t annealChains = 4;  //!< independent restarts
    size_t annealSteps = 120; //!< proposals per chain
    double annealStartTemp = 0.25; //!< of the scalarized score
    double annealEndTemp = 0.005;  //!< geometric schedule endpoint
    /** @} */

    /** Max full axis sweeps of coordinate descent. */
    size_t descentSweeps = 6;

    /**
     * Simulator that prices every candidate (objective mode).
     * Pipelined makes the FIFO-depth / stage-latency axes
     * (HwConfigSpace::pipeFifoDepth/pipeStageLatency) matter and
     * charges real backpressure stalls; pricing-only, so memoized
     * schedules are shared across the new axes either way.
     */
    sim::SimMode simMode = sim::SimMode::Analytic;

    /** @name Scalarization weights (guided-search acceptance only)
     * Objectives are normalized by the base configuration's values,
     * so weights compare dimensionless ratios. The frontier itself
     * is always the full multi-objective non-dominated set.
     *  @{ */
    double latencyWeight = 1.0;
    double energyWeight = 0.25;
    double areaWeight = 0.5;
    /** @} */
};

/** Outcome of one search run. */
struct DseResult
{
    ParetoFrontier frontier;

    /** Unique design points priced (== frontier.evaluated). */
    uint64_t evaluated = 0;

    /** Objectives of the space's base (untuned) configuration. */
    Objectives baseline;

    /** Wall time of the search (informational; never serialized). */
    double wallSeconds = 0.0;
};

/** Design-space exploration engine over one workload bundle. */
class Explorer
{
  public:
    /**
     * Builds every workload's ModelPlan up front (the one-time
     * algorithm cost; dominates small searches) and validates the
     * space. @p workloads must be non-empty with positive weights.
     */
    Explorer(std::vector<WorkloadSpec> workloads, HwConfigSpace space,
             ExplorerConfig cfg = {});

    ~Explorer();

    Explorer(const Explorer &) = delete;
    Explorer &operator=(const Explorer &) = delete;

    const HwConfigSpace &space() const { return space_; }

    /** The bundle's specs, in construction order. */
    const std::vector<WorkloadSpec> &workloads() const
    {
        return specs_;
    }

    /** Objectives of the space's base configuration. */
    const Objectives &baseline() const { return baseline_; }

    /**
     * Price @p cfg against the whole bundle: weighted sums of the
     * simulated latency and energy plus the configuration's area
     * proxy. Shares the schedule memo with the searches, so probing
     * the base configuration (or any external candidate) is cheap.
     */
    Objectives evaluateConfig(const accel::ViTCoDConfig &cfg) const;

    /** Evaluate grid point @p index. @pre space().valid(index). */
    DsePoint evaluateIndex(size_t index) const;

    /**
     * Price every valid grid point. The frontier is exact for the
     * space; cost is one evaluation per point (parallelized, with
     * schedules shared across pricing-only axes).
     */
    DseResult exhaustive();

    /**
     * Greedy coordinate descent from the point nearest the base
     * configuration: sweep one axis at a time (all candidate values
     * of that axis evaluated in parallel), move to the best
     * scalarized score, and stop after a full pass without
     * improvement (or cfg.descentSweeps passes). Evaluates a small
     * fraction of the grid; the frontier contains every point it
     * priced.
     */
    DseResult coordinateDescent();

    /**
     * Simulated annealing: cfg.annealChains independent chains of
     * cfg.annealSteps single-axis proposals each, Metropolis
     * acceptance on the scalarized score under a geometric
     * temperature schedule, chain c seeded from (cfg.seed, c).
     * Deterministic in the seed; chains run in parallel.
     */
    DseResult anneal();

  private:
    struct Workload; //!< spec + built ModelPlan

    /** Schedule for (workload w, params key), memoized. */
    std::shared_ptr<const core::schedule::ModelSchedule>
    scheduleFor(size_t w, const accel::ViTCoDConfig &cfg) const;

    /** Scalarized score of @p obj relative to the baseline. */
    double score(const Objectives &obj) const;

    /** Deterministic fan-out over [0, n) on the configured pool. */
    void parallelOver(size_t n,
                      const std::function<void(size_t)> &fn) const;

    /** Assemble a DseResult from evaluated points, in index order. */
    DseResult finish(const std::string &algorithm, uint64_t seed,
                     std::vector<DsePoint> points, double t0) const;

    std::vector<WorkloadSpec> specs_;
    std::vector<Workload> workloads_;
    HwConfigSpace space_;
    ExplorerConfig cfg_;
    Objectives baseline_; //!< base config priced at construction

    std::unique_ptr<linalg::engine::ThreadPool> ownPool_;
    linalg::engine::ThreadPool *pool_;

    mutable std::mutex schedLock_;
    mutable std::map<
        std::string,
        std::shared_ptr<const core::schedule::ModelSchedule>>
        schedules_;
};

} // namespace vitcod::dse

#endif // VITCOD_DSE_EXPLORER_H
