/**
 * @file
 * Result currency of the design-space explorer: objective vectors
 * (simulated latency / energy proxy / area proxy, all minimized),
 * evaluated design points, and the Pareto frontier they form. The
 * frontier serializes to JSON (round-trippable — the serving
 * runtime's tuned-config hook and the golden-fixture tests both read
 * it back) and to CSV for spreadsheet/plot consumption; the format
 * is documented in docs/DSE.md.
 */

#ifndef VITCOD_DSE_PARETO_H
#define VITCOD_DSE_PARETO_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dse/design_space.h"

namespace vitcod::dse {

/**
 * One workload of the tuning bundle: the task identity the
 * algorithm pipeline is deterministic in, plus a weight for the
 * bundle-aggregated objectives.
 */
struct WorkloadSpec
{
    std::string model = "DeiT-Tiny"; //!< model::modelByName() name
    double sparsity = 0.9;  //!< attention-mask target sparsity
    bool useAe = true;      //!< auto-encoder compression on?
    bool endToEnd = false;  //!< full inference vs core attention
    double weight = 1.0;    //!< share in the aggregated objectives

    bool operator==(const WorkloadSpec &) const = default;

    /** Human-readable "model/sparsity/ae/scope*weight" form. */
    std::string str() const;
};

/** Objective vector of one design point; every entry is minimized. */
struct Objectives
{
    double latencySeconds = 0.0; //!< weighted simulated latency
    double energyJoules = 0.0;   //!< weighted simulated energy
    double areaMm2 = 0.0;        //!< areaProxyMm2 of the config

    bool operator==(const Objectives &) const = default;
};

/**
 * Pareto dominance: @p a is no worse than @p b on every objective
 * and strictly better on at least one. Equal vectors dominate in
 * neither direction, so distinct configs with identical cost
 * coexist on a frontier.
 */
bool dominates(const Objectives &a, const Objectives &b);

/**
 * The swept knob values of one design point — exactly the fields a
 * HwConfigSpace varies, so a point round-trips through a result
 * file without carrying the whole base configuration.
 */
struct HwPoint
{
    size_t macLines = 64;      //!< engine MAC lines
    size_t macsPerLine = 8;    //!< MAC units per line
    size_t aeLines = 16;       //!< AE en/decoder lines
    double sparserLineFrac = 0.0; //!< PE split (0 = dynamic)
    Bytes qkvBufBytes = 128 * 1024; //!< Q/K/S/V buffer budget
    Bytes sBufferBytes = 96 * 1024; //!< S spill threshold
    double bandwidthGBps = 76.8;    //!< off-chip bandwidth
    size_t pipeFifoDepth = 64;      //!< pipelined-mode FIFO depth
    Cycles pipeStageLatency = 0;    //!< pipelined-mode stage latency

    bool operator==(const HwPoint &) const = default;

    /** The swept knobs of @p cfg as a point. */
    static HwPoint of(const accel::ViTCoDConfig &cfg);

    /** Materialize onto @p base (inverse of of() modulo base). */
    accel::ViTCoDConfig apply(accel::ViTCoDConfig base = {}) const;
};

/** One evaluated design point. */
struct DsePoint
{
    size_t index = 0; //!< mixed-radix index in the explored space
    HwPoint hw;
    Objectives obj;

    bool operator==(const DsePoint &) const = default;
};

/**
 * The set of mutually non-dominated evaluated points, kept sorted
 * by (latency, area, energy, index) so every serialization and
 * comparison is deterministic. Also carries the provenance metadata
 * written into result files: the workload bundle, the search
 * algorithm, its seed and how many unique points it priced.
 */
class ParetoFrontier
{
  public:
    /** @name Provenance metadata (serialized, golden-compared)
     *  @{ */
    std::vector<WorkloadSpec> workloads;
    std::string algorithm; //!< "exhaustive" / "coordinate" / "anneal"
    uint64_t seed = 0;     //!< guided-search RNG seed (0: none)
    uint64_t evaluated = 0; //!< unique design points priced
    /** @} */

    /** Non-dominated points, sorted; empty() iff none inserted. */
    const std::vector<DsePoint> &points() const { return points_; }

    /**
     * Offer @p p to the frontier: rejected when an existing point
     * dominates it, otherwise inserted and every point it dominates
     * is dropped. The final set is the non-dominated subset of all
     * offered points regardless of offer order. Returns whether the
     * point was kept.
     */
    bool insert(const DsePoint &p);

    /** Point with the lowest latency. @pre !points().empty(). */
    const DsePoint &bestLatency() const;

    /** True iff no frontier point dominates @p obj. */
    bool nonDominated(const Objectives &obj) const;

    /** Everything-compared equality (metadata + points). */
    bool operator==(const ParetoFrontier &) const = default;

    /** @name JSON serialization (round-trips exactly)
     *  @{ */
    void writeJson(std::ostream &os) const;
    void writeJsonFile(const std::string &path) const;
    static ParetoFrontier readJson(std::istream &is);
    static ParetoFrontier readJsonFile(const std::string &path);
    /** @} */

    /** @name CSV export (write-only, one row per point)
     *  @{ */
    void writeCsv(std::ostream &os) const;
    void writeCsvFile(const std::string &path) const;
    /** @} */

  private:
    std::vector<DsePoint> points_;
};

} // namespace vitcod::dse

#endif // VITCOD_DSE_PARETO_H
