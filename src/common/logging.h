/**
 * @file
 * Status-message and error-reporting helpers in the spirit of gem5's
 * logging.hh: fatal() for user errors that make continuing impossible,
 * panic() for internal invariant violations, warn()/inform()/debug()
 * for non-fatal diagnostics of decreasing severity.
 */

#ifndef VITCOD_COMMON_LOGGING_H
#define VITCOD_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace vitcod {

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/**
 * Process-wide log verbosity. Benches set this to Silent so that their
 * table output stays machine-parsable; tests leave it at Warn.
 */
LogLevel logLevel();

/** Set the process-wide log verbosity. */
void setLogLevel(LogLevel level);

namespace detail {

/** Emit a formatted message to stderr with a severity prefix. */
void emit(const char *prefix, const std::string &msg);

/** Emit and exit(1): the condition is the user's fault. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Emit and abort(): the condition is a simulator bug. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Report a user-caused error (bad config, invalid argument) and exit. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl("", 0, detail::concat(std::forward<Args>(args)...));
}

/** Report an internal invariant violation and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl("", 0, detail::concat(std::forward<Args>(args)...));
}

/** Report a recoverable anomaly the user should know about. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn: ", detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Inform)
        detail::emit("info: ", detail::concat(std::forward<Args>(args)...));
}

/** Report developer-level detail, visible only at LogLevel::Debug. */
template <typename... Args>
void
debug(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::emit("debug: ",
                     detail::concat(std::forward<Args>(args)...));
}

/**
 * Check a simulator invariant; on failure, panic with the stringified
 * condition and an explanatory message.
 */
#define VITCOD_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::vitcod::panic("assertion failed: ", #cond, ": ",            \
                            ::vitcod::detail::concat(__VA_ARGS__));       \
        }                                                                 \
    } while (0)

} // namespace vitcod

#endif // VITCOD_COMMON_LOGGING_H
