/**
 * @file
 * Strong-ish unit aliases shared by the simulator and accelerator
 * models. Kept as plain integral/floating aliases (not wrapper types)
 * for arithmetic convenience; names document intent at interfaces.
 */

#ifndef VITCOD_COMMON_UNITS_H
#define VITCOD_COMMON_UNITS_H

#include <cstdint>

namespace vitcod {

/** Clock cycles of whichever clock domain the context names. */
using Cycles = uint64_t;

/** Byte counts (traffic, capacities). */
using Bytes = uint64_t;

/** Multiply-accumulate operation counts. */
using MacOps = uint64_t;

/** Floating-point operation counts (2 per MAC by convention). */
using Flops = double;

/** Energy in picojoules. */
using PicoJoules = double;

/** Seconds, for cross-clock-domain comparisons. */
using Seconds = double;

/** Convert cycles at @p freq_ghz to seconds. */
constexpr Seconds
cyclesToSeconds(Cycles cycles, double freq_ghz)
{
    return static_cast<double>(cycles) / (freq_ghz * 1e9);
}

/** Convert seconds to cycles at @p freq_ghz (rounded up). */
constexpr Cycles
secondsToCycles(Seconds s, double freq_ghz)
{
    const double c = s * freq_ghz * 1e9;
    const auto whole = static_cast<Cycles>(c);
    return (static_cast<double>(whole) < c) ? whole + 1 : whole;
}

/** Integer ceiling division for tiling computations. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
constexpr uint64_t
roundUp(uint64_t a, uint64_t b)
{
    return ceilDiv(a, b) * b;
}

constexpr Bytes operator""_KiB(unsigned long long v) { return v << 10; }
constexpr Bytes operator""_MiB(unsigned long long v) { return v << 20; }
constexpr Bytes operator""_GiB(unsigned long long v) { return v << 30; }

} // namespace vitcod

#endif // VITCOD_COMMON_UNITS_H
