/**
 * @file
 * Deterministic pseudo-random number generation for the whole
 * reproduction. Every stochastic input (synthetic attention maps, Q/K
 * tensors, workload jitter) flows from a seeded Rng so that all tests
 * and benches are reproducible bit-for-bit.
 *
 * The generator is xoshiro256** seeded through SplitMix64, following
 * Blackman & Vigna. Both are implemented here rather than taken from
 * <random> so results are identical across standard libraries.
 */

#ifndef VITCOD_COMMON_RNG_H
#define VITCOD_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace vitcod {

/** SplitMix64 stepper, used for seeding and cheap hash mixing. */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Advance and return the next 64-bit value. */
    uint64_t next();

  private:
    uint64_t state_;
};

/**
 * xoshiro256** generator with convenience distributions.
 *
 * Distributions are implemented directly (not via <random>) so that a
 * given seed produces the same stream on every platform.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x5eed'0fde'201c'0d23ULL);

    /** Next raw 64-bit value. */
    uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal via Box-Muller (cached spare). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Fisher-Yates shuffle of indices [0, n). */
    std::vector<uint32_t> permutation(uint32_t n);

    /**
     * Derive an independent child generator; used to give each
     * (layer, head) pair its own stream.
     */
    Rng fork();

  private:
    uint64_t s_[4];
    double spareNormal_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace vitcod

#endif // VITCOD_COMMON_RNG_H
