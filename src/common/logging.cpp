#include "logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace vitcod {

namespace {

// Atomic so worker threads may read the level while a main thread
// adjusts it; the sink mutex keeps concurrent log lines from
// interleaving mid-line (the serving worker pool logs concurrently).
std::atomic<LogLevel> g_level{LogLevel::Warn};

std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
emit(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
    std::fflush(stderr);
}

void
fatalImpl(const char *, int, const std::string &msg)
{
    emit("fatal: ", msg);
    std::exit(1);
}

void
panicImpl(const char *, int, const std::string &msg)
{
    emit("panic: ", msg);
    std::abort();
}

} // namespace detail

} // namespace vitcod
