#include "logging.h"

#include <cstdio>
#include <cstdlib>

namespace vitcod {

namespace {

LogLevel g_level = LogLevel::Warn;

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
emit(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
    std::fflush(stderr);
}

void
fatalImpl(const char *, int, const std::string &msg)
{
    emit("fatal: ", msg);
    std::exit(1);
}

void
panicImpl(const char *, int, const std::string &msg)
{
    emit("panic: ", msg);
    std::abort();
}

} // namespace detail

} // namespace vitcod
