/**
 * @file
 * Plain-text table printer used by every bench harness so that the
 * regenerated paper tables/figures share one consistent, diffable
 * format.
 */

#ifndef VITCOD_COMMON_TABLE_H
#define VITCOD_COMMON_TABLE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vitcod {

/**
 * Column-aligned ASCII table. Cells are strings; numeric helpers
 * format with fixed precision so rows line up.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a formatted double cell (fixed, @p precision digits). */
    Table &cell(double value, int precision = 2);

    /** Append an integer cell. */
    Table &cell(int64_t value);

    /** Append an integer cell (unsigned overload). */
    Table &cell(uint64_t value);

    /** Append a "x.yz x" speedup-style cell. */
    Table &cellRatio(double value, int precision = 1);

    /** Render to the stream with a header rule and aligned columns. */
    void print(std::ostream &os) const;

    /** Number of data rows so far. */
    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a byte count with a binary suffix (e.g. "320.0 KiB"). */
std::string formatBytes(double bytes);

/** Format an operation count with a metric suffix (e.g. "1.23 GOP"). */
std::string formatOps(double ops);

/** Print a section banner used between bench subsections. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace vitcod

#endif // VITCOD_COMMON_TABLE_H
