#include "table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "logging.h"

namespace vitcod {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    VITCOD_ASSERT(!headers_.empty(), "table needs at least one column");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    VITCOD_ASSERT(!rows_.empty(), "call row() before cell()");
    VITCOD_ASSERT(rows_.back().size() < headers_.size(),
                  "row has more cells than headers");
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return cell(oss.str());
}

Table &
Table::cell(int64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cellRatio(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value << "x";
    return cell(oss.str());
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            os << (c ? "  " : "") << std::left
               << std::setw(static_cast<int>(widths[c])) << v;
        }
        os << '\n';
    };

    print_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &r : rows_)
        print_row(r);
}

std::string
formatBytes(double bytes)
{
    static const char *suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int s = 0;
    while (bytes >= 1024.0 && s < 4) {
        bytes /= 1024.0;
        ++s;
    }
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(1) << bytes << ' ' << suffix[s];
    return oss.str();
}

std::string
formatOps(double ops)
{
    static const char *suffix[] = {"OP", "KOP", "MOP", "GOP", "TOP"};
    int s = 0;
    while (ops >= 1000.0 && s < 4) {
        ops /= 1000.0;
        ++s;
    }
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(2) << ops << ' ' << suffix[s];
    return oss.str();
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << "== " << title << " ==" << '\n';
}

} // namespace vitcod
