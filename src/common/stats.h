/**
 * @file
 * Lightweight statistics helpers: streaming mean/variance, geometric
 * mean (the paper's "on-average X× speedup" figures are geomeans over
 * models), min/max tracking and simple histograms.
 */

#ifndef VITCOD_COMMON_STATS_H
#define VITCOD_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace vitcod {

/**
 * Streaming scalar statistic using Welford's algorithm for a stable
 * variance and a parallel log-domain accumulator for the geomean.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples so far. */
    size_t count() const { return n_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance; 0 when fewer than two samples. */
    double variance() const;

    /** Standard deviation. */
    double stddev() const;

    /**
     * Geometric mean; only meaningful when all samples are positive.
     * Returns 0 when empty or when any sample was <= 0.
     */
    double geomean() const;

    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double logSum_ = 0.0;
    bool allPositive_ = true;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-range histogram with uniform bins, used to profile attention
 * score distributions and engine utilization.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin.
     * @param bins Number of uniform bins; must be >= 1.
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add a sample; out-of-range samples land in under/overflow. */
    void add(double x);

    /** Count in bin @p i. */
    uint64_t binCount(size_t i) const { return counts_.at(i); }

    /** Number of bins. */
    size_t bins() const { return counts_.size(); }

    /** Samples below the range. */
    uint64_t underflow() const { return underflow_; }

    /** Samples at or above the upper edge. */
    uint64_t overflow() const { return overflow_; }

    /** Total samples added, including under/overflow. */
    uint64_t total() const { return total_; }

    /** Lower edge of bin @p i. */
    double binLo(size_t i) const;

    /**
     * Value below which @p q of the in-range mass lies (linear
     * interpolation inside the bin). @pre 0 <= q <= 1.
     */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

} // namespace vitcod

#endif // VITCOD_COMMON_STATS_H
