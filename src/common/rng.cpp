#include "rng.h"

#include <cmath>

#include "logging.h"

namespace vitcod {

uint64_t
SplitMix64::next()
{
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &s : s_)
        s = sm.next();
}

uint64_t
Rng::nextU64()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    VITCOD_ASSERT(n > 0, "uniformInt needs n > 0");
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = nextU64();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    spareNormal_ = mag * std::sin(two_pi * u2);
    hasSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

std::vector<uint32_t>
Rng::permutation(uint32_t n)
{
    std::vector<uint32_t> idx(n);
    for (uint32_t i = 0; i < n; ++i)
        idx[i] = i;
    for (uint32_t i = n; i > 1; --i) {
        const uint32_t j = static_cast<uint32_t>(uniformInt(i));
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

Rng
Rng::fork()
{
    return Rng(nextU64());
}

} // namespace vitcod
