#include "stats.h"

#include <algorithm>
#include <cmath>

#include "logging.h"

namespace vitcod {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x > 0)
        logSum_ += std::log(x);
    else
        allPositive_ = false;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::geomean() const
{
    if (n_ == 0 || !allPositive_)
        return 0.0;
    return std::exp(logSum_ / static_cast<double>(n_));
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    VITCOD_ASSERT(bins >= 1, "histogram needs at least one bin");
    VITCOD_ASSERT(hi > lo, "histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const double frac = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<size_t>(frac * static_cast<double>(bins()));
    bin = std::min(bin, bins() - 1);
    ++counts_[bin];
}

double
Histogram::binLo(size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(bins());
    return lo_ + width * static_cast<double>(i);
}

double
Histogram::quantile(double q) const
{
    VITCOD_ASSERT(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
    uint64_t in_range = total_ - underflow_ - overflow_;
    if (in_range == 0)
        return lo_;
    const double target = q * static_cast<double>(in_range);
    double cum = 0.0;
    const double width = (hi_ - lo_) / static_cast<double>(bins());
    for (size_t i = 0; i < bins(); ++i) {
        const double next = cum + static_cast<double>(counts_[i]);
        if (next >= target) {
            const double within =
                counts_[i] ? (target - cum) / counts_[i] : 0.0;
            return binLo(i) + within * width;
        }
        cum = next;
    }
    return hi_;
}

} // namespace vitcod
