#include "mac_array.h"

#include "common/logging.h"

namespace vitcod::sim {

MacArray::MacArray(MacArrayConfig cfg) : cfg_(cfg)
{
    VITCOD_ASSERT(cfg_.macLines > 0 && cfg_.macsPerLine > 0,
                  "empty MAC array");
}

Cycles
MacArray::cyclesFor(MacOps ops, size_t lines) const
{
    VITCOD_ASSERT(lines > 0 && lines <= cfg_.macLines,
                  "bad line allocation: ", lines);
    const MacOps per_cycle = lines * cfg_.macsPerLine;
    return ceilDiv(ops, per_cycle);
}

void
MacArray::recordWork(MacOps useful_ops, Cycles elapsed, size_t lines)
{
    VITCOD_ASSERT(lines > 0 && lines <= cfg_.macLines,
                  "bad line allocation: ", lines);
    usefulOps_ += useful_ops;
    busyCycles_ += elapsed;
    offeredMacCycles_ += static_cast<double>(elapsed) *
                         static_cast<double>(lines * cfg_.macsPerLine);
}

double
MacArray::utilization() const
{
    if (offeredMacCycles_ <= 0.0)
        return 0.0;
    return static_cast<double>(usefulOps_) / offeredMacCycles_;
}

void
MacArray::resetStats()
{
    usefulOps_ = 0;
    offeredMacCycles_ = 0.0;
    busyCycles_ = 0;
    modeSwitches_ = 0;
}

} // namespace vitcod::sim
