#include "pipeline_model.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <sstream>

#include "common/logging.h"
#include "sim/event_queue.h"

namespace vitcod::sim {

const char *
simModeName(SimMode mode)
{
    return mode == SimMode::Analytic ? "analytic" : "pipelined";
}

Cycles
itemLoadCycles(const PipeItem &item, const DramModel &dram)
{
    Cycles c = dram.streamCycles(item.loadBytes);
    if (item.gatherCount > 0)
        c += dram.gatherCycles(item.gatherCount,
                               item.gatherGrainBytes);
    return c;
}

Cycles
itemComputeCycles(const PipeItem &item)
{
    return std::max({item.denserCycles, item.sparserCycles,
                     item.decodeCycles}) +
           item.syncCycles;
}

Cycles
itemStoreCycles(const PipeItem &item, const DramModel &dram)
{
    return dram.streamCycles(item.storeBytes);
}

TileCost
analyticTile(const PipeItem &item, const DramModel &dram)
{
    return {itemLoadCycles(item, dram), itemComputeCycles(item),
            itemStoreCycles(item, dram)};
}

StageCounters &
StageCounters::operator+=(const StageCounters &o)
{
    busy += o.busy;
    stall += o.stall;
    idle += o.idle;
    return *this;
}

PipelineStats &
PipelineStats::operator+=(const PipelineStats &o)
{
    totalCycles += o.totalCycles;
    fetch += o.fetch;
    denser += o.denser;
    sparser += o.sparser;
    writeback += o.writeback;
    fetchFifoHighWater =
        std::max(fetchFifoHighWater, o.fetchFifoHighWater);
    writebackFifoHighWater =
        std::max(writebackFifoHighWater, o.writebackFifoHighWater);
    items += o.items;
    events += o.events;
    return *this;
}

std::string
PipelineStats::str() const
{
    std::ostringstream oss;
    oss << "total " << totalCycles << " items " << items << " events "
        << events << '\n';
    const auto stage = [&](const char *name,
                           const StageCounters &c) {
        oss << name << " busy " << c.busy << " stall " << c.stall
            << " idle " << c.idle << '\n';
    };
    stage("fetch", fetch);
    stage("denser", denser);
    stage("sparser", sparser);
    stage("writeback", writeback);
    oss << "fifo_high_water fetch " << fetchFifoHighWater
        << " writeback " << writebackFifoHighWater << '\n';
    return oss.str();
}

PipelineModel::PipelineModel(PipelineConfig cfg, DramConfig dram)
    : cfg_(cfg), dram_(dram)
{
    VITCOD_ASSERT(cfg_.fetchFifoDepth > 0 &&
                      cfg_.writebackFifoDepth > 0,
                  "pipeline FIFO depths must be >= 1 chunk");
    VITCOD_ASSERT(cfg_.fifoChunkBytes > 0,
                  "pipeline FIFO chunk size must be positive");
}

namespace {

/**
 * One group's event-driven execution. The structure mirrors the
 * analytic recurrence's PipelineSim (tile_scheduler.cpp) — in-order
 * units, two-bank structural gates — generalized with finite FIFO
 * capacity, per-stage latency adders and exact busy/stall
 * accounting. Every start time is a max/plus composition of item
 * durations and capacity releases, so completion times are monotone
 * in FIFO depth and DRAM bandwidth and bounded below by the
 * analytic schedule (pinned by tests/sim/test_pipeline_model.cpp).
 */
class GroupSim
{
  public:
    GroupSim(const PipelineConfig &cfg, const DramModel &dram,
             const std::vector<PipeItem> &items)
        : cfg_(cfg), n_(items.size())
    {
        load_.resize(n_);
        occ_.resize(n_);
        denserOcc_.resize(n_);
        sparserOcc_.resize(n_);
        store_.resize(n_);
        loadChunks_.resize(n_);
        storeChunks_.resize(n_);
        loadDone_.assign(n_, false);
        computeDone_.assign(n_, false);
        storeDone_.assign(n_, false);

        size_t max_chunks_in = 1;
        size_t max_chunks_out = 1;
        for (size_t i = 0; i < n_; ++i) {
            const PipeItem &it = items[i];
            load_[i] = itemLoadCycles(it, dram);
            if (it.loadBytes > 0)
                load_[i] += cfg_.fetchLatency;
            loadChunks_[i] =
                ceilDiv(it.loadBytes, cfg_.fifoChunkBytes);
            max_chunks_in = std::max(max_chunks_in, loadChunks_[i]);

            denserOcc_[i] = it.denserCycles > 0
                                ? it.denserCycles + cfg_.denserLatency
                                : 0;
            sparserOcc_[i] =
                it.sparserCycles > 0
                    ? it.sparserCycles + cfg_.sparserLatency
                    : 0;
            occ_[i] = std::max({denserOcc_[i], sparserOcc_[i],
                                it.decodeCycles}) +
                      it.syncCycles;

            store_[i] = itemStoreCycles(it, dram);
            if (it.storeBytes > 0)
                store_[i] += cfg_.writebackLatency;
            storeChunks_[i] =
                ceilDiv(it.storeBytes, cfg_.fifoChunkBytes);
            max_chunks_out =
                std::max(max_chunks_out, storeChunks_[i]);
        }
        // A single item must always fit, else the machine deadlocks;
        // the clamp keeps shallow depths meaningful (they throttle
        // cross-item prefetch) without ever wedging.
        capIn_ = std::max(cfg_.fetchFifoDepth, max_chunks_in);
        capOut_ = std::max(cfg_.writebackFifoDepth, max_chunks_out);
    }

    PipelineStats
    run()
    {
        PipelineStats ps;
        ps.items = n_;
        if (n_ == 0)
            return ps;
        tryFetch();
        tryCompute();
        const Tick total = eq_.runUntilEmpty();
        for (size_t i = 0; i < n_; ++i)
            VITCOD_ASSERT(storeDone_[i],
                          "pipeline deadlock: item ", i,
                          " never retired");

        ps.totalCycles = total;
        ps.fetch = fetch_;
        ps.denser = denser_;
        ps.sparser = sparser_;
        ps.writeback = writeback_;
        ps.fetchFifoHighWater = highIn_;
        ps.writebackFifoHighWater = highOut_;
        ps.events = eq_.processedCount();
        for (StageCounters *c :
             {&ps.fetch, &ps.denser, &ps.sparser, &ps.writeback}) {
            VITCOD_ASSERT(c->busy + c->stall <= total,
                          "pipeline stage over-accounted: busy ",
                          c->busy, " + stall ", c->stall, " > total ",
                          total);
            c->idle = total - c->busy - c->stall;
        }
        return ps;
    }

  private:
    // ---- Fetch: the shared DRAM read port, in order, one item at a
    // time. Gate: the structural two-bank window (item i waits for
    // compute i-2) and FIFO space for the whole item.
    void
    tryFetch()
    {
        bool kicked = false;
        while (!fetchBusy_ && nextFetch_ < n_) {
            const size_t i = nextFetch_;
            if (i >= 2 && !computeDone_[i - 2])
                break; // both operand banks still claimed
            if (loadChunks_[i] == 0) {
                // Nothing to stream: passes the port instantly.
                loadDone_[i] = true;
                ++nextFetch_;
                kicked = true;
                continue;
            }
            if (inUse_ + loadChunks_[i] > capIn_)
                break; // FIFO backpressure
            const Tick now = eq_.curTick();
            fetch_.stall += now - fetchFree_;
            inUse_ += loadChunks_[i];
            highIn_ = std::max(highIn_, inUse_);
            fetchBusy_ = true;
            ++nextFetch_;
            eq_.scheduleAfter(load_[i], [this, i] {
                fetchBusy_ = false;
                fetch_.busy += load_[i];
                fetchFree_ = eq_.curTick();
                loadDone_[i] = true;
                tryFetch();
                tryCompute();
            });
        }
        if (kicked)
            tryCompute();
    }

    // ---- Compute: the fork-join PE complex, in order. Gates: all
    // operands resident, the result bank of item i-2 drained.
    void
    tryCompute()
    {
        if (computeBusy_ || nextCompute_ >= n_)
            return;
        const size_t i = nextCompute_;
        if (!loadDone_[i])
            return; // starved by fetch
        if (i >= 2 && !storeDone_[i - 2])
            return; // both result banks still claimed
        const Tick now = eq_.curTick();
        denser_.stall += now - peFree_;
        sparser_.stall += now - peFree_;
        // Lane accounting over the occupancy window: each lane is
        // busy for its own cycles and join-stalled for the rest;
        // lanes with no work in this item idle through it.
        if (denserOcc_[i] > 0) {
            denser_.busy += denserOcc_[i];
            denser_.stall += occ_[i] - denserOcc_[i];
        }
        if (sparserOcc_[i] > 0) {
            sparser_.busy += sparserOcc_[i];
            sparser_.stall += occ_[i] - sparserOcc_[i];
        }
        computeBusy_ = true;
        ++nextCompute_;
        eq_.scheduleAfter(occ_[i], [this, i] {
            rawEnd_ = eq_.curTick();
            tryRelease(i);
        });
    }

    /** Raw compute end of item @p i: hand the result over to the
     *  writeback FIFO; the PE is held until it fits. */
    void
    tryRelease(size_t i)
    {
        if (storeChunks_[i] > 0) {
            if (outUse_ + storeChunks_[i] > capOut_) {
                pendingRelease_ = i; // output-blocked: PE held
                return;
            }
            outUse_ += storeChunks_[i];
            highOut_ = std::max(highOut_, outUse_);
            wbQueue_.push_back(i);
        }
        const Tick now = eq_.curTick();
        denser_.stall += now - rawEnd_;
        sparser_.stall += now - rawEnd_;
        computeBusy_ = false;
        computeDone_[i] = true;
        peFree_ = now;
        inUse_ -= loadChunks_[i]; // operand bank freed
        if (storeChunks_[i] == 0)
            storeDone_[i] = true;
        else
            tryWriteback();
        tryFetch();
        tryCompute();
    }

    // ---- Writeback: the DRAM write port, draining the result FIFO
    // in order.
    void
    tryWriteback()
    {
        if (wbBusy_ || wbQueue_.empty())
            return;
        const size_t i = wbQueue_.front();
        wbQueue_.pop_front();
        wbBusy_ = true;
        eq_.scheduleAfter(store_[i], [this, i] {
            wbBusy_ = false;
            writeback_.busy += store_[i];
            outUse_ -= storeChunks_[i];
            storeDone_[i] = true;
            if (pendingRelease_) {
                const size_t p = *pendingRelease_;
                pendingRelease_.reset();
                tryRelease(p);
            }
            tryCompute();
            tryWriteback();
        });
    }

    const PipelineConfig &cfg_;
    const size_t n_;
    EventQueue eq_;

    std::vector<Cycles> load_, occ_, denserOcc_, sparserOcc_, store_;
    std::vector<size_t> loadChunks_, storeChunks_;
    std::vector<char> loadDone_, computeDone_, storeDone_;

    size_t capIn_ = 0, capOut_ = 0;
    size_t inUse_ = 0, outUse_ = 0;
    size_t highIn_ = 0, highOut_ = 0;

    size_t nextFetch_ = 0, nextCompute_ = 0;
    bool fetchBusy_ = false, computeBusy_ = false, wbBusy_ = false;
    Tick fetchFree_ = 0, peFree_ = 0, rawEnd_ = 0;
    std::optional<size_t> pendingRelease_;
    std::deque<size_t> wbQueue_;

    StageCounters fetch_, denser_, sparser_, writeback_;
};

} // namespace

PipelineStats
PipelineModel::run(const std::vector<PipeItem> &items) const
{
    GroupSim sim(cfg_, dram_, items);
    return sim.run();
}

} // namespace vitcod::sim
