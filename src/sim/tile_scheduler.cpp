#include "tile_scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace vitcod::sim {

Cycles
doubleBufferedCycles(const std::vector<TileCost> &tiles)
{
    if (tiles.empty())
        return 0;
    const size_t n = tiles.size();
    // Recurrence with two load buffers and two store buffers:
    //   loadStart(i)    = max(loadEnd(i-1), computeEnd(i-2))
    //   computeStart(i) = max(computeEnd(i-1), loadEnd(i),
    //                         storeEnd(i-2))
    //   storeStart(i)   = max(storeEnd(i-1), computeEnd(i))
    std::vector<Tick> load_end(n), compute_end(n), store_end(n);
    for (size_t i = 0; i < n; ++i) {
        Tick load_start = i ? load_end[i - 1] : 0;
        if (i >= 2)
            load_start = std::max(load_start, compute_end[i - 2]);
        load_end[i] = load_start + tiles[i].load;

        Tick compute_start =
            std::max(i ? compute_end[i - 1] : 0, load_end[i]);
        if (i >= 2)
            compute_start = std::max(compute_start, store_end[i - 2]);
        compute_end[i] = compute_start + tiles[i].compute;

        const Tick store_start =
            std::max(i ? store_end[i - 1] : 0, compute_end[i]);
        store_end[i] = store_start + tiles[i].store;
    }
    return store_end[n - 1];
}

namespace {

/** Event-driven executor of the same three-unit pipeline. */
class PipelineSim
{
  public:
    explicit PipelineSim(const std::vector<TileCost> &tiles)
        : tiles_(tiles), n_(tiles.size()), loadDone_(n_, false),
          computeDone_(n_, false), storeDone_(n_, false)
    {}

    Cycles
    run()
    {
        if (n_ == 0)
            return 0;
        tryLoad();
        return eq_.runUntilEmpty();
    }

  private:
    void
    tryLoad()
    {
        if (loadBusy_ || nextLoad_ >= n_)
            return;
        const size_t i = nextLoad_;
        if (i >= 2 && !computeDone_[i - 2])
            return; // both load buffers still claimed
        loadBusy_ = true;
        ++nextLoad_;
        eq_.scheduleAfter(tiles_[i].load, [this, i] {
            loadBusy_ = false;
            loadDone_[i] = true;
            tryLoad();
            tryCompute();
        });
    }

    void
    tryCompute()
    {
        if (computeBusy_ || nextCompute_ >= n_)
            return;
        const size_t i = nextCompute_;
        if (!loadDone_[i])
            return;
        if (i >= 2 && !storeDone_[i - 2])
            return; // both output buffers still claimed
        computeBusy_ = true;
        ++nextCompute_;
        eq_.scheduleAfter(tiles_[i].compute, [this, i] {
            computeBusy_ = false;
            computeDone_[i] = true;
            tryLoad();
            tryCompute();
            tryStore();
        });
    }

    void
    tryStore()
    {
        if (storeBusy_ || nextStore_ >= n_)
            return;
        const size_t i = nextStore_;
        if (!computeDone_[i])
            return;
        storeBusy_ = true;
        ++nextStore_;
        eq_.scheduleAfter(tiles_[i].store, [this, i] {
            storeBusy_ = false;
            storeDone_[i] = true;
            tryCompute();
            tryStore();
        });
    }

    EventQueue eq_;
    const std::vector<TileCost> &tiles_;
    const size_t n_;
    std::vector<char> loadDone_, computeDone_, storeDone_;
    size_t nextLoad_ = 0, nextCompute_ = 0, nextStore_ = 0;
    bool loadBusy_ = false, computeBusy_ = false, storeBusy_ = false;
};

} // namespace

Cycles
doubleBufferedCyclesEventDriven(const std::vector<TileCost> &tiles)
{
    PipelineSim sim(tiles);
    return sim.run();
}

Cycles
serialCycles(const std::vector<TileCost> &tiles)
{
    Cycles total = 0;
    for (const auto &t : tiles)
        total += t.load + t.compute + t.store;
    return total;
}

} // namespace vitcod::sim
