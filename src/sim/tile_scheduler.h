/**
 * @file
 * Double-buffered tile schedule math. Engines process a stream of
 * tiles, each with a load phase (DRAM -> SRAM), a compute phase and
 * a store phase (SRAM -> DRAM). With double buffering, tile i+1's
 * load overlaps tile i's compute and tile i-1's store drains behind
 * both; steady-state cost per tile is the max of the three. Both an
 * analytic evaluation and an event-queue simulation are provided;
 * tests assert they agree, which keeps the cheaper analytic form
 * honest.
 */

#ifndef VITCOD_SIM_TILE_SCHEDULER_H
#define VITCOD_SIM_TILE_SCHEDULER_H

#include <vector>

#include "common/units.h"
#include "sim/event_queue.h"

namespace vitcod::sim {

/** Phase costs of one tile, in cycles. */
struct TileCost
{
    Cycles load = 0;
    Cycles compute = 0;
    Cycles store = 0;
};

/**
 * Total cycles of a double-buffered schedule, analytic form:
 * load(0) fills the pipe, then each step advances by
 * max(compute(i), load(i+1), store(i-1)); the final store drains.
 * Single-phase degenerate cases fall out naturally.
 */
Cycles doubleBufferedCycles(const std::vector<TileCost> &tiles);

/**
 * The same schedule executed on the event queue with three
 * resources (load unit, compute unit, store unit) and dependencies
 * load(i) -> compute(i) -> store(i); double buffering allows
 * load(i+1) to start as soon as the load unit frees.
 */
Cycles doubleBufferedCyclesEventDriven(const std::vector<TileCost> &tiles);

/** Serial (no-overlap) total, for the ablation of double buffering. */
Cycles serialCycles(const std::vector<TileCost> &tiles);

} // namespace vitcod::sim

#endif // VITCOD_SIM_TILE_SCHEDULER_H
