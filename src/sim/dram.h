/**
 * @file
 * Off-chip memory model. The paper's accelerator attaches DDR4-2400
 * (multiple banks behind one controller) delivering 76.8 GB/s to a
 * 500 MHz core — 153.6 bytes per core cycle. Transfers are
 * burst-quantized; scattered (gather-style) accesses pay for whole
 * bursts per touched grain, which is exactly why ViTs' diagonal
 * sparse patterns are traffic-bound (paper Fig. 3) and why the AE
 * compression pays off.
 */

#ifndef VITCOD_SIM_DRAM_H
#define VITCOD_SIM_DRAM_H

#include "common/units.h"

namespace vitcod::sim {

/** DRAM channel parameters. */
struct DramConfig
{
    double bandwidthGBps = 76.8; //!< sustained sequential bandwidth
    double coreFreqGhz = 0.5;    //!< consumer clock for cycle math
    Bytes burstBytes = 64;       //!< minimum transfer granule
    Cycles firstWordLatency = 40; //!< pipeline-fill latency (cycles)
    double randomPenalty = 1.6;  //!< derating for scattered bursts
};

/**
 * Analytic DRAM channel with traffic accounting. Latency helpers
 * are pure; record* methods accumulate the byte counters used by
 * the energy model and the Fig. 19 breakdowns.
 */
class DramModel
{
  public:
    explicit DramModel(DramConfig cfg = {});

    const DramConfig &config() const { return cfg_; }

    /** Sustained bytes per core cycle. */
    double bytesPerCycle() const;

    /**
     * Cycles to stream @p bytes sequentially (burst-quantized,
     * excluding the first-word latency, which pipelined transfers
     * hide).
     */
    Cycles streamCycles(Bytes bytes) const;

    /**
     * Cycles to gather @p count scattered grains of @p grain_bytes
     * each: every grain is rounded up to whole bursts and pays the
     * random-access derating.
     */
    Cycles gatherCycles(uint64_t count, Bytes grain_bytes) const;

    /** Account @p bytes of read traffic. */
    void recordRead(Bytes bytes) { readBytes_ += bytes; }

    /** Account @p bytes of write traffic. */
    void recordWrite(Bytes bytes) { writeBytes_ += bytes; }

    Bytes readBytes() const { return readBytes_; }
    Bytes writeBytes() const { return writeBytes_; }
    Bytes totalBytes() const { return readBytes_ + writeBytes_; }

    /** Clear the traffic counters. */
    void resetStats();

  private:
    DramConfig cfg_;
    Bytes readBytes_ = 0;
    Bytes writeBytes_ = 0;
};

} // namespace vitcod::sim

#endif // VITCOD_SIM_DRAM_H
