/**
 * @file
 * Minimal gem5-style discrete-event kernel. Events are closures
 * scheduled at absolute ticks; ties break by priority, then by
 * insertion order (deterministic). The accelerator models use this
 * to coordinate engine hand-offs and to cross-check the analytic
 * double-buffering schedule (see tile_scheduler.h). The serving
 * runtime additionally keeps one EventQueue per worker as that
 * backend's virtual device clock: each executed batch advances it
 * by the batch's simulated duration, separating simulated-time
 * accounting from the wall-clock timestamps the scheduler uses
 * (see serve/worker_pool.h).
 */

#ifndef VITCOD_SIM_EVENT_QUEUE_H
#define VITCOD_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace vitcod::sim {

/** Simulation time in core clock cycles. */
using Tick = uint64_t;

/** Discrete-event queue with deterministic ordering. */
class EventQueue
{
  public:
    /**
     * Schedule @p fn at absolute tick @p when.
     * @pre when >= curTick() — the past is immutable.
     * @param priority Lower runs first among same-tick events.
     */
    void schedule(Tick when, std::function<void()> fn,
                  int priority = 0);

    /** Schedule @p fn @p delta ticks after now. */
    void scheduleAfter(Tick delta, std::function<void()> fn,
                       int priority = 0);

    /** Current simulation time. */
    Tick curTick() const { return curTick_; }

    /** Any events pending? */
    bool empty() const { return heap_.empty(); }

    /** Pending event count. */
    size_t pending() const { return heap_.size(); }

    /**
     * Process the next event (advancing time to it).
     * @return false when the queue was empty.
     */
    bool step();

    /** Run until no events remain; returns the final tick. */
    Tick runUntilEmpty();

    /**
     * Run events up to and including tick @p limit; time advances to
     * @p limit even if the queue drains earlier.
     */
    void runUntil(Tick limit);

    /** Total events processed since construction. */
    uint64_t processedCount() const { return processed_; }

  private:
    struct Item
    {
        Tick when;
        int priority;
        uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, Later> heap_;
    Tick curTick_ = 0;
    uint64_t seq_ = 0;
    uint64_t processed_ = 0;
};

} // namespace vitcod::sim

#endif // VITCOD_SIM_EVENT_QUEUE_H
