/**
 * @file
 * Event-driven pipelined accelerator model (ROADMAP item 4). Where
 * the analytic simulator prices a layer with the closed-form
 * double-buffering recurrence (tile_scheduler.h), this model plays
 * the same work items through an explicit four-stage machine driven
 * by the EventQueue:
 *
 *     fetch ──> [ denser PE ∥ sparser PE ∥ AE decode ] ──> writeback
 *
 * - The *fetch* stage is the DRAM read port shared by both engines:
 *   one in-order port streams every item's operands (bytes-per-cycle
 *   from DramModel, gathers priced exactly like the analytic path)
 *   into an inter-stage FIFO of fetchFifoDepth chunks of
 *   fifoChunkBytes each. An item's chunks stay resident until its
 *   compute releases them, so a shallow FIFO throttles prefetch of
 *   the next item (backpressure), on top of the structural
 *   double-buffer gate (fetch of item i waits for compute of item
 *   i-2, exactly like the analytic recurrence's two load banks).
 * - The *compute* stage forks the item across the denser engine, the
 *   sparser engine and the AE decoder; the lanes join (the slowest
 *   bounds the item, matching the analytic max()) and a serial sync
 *   tail (reconfiguration) follows. Per-lane latency adders model
 *   pipeline fill.
 * - The *writeback* stage mirrors fetch on the DRAM write port:
 *   results enter a writebackFifoDepth-chunk FIFO; when the FIFO
 *   cannot take an item's result the PE is held (output-blocking
 *   stall) until earlier writes drain.
 *
 * With deep FIFOs and zero latency adders the machine reduces — by
 * construction, pinned by the differential suite in
 * tests/sim/test_pipeline_model.cpp — to doubleBufferedCycles()
 * over analyticTile() costs, so pipelined and analytic cycle counts
 * agree exactly whenever stalls cannot occur; constrained configs
 * add stalls monotonically (deeper FIFOs / more bandwidth never
 * increase cycles, analytic <= pipelined always). Semantics and
 * validation methodology are documented in docs/SIMULATOR.md.
 */

#ifndef VITCOD_SIM_PIPELINE_MODEL_H
#define VITCOD_SIM_PIPELINE_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/dram.h"
#include "sim/tile_scheduler.h"

namespace vitcod::sim {

/** Which simulator prices a schedule. */
enum class SimMode
{
    Analytic,  //!< closed-form double-buffering recurrence
    Pipelined, //!< event-driven stage graph with backpressure
};

/** Display name of @p mode ("analytic" / "pipelined"). */
const char *simModeName(SimMode mode);

/** Knobs of the pipelined machine (defaults match the analytic
 *  model: deep FIFOs, no extra stage latency). */
struct PipelineConfig
{
    /** Input FIFO depth between fetch and the PE arrays, in chunks.
     *  Clamped up to one item's chunk count so a single item always
     *  fits (no structural deadlock). */
    size_t fetchFifoDepth = 64;

    /** Output FIFO depth between the PE arrays and writeback. */
    size_t writebackFifoDepth = 64;

    /** FIFO slot granularity: bytes of operand/result per chunk. */
    Bytes fifoChunkBytes = 4096;

    /** @name Per-stage latency adders (pipeline fill), in cycles.
     *  Charged once per item that exercises the stage.
     *  @{ */
    Cycles fetchLatency = 0;
    Cycles denserLatency = 0;
    Cycles sparserLatency = 0;
    Cycles writebackLatency = 0;
    /** @} */

    bool operator==(const PipelineConfig &) const = default;
};

/**
 * One unit of pipelined work — a phase of a layer (SDDMM, softmax,
 * SpMM, a dense GEMM, ...) with its operand stream, its fork-join
 * engine occupancies and its result stream. Built by the accelerator
 * from a LayerSchedule; the SAME items feed both the analytic tiles
 * (analyticTile()) and the pipelined machine, so the two models
 * cannot drift.
 */
struct PipeItem
{
    Bytes loadBytes = 0;          //!< sequential operand stream
    uint64_t gatherCount = 0;     //!< scattered grains (Q gathers)
    Bytes gatherGrainBytes = 0;   //!< bytes per scattered grain
    Cycles denserCycles = 0;      //!< denser-engine lane occupancy
    Cycles sparserCycles = 0;     //!< sparser-engine lane occupancy
    Cycles decodeCycles = 0;      //!< AE en/decoder lane occupancy
    Cycles syncCycles = 0;        //!< serial tail after the join
    Bytes storeBytes = 0;         //!< result stream

    bool operator==(const PipeItem &) const = default;
};

/** @name Shared analytic pricing of one item
 * The exact costs the analytic model charges; the pipelined machine
 * uses the same quantities, so equality on stall-free configs is
 * structural rather than coincidental.
 * @{ */
/** Read-port cycles: sequential stream plus gathers. */
Cycles itemLoadCycles(const PipeItem &item, const DramModel &dram);
/** Fork-join occupancy: max of the three lanes plus the sync tail. */
Cycles itemComputeCycles(const PipeItem &item);
/** Write-port cycles of the result stream. */
Cycles itemStoreCycles(const PipeItem &item, const DramModel &dram);
/** The item as an analytic double-buffering tile. */
TileCost analyticTile(const PipeItem &item, const DramModel &dram);
/** @} */

/** Exact cycle accounting of one stage: total = busy+stall+idle. */
struct StageCounters
{
    Cycles busy = 0;  //!< transferring / computing
    Cycles stall = 0; //!< blocked: FIFO full, bank gate, starved,
                      //!< join imbalance, output-blocked
    Cycles idle = 0;  //!< no work pending (ramp/drain remainder)

    Cycles total() const { return busy + stall + idle; }

    StageCounters &operator+=(const StageCounters &o);
    bool operator==(const StageCounters &) const = default;
};

/** Result of one pipelined run (or a sum over groups/layers). */
struct PipelineStats
{
    Cycles totalCycles = 0; //!< makespan (summed over groups)

    StageCounters fetch;     //!< DRAM read port
    StageCounters denser;    //!< denser PE lane
    StageCounters sparser;   //!< sparser PE lane
    StageCounters writeback; //!< DRAM write port

    size_t fetchFifoHighWater = 0;     //!< max input chunks resident
    size_t writebackFifoHighWater = 0; //!< max output chunks resident

    uint64_t items = 0;  //!< work items played
    uint64_t events = 0; //!< EventQueue events processed

    /** Total blocked cycles across all stages. */
    Cycles stallCycles() const
    {
        return fetch.stall + denser.stall + sparser.stall +
               writeback.stall;
    }

    /** Aggregate another run: cycles/counters sum, high waters max. */
    PipelineStats &operator+=(const PipelineStats &o);
    bool operator==(const PipelineStats &) const = default;

    /** Multi-line human/golden-readable form (docs/SIMULATOR.md). */
    std::string str() const;
};

/**
 * The pipelined machine. Stateless across runs (const, re-entrant):
 * each run() plays one group of items — a span that drains fully at
 * its boundaries, e.g. one layer's [SDDMM, softmax, SpMM] — on a
 * fresh EventQueue; callers sum group stats with operator+=.
 */
class PipelineModel
{
  public:
    explicit PipelineModel(PipelineConfig cfg = {},
                           DramConfig dram = {});

    const PipelineConfig &config() const { return cfg_; }

    /** Play @p items through the stage graph; returns the exact
     *  per-stage cycle accounting. Deterministic. */
    PipelineStats run(const std::vector<PipeItem> &items) const;

  private:
    PipelineConfig cfg_;
    DramModel dram_;
};

} // namespace vitcod::sim

#endif // VITCOD_SIM_PIPELINE_MODEL_H
