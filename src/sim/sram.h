/**
 * @file
 * On-chip SRAM buffer with capacity checking and access accounting.
 * The ViTCoD accelerator's memory hierarchy (paper Sec. VI-A):
 * 320 KB total — Act GB0/GB1 of 256 KB (128 KB Q/K/S/V-or-input,
 * 20 KB index, 108 KB output) plus a 64 KB Weight GB. Buffers here
 * enforce those budgets: a tile that does not fit is a modeling
 * error and panics, mirroring how the RTL would simply not function.
 */

#ifndef VITCOD_SIM_SRAM_H
#define VITCOD_SIM_SRAM_H

#include <string>

#include "common/units.h"

namespace vitcod::sim {

/** SRAM bank parameters. */
struct SramConfig
{
    std::string name = "sram";
    Bytes capacity = 128 * 1024;
    /** Words movable per port per cycle (bandwidth modeling). */
    Bytes wordBytes = 16;
    size_t readPorts = 1;
    size_t writePorts = 1;
};

/** Capacity-checked, access-counted scratchpad. */
class SramBuffer
{
  public:
    explicit SramBuffer(SramConfig cfg);

    const SramConfig &config() const { return cfg_; }

    /** Would @p bytes more fit right now? */
    bool fits(Bytes bytes) const { return used_ + bytes <= cfg_.capacity; }

    /**
     * Reserve @p bytes; panics on overflow (an overfull tile is a
     * scheduling bug, not a runtime condition).
     */
    void allocate(Bytes bytes);

    /** Release @p bytes. @pre at least that much is allocated. */
    void release(Bytes bytes);

    /** Release everything. */
    void releaseAll() { used_ = 0; }

    Bytes used() const { return used_; }
    Bytes peakUsed() const { return peak_; }
    Bytes capacity() const { return cfg_.capacity; }

    /** Account a read of @p bytes (energy/bandwidth statistics). */
    void recordRead(Bytes bytes) { readBytes_ += bytes; }

    /** Account a write of @p bytes. */
    void recordWrite(Bytes bytes) { writeBytes_ += bytes; }

    Bytes readBytes() const { return readBytes_; }
    Bytes writeBytes() const { return writeBytes_; }

    /** Cycles to move @p bytes through the read ports. */
    Cycles readCycles(Bytes bytes) const;

    /** Cycles to move @p bytes through the write ports. */
    Cycles writeCycles(Bytes bytes) const;

    /** Clear traffic counters and peak tracking (keeps allocation). */
    void resetStats();

  private:
    SramConfig cfg_;
    Bytes used_ = 0;
    Bytes peak_ = 0;
    Bytes readBytes_ = 0;
    Bytes writeBytes_ = 0;
};

} // namespace vitcod::sim

#endif // VITCOD_SIM_SRAM_H
