#include "event_queue.h"

#include "common/logging.h"

namespace vitcod::sim {

void
EventQueue::schedule(Tick when, std::function<void()> fn, int priority)
{
    VITCOD_ASSERT(when >= curTick_, "scheduling into the past: ", when,
                  " < ", curTick_);
    heap_.push({when, priority, seq_++, std::move(fn)});
}

void
EventQueue::scheduleAfter(Tick delta, std::function<void()> fn,
                          int priority)
{
    schedule(curTick_ + delta, std::move(fn), priority);
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // Copy out before pop: the handler may schedule new events.
    Item item = heap_.top();
    heap_.pop();
    curTick_ = item.when;
    ++processed_;
    item.fn();
    return true;
}

Tick
EventQueue::runUntilEmpty()
{
    while (step()) {
    }
    return curTick_;
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        step();
    if (curTick_ < limit)
        curTick_ = limit;
}

} // namespace vitcod::sim
