#include "sram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vitcod::sim {

SramBuffer::SramBuffer(SramConfig cfg) : cfg_(std::move(cfg))
{
    VITCOD_ASSERT(cfg_.capacity > 0, "SRAM needs capacity: ", cfg_.name);
    VITCOD_ASSERT(cfg_.wordBytes > 0 && cfg_.readPorts > 0 &&
                      cfg_.writePorts > 0,
                  "bad SRAM port config: ", cfg_.name);
}

void
SramBuffer::allocate(Bytes bytes)
{
    VITCOD_ASSERT(fits(bytes), cfg_.name, ": allocation overflow (",
                  used_, " + ", bytes, " > ", cfg_.capacity, ")");
    used_ += bytes;
    peak_ = std::max(peak_, used_);
}

void
SramBuffer::release(Bytes bytes)
{
    VITCOD_ASSERT(bytes <= used_, cfg_.name,
                  ": releasing more than allocated");
    used_ -= bytes;
}

Cycles
SramBuffer::readCycles(Bytes bytes) const
{
    const double per_cycle =
        static_cast<double>(cfg_.wordBytes * cfg_.readPorts);
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(bytes) / per_cycle));
}

Cycles
SramBuffer::writeCycles(Bytes bytes) const
{
    const double per_cycle =
        static_cast<double>(cfg_.wordBytes * cfg_.writePorts);
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(bytes) / per_cycle));
}

void
SramBuffer::resetStats()
{
    readBytes_ = 0;
    writeBytes_ = 0;
    peak_ = used_;
}

} // namespace vitcod::sim
