/**
 * @file
 * MAC-line array model. The ViTCoD accelerator has 64 MAC lines of 8
 * MACs each (512 MACs total, paper Sec. VI-A); lines are the unit of
 * allocation between the denser and sparser engines and reconfigure
 * between inter-PE accumulation (K-stationary SDDMM) and intra-PE
 * accumulation (output-stationary SpMM), paper Fig. 12.
 */

#ifndef VITCOD_SIM_MAC_ARRAY_H
#define VITCOD_SIM_MAC_ARRAY_H

#include <cstddef>

#include "common/units.h"

namespace vitcod::sim {

/** Accumulation mode a MAC line is configured for. */
enum class AccumMode
{
    InterPe, //!< partial sums ripple across MACs (K-stationary QK^T)
    IntraPe, //!< each MAC owns an output (output-stationary S.V)
};

/** Array shape. */
struct MacArrayConfig
{
    size_t macLines = 64;
    size_t macsPerLine = 8;

    size_t totalMacs() const { return macLines * macsPerLine; }
};

/** Utilization-tracking MAC array. */
class MacArray
{
  public:
    explicit MacArray(MacArrayConfig cfg = {});

    const MacArrayConfig &config() const { return cfg_; }

    /**
     * Cycles to execute @p ops MACs on @p lines lines, assuming the
     * mapping keeps every used MAC busy each cycle except for
     * quantization remainder. @pre 0 < lines <= macLines.
     */
    Cycles cyclesFor(MacOps ops, size_t lines) const;

    /**
     * Account @p useful_ops executed over @p elapsed cycles on
     * @p lines lines; feeds utilization statistics.
     */
    void recordWork(MacOps useful_ops, Cycles elapsed, size_t lines);

    /** Account a reconfiguration between accumulation modes. */
    void recordModeSwitch() { ++modeSwitches_; }

    MacOps usefulOps() const { return usefulOps_; }
    Cycles busyCycles() const { return busyCycles_; }
    uint64_t modeSwitches() const { return modeSwitches_; }

    /**
     * Useful MACs divided by available MAC-cycles over the recorded
     * busy time (1.0 = perfectly dense schedule).
     */
    double utilization() const;

    /** Clear statistics. */
    void resetStats();

  private:
    MacArrayConfig cfg_;
    MacOps usefulOps_ = 0;
    /** Sum over records of elapsed * lines * macsPerLine. */
    double offeredMacCycles_ = 0.0;
    Cycles busyCycles_ = 0;
    uint64_t modeSwitches_ = 0;
};

} // namespace vitcod::sim

#endif // VITCOD_SIM_MAC_ARRAY_H
