#include "dram.h"

#include <cmath>

#include "common/logging.h"

namespace vitcod::sim {

DramModel::DramModel(DramConfig cfg) : cfg_(cfg)
{
    VITCOD_ASSERT(cfg_.bandwidthGBps > 0 && cfg_.coreFreqGhz > 0,
                  "bad DRAM config");
    VITCOD_ASSERT(cfg_.burstBytes > 0, "burst size must be positive");
}

double
DramModel::bytesPerCycle() const
{
    return cfg_.bandwidthGBps / cfg_.coreFreqGhz;
}

Cycles
DramModel::streamCycles(Bytes bytes) const
{
    if (bytes == 0)
        return 0;
    const Bytes quantized = roundUp(bytes, cfg_.burstBytes);
    const double cycles =
        static_cast<double>(quantized) / bytesPerCycle();
    return static_cast<Cycles>(std::ceil(cycles));
}

Cycles
DramModel::gatherCycles(uint64_t count, Bytes grain_bytes) const
{
    if (count == 0 || grain_bytes == 0)
        return 0;
    const Bytes per_grain = roundUp(grain_bytes, cfg_.burstBytes);
    const double cycles = static_cast<double>(per_grain * count) *
                          cfg_.randomPenalty / bytesPerCycle();
    return static_cast<Cycles>(std::ceil(cycles)) +
           cfg_.firstWordLatency;
}

void
DramModel::resetStats()
{
    readBytes_ = 0;
    writeBytes_ = 0;
}

} // namespace vitcod::sim
