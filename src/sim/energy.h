/**
 * @file
 * Per-action energy model (substitution S4 in DESIGN.md). The paper
 * derives MAC and memory-access costs from post-layout simulation of
 * a 28 nm design (total power 323.9 mW at 500 MHz); we use published
 * 28/45 nm-class per-action energies with the same structure:
 * E = macs*e_mac + sram_bytes*e_sram + dram_bytes*e_dram +
 * leakage*time. Absolute joules are not expected to match the
 * authors' silicon; ratios between accelerators running on the same
 * model are the meaningful output.
 */

#ifndef VITCOD_SIM_ENERGY_H
#define VITCOD_SIM_ENERGY_H

#include "common/units.h"

namespace vitcod::sim {

/** Energy constants (picojoules). */
struct EnergyConfig
{
    double macPj = 0.6;           //!< one 16-bit-class MAC
    double sramReadPjPerByte = 0.9;
    double sramWritePjPerByte = 1.1;
    double dramPjPerByte = 60.0;  //!< DDR4 access + I/O
    double leakageWattsCore = 0.06; //!< static power of the core
    double coreFreqGhz = 0.5;
};

/** Decomposed energy of one run. */
struct EnergyBreakdown
{
    PicoJoules macPj = 0.0;
    PicoJoules sramPj = 0.0;
    PicoJoules dramPj = 0.0;
    PicoJoules staticPj = 0.0;

    PicoJoules
    totalPj() const
    {
        return macPj + sramPj + dramPj + staticPj;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);
};

/** Computes energy from activity counters. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyConfig cfg = {});

    const EnergyConfig &config() const { return cfg_; }

    /** Energy of a run described by its activity counters. */
    EnergyBreakdown compute(MacOps macs, Bytes sram_read,
                            Bytes sram_write, Bytes dram_bytes,
                            Cycles cycles) const;

  private:
    EnergyConfig cfg_;
};

} // namespace vitcod::sim

#endif // VITCOD_SIM_ENERGY_H
