#include "energy.h"

namespace vitcod::sim {

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    macPj += o.macPj;
    sramPj += o.sramPj;
    dramPj += o.dramPj;
    staticPj += o.staticPj;
    return *this;
}

EnergyModel::EnergyModel(EnergyConfig cfg) : cfg_(cfg) {}

EnergyBreakdown
EnergyModel::compute(MacOps macs, Bytes sram_read, Bytes sram_write,
                     Bytes dram_bytes, Cycles cycles) const
{
    EnergyBreakdown e;
    e.macPj = static_cast<double>(macs) * cfg_.macPj;
    e.sramPj = static_cast<double>(sram_read) * cfg_.sramReadPjPerByte +
               static_cast<double>(sram_write) * cfg_.sramWritePjPerByte;
    e.dramPj = static_cast<double>(dram_bytes) * cfg_.dramPjPerByte;
    // leakage (W) * time (s) -> J; expressed in pJ.
    const double seconds =
        cyclesToSeconds(cycles, cfg_.coreFreqGhz);
    e.staticPj = cfg_.leakageWattsCore * seconds * 1e12;
    return e;
}

} // namespace vitcod::sim
