#include "spatten.h"

#include <cmath>
#include <vector>

#include "accel/dense_phases.h"
#include "common/logging.h"
#include "model/flops.h"
#include "sim/tile_scheduler.h"

namespace vitcod::accel {

SpAttenAccelerator::SpAttenAccelerator(SpAttenConfig cfg)
    : cfg_(std::move(cfg))
{
    VITCOD_ASSERT(cfg_.tokenKeepFinal > 0 && cfg_.tokenKeepFinal <= 1.0,
                  "bad token keep ratio");
    VITCOD_ASSERT(cfg_.headKeepFinal > 0 && cfg_.headKeepFinal <= 1.0,
                  "bad head keep ratio");
}

double
SpAttenAccelerator::tokenKeepAt(size_t l, size_t layers) const
{
    if (layers <= 1)
        return cfg_.tokenKeepFinal;
    const double t =
        static_cast<double>(l) / static_cast<double>(layers - 1);
    return 1.0 - (1.0 - cfg_.tokenKeepFinal) * t;
}

double
SpAttenAccelerator::headKeepAt(size_t l, size_t layers) const
{
    if (layers <= 1)
        return cfg_.headKeepFinal;
    const double t =
        static_cast<double>(l) / static_cast<double>(layers - 1);
    return 1.0 - (1.0 - cfg_.headKeepFinal) * t;
}

RunStats
SpAttenAccelerator::run(const core::ModelPlan &plan,
                        bool end_to_end) const
{
    const auto shapes = model::attentionShapes(plan.model);
    const size_t layers = shapes.size();
    const size_t total_macs = cfg_.macArray.totalMacs();
    const auto eb = static_cast<double>(cfg_.elemBytes);
    const sim::DramModel dram(cfg_.dram);

    RunStats rs;
    rs.device = name();
    rs.model = plan.model.name;

    Cycles total = 0;
    Cycles compute = 0;
    Cycles preprocess = 0;
    MacOps macs = 0;

    for (size_t l = 0; l < layers; ++l) {
        const auto &s = shapes[l];
        const double keep_t = tokenKeepAt(l, layers);
        const double keep_h = headKeepAt(l, layers);
        const double n = static_cast<double>(s.tokens) * keep_t;
        const double h = static_cast<double>(s.heads) * keep_h;
        const double dk = static_cast<double>(s.headDim);

        // Dense attention on survivors: Q.K^T then S.V, row-
        // stationary with streaming softmax (S never stored).
        const double qk_macs = n * n * dk * h;
        const double sv_macs = n * n * dk * h;
        auto arr_cycles = [&](double m) -> Cycles {
            return static_cast<Cycles>(std::ceil(
                static_cast<double>(ceilDiv(static_cast<MacOps>(m),
                                            total_macs)) /
                cfg_.denseEff));
        };
        const Cycles attn_compute =
            arr_cycles(qk_macs) + arr_cycles(sv_macs);
        const Cycles softmax = static_cast<Cycles>(
            2.0 * n * n * h /
            static_cast<double>(cfg_.softmaxLanes));

        // Top-k token-importance ranking (the cascade decision).
        const Cycles topk = static_cast<Cycles>(
            n * static_cast<double>(cfg_.topkCyclesPerToken));

        // Traffic: quantized Q/K/V of survivors in, V' out.
        const double qkv_bytes =
            3.0 * n * h * dk * eb * cfg_.quantTrafficFactor;
        const double out_bytes = n * h * dk * eb;
        const Cycles load =
            dram.streamCycles(static_cast<Bytes>(qkv_bytes));
        const Cycles store =
            dram.streamCycles(static_cast<Bytes>(out_bytes));

        const std::vector<sim::TileCost> tiles = {
            {load, attn_compute + softmax, store},
        };
        const Cycles layer_total =
            sim::doubleBufferedCycles(tiles) + topk;

        total += layer_total;
        compute += attn_compute + softmax;
        preprocess += topk;
        macs += static_cast<MacOps>(qk_macs + sv_macs);
        rs.dramRead += static_cast<Bytes>(qkv_bytes);
        rs.dramWrite += static_cast<Bytes>(out_bytes);

        if (end_to_end) {
            DensePhaseParams p;
            p.totalMacs = total_macs;
            p.gemmEff = 0.9;
            p.elemBytes = cfg_.elemBytes;
            p.elwiseLanes = cfg_.softmaxLanes;
            p.tokenKeep = keep_t; // pruned tokens skip MLP too
            const DensePhaseStats d = simulateDenseBlock(
                s, mlpRatioOfLayer(plan.model, l), dram, p);
            total += d.total;
            compute += d.compute;
            macs += d.macs;
            rs.dramRead += d.dramRead;
            rs.dramWrite += d.dramWrite;
        }
    }

    if (end_to_end && plan.model.stemFlops > 0.0) {
        const auto stem_macs =
            static_cast<MacOps>(plan.model.stemFlops / 2.0);
        const Cycles stem = static_cast<Cycles>(std::ceil(
            static_cast<double>(ceilDiv(stem_macs, total_macs)) /
            0.9));
        total += stem;
        compute += stem;
        macs += stem_macs;
    }

    rs.cycles = total;
    rs.seconds = cyclesToSeconds(total, cfg_.freqGhz);
    rs.computeSeconds = cyclesToSeconds(compute, cfg_.freqGhz);
    rs.preprocessSeconds = cyclesToSeconds(preprocess, cfg_.freqGhz);
    rs.dataMoveSeconds =
        rs.seconds - rs.computeSeconds - rs.preprocessSeconds;
    rs.macs = macs;
    rs.sramRead = static_cast<Bytes>(
        static_cast<double>(macs) * 2.0 * eb / 4.0);
    rs.sramWrite =
        static_cast<Bytes>(static_cast<double>(macs) * eb / 8.0);

    const sim::EnergyModel em(cfg_.energy);
    rs.energy = em.compute(macs, rs.sramRead, rs.sramWrite,
                           rs.dramTotal(), total);
    rs.utilization =
        total ? static_cast<double>(macs) /
                    (static_cast<double>(total) * total_macs)
              : 0.0;
    return rs;
}

RunStats
SpAttenAccelerator::runAttention(const core::ModelPlan &plan) const
{
    return run(plan, /*end_to_end=*/false);
}

RunStats
SpAttenAccelerator::runEndToEnd(const core::ModelPlan &plan) const
{
    return run(plan, /*end_to_end=*/true);
}

} // namespace vitcod::accel
