#include "vitcod_accel.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "model/flops.h"
#include "sim/tile_scheduler.h"

namespace vitcod::accel {

std::vector<size_t>
allocateEngineLines(const std::vector<double> &weights, size_t total)
{
    const size_t k = weights.size();
    std::vector<size_t> lines(k, 0);
    double sum = 0.0;
    for (double w : weights)
        sum += w;
    if (sum <= 0.0 || total == 0)
        return lines;

    // Largest-remainder method with a floor of 1 for non-zero work.
    size_t given = 0;
    std::vector<double> frac(k, 0.0);
    for (size_t i = 0; i < k; ++i) {
        if (weights[i] <= 0.0)
            continue;
        const double exact =
            static_cast<double>(total) * weights[i] / sum;
        lines[i] = std::max<size_t>(1, static_cast<size_t>(exact));
        frac[i] = exact - std::floor(exact);
        given += lines[i];
    }
    // Trim if floors overshot (more busy heads than lines handled by
    // caller via grouping; here we only trim down to total).
    while (given > total) {
        size_t victim = k;
        for (size_t i = 0; i < k; ++i)
            if (lines[i] > 1 && (victim == k || lines[i] > lines[victim]))
                victim = i;
        if (victim == k)
            break; // all at 1 line; caller must group
        --lines[victim];
        --given;
    }
    // Distribute leftovers by largest fractional part.
    while (given < total) {
        size_t best = k;
        for (size_t i = 0; i < k; ++i)
            if (weights[i] > 0.0 && (best == k || frac[i] > frac[best]))
                best = i;
        if (best == k)
            break;
        ++lines[best];
        frac[best] = -1.0;
        ++given;
    }
    return lines;
}

Cycles
sparserHeadCycles(const sparse::Csc &csc, size_t head_dim,
                  size_t lines, size_t macs_per_line,
                  Cycles col_overhead)
{
    VITCOD_ASSERT(lines > 0 && macs_per_line > 0,
                  "sparser engine needs lines");
    Cycles cy = 0;
    for (size_t c = 0; c < csc.cols(); ++c) {
        const size_t nnz_c = csc.colNnz(c);
        if (nnz_c == 0)
            continue;
        const MacOps macs = static_cast<MacOps>(nnz_c) * head_dim;
        cy += ceilDiv(macs, lines * macs_per_line) + col_overhead;
    }
    return cy;
}

Cycles
sparserEngineCycles(
    const std::vector<const core::SparseAttentionPlan *> &heads,
    size_t head_dim, size_t lines, size_t macs_per_line,
    Cycles col_overhead)
{
    if (lines == 0)
        return 0;
    std::vector<double> weights;
    std::vector<const core::SparseAttentionPlan *> active;
    for (const auto *p : heads) {
        if (p->sparserNnz > 0) {
            weights.push_back(static_cast<double>(p->sparserNnz));
            active.push_back(p);
        }
    }
    if (active.empty())
        return 0;

    if (lines >= active.size()) {
        const auto alloc = allocateEngineLines(weights, lines);
        Cycles worst = 0;
        for (size_t i = 0; i < active.size(); ++i) {
            worst = std::max(
                worst,
                sparserHeadCycles(active[i]->sparserCsc, head_dim,
                                  std::max<size_t>(1, alloc[i]),
                                  macs_per_line, col_overhead));
        }
        return worst;
    }
    // More busy heads than lines: LPT-pack heads onto lines.
    std::vector<Cycles> per_head;
    per_head.reserve(active.size());
    for (const auto *p : active)
        per_head.push_back(sparserHeadCycles(p->sparserCsc, head_dim,
                                             1, macs_per_line,
                                             col_overhead));
    std::sort(per_head.rbegin(), per_head.rend());
    std::vector<Cycles> bins(lines, 0);
    for (Cycles c : per_head)
        *std::min_element(bins.begin(), bins.end()) += c;
    return *std::max_element(bins.begin(), bins.end());
}

ViTCoDAccelerator::ViTCoDAccelerator(ViTCoDConfig cfg)
    : cfg_(std::move(cfg))
{
    VITCOD_ASSERT(cfg_.macArray.macLines > cfg_.aeLines,
                  "AE lines must leave MAC lines for the engines");
}

uint64_t
ViTCoDAccelerator::lruQMisses(const sparse::Csc &csc, size_t window_rows)
{
    if (window_rows == 0)
        return csc.nnz();
    // Exact LRU over the column-major nonzero stream. Token counts
    // are a few hundred, so a linear-scan LRU list is fine.
    std::vector<uint32_t> lru; // front = most recent
    lru.reserve(window_rows);
    uint64_t misses = 0;
    for (size_t c = 0; c < csc.cols(); ++c) {
        for (uint32_t i = csc.colPtr()[c]; i < csc.colPtr()[c + 1];
             ++i) {
            const uint32_t row = csc.rowIdx()[i];
            auto it = std::find(lru.begin(), lru.end(), row);
            if (it != lru.end()) {
                lru.erase(it);
            } else {
                ++misses;
                if (lru.size() >= window_rows)
                    lru.pop_back();
            }
            lru.insert(lru.begin(), row);
        }
    }
    return misses;
}

LayerAttentionStats
ViTCoDAccelerator::simulateAttentionLayer(const core::ModelPlan &plan,
                                          size_t layer) const
{
    const auto shapes = model::attentionShapes(plan.model);
    VITCOD_ASSERT(layer < shapes.size(), "layer out of range");
    const auto &shape = shapes[layer];
    const size_t n = shape.tokens;
    const size_t dk = shape.headDim;
    const size_t h = shape.heads;
    const auto eb = static_cast<double>(cfg_.elemBytes);

    // Collect this layer's head plans.
    std::vector<const core::SparseAttentionPlan *> hp;
    for (const auto &head : plan.heads)
        if (head.layer == layer)
            hp.push_back(&head.plan);
    VITCOD_ASSERT(hp.size() == h, "plan missing heads for layer ",
                  layer);

    // AE compression ratio for this layer.
    const bool ae_on = cfg_.enableAeEngines && !plan.ae.empty();
    double ratio = 1.0;
    size_t c_heads = h;
    if (ae_on) {
        VITCOD_ASSERT(layer < plan.ae.size(), "AE summary missing");
        ratio = plan.ae[layer].ratio();
        c_heads = plan.ae[layer].compressed;
    }

    LayerAttentionStats st;

    // ---- Workload split (MACs).
    MacOps denser_sddmm = 0, sparser_sddmm = 0;
    MacOps denser_spmm = 0, sparser_spmm = 0;
    uint64_t s_elems_denser = 0, s_elems_sparser = 0;
    double idx_bytes = 0.0;
    for (const auto *p : hp) {
        const MacOps dense_cols_macs =
            static_cast<MacOps>(n) * p->numGlobalTokens * dk;
        denser_sddmm += dense_cols_macs;
        sparser_sddmm += static_cast<MacOps>(p->sparserNnz) * dk;
        // Denser region is stored/processed densely; sparser via CSC.
        denser_spmm += dense_cols_macs;
        sparser_spmm += static_cast<MacOps>(p->sparserNnz) * dk;
        s_elems_denser += n * p->numGlobalTokens;
        s_elems_sparser += p->sparserNnz;
        if (p->numGlobalTokens < p->tokens)
            idx_bytes += static_cast<double>(
                p->sparserCsc.indexBytes(cfg_.indexBytes));
    }
    st.attentionMacs = denser_sddmm + sparser_sddmm + denser_spmm +
                       sparser_spmm;

    // Decoder workload: every token's Q and K row is recovered from
    // the compressed representation once per layer (decoded-row
    // reuse; re-decodes on re-streamed rows are second-order).
    if (ae_on)
        st.decodeMacs = static_cast<MacOps>(2) * n * dk * h * c_heads;

    // ---- Dynamic MAC-line allocation (paper Sec. V-B1): lines go
    // to the denser and sparser engines proportionally to their
    // statically-known workloads; the decoder runs on its own
    // dedicated lines.
    const size_t lines = cfg_.macArray.macLines;
    const size_t mpl = cfg_.macArray.macsPerLine;
    size_t l_d = 0, l_s = 0;
    {
        const auto alloc = allocateEngineLines(
            {static_cast<double>(denser_sddmm),
             static_cast<double>(sparser_sddmm)},
            lines);
        l_d = alloc[0];
        l_s = alloc[1];
    }
    const size_t l_ae = ae_on ? cfg_.aeLines : 0;
    st.denserLines = l_d;
    st.sparserLines = l_s;

    // ---- Denser-engine SDDMM cycles (dense streaming).
    auto dense_cycles = [&](MacOps macs, size_t use_lines) -> Cycles {
        if (macs == 0 || use_lines == 0)
            return 0;
        const double ideal = static_cast<double>(
            ceilDiv(macs, use_lines * mpl));
        return static_cast<Cycles>(std::ceil(ideal / cfg_.denseEff));
    };

    // ---- Sparser-engine cycles: per-column walk with integer line
    // allocation across heads, grouping heads when lines are scarce
    // (shared with the instruction compiler).
    auto sparser_cycles = [&](bool spmm_phase,
                              size_t use_lines) -> Cycles {
        (void)spmm_phase; // same per-column walk both phases
        return sparserEngineCycles(hp, dk, use_lines, mpl,
                                   cfg_.colOverheadCycles);
    };

    const sim::DramModel dram(cfg_.dram);

    // ---- SDDMM input movement under the K-stationary dataflow
    // (paper Fig. 13): each K vector streams once; Q rows stream
    // once when the head's Q fits on chip, and are *re-streamed per
    // global K column* otherwise — the "most inefficient pattern"
    // the paper's roofline analysis calls out, and exactly what the
    // AE's compression alleviates by doubling residency.
    const double q_row_bytes = dk * eb * ratio;
    const size_t window_rows = std::max<size_t>(
        1, static_cast<size_t>(
               static_cast<double>(cfg_.qkvBufBytes) / 2.0 /
               (static_cast<double>(h) * q_row_bytes)));
    double k_bytes = static_cast<double>(n) * h * dk * eb * ratio;
    double q_bytes = 0.0;
    for (const auto *p : hp) {
        if (p->numGlobalTokens > 0 || p->sparserNnz == 0) {
            // Denser engine, Q-block-tiled schedule: a block of
            // window_rows Q rows stays resident while the (few)
            // global K vectors cycle through the PEs, so Q streams
            // once and K re-streams once per extra Q block. The
            // sparser engine snoops the same Q stream (query-based
            // Q forwarding).
            q_bytes += static_cast<double>(n) * q_row_bytes;
            if (window_rows < n) {
                const auto extra_passes = static_cast<double>(
                    ceilDiv(n, window_rows) - 1);
                k_bytes += static_cast<double>(p->numGlobalTokens) *
                           dk * eb * ratio * extra_passes;
            }
        } else {
            // Pruning-only ablation: no denser stream to snoop; the
            // sparser engine gathers rows through an LRU window.
            const uint64_t misses =
                lruQMisses(p->sparserCsc, window_rows);
            st.qGatherMisses += misses;
            q_bytes += static_cast<double>(misses) * q_row_bytes;
        }
    }
    const auto sddmm_in_bytes =
        static_cast<Bytes>(k_bytes + q_bytes + idx_bytes);
    Cycles sddmm_load = dram.streamCycles(sddmm_in_bytes);
    if (st.qGatherMisses > 0) {
        sddmm_load += dram.gatherCycles(
            st.qGatherMisses,
            static_cast<Bytes>(std::max(1.0, q_row_bytes)));
    }

    // ---- SDDMM compute: the dedicated decoder engine runs in
    // parallel with the attention engines.
    const Cycles decode_cycles =
        (ae_on && l_ae > 0)
            ? ceilDiv(st.decodeMacs,
                      static_cast<MacOps>(
                          static_cast<double>(l_ae * mpl) *
                          cfg_.aeDecodeRate))
            : 0;
    Cycles sddmm_compute;
    if (cfg_.twoPronged) {
        sddmm_compute = std::max({dense_cycles(denser_sddmm, l_d),
                                  sparser_cycles(false, l_s),
                                  decode_cycles});
    } else {
        sddmm_compute =
            std::max(dense_cycles(denser_sddmm, lines) +
                         sparser_cycles(false, lines) +
                         cfg_.reconfigCycles,
                     decode_cycles);
    }
    st.sddmmCompute = sddmm_compute;

    // ---- Softmax over stored scores (dense region + sparser nnz).
    const uint64_t s_elems = s_elems_denser + s_elems_sparser;
    const size_t sm_lanes =
        cfg_.softmaxLanesPerEngine * (cfg_.twoPronged ? 2 : 1);
    st.softmaxCompute = ceilDiv(2 * s_elems, sm_lanes);

    // ---- SpMM: V streams in, V' streams out, S spills if oversized.
    const double s_bytes = static_cast<double>(s_elems) * eb;
    const double spill =
        std::max(0.0, s_bytes - static_cast<double>(cfg_.sBufferBytes));
    const double v_bytes = static_cast<double>(n) * h * dk * eb;
    const double out_bytes = static_cast<double>(n) * h * dk * eb;

    const Cycles spmm_load =
        dram.streamCycles(static_cast<Bytes>(v_bytes + spill));
    const Cycles spmm_store =
        dram.streamCycles(static_cast<Bytes>(out_bytes + spill));

    // Decoder lines return to the engines for SpMM (paper: AE lines
    // "also used to process other denser/sparser workloads when
    // encode/decode are not needed").
    Cycles spmm_compute;
    if (cfg_.twoPronged) {
        const auto alloc = allocateEngineLines(
            {static_cast<double>(denser_spmm),
             static_cast<double>(sparser_spmm)},
            lines);
        spmm_compute =
            std::max(dense_cycles(denser_spmm, alloc[0]),
                     sparser_cycles(true, alloc[1]));
    } else {
        spmm_compute = dense_cycles(denser_spmm, lines) +
                       sparser_cycles(true, lines);
    }
    spmm_compute += cfg_.reconfigCycles; // inter->intra-PE switch
    st.spmmCompute = spmm_compute;

    // ---- Optional on-the-fly mask prediction (NLP mode).
    if (cfg_.dynamicMaskPrediction) {
        const MacOps pred_macs = static_cast<MacOps>(
            static_cast<double>(n) * n * h * dk *
            cfg_.predictionCostFactor);
        st.prediction = dense_cycles(pred_macs, lines) +
                        static_cast<Cycles>(2 * n);
    }

    // ---- Phase overlap within the layer.
    const std::vector<sim::TileCost> tiles = {
        {sddmm_load, st.sddmmCompute, 0},
        {0, st.softmaxCompute, 0},
        {spmm_load, st.spmmCompute, spmm_store},
    };
    st.total = sim::doubleBufferedCycles(tiles) + st.prediction;
    const Cycles compute_sum =
        st.sddmmCompute + st.softmaxCompute + st.spmmCompute +
        st.prediction;
    st.exposedMemory = st.total - compute_sum;

    st.sddmmRead = sddmm_in_bytes;
    st.dramRead = sddmm_in_bytes +
                  static_cast<Bytes>(v_bytes + spill);
    st.dramWrite = static_cast<Bytes>(out_bytes + spill);
    return st;
}

RunStats
ViTCoDAccelerator::finalize(const core::ModelPlan &plan,
                            bool end_to_end) const
{
    const auto shapes = model::attentionShapes(plan.model);
    const size_t mpl = cfg_.macArray.macsPerLine;
    const size_t all_lines = cfg_.macArray.macLines;
    const auto eb = static_cast<double>(cfg_.elemBytes);

    RunStats rs;
    rs.device = name();
    rs.model = plan.model.name;

    Cycles total = 0;
    Cycles compute = 0;
    Cycles preprocess = 0;
    MacOps macs = 0;

    const sim::DramModel dram(cfg_.dram);
    const bool ae_on = cfg_.enableAeEngines && !plan.ae.empty();

    for (size_t l = 0; l < shapes.size(); ++l) {
        const LayerAttentionStats st = simulateAttentionLayer(plan, l);
        total += st.total;
        compute += st.sddmmCompute + st.softmaxCompute +
                   st.spmmCompute;
        preprocess += st.prediction;
        macs += st.attentionMacs + st.decodeMacs;
        rs.dramRead += st.dramRead;
        rs.dramWrite += st.dramWrite;

        if (!end_to_end)
            continue;

        // ---- Dense phases of the block, on the reused MAC array.
        const auto &s = shapes[l];
        const double n = static_cast<double>(s.tokens);
        const double d = static_cast<double>(s.embedDim);
        const double hd =
            static_cast<double>(s.heads) * s.headDim;
        const double hidden = d * 4.0; // overwritten below per stage
        (void)hidden;
        // Find mlpRatio for this layer's stage.
        size_t ratio = 4;
        {
            size_t idx = 0;
            for (const auto &stage : plan.model.stages) {
                if (l < idx + stage.layers) {
                    ratio = stage.mlpRatio;
                    break;
                }
                idx += stage.layers;
            }
        }
        const double mlp_hidden = d * static_cast<double>(ratio);

        auto gemm_cycles = [&](double m) -> Cycles {
            return static_cast<Cycles>(
                std::ceil(static_cast<double>(ceilDiv(
                              static_cast<MacOps>(m),
                              all_lines * mpl)) /
                          cfg_.gemmEff));
        };

        const double ae_ratio =
            ae_on ? plan.ae[l].ratio() : 1.0;
        const double c_heads =
            ae_on ? static_cast<double>(plan.ae[l].compressed) : 0.0;

        // Q/K/V projection (+ encoder overlapped).
        const double proj_macs = n * d * 3.0 * hd;
        const double enc_macs =
            ae_on ? 2.0 * n * s.headDim * s.heads * c_heads : 0.0;
        const Cycles proj_compute = std::max(
            gemm_cycles(proj_macs),
            ae_on ? ceilDiv(static_cast<MacOps>(enc_macs),
                            cfg_.aeLines * mpl)
                  : 0);
        const double proj_in = n * d * eb + 3.0 * d * hd * eb;
        const double proj_out =
            2.0 * n * hd * eb * ae_ratio + n * hd * eb; // Q,K cmp; V
        const Cycles proj_load =
            dram.streamCycles(static_cast<Bytes>(proj_in));
        const Cycles proj_store =
            dram.streamCycles(static_cast<Bytes>(proj_out));

        // Output projection.
        const double op_macs = n * hd * d;
        const double op_bytes = hd * d * eb + n * hd * eb + n * d * eb;

        // MLP (two layers) + GELU.
        const double mlp_macs = 2.0 * n * d * mlp_hidden;
        const double mlp_bytes =
            2.0 * d * mlp_hidden * eb + 2.0 * n * d * eb;

        // LayerNorms: elementwise on the softmax/activation units.
        const Cycles ln_cycles = static_cast<Cycles>(
            2.0 * n * d /
            static_cast<double>(cfg_.softmaxLanesPerEngine * 2));

        const std::vector<sim::TileCost> dense_tiles = {
            {proj_load, proj_compute, proj_store},
            {dram.streamCycles(static_cast<Bytes>(op_bytes)),
             gemm_cycles(op_macs), 0},
            {dram.streamCycles(static_cast<Bytes>(mlp_bytes)),
             gemm_cycles(mlp_macs), 0},
            {0, ln_cycles, 0},
        };
        const Cycles dense_total =
            sim::doubleBufferedCycles(dense_tiles);
        const Cycles dense_compute = proj_compute +
                                     gemm_cycles(op_macs) +
                                     gemm_cycles(mlp_macs) + ln_cycles;
        total += dense_total;
        compute += dense_compute;
        macs += static_cast<MacOps>(proj_macs + enc_macs + op_macs +
                                    mlp_macs);
        rs.dramRead += static_cast<Bytes>(proj_in + op_bytes +
                                          mlp_bytes);
        rs.dramWrite += static_cast<Bytes>(proj_out);
    }

    if (end_to_end && plan.model.stemFlops > 0.0) {
        const auto stem_macs =
            static_cast<MacOps>(plan.model.stemFlops / 2.0);
        const Cycles stem = static_cast<Cycles>(
            std::ceil(static_cast<double>(
                          ceilDiv(stem_macs, all_lines * mpl)) /
                      cfg_.gemmEff));
        total += stem;
        compute += stem;
        macs += stem_macs;
    }

    rs.cycles = total;
    rs.seconds = cyclesToSeconds(total, cfg_.freqGhz);
    rs.computeSeconds = cyclesToSeconds(compute, cfg_.freqGhz);
    rs.preprocessSeconds = cyclesToSeconds(preprocess, cfg_.freqGhz);
    rs.dataMoveSeconds =
        rs.seconds - rs.computeSeconds - rs.preprocessSeconds;
    rs.macs = macs;

    // Coarse SRAM activity: operands enjoy ~4x reuse out of the
    // buffers; results write back once per 8-MAC line.
    rs.sramRead = static_cast<Bytes>(
        static_cast<double>(macs) * 2.0 * eb / 4.0);
    rs.sramWrite = static_cast<Bytes>(
        static_cast<double>(macs) * eb / 8.0);

    const sim::EnergyModel em(cfg_.energy);
    rs.energy = em.compute(macs, rs.sramRead, rs.sramWrite,
                           rs.dramTotal(), total);
    const double offered = static_cast<double>(total) *
                           static_cast<double>(all_lines * mpl);
    rs.utilization =
        offered > 0 ? static_cast<double>(macs) / offered : 0.0;
    return rs;
}

RunStats
ViTCoDAccelerator::runAttention(const core::ModelPlan &plan) const
{
    return finalize(plan, /*end_to_end=*/false);
}

RunStats
ViTCoDAccelerator::runEndToEnd(const core::ModelPlan &plan) const
{
    return finalize(plan, /*end_to_end=*/true);
}

} // namespace vitcod::accel
