#include "vitcod_accel.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "model/flops.h"
#include "sim/tile_scheduler.h"

namespace vitcod::accel {

core::schedule::HardwareParams
scheduleParams(const ViTCoDConfig &cfg)
{
    core::schedule::HardwareParams p;
    p.macLines = cfg.macArray.macLines;
    p.macsPerLine = cfg.macArray.macsPerLine;
    p.elemBytes = cfg.elemBytes;
    p.indexBytes = cfg.indexBytes;
    p.qkvBufBytes = cfg.qkvBufBytes;
    p.sBufferBytes = cfg.sBufferBytes;
    p.aeLines = cfg.aeLines;
    p.aeDecodeRate = cfg.aeDecodeRate;
    p.softmaxLanesPerEngine = cfg.softmaxLanesPerEngine;
    p.colOverheadCycles = cfg.colOverheadCycles;
    p.reconfigCycles = cfg.reconfigCycles;
    p.denseEff = cfg.denseEff;
    p.gemmEff = cfg.gemmEff;
    p.twoPronged = cfg.twoPronged;
    p.enableAeEngines = cfg.enableAeEngines;
    p.dynamicMaskPrediction = cfg.dynamicMaskPrediction;
    p.predictionCostFactor = cfg.predictionCostFactor;
    p.sparserLineFrac = cfg.sparserLineFrac;
    return p;
}

ViTCoDAccelerator::ViTCoDAccelerator(ViTCoDConfig cfg)
    : cfg_(std::move(cfg))
{
    VITCOD_ASSERT(cfg_.macArray.macLines > cfg_.aeLines,
                  "AE lines must leave MAC lines for the engines");
}

uint64_t
ViTCoDAccelerator::lruQMisses(const sparse::Csc &csc, size_t window_rows)
{
    return core::schedule::lruQMisses(csc, window_rows);
}

LayerAttentionStats
ViTCoDAccelerator::priceAttentionLayer(
    const core::schedule::LayerSchedule &ls) const
{
    const size_t lines = cfg_.macArray.macLines;
    const size_t mpl = cfg_.macArray.macsPerLine;
    const sim::DramModel dram(cfg_.dram);

    LayerAttentionStats st;
    st.attentionMacs = ls.attentionMacs();
    st.executedMacs = ls.execMacs.attn;
    st.decodeMacs = ls.decodeMacs;
    st.denserLines = ls.sddmmDenserLines;
    st.sparserLines = ls.sddmmSparserLines;
    st.qGatherMisses = ls.gatherMisses;

    auto dense_cycles = [&](MacOps macs, size_t use_lines) -> Cycles {
        if (macs == 0 || use_lines == 0)
            return 0;
        const double ideal = static_cast<double>(
            ceilDiv(macs, use_lines * mpl));
        return static_cast<Cycles>(std::ceil(ideal / cfg_.denseEff));
    };

    // ---- SDDMM: streams + gathers on the load side, the denser /
    // sparser / decoder engines racing on the compute side.
    const Bytes sddmm_in_bytes = ls.qkLoadBytes + ls.idxBytes;
    Cycles sddmm_load = dram.streamCycles(sddmm_in_bytes);
    if (ls.gatherMisses > 0)
        sddmm_load +=
            dram.gatherCycles(ls.gatherMisses, ls.gatherRowBytes);

    const Cycles decode_cycles =
        (ls.aeOn && cfg_.aeLines > 0)
            ? ceilDiv(ls.decodeMacs,
                      static_cast<MacOps>(
                          static_cast<double>(cfg_.aeLines * mpl) *
                          cfg_.aeDecodeRate))
            : 0;
    if (cfg_.twoPronged) {
        st.sddmmCompute = std::max(
            {dense_cycles(ls.denserSddmmMacs, ls.sddmmDenserLines),
             ls.sddmmSparserCycles, decode_cycles});
    } else {
        st.sddmmCompute =
            std::max(dense_cycles(ls.denserSddmmMacs, lines) +
                         ls.sddmmSparserCycles + cfg_.reconfigCycles,
                     decode_cycles);
    }

    // ---- Softmax over stored scores (dense region + sparser nnz).
    const size_t sm_lanes =
        cfg_.softmaxLanesPerEngine * (cfg_.twoPronged ? 2 : 1);
    st.softmaxCompute = ceilDiv(2 * ls.softmaxElems, sm_lanes);

    // ---- SpMM: V streams in, V' streams out, S spills if oversized.
    const Cycles spmm_load = dram.streamCycles(ls.vLoadBytes);
    const Cycles spmm_store = dram.streamCycles(ls.outStoreBytes);
    Cycles spmm_compute;
    if (cfg_.twoPronged) {
        spmm_compute = std::max(
            dense_cycles(ls.denserSpmmMacs, ls.spmmDenserLines),
            ls.spmmSparserCycles);
    } else {
        spmm_compute = dense_cycles(ls.denserSpmmMacs, lines) +
                       ls.spmmSparserCycles;
    }
    spmm_compute += cfg_.reconfigCycles; // inter->intra-PE switch
    st.spmmCompute = spmm_compute;

    // ---- Optional on-the-fly mask prediction (NLP mode).
    if (cfg_.dynamicMaskPrediction)
        st.prediction = dense_cycles(ls.predictMacs, lines) +
                        ls.predictOverhead;

    // ---- Phase overlap within the layer.
    const std::vector<sim::TileCost> tiles = {
        {sddmm_load, st.sddmmCompute, 0},
        {0, st.softmaxCompute, 0},
        {spmm_load, st.spmmCompute, spmm_store},
    };
    st.total = sim::doubleBufferedCycles(tiles) + st.prediction;
    const Cycles compute_sum =
        st.sddmmCompute + st.softmaxCompute + st.spmmCompute +
        st.prediction;
    st.exposedMemory = st.total - compute_sum;

    st.sddmmRead = sddmm_in_bytes;
    st.dramRead = sddmm_in_bytes + ls.vLoadBytes;
    st.dramWrite = ls.outStoreBytes;
    return st;
}

LayerAttentionStats
ViTCoDAccelerator::simulateAttentionLayer(const core::ModelPlan &plan,
                                          size_t layer) const
{
    const core::schedule::ScheduleBuilder builder(
        {.hw = scheduleParams(cfg_), .buildLayouts = false});
    return priceAttentionLayer(
        builder.buildAttentionLayer(plan, layer));
}

RunStats
ViTCoDAccelerator::finalize(
    const core::schedule::ModelSchedule &sched) const
{
    const size_t mpl = cfg_.macArray.macsPerLine;
    const size_t all_lines = cfg_.macArray.macLines;
    const auto eb = static_cast<double>(cfg_.elemBytes);

    RunStats rs;
    rs.device = name();
    rs.model = sched.modelName;

    Cycles total = 0;
    Cycles compute = 0;
    Cycles preprocess = 0;
    MacOps macs = 0;

    const sim::DramModel dram(cfg_.dram);

    auto gemm_cycles = [&](MacOps m) -> Cycles {
        return static_cast<Cycles>(
            std::ceil(static_cast<double>(
                          ceilDiv(m, all_lines * mpl)) /
                      cfg_.gemmEff));
    };

    for (const core::schedule::LayerSchedule &ls : sched.layers) {
        const LayerAttentionStats st = priceAttentionLayer(ls);
        total += st.total;
        compute += st.sddmmCompute + st.softmaxCompute +
                   st.spmmCompute;
        preprocess += st.prediction;
        macs += st.attentionMacs + st.decodeMacs;
        rs.dramRead += st.dramRead;
        rs.dramWrite += st.dramWrite;

        if (!sched.endToEnd)
            continue;

        // ---- Dense phases of the block, on the reused MAC array
        // (encoder overlapped on its dedicated lines).
        const core::schedule::DenseBlockSchedule &db = ls.dense;
        const Cycles proj_compute = std::max(
            gemm_cycles(db.projMacs),
            ls.aeOn ? ceilDiv(db.encodeMacs, cfg_.aeLines * mpl)
                    : 0);
        const Cycles ln_cycles = static_cast<Cycles>(
            static_cast<double>(db.lnElems) /
            static_cast<double>(cfg_.softmaxLanesPerEngine * 2));

        const std::vector<sim::TileCost> dense_tiles = {
            {dram.streamCycles(db.projLoadBytes), proj_compute,
             dram.streamCycles(db.projStoreBytes)},
            {dram.streamCycles(db.outProjBytes),
             gemm_cycles(db.outProjMacs), 0},
            {dram.streamCycles(db.mlpBytes), gemm_cycles(db.mlpMacs),
             0},
            {0, ln_cycles, 0},
        };
        const Cycles dense_total =
            sim::doubleBufferedCycles(dense_tiles);
        const Cycles dense_compute =
            proj_compute + gemm_cycles(db.outProjMacs) +
            gemm_cycles(db.mlpMacs) + ln_cycles;
        total += dense_total;
        compute += dense_compute;
        macs += db.projMacs + db.encodeMacs + db.outProjMacs +
                db.mlpMacs;
        rs.dramRead +=
            db.projLoadBytes + db.outProjBytes + db.mlpBytes;
        rs.dramWrite += db.projStoreBytes;
    }

    if (sched.endToEnd && sched.stemFlops > 0.0) {
        const Cycles stem = gemm_cycles(sched.stemMacs);
        total += stem;
        compute += stem;
        macs += sched.stemMacs;
    }

    rs.cycles = total;
    rs.seconds = cyclesToSeconds(total, cfg_.freqGhz);
    rs.computeSeconds = cyclesToSeconds(compute, cfg_.freqGhz);
    rs.preprocessSeconds = cyclesToSeconds(preprocess, cfg_.freqGhz);
    rs.dataMoveSeconds =
        rs.seconds - rs.computeSeconds - rs.preprocessSeconds;
    rs.macs = macs;

    // Coarse SRAM activity: operands enjoy ~4x reuse out of the
    // buffers; results write back once per 8-MAC line.
    rs.sramRead = static_cast<Bytes>(
        static_cast<double>(macs) * 2.0 * eb / 4.0);
    rs.sramWrite = static_cast<Bytes>(
        static_cast<double>(macs) * eb / 8.0);

    const sim::EnergyModel em(cfg_.energy);
    rs.energy = em.compute(macs, rs.sramRead, rs.sramWrite,
                           rs.dramTotal(), total);
    const double offered = static_cast<double>(total) *
                           static_cast<double>(all_lines * mpl);
    rs.utilization =
        offered > 0 ? static_cast<double>(macs) / offered : 0.0;
    return rs;
}

RunStats
ViTCoDAccelerator::runSchedule(
    const core::schedule::ModelSchedule &sched) const
{
    VITCOD_ASSERT(sched.params == scheduleParams(cfg_),
                  "schedule was built for different hardware");
    return finalize(sched);
}

RunStats
ViTCoDAccelerator::runAttention(const core::ModelPlan &plan) const
{
    const core::schedule::ScheduleBuilder builder(
        {.hw = scheduleParams(cfg_), .buildLayouts = false});
    return finalize(builder.build(plan, /*end_to_end=*/false));
}

RunStats
ViTCoDAccelerator::runEndToEnd(const core::ModelPlan &plan) const
{
    const core::schedule::ScheduleBuilder builder(
        {.hw = scheduleParams(cfg_), .buildLayouts = false});
    return finalize(builder.build(plan, /*end_to_end=*/true));
}

} // namespace vitcod::accel
