#include "vitcod_accel.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "model/flops.h"
#include "obs/metrics.h"
#include "sim/tile_scheduler.h"

namespace vitcod::accel {

core::schedule::HardwareParams
scheduleParams(const ViTCoDConfig &cfg)
{
    core::schedule::HardwareParams p;
    p.macLines = cfg.macArray.macLines;
    p.macsPerLine = cfg.macArray.macsPerLine;
    p.elemBytes = cfg.elemBytes;
    p.indexBytes = cfg.indexBytes;
    p.qkvBufBytes = cfg.qkvBufBytes;
    p.sBufferBytes = cfg.sBufferBytes;
    p.aeLines = cfg.aeLines;
    p.aeDecodeRate = cfg.aeDecodeRate;
    p.softmaxLanesPerEngine = cfg.softmaxLanesPerEngine;
    p.colOverheadCycles = cfg.colOverheadCycles;
    p.reconfigCycles = cfg.reconfigCycles;
    p.denseEff = cfg.denseEff;
    p.gemmEff = cfg.gemmEff;
    p.twoPronged = cfg.twoPronged;
    p.enableAeEngines = cfg.enableAeEngines;
    p.dynamicMaskPrediction = cfg.dynamicMaskPrediction;
    p.predictionCostFactor = cfg.predictionCostFactor;
    p.sparserLineFrac = cfg.sparserLineFrac;
    return p;
}

namespace {

/** Dense-streaming cycles on @p use_lines denser-engine lines. */
Cycles
denseCycles(const ViTCoDConfig &cfg, MacOps macs, size_t use_lines)
{
    if (macs == 0 || use_lines == 0)
        return 0;
    const double ideal = static_cast<double>(
        ceilDiv(macs, use_lines * cfg.macArray.macsPerLine));
    return static_cast<Cycles>(std::ceil(ideal / cfg.denseEff));
}

/** GEMM cycles on the whole reused array (proj/MLP/stem phases). */
Cycles
gemmCycles(const ViTCoDConfig &cfg, MacOps m)
{
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(ceilDiv(
                      m, cfg.macArray.macLines *
                             cfg.macArray.macsPerLine)) /
                  cfg.gemmEff));
}

/** The attention phases of one layer as pipelined work items. */
struct AttentionItems
{
    std::vector<sim::PipeItem> attn; //!< [SDDMM, softmax, SpMM]
    sim::PipeItem prediction;        //!< NLP dynamic-mask pass
    bool hasPrediction = false;
};

/**
 * Build the work items both simulator modes price: the analytic
 * path turns each into a double-buffering tile (analyticTile), the
 * pipelined path plays them through the stage graph. One builder
 * means the two models share every cost expression and cannot
 * drift (pinned by tests/sim/test_pipeline_model.cpp).
 */
AttentionItems
buildAttentionItems(const ViTCoDConfig &cfg,
                    const core::schedule::LayerSchedule &ls)
{
    const size_t lines = cfg.macArray.macLines;
    const size_t mpl = cfg.macArray.macsPerLine;
    AttentionItems out;

    // ---- SDDMM: Q/K/index streams + gathers feeding the denser /
    // sparser / decoder engines racing in parallel.
    const Cycles decode =
        (ls.aeOn && cfg.aeLines > 0)
            ? ceilDiv(ls.decodeMacs,
                      static_cast<MacOps>(
                          static_cast<double>(cfg.aeLines * mpl) *
                          cfg.aeDecodeRate))
            : 0;
    sim::PipeItem sddmm;
    sddmm.loadBytes = ls.qkLoadBytes + ls.idxBytes;
    sddmm.gatherCount = ls.gatherMisses;
    sddmm.gatherGrainBytes = ls.gatherRowBytes;
    sddmm.decodeCycles = decode;
    if (cfg.twoPronged) {
        sddmm.denserCycles =
            denseCycles(cfg, ls.denserSddmmMacs, ls.sddmmDenserLines);
        sddmm.sparserCycles = ls.sddmmSparserCycles;
    } else {
        // Monolithic engine: dense and sparse work serialize on one
        // lane (plus the accumulation-mode switch between them).
        sddmm.denserCycles =
            denseCycles(cfg, ls.denserSddmmMacs, lines) +
            ls.sddmmSparserCycles + cfg.reconfigCycles;
    }

    // ---- Softmax over stored scores, on both engines' lanes.
    const size_t sm_lanes =
        cfg.softmaxLanesPerEngine * (cfg.twoPronged ? 2 : 1);
    sim::PipeItem softmax;
    softmax.denserCycles = ceilDiv(2 * ls.softmaxElems, sm_lanes);
    if (cfg.twoPronged)
        softmax.sparserCycles = softmax.denserCycles;

    // ---- SpMM: V streams in, V' streams out; the inter->intra-PE
    // reconfiguration is a serial tail after the engines join.
    sim::PipeItem spmm;
    spmm.loadBytes = ls.vLoadBytes;
    spmm.storeBytes = ls.outStoreBytes;
    spmm.syncCycles = cfg.reconfigCycles;
    if (cfg.twoPronged) {
        spmm.denserCycles =
            denseCycles(cfg, ls.denserSpmmMacs, ls.spmmDenserLines);
        spmm.sparserCycles = ls.spmmSparserCycles;
    } else {
        spmm.denserCycles =
            denseCycles(cfg, ls.denserSpmmMacs, lines) +
            ls.spmmSparserCycles;
    }

    out.attn = {sddmm, softmax, spmm};

    // ---- Optional on-the-fly mask prediction (NLP mode): a serial
    // pass that drains the pipeline before the layer starts.
    if (cfg.dynamicMaskPrediction) {
        out.hasPrediction = true;
        out.prediction.denserCycles =
            denseCycles(cfg, ls.predictMacs, lines);
        out.prediction.syncCycles = ls.predictOverhead;
    }
    return out;
}

/** The dense block phases (end-to-end runs) as pipelined items. */
std::vector<sim::PipeItem>
buildDenseItems(const ViTCoDConfig &cfg,
                const core::schedule::LayerSchedule &ls)
{
    const size_t mpl = cfg.macArray.macsPerLine;
    const core::schedule::DenseBlockSchedule &db = ls.dense;

    sim::PipeItem proj; // QKV generation, encoder overlapped on AE
    proj.loadBytes = db.projLoadBytes;
    proj.storeBytes = db.projStoreBytes;
    proj.denserCycles = gemmCycles(cfg, db.projMacs);
    proj.decodeCycles =
        ls.aeOn ? ceilDiv(db.encodeMacs, cfg.aeLines * mpl) : 0;

    sim::PipeItem outproj;
    outproj.loadBytes = db.outProjBytes;
    outproj.denserCycles = gemmCycles(cfg, db.outProjMacs);

    sim::PipeItem mlp;
    mlp.loadBytes = db.mlpBytes;
    mlp.denserCycles = gemmCycles(cfg, db.mlpMacs);

    sim::PipeItem ln;
    ln.denserCycles = static_cast<Cycles>(
        static_cast<double>(db.lnElems) /
        static_cast<double>(cfg.softmaxLanesPerEngine * 2));

    return {proj, outproj, mlp, ln};
}

} // namespace

ViTCoDAccelerator::ViTCoDAccelerator(ViTCoDConfig cfg)
    : cfg_(std::move(cfg))
{
    VITCOD_ASSERT(cfg_.macArray.macLines > cfg_.aeLines,
                  "AE lines must leave MAC lines for the engines");
}

uint64_t
ViTCoDAccelerator::lruQMisses(const sparse::Csc &csc, size_t window_rows)
{
    return core::schedule::lruQMisses(csc, window_rows);
}

LayerAttentionStats
ViTCoDAccelerator::priceAttentionLayer(
    const core::schedule::LayerSchedule &ls, sim::SimMode mode) const
{
    const sim::DramModel dram(cfg_.dram);

    LayerAttentionStats st;
    st.attentionMacs = ls.attentionMacs();
    st.executedMacs = ls.execMacs.attn;
    st.decodeMacs = ls.decodeMacs;
    st.denserLines = ls.sddmmDenserLines;
    st.sparserLines = ls.sddmmSparserLines;
    st.qGatherMisses = ls.gatherMisses;

    const AttentionItems items = buildAttentionItems(cfg_, ls);
    st.sddmmCompute = sim::itemComputeCycles(items.attn[0]);
    st.softmaxCompute = sim::itemComputeCycles(items.attn[1]);
    st.spmmCompute = sim::itemComputeCycles(items.attn[2]);
    if (items.hasPrediction)
        st.prediction = sim::itemComputeCycles(items.prediction);

    // ---- Phase overlap within the layer: the closed-form recurrence
    // or the event-driven machine, over the same items.
    if (mode == sim::SimMode::Analytic) {
        std::vector<sim::TileCost> tiles;
        tiles.reserve(items.attn.size());
        for (const sim::PipeItem &it : items.attn)
            tiles.push_back(sim::analyticTile(it, dram));
        st.total = sim::doubleBufferedCycles(tiles) + st.prediction;
    } else {
        const sim::PipelineModel pm(cfg_.pipeline, cfg_.dram);
        st.pipe = pm.run(items.attn);
        if (items.hasPrediction)
            st.pipe += pm.run({items.prediction});
        st.total = st.pipe.totalCycles;
    }
    const Cycles compute_sum =
        st.sddmmCompute + st.softmaxCompute + st.spmmCompute +
        st.prediction;
    st.exposedMemory = st.total - compute_sum;

    const Bytes sddmm_in_bytes = ls.qkLoadBytes + ls.idxBytes;
    st.sddmmRead = sddmm_in_bytes;
    st.dramRead = sddmm_in_bytes + ls.vLoadBytes;
    st.dramWrite = ls.outStoreBytes;
    return st;
}

LayerAttentionStats
ViTCoDAccelerator::simulateAttentionLayer(const core::ModelPlan &plan,
                                          size_t layer) const
{
    const core::schedule::ScheduleBuilder builder(
        {.hw = scheduleParams(cfg_), .buildLayouts = false});
    return priceAttentionLayer(
        builder.buildAttentionLayer(plan, layer));
}

RunStats
ViTCoDAccelerator::finalize(const core::schedule::ModelSchedule &sched,
                            sim::SimMode mode) const
{
    const auto eb = static_cast<double>(cfg_.elemBytes);
    const bool pipelined = mode == sim::SimMode::Pipelined;
    const sim::DramModel dram(cfg_.dram);
    const sim::PipelineModel pm(cfg_.pipeline, cfg_.dram);

    RunStats rs;
    rs.device = name();
    rs.model = sched.modelName;

    Cycles total = 0;
    Cycles compute = 0;
    Cycles preprocess = 0;
    MacOps macs = 0;

    for (const core::schedule::LayerSchedule &ls : sched.layers) {
        const LayerAttentionStats st = priceAttentionLayer(ls, mode);
        total += st.total;
        compute += st.sddmmCompute + st.softmaxCompute +
                   st.spmmCompute;
        preprocess += st.prediction;
        macs += st.attentionMacs + st.decodeMacs;
        rs.dramRead += st.dramRead;
        rs.dramWrite += st.dramWrite;
        if (pipelined)
            rs.pipeline += st.pipe;

        if (!sched.endToEnd)
            continue;

        // ---- Dense phases of the block, on the reused MAC array
        // (encoder overlapped on its dedicated lines).
        const core::schedule::DenseBlockSchedule &db = ls.dense;
        const std::vector<sim::PipeItem> dense_items =
            buildDenseItems(cfg_, ls);
        Cycles dense_total;
        if (pipelined) {
            const sim::PipelineStats ds = pm.run(dense_items);
            dense_total = ds.totalCycles;
            rs.pipeline += ds;
        } else {
            std::vector<sim::TileCost> dense_tiles;
            dense_tiles.reserve(dense_items.size());
            for (const sim::PipeItem &it : dense_items)
                dense_tiles.push_back(sim::analyticTile(it, dram));
            dense_total = sim::doubleBufferedCycles(dense_tiles);
        }
        Cycles dense_compute = 0;
        for (const sim::PipeItem &it : dense_items)
            dense_compute += sim::itemComputeCycles(it);
        total += dense_total;
        compute += dense_compute;
        macs += db.projMacs + db.encodeMacs + db.outProjMacs +
                db.mlpMacs;
        rs.dramRead +=
            db.projLoadBytes + db.outProjBytes + db.mlpBytes;
        rs.dramWrite += db.projStoreBytes;
    }

    if (sched.endToEnd && sched.stemFlops > 0.0) {
        sim::PipeItem stem;
        stem.denserCycles = gemmCycles(cfg_, sched.stemMacs);
        if (pipelined) {
            const sim::PipelineStats ss = pm.run({stem});
            total += ss.totalCycles;
            rs.pipeline += ss;
        } else {
            total += stem.denserCycles;
        }
        compute += stem.denserCycles;
        macs += sched.stemMacs;
    }

    rs.cycles = total;
    rs.seconds = cyclesToSeconds(total, cfg_.freqGhz);
    rs.computeSeconds = cyclesToSeconds(compute, cfg_.freqGhz);
    rs.preprocessSeconds = cyclesToSeconds(preprocess, cfg_.freqGhz);
    rs.dataMoveSeconds =
        rs.seconds - rs.computeSeconds - rs.preprocessSeconds;
    rs.macs = macs;

    // Coarse SRAM activity: operands enjoy ~4x reuse out of the
    // buffers; results write back once per 8-MAC line.
    rs.sramRead = static_cast<Bytes>(
        static_cast<double>(macs) * 2.0 * eb / 4.0);
    rs.sramWrite = static_cast<Bytes>(
        static_cast<double>(macs) * eb / 8.0);

    const sim::EnergyModel em(cfg_.energy);
    rs.energy = em.compute(macs, rs.sramRead, rs.sramWrite,
                           rs.dramTotal(), total);
    const size_t all_macs =
        cfg_.macArray.macLines * cfg_.macArray.macsPerLine;
    const double offered = static_cast<double>(total) *
                           static_cast<double>(all_macs);
    rs.utilization =
        offered > 0 ? static_cast<double>(macs) / offered : 0.0;

    if (pipelined) {
        auto &m = obs::metrics();
        m.counter("vitcod_sim_pipelined_runs_total",
                  "Schedules priced by the pipelined simulator")
            .inc();
        m.counter("vitcod_sim_pipeline_events_total",
                  "Events processed by the pipelined simulator")
            .inc(rs.pipeline.events);
        m.counter("vitcod_sim_pipeline_fetch_stall_cycles_total",
                  "Fetch-stage stall cycles (FIFO backpressure and "
                  "operand-bank gating)")
            .inc(rs.pipeline.fetch.stall);
        m.counter("vitcod_sim_pipeline_denser_stall_cycles_total",
                  "Denser-engine stall cycles (operand starvation, "
                  "join imbalance, output blocking)")
            .inc(rs.pipeline.denser.stall);
        m.counter("vitcod_sim_pipeline_sparser_stall_cycles_total",
                  "Sparser-engine stall cycles (operand starvation, "
                  "join imbalance, output blocking)")
            .inc(rs.pipeline.sparser.stall);
    }
    return rs;
}

RunStats
ViTCoDAccelerator::runSchedule(
    const core::schedule::ModelSchedule &sched,
    sim::SimMode mode) const
{
    VITCOD_ASSERT(sched.params == scheduleParams(cfg_),
                  "schedule was built for different hardware");
    return finalize(sched, mode);
}

RunStats
ViTCoDAccelerator::runAttention(const core::ModelPlan &plan) const
{
    const core::schedule::ScheduleBuilder builder(
        {.hw = scheduleParams(cfg_), .buildLayouts = false});
    return finalize(builder.build(plan, /*end_to_end=*/false),
                    sim::SimMode::Analytic);
}

RunStats
ViTCoDAccelerator::runEndToEnd(const core::ModelPlan &plan) const
{
    const core::schedule::ScheduleBuilder builder(
        {.hw = scheduleParams(cfg_), .buildLayouts = false});
    return finalize(builder.build(plan, /*end_to_end=*/true),
                    sim::SimMode::Analytic);
}

} // namespace vitcod::accel
