/**
 * @file
 * Rebuilt Sanger baseline (Lu et al., MICRO 2021) sized to the same
 * MAC/SRAM budget as ViTCoD. Sanger enables *dynamic* fine-grained
 * sparse attention through:
 *
 *  1. a low-precision (4-bit) prediction pass computing quantized
 *     Q.K^T to derive a per-input mask — paid every inference;
 *  2. "pack and split" preprocessing that condenses the unstructured
 *     mask into balanced EU rows — paid every inference;
 *  3. an S-stationary reconfigurable PE array: scores are spatially
 *     mapped, Q/K fully reused once loaded (low DRAM traffic), but
 *     partial sums live in PE registers and the effective EU
 *     utilization depends on the pack efficiency.
 *
 * Its operating sparsity on ViTs is the accuracy-preserving medium
 * level the paper's Table I lists for dynamic NLP-style masks.
 */

#ifndef VITCOD_ACCEL_SANGER_H
#define VITCOD_ACCEL_SANGER_H

#include "accel/device.h"
#include "sim/dram.h"
#include "sim/energy.h"
#include "sim/mac_array.h"

namespace vitcod::accel {

/** Sanger operating point and hardware shape. */
struct SangerConfig
{
    std::string name = "Sanger";

    sim::MacArrayConfig macArray{64, 8};
    double freqGhz = 0.5;
    sim::DramConfig dram{};
    sim::EnergyConfig energy{};

    size_t elemBytes = 2;

    /** Dynamic-mask sparsity Sanger sustains on ViTs. */
    double operatingSparsity = 0.55;

    /** Cost factor of the 4-bit prediction pass (vs full MACs). */
    double predictionCostFactor = 0.25;

    /** EU utilization after pack-and-split load balancing. */
    double packEfficiency = 0.65;

    /** Preprocessing cycles per attention row (pack & split). */
    Cycles packCyclesPerRow = 8;

    /** On-chip budget for the sparse S working set. */
    Bytes sBufferBytes = 96 * 1024;

    size_t softmaxLanes = 32;
};

/** Cycle-level Sanger model. */
class SangerAccelerator : public Device
{
  public:
    explicit SangerAccelerator(SangerConfig cfg = {});

    const SangerConfig &config() const { return cfg_; }

    std::string name() const override { return cfg_.name; }

    RunStats runAttention(const core::ModelPlan &plan) const override;
    RunStats runEndToEnd(const core::ModelPlan &plan) const override;

  private:
    RunStats run(const core::ModelPlan &plan, bool end_to_end) const;

    SangerConfig cfg_;
};

} // namespace vitcod::accel

#endif // VITCOD_ACCEL_SANGER_H
