#include "platform.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vitcod::accel {

namespace {

/** Eager-mode kernel count of one op group, per transformer block. */
size_t
kernelsOfGroup(model::OpGroup g)
{
    using model::OpGroup;
    switch (g) {
      case OpGroup::QkvProj:
        return 3; // three linears
      case OpGroup::AttnMatMul:
        return 2; // two batched matmuls
      case OpGroup::Reshape:
        return 6; // head split/merge, transposes, contiguous()
      case OpGroup::Softmax:
        return 2; // scale + softmax
      case OpGroup::OutProj:
        return 1;
      case OpGroup::Mlp:
        return 4; // fc1, gelu, fc2, residual
      case OpGroup::LayerNorm:
        return 2;
      case OpGroup::Other:
        return 0; // stem dispatch charged once, below
      default:
        return 0;
    }
}

/** Groups that constitute the "core attention" workload. */
bool
isCoreAttentionGroup(model::OpGroup g)
{
    using model::OpGroup;
    return g == OpGroup::AttnMatMul || g == OpGroup::Softmax ||
           g == OpGroup::Reshape;
}

/** Groups whose roofline uses the big-GEMM efficiency. */
bool
isGemmGroup(model::OpGroup g)
{
    using model::OpGroup;
    return g == OpGroup::QkvProj || g == OpGroup::OutProj ||
           g == OpGroup::Mlp || g == OpGroup::Other;
}

} // namespace

PlatformModel::PlatformModel(PlatformConfig cfg) : cfg_(std::move(cfg))
{
    VITCOD_ASSERT(cfg_.peakGflops > 0 && cfg_.bandwidthGBps > 0,
                  "bad platform config");
}

Seconds
PlatformModel::kernelSeconds(double flops, double bytes,
                             double eff) const
{
    const double t_compute =
        eff > 0 ? flops / (cfg_.peakGflops * eff * 1e9) : 0.0;
    const double t_mem =
        bytes / (cfg_.bandwidthGBps * cfg_.memEff * 1e9);
    return std::max(t_compute, t_mem);
}

Seconds
PlatformModel::opGroupSeconds(const model::VitModelConfig &m,
                              model::OpGroup group,
                              double attn_sparsity) const
{
    const double s_eff = attn_sparsity * cfg_.sparseExploit;
    const model::Breakdown bd =
        model::modelBreakdown(m, s_eff, cfg_.elemBytes);
    const model::OpCount &c = model::groupOf(bd, group);

    double eff = 0.0; // memory-bound by default
    if (group == model::OpGroup::AttnMatMul)
        eff = cfg_.attnMatmulEff;
    else if (isGemmGroup(group))
        eff = cfg_.gemmEff;

    const Seconds roofline = kernelSeconds(c.flops, c.bytes, eff);
    const double blocks = static_cast<double>(m.totalLayers());
    Seconds dispatch = static_cast<double>(kernelsOfGroup(group)) *
                       blocks * cfg_.dispatchSeconds;
    if (group == model::OpGroup::Other)
        dispatch += 2.0 * cfg_.dispatchSeconds; // stem + head
    return roofline + dispatch;
}

RunStats
PlatformModel::run(const core::ModelPlan &plan, bool end_to_end) const
{
    const auto &m = plan.model;
    const double s = plan.avgSparsity;
    const double s_eff = s * cfg_.sparseExploit;
    const model::Breakdown bd =
        model::modelBreakdown(m, s_eff, cfg_.elemBytes);
    const double blocks = static_cast<double>(m.totalLayers());

    RunStats rs;
    rs.device = name();
    rs.model = m.name;

    for (size_t gi = 0;
         gi < static_cast<size_t>(model::OpGroup::NumGroups); ++gi) {
        const auto g = static_cast<model::OpGroup>(gi);
        if (!end_to_end && !isCoreAttentionGroup(g))
            continue;

        const model::OpCount &c = model::groupOf(bd, g);
        double eff = 0.0;
        if (g == model::OpGroup::AttnMatMul)
            eff = cfg_.attnMatmulEff;
        else if (isGemmGroup(g))
            eff = cfg_.gemmEff;

        const double t_compute =
            eff > 0 ? c.flops / (cfg_.peakGflops * eff * 1e9) : 0.0;
        const double t_mem =
            c.bytes / (cfg_.bandwidthGBps * cfg_.memEff * 1e9);
        const Seconds roofline = std::max(t_compute, t_mem);
        Seconds dispatch = static_cast<double>(kernelsOfGroup(g)) *
                           blocks * cfg_.dispatchSeconds;
        if (end_to_end && g == model::OpGroup::Other)
            dispatch += 2.0 * cfg_.dispatchSeconds;

        rs.seconds += roofline + dispatch;
        if (t_compute >= t_mem)
            rs.computeSeconds += roofline;
        else
            rs.dataMoveSeconds += roofline;
        rs.preprocessSeconds += dispatch; // framework overhead
        rs.macs += static_cast<MacOps>(c.flops / 2.0);
        rs.dramRead += static_cast<Bytes>(c.bytes * 0.7);
        rs.dramWrite += static_cast<Bytes>(c.bytes * 0.3);
    }

    // Platform energy: measured-wall-power x time, reported under
    // the static component of the breakdown.
    rs.energy.staticPj = cfg_.powerWatts * rs.seconds * 1e12;
    return rs;
}

RunStats
PlatformModel::runAttention(const core::ModelPlan &plan) const
{
    return run(plan, /*end_to_end=*/false);
}

RunStats
PlatformModel::runEndToEnd(const core::ModelPlan &plan) const
{
    return run(plan, /*end_to_end=*/true);
}

PlatformConfig
cpuXeon6230R()
{
    PlatformConfig c;
    c.name = "CPU";
    c.peakGflops = 2100.0; // 26c x AVX-512 FMA @ ~2.1 GHz
    c.bandwidthGBps = 140.0;
    c.attnMatmulEff = 0.008; // eager-mode small-matrix BLAS
    c.gemmEff = 0.15;
    c.memEff = 0.50;
    c.dispatchSeconds = 60e-6;
    c.powerWatts = 150.0;
    c.elemBytes = 4;
    return c;
}

PlatformConfig
gpu2080Ti()
{
    PlatformConfig c;
    c.name = "GPU";
    c.peakGflops = 13400.0;
    c.bandwidthGBps = 616.0;
    c.attnMatmulEff = 0.006; // batch-1, per-head eager bmm tiles
    c.gemmEff = 0.45;
    c.memEff = 0.70;
    c.dispatchSeconds = 25e-6;
    c.kernelsPerAttnLayer = 40; // per-head loops in eager mode
    c.powerWatts = 250.0;
    c.elemBytes = 4;
    return c;
}

PlatformConfig
edgeGpuXavierNX()
{
    PlatformConfig c;
    c.name = "EdgeGPU";
    c.peakGflops = 1690.0; // fp16 CUDA-core peak
    c.bandwidthGBps = 51.2;
    c.attnMatmulEff = 0.020;
    c.gemmEff = 0.35;
    c.memEff = 0.50;
    c.dispatchSeconds = 40e-6;
    c.powerWatts = 15.0;
    c.elemBytes = 2;
    return c;
}

PlatformConfig
edgeGpuTx2()
{
    PlatformConfig c;
    c.name = "EdgeGPU-TX2";
    c.peakGflops = 1330.0;
    c.bandwidthGBps = 59.7;
    c.attnMatmulEff = 0.020;
    c.gemmEff = 0.35;
    c.memEff = 0.50;
    c.dispatchSeconds = 45e-6;
    c.powerWatts = 12.0;
    c.elemBytes = 2;
    return c;
}

} // namespace vitcod::accel
