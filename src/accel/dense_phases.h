/**
 * @file
 * Shared model of a transformer block's dense (non-attention)
 * phases — Q/K/V generation, output projection, MLP, LayerNorm — as
 * executed on a MAC-line accelerator with double-buffered DRAM
 * streams. Used by the baseline accelerator simulators for their
 * end-to-end runs (each attention accelerator reuses its array for
 * GEMMs, as the paper notes all of them do).
 */

#ifndef VITCOD_ACCEL_DENSE_PHASES_H
#define VITCOD_ACCEL_DENSE_PHASES_H

#include "common/units.h"
#include "model/flops.h"
#include "sim/dram.h"

namespace vitcod::accel {

/** Array/memory parameters of the executing accelerator. */
struct DensePhaseParams
{
    size_t totalMacs = 512;     //!< lines x MACs-per-line
    double gemmEff = 0.9;       //!< achieved MAC efficiency on GEMM
    size_t elemBytes = 2;
    size_t elwiseLanes = 32;    //!< lanes for LN/activation
    double tokenKeep = 1.0;     //!< token-pruning survivors (SpAtten)
};

/** Cycle/traffic summary of the dense phases of one block. */
struct DensePhaseStats
{
    Cycles total = 0;
    Cycles compute = 0;
    MacOps macs = 0;
    Bytes dramRead = 0;
    Bytes dramWrite = 0;
};

/**
 * Simulate the dense phases of one transformer block.
 *
 * @param shape Token/head/width shape of the block.
 * @param mlp_ratio Hidden expansion of the block's MLP.
 * @param dram DRAM model used for stream latencies.
 * @param p Array parameters.
 */
DensePhaseStats simulateDenseBlock(const model::AttnShape &shape,
                                   size_t mlp_ratio,
                                   const sim::DramModel &dram,
                                   const DensePhaseParams &p);

/** Look up the mlpRatio of layer @p layer in @p cfg. */
size_t mlpRatioOfLayer(const model::VitModelConfig &cfg, size_t layer);

} // namespace vitcod::accel

#endif // VITCOD_ACCEL_DENSE_PHASES_H
