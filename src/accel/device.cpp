#include "device.h"

#include "accel/platform.h"
#include "accel/sanger.h"
#include "accel/spatten.h"
#include "accel/vitcod_accel.h"

namespace vitcod::accel {

RunStats &
RunStats::operator+=(const RunStats &o)
{
    seconds += o.seconds;
    cycles += o.cycles;
    computeSeconds += o.computeSeconds;
    dataMoveSeconds += o.dataMoveSeconds;
    preprocessSeconds += o.preprocessSeconds;
    macs += o.macs;
    dramRead += o.dramRead;
    dramWrite += o.dramWrite;
    sramRead += o.sramRead;
    sramWrite += o.sramWrite;
    energy += o.energy;
    pipeline += o.pipeline;
    return *this;
}

std::vector<std::unique_ptr<Device>>
makeAllDevices()
{
    std::vector<std::unique_ptr<Device>> devices;
    devices.push_back(
        std::make_unique<PlatformModel>(cpuXeon6230R()));
    devices.push_back(
        std::make_unique<PlatformModel>(edgeGpuXavierNX()));
    devices.push_back(std::make_unique<PlatformModel>(gpu2080Ti()));
    devices.push_back(std::make_unique<SpAttenAccelerator>());
    devices.push_back(std::make_unique<SangerAccelerator>());
    devices.push_back(std::make_unique<ViTCoDAccelerator>());
    return devices;
}

} // namespace vitcod::accel
