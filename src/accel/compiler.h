/**
 * @file
 * The algorithm-hardware interface pipeline of the paper's Fig. 14:
 * a *network parser* extracts hardware-relevant configuration from a
 * ViTCoD-trained sparse ViT (global-token counts, CSC indices,
 * buffer needs, dataflow phases), and a *compiler* lowers it into
 * the instruction stream that reconfigures and drives the
 * accelerator — "one-time compilation cost for each task" (Sec.
 * V-B3). An Interpreter executes a compiled Program against the
 * same simulation primitives the analytic simulator uses; tests
 * assert the two agree cycle-for-cycle, which validates the static
 * schedule end-to-end.
 */

#ifndef VITCOD_ACCEL_COMPILER_H
#define VITCOD_ACCEL_COMPILER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "accel/vitcod_accel.h"

namespace vitcod::accel {

/** Instruction opcodes of the ViTCoD accelerator. */
enum class Opcode : uint8_t
{
    ConfigLines,  //!< arg0 = denser lines, arg1 = sparser lines
    SetAccumMode, //!< arg0: 0 = inter-PE (SDDMM), 1 = intra-PE (SpMM)
    LoadIndex,    //!< arg0 = index bytes -> IdxBuf
    LoadTile,     //!< arg0 = DRAM bytes -> activation buffers
    GatherRows,   //!< arg0 = row count, arg1 = bytes/row (LRU misses)
    Decode,       //!< arg0 = decoder MACs (dedicated engine)
    Encode,       //!< arg0 = encoder MACs (dedicated engine)
    /**
     * arg0 = MACs on the denser engine (the region is stored and
     * processed densely: all n x N_gt entries). arg1 = the subset
     * falling on mask nonzeros — what a value-level execution
     * performs; carried so the instruction stream totals both MAC
     * currencies (ignored by the interpreter's cycle pricing).
     */
    SddmmDense,
    SddmmSparse,  //!< arg0 = precomputed engine cycles, arg1 = MACs
    Softmax,      //!< arg0 = stored score elements
    SpmmDense,    //!< arg0/arg1 as SddmmDense
    SpmmSparse,   //!< arg0 = precomputed engine cycles, arg1 = MACs
    Gemm,         //!< arg0 = MACs on the whole array (proj/MLP)
    Elementwise,  //!< arg0 = elements (LayerNorm / activation)
    Predict,      //!< arg0 = MACs of dynamic mask prediction (NLP)
    StoreTile,    //!< arg0 = DRAM bytes written back
    Barrier,      //!< close the current overlap phase
};

/** Printable mnemonic. */
const char *opcodeName(Opcode op);

/** One instruction; args are op-specific (see Opcode docs). */
struct Instruction
{
    Opcode op;
    uint32_t layer = 0;
    uint64_t arg0 = 0;
    uint64_t arg1 = 0;
};

/** A compiled instruction stream plus bookkeeping. */
struct Program
{
    std::vector<Instruction> code;
    std::string modelName;
    bool endToEnd = false;

    /** Number of instructions with opcode @p op. */
    size_t count(Opcode op) const;

    /** Human-readable disassembly. */
    void disassemble(std::ostream &os, size_t max_instrs = 0) const;
};

/**
 * The compiler back end of Fig. 14: lowers a ModelSchedule — the
 * Schedule IR the network parser (core::schedule::ScheduleBuilder)
 * produced — into the instruction stream. Every instruction operand
 * is a field of the IR; the compiler re-derives nothing, which is
 * what keeps it cycle-for-cycle consistent with the analytic
 * simulator pricing the same schedule. The (plan, end_to_end)
 * overload is the one-call convenience: build + lower.
 */
class Compiler
{
  public:
    explicit Compiler(ViTCoDConfig cfg = {});

    const ViTCoDConfig &config() const { return cfg_; }

    /** Build the schedule for @p plan, then lower it. */
    Program compile(const core::ModelPlan &plan,
                    bool end_to_end) const;

    /** Lower a prebuilt schedule (must target a two-pronged array). */
    Program compile(const core::schedule::ModelSchedule &sched) const;

  private:
    /** Emit one layer's attention phases. */
    void emitAttentionLayer(
        Program &prog, const core::schedule::LayerSchedule &ls) const;

    /** Emit one layer's dense (projection/MLP) phases. */
    void emitDenseBlock(
        Program &prog, const core::schedule::LayerSchedule &ls) const;

    ViTCoDConfig cfg_;
};

/**
 * Executes a Program on the simulation primitives (MAC array, DRAM
 * channel, double-buffered phase schedule) and reports RunStats.
 * Within a phase (between Barriers), engines run concurrently; the
 * phase cost is max(load-side, compute-side per engine, store-side)
 * folded through the standard double-buffer recurrence.
 */
class Interpreter
{
  public:
    explicit Interpreter(ViTCoDConfig cfg = {});

    RunStats execute(const Program &prog) const;

  private:
    ViTCoDConfig cfg_;
};

} // namespace vitcod::accel

#endif // VITCOD_ACCEL_COMPILER_H
