#include "taxonomy.h"

namespace vitcod::accel {

std::vector<AcceleratorTraits>
taxonomyTable()
{
    return {
        {"OuterSpace", "Tensor Algebra", "SpGEMM",
         "Outer-product (Input-stationary)", "Static", "Unstructured",
         "High", "Medium", "High~Ultra High", true},
        {"ExTensor", "Tensor Algebra", "SpGEMM",
         "Hybrid Outer&Inner-product (Input-&Output-stationary)",
         "Static", "Unstructured", "Low~Medium", "Medium~High",
         "High~Ultra High", false},
        {"SpArch", "Tensor Algebra", "SpGEMM",
         "Condensed Outer-product (Input-stationary)", "Static",
         "Unstructured", "Low~Medium", "Low", "High~Ultra High",
         false},
        {"Gamma", "Tensor Algebra", "SpGEMM",
         "Gustavson(Row)-stationary", "Static", "Unstructured", "Low",
         "Low", "High~Ultra High", false},
        {"SpAtten", "NLP Transformer", "Sparse Attention: SDDMM; SpMM",
         "Top-k Selection", "Dynamic & Input-dependent",
         "Coarse-grained & Structured", "Medium", "Medium~High",
         "Low", true},
        {"Sanger", "NLP Transformer", "Sparse Attention: SDDMM; SpMM",
         "S-stationary", "Dynamic & Input-dependent",
         "Fine-grained & Structured", "High", "Medium~High", "Medium",
         true},
        {"ViTCoD (Ours)", "ViT", "Sparse Attention: SDDMM; SpMM",
         "K-stationary; Output-stationary", "Static",
         "Denser & Sparser", "Low", "Low", "High", true},
    };
}

} // namespace vitcod::accel
