#include "dense_phases.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "sim/tile_scheduler.h"

namespace vitcod::accel {

DensePhaseStats
simulateDenseBlock(const model::AttnShape &shape, size_t mlp_ratio,
                   const sim::DramModel &dram, const DensePhaseParams &p)
{
    VITCOD_ASSERT(p.totalMacs > 0 && p.gemmEff > 0, "bad array params");
    const double n =
        static_cast<double>(shape.tokens) * p.tokenKeep;
    const double d = static_cast<double>(shape.embedDim);
    const double hd =
        static_cast<double>(shape.heads) * shape.headDim;
    const double hidden = d * static_cast<double>(mlp_ratio);
    const auto eb = static_cast<double>(p.elemBytes);

    auto gemm_cycles = [&](double macs) -> Cycles {
        return static_cast<Cycles>(std::ceil(
            static_cast<double>(
                ceilDiv(static_cast<MacOps>(macs), p.totalMacs)) /
            p.gemmEff));
    };

    const double proj_macs = n * d * 3.0 * hd;
    const double proj_in = n * d * eb + 3.0 * d * hd * eb;
    const double proj_out = 3.0 * n * hd * eb;

    const double op_macs = n * hd * d;
    const double op_bytes = hd * d * eb + n * hd * eb + n * d * eb;

    const double mlp_macs = 2.0 * n * d * hidden;
    const double mlp_bytes = 2.0 * d * hidden * eb + 2.0 * n * d * eb;

    const Cycles ln_cycles = static_cast<Cycles>(
        2.0 * n * d / static_cast<double>(p.elwiseLanes));

    const std::vector<sim::TileCost> tiles = {
        {dram.streamCycles(static_cast<Bytes>(proj_in)),
         gemm_cycles(proj_macs),
         dram.streamCycles(static_cast<Bytes>(proj_out))},
        {dram.streamCycles(static_cast<Bytes>(op_bytes)),
         gemm_cycles(op_macs), 0},
        {dram.streamCycles(static_cast<Bytes>(mlp_bytes)),
         gemm_cycles(mlp_macs), 0},
        {0, ln_cycles, 0},
    };

    DensePhaseStats st;
    st.total = sim::doubleBufferedCycles(tiles);
    st.compute = gemm_cycles(proj_macs) + gemm_cycles(op_macs) +
                 gemm_cycles(mlp_macs) + ln_cycles;
    st.macs = static_cast<MacOps>(proj_macs + op_macs + mlp_macs);
    st.dramRead =
        static_cast<Bytes>(proj_in + op_bytes + mlp_bytes);
    st.dramWrite = static_cast<Bytes>(proj_out);
    return st;
}

size_t
mlpRatioOfLayer(const model::VitModelConfig &cfg, size_t layer)
{
    size_t idx = 0;
    for (const auto &stage : cfg.stages) {
        if (layer < idx + stage.layers)
            return stage.mlpRatio;
        idx += stage.layers;
    }
    panic("layer ", layer, " out of range for model ", cfg.name);
}

} // namespace vitcod::accel
