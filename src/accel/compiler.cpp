#include "compiler.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>

#include "common/logging.h"
#include "accel/dense_phases.h"
#include "model/flops.h"
#include "sim/dram.h"
#include "sim/energy.h"
#include "sim/tile_scheduler.h"

namespace vitcod::accel {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ConfigLines:
        return "CFG.LINES";
      case Opcode::SetAccumMode:
        return "CFG.ACCUM";
      case Opcode::LoadIndex:
        return "LD.IDX";
      case Opcode::LoadTile:
        return "LD.TILE";
      case Opcode::GatherRows:
        return "LD.GATHER";
      case Opcode::Decode:
        return "AE.DEC";
      case Opcode::Encode:
        return "AE.ENC";
      case Opcode::SddmmDense:
        return "SDDMM.D";
      case Opcode::SddmmSparse:
        return "SDDMM.S";
      case Opcode::Softmax:
        return "SOFTMAX";
      case Opcode::SpmmDense:
        return "SPMM.D";
      case Opcode::SpmmSparse:
        return "SPMM.S";
      case Opcode::Gemm:
        return "GEMM";
      case Opcode::Elementwise:
        return "ELWISE";
      case Opcode::Predict:
        return "PREDICT";
      case Opcode::StoreTile:
        return "ST.TILE";
      case Opcode::Barrier:
        return "BARRIER";
      default:
        panic("bad opcode");
    }
}

size_t
Program::count(Opcode op) const
{
    size_t n = 0;
    for (const auto &i : code)
        n += i.op == op;
    return n;
}

void
Program::disassemble(std::ostream &os, size_t max_instrs) const
{
    os << "; program for " << modelName
       << (endToEnd ? " (end-to-end)" : " (attention)") << ", "
       << code.size() << " instructions\n";
    size_t shown = 0;
    for (const auto &i : code) {
        if (max_instrs && shown++ >= max_instrs) {
            os << "; ... truncated\n";
            break;
        }
        os << "L" << i.layer << "\t" << opcodeName(i.op) << "\t"
           << i.arg0;
        if (i.arg1)
            os << ", " << i.arg1;
        os << '\n';
    }
}

Compiler::Compiler(ViTCoDConfig cfg) : cfg_(std::move(cfg))
{
    VITCOD_ASSERT(cfg_.twoPronged,
                  "the compiler targets the two-pronged architecture");
}

void
Compiler::emitAttentionLayer(Program &prog,
                             const core::ModelPlan &plan,
                             size_t layer) const
{
    const auto shapes = model::attentionShapes(plan.model);
    const auto &shape = shapes[layer];
    const size_t n = shape.tokens;
    const size_t dk = shape.headDim;
    const size_t h = shape.heads;
    const auto eb = static_cast<double>(cfg_.elemBytes);
    const auto L = static_cast<uint32_t>(layer);

    std::vector<const core::SparseAttentionPlan *> hp;
    for (const auto &head : plan.heads)
        if (head.layer == layer)
            hp.push_back(&head.plan);
    VITCOD_ASSERT(hp.size() == h, "plan missing heads");

    const bool ae_on = cfg_.enableAeEngines && !plan.ae.empty();
    double ratio = 1.0;
    size_t c_heads = h;
    if (ae_on) {
        ratio = plan.ae[layer].ratio();
        c_heads = plan.ae[layer].compressed;
    }

    // ---- Workload extraction (the "network parser" of Fig. 14).
    MacOps denser_sddmm = 0, sparser_sddmm = 0;
    uint64_t s_elems = 0;
    double idx_bytes = 0.0;
    for (const auto *p : hp) {
        denser_sddmm +=
            static_cast<MacOps>(n) * p->numGlobalTokens * dk;
        sparser_sddmm += static_cast<MacOps>(p->sparserNnz) * dk;
        s_elems += n * p->numGlobalTokens + p->sparserNnz;
        if (p->numGlobalTokens < p->tokens)
            idx_bytes += static_cast<double>(
                p->sparserCsc.indexBytes(cfg_.indexBytes));
    }

    const size_t lines = cfg_.macArray.macLines;
    const size_t mpl = cfg_.macArray.macsPerLine;
    const auto alloc = allocateEngineLines(
        {static_cast<double>(denser_sddmm),
         static_cast<double>(sparser_sddmm)},
        lines);

    // ---- Optional dynamic-mask prediction (NLP mode), a serial
    // preprocessing phase.
    if (cfg_.dynamicMaskPrediction) {
        const auto pred_macs = static_cast<MacOps>(
            static_cast<double>(n) * n * h * dk *
            cfg_.predictionCostFactor);
        prog.code.push_back(
            {Opcode::Predict, L, pred_macs, 2 * n});
    }

    // ---- Phase 1: SDDMM.
    prog.code.push_back({Opcode::ConfigLines, L, alloc[0], alloc[1]});
    prog.code.push_back({Opcode::SetAccumMode, L, 0, 0});

    const double q_row_bytes = dk * eb * ratio;
    const size_t window_rows = std::max<size_t>(
        1, static_cast<size_t>(
               static_cast<double>(cfg_.qkvBufBytes) / 2.0 /
               (static_cast<double>(h) * q_row_bytes)));
    double k_bytes = static_cast<double>(n) * h * dk * eb * ratio;
    double q_bytes = 0.0;
    uint64_t gather_misses = 0;
    for (const auto *p : hp) {
        if (p->numGlobalTokens > 0 || p->sparserNnz == 0) {
            q_bytes += static_cast<double>(n) * q_row_bytes;
            if (window_rows < n) {
                const auto extra = static_cast<double>(
                    ceilDiv(n, window_rows) - 1);
                k_bytes += static_cast<double>(p->numGlobalTokens) *
                           dk * eb * ratio * extra;
            }
        } else {
            const uint64_t misses = ViTCoDAccelerator::lruQMisses(
                p->sparserCsc, window_rows);
            gather_misses += misses;
            q_bytes += static_cast<double>(misses) * q_row_bytes;
        }
    }
    prog.code.push_back({Opcode::LoadIndex, L,
                         static_cast<uint64_t>(idx_bytes), 0});
    prog.code.push_back(
        {Opcode::LoadTile, L,
         static_cast<uint64_t>(k_bytes + q_bytes), 0});
    if (gather_misses > 0) {
        prog.code.push_back(
            {Opcode::GatherRows, L, gather_misses,
             static_cast<uint64_t>(std::max(1.0, q_row_bytes))});
    }
    if (ae_on) {
        prog.code.push_back(
            {Opcode::Decode, L,
             static_cast<MacOps>(2) * n * dk * h * c_heads, 0});
    }
    prog.code.push_back({Opcode::SddmmDense, L, denser_sddmm, 0});
    prog.code.push_back(
        {Opcode::SddmmSparse, L,
         sparserEngineCycles(hp, dk, alloc[1], mpl,
                             cfg_.colOverheadCycles),
         sparser_sddmm});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});

    // ---- Phase 2: softmax over stored scores.
    prog.code.push_back({Opcode::Softmax, L, s_elems, 0});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});

    // ---- Phase 3: SpMM (output stationary; reconfiguration).
    const auto spmm_alloc = allocateEngineLines(
        {static_cast<double>(denser_sddmm),
         static_cast<double>(sparser_sddmm)},
        lines);
    prog.code.push_back(
        {Opcode::ConfigLines, L, spmm_alloc[0], spmm_alloc[1]});
    prog.code.push_back({Opcode::SetAccumMode, L, 1, 0});

    const double s_bytes = static_cast<double>(s_elems) * eb;
    const double spill =
        std::max(0.0, s_bytes - static_cast<double>(cfg_.sBufferBytes));
    const double v_bytes = static_cast<double>(n) * h * dk * eb;
    const double out_bytes = static_cast<double>(n) * h * dk * eb;
    prog.code.push_back({Opcode::LoadTile, L,
                         static_cast<uint64_t>(v_bytes + spill), 0});
    prog.code.push_back({Opcode::SpmmDense, L, denser_sddmm, 0});
    prog.code.push_back(
        {Opcode::SpmmSparse, L,
         sparserEngineCycles(hp, dk, spmm_alloc[1], mpl,
                             cfg_.colOverheadCycles),
         sparser_sddmm});
    prog.code.push_back({Opcode::StoreTile, L,
                         static_cast<uint64_t>(out_bytes + spill),
                         0});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});
}

void
Compiler::emitDenseBlock(Program &prog, const core::ModelPlan &plan,
                         size_t layer) const
{
    const auto shapes = model::attentionShapes(plan.model);
    const auto &s = shapes[layer];
    const double n = static_cast<double>(s.tokens);
    const double d = static_cast<double>(s.embedDim);
    const double hd = static_cast<double>(s.heads) * s.headDim;
    const auto eb = static_cast<double>(cfg_.elemBytes);
    const auto L = static_cast<uint32_t>(layer);
    const size_t ratio = mlpRatioOfLayer(plan.model, layer);
    const double mlp_hidden = d * static_cast<double>(ratio);

    const bool ae_on = cfg_.enableAeEngines && !plan.ae.empty();
    const double ae_ratio = ae_on ? plan.ae[layer].ratio() : 1.0;
    const double c_heads =
        ae_on ? static_cast<double>(plan.ae[layer].compressed) : 0.0;

    // Q/K/V projection (+ encoder overlapped).
    const double proj_macs = n * d * 3.0 * hd;
    const double proj_in = n * d * eb + 3.0 * d * hd * eb;
    const double proj_out =
        2.0 * n * hd * eb * ae_ratio + n * hd * eb;
    prog.code.push_back({Opcode::LoadTile, L,
                         static_cast<uint64_t>(proj_in), 0});
    prog.code.push_back({Opcode::Gemm, L,
                         static_cast<MacOps>(proj_macs), 0});
    if (ae_on) {
        prog.code.push_back(
            {Opcode::Encode, L,
             static_cast<MacOps>(2.0 * n * s.headDim * s.heads *
                                 c_heads),
             0});
    }
    prog.code.push_back({Opcode::StoreTile, L,
                         static_cast<uint64_t>(proj_out), 0});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});

    // Output projection.
    const double op_macs = n * hd * d;
    const double op_bytes = hd * d * eb + n * hd * eb + n * d * eb;
    prog.code.push_back({Opcode::LoadTile, L,
                         static_cast<uint64_t>(op_bytes), 0});
    prog.code.push_back({Opcode::Gemm, L,
                         static_cast<MacOps>(op_macs), 0});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});

    // MLP.
    const double mlp_macs = 2.0 * n * d * mlp_hidden;
    const double mlp_bytes =
        2.0 * d * mlp_hidden * eb + 2.0 * n * d * eb;
    prog.code.push_back({Opcode::LoadTile, L,
                         static_cast<uint64_t>(mlp_bytes), 0});
    prog.code.push_back({Opcode::Gemm, L,
                         static_cast<MacOps>(mlp_macs), 0});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});

    // LayerNorms.
    prog.code.push_back({Opcode::Elementwise, L,
                         static_cast<uint64_t>(2.0 * n * d), 0});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});
}

Program
Compiler::compile(const core::ModelPlan &plan, bool end_to_end) const
{
    Program prog;
    prog.modelName = plan.model.name;
    prog.endToEnd = end_to_end;
    const auto shapes = model::attentionShapes(plan.model);
    for (size_t l = 0; l < shapes.size(); ++l) {
        emitAttentionLayer(prog, plan, l);
        if (end_to_end)
            emitDenseBlock(prog, plan, l);
    }
    if (end_to_end && plan.model.stemFlops > 0.0) {
        prog.code.push_back(
            {Opcode::Gemm, static_cast<uint32_t>(shapes.size()),
             static_cast<MacOps>(plan.model.stemFlops / 2.0), 0});
        prog.code.push_back({Opcode::Barrier,
                             static_cast<uint32_t>(shapes.size()), 0,
                             0});
    }
    return prog;
}

Interpreter::Interpreter(ViTCoDConfig cfg) : cfg_(std::move(cfg)) {}

RunStats
Interpreter::execute(const Program &prog) const
{
    const sim::DramModel dram(cfg_.dram);
    const size_t mpl = cfg_.macArray.macsPerLine;
    const size_t all_lines = cfg_.macArray.macLines;
    const auto eb = static_cast<double>(cfg_.elemBytes);

    RunStats rs;
    rs.device = cfg_.name + "/interp";
    rs.model = prog.modelName;

    // Per-layer groups of phase tiles: the double-buffer recurrence
    // is applied within a layer (as in the analytic simulator) and
    // layers execute back-to-back.
    Cycles total = 0;
    Cycles compute = 0;
    Cycles preprocess = 0;
    MacOps macs = 0;

    std::vector<sim::TileCost> layer_tiles;
    uint32_t cur_layer = prog.code.empty() ? 0 : prog.code[0].layer;

    // Phase accumulation state. Load/store bytes convert to cycles
    // once per phase so burst quantization matches the analytic
    // simulator's whole-phase streams.
    Bytes ph_load_bytes = 0, ph_store_bytes = 0;
    Cycles ph_load_extra = 0; // gather latency
    Cycles ph_dense = 0, ph_sparse = 0, ph_ae = 0, ph_elwise = 0;
    Cycles ph_extra = 0; // reconfiguration etc.
    size_t l_d = all_lines;

    auto dense_cycles = [&](MacOps m, size_t use_lines,
                            double eff) -> Cycles {
        if (m == 0 || use_lines == 0)
            return 0;
        return static_cast<Cycles>(std::ceil(
            static_cast<double>(ceilDiv(m, use_lines * mpl)) / eff));
    };

    auto close_phase = [&]() {
        const Cycles ph_compute =
            std::max({ph_dense, ph_sparse, ph_ae, ph_elwise}) +
            ph_extra;
        layer_tiles.push_back(
            {dram.streamCycles(ph_load_bytes) + ph_load_extra,
             ph_compute, dram.streamCycles(ph_store_bytes)});
        compute += ph_compute;
        ph_load_bytes = ph_store_bytes = 0;
        ph_load_extra = 0;
        ph_dense = ph_sparse = ph_ae = ph_elwise = 0;
        ph_extra = 0;
    };

    auto close_layer = [&]() {
        total += sim::doubleBufferedCycles(layer_tiles);
        layer_tiles.clear();
    };

    for (const auto &ins : prog.code) {
        if (ins.layer != cur_layer) {
            close_layer();
            cur_layer = ins.layer;
        }
        switch (ins.op) {
          case Opcode::ConfigLines:
            l_d = ins.arg0;
            break;
          case Opcode::SetAccumMode:
            if (ins.arg0 == 1)
                ph_extra += cfg_.reconfigCycles;
            break;
          case Opcode::LoadIndex:
          case Opcode::LoadTile:
            ph_load_bytes += ins.arg0;
            rs.dramRead += ins.arg0;
            break;
          case Opcode::GatherRows:
            ph_load_extra += dram.gatherCycles(ins.arg0, ins.arg1);
            break;
          case Opcode::Decode:
            ph_ae = std::max(
                ph_ae,
                ceilDiv(ins.arg0,
                        static_cast<MacOps>(
                            static_cast<double>(cfg_.aeLines * mpl) *
                            cfg_.aeDecodeRate)));
            macs += ins.arg0;
            break;
          case Opcode::Encode:
            ph_ae = std::max(ph_ae,
                             ceilDiv(ins.arg0, cfg_.aeLines * mpl));
            macs += ins.arg0;
            break;
          case Opcode::SddmmDense:
          case Opcode::SpmmDense:
            ph_dense +=
                dense_cycles(ins.arg0, l_d, cfg_.denseEff);
            macs += ins.arg0;
            break;
          case Opcode::SddmmSparse:
          case Opcode::SpmmSparse:
            ph_sparse += ins.arg0; // statically scheduled cycles
            macs += ins.arg1;
            break;
          case Opcode::Softmax:
            ph_elwise += ceilDiv(2 * ins.arg0,
                                 cfg_.softmaxLanesPerEngine * 2);
            break;
          case Opcode::Gemm:
            ph_dense +=
                dense_cycles(ins.arg0, all_lines, cfg_.gemmEff);
            macs += ins.arg0;
            break;
          case Opcode::Elementwise:
            ph_elwise += static_cast<Cycles>(
                static_cast<double>(ins.arg0) /
                static_cast<double>(cfg_.softmaxLanesPerEngine * 2));
            break;
          case Opcode::Predict: {
            const Cycles c =
                dense_cycles(ins.arg0, all_lines, cfg_.denseEff) +
                ins.arg1;
            total += c;      // serial preprocessing
            preprocess += c;
            macs += ins.arg0;
            break;
          }
          case Opcode::StoreTile:
            ph_store_bytes += ins.arg0;
            rs.dramWrite += ins.arg0;
            break;
          case Opcode::Barrier:
            close_phase();
            break;
          default:
            panic("unhandled opcode");
        }
    }
    if (ph_load_bytes || ph_dense || ph_sparse || ph_ae ||
        ph_elwise || ph_store_bytes || ph_extra || ph_load_extra)
        close_phase();
    close_layer();

    rs.cycles = total;
    rs.seconds = cyclesToSeconds(total, cfg_.freqGhz);
    rs.computeSeconds = cyclesToSeconds(compute, cfg_.freqGhz);
    rs.preprocessSeconds = cyclesToSeconds(preprocess, cfg_.freqGhz);
    rs.dataMoveSeconds =
        rs.seconds - rs.computeSeconds - rs.preprocessSeconds;
    rs.macs = macs;
    rs.sramRead = static_cast<Bytes>(
        static_cast<double>(macs) * 2.0 * eb / 4.0);
    rs.sramWrite =
        static_cast<Bytes>(static_cast<double>(macs) * eb / 8.0);
    const sim::EnergyModel em(cfg_.energy);
    rs.energy = em.compute(macs, rs.sramRead, rs.sramWrite,
                           rs.dramTotal(), total);
    const double offered = static_cast<double>(total) *
                           static_cast<double>(all_lines * mpl);
    rs.utilization =
        offered > 0 ? static_cast<double>(macs) / offered : 0.0;
    return rs;
}

} // namespace vitcod::accel
