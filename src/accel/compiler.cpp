#include "compiler.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/logging.h"
#include "sim/dram.h"
#include "sim/energy.h"
#include "sim/tile_scheduler.h"

namespace vitcod::accel {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ConfigLines:
        return "CFG.LINES";
      case Opcode::SetAccumMode:
        return "CFG.ACCUM";
      case Opcode::LoadIndex:
        return "LD.IDX";
      case Opcode::LoadTile:
        return "LD.TILE";
      case Opcode::GatherRows:
        return "LD.GATHER";
      case Opcode::Decode:
        return "AE.DEC";
      case Opcode::Encode:
        return "AE.ENC";
      case Opcode::SddmmDense:
        return "SDDMM.D";
      case Opcode::SddmmSparse:
        return "SDDMM.S";
      case Opcode::Softmax:
        return "SOFTMAX";
      case Opcode::SpmmDense:
        return "SPMM.D";
      case Opcode::SpmmSparse:
        return "SPMM.S";
      case Opcode::Gemm:
        return "GEMM";
      case Opcode::Elementwise:
        return "ELWISE";
      case Opcode::Predict:
        return "PREDICT";
      case Opcode::StoreTile:
        return "ST.TILE";
      case Opcode::Barrier:
        return "BARRIER";
      default:
        panic("bad opcode");
    }
}

size_t
Program::count(Opcode op) const
{
    size_t n = 0;
    for (const auto &i : code)
        n += i.op == op;
    return n;
}

void
Program::disassemble(std::ostream &os, size_t max_instrs) const
{
    os << "; program for " << modelName
       << (endToEnd ? " (end-to-end)" : " (attention)") << ", "
       << code.size() << " instructions\n";
    size_t shown = 0;
    for (const auto &i : code) {
        if (max_instrs && shown++ >= max_instrs) {
            os << "; ... truncated\n";
            break;
        }
        os << "L" << i.layer << "\t" << opcodeName(i.op) << "\t"
           << i.arg0;
        if (i.arg1)
            os << ", " << i.arg1;
        os << '\n';
    }
}

Compiler::Compiler(ViTCoDConfig cfg) : cfg_(std::move(cfg))
{
    VITCOD_ASSERT(cfg_.twoPronged,
                  "the compiler targets the two-pronged architecture");
}

void
Compiler::emitAttentionLayer(
    Program &prog, const core::schedule::LayerSchedule &ls) const
{
    const auto L = static_cast<uint32_t>(ls.layer);

    // ---- Optional dynamic-mask prediction (NLP mode), a serial
    // preprocessing phase. Gate on the overhead too: a zero-cost
    // prediction pass (predictionCostFactor = 0) still pays its
    // fixed 2n-cycle latency, and the simulator prices it.
    if (ls.predictMacs > 0 || ls.predictOverhead > 0)
        prog.code.push_back({Opcode::Predict, L, ls.predictMacs,
                             ls.predictOverhead});

    // ---- Phase 1: SDDMM.
    prog.code.push_back({Opcode::ConfigLines, L, ls.sddmmDenserLines,
                         ls.sddmmSparserLines});
    prog.code.push_back({Opcode::SetAccumMode, L, 0, 0});
    prog.code.push_back({Opcode::LoadIndex, L, ls.idxBytes, 0});
    prog.code.push_back({Opcode::LoadTile, L, ls.qkLoadBytes, 0});
    if (ls.gatherMisses > 0)
        prog.code.push_back({Opcode::GatherRows, L, ls.gatherMisses,
                             ls.gatherRowBytes});
    if (ls.aeOn)
        prog.code.push_back({Opcode::Decode, L, ls.decodeMacs, 0});
    // Denser-engine ops carry both currencies: arg0 the dense-
    // region workload the engine streams, arg1 the mask-nonzero
    // subset a value-level execution computes.
    MacOps denser_exec = 0;
    for (const core::schedule::HeadSchedule &hs : ls.heads)
        denser_exec +=
            static_cast<MacOps>(hs.denserNnz) * hs.headDim;
    prog.code.push_back(
        {Opcode::SddmmDense, L, ls.denserSddmmMacs, denser_exec});
    prog.code.push_back({Opcode::SddmmSparse, L,
                         ls.sddmmSparserCycles,
                         ls.sparserSddmmMacs});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});

    // ---- Phase 2: softmax over stored scores.
    prog.code.push_back({Opcode::Softmax, L, ls.softmaxElems, 0});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});

    // ---- Phase 3: SpMM (output stationary; reconfiguration).
    prog.code.push_back({Opcode::ConfigLines, L, ls.spmmDenserLines,
                         ls.spmmSparserLines});
    prog.code.push_back({Opcode::SetAccumMode, L, 1, 0});
    prog.code.push_back({Opcode::LoadTile, L, ls.vLoadBytes, 0});
    prog.code.push_back(
        {Opcode::SpmmDense, L, ls.denserSpmmMacs, denser_exec});
    prog.code.push_back({Opcode::SpmmSparse, L, ls.spmmSparserCycles,
                         ls.sparserSpmmMacs});
    prog.code.push_back(
        {Opcode::StoreTile, L, ls.outStoreBytes, 0});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});
}

void
Compiler::emitDenseBlock(
    Program &prog, const core::schedule::LayerSchedule &ls) const
{
    const auto L = static_cast<uint32_t>(ls.layer);
    const core::schedule::DenseBlockSchedule &db = ls.dense;

    // Q/K/V projection (+ encoder overlapped).
    prog.code.push_back({Opcode::LoadTile, L, db.projLoadBytes, 0});
    prog.code.push_back({Opcode::Gemm, L, db.projMacs, 0});
    if (ls.aeOn)
        prog.code.push_back({Opcode::Encode, L, db.encodeMacs, 0});
    prog.code.push_back({Opcode::StoreTile, L, db.projStoreBytes, 0});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});

    // Output projection.
    prog.code.push_back({Opcode::LoadTile, L, db.outProjBytes, 0});
    prog.code.push_back({Opcode::Gemm, L, db.outProjMacs, 0});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});

    // MLP.
    prog.code.push_back({Opcode::LoadTile, L, db.mlpBytes, 0});
    prog.code.push_back({Opcode::Gemm, L, db.mlpMacs, 0});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});

    // LayerNorms.
    prog.code.push_back({Opcode::Elementwise, L, db.lnElems, 0});
    prog.code.push_back({Opcode::Barrier, L, 0, 0});
}

Program
Compiler::compile(const core::schedule::ModelSchedule &sched) const
{
    VITCOD_ASSERT(sched.params.twoPronged,
                  "the compiler targets the two-pronged architecture");
    Program prog;
    prog.modelName = sched.modelName;
    prog.endToEnd = sched.endToEnd;
    for (const core::schedule::LayerSchedule &ls : sched.layers) {
        emitAttentionLayer(prog, ls);
        if (sched.endToEnd)
            emitDenseBlock(prog, ls);
    }
    if (sched.endToEnd && sched.stemFlops > 0.0) {
        const auto L = static_cast<uint32_t>(sched.layers.size());
        prog.code.push_back({Opcode::Gemm, L, sched.stemMacs, 0});
        prog.code.push_back({Opcode::Barrier, L, 0, 0});
    }
    return prog;
}

Program
Compiler::compile(const core::ModelPlan &plan, bool end_to_end) const
{
    const core::schedule::ScheduleBuilder builder(
        {.hw = scheduleParams(cfg_), .buildLayouts = false});
    return compile(builder.build(plan, end_to_end));
}

Interpreter::Interpreter(ViTCoDConfig cfg) : cfg_(std::move(cfg)) {}

RunStats
Interpreter::execute(const Program &prog) const
{
    const sim::DramModel dram(cfg_.dram);
    const size_t mpl = cfg_.macArray.macsPerLine;
    const size_t all_lines = cfg_.macArray.macLines;
    const auto eb = static_cast<double>(cfg_.elemBytes);

    RunStats rs;
    rs.device = cfg_.name + "/interp";
    rs.model = prog.modelName;

    // Per-layer groups of phase tiles: the double-buffer recurrence
    // is applied within a layer (as in the analytic simulator) and
    // layers execute back-to-back.
    Cycles total = 0;
    Cycles compute = 0;
    Cycles preprocess = 0;
    MacOps macs = 0;

    std::vector<sim::TileCost> layer_tiles;
    uint32_t cur_layer = prog.code.empty() ? 0 : prog.code[0].layer;

    // Phase accumulation state. Load/store bytes convert to cycles
    // once per phase so burst quantization matches the analytic
    // simulator's whole-phase streams.
    Bytes ph_load_bytes = 0, ph_store_bytes = 0;
    Cycles ph_load_extra = 0; // gather latency
    Cycles ph_dense = 0, ph_sparse = 0, ph_ae = 0, ph_elwise = 0;
    Cycles ph_extra = 0; // reconfiguration etc.
    size_t l_d = all_lines;

    auto dense_cycles = [&](MacOps m, size_t use_lines,
                            double eff) -> Cycles {
        if (m == 0 || use_lines == 0)
            return 0;
        return static_cast<Cycles>(std::ceil(
            static_cast<double>(ceilDiv(m, use_lines * mpl)) / eff));
    };

    auto close_phase = [&]() {
        const Cycles ph_compute =
            std::max({ph_dense, ph_sparse, ph_ae, ph_elwise}) +
            ph_extra;
        layer_tiles.push_back(
            {dram.streamCycles(ph_load_bytes) + ph_load_extra,
             ph_compute, dram.streamCycles(ph_store_bytes)});
        compute += ph_compute;
        ph_load_bytes = ph_store_bytes = 0;
        ph_load_extra = 0;
        ph_dense = ph_sparse = ph_ae = ph_elwise = 0;
        ph_extra = 0;
    };

    auto close_layer = [&]() {
        total += sim::doubleBufferedCycles(layer_tiles);
        layer_tiles.clear();
    };

    for (const auto &ins : prog.code) {
        if (ins.layer != cur_layer) {
            close_layer();
            cur_layer = ins.layer;
        }
        switch (ins.op) {
          case Opcode::ConfigLines:
            l_d = ins.arg0;
            break;
          case Opcode::SetAccumMode:
            if (ins.arg0 == 1)
                ph_extra += cfg_.reconfigCycles;
            break;
          case Opcode::LoadIndex:
          case Opcode::LoadTile:
            ph_load_bytes += ins.arg0;
            rs.dramRead += ins.arg0;
            break;
          case Opcode::GatherRows:
            ph_load_extra += dram.gatherCycles(ins.arg0, ins.arg1);
            break;
          case Opcode::Decode:
            ph_ae = std::max(
                ph_ae,
                ceilDiv(ins.arg0,
                        static_cast<MacOps>(
                            static_cast<double>(cfg_.aeLines * mpl) *
                            cfg_.aeDecodeRate)));
            macs += ins.arg0;
            break;
          case Opcode::Encode:
            ph_ae = std::max(ph_ae,
                             ceilDiv(ins.arg0, cfg_.aeLines * mpl));
            macs += ins.arg0;
            break;
          case Opcode::SddmmDense:
          case Opcode::SpmmDense:
            ph_dense +=
                dense_cycles(ins.arg0, l_d, cfg_.denseEff);
            macs += ins.arg0;
            break;
          case Opcode::SddmmSparse:
          case Opcode::SpmmSparse:
            ph_sparse += ins.arg0; // statically scheduled cycles
            macs += ins.arg1;
            break;
          case Opcode::Softmax:
            ph_elwise += ceilDiv(2 * ins.arg0,
                                 cfg_.softmaxLanesPerEngine * 2);
            break;
          case Opcode::Gemm:
            ph_dense +=
                dense_cycles(ins.arg0, all_lines, cfg_.gemmEff);
            macs += ins.arg0;
            break;
          case Opcode::Elementwise:
            ph_elwise += static_cast<Cycles>(
                static_cast<double>(ins.arg0) /
                static_cast<double>(cfg_.softmaxLanesPerEngine * 2));
            break;
          case Opcode::Predict: {
            const Cycles c =
                dense_cycles(ins.arg0, all_lines, cfg_.denseEff) +
                ins.arg1;
            total += c;      // serial preprocessing
            preprocess += c;
            macs += ins.arg0;
            break;
          }
          case Opcode::StoreTile:
            ph_store_bytes += ins.arg0;
            rs.dramWrite += ins.arg0;
            break;
          case Opcode::Barrier:
            close_phase();
            break;
          default:
            panic("unhandled opcode");
        }
    }
    if (ph_load_bytes || ph_dense || ph_sparse || ph_ae ||
        ph_elwise || ph_store_bytes || ph_extra || ph_load_extra)
        close_phase();
    close_layer();

    rs.cycles = total;
    rs.seconds = cyclesToSeconds(total, cfg_.freqGhz);
    rs.computeSeconds = cyclesToSeconds(compute, cfg_.freqGhz);
    rs.preprocessSeconds = cyclesToSeconds(preprocess, cfg_.freqGhz);
    rs.dataMoveSeconds =
        rs.seconds - rs.computeSeconds - rs.preprocessSeconds;
    rs.macs = macs;
    rs.sramRead = static_cast<Bytes>(
        static_cast<double>(macs) * 2.0 * eb / 4.0);
    rs.sramWrite =
        static_cast<Bytes>(static_cast<double>(macs) * eb / 8.0);
    const sim::EnergyModel em(cfg_.energy);
    rs.energy = em.compute(macs, rs.sramRead, rs.sramWrite,
                           rs.dramTotal(), total);
    const double offered = static_cast<double>(total) *
                           static_cast<double>(all_lines * mpl);
    rs.utilization =
        offered > 0 ? static_cast<double>(macs) / offered : 0.0;
    return rs;
}

} // namespace vitcod::accel
