#include "sanger.h"

#include <cmath>
#include <vector>

#include "accel/dense_phases.h"
#include "common/logging.h"
#include "model/flops.h"
#include "sim/tile_scheduler.h"

namespace vitcod::accel {

SangerAccelerator::SangerAccelerator(SangerConfig cfg)
    : cfg_(std::move(cfg))
{
    VITCOD_ASSERT(cfg_.operatingSparsity >= 0 &&
                      cfg_.operatingSparsity < 1.0,
                  "bad operating sparsity");
    VITCOD_ASSERT(cfg_.packEfficiency > 0 && cfg_.packEfficiency <= 1,
                  "bad pack efficiency");
}

RunStats
SangerAccelerator::run(const core::ModelPlan &plan,
                       bool end_to_end) const
{
    const auto shapes = model::attentionShapes(plan.model);
    const size_t total_macs = cfg_.macArray.totalMacs();
    const auto eb = static_cast<double>(cfg_.elemBytes);
    const double keep = 1.0 - cfg_.operatingSparsity;
    const sim::DramModel dram(cfg_.dram);

    RunStats rs;
    rs.device = name();
    rs.model = plan.model.name;

    Cycles total = 0;
    Cycles compute = 0;
    Cycles preprocess = 0;
    MacOps macs = 0;

    for (size_t l = 0; l < shapes.size(); ++l) {
        const auto &s = shapes[l];
        const double n = static_cast<double>(s.tokens);
        const double h = static_cast<double>(s.heads);
        const double dk = static_cast<double>(s.headDim);
        const double nnz = n * n * keep * h;

        // (1) Low-precision prediction pass: full quantized Q.K^T.
        const double pred_macs =
            n * n * dk * h * cfg_.predictionCostFactor;
        const Cycles pred_cycles = static_cast<Cycles>(std::ceil(
            static_cast<double>(
                ceilDiv(static_cast<MacOps>(pred_macs), total_macs)) /
            0.9));

        // (2) Pack & split of the predicted mask, per row per head.
        const Cycles pack_cycles = static_cast<Cycles>(
            n * h * static_cast<double>(cfg_.packCyclesPerRow));

        // (3) Sparse SDDMM + SpMM on the reconfigurable EUs.
        auto eu_cycles = [&](double m) -> Cycles {
            return static_cast<Cycles>(std::ceil(
                static_cast<double>(ceilDiv(static_cast<MacOps>(m),
                                            total_macs)) /
                cfg_.packEfficiency));
        };
        const double sddmm_macs = nnz * dk;
        const double spmm_macs = nnz * dk;
        const Cycles attn_compute =
            eu_cycles(sddmm_macs) + eu_cycles(spmm_macs);
        const Cycles softmax = static_cast<Cycles>(
            2.0 * nnz / static_cast<double>(cfg_.softmaxLanes));

        // Traffic: full Q/K/V (S-stationary reuses them fully once
        // loaded), predicted-mask bitmaps, sparse S spill if any.
        const double qkv_bytes = 3.0 * n * h * dk * eb;
        const double mask_bytes = n * n * h / 8.0;
        const double s_bytes = nnz * eb;
        const double spill = std::max(
            0.0, s_bytes - static_cast<double>(cfg_.sBufferBytes));
        const double out_bytes = n * h * dk * eb;

        const Cycles load = dram.streamCycles(
            static_cast<Bytes>(qkv_bytes + mask_bytes + spill));
        const Cycles store = dram.streamCycles(
            static_cast<Bytes>(out_bytes + spill));

        const std::vector<sim::TileCost> tiles = {
            {load, attn_compute + softmax, store},
        };
        const Cycles layer_total = sim::doubleBufferedCycles(tiles) +
                                   pred_cycles + pack_cycles;

        total += layer_total;
        compute += attn_compute + softmax;
        preprocess += pred_cycles + pack_cycles;
        macs += static_cast<MacOps>(pred_macs + sddmm_macs +
                                    spmm_macs);
        rs.dramRead +=
            static_cast<Bytes>(qkv_bytes + mask_bytes + spill);
        rs.dramWrite += static_cast<Bytes>(out_bytes + spill);

        if (end_to_end) {
            DensePhaseParams p;
            p.totalMacs = total_macs;
            p.gemmEff = 0.9;
            p.elemBytes = cfg_.elemBytes;
            p.elwiseLanes = cfg_.softmaxLanes;
            const DensePhaseStats d = simulateDenseBlock(
                s, mlpRatioOfLayer(plan.model, l), dram, p);
            total += d.total;
            compute += d.compute;
            macs += d.macs;
            rs.dramRead += d.dramRead;
            rs.dramWrite += d.dramWrite;
        }
    }

    if (end_to_end && plan.model.stemFlops > 0.0) {
        const auto stem_macs =
            static_cast<MacOps>(plan.model.stemFlops / 2.0);
        const Cycles stem = static_cast<Cycles>(std::ceil(
            static_cast<double>(ceilDiv(stem_macs, total_macs)) /
            0.9));
        total += stem;
        compute += stem;
        macs += stem_macs;
    }

    rs.cycles = total;
    rs.seconds = cyclesToSeconds(total, cfg_.freqGhz);
    rs.computeSeconds = cyclesToSeconds(compute, cfg_.freqGhz);
    rs.preprocessSeconds = cyclesToSeconds(preprocess, cfg_.freqGhz);
    rs.dataMoveSeconds =
        rs.seconds - rs.computeSeconds - rs.preprocessSeconds;
    rs.macs = macs;
    rs.sramRead = static_cast<Bytes>(
        static_cast<double>(macs) * 2.0 * eb / 4.0);
    rs.sramWrite =
        static_cast<Bytes>(static_cast<double>(macs) * eb / 8.0);

    const sim::EnergyModel em(cfg_.energy);
    rs.energy = em.compute(macs, rs.sramRead, rs.sramWrite,
                           rs.dramTotal(), total);
    rs.utilization =
        total ? static_cast<double>(macs) /
                    (static_cast<double>(total) * total_macs)
              : 0.0;
    return rs;
}

RunStats
SangerAccelerator::runAttention(const core::ModelPlan &plan) const
{
    return run(plan, /*end_to_end=*/false);
}

RunStats
SangerAccelerator::runEndToEnd(const core::ModelPlan &plan) const
{
    return run(plan, /*end_to_end=*/true);
}

} // namespace vitcod::accel
