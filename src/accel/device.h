/**
 * @file
 * Common result currency and device interface of the evaluation.
 * Every execution target — the ViTCoD accelerator, the rebuilt
 * SpAtten/Sanger baselines and the CPU/GPU/EdgeGPU platform models —
 * consumes a core::ModelPlan (each reads the parts its own execution
 * scheme needs) and returns RunStats, so benches can sweep devices
 * uniformly (paper Fig. 15/19).
 */

#ifndef VITCOD_ACCEL_DEVICE_H
#define VITCOD_ACCEL_DEVICE_H

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/pipeline.h"
#include "sim/energy.h"
#include "sim/pipeline_model.h"

namespace vitcod::accel {

/** Outcome of one simulated run. */
struct RunStats
{
    std::string device;
    std::string model;

    /** Wall-clock latency; the universal comparison unit. */
    Seconds seconds = 0.0;

    /** Core cycles (0 for platform models, which work in seconds). */
    Cycles cycles = 0;

    /** @name Latency decomposition (Fig. 19). Sums to ~seconds.
     *  computeSeconds counts cycles where the datapath bounds
     *  progress, dataMoveSeconds counts exposed (non-overlapped)
     *  memory cycles, preprocessSeconds counts mask
     *  prediction/packing work.
     *  @{ */
    Seconds computeSeconds = 0.0;
    Seconds dataMoveSeconds = 0.0;
    Seconds preprocessSeconds = 0.0;
    /** @} */

    MacOps macs = 0;
    Bytes dramRead = 0;
    Bytes dramWrite = 0;
    Bytes sramRead = 0;
    Bytes sramWrite = 0;

    sim::EnergyBreakdown energy;

    /** MAC-array utilization where meaningful (else 0). */
    double utilization = 0.0;

    /** Per-stage busy/stall/idle cycle accounting and FIFO high
     *  waters; only populated by runs priced under
     *  sim::SimMode::Pipelined (zero otherwise). */
    sim::PipelineStats pipeline;

    /** Total DRAM traffic. */
    Bytes dramTotal() const { return dramRead + dramWrite; }

    /** Total energy in joules. */
    double energyJoules() const { return energy.totalPj() * 1e-12; }

    /** Aggregate another run (phase or layer) into this one. */
    RunStats &operator+=(const RunStats &o);
};

/**
 * Execution target interface. Runs are const: a Device is an
 * immutable execution model of its configuration, so one instance
 * may be shared by concurrent callers (the serving runtime's worker
 * pool relies on this re-entrancy).
 */
class Device
{
  public:
    virtual ~Device() = default;

    /** Display name ("CPU", "Sanger", "ViTCoD", ...). */
    virtual std::string name() const = 0;

    /**
     * Simulate only the core attention workload — SDDMM, softmax and
     * SpMM over all layers/heads (paper: "core attention speedups").
     */
    virtual RunStats runAttention(const core::ModelPlan &plan) const = 0;

    /**
     * Simulate a full inference pass: attention plus Q/K/V
     * generation, projections, MLPs, LayerNorms and the stem.
     */
    virtual RunStats runEndToEnd(const core::ModelPlan &plan) const = 0;
};

/**
 * The paper's five baselines plus ViTCoD, in Fig. 15 order:
 * CPU, EdgeGPU, GPU, SpAtten, Sanger, ViTCoD.
 */
std::vector<std::unique_ptr<Device>> makeAllDevices();

} // namespace vitcod::accel

#endif // VITCOD_ACCEL_DEVICE_H
