/**
 * @file
 * Cycle-level simulator of the ViTCoD accelerator (paper Sec. V):
 *
 *  - Two-pronged micro-architecture: a *denser engine* processes the
 *    global-token columns (plus all dense GEMMs) and a *sparser
 *    engine* walks CSC-indexed nonzeros; MAC lines are allocated
 *    between them proportionally to the statically-known workload
 *    split (Sec. V-B1).
 *  - K-stationary SDDMM dataflow with inter-PE accumulation,
 *    output-stationary SpMM with intra-PE accumulation (Fig. 13),
 *    with a reconfiguration event between the phases.
 *  - On-chip encoder/decoder engines exploit the AE module: Q/K
 *    travel compressed (c/h of their size); decoding overlaps the
 *    DRAM streams, encoding overlaps Q/K/V generation (Sec. V-B2).
 *  - Query-based Q forwarding: while the denser engine streams every
 *    Q row for its global columns, the sparser engine snoops that
 *    buffer instead of re-fetching from DRAM. Plans without global
 *    tokens (the pruning-only ablation) lose the forwarding and pay
 *    for gathers, modeled with an exact LRU walk of the CSC stream.
 *  - Memory system: 76.8 GB/s DDR4 behind burst quantization; SRAM
 *    budgets of the paper's 320 KB floorplan; attention maps that
 *    outgrow the S buffer spill to DRAM.
 */

#ifndef VITCOD_ACCEL_VITCOD_ACCEL_H
#define VITCOD_ACCEL_VITCOD_ACCEL_H

#include <string>
#include <vector>

#include "accel/device.h"
#include "core/schedule/builder.h"
#include "core/schedule/schedule.h"
#include "sim/dram.h"
#include "sim/energy.h"
#include "sim/mac_array.h"
#include "sim/pipeline_model.h"

namespace vitcod::accel {

/** Hardware configuration (defaults = paper Sec. VI-A). */
struct ViTCoDConfig
{
    std::string name = "ViTCoD";

    sim::MacArrayConfig macArray{64, 8}; //!< 512 MACs
    double freqGhz = 0.5;
    sim::DramConfig dram{};              //!< 76.8 GB/s DDR4-2400
    sim::EnergyConfig energy{};

    /** @name SRAM budgets (paper: 320 KB total)
     *  @{ */
    Bytes qkvBufBytes = 128 * 1024; //!< Q/K/S/V or input buffer
    Bytes idxBufBytes = 20 * 1024;  //!< CSC index buffer
    Bytes outBufBytes = 108 * 1024; //!< output buffer
    Bytes weightBufBytes = 64 * 1024;
    /** S working set allowed before spilling to DRAM. */
    Bytes sBufferBytes = 96 * 1024;
    /** @} */

    size_t elemBytes = 2;  //!< activation/weight element size
    size_t indexBytes = 1; //!< CSC row index size

    /** Exponent/normalize lanes per engine (softmax unit). */
    size_t softmaxLanesPerEngine = 16;

    /** Pipeline overhead per sparser-engine column (index decode). */
    Cycles colOverheadCycles = 2;

    /** Cycles to switch a line between inter-/intra-PE accumulation. */
    Cycles reconfigCycles = 16;

    /**
     * Dedicated MAC lines of the on-chip encoder/decoder engines
     * (paper Fig. 12/16: the en/decoders have their own MAC lines,
     * visible as a separate block in the floorplan). They run in
     * parallel with the denser/sparser engines; their MACs are
     * charged to the energy model like any other.
     */
    size_t aeLines = 16;

    /**
     * Decode throughput multiplier: the AE works on an 8-bit
     * quantized compressed representation, so its MAC units are
     * dual-pumped relative to the 16-bit main datapath.
     */
    double aeDecodeRate = 2.0;

    /** Efficiency of dense streaming on the denser engine. */
    double denseEff = 0.95;

    /** Efficiency of the reused array on GEMM (proj/MLP) phases. */
    double gemmEff = 0.90;

    /**
     * Static sparser-engine share of the MAC lines in (0, 1) —
     * the denser/sparser PE-split axis the design-space explorer
     * (src/dse/) sweeps. 0 (default) keeps the dynamic
     * workload-proportional allocation of paper Sec. V-B1.
     */
    double sparserLineFrac = 0.0;

    /** @name Feature toggles (ablations)
     *  @{ */
    bool twoPronged = true;      //!< false: single monolithic engine
    bool enableAeEngines = true; //!< false: Q/K move uncompressed
    /**
     * NLP mode (paper Sec. VI-B "Discussion of NLP Models"): charge
     * a Sanger-style on-the-fly mask-prediction pass per layer.
     */
    bool dynamicMaskPrediction = false;
    /** Low-precision factor of the prediction pass (4-bit ~ 1/4). */
    double predictionCostFactor = 0.25;
    /** @} */

    /**
     * Knobs of the event-driven pipelined mode (FIFO depths, chunk
     * granularity, per-stage latency adders; see
     * sim/pipeline_model.h and docs/SIMULATOR.md). Pricing-only:
     * they never change the static schedule, so the DSE explorer
     * sweeps them against memoized schedules for free.
     */
    sim::PipelineConfig pipeline;
};

/** Per-layer attention phase detail, exposed for tests/benches. */
struct LayerAttentionStats
{
    Cycles total = 0;
    Cycles sddmmCompute = 0;
    Cycles softmaxCompute = 0;
    Cycles spmmCompute = 0;
    Cycles exposedMemory = 0;  //!< total - sum of compute phases
    Cycles prediction = 0;     //!< dynamic-mask NLP mode only
    /** Engine workload: the denser region is stored/processed
     *  densely, so this counts all n x N_gt entries plus the
     *  sparser nonzeros (what the datapath streams and energy
     *  pays for). */
    MacOps attentionMacs = 0;
    /** Mask-nonzero subset of attentionMacs: what a value-level
     *  execution (ModelExecutor) performs. The difference is the
     *  denser region's zero padding. */
    MacOps executedMacs = 0;
    MacOps decodeMacs = 0;
    Bytes dramRead = 0;
    Bytes dramWrite = 0;
    Bytes sddmmRead = 0; //!< Q/K/index bytes of the SDDMM phase
    size_t denserLines = 0;
    size_t sparserLines = 0;
    uint64_t qGatherMisses = 0; //!< sparser-engine Q misses (no fwd)
    /** Per-stage busy/stall/idle accounting of the layer; only
     *  populated when priced under SimMode::Pipelined. */
    sim::PipelineStats pipe;
};

/** @name Static schedule math
 * The derivations themselves live in core::schedule (the Schedule
 * IR owns the static schedule); re-exported here for the accel API
 * and its existing tests.
 * @{ */
using core::schedule::allocateEngineLines;
using core::schedule::sparserEngineCycles;
using core::schedule::sparserHeadCycles;
/** @} */

/**
 * The schedule-relevant subset of @p cfg as the Schedule IR's
 * hardware parameters (DRAM/energy pricing knobs stay behind in the
 * accelerator config — they do not change the static schedule).
 */
core::schedule::HardwareParams
scheduleParams(const ViTCoDConfig &cfg);

/** The ViTCoD accelerator simulator. */
class ViTCoDAccelerator : public Device
{
  public:
    explicit ViTCoDAccelerator(ViTCoDConfig cfg = {});

    const ViTCoDConfig &config() const { return cfg_; }

    std::string name() const override { return cfg_.name; }

    RunStats runAttention(const core::ModelPlan &plan) const override;
    RunStats runEndToEnd(const core::ModelPlan &plan) const override;

    /**
     * Price a prebuilt schedule (attention-only or end-to-end per
     * its endToEnd flag). The schedule must have been built with
     * scheduleParams(config()) — the static decisions baked into it
     * are only meaningful for the hardware they were derived for.
     * @param mode Analytic prices with the closed-form
     *   double-buffering recurrence; Pipelined plays the same work
     *   items through the event-driven stage graph
     *   (sim/pipeline_model.h), surfacing stall/backpressure cycles
     *   in RunStats::pipeline.
     */
    RunStats runSchedule(const core::schedule::ModelSchedule &sched,
                         sim::SimMode mode =
                             sim::SimMode::Analytic) const;

    /** Detailed simulation of one layer's attention. */
    LayerAttentionStats
    simulateAttentionLayer(const core::ModelPlan &plan,
                           size_t layer) const;

    /** Price one layer's attention schedule. */
    LayerAttentionStats priceAttentionLayer(
        const core::schedule::LayerSchedule &ls,
        sim::SimMode mode = sim::SimMode::Analytic) const;

    /**
     * Exact LRU simulation of sparser-engine Q-row residency over a
     * CSC nonzero stream: returns the number of DRAM gathers needed
     * with an on-chip window of @p window_rows Q rows. Forwarded
     * from core::schedule for API compatibility.
     */
    static uint64_t lruQMisses(const sparse::Csc &csc,
                               size_t window_rows);

  private:
    /** Price a whole schedule into RunStats. */
    RunStats finalize(const core::schedule::ModelSchedule &sched,
                      sim::SimMode mode) const;

    ViTCoDConfig cfg_;
};

} // namespace vitcod::accel

#endif // VITCOD_ACCEL_VITCOD_ACCEL_H
