/**
 * @file
 * Rebuilt SpAtten baseline (Wang et al., HPCA 2021) sized to the
 * same MAC/SRAM budget as ViTCoD (paper Sec. VI-A: "we implement and
 * simulate both of them on ViTs with similar hardware configurations
 * and areas"). SpAtten accelerates attention through *cascade token
 * and head pruning* with on-chip top-k engines and progressive
 * quantization:
 *
 *  - token keep-ratio shrinks linearly layer by layer (cascade) to a
 *    final keep ratio; pruned tokens leave the whole pipeline, so
 *    later-layer GEMMs shrink too;
 *  - attention over the surviving tokens is computed *densely*
 *    (row-stationary with streaming softmax — no S matrix is ever
 *    stored, hence no spill), which is exactly why the paper labels
 *    it coarse-grained with a low achievable sparsity on ViTs;
 *  - a top-k engine ranks token importance every layer;
 *  - progressive quantization trims DRAM traffic.
 *
 * On ViTs the accuracy-preserving keep ratios are high (ViT patches
 * lack the redundancy of NLP stop-words — the same observation that
 * motivates ViTCoD's fixed-mask route), so the default operating
 * point prunes mildly.
 */

#ifndef VITCOD_ACCEL_SPATTEN_H
#define VITCOD_ACCEL_SPATTEN_H

#include "accel/device.h"
#include "sim/dram.h"
#include "sim/energy.h"
#include "sim/mac_array.h"

namespace vitcod::accel {

/** SpAtten operating point and hardware shape. */
struct SpAttenConfig
{
    std::string name = "SpAtten";

    sim::MacArrayConfig macArray{64, 8};
    double freqGhz = 0.5;
    sim::DramConfig dram{};
    sim::EnergyConfig energy{};

    size_t elemBytes = 2;

    /** Cumulative token keep ratio reached at the last layer. */
    double tokenKeepFinal = 0.97;

    /** Cumulative head keep ratio reached at the last layer. */
    double headKeepFinal = 0.96;

    /** Top-k engine cost per surviving token per layer. */
    Cycles topkCyclesPerToken = 12;

    /** Dense attention efficiency on the array. */
    double denseEff = 0.75;

    /** DRAM traffic factor from progressive quantization. */
    double quantTrafficFactor = 0.8;

    size_t softmaxLanes = 32;
};

/** Cycle-level SpAtten model. */
class SpAttenAccelerator : public Device
{
  public:
    explicit SpAttenAccelerator(SpAttenConfig cfg = {});

    const SpAttenConfig &config() const { return cfg_; }

    std::string name() const override { return cfg_.name; }

    RunStats runAttention(const core::ModelPlan &plan) const override;
    RunStats runEndToEnd(const core::ModelPlan &plan) const override;

    /** Token keep ratio in effect at layer @p l of @p layers. */
    double tokenKeepAt(size_t l, size_t layers) const;

    /** Head keep ratio in effect at layer @p l of @p layers. */
    double headKeepAt(size_t l, size_t layers) const;

  private:
    RunStats run(const core::ModelPlan &plan, bool end_to_end) const;

    SpAttenConfig cfg_;
};

} // namespace vitcod::accel

#endif // VITCOD_ACCEL_SPATTEN_H
