#include "accel/functional.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/kernels.h"
#include "linalg/sparse_kernels.h"

namespace vitcod::accel {

FunctionalReport
verifyPlanFunctional(const core::ModelPlan &plan,
                     const linalg::engine::KernelEngine &eng,
                     size_t max_heads, uint64_t seed)
{
    FunctionalReport rep;
    Rng rng(seed);

    for (const core::HeadPlan &hp : plan.heads) {
        if (max_heads > 0 && rep.headsChecked >= max_heads)
            break;
        const size_t n = hp.plan.tokens;
        const size_t dk = plan.model.stageForLayer(hp.layer).headDim;
        const auto scale = static_cast<float>(
            1.0 / std::sqrt(static_cast<double>(dk)));

        const auto q = linalg::Matrix::randomNormal(n, dk, rng);
        const auto k = linalg::Matrix::randomNormal(n, dk, rng);
        const auto v = linalg::Matrix::randomNormal(n, dk, rng);

        // The head plan's scheduled order: permuted tokens, pruned
        // mask. Engine vs scalar oracle on identical inputs.
        const auto qp = linalg::permuteRows(q, hp.plan.perm);
        const auto kp = linalg::permuteRows(k, hp.plan.perm);
        const auto vp = linalg::permuteRows(v, hp.plan.perm);

        const linalg::Matrix engine_out =
            eng.sparseAttention(qp, kp, vp, hp.plan.mask, scale);
        const linalg::Matrix oracle_out = linalg::spmm(
            linalg::maskedSoftmaxRows(
                linalg::sddmm(qp, kp, hp.plan.mask, scale)),
            vp);
        rep.maxKernelDrift =
            std::max(rep.maxKernelDrift,
                     linalg::maxAbsDiff(engine_out, oracle_out));

        // Un-permute and compare against dense attention on the
        // original token order: the pruning drift.
        linalg::Matrix sparse_out(n, dk);
        for (size_t i = 0; i < n; ++i)
            for (size_t c = 0; c < dk; ++c)
                sparse_out(hp.plan.perm[i], c) = engine_out(i, c);
        sparse::BitMask full(n, n);
        for (size_t r = 0; r < n; ++r)
            for (size_t c = 0; c < n; ++c)
                full.set(r, c, true);
        const linalg::Matrix dense_out =
            linalg::denseMaskedAttention(q, k, v, full, scale);
        rep.maxPruningDrift =
            std::max(rep.maxPruningDrift,
                     linalg::maxAbsDiff(sparse_out, dense_out));

        ++rep.headsChecked;
    }
    return rep;
}

} // namespace vitcod::accel
