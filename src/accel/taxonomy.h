/**
 * @file
 * The sparse-accelerator taxonomy of the paper's Table I: seven
 * representative designs classified by application field, workload,
 * dataflow, sparsity pattern, regularity, traffic, bandwidth need,
 * sparsity regime and whether they co-design algorithm and hardware.
 */

#ifndef VITCOD_ACCEL_TAXONOMY_H
#define VITCOD_ACCEL_TAXONOMY_H

#include <string>
#include <vector>

namespace vitcod::accel {

/** One row of Table I. */
struct AcceleratorTraits
{
    std::string name;
    std::string applicationField;
    std::string workloads;
    std::string dataflow;
    std::string sparsityPattern;
    std::string patternRegularity;
    std::string offChipTraffic;
    std::string bandwidthRequirement;
    std::string sparsity;
    bool algoHwCoDesign = false;
};

/** All seven rows of Table I, in the paper's column order. */
std::vector<AcceleratorTraits> taxonomyTable();

} // namespace vitcod::accel

#endif // VITCOD_ACCEL_TAXONOMY_H
