/**
 * @file
 * Roofline-plus-dispatch models of the paper's general computing
 * platforms (substitution S4 in DESIGN.md): CPU (Intel Xeon Gold
 * 6230R), GPU (NVIDIA RTX 2080Ti), EdgeGPU (Jetson Xavier NX for the
 * speedup comparisons, Jetson TX2 for the Fig. 4 latency
 * breakdowns). Each kernel's time is
 *
 *   max(flops / (peak * eff), bytes / (bw * memEff)) + dispatch,
 *
 * where the dispatch term models framework/kernel-launch overhead —
 * the dominant cost for ViT-sized attention at batch 1, and the
 * reason measured platform latencies dwarf their rooflines (the
 * paper's own Fig. 4 bars are eager-mode PyTorch measurements).
 * General platforms run attention *densely*: unstructured 90%
 * sparsity is not exploitable by cuBLAS/oneDNN-class kernels
 * (sparseExploit = 0 by default).
 */

#ifndef VITCOD_ACCEL_PLATFORM_H
#define VITCOD_ACCEL_PLATFORM_H

#include "accel/device.h"
#include "model/flops.h"

namespace vitcod::accel {

/** Platform description and efficiency calibration. */
struct PlatformConfig
{
    std::string name = "CPU";

    double peakGflops = 1000.0;   //!< datasheet dense peak
    double bandwidthGBps = 100.0; //!< datasheet memory bandwidth

    /** Achieved fraction of peak on attention-size matmuls. */
    double attnMatmulEff = 0.02;
    /** Achieved fraction of peak on projection/MLP GEMMs. */
    double gemmEff = 0.30;
    /** Achieved fraction of bandwidth on elementwise kernels. */
    double memEff = 0.60;

    /** Per-kernel dispatch/launch overhead (seconds). */
    double dispatchSeconds = 30e-6;
    /** Unfused eager-mode kernels per attention layer. */
    size_t kernelsPerAttnLayer = 24;
    /** Kernels per block for the dense phases (proj/MLP/LN). */
    size_t kernelsPerBlockDense = 10;

    double powerWatts = 100.0;
    size_t elemBytes = 4;

    /** Fraction of attention sparsity convertible into speedup. */
    double sparseExploit = 0.0;
};

/** Roofline + dispatch execution model of a general platform. */
class PlatformModel : public Device
{
  public:
    explicit PlatformModel(PlatformConfig cfg);

    const PlatformConfig &config() const { return cfg_; }

    std::string name() const override { return cfg_.name; }

    RunStats runAttention(const core::ModelPlan &plan) const override;
    RunStats runEndToEnd(const core::ModelPlan &plan) const override;

    /**
     * Latency of one op-group of the model at @p sparsity — used by
     * the Fig. 4 breakdown bench.
     */
    Seconds opGroupSeconds(const model::VitModelConfig &model,
                           model::OpGroup group,
                           double attn_sparsity = 0.0) const;

  private:
    RunStats run(const core::ModelPlan &plan, bool end_to_end) const;

    /** Roofline time of one kernel (no dispatch). */
    Seconds kernelSeconds(double flops, double bytes,
                          double eff) const;

    PlatformConfig cfg_;
};

/** @name Platform presets (paper Sec. VI-A)
 *  @{ */
PlatformConfig cpuXeon6230R();
PlatformConfig gpu2080Ti();
PlatformConfig edgeGpuXavierNX();
PlatformConfig edgeGpuTx2();
/** @} */

} // namespace vitcod::accel

#endif // VITCOD_ACCEL_PLATFORM_H
