/**
 * @file
 * Functional (value-level) verification of accelerator plans. The
 * cycle simulators assume a head's scheduled execution — permuted
 * Q/K/V, fixed mask, SDDMM -> masked softmax -> SpMM — computes the
 * same values the golden kernels define. This module checks exactly
 * that, per head, through the optimized KernelEngine, so a single
 * call certifies both the plan (mask/permutation consistency) and
 * the engine's kernels against the scalar oracle before a deployment
 * trusts either.
 */

#ifndef VITCOD_ACCEL_FUNCTIONAL_H
#define VITCOD_ACCEL_FUNCTIONAL_H

#include <cstddef>

#include "core/pipeline.h"
#include "linalg/engine/engine.h"

namespace vitcod::accel {

/** Outcome of a functional verification sweep over one ModelPlan. */
struct FunctionalReport
{
    size_t headsChecked = 0;

    /**
     * Max |engine - scalar oracle| over all heads, both paths run on
     * the *pruned* mask: pure kernel disagreement, pruning excluded.
     */
    double maxKernelDrift = 0.0;

    /**
     * Max |sparse plan - dense attention| over all heads: the
     * pruning-induced drift the finetuning step absorbs.
     */
    double maxPruningDrift = 0.0;

    /** kernel drift below @p tol for every head? */
    bool kernelsMatch(double tol) const { return maxKernelDrift < tol; }
};

/**
 * Execute every head plan of @p plan on deterministic synthetic
 * Q/K/V through @p eng and through the scalar golden kernels,
 * recording the worst disagreement. Deterministic in (plan, seed).
 *
 * @param max_heads Cap on heads checked (0 = all); verification is
 *        O(heads * nnz * d).
 */
FunctionalReport
verifyPlanFunctional(const core::ModelPlan &plan,
                     const linalg::engine::KernelEngine &eng,
                     size_t max_heads = 0, uint64_t seed = 2026);

} // namespace vitcod::accel

#endif // VITCOD_ACCEL_FUNCTIONAL_H
