/**
 * @file
 * Dense binary mask over an n_rows x n_cols attention map. This is
 * the exchange format between the split-and-conquer algorithm (which
 * produces fixed masks, paper Sec. IV-B) and the accelerator
 * simulators (which consume per-column workloads).
 */

#ifndef VITCOD_SPARSE_BITMASK_H
#define VITCOD_SPARSE_BITMASK_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vitcod::sparse {

/**
 * Row-major dense boolean matrix with population-count helpers.
 * Storage is one byte per element: masks here are at most a few
 * hundred square (n = 197 tokens), so compactness is irrelevant and
 * byte access keeps the hot loops branch-light.
 */
class BitMask
{
  public:
    /** Empty (0x0) mask; useful as a not-yet-computed placeholder. */
    BitMask() = default;

    /** An all-zero mask of the given shape. */
    BitMask(size_t rows, size_t cols);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Element accessor. */
    bool get(size_t r, size_t c) const { return bits_[r * cols_ + c]; }

    /** Element mutator. */
    void set(size_t r, size_t c, bool v) { bits_[r * cols_ + c] = v; }

    /**
     * Raw row-major byte storage (one byte per element, rows*cols
     * long). For bulk scans — hashing, memcmp-style comparison —
     * where per-element get() calls would dominate.
     */
    const uint8_t *data() const { return bits_.data(); }

    /** Number of set bits. */
    size_t nnz() const;

    /** Set bits in row @p r. */
    size_t nnzInRow(size_t r) const;

    /** Set bits in column @p c. */
    size_t nnzInCol(size_t c) const;

    /** nnz / (rows*cols). */
    double density() const;

    /** 1 - density. */
    double sparsity() const { return 1.0 - density(); }

    /**
     * Apply one permutation to rows and columns simultaneously
     * (token relabeling): result(r, c) = old(perm[r], perm[c]).
     * @pre perm is a bijection on [0, rows) and rows == cols.
     */
    BitMask permuteSymmetric(const std::vector<uint32_t> &perm) const;

    /** Permute columns only: result(r, c) = old(r, perm[c]). */
    BitMask permuteCols(const std::vector<uint32_t> &perm) const;

    /** Permute rows only: result(r, c) = old(perm[r], c). */
    BitMask permuteRows(const std::vector<uint32_t> &perm) const;

    /** Column-range slice [c0, c1). */
    BitMask sliceCols(size_t c0, size_t c1) const;

    /** Logical OR with another mask of identical shape. */
    BitMask operator|(const BitMask &other) const;

    /** Logical AND with another mask of identical shape. */
    BitMask operator&(const BitMask &other) const;

    bool operator==(const BitMask &other) const = default;

    /**
     * Fraction of set bits with |row - col| <= @p band: measures the
     * diagonal concentration the paper's Fig. 2 shows.
     */
    double diagonalFraction(size_t band) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<uint8_t> bits_;
};

} // namespace vitcod::sparse

#endif // VITCOD_SPARSE_BITMASK_H
