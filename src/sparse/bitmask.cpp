#include "bitmask.h"

#include <cstdlib>

#include "common/logging.h"

namespace vitcod::sparse {

BitMask::BitMask(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), bits_(rows * cols, 0)
{
    VITCOD_ASSERT(rows > 0 && cols > 0, "mask must be non-empty");
}

size_t
BitMask::nnz() const
{
    size_t n = 0;
    for (uint8_t b : bits_)
        n += b;
    return n;
}

size_t
BitMask::nnzInRow(size_t r) const
{
    VITCOD_ASSERT(r < rows_, "row out of range");
    size_t n = 0;
    for (size_t c = 0; c < cols_; ++c)
        n += bits_[r * cols_ + c];
    return n;
}

size_t
BitMask::nnzInCol(size_t c) const
{
    VITCOD_ASSERT(c < cols_, "col out of range");
    size_t n = 0;
    for (size_t r = 0; r < rows_; ++r)
        n += bits_[r * cols_ + c];
    return n;
}

double
BitMask::density() const
{
    return static_cast<double>(nnz()) /
           static_cast<double>(rows_ * cols_);
}

BitMask
BitMask::permuteSymmetric(const std::vector<uint32_t> &perm) const
{
    VITCOD_ASSERT(rows_ == cols_, "symmetric permute needs square mask");
    VITCOD_ASSERT(perm.size() == rows_, "perm size mismatch");
    BitMask out(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out.set(r, c, get(perm[r], perm[c]));
    return out;
}

BitMask
BitMask::permuteCols(const std::vector<uint32_t> &perm) const
{
    VITCOD_ASSERT(perm.size() == cols_, "perm size mismatch");
    BitMask out(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out.set(r, c, get(r, perm[c]));
    return out;
}

BitMask
BitMask::permuteRows(const std::vector<uint32_t> &perm) const
{
    VITCOD_ASSERT(perm.size() == rows_, "perm size mismatch");
    BitMask out(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out.set(r, c, get(perm[r], c));
    return out;
}

BitMask
BitMask::sliceCols(size_t c0, size_t c1) const
{
    VITCOD_ASSERT(c0 < c1 && c1 <= cols_, "bad column slice");
    BitMask out(rows_, c1 - c0);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = c0; c < c1; ++c)
            out.set(r, c - c0, get(r, c));
    return out;
}

BitMask
BitMask::operator|(const BitMask &other) const
{
    VITCOD_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                  "mask shape mismatch");
    BitMask out(rows_, cols_);
    for (size_t i = 0; i < bits_.size(); ++i)
        out.bits_[i] = bits_[i] | other.bits_[i];
    return out;
}

BitMask
BitMask::operator&(const BitMask &other) const
{
    VITCOD_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                  "mask shape mismatch");
    BitMask out(rows_, cols_);
    for (size_t i = 0; i < bits_.size(); ++i)
        out.bits_[i] = bits_[i] & other.bits_[i];
    return out;
}

double
BitMask::diagonalFraction(size_t band) const
{
    size_t on_diag = 0;
    size_t total = 0;
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t c = 0; c < cols_; ++c) {
            if (!get(r, c))
                continue;
            ++total;
            const size_t d = r > c ? r - c : c - r;
            if (d <= band)
                ++on_diag;
        }
    }
    return total ? static_cast<double>(on_diag) /
                   static_cast<double>(total)
                 : 0.0;
}

} // namespace vitcod::sparse
