#include "formats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vitcod::sparse {

void
Coo::sortRowMajor()
{
    std::sort(entries.begin(), entries.end(),
              [](const CooEntry &a, const CooEntry &b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
}

void
Coo::sortColMajor()
{
    std::sort(entries.begin(), entries.end(),
              [](const CooEntry &a, const CooEntry &b) {
                  return a.col != b.col ? a.col < b.col : a.row < b.row;
              });
}

Csr
Csr::fromMask(const BitMask &mask)
{
    return fromMask(mask, [](size_t, size_t) { return 1.0f; });
}

Csr
Csr::fromMask(const BitMask &mask, const ValueFn &value_of)
{
    Csr csr;
    csr.rows_ = mask.rows();
    csr.cols_ = mask.cols();
    csr.rowPtr_.assign(1, 0);
    csr.rowPtr_.reserve(mask.rows() + 1);
    for (size_t r = 0; r < mask.rows(); ++r) {
        for (size_t c = 0; c < mask.cols(); ++c) {
            if (mask.get(r, c)) {
                csr.colIdx_.push_back(static_cast<uint32_t>(c));
                csr.values_.push_back(value_of(r, c));
            }
        }
        csr.rowPtr_.push_back(static_cast<uint32_t>(csr.colIdx_.size()));
    }
    return csr;
}

Csr
Csr::fromCoo(const Coo &coo)
{
    Csr csr;
    csr.rows_ = coo.rows;
    csr.cols_ = coo.cols;
    csr.rowPtr_.assign(coo.rows + 1, 0);
    csr.colIdx_.reserve(coo.nnz());
    csr.values_.reserve(coo.nnz());
    uint32_t prev_row = 0;
    for (const auto &e : coo.entries) {
        VITCOD_ASSERT(e.row < coo.rows && e.col < coo.cols,
                      "COO entry out of range");
        VITCOD_ASSERT(e.row >= prev_row, "COO not sorted row-major");
        prev_row = e.row;
        csr.colIdx_.push_back(e.col);
        csr.values_.push_back(e.value);
        ++csr.rowPtr_[e.row + 1];
    }
    for (size_t r = 0; r < coo.rows; ++r)
        csr.rowPtr_[r + 1] += csr.rowPtr_[r];
    csr.validate();
    return csr;
}

Csr
Csr::fromParts(size_t rows, size_t cols, std::vector<uint32_t> row_ptr,
               std::vector<uint32_t> col_idx, std::vector<float> values)
{
    Csr csr;
    csr.rows_ = rows;
    csr.cols_ = cols;
    csr.rowPtr_ = std::move(row_ptr);
    csr.colIdx_ = std::move(col_idx);
    csr.values_ = std::move(values);
    csr.validate();
    return csr;
}

BitMask
Csr::toMask() const
{
    BitMask mask(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (uint32_t i = rowPtr_[r]; i < rowPtr_[r + 1]; ++i)
            mask.set(r, colIdx_[i], true);
    return mask;
}

Coo
Csr::toCoo() const
{
    Coo coo;
    coo.rows = rows_;
    coo.cols = cols_;
    coo.entries.reserve(nnz());
    for (size_t r = 0; r < rows_; ++r)
        for (uint32_t i = rowPtr_[r]; i < rowPtr_[r + 1]; ++i)
            coo.entries.push_back({static_cast<uint32_t>(r), colIdx_[i],
                                   values_[i]});
    return coo;
}

void
Csr::validate() const
{
    VITCOD_ASSERT(rowPtr_.size() == rows_ + 1, "rowPtr size mismatch");
    VITCOD_ASSERT(rowPtr_.front() == 0, "rowPtr must start at 0");
    VITCOD_ASSERT(rowPtr_.back() == colIdx_.size(),
                  "rowPtr must end at nnz");
    VITCOD_ASSERT(values_.size() == colIdx_.size(),
                  "values/indices size mismatch");
    for (size_t r = 0; r < rows_; ++r) {
        VITCOD_ASSERT(rowPtr_[r] <= rowPtr_[r + 1],
                      "rowPtr not monotone at row ", r);
        for (uint32_t i = rowPtr_[r]; i < rowPtr_[r + 1]; ++i) {
            VITCOD_ASSERT(colIdx_[i] < cols_, "col index out of range");
            if (i > rowPtr_[r]) {
                VITCOD_ASSERT(colIdx_[i - 1] < colIdx_[i],
                              "col indices not strictly increasing");
            }
        }
    }
}

Csc
Csc::fromMask(const BitMask &mask)
{
    return fromMask(mask, [](size_t, size_t) { return 1.0f; });
}

Csc
Csc::fromMask(const BitMask &mask, const ValueFn &value_of)
{
    Csc csc;
    csc.rows_ = mask.rows();
    csc.cols_ = mask.cols();
    csc.colPtr_.assign(1, 0);
    csc.colPtr_.reserve(mask.cols() + 1);
    for (size_t c = 0; c < mask.cols(); ++c) {
        for (size_t r = 0; r < mask.rows(); ++r) {
            if (mask.get(r, c)) {
                csc.rowIdx_.push_back(static_cast<uint32_t>(r));
                csc.values_.push_back(value_of(r, c));
            }
        }
        csc.colPtr_.push_back(static_cast<uint32_t>(csc.rowIdx_.size()));
    }
    return csc;
}

Csc
Csc::fromCoo(const Coo &coo)
{
    Csc csc;
    csc.rows_ = coo.rows;
    csc.cols_ = coo.cols;
    csc.colPtr_.assign(coo.cols + 1, 0);
    csc.rowIdx_.reserve(coo.nnz());
    csc.values_.reserve(coo.nnz());
    uint32_t prev_col = 0;
    for (const auto &e : coo.entries) {
        VITCOD_ASSERT(e.row < coo.rows && e.col < coo.cols,
                      "COO entry out of range");
        VITCOD_ASSERT(e.col >= prev_col, "COO not sorted col-major");
        prev_col = e.col;
        csc.rowIdx_.push_back(e.row);
        csc.values_.push_back(e.value);
        ++csc.colPtr_[e.col + 1];
    }
    for (size_t c = 0; c < coo.cols; ++c)
        csc.colPtr_[c + 1] += csc.colPtr_[c];
    csc.validate();
    return csc;
}

Csc
Csc::fromParts(size_t rows, size_t cols, std::vector<uint32_t> col_ptr,
               std::vector<uint32_t> row_idx, std::vector<float> values)
{
    Csc csc;
    csc.rows_ = rows;
    csc.cols_ = cols;
    csc.colPtr_ = std::move(col_ptr);
    csc.rowIdx_ = std::move(row_idx);
    csc.values_ = std::move(values);
    csc.validate();
    return csc;
}

BitMask
Csc::toMask() const
{
    BitMask mask(rows_, cols_);
    for (size_t c = 0; c < cols_; ++c)
        for (uint32_t i = colPtr_[c]; i < colPtr_[c + 1]; ++i)
            mask.set(rowIdx_[i], c, true);
    return mask;
}

Coo
Csc::toCoo() const
{
    Coo coo;
    coo.rows = rows_;
    coo.cols = cols_;
    coo.entries.reserve(nnz());
    for (size_t c = 0; c < cols_; ++c)
        for (uint32_t i = colPtr_[c]; i < colPtr_[c + 1]; ++i)
            coo.entries.push_back({rowIdx_[i], static_cast<uint32_t>(c),
                                   values_[i]});
    return coo;
}

size_t
Csc::indexBytes(size_t bytes_per_index) const
{
    // One row index per nonzero plus a 2-byte column pointer per
    // column boundary.
    return nnz() * bytes_per_index + (cols_ + 1) * 2;
}

void
Csc::validate() const
{
    VITCOD_ASSERT(colPtr_.size() == cols_ + 1, "colPtr size mismatch");
    VITCOD_ASSERT(colPtr_.front() == 0, "colPtr must start at 0");
    VITCOD_ASSERT(colPtr_.back() == rowIdx_.size(),
                  "colPtr must end at nnz");
    VITCOD_ASSERT(values_.size() == rowIdx_.size(),
                  "values/indices size mismatch");
    for (size_t c = 0; c < cols_; ++c) {
        VITCOD_ASSERT(colPtr_[c] <= colPtr_[c + 1],
                      "colPtr not monotone at col ", c);
        for (uint32_t i = colPtr_[c]; i < colPtr_[c + 1]; ++i) {
            VITCOD_ASSERT(rowIdx_[i] < rows_, "row index out of range");
            if (i > colPtr_[c]) {
                VITCOD_ASSERT(rowIdx_[i - 1] < rowIdx_[i],
                              "row indices not strictly increasing");
            }
        }
    }
}

MaskProfile
profileMask(const BitMask &mask, size_t band, double dense_col_threshold,
            size_t leading_cols)
{
    MaskProfile p;
    p.rows = mask.rows();
    p.cols = mask.cols();
    p.nnz = mask.nnz();
    p.density = mask.density();
    p.diagonalFraction = mask.diagonalFraction(band);

    double sum = 0.0;
    double sum_sq = 0.0;
    for (size_t c = 0; c < mask.cols(); ++c) {
        const auto n = static_cast<double>(mask.nnzInCol(c));
        sum += n;
        sum_sq += n * n;
        if (n > dense_col_threshold * static_cast<double>(mask.rows()))
            ++p.denseColumns;
    }
    const double mean = sum / static_cast<double>(mask.cols());
    const double var =
        sum_sq / static_cast<double>(mask.cols()) - mean * mean;
    p.columnCv = mean > 0 ? std::sqrt(std::max(0.0, var)) / mean : 0.0;

    if (leading_cols > 0 && leading_cols <= mask.cols()) {
        size_t block_nnz = 0;
        for (size_t c = 0; c < leading_cols; ++c)
            block_nnz += mask.nnzInCol(c);
        p.firstBlockDensity =
            static_cast<double>(block_nnz) /
            static_cast<double>(leading_cols * mask.rows());
    }
    return p;
}

} // namespace vitcod::sparse
