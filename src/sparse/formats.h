/**
 * @file
 * Compressed sparse formats: COO, CSR and CSC. The ViTCoD sparser
 * engine pre-loads indices in CSC (paper Sec. V-B1: "a CSC data
 * format for indexing the non-zeros in the sparser areas ... better
 * matching with the adopted K-stationary dataflow, which produces
 * attention maps column by column"); CSR serves the row-wise golden
 * SpMM; COO is the neutral interchange format.
 *
 * Formats carry structure plus an optional float value per nonzero.
 * Structure-only instances (all values 1.0) represent binary masks.
 */

#ifndef VITCOD_SPARSE_FORMATS_H
#define VITCOD_SPARSE_FORMATS_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sparse/bitmask.h"

namespace vitcod::sparse {

/** One COO nonzero. */
struct CooEntry
{
    uint32_t row;
    uint32_t col;
    float value;

    bool operator==(const CooEntry &o) const = default;
};

/** Coordinate-format sparse matrix. Entries are kept sorted (row, col). */
struct Coo
{
    size_t rows = 0;
    size_t cols = 0;
    std::vector<CooEntry> entries;

    /** Number of stored nonzeros. */
    size_t nnz() const { return entries.size(); }

    /** Sort entries by (row, col); required before format conversion. */
    void sortRowMajor();

    /** Sort entries by (col, row). */
    void sortColMajor();
};

/** Value getter used when attaching values to a mask's structure. */
using ValueFn = std::function<float(size_t row, size_t col)>;

/**
 * Compressed Sparse Row. rowPtr has rows+1 entries; column indices
 * within a row are strictly increasing.
 */
class Csr
{
  public:
    Csr() = default;

    /** Build structure (values = 1.0) from a binary mask. */
    static Csr fromMask(const BitMask &mask);

    /** Build from a mask, pulling values from @p value_of. */
    static Csr fromMask(const BitMask &mask, const ValueFn &value_of);

    /** Build from sorted COO. @pre coo sorted row-major, indices valid. */
    static Csr fromCoo(const Coo &coo);

    /**
     * Adopt pre-built arrays without copying — the construction path
     * of the optimized kernel engine, which fills indices and values
     * in bulk rather than through a per-nonzero callback. Validates.
     */
    static Csr fromParts(size_t rows, size_t cols,
                         std::vector<uint32_t> row_ptr,
                         std::vector<uint32_t> col_idx,
                         std::vector<float> values);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t nnz() const { return colIdx_.size(); }

    const std::vector<uint32_t> &rowPtr() const { return rowPtr_; }
    const std::vector<uint32_t> &colIdx() const { return colIdx_; }
    const std::vector<float> &values() const { return values_; }

    /**
     * Mutable view of the stored values (structure stays fixed).
     * Lets in-place kernels (fused masked softmax) rescale a row
     * without a COO round-trip.
     */
    std::vector<float> &mutableValues() { return values_; }

    /** Nonzeros in row @p r. */
    size_t rowNnz(size_t r) const { return rowPtr_[r + 1] - rowPtr_[r]; }

    /** Recover the binary mask of this structure. */
    BitMask toMask() const;

    /** Convert to sorted COO. */
    Coo toCoo() const;

    /**
     * Validate internal consistency (monotone rowPtr, sorted in-range
     * column indices). Panics on violation; used by tests and after
     * external construction.
     */
    void validate() const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<uint32_t> rowPtr_{0};
    std::vector<uint32_t> colIdx_;
    std::vector<float> values_;
};

/**
 * Compressed Sparse Column. colPtr has cols+1 entries; row indices
 * within a column are strictly increasing. This is the index stream
 * the ViTCoD sparser engine walks while holding one K vector
 * stationary.
 */
class Csc
{
  public:
    Csc() = default;

    /** Build structure (values = 1.0) from a binary mask. */
    static Csc fromMask(const BitMask &mask);

    /** Build from a mask, pulling values from @p value_of. */
    static Csc fromMask(const BitMask &mask, const ValueFn &value_of);

    /** Build from sorted COO. @pre coo sorted col-major, indices valid. */
    static Csc fromCoo(const Coo &coo);

    /** Adopt pre-built arrays without copying. Validates. */
    static Csc fromParts(size_t rows, size_t cols,
                         std::vector<uint32_t> col_ptr,
                         std::vector<uint32_t> row_idx,
                         std::vector<float> values);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t nnz() const { return rowIdx_.size(); }

    const std::vector<uint32_t> &colPtr() const { return colPtr_; }
    const std::vector<uint32_t> &rowIdx() const { return rowIdx_; }
    const std::vector<float> &values() const { return values_; }

    /** Nonzeros in column @p c. */
    size_t colNnz(size_t c) const { return colPtr_[c + 1] - colPtr_[c]; }

    /** Recover the binary mask of this structure. */
    BitMask toMask() const;

    /** Convert to sorted (col-major) COO. */
    Coo toCoo() const;

    /**
     * Bytes needed to stream these indices on chip, assuming
     * @p bytes_per_index per row index plus one column pointer per
     * column (the accelerator's IdxBuf budget, paper: 20 KB).
     */
    size_t indexBytes(size_t bytes_per_index = 1) const;

    /** Validate internal consistency; panics on violation. */
    void validate() const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<uint32_t> colPtr_{0};
    std::vector<uint32_t> rowIdx_;
    std::vector<float> values_;
};

/** Per-structure summary used by the Fig. 8 regularity analysis. */
struct MaskProfile
{
    size_t rows = 0;
    size_t cols = 0;
    size_t nnz = 0;
    double density = 0.0;
    double diagonalFraction = 0.0;   //!< nnz within |i-j| <= band
    size_t denseColumns = 0;         //!< columns denser than threshold
    double columnCv = 0.0;           //!< coeff. of variation of col nnz
    double firstBlockDensity = 0.0;  //!< density of the leading columns
};

/**
 * Profile a mask: diagonal concentration, dense-column count and the
 * imbalance (coefficient of variation) of per-column work.
 *
 * @param mask The mask to profile.
 * @param band Diagonal half-width for diagonalFraction.
 * @param dense_col_threshold Fraction of rows above which a column
 *        counts as dense (a "global token" column).
 * @param leading_cols Width of the leading block for
 *        firstBlockDensity (0 = skip).
 */
MaskProfile profileMask(const BitMask &mask, size_t band,
                        double dense_col_threshold,
                        size_t leading_cols);

} // namespace vitcod::sparse

#endif // VITCOD_SPARSE_FORMATS_H
