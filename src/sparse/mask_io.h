/**
 * @file
 * Portable-bitmap (PBM, both ASCII P1 and binary P4) import/export
 * of binary masks, so the Fig. 2/8 attention-map structures can be
 * dumped as real images and inspected with any viewer, and so fixed
 * masks can be shipped alongside a deployed model ("the sparse
 * attention masks will remain fixed during both finetuning and
 * inference", paper Sec. IV-B).
 */

#ifndef VITCOD_SPARSE_MASK_IO_H
#define VITCOD_SPARSE_MASK_IO_H

#include <iosfwd>
#include <string>

#include "sparse/bitmask.h"

namespace vitcod::sparse {

/** PBM flavor. */
enum class PbmFormat
{
    Ascii,  //!< P1: human-readable
    Binary, //!< P4: bit-packed rows
};

/** Serialize @p mask to a PBM stream ('1' = nonzero = black). */
void writePbm(std::ostream &os, const BitMask &mask,
              PbmFormat format = PbmFormat::Binary);

/** Serialize to a file; fatal() on I/O failure. */
void writePbmFile(const std::string &path, const BitMask &mask,
                  PbmFormat format = PbmFormat::Binary);

/** Parse a PBM stream (P1 or P4, comments allowed in headers). */
BitMask readPbm(std::istream &is);

/** Parse from a file; fatal() on I/O failure. */
BitMask readPbmFile(const std::string &path);

} // namespace vitcod::sparse

#endif // VITCOD_SPARSE_MASK_IO_H
