#include "mask_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "common/logging.h"

namespace vitcod::sparse {

void
writePbm(std::ostream &os, const BitMask &mask, PbmFormat format)
{
    if (format == PbmFormat::Ascii) {
        os << "P1\n# vitcod attention mask\n"
           << mask.cols() << ' ' << mask.rows() << '\n';
        for (size_t r = 0; r < mask.rows(); ++r) {
            for (size_t c = 0; c < mask.cols(); ++c) {
                os << (mask.get(r, c) ? '1' : '0');
                os << (c + 1 == mask.cols() ? '\n' : ' ');
            }
        }
        return;
    }
    os << "P4\n" << mask.cols() << ' ' << mask.rows() << '\n';
    const size_t row_bytes = (mask.cols() + 7) / 8;
    for (size_t r = 0; r < mask.rows(); ++r) {
        for (size_t b = 0; b < row_bytes; ++b) {
            uint8_t byte = 0;
            for (size_t bit = 0; bit < 8; ++bit) {
                const size_t c = b * 8 + bit;
                if (c < mask.cols() && mask.get(r, c))
                    byte |= static_cast<uint8_t>(0x80u >> bit);
            }
            os.put(static_cast<char>(byte));
        }
    }
}

void
writePbmFile(const std::string &path, const BitMask &mask,
             PbmFormat format)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open for writing: ", path);
    writePbm(os, mask, format);
    if (!os)
        fatal("write failed: ", path);
}

namespace {

/** Read the next header token, skipping whitespace and comments. */
std::string
nextToken(std::istream &is)
{
    std::string tok;
    for (;;) {
        const int ch = is.peek();
        if (ch == EOF)
            break;
        if (std::isspace(ch)) {
            is.get();
            continue;
        }
        if (ch == '#') {
            std::string comment;
            std::getline(is, comment);
            continue;
        }
        break;
    }
    is >> tok;
    return tok;
}

} // namespace

BitMask
readPbm(std::istream &is)
{
    const std::string magic = nextToken(is);
    VITCOD_ASSERT(magic == "P1" || magic == "P4",
                  "not a PBM stream: magic '", magic, "'");
    const std::string w_tok = nextToken(is);
    const std::string h_tok = nextToken(is);
    const size_t cols = std::stoul(w_tok);
    const size_t rows = std::stoul(h_tok);
    VITCOD_ASSERT(rows > 0 && cols > 0, "empty PBM");

    BitMask mask(rows, cols);
    if (magic == "P1") {
        for (size_t r = 0; r < rows; ++r) {
            for (size_t c = 0; c < cols; ++c) {
                const std::string bit = nextToken(is);
                VITCOD_ASSERT(bit == "0" || bit == "1",
                              "bad P1 pixel '", bit, "'");
                mask.set(r, c, bit == "1");
            }
        }
        return mask;
    }
    // P4: single whitespace after height, then packed rows.
    is.get();
    const size_t row_bytes = (cols + 7) / 8;
    for (size_t r = 0; r < rows; ++r) {
        for (size_t b = 0; b < row_bytes; ++b) {
            const int byte = is.get();
            VITCOD_ASSERT(byte != EOF, "truncated P4 payload");
            for (size_t bit = 0; bit < 8; ++bit) {
                const size_t c = b * 8 + bit;
                if (c < cols)
                    mask.set(r, c,
                             (static_cast<unsigned>(byte) >>
                              (7 - bit)) &
                                 1u);
            }
        }
    }
    return mask;
}

BitMask
readPbmFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open for reading: ", path);
    return readPbm(is);
}

} // namespace vitcod::sparse
