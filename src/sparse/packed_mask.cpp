#include "packed_mask.h"

#include <bit>

#include "common/logging.h"

namespace vitcod::sparse {

PackedBitMask::PackedBitMask(size_t rows, size_t cols)
    : rows_(rows), cols_(cols)
{
    VITCOD_ASSERT(rows > 0 && cols > 0, "mask must be non-empty");
    words_.assign(rows * wordsPerRow(), 0);
}

PackedBitMask
PackedBitMask::fromMask(const BitMask &mask)
{
    PackedBitMask p(mask.rows(), mask.cols());
    for (size_t r = 0; r < mask.rows(); ++r)
        for (size_t c = 0; c < mask.cols(); ++c)
            if (mask.get(r, c))
                p.set(r, c, true);
    return p;
}

BitMask
PackedBitMask::toMask() const
{
    BitMask m(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            m.set(r, c, get(r, c));
    return m;
}

bool
PackedBitMask::get(size_t r, size_t c) const
{
    VITCOD_ASSERT(r < rows_ && c < cols_, "index out of range");
    const uint64_t word = words_[r * wordsPerRow() + c / 64];
    return (word >> (c % 64)) & 1u;
}

void
PackedBitMask::set(size_t r, size_t c, bool v)
{
    VITCOD_ASSERT(r < rows_ && c < cols_, "index out of range");
    uint64_t &word = words_[r * wordsPerRow() + c / 64];
    const uint64_t bit = uint64_t{1} << (c % 64);
    if (v)
        word |= bit;
    else
        word &= ~bit;
}

size_t
PackedBitMask::nnz() const
{
    size_t n = 0;
    for (uint64_t w : words_)
        n += static_cast<size_t>(std::popcount(w));
    return n;
}

size_t
PackedBitMask::nnzInRow(size_t r) const
{
    VITCOD_ASSERT(r < rows_, "row out of range");
    size_t n = 0;
    const size_t wpr = wordsPerRow();
    for (size_t w = 0; w < wpr; ++w)
        n += static_cast<size_t>(
            std::popcount(words_[r * wpr + w]));
    return n;
}

PackedBitMask
PackedBitMask::operator&(const PackedBitMask &o) const
{
    VITCOD_ASSERT(rows_ == o.rows_ && cols_ == o.cols_,
                  "mask shape mismatch");
    PackedBitMask out(rows_, cols_);
    for (size_t i = 0; i < words_.size(); ++i)
        out.words_[i] = words_[i] & o.words_[i];
    return out;
}

PackedBitMask
PackedBitMask::operator|(const PackedBitMask &o) const
{
    VITCOD_ASSERT(rows_ == o.rows_ && cols_ == o.cols_,
                  "mask shape mismatch");
    PackedBitMask out(rows_, cols_);
    for (size_t i = 0; i < words_.size(); ++i)
        out.words_[i] = words_[i] | o.words_[i];
    return out;
}

} // namespace vitcod::sparse
