/**
 * @file
 * Bit-packed binary mask: 64 positions per word with popcount-based
 * counting. This is the storage format the accelerator keeps fixed
 * masks in on chip (a DeiT 197x197 mask is 4.7 KiB packed vs 38 KiB
 * as bytes) and the format Sanger-style predicted masks travel in
 * (the n^2/8-byte mask traffic term). Functionally interchangeable
 * with BitMask; property tests assert the equivalence.
 */

#ifndef VITCOD_SPARSE_PACKED_MASK_H
#define VITCOD_SPARSE_PACKED_MASK_H

#include <cstdint>
#include <vector>

#include "sparse/bitmask.h"

namespace vitcod::sparse {

/** Row-major bit-packed boolean matrix. */
class PackedBitMask
{
  public:
    /** Empty (0x0). */
    PackedBitMask() = default;

    /** All-zero mask of the given shape. */
    PackedBitMask(size_t rows, size_t cols);

    /** Pack a byte-per-element mask. */
    static PackedBitMask fromMask(const BitMask &mask);

    /** Unpack to a byte-per-element mask. */
    BitMask toMask() const;

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    bool get(size_t r, size_t c) const;
    void set(size_t r, size_t c, bool v);

    /** Set bits, via popcount. */
    size_t nnz() const;

    /** Set bits in row @p r, via popcount over the row's words. */
    size_t nnzInRow(size_t r) const;

    /** Storage bytes of the packed words. */
    size_t storageBytes() const { return words_.size() * 8; }

    /** Bitwise AND of same-shape masks. */
    PackedBitMask operator&(const PackedBitMask &o) const;

    /** Bitwise OR of same-shape masks. */
    PackedBitMask operator|(const PackedBitMask &o) const;

    bool operator==(const PackedBitMask &o) const = default;

  private:
    /** Words per row (rows padded to word boundaries). */
    size_t wordsPerRow() const { return (cols_ + 63) / 64; }

    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace vitcod::sparse

#endif // VITCOD_SPARSE_PACKED_MASK_H
