/**
 * @file
 * Workload descriptions of every model the paper evaluates (Sec.
 * VI-A): DeiT-Base/Small/Tiny, LeViT-128/192/256, Strided Transformer
 * — plus a BERT-Base-like NLP encoder used by the paper's NLP
 * discussion (Sec. VI-B, "Discussion of NLP Models").
 *
 * Each model is a sequence of stages; a stage is a run of identical
 * transformer blocks (MHSA + MLP) over a fixed token count. DeiT has
 * one stage; LeViT's pyramid has three (196 -> 49 -> 16 tokens).
 * LeViT's convolutional stem is accounted as a fixed FLOPs overhead
 * (the paper: "early convolutions only account for a negligible
 * amount of FLOPs (< 7%)").
 */

#ifndef VITCOD_MODEL_VIT_CONFIG_H
#define VITCOD_MODEL_VIT_CONFIG_H

#include <cstddef>
#include <string>
#include <vector>

namespace vitcod::model {

/** Task family; selects the accuracy metric reported by benches. */
enum class Task
{
    ImageClassification, //!< ImageNet top-1 (%)
    PoseEstimation,      //!< Human3.6M MPJPE (mm), lower is better
    NlpGlue,             //!< GLUE score-style accuracy (%)
};

/** A run of identical transformer blocks over a fixed token count. */
struct StageConfig
{
    size_t layers;   //!< number of MHSA+MLP blocks
    size_t tokens;   //!< sequence length n (includes CLS if any)
    size_t heads;    //!< attention heads h
    size_t headDim;  //!< per-head embedding d_k
    size_t embedDim; //!< model width d
    size_t mlpRatio; //!< MLP hidden = mlpRatio * embedDim
};

/** A full model as a pipeline of stages. */
struct VitModelConfig
{
    std::string name;
    Task task = Task::ImageClassification;
    std::vector<StageConfig> stages;
    /** Fixed non-transformer FLOPs (conv stem, heads); "Other". */
    double stemFlops = 0.0;
    /** Published quality of the dense model (top-1 % or MPJPE mm). */
    double baselineQuality = 0.0;
    /**
     * Highest attention sparsity the ViTCoD algorithm sustains with
     * <1% quality drop (paper Sec. VI-C: 90% for DeiT, 80% for
     * LeViT). Used as each model's operating point.
     */
    double nominalSparsity = 0.9;

    /** Total transformer blocks across stages. */
    size_t totalLayers() const;

    /** Total attention heads across all blocks. */
    size_t totalHeads() const;

    /**
     * Stage containing the given global layer index (stages are a
     * pipeline of stage.layers-deep blocks). Layers past the end
     * clamp to the last stage.
     * @pre at least one stage.
     */
    const StageConfig &stageForLayer(size_t layer) const;

    /** @name Worst-case activation shapes across all stages.
     *  What a per-model BufferArena sizes its slots with, so a full
     *  forward pass touches every stage without ever growing a
     *  buffer.
     *  @{ */
    size_t maxTokens() const;    //!< max stage.tokens
    size_t maxEmbedDim() const;  //!< max stage.embedDim
    size_t maxHeadConcat() const; //!< max heads * headDim
    size_t maxMlpHidden() const; //!< max mlpRatio * embedDim
    size_t maxHeadDim() const;   //!< max stage.headDim
    /** @} */
};

/** @name Model zoo (paper Sec. VI-A)
 *  @{ */
VitModelConfig deitTiny();
VitModelConfig deitSmall();
VitModelConfig deitBase();
VitModelConfig levit128();
VitModelConfig levit192();
VitModelConfig levit256();
VitModelConfig stridedTransformer();
/** BERT-Base encoder at the given sequence length (NLP discussion). */
VitModelConfig bertBase(size_t seq_len);
/** @} */

/** The six DeiT+LeViT models used for averaged speedups. */
std::vector<VitModelConfig> coreSixModels();

/** All seven ViT models of Fig. 15 (Strided Transformer first). */
std::vector<VitModelConfig> allSevenModels();

/** Look up a model by name; fatal() on unknown names. */
VitModelConfig modelByName(const std::string &name);

} // namespace vitcod::model

#endif // VITCOD_MODEL_VIT_CONFIG_H
