#include "attention_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace vitcod::model {

AttentionMapGenerator::AttentionMapGenerator(const VitModelConfig &model,
                                             AttentionGenConfig cfg)
    : model_(model), cfg_(cfg), shapes_(attentionShapes(model))
{
    VITCOD_ASSERT(!shapes_.empty(), "model has no attention blocks");
}

size_t
AttentionMapGenerator::tokens(size_t layer) const
{
    VITCOD_ASSERT(layer < shapes_.size(), "layer out of range");
    return shapes_[layer].tokens;
}

double
AttentionMapGenerator::depthFrac(size_t layer) const
{
    if (shapes_.size() <= 1)
        return 0.0;
    return static_cast<double>(layer) /
           static_cast<double>(shapes_.size() - 1);
}

uint64_t
AttentionMapGenerator::streamSeed(size_t layer, size_t head) const
{
    SplitMix64 sm(cfg_.seed);
    uint64_t s = sm.next();
    s ^= (static_cast<uint64_t>(layer) + 1) * 0x9e3779b97f4a7c15ULL;
    s ^= (static_cast<uint64_t>(head) + 1) * 0xc2b2ae3d27d4eb4fULL;
    return SplitMix64(s).next();
}

std::vector<uint32_t>
AttentionMapGenerator::globalTokens(size_t layer, size_t head,
                                    size_t n) const
{
    const double depth = depthFrac(layer);
    const double frac = cfg_.globalFracNear +
                        (cfg_.globalFracFar - cfg_.globalFracNear) * depth;
    const auto target = std::max<size_t>(
        1, static_cast<size_t>(std::lround(frac * static_cast<double>(n))));

    // Half the pool is layer-shared (heads of one layer attend to
    // similar salient patches), the rest is head-specific.
    std::vector<uint32_t> ids;
    std::unordered_set<uint32_t> seen;
    auto push = [&](uint32_t t) {
        if (seen.insert(t).second)
            ids.push_back(t);
    };

    push(0); // CLS / first token is always global

    Rng layer_rng(streamSeed(layer, /*head=*/~0ULL & 0xffff));
    const size_t shared = target / 2;
    while (ids.size() < 1 + shared)
        push(static_cast<uint32_t>(layer_rng.uniformInt(n)));

    Rng head_rng(streamSeed(layer, head));
    while (ids.size() < 1 + target)
        push(static_cast<uint32_t>(head_rng.uniformInt(n)));

    std::sort(ids.begin(), ids.end());
    return ids;
}

linalg::Matrix
AttentionMapGenerator::generate(size_t layer, size_t head) const
{
    VITCOD_ASSERT(layer < shapes_.size(), "layer out of range");
    VITCOD_ASSERT(head < shapes_[layer].heads, "head out of range");
    const size_t n = shapes_[layer].tokens;
    const double depth = depthFrac(layer);

    const double sigma =
        std::max(0.5, (cfg_.sigmaFracNear +
                       (cfg_.sigmaFracFar - cfg_.sigmaFracNear) * depth) *
                          static_cast<double>(n));
    const double g_mass = cfg_.globalMassNear +
                          (cfg_.globalMassFar - cfg_.globalMassNear) *
                              depth;
    const double bg_mass = cfg_.backgroundMass;
    const double local_mass = std::max(0.0, 1.0 - g_mass - bg_mass);

    const std::vector<uint32_t> globals = globalTokens(layer, head, n);
    std::vector<double> g_strength(globals.size());
    Rng rng(streamSeed(layer, head) ^ 0x5afeULL);
    double g_total = 0.0;
    for (size_t i = 0; i < globals.size(); ++i) {
        // CLS column strongest; strengths decay with heavy jitter.
        const double base = (globals[i] == 0) ? 2.0 : 1.0;
        g_strength[i] = base * std::exp(rng.normal(0.0, 0.4));
        g_total += g_strength[i];
    }
    for (auto &s : g_strength)
        s /= g_total;

    std::vector<char> is_global(n, 0);
    std::vector<double> col_gmass(n, 0.0);
    for (size_t i = 0; i < globals.size(); ++i) {
        is_global[globals[i]] = 1;
        col_gmass[globals[i]] = g_strength[i];
    }

    linalg::Matrix a(n, n);
    std::vector<double> local_row(n);
    for (size_t r = 0; r < n; ++r) {
        // Component 1: locality kernel, row-normalized.
        double local_sum = 0.0;
        for (size_t c = 0; c < n; ++c) {
            const double dist = std::abs(static_cast<double>(r) -
                                         static_cast<double>(c));
            local_row[c] = std::exp(-dist / sigma);
            local_sum += local_row[c];
        }

        double row_sum = 0.0;
        for (size_t c = 0; c < n; ++c) {
            const double local = local_mass * local_row[c] / local_sum;
            const double global = g_mass * col_gmass[c];
            const double background =
                bg_mass * rng.uniform() * 2.0 / static_cast<double>(n);
            const double jitter =
                std::exp(rng.normal(0.0, cfg_.jitterSigma));
            const double v = (local + global + background) * jitter;
            a(r, c) = static_cast<float>(v);
            row_sum += v;
        }
        const auto inv = static_cast<float>(1.0 / row_sum);
        for (size_t c = 0; c < n; ++c)
            a(r, c) *= inv;
    }
    return a;
}

} // namespace vitcod::model
