#include "vit_config.h"

#include <algorithm>

#include "common/logging.h"

namespace vitcod::model {

size_t
VitModelConfig::totalLayers() const
{
    size_t n = 0;
    for (const auto &s : stages)
        n += s.layers;
    return n;
}

size_t
VitModelConfig::totalHeads() const
{
    size_t n = 0;
    for (const auto &s : stages)
        n += s.layers * s.heads;
    return n;
}

namespace {

template <typename Fn>
size_t
maxOverStages(const std::vector<StageConfig> &stages, Fn &&dim)
{
    size_t best = 0;
    for (const auto &s : stages)
        best = std::max(best, dim(s));
    return best;
}

} // namespace

size_t
VitModelConfig::maxTokens() const
{
    return maxOverStages(stages,
                         [](const StageConfig &s) { return s.tokens; });
}

size_t
VitModelConfig::maxEmbedDim() const
{
    return maxOverStages(
        stages, [](const StageConfig &s) { return s.embedDim; });
}

size_t
VitModelConfig::maxHeadConcat() const
{
    return maxOverStages(stages, [](const StageConfig &s) {
        return s.heads * s.headDim;
    });
}

size_t
VitModelConfig::maxMlpHidden() const
{
    return maxOverStages(stages, [](const StageConfig &s) {
        return s.mlpRatio * s.embedDim;
    });
}

size_t
VitModelConfig::maxHeadDim() const
{
    return maxOverStages(
        stages, [](const StageConfig &s) { return s.headDim; });
}

const StageConfig &
VitModelConfig::stageForLayer(size_t layer) const
{
    VITCOD_ASSERT(!stages.empty(), "model has no stages");
    size_t first = 0;
    for (const auto &s : stages) {
        if (layer < first + s.layers)
            return s;
        first += s.layers;
    }
    return stages.back();
}

namespace {

VitModelConfig
deit(const std::string &name, size_t heads, size_t embed,
     double accuracy)
{
    VitModelConfig m;
    m.name = name;
    m.task = Task::ImageClassification;
    // 224x224 image, 16x16 patches -> 196 tokens + CLS.
    m.stages = {{12, 197, heads, embed / heads, embed, 4}};
    m.stemFlops = 2.0 * 197 * 3 * 16 * 16 * embed; // patch projection
    m.baselineQuality = accuracy;
    m.nominalSparsity = 0.90; // paper Sec. VI-C: DeiT holds 90%
    return m;
}

VitModelConfig
levit(const std::string &name, std::vector<size_t> dims,
      std::vector<size_t> heads, size_t head_dim, double accuracy)
{
    VitModelConfig m;
    m.name = name;
    m.task = Task::ImageClassification;
    // Conv stem downsamples 224x224 to 14x14 tokens; pyramid stages
    // shrink 196 -> 49 -> 16.
    const size_t tokens[3] = {196, 49, 16};
    for (size_t s = 0; s < 3; ++s)
        m.stages.push_back({4, tokens[s], heads[s], head_dim, dims[s], 2});
    // 4-layer conv stem, ~3x3 kernels, rough published FLOPs share.
    m.stemFlops = 2.0 * 30e6 * static_cast<double>(dims[0]) / 128.0;
    m.baselineQuality = accuracy;
    m.nominalSparsity = 0.80; // paper Sec. VI-C: LeViT holds 80%
    return m;
}

} // namespace

VitModelConfig
deitTiny()
{
    return deit("DeiT-Tiny", 3, 192, 72.2);
}

VitModelConfig
deitSmall()
{
    return deit("DeiT-Small", 6, 384, 79.9);
}

VitModelConfig
deitBase()
{
    return deit("DeiT-Base", 12, 768, 81.8);
}

VitModelConfig
levit128()
{
    return levit("LeViT-128", {128, 256, 384}, {4, 8, 12}, 16, 78.6);
}

VitModelConfig
levit192()
{
    return levit("LeViT-192", {192, 288, 384}, {3, 5, 6}, 32, 80.0);
}

VitModelConfig
levit256()
{
    return levit("LeViT-256", {256, 384, 512}, {4, 6, 8}, 32, 81.6);
}

VitModelConfig
stridedTransformer()
{
    VitModelConfig m;
    m.name = "StridedTrans.";
    m.task = Task::PoseEstimation;
    // 351-frame receptive field, width 256, 8 heads; the vanilla
    // transformer encoder (3 blocks) plus the strided encoder
    // (3 blocks) are modeled as 6 blocks at full length.
    m.stages = {{6, 351, 8, 32, 256, 2}};
    m.stemFlops = 2.0 * 351 * (17 * 2) * 256; // per-frame pose embed
    m.baselineQuality = 43.7; // MPJPE (mm) on Human3.6M
    m.nominalSparsity = 0.90;
    return m;
}

VitModelConfig
bertBase(size_t seq_len)
{
    VitModelConfig m;
    m.name = "BERT-Base-n" + std::to_string(seq_len);
    m.task = Task::NlpGlue;
    m.stages = {{12, seq_len, 12, 64, 768, 4}};
    m.stemFlops = 0.0;
    m.baselineQuality = 88.9; // GLUE-MRPC accuracy (paper Sec. VI-B)
    m.nominalSparsity = 0.60; // NLP holds less static sparsity
    return m;
}

std::vector<VitModelConfig>
coreSixModels()
{
    return {deitBase(),  deitSmall(), deitTiny(),
            levit128(),  levit192(),  levit256()};
}

std::vector<VitModelConfig>
allSevenModels()
{
    return {stridedTransformer(), deitTiny(), deitSmall(), deitBase(),
            levit128(),           levit192(), levit256()};
}

VitModelConfig
modelByName(const std::string &name)
{
    for (const auto &m : allSevenModels())
        if (m.name == name)
            return m;
    if (name.rfind("BERT-Base-n", 0) == 0)
        return bertBase(std::stoul(name.substr(11)));
    fatal("unknown model name: ", name);
}

} // namespace vitcod::model
