#include "tradeoff_curves.h"

#include <algorithm>

#include "common/logging.h"

namespace vitcod::model {

double
TradeoffCurve::qualityAt(double sparsity) const
{
    VITCOD_ASSERT(!points.empty(), "empty tradeoff curve");
    if (sparsity <= points.front().sparsity)
        return points.front().quality;
    if (sparsity >= points.back().sparsity)
        return points.back().quality;
    for (size_t i = 1; i < points.size(); ++i) {
        if (sparsity <= points[i].sparsity) {
            const auto &lo = points[i - 1];
            const auto &hi = points[i];
            const double t =
                (sparsity - lo.sparsity) / (hi.sparsity - lo.sparsity);
            return lo.quality + t * (hi.quality - lo.quality);
        }
    }
    return points.back().quality;
}

std::vector<TradeoffCurve>
nlpBleuCurves()
{
    // BLEU at sparsity {10, 30, 50, 70, 90, 95}%, following the
    // IWSLT EN->DE collection in Fig. 1: graceful to ~50%, then a
    // steep collapse — the motivation for dynamic NLP masks topping
    // out near 50-70% sparsity.
    auto mk = [](const std::string &name,
                 std::vector<double> bleu) {
        const double s[] = {0.10, 0.30, 0.50, 0.70, 0.90, 0.95};
        TradeoffCurve c{name, true, {}};
        for (size_t i = 0; i < bleu.size(); ++i)
            c.points.push_back({s[i], bleu[i]});
        return c;
    };
    return {
        mk("BigBird", {34.4, 34.2, 33.8, 31.5, 26.0, 23.0}),
        mk("Sf. k-means", {34.2, 33.8, 32.5, 29.5, 25.5, 23.0}),
        mk("Reformer", {34.0, 33.5, 32.0, 29.0, 24.5, 22.0}),
        mk("Sf. quant", {34.3, 34.0, 33.0, 30.0, 25.0, 22.5}),
        mk("Routing", {33.9, 33.4, 31.8, 28.5, 24.0, 21.5}),
        mk("Longformer", {34.1, 33.2, 31.0, 27.0, 23.0, 21.0}),
    };
}

std::vector<TradeoffCurve>
vitAccuracyCurves()
{
    // Top-1 at sparsity {10, 30, 50, 70, 90, 95}% with *fixed*
    // info-pruned masks: <=1.5% drop at 90% (paper abstract).
    const double s[] = {0.10, 0.30, 0.50, 0.70, 0.90, 0.95};
    TradeoffCurve base{"DeiT-Base (InfoPruning)", false, {}};
    const double base_acc[] = {81.8, 81.8, 81.7, 81.5, 81.0, 80.3};
    TradeoffCurve small{"DeiT-Small (InfoPruning)", false, {}};
    const double small_acc[] = {79.9, 79.9, 79.8, 79.5, 78.9, 77.9};
    for (size_t i = 0; i < 6; ++i) {
        base.points.push_back({s[i], base_acc[i]});
        small.points.push_back({s[i], small_acc[i]});
    }
    return {base, small};
}

} // namespace vitcod::model
