/**
 * @file
 * Parametric quality-vs-sparsity trade-off curves regenerating the
 * paper's Fig. 1 (substitution S5 in DESIGN.md): NLP Transformers
 * with *dynamic* sparse attention lose BLEU rapidly past medium
 * sparsity, while ViTs with *fixed* masks hold accuracy to 90-95%.
 * The NLP curves encode the published IWSLT EN->DE trade-offs the
 * paper collects from [39]; the ViT curves follow the info-pruning
 * results of [19] as reported in Fig. 1.
 */

#ifndef VITCOD_MODEL_TRADEOFF_CURVES_H
#define VITCOD_MODEL_TRADEOFF_CURVES_H

#include <string>
#include <vector>

namespace vitcod::model {

/** One (sparsity, quality) sample of a published trade-off curve. */
struct TradeoffPoint
{
    double sparsity; //!< attention-map sparsity in [0, 1]
    double quality;  //!< BLEU (NLP) or top-1 accuracy % (ViT)
};

/** A named quality-vs-sparsity curve. */
struct TradeoffCurve
{
    std::string name;
    bool dynamicPattern; //!< true: input-dependent masks (NLP)
    std::vector<TradeoffPoint> points;

    /** Piecewise-linear interpolation at @p sparsity (clamped). */
    double qualityAt(double sparsity) const;
};

/** The six NLP curves of Fig. 1 (BLEU, IWSLT EN->DE). */
std::vector<TradeoffCurve> nlpBleuCurves();

/** The two ViT curves of Fig. 1 (top-1 %, info-pruned DeiT). */
std::vector<TradeoffCurve> vitAccuracyCurves();

} // namespace vitcod::model

#endif // VITCOD_MODEL_TRADEOFF_CURVES_H
