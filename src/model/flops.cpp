#include "flops.h"

#include "common/logging.h"

namespace vitcod::model {

const char *
opGroupName(OpGroup g)
{
    switch (g) {
      case OpGroup::QkvProj:
        return "QKV-Proj";
      case OpGroup::AttnMatMul:
        return "Attn-MatMul";
      case OpGroup::Reshape:
        return "Reshape";
      case OpGroup::Softmax:
        return "Softmax";
      case OpGroup::OutProj:
        return "Out-Proj";
      case OpGroup::Mlp:
        return "MLP";
      case OpGroup::LayerNorm:
        return "LayerNorm";
      case OpGroup::Other:
        return "Other";
      default:
        panic("bad OpGroup");
    }
}

double
totalFlops(const Breakdown &b)
{
    double t = 0.0;
    for (const auto &c : b)
        t += c.flops;
    return t;
}

double
totalBytes(const Breakdown &b)
{
    double t = 0.0;
    for (const auto &c : b)
        t += c.bytes;
    return t;
}

double
attentionFlops(const Breakdown &b)
{
    return groupOf(b, OpGroup::QkvProj).flops +
           groupOf(b, OpGroup::AttnMatMul).flops +
           groupOf(b, OpGroup::Softmax).flops +
           groupOf(b, OpGroup::OutProj).flops;
}

Breakdown
modelBreakdown(const VitModelConfig &cfg, double attn_sparsity,
               size_t elem_bytes)
{
    VITCOD_ASSERT(attn_sparsity >= 0.0 && attn_sparsity < 1.0,
                  "sparsity out of [0,1)");
    const double keep = 1.0 - attn_sparsity;
    const auto eb = static_cast<double>(elem_bytes);

    Breakdown b{};
    for (const auto &s : cfg.stages) {
        const auto n = static_cast<double>(s.tokens);
        const auto h = static_cast<double>(s.heads);
        const auto dk = static_cast<double>(s.headDim);
        const auto d = static_cast<double>(s.embedDim);
        const auto hidden = static_cast<double>(s.mlpRatio) * d;
        const auto layers = static_cast<double>(s.layers);
        const double hd = h * dk; // concatenated head width

        // Q/K/V projections: three d -> h*dk linear maps.
        OpCount qkv;
        qkv.flops = 2.0 * n * d * 3.0 * hd;
        qkv.bytes = (n * d + 3.0 * d * hd + 3.0 * n * hd) * eb;

        // Q.K^T (SDDMM when sparse) and S.V (SpMM when sparse).
        OpCount mm;
        mm.flops = 2.0 * h * n * n * dk * keep   // Q.K^T
                 + 2.0 * h * n * n * dk * keep;  // S.V
        mm.bytes = (2.0 * n * hd                 // Q and K
                    + h * n * n * keep           // S write
                    + h * n * n * keep           // S read
                    + n * hd                     // V
                    + n * hd) * eb;              // V' write

        // Head split before attention, concat after: pure movement.
        OpCount rs;
        rs.flops = 0.0;
        rs.bytes = 2.0 * (3.0 * n * hd) * eb;

        // Softmax: exp + accumulate + normalize per surviving score.
        OpCount sm;
        sm.flops = 5.0 * h * n * n * keep;
        sm.bytes = 2.0 * h * n * n * keep * eb;

        // Output projection h*dk -> d.
        OpCount op;
        op.flops = 2.0 * n * hd * d;
        op.bytes = (n * hd + hd * d + n * d) * eb;

        // Two-layer MLP with GELU.
        OpCount mlp;
        mlp.flops = 2.0 * n * d * hidden * 2.0 + 8.0 * n * hidden;
        mlp.bytes = (2.0 * d * hidden + n * d * 2.0 + n * hidden) * eb;

        // Two LayerNorms per block: ~5 ops/element each.
        OpCount ln;
        ln.flops = 2.0 * 5.0 * n * d;
        ln.bytes = 2.0 * 2.0 * n * d * eb;

        groupOf(b, OpGroup::QkvProj) +=
            {qkv.flops * layers, qkv.bytes * layers};
        groupOf(b, OpGroup::AttnMatMul) +=
            {mm.flops * layers, mm.bytes * layers};
        groupOf(b, OpGroup::Reshape) +=
            {rs.flops * layers, rs.bytes * layers};
        groupOf(b, OpGroup::Softmax) +=
            {sm.flops * layers, sm.bytes * layers};
        groupOf(b, OpGroup::OutProj) +=
            {op.flops * layers, op.bytes * layers};
        groupOf(b, OpGroup::Mlp) +=
            {mlp.flops * layers, mlp.bytes * layers};
        groupOf(b, OpGroup::LayerNorm) +=
            {ln.flops * layers, ln.bytes * layers};
    }

    groupOf(b, OpGroup::Other) +=
        {cfg.stemFlops, cfg.stemFlops / 4.0 * eb};
    return b;
}

std::vector<AttnShape>
attentionShapes(const VitModelConfig &cfg)
{
    std::vector<AttnShape> shapes;
    size_t idx = 0;
    for (const auto &s : cfg.stages)
        for (size_t l = 0; l < s.layers; ++l)
            shapes.push_back(
                {s.tokens, s.heads, s.headDim, s.embedDim, idx++});
    return shapes;
}

} // namespace vitcod::model
