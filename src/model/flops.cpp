#include "flops.h"

#include "common/logging.h"
#include "core/schedule/workload.h"

namespace vitcod::model {

const char *
opGroupName(OpGroup g)
{
    switch (g) {
      case OpGroup::QkvProj:
        return "QKV-Proj";
      case OpGroup::AttnMatMul:
        return "Attn-MatMul";
      case OpGroup::Reshape:
        return "Reshape";
      case OpGroup::Softmax:
        return "Softmax";
      case OpGroup::OutProj:
        return "Out-Proj";
      case OpGroup::Mlp:
        return "MLP";
      case OpGroup::LayerNorm:
        return "LayerNorm";
      case OpGroup::Other:
        return "Other";
      default:
        panic("bad OpGroup");
    }
}

double
totalFlops(const Breakdown &b)
{
    double t = 0.0;
    for (const auto &c : b)
        t += c.flops;
    return t;
}

double
totalBytes(const Breakdown &b)
{
    double t = 0.0;
    for (const auto &c : b)
        t += c.bytes;
    return t;
}

double
attentionFlops(const Breakdown &b)
{
    return groupOf(b, OpGroup::QkvProj).flops +
           groupOf(b, OpGroup::AttnMatMul).flops +
           groupOf(b, OpGroup::Softmax).flops +
           groupOf(b, OpGroup::OutProj).flops;
}

Breakdown
modelBreakdown(const VitModelConfig &cfg, double attn_sparsity,
               size_t elem_bytes)
{
    VITCOD_ASSERT(attn_sparsity >= 0.0 && attn_sparsity < 1.0,
                  "sparsity out of [0,1)");
    const double keep = 1.0 - attn_sparsity;

    // The per-block formulas are the Schedule IR's (one canonical
    // copy); this analytic view feeds them the uniform surviving
    // score count keep * h * n^2 where a built schedule would use
    // its masks' actual nonzeros.
    Breakdown b{};
    for (const auto &s : cfg.stages) {
        const core::schedule::BlockShape shape{
            s.tokens, s.heads, s.headDim, s.embedDim, s.mlpRatio};
        const double s_elems = keep *
                               static_cast<double>(s.heads) *
                               static_cast<double>(s.tokens) *
                               static_cast<double>(s.tokens);
        const Breakdown block = core::schedule::blockBreakdown(
            shape, s_elems, elem_bytes);
        const auto layers = static_cast<double>(s.layers);
        for (size_t g = 0; g < block.size(); ++g)
            b[g] += {block[g].flops * layers,
                     block[g].bytes * layers};
    }

    groupOf(b, OpGroup::Other) +=
        {cfg.stemFlops,
         cfg.stemFlops / 4.0 * static_cast<double>(elem_bytes)};
    return b;
}

std::vector<AttnShape>
attentionShapes(const VitModelConfig &cfg)
{
    std::vector<AttnShape> shapes;
    size_t idx = 0;
    for (const auto &s : cfg.stages)
        for (size_t l = 0; l < s.layers; ++l)
            shapes.push_back(
                {s.tokens, s.heads, s.headDim, s.embedDim, idx++});
    return shapes;
}

} // namespace vitcod::model
