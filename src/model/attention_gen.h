/**
 * @file
 * Synthetic averaged-attention-map generator (substitution S1 in
 * DESIGN.md). The paper extracts per-(layer, head) attention maps
 * averaged over the ImageNet training set from a pretrained model;
 * we generate maps with the same structure the paper documents
 * (Figs. 2 and 8):
 *
 *  - a diagonal locality band (adjacent patches correlate strongly),
 *    narrow in early layers and widening with depth;
 *  - a handful of "global token" columns (CLS plus salient patches)
 *    that every query attends to, more of them in deeper layers;
 *  - a thin uniform background.
 *
 * Rows are normalized to sum to one, exactly like a softmax output,
 * so Algorithm 1's information-quantity pruning applies unchanged.
 */

#ifndef VITCOD_MODEL_ATTENTION_GEN_H
#define VITCOD_MODEL_ATTENTION_GEN_H

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "model/flops.h"
#include "model/vit_config.h"

namespace vitcod::model {

/** Tunables of the statistical attention model. */
struct AttentionGenConfig
{
    uint64_t seed = 42;

    /** Locality band sigma as a fraction of n, first -> last layer. */
    double sigmaFracNear = 0.015;
    double sigmaFracFar = 0.04;

    /** Row-mass fraction carried by global columns, first -> last. */
    double globalMassNear = 0.12;
    double globalMassFar = 0.42;

    /** Row-mass fraction spread uniformly as background. */
    double backgroundMass = 0.02;

    /** Fraction of tokens acting as global columns, first -> last. */
    double globalFracNear = 0.010;
    double globalFracFar = 0.045;

    /** Log-normal jitter applied to every entry (sigma in log space). */
    double jitterSigma = 0.30;
};

/**
 * Deterministic generator of averaged attention maps for a model.
 * generate(l, h) is a pure function of (config, model, l, h): calling
 * it twice returns identical matrices.
 */
class AttentionMapGenerator
{
  public:
    AttentionMapGenerator(const VitModelConfig &model,
                          AttentionGenConfig cfg = {});

    /** Shape list, one entry per transformer block. */
    const std::vector<AttnShape> &shapes() const { return shapes_; }

    /**
     * The averaged attention map of block @p layer, head @p head:
     * an n x n matrix with rows summing to 1.
     */
    linalg::Matrix generate(size_t layer, size_t head) const;

    /** Tokens of block @p layer. */
    size_t tokens(size_t layer) const;

    const VitModelConfig &model() const { return model_; }
    const AttentionGenConfig &config() const { return cfg_; }

  private:
    /** Global-token column ids for (layer, head). */
    std::vector<uint32_t> globalTokens(size_t layer, size_t head,
                                       size_t n) const;

    /** Per-(layer, head) stream seed. */
    uint64_t streamSeed(size_t layer, size_t head) const;

    /** Depth fraction in [0,1] for interpolating parameters. */
    double depthFrac(size_t layer) const;

    VitModelConfig model_;
    AttentionGenConfig cfg_;
    std::vector<AttnShape> shapes_;
};

} // namespace vitcod::model

#endif // VITCOD_MODEL_ATTENTION_GEN_H
