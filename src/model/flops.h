/**
 * @file
 * Per-op-group FLOPs and memory-traffic accounting for ViT inference
 * (regenerates the Fig. 4 breakdowns and feeds the platform roofline
 * models). Groups follow the paper's bars: the self-attention module
 * decomposes into QKV projection, the Q.K^T / S.V matrix multiplies
 * with their reshape/split data movement, softmax and the output
 * projection; MLP, LayerNorm and "Other" (conv stem, task head) make
 * up the rest of the network.
 */

#ifndef VITCOD_MODEL_FLOPS_H
#define VITCOD_MODEL_FLOPS_H

#include <array>
#include <cstddef>
#include <string>

#include "model/vit_config.h"

namespace vitcod::model {

/** Operation groups used in breakdowns. */
enum class OpGroup : size_t
{
    QkvProj = 0,   //!< Q/K/V linear projections
    AttnMatMul,    //!< Q.K^T and S.V multiplies
    Reshape,       //!< head split/concat data movement (0 FLOPs)
    Softmax,       //!< row softmax over attention scores
    OutProj,       //!< attention output projection
    Mlp,           //!< two-layer MLP with GELU
    LayerNorm,     //!< both LayerNorms of a block
    Other,         //!< conv stem / embedding / task head
    NumGroups,
};

/** Printable name of an op group. */
const char *opGroupName(OpGroup g);

/** FLOPs plus bytes moved (activations + weights) for one group. */
struct OpCount
{
    double flops = 0.0;
    double bytes = 0.0;

    OpCount &
    operator+=(const OpCount &o)
    {
        flops += o.flops;
        bytes += o.bytes;
        return *this;
    }
};

/** A full per-group breakdown. */
using Breakdown =
    std::array<OpCount, static_cast<size_t>(OpGroup::NumGroups)>;

/** Access one group of a breakdown. */
inline OpCount &
groupOf(Breakdown &b, OpGroup g)
{
    return b[static_cast<size_t>(g)];
}

inline const OpCount &
groupOf(const Breakdown &b, OpGroup g)
{
    return b[static_cast<size_t>(g)];
}

/** Sum of FLOPs across groups. */
double totalFlops(const Breakdown &b);

/** Sum of bytes across groups. */
double totalBytes(const Breakdown &b);

/** FLOPs of the self-attention module only (QKV..OutProj). */
double attentionFlops(const Breakdown &b);

/**
 * Compute the breakdown of one full inference pass.
 *
 * @param cfg Model description.
 * @param attn_sparsity Fraction of attention-map entries pruned; the
 *        Q.K^T / softmax / S.V terms scale by (1 - sparsity). 0 gives
 *        the dense model.
 * @param elem_bytes Bytes per activation/weight element (default 2,
 *        fp16/int16-class datapath).
 */
Breakdown modelBreakdown(const VitModelConfig &cfg,
                         double attn_sparsity = 0.0,
                         size_t elem_bytes = 2);

/** Shape of one attention block's workload. */
struct AttnShape
{
    size_t tokens;
    size_t heads;
    size_t headDim;
    size_t embedDim;
    size_t layerIndex; //!< global block index within the model
};

/** One AttnShape per transformer block, in execution order. */
std::vector<AttnShape> attentionShapes(const VitModelConfig &cfg);

} // namespace vitcod::model

#endif // VITCOD_MODEL_FLOPS_H
