/**
 * @file
 * Symmetric eigendecomposition via the cyclic Jacobi method, plus a
 * PCA helper. The auto-encoder's closed-form optimum (paper Sec.
 * IV-C: linear compression across the head dimension) is the PCA of
 * the head-covariance matrix, which is at most 16x16 — exactly the
 * regime where Jacobi is simple, robust and accurate.
 */

#ifndef VITCOD_LINALG_EIGEN_H
#define VITCOD_LINALG_EIGEN_H

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace vitcod::linalg {

/** Result of a symmetric eigendecomposition A = V diag(w) V^T. */
struct EigenDecomposition
{
    /** Eigenvalues in descending order. */
    std::vector<double> values;
    /** Columns are the matching eigenvectors (orthonormal). */
    Matrix vectors;
};

/**
 * Eigendecomposition of a symmetric matrix by cyclic Jacobi sweeps.
 *
 * @param a Symmetric matrix (only requires approximate symmetry; the
 *          upper triangle is mirrored).
 * @param max_sweeps Upper bound on full sweeps (default converges for
 *        any sane head-covariance input).
 * @return Eigenvalues (descending) and orthonormal eigenvectors.
 */
EigenDecomposition jacobiEigen(const Matrix &a, size_t max_sweeps = 64);

/** Principal component analysis of row-sample data. */
struct PcaResult
{
    /** k x d projection matrix (rows are principal directions). */
    Matrix components;
    /** Per-direction captured variance, descending. */
    std::vector<double> explainedVariance;
    /** Fraction of total variance captured by the k components. */
    double capturedFraction = 0.0;
};

/**
 * Fit PCA on @p data whose rows are samples and columns are features
 * (for the AE: features = heads).
 *
 * @param data samples x features matrix.
 * @param k Number of components to keep. @pre 1 <= k <= features.
 * @param center Subtract the column means first (default true).
 */
PcaResult fitPca(const Matrix &data, size_t k, bool center = true);

} // namespace vitcod::linalg

#endif // VITCOD_LINALG_EIGEN_H
