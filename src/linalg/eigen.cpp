#include "eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace vitcod::linalg {

EigenDecomposition
jacobiEigen(const Matrix &input, size_t max_sweeps)
{
    VITCOD_ASSERT(input.rows() == input.cols(),
                  "jacobiEigen needs a square matrix");
    const size_t n = input.rows();

    // Work in double for accuracy; symmetrize the input.
    std::vector<double> a(n * n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            a[i * n + j] = 0.5 * (static_cast<double>(input(i, j)) +
                                  input(j, i));
    std::vector<double> v(n * n, 0.0);
    for (size_t i = 0; i < n; ++i)
        v[i * n + i] = 1.0;

    auto off_diag_norm = [&]() {
        double s = 0.0;
        for (size_t i = 0; i < n; ++i)
            for (size_t j = i + 1; j < n; ++j)
                s += a[i * n + j] * a[i * n + j];
        return std::sqrt(2.0 * s);
    };

    const double eps = 1e-14 * std::max(1.0, off_diag_norm());
    for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
        if (off_diag_norm() <= eps)
            break;
        for (size_t p = 0; p + 1 < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                const double apq = a[p * n + q];
                if (std::abs(apq) < 1e-300)
                    continue;
                const double app = a[p * n + p];
                const double aqq = a[q * n + q];
                const double theta = (aqq - app) / (2.0 * apq);
                const double t =
                    (theta >= 0 ? 1.0 : -1.0) /
                    (std::abs(theta) +
                     std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (size_t i = 0; i < n; ++i) {
                    const double aip = a[i * n + p];
                    const double aiq = a[i * n + q];
                    a[i * n + p] = c * aip - s * aiq;
                    a[i * n + q] = s * aip + c * aiq;
                }
                for (size_t i = 0; i < n; ++i) {
                    const double api = a[p * n + i];
                    const double aqi = a[q * n + i];
                    a[p * n + i] = c * api - s * aqi;
                    a[q * n + i] = s * api + c * aqi;
                }
                for (size_t i = 0; i < n; ++i) {
                    const double vip = v[i * n + p];
                    const double viq = v[i * n + q];
                    v[i * n + p] = c * vip - s * viq;
                    v[i * n + q] = s * vip + c * viq;
                }
            }
        }
    }

    // Sort by descending eigenvalue.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return a[x * n + x] > a[y * n + y];
    });

    EigenDecomposition out;
    out.values.resize(n);
    out.vectors = Matrix(n, n);
    for (size_t k = 0; k < n; ++k) {
        const size_t src = order[k];
        out.values[k] = a[src * n + src];
        for (size_t i = 0; i < n; ++i)
            out.vectors(i, k) = static_cast<float>(v[i * n + src]);
    }
    return out;
}

PcaResult
fitPca(const Matrix &data, size_t k, bool center)
{
    const size_t n = data.rows();
    const size_t d = data.cols();
    VITCOD_ASSERT(k >= 1 && k <= d, "fitPca: bad component count");
    VITCOD_ASSERT(n >= 2, "fitPca: need at least two samples");

    std::vector<double> mean(d, 0.0);
    if (center) {
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < d; ++j)
                mean[j] += data(i, j);
        for (auto &m : mean)
            m /= static_cast<double>(n);
    }

    // Covariance (d x d), d is the head count so this stays tiny.
    Matrix cov(d, d);
    for (size_t i = 0; i < n; ++i) {
        for (size_t a = 0; a < d; ++a) {
            const double xa = data(i, a) - mean[a];
            for (size_t b = a; b < d; ++b) {
                const double xb = data(i, b) - mean[b];
                cov(a, b) += static_cast<float>(xa * xb /
                                                static_cast<double>(n));
            }
        }
    }
    for (size_t a = 0; a < d; ++a)
        for (size_t b = 0; b < a; ++b)
            cov(a, b) = cov(b, a);

    EigenDecomposition eig = jacobiEigen(cov);

    PcaResult out;
    out.components = Matrix(k, d);
    out.explainedVariance.resize(k);
    double total = 0.0;
    for (double w : eig.values)
        total += std::max(0.0, w);
    double captured = 0.0;
    for (size_t c = 0; c < k; ++c) {
        out.explainedVariance[c] = eig.values[c];
        captured += std::max(0.0, eig.values[c]);
        for (size_t j = 0; j < d; ++j)
            out.components(c, j) = eig.vectors(j, c);
    }
    out.capturedFraction = total > 0 ? captured / total : 1.0;
    return out;
}

} // namespace vitcod::linalg
