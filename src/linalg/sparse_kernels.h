/**
 * @file
 * Sparse attention golden kernels (paper Fig. 6):
 *
 *  - SDDMM: sampled dense-dense matrix multiplication. Only the
 *    attention scores at mask nonzeros are computed from Q and K.
 *  - masked softmax: softmax over each row restricted to the mask.
 *  - SpMM: sparse attention map times dense V.
 *
 * These define functional correctness for the accelerator models:
 * a ViTCoD run over (mask, Q, K, V) must produce exactly
 * spmm(maskedSoftmax(sddmm(Q, K, mask)), V).
 */

#ifndef VITCOD_LINALG_SPARSE_KERNELS_H
#define VITCOD_LINALG_SPARSE_KERNELS_H

#include "linalg/matrix.h"
#include "sparse/formats.h"

namespace vitcod::linalg {

/**
 * SDDMM producing CSR values: S(i,j) = scale * dot(Q.row(i), K.row(j))
 * for every (i,j) in the mask.
 *
 * @param q n x d query matrix.
 * @param k n x d key matrix.
 * @param mask n x n binary attention mask.
 * @param scale Score scaling, typically 1/sqrt(d_head).
 */
sparse::Csr sddmm(const Matrix &q, const Matrix &k,
                  const sparse::BitMask &mask, float scale = 1.0f);

/**
 * Row softmax restricted to stored nonzeros: each CSR row is
 * exponentiated (stably) and normalized over its own entries.
 */
sparse::Csr maskedSoftmaxRows(const sparse::Csr &s);

/**
 * SpMM: out = S * V, with S sparse (CSR) and V dense.
 * @pre s.cols == v.rows.
 */
Matrix spmm(const sparse::Csr &s, const Matrix &v);

/**
 * Dense reference for sparse attention: computes softmax(mask ?
 * scale*QK^T : -inf) * V densely. Used to cross-check the sparse
 * path.
 */
Matrix denseMaskedAttention(const Matrix &q, const Matrix &k,
                            const Matrix &v, const sparse::BitMask &mask,
                            float scale = 1.0f);

} // namespace vitcod::linalg

#endif // VITCOD_LINALG_SPARSE_KERNELS_H
