/**
 * @file
 * Row-major dense float matrix. Values are stored as float (the
 * accelerators model 8/16-bit datapaths; float is ample as a golden
 * reference) and accumulations are performed in double inside the
 * kernels for numerical robustness.
 */

#ifndef VITCOD_LINALG_MATRIX_H
#define VITCOD_LINALG_MATRIX_H

#include <cstddef>
#include <new>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace vitcod::linalg {

/**
 * Minimal cache-line-aligned allocator for the matrix backing store.
 * operator new only guarantees 16-byte alignment; with 64-byte rows
 * (d = 64) that leaves half of the SIMD kernels' 32-byte loads
 * straddling cache lines. Aligning the base to 64 keeps every
 * row-relative vector load inside one line.
 */
template <typename T, std::size_t Align>
struct AlignedAllocator
{
    using value_type = T;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {}

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{Align}));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        ::operator delete(p, n * sizeof(T), std::align_val_t{Align});
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    bool operator==(const AlignedAllocator &) const = default;
};

/** Dense row-major matrix of float. */
class Matrix
{
  public:
    Matrix() = default;

    /** Zero-initialized matrix of the given shape. */
    Matrix(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

    float
    operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Checked element access; panics when out of range. */
    float
    at(size_t r, size_t c) const
    {
        VITCOD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    const float *data() const { return data_.data(); }
    float *data() { return data_.data(); }

    const float *rowData(size_t r) const { return &data_[r * cols_]; }
    float *rowData(size_t r) { return &data_[r * cols_]; }

    /** Set every element to @p v. */
    void fill(float v) { data_.assign(data_.size(), v); }

    /**
     * Reshape to rows x cols and zero every element. The backing
     * vector's capacity is retained, so shrinking or re-sizing to a
     * previously seen shape never allocates — what BufferArena relies
     * on for its zero-allocation steady state.
     */
    void
    resize(size_t rows, size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows * cols, 0.0f);
    }

    /**
     * Reshape without clearing: retained elements keep their stale
     * values. Only for buffers the caller overwrites in full before
     * reading (the arena's permute/pool destinations) — skips the
     * redundant zero pass resize() would do.
     */
    void
    reshapeUninit(size_t rows, size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

    /** Elements the backing store can hold without reallocating. */
    size_t capacity() const { return data_.capacity(); }

    /** i.i.d. N(mean, stddev) entries from @p rng. */
    static Matrix
    randomNormal(size_t rows, size_t cols, Rng &rng, float mean = 0.0f,
                 float stddev = 1.0f)
    {
        Matrix m(rows, cols);
        for (auto &x : m.data_)
            x = static_cast<float>(rng.normal(mean, stddev));
        return m;
    }

    /** i.i.d. U[lo, hi) entries from @p rng. */
    static Matrix
    randomUniform(size_t rows, size_t cols, Rng &rng, float lo = 0.0f,
                  float hi = 1.0f)
    {
        Matrix m(rows, cols);
        for (auto &x : m.data_)
            x = static_cast<float>(rng.uniform(lo, hi));
        return m;
    }

    /** Identity matrix of order @p n. */
    static Matrix
    identity(size_t n)
    {
        Matrix m(n, n);
        for (size_t i = 0; i < n; ++i)
            m(i, i) = 1.0f;
        return m;
    }

    bool operator==(const Matrix &other) const = default;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float, AlignedAllocator<float, 64>> data_;
};

} // namespace vitcod::linalg

#endif // VITCOD_LINALG_MATRIX_H
