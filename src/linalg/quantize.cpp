#include "quantize.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "linalg/kernels.h"

namespace vitcod::linalg {

size_t
QuantizedMatrix::storageBytes() const
{
    const size_t code_bits = rows * cols * static_cast<size_t>(bits);
    return (code_bits + 7) / 8 + scales.size() * sizeof(float);
}

namespace {

float
maxAbsOfRange(const Matrix &a, size_t r0, size_t r1)
{
    float m = 0.0f;
    for (size_t r = r0; r < r1; ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            m = std::max(m, std::abs(a(r, c)));
    return m;
}

} // namespace

QuantizedMatrix
quantize(const Matrix &a, int bits, bool per_row)
{
    VITCOD_ASSERT(bits >= 2 && bits <= 16, "bits must be in [2,16]");
    QuantizedMatrix q;
    q.rows = a.rows();
    q.cols = a.cols();
    q.bits = bits;
    q.perRow = per_row;
    q.codes.resize(a.rows() * a.cols());
    const auto qmax = static_cast<float>(q.qmax());

    auto encode_rows = [&](size_t r0, size_t r1, float scale) {
        const float inv = scale > 0 ? 1.0f / scale : 0.0f;
        for (size_t r = r0; r < r1; ++r) {
            for (size_t c = 0; c < a.cols(); ++c) {
                const float v = a(r, c) * inv;
                const float clamped =
                    std::clamp(std::round(v), -qmax, qmax);
                q.codes[r * a.cols() + c] =
                    static_cast<int16_t>(clamped);
            }
        }
    };

    if (per_row) {
        q.scales.resize(a.rows());
        for (size_t r = 0; r < a.rows(); ++r) {
            const float s = maxAbsOfRange(a, r, r + 1) / qmax;
            q.scales[r] = s;
            encode_rows(r, r + 1, s);
        }
    } else {
        const float s = maxAbsOfRange(a, 0, a.rows()) / qmax;
        q.scales.assign(1, s);
        encode_rows(0, a.rows(), s);
    }
    return q;
}

Matrix
dequantize(const QuantizedMatrix &q)
{
    Matrix a(q.rows, q.cols);
    for (size_t r = 0; r < q.rows; ++r) {
        const float s = q.perRow ? q.scales[r] : q.scales[0];
        for (size_t c = 0; c < q.cols; ++c)
            a(r, c) = static_cast<float>(q.codes[r * q.cols + c]) * s;
    }
    return a;
}

double
quantizationError(const Matrix &a, int bits, bool per_row)
{
    return maxAbsDiff(a, dequantize(quantize(a, bits, per_row)));
}

Matrix
quantizedScores(const Matrix &q, const Matrix &k, int bits)
{
    VITCOD_ASSERT(q.cols() == k.cols(), "score shape mismatch");
    const QuantizedMatrix qq = quantize(q, bits, /*per_row=*/true);
    const QuantizedMatrix qk = quantize(k, bits, /*per_row=*/true);

    Matrix s(q.rows(), k.rows());
    for (size_t i = 0; i < q.rows(); ++i) {
        for (size_t j = 0; j < k.rows(); ++j) {
            int64_t acc = 0;
            for (size_t f = 0; f < q.cols(); ++f) {
                acc += static_cast<int64_t>(
                           qq.codes[i * q.cols() + f]) *
                       qk.codes[j * k.cols() + f];
            }
            s(i, j) = static_cast<float>(acc) * qq.scales[i] *
                      qk.scales[j];
        }
    }
    return s;
}

} // namespace vitcod::linalg
