#include "sparse_kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/kernels.h"

namespace vitcod::linalg {

sparse::Csr
sddmm(const Matrix &q, const Matrix &k, const sparse::BitMask &mask,
      float scale)
{
    VITCOD_ASSERT(q.cols() == k.cols(), "sddmm feature dim mismatch");
    VITCOD_ASSERT(mask.rows() == q.rows() && mask.cols() == k.rows(),
                  "sddmm mask shape mismatch");
    return sparse::Csr::fromMask(mask, [&](size_t r, size_t c) {
        const float *q_row = q.rowData(r);
        const float *k_row = k.rowData(c);
        double acc = 0.0;
        for (size_t f = 0; f < q.cols(); ++f)
            acc += static_cast<double>(q_row[f]) * k_row[f];
        return static_cast<float>(acc * scale);
    });
}

sparse::Csr
maskedSoftmaxRows(const sparse::Csr &s)
{
    // Rebuild through COO to reuse validated construction.
    sparse::Coo coo = s.toCoo();
    const auto &row_ptr = s.rowPtr();
    const auto &values = s.values();
    size_t out_i = 0;
    for (size_t r = 0; r < s.rows(); ++r) {
        const uint32_t begin = row_ptr[r];
        const uint32_t end = row_ptr[r + 1];
        if (begin == end)
            continue;
        float max_v = -std::numeric_limits<float>::infinity();
        for (uint32_t i = begin; i < end; ++i)
            max_v = std::max(max_v, values[i]);
        double sum = 0.0;
        for (uint32_t i = begin; i < end; ++i)
            sum += std::exp(static_cast<double>(values[i] - max_v));
        for (uint32_t i = begin; i < end; ++i) {
            const double e =
                std::exp(static_cast<double>(values[i] - max_v));
            coo.entries[out_i++].value = static_cast<float>(e / sum);
        }
    }
    return sparse::Csr::fromCoo(coo);
}

Matrix
spmm(const sparse::Csr &s, const Matrix &v)
{
    VITCOD_ASSERT(s.cols() == v.rows(), "spmm shape mismatch");
    Matrix out(s.rows(), v.cols());
    const auto &row_ptr = s.rowPtr();
    const auto &col_idx = s.colIdx();
    const auto &values = s.values();
    for (size_t r = 0; r < s.rows(); ++r) {
        float *out_row = out.rowData(r);
        for (uint32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
            const float sv = values[i];
            const float *v_row = v.rowData(col_idx[i]);
            for (size_t f = 0; f < v.cols(); ++f)
                out_row[f] += sv * v_row[f];
        }
    }
    return out;
}

Matrix
denseMaskedAttention(const Matrix &q, const Matrix &k, const Matrix &v,
                     const sparse::BitMask &mask, float scale)
{
    Matrix scores = gemmTransB(q, k);
    scaleInPlace(scores, scale);
    // Mask with -inf so softmax assigns exactly zero weight.
    for (size_t r = 0; r < scores.rows(); ++r)
        for (size_t c = 0; c < scores.cols(); ++c)
            if (!mask.get(r, c))
                scores(r, c) = -std::numeric_limits<float>::infinity();

    // Stable softmax per row over unmasked entries only.
    Matrix s(scores.rows(), scores.cols());
    for (size_t r = 0; r < scores.rows(); ++r) {
        float max_v = -std::numeric_limits<float>::infinity();
        for (size_t c = 0; c < scores.cols(); ++c)
            max_v = std::max(max_v, scores(r, c));
        if (max_v == -std::numeric_limits<float>::infinity())
            continue; // fully masked row: all-zero output
        double sum = 0.0;
        for (size_t c = 0; c < scores.cols(); ++c) {
            if (mask.get(r, c))
                sum += std::exp(
                    static_cast<double>(scores(r, c) - max_v));
        }
        for (size_t c = 0; c < scores.cols(); ++c) {
            if (mask.get(r, c)) {
                const double e = std::exp(
                    static_cast<double>(scores(r, c) - max_v));
                s(r, c) = static_cast<float>(e / sum);
            }
        }
    }
    return gemm(s, v);
}

} // namespace vitcod::linalg
