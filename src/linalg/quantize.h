/**
 * @file
 * Symmetric linear quantization. Three consumers in this
 * reproduction: the AE's compressed Q/K representation travels as
 * 8-bit values (the decoder engines are dual-pumped for exactly this
 * reason), Sanger's mask-prediction pass computes 4-bit Q.K^T, and
 * SpAtten applies progressive (big-first) quantization to its DRAM
 * traffic. The module provides per-tensor and per-row scales,
 * round-trip error metrics, and a quantized GEMM reference used to
 * validate that low-precision mask prediction ranks scores
 * correctly.
 */

#ifndef VITCOD_LINALG_QUANTIZE_H
#define VITCOD_LINALG_QUANTIZE_H

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace vitcod::linalg {

/** A quantized tensor: int codes plus the scale(s) to recover it. */
struct QuantizedMatrix
{
    size_t rows = 0;
    size_t cols = 0;
    int bits = 8;
    /** Row-major codes in [-qmax, qmax]. */
    std::vector<int16_t> codes;
    /** One scale per row (per-row mode) or a single entry. */
    std::vector<float> scales;
    bool perRow = false;

    /** Largest representable code magnitude: 2^(bits-1) - 1. */
    int qmax() const { return (1 << (bits - 1)) - 1; }

    /** Storage bytes at the nominal precision (ceil to bytes). */
    size_t storageBytes() const;
};

/**
 * Quantize symmetrically at @p bits (2..16).
 *
 * @param a Input matrix.
 * @param bits Code width.
 * @param per_row Use one scale per row (tighter for attention rows).
 */
QuantizedMatrix quantize(const Matrix &a, int bits,
                         bool per_row = false);

/** Recover a float matrix from codes and scales. */
Matrix dequantize(const QuantizedMatrix &q);

/** Max |a - dequantize(quantize(a))| for given settings. */
double quantizationError(const Matrix &a, int bits,
                         bool per_row = false);

/**
 * Low-precision score estimation, Sanger-style: quantize Q and K to
 * @p bits, multiply in integer domain, return the dequantized
 * scores. Used to predict attention masks cheaply.
 */
Matrix quantizedScores(const Matrix &q, const Matrix &k, int bits);

} // namespace vitcod::linalg

#endif // VITCOD_LINALG_QUANTIZE_H
