#include "linalg/engine/engine.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>

#include "linalg/engine/kernels_opt.h" //!< mask structure helpers
#include "linalg/kernels.h"
#include "linalg/sparse_kernels.h"
#include "obs/trace.h"

namespace vitcod::linalg::engine {

namespace {

enum Counter : size_t
{
    kGemmRef,
    kGemmOpt,
    kSddmmRef,
    kSddmmCsr,
    kSddmmCsc,
    kSoftmaxRef,
    kSoftmaxOpt,
    kSpmmRef,
    kSpmmOpt,
    kParallel,
    kStructHit,
    kStructMiss,
    // Per-ISA launch counters; kIsaFirst + IsaLevel value.
    kIsaFirst,
};

/** Name of the KernelVariant a reference dispatch executes. */
const char *
referenceVariantName()
{
    return variantName({KernelTier::Reference, IsaLevel::Scalar});
}

/** 64-bit content hash of a mask: 8 storage bytes per mix step. */
uint64_t
hashMask(const sparse::BitMask &mask)
{
    uint64_t h = 0x9e3779b97f4a7c15ULL ^
                 (mask.rows() * 0x100000001b3ULL + mask.cols());
    auto mix = [&h](uint64_t x) {
        h ^= x;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
    };
    const uint8_t *bytes = mask.data();
    const size_t n = mask.rows() * mask.cols();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        uint64_t chunk;
        std::memcpy(&chunk, bytes + i, 8);
        mix(chunk);
    }
    uint64_t tail = 0;
    for (; i < n; ++i)
        tail = (tail << 8) | bytes[i];
    mix(tail);
    return h;
}

} // namespace

/** Compressed structure of one mask, shared across calls. */
struct KernelEngine::MaskStructure
{
    sparse::BitMask mask; //!< copy, for exact verification on hit
    std::vector<uint32_t> rowPtr, colIdx; //!< CSR
    std::vector<uint32_t> colPtr, rowIdx; //!< CSC (sparser masks only)
    bool useCsc = false;

    /** Borrowed layout view of this structure. */
    MaskLayoutView view() const
    {
        return {mask.rows(), mask.cols(), &rowPtr, &colIdx,
                &colPtr,     &rowIdx,     useCsc};
    }
};

/** Content-addressed LRU of MaskStructures. */
struct KernelEngine::StructureCache
{
    struct Entry
    {
        std::shared_ptr<const MaskStructure> structure;
        std::list<uint64_t>::iterator lruIt;
    };

    std::mutex lock;
    std::unordered_map<uint64_t, Entry> entries;
    std::list<uint64_t> lru; //!< front = most recently used
};

KernelEngine::KernelEngine(EngineConfig cfg, ThreadPool *pool)
    : cfg_(cfg), pool_(pool),
      cache_(std::make_unique<StructureCache>())
{
    const IsaLevel resolved = isa::resolveIsa(
        cfg_.isa, isa::hostCpuFeatures(), std::getenv("VITCOD_ISA"));
    kernels_.store(isa::isaKernelTable(resolved),
                   std::memory_order_relaxed);
    for (auto &c : counters_)
        c.store(0, std::memory_order_relaxed);
}

KernelEngine::~KernelEngine() = default;

KernelVariant
KernelEngine::variant() const
{
    if (cfg_.tier == KernelTier::Reference)
        return {KernelTier::Reference, IsaLevel::Scalar};
    return {KernelTier::Optimized, isaLevel()};
}

IsaLevel
KernelEngine::isaLevel() const
{
    return kernels_.load(std::memory_order_relaxed)->level;
}

IsaLevel
KernelEngine::forceIsa(IsaLevel level)
{
    const IsaLevel applied =
        isa::resolveIsa(level, isa::hostCpuFeatures(), nullptr);
    kernels_.store(isa::isaKernelTable(applied),
                   std::memory_order_relaxed);
    return applied;
}

const isa::IsaKernelTable &
KernelEngine::kernels() const
{
    return *kernels_.load(std::memory_order_relaxed);
}

void
KernelEngine::noteIsaLaunch(IsaLevel level) const
{
    counters_[kIsaFirst + static_cast<size_t>(level)].fetch_add(
        1, std::memory_order_relaxed);
}

const isa::IsaKernelTable &
KernelEngine::kernelsForLaunch() const
{
    const isa::IsaKernelTable &kt = kernels();
    noteIsaLaunch(kt.level);
    return kt;
}

std::shared_ptr<const KernelEngine::MaskStructure>
KernelEngine::structureFor(const sparse::BitMask &mask) const
{
    const uint64_t key =
        cfg_.structureCacheCapacity ? hashMask(mask) : 0;
    if (cfg_.structureCacheCapacity) {
        std::lock_guard<std::mutex> g(cache_->lock);
        auto it = cache_->entries.find(key);
        if (it != cache_->entries.end() &&
            it->second.structure->mask == mask) {
            cache_->lru.splice(cache_->lru.begin(), cache_->lru,
                               it->second.lruIt);
            counters_[kStructHit].fetch_add(1,
                                            std::memory_order_relaxed);
            return it->second.structure;
        }
    }
    counters_[kStructMiss].fetch_add(1, std::memory_order_relaxed);

    auto ms = std::make_shared<MaskStructure>();
    ms->mask = mask;
    maskToCsrStructure(mask, ms->rowPtr, ms->colIdx);
    const auto nnz = static_cast<double>(ms->colIdx.size());
    ms->useCsc = nnz < (1.0 - cfg_.cscSparsityThreshold) *
                           static_cast<double>(mask.rows() *
                                               mask.cols());
    if (ms->useCsc)
        csrToCscStructure(mask.rows(), mask.cols(), ms->rowPtr,
                          ms->colIdx, ms->colPtr, ms->rowIdx);

    if (cfg_.structureCacheCapacity) {
        std::lock_guard<std::mutex> g(cache_->lock);
        if (!cache_->entries.contains(key)) {
            cache_->lru.push_front(key);
            cache_->entries.emplace(
                key,
                StructureCache::Entry{ms, cache_->lru.begin()});
            if (cache_->lru.size() > cfg_.structureCacheCapacity) {
                cache_->entries.erase(cache_->lru.back());
                cache_->lru.pop_back();
            }
        }
    }
    return ms;
}

size_t
KernelEngine::threads() const
{
    return pool_ ? std::max<size_t>(1, pool_->threads()) : 1;
}

bool
KernelEngine::useOptimized(size_t macs) const
{
    if (cfg_.tier)
        return *cfg_.tier == KernelTier::Optimized;
    return macs >= cfg_.minOptimizedMacs;
}

bool
KernelEngine::useParallel(size_t rows, size_t macs) const
{
    return pool_ && pool_->threads() > 1 &&
           rows >= 2 * std::max<size_t>(1, cfg_.rowPanel) &&
           macs >= cfg_.minParallelMacs;
}

void
KernelEngine::forPanels(
    size_t rows, size_t macs,
    const std::function<void(size_t, size_t)> &body) const
{
    if (useParallel(rows, macs)) {
        counters_[kParallel].fetch_add(1, std::memory_order_relaxed);
        pool_->parallelFor(0, rows, cfg_.rowPanel, body);
    } else {
        body(0, rows);
    }
}

void
KernelEngine::gemmInto(const Matrix &a, const Matrix &b,
                       Matrix &c) const
{
    const size_t macs = a.rows() * a.cols() * b.cols();
    obs::SpanGuard span("gemm", "engine", "m", double(a.rows()),
                        "macs", double(macs));
    if (!useOptimized(macs)) {
        counters_[kGemmRef].fetch_add(1, std::memory_order_relaxed);
        span.argStr("variant", referenceVariantName());
        linalg::gemmInto(a, b, c);
        return;
    }
    VITCOD_ASSERT(a.cols() == b.rows(), "gemm shape mismatch");
    counters_[kGemmOpt].fetch_add(1, std::memory_order_relaxed);
    const isa::IsaKernelTable &kt = kernelsForLaunch();
    span.argStr("variant",
                variantName({KernelTier::Optimized, kt.level}));
    c.resize(a.rows(), b.cols());
    forPanels(a.rows(), macs, [&](size_t r0, size_t r1) {
        kt.gemmPanel(a, b, c, r0, r1, cfg_.gemmKBlock,
                     cfg_.gemmJBlock);
    });
}

void
KernelEngine::gemmTransBInto(const Matrix &a, const Matrix &b,
                             Matrix &c) const
{
    const size_t macs = a.rows() * a.cols() * b.rows();
    obs::SpanGuard span("gemm_tb", "engine", "m", double(a.rows()),
                        "macs", double(macs));
    if (!useOptimized(macs)) {
        counters_[kGemmRef].fetch_add(1, std::memory_order_relaxed);
        span.argStr("variant", referenceVariantName());
        // Copy-assign (not move): reuses @p c's capacity.
        const Matrix ref = linalg::gemmTransB(a, b);
        c = ref;
        return;
    }
    VITCOD_ASSERT(a.cols() == b.cols(), "gemmTransB shape mismatch");
    counters_[kGemmOpt].fetch_add(1, std::memory_order_relaxed);
    const isa::IsaKernelTable &kt = kernelsForLaunch();
    span.argStr("variant",
                variantName({KernelTier::Optimized, kt.level}));
    c.resize(a.rows(), b.rows());
    forPanels(a.rows(), macs, [&](size_t r0, size_t r1) {
        kt.gemmTransBPanel(a, b, c, r0, r1);
    });
}

void
KernelEngine::sddmmInto(const Matrix &q, const Matrix &k,
                        const MaskLayoutView &layout, float scale,
                        std::vector<float> &values) const
{
    VITCOD_ASSERT(q.cols() == k.cols(), "sddmm feature dim mismatch");
    VITCOD_ASSERT(layout.rows == q.rows() && layout.cols == k.rows(),
                  "sddmm mask shape mismatch");
    const size_t nnz = layout.colIdx->size();
    const size_t macs = nnz * q.cols();
    obs::SpanGuard span("sddmm", "engine", "nnz", double(nnz), "rows",
                        double(layout.rows));
    values.resize(nnz);

    const isa::IsaKernelTable &kt = kernelsForLaunch();
    span.argStr("variant",
                variantName({KernelTier::Optimized, kt.level}));
    if (layout.useCsc) {
        // Sparser region: K-stationary CSC walk, then an O(nnz)
        // scatter back into the CSR slots.
        counters_[kSddmmCsc].fetch_add(1, std::memory_order_relaxed);
        // Per-thread scratch: the serve loop calls this per token,
        // so the CSC staging buffer must not malloc per call. The
        // lambda must use the hoisted pointer — a thread_local
        // named inside it would resolve to the pool worker's own
        // (empty) instance.
        static thread_local std::vector<float> csc_values;
        csc_values.resize(nnz);
        float *const csc_data = csc_values.data();
        forPanels(layout.cols, macs, [&](size_t c0, size_t c1) {
            kt.sddmmCscPanel(q, k, *layout.colPtr, *layout.rowIdx,
                             csc_data, c0, c1, scale);
        });
        cscValuesToCsr(layout.rows, *layout.colPtr, *layout.rowIdx,
                       csc_values, *layout.rowPtr, values);
    } else {
        counters_[kSddmmCsr].fetch_add(1, std::memory_order_relaxed);
        forPanels(layout.rows, macs, [&](size_t r0, size_t r1) {
            kt.sddmmCsrPanel(q, k, *layout.rowPtr, *layout.colIdx,
                             values.data(), r0, r1, scale);
        });
    }
}

sparse::Csr
KernelEngine::sddmm(const Matrix &q, const Matrix &k,
                    const sparse::BitMask &mask, float scale) const
{
    // Dense upper bound for dispatch; avoids an extra mask scan.
    if (!useOptimized(mask.rows() * mask.cols() * q.cols())) {
        counters_[kSddmmRef].fetch_add(1, std::memory_order_relaxed);
        return linalg::sddmm(q, k, mask, scale);
    }
    const auto ms = structureFor(mask);
    std::vector<float> values;
    sddmmInto(q, k, ms->view(), scale, values);
    return sparse::Csr::fromParts(mask.rows(), mask.cols(), ms->rowPtr,
                                  ms->colIdx, std::move(values));
}

sparse::Csr
KernelEngine::maskedSoftmaxRows(sparse::Csr s) const
{
    obs::SpanGuard span("softmax", "engine", "nnz", double(s.nnz()),
                        "rows", double(s.rows()));
    if (!useOptimized(s.nnz())) {
        counters_[kSoftmaxRef].fetch_add(1, std::memory_order_relaxed);
        span.argStr("variant", referenceVariantName());
        return linalg::maskedSoftmaxRows(s);
    }
    counters_[kSoftmaxOpt].fetch_add(1, std::memory_order_relaxed);
    const isa::IsaKernelTable &kt = kernelsForLaunch();
    span.argStr("variant",
                variantName({KernelTier::Optimized, kt.level}));
    const auto &row_ptr = s.rowPtr();
    float *values = s.mutableValues().data();
    forPanels(s.rows(), s.nnz(), [&](size_t r0, size_t r1) {
        kt.softmaxCsrPanel(row_ptr, values, r0, r1);
    });
    return s;
}

Matrix
KernelEngine::spmm(const sparse::Csr &s, const Matrix &v) const
{
    const size_t macs = s.nnz() * v.cols();
    obs::SpanGuard span("spmm", "engine", "nnz", double(s.nnz()),
                        "macs", double(macs));
    if (!useOptimized(macs)) {
        counters_[kSpmmRef].fetch_add(1, std::memory_order_relaxed);
        span.argStr("variant", referenceVariantName());
        return linalg::spmm(s, v);
    }
    VITCOD_ASSERT(s.cols() == v.rows(), "spmm shape mismatch");
    counters_[kSpmmOpt].fetch_add(1, std::memory_order_relaxed);
    const isa::IsaKernelTable &kt = kernelsForLaunch();
    span.argStr("variant",
                variantName({KernelTier::Optimized, kt.level}));
    Matrix out(s.rows(), v.cols());
    forPanels(s.rows(), macs, [&](size_t r0, size_t r1) {
        kt.spmmPanel(s.rowPtr(), s.colIdx(), s.values().data(), v, out,
                     r0, r1);
    });
    return out;
}

void
KernelEngine::sparseAttentionInto(const Matrix &q, const Matrix &k,
                                  const Matrix &v,
                                  const sparse::BitMask &mask,
                                  float scale, Matrix &out) const
{
    // Dense upper bound for dispatch; avoids an extra mask scan.
    const size_t macs_bound = mask.rows() * mask.cols() * q.cols();
    if (!useOptimized(macs_bound)) {
        counters_[kSddmmRef].fetch_add(1, std::memory_order_relaxed);
        counters_[kSoftmaxRef].fetch_add(1, std::memory_order_relaxed);
        counters_[kSpmmRef].fetch_add(1, std::memory_order_relaxed);
        // Copy-assign (not move): the vector copy reuses @p out's
        // capacity, keeping arena-backed callers allocation-stable.
        const Matrix ref = linalg::spmm(
            linalg::maskedSoftmaxRows(linalg::sddmm(q, k, mask, scale)),
            v);
        out = ref;
        return;
    }
    VITCOD_ASSERT(mask.cols() == v.rows(), "spmm shape mismatch");
    // Fused: one (cached) structure, values flow through SDDMM ->
    // softmax -> SpMM in place — no Csr materialization, no COO
    // round-trips, no revalidation between stages.
    const auto ms = structureFor(mask);
    sparseAttentionOpt(q, k, v, ms->view(), scale, out);
}

void
KernelEngine::sparseAttentionOpt(const Matrix &q, const Matrix &k,
                                 const Matrix &v,
                                 const MaskLayoutView &layout,
                                 float scale, Matrix &out) const
{
    const isa::IsaKernelTable &kt = kernels();
    obs::SpanGuard span("sparse_attention", "engine", "nnz",
                        double(layout.colIdx->size()), "rows",
                        double(layout.rows));
    span.argStr("variant",
                variantName({KernelTier::Optimized, kt.level}));
    // Per-thread scratch (see sddmmInto): keeps the fused hot path
    // allocation-free after the first call on each thread. The
    // panel lambdas must use the hoisted pointer — a thread_local
    // named inside them would resolve to the pool worker's own
    // (empty) instance.
    static thread_local std::vector<float> values;
    sddmmInto(q, k, layout, scale, values);
    float *const vals = values.data();

    const size_t macs = layout.colIdx->size() * q.cols();
    counters_[kSoftmaxOpt].fetch_add(1, std::memory_order_relaxed);
    noteIsaLaunch(kt.level);
    forPanels(layout.rows, macs, [&](size_t r0, size_t r1) {
        kt.softmaxCsrPanel(*layout.rowPtr, vals, r0, r1);
    });

    counters_[kSpmmOpt].fetch_add(1, std::memory_order_relaxed);
    noteIsaLaunch(kt.level);
    out.resize(layout.rows, v.cols());
    forPanels(layout.rows, macs, [&](size_t r0, size_t r1) {
        kt.spmmPanel(*layout.rowPtr, *layout.colIdx, vals, v, out, r0,
                     r1);
    });
}

void
KernelEngine::sparseAttentionInto(const Matrix &q, const Matrix &k,
                                  const Matrix &v,
                                  const sparse::BitMask &mask,
                                  const MaskLayoutView &layout,
                                  float scale, Matrix &out) const
{
    // Same dispatch bound as the mask-only overload, so a Reference-
    // pinned or tiny-shape call behaves identically either way.
    const size_t macs_bound = mask.rows() * mask.cols() * q.cols();
    if (!useOptimized(macs_bound)) {
        counters_[kSddmmRef].fetch_add(1, std::memory_order_relaxed);
        counters_[kSoftmaxRef].fetch_add(1, std::memory_order_relaxed);
        counters_[kSpmmRef].fetch_add(1, std::memory_order_relaxed);
        const Matrix ref = linalg::spmm(
            linalg::maskedSoftmaxRows(linalg::sddmm(q, k, mask, scale)),
            v);
        out = ref;
        return;
    }
    VITCOD_ASSERT(mask.cols() == v.rows(), "spmm shape mismatch");
    VITCOD_ASSERT(layout.rows == mask.rows() &&
                      layout.cols == mask.cols(),
                  "layout does not describe this mask");
    sparseAttentionOpt(q, k, v, layout, scale, out);
}

std::span<const DispatchStatsField>
dispatchStatsFields()
{
    static constexpr DispatchStatsField kFields[] = {
        {"gemm_ref", &DispatchStats::gemmReference},
        {"gemm_opt", &DispatchStats::gemmOptimized},
        {"sddmm_ref", &DispatchStats::sddmmReference},
        {"sddmm_csr", &DispatchStats::sddmmCsr},
        {"sddmm_csc", &DispatchStats::sddmmCsc},
        {"softmax_ref", &DispatchStats::softmaxReference},
        {"softmax_opt", &DispatchStats::softmaxOptimized},
        {"spmm_ref", &DispatchStats::spmmReference},
        {"spmm_opt", &DispatchStats::spmmOptimized},
        {"parallel", &DispatchStats::parallelLaunches},
        {"struct_hit", &DispatchStats::structureHits},
        {"struct_miss", &DispatchStats::structureMisses},
        {"isa_scalar", &DispatchStats::isaScalar},
        {"isa_neon", &DispatchStats::isaNeon},
        {"isa_avx2", &DispatchStats::isaAvx2},
        {"isa_avx512", &DispatchStats::isaAvx512},
    };
    static_assert(sizeof(DispatchStats) ==
                      std::size(kFields) * sizeof(uint64_t),
                  "new DispatchStats counter: add it to this table");
    return kFields;
}

DispatchStats
operator-(const DispatchStats &a, const DispatchStats &b)
{
    DispatchStats d;
    for (const DispatchStatsField &f : dispatchStatsFields())
        d.*f.member = a.*f.member - b.*f.member;
    return d;
}

DispatchStats
KernelEngine::stats() const
{
    // dispatchStatsFields() declaration order matches the Counter
    // enum (the static_assert there keeps both honest on growth).
    DispatchStats st;
    size_t i = 0;
    for (const DispatchStatsField &f : dispatchStatsFields())
        st.*f.member = counters_[i++].load(std::memory_order_relaxed);
    return st;
}

void
KernelEngine::resetStats() const
{
    for (auto &c : counters_)
        c.store(0, std::memory_order_relaxed);
}

const KernelEngine &
KernelEngine::shared()
{
    static KernelEngine engine{EngineConfig{}, &ThreadPool::shared()};
    return engine;
}

} // namespace vitcod::linalg::engine
