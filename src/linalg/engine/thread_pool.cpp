#include "linalg/engine/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "obs/trace.h"

namespace vitcod::linalg::engine {

namespace {

/**
 * Pool whose task the current thread is executing (null outside any
 * pool). parallelFor inlines only when called from a task of the
 * SAME pool — that is the deadlock case (helpers could wait behind
 * the very task that spawned them). A task of one pool fanning out
 * on a different pool is safe and stays parallel, e.g. serving
 * workers (WorkerPool's own pool) driving KernelEngine::shared()'s
 * pool.
 */
thread_local const ThreadPool *current_pool = nullptr;

} // namespace

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] {
            obs::TraceSession::instance().setThreadName(
                "pool-" + std::to_string(i));
            workerMain();
        });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> g(lock_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &t : workers_)
        if (t.joinable())
            t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    VITCOD_ASSERT(task, "null task submitted to ThreadPool");
    {
        std::lock_guard<std::mutex> g(lock_);
        VITCOD_ASSERT(!stop_, "submit on stopping ThreadPool");
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> g(lock_);
    idle_.wait(g, [this] { return queue_.empty() && inFlight_ == 0; });
}

void
ThreadPool::workerMain()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> g(lock_);
            wake_.wait(g, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        const ThreadPool *prev = current_pool;
        current_pool = this;
        task();
        current_pool = prev;
        {
            std::lock_guard<std::mutex> g(lock_);
            --inFlight_;
            if (queue_.empty() && inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)> &body)
{
    if (begin >= end)
        return;
    const size_t n = end - begin;
    if (grain == 0)
        grain = std::max<size_t>(1, n / std::max<size_t>(1, threads()));

    // Inline when called from one of THIS pool's own tasks (nested
    // call — fanning out could deadlock behind ourselves), when the
    // pool has no parallelism, or when one chunk covers the range.
    if (current_pool == this || threads() <= 1 || n <= grain) {
        body(begin, end);
        return;
    }

    const size_t chunks = (n + grain - 1) / grain;
    // Chunk claiming is dynamic but chunk *boundaries* are fixed, so
    // any schedule produces identical writes.
    auto next = std::make_shared<std::atomic<size_t>>(0);
    auto done = std::make_shared<std::atomic<size_t>>(0);
    auto done_lock = std::make_shared<std::mutex>();
    auto done_cv = std::make_shared<std::condition_variable>();

    auto run_chunks = [next, done, done_lock, done_cv, begin, end,
                       grain, chunks, &body] {
        for (;;) {
            const size_t c = next->fetch_add(1);
            if (c >= chunks)
                break;
            const size_t c0 = begin + c * grain;
            const size_t c1 = std::min(end, c0 + grain);
            body(c0, c1);
            if (done->fetch_add(1) + 1 == chunks) {
                std::lock_guard<std::mutex> g(*done_lock);
                done_cv->notify_all();
            }
        }
    };

    // body lives on this stack frame past every helper's return (we
    // block below), but copy the shared state into the helpers.
    const size_t helpers = std::min(threads(), chunks - 1);
    for (size_t i = 0; i < helpers; ++i)
        submit(run_chunks);

    run_chunks(); // caller participates
    std::unique_lock<std::mutex> g(*done_lock);
    done_cv->wait(g, [&] { return done->load() == chunks; });
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

} // namespace vitcod::linalg::engine
