/**
 * @file
 * Vectorized transcendentals for the per-ISA kernel TUs. Each
 * function is guarded by the target macro its instructions need, so
 * this header is safe to include from any TU — only the TUs built
 * with `-mavx2 -mfma` / `-mavx512f` instantiate the wide versions.
 *
 * expApprox*_ps: Cephes-style expf — range-reduce x = n*ln2 + r,
 * evaluate a degree-5 polynomial in r, scale by 2^n through the
 * exponent bits. Max error ~2 ulp against libm expf over the clamped
 * domain, far inside the engine's differential ulp budget; inputs
 * outside [-87.34, 88.38] clamp (the fused softmax only ever feeds
 * x - max(x) <= 0, so the upper clamp is never hit in practice).
 */

#ifndef VITCOD_LINALG_ENGINE_ISA_SIMD_MATH_H
#define VITCOD_LINALG_ENGINE_ISA_SIMD_MATH_H

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace vitcod::linalg::engine::isa {

// Cephes expf constants, shared by every width.
#define VITCOD_EXP_HI 88.3762626647949f
#define VITCOD_EXP_LO -87.3365478515625f
#define VITCOD_LOG2E 1.44269504088896341f
#define VITCOD_EXP_C1 0.693359375f
#define VITCOD_EXP_C2 -2.12194440e-4f
#define VITCOD_EXP_P0 1.9875691500e-4f
#define VITCOD_EXP_P1 1.3981999507e-3f
#define VITCOD_EXP_P2 8.3334519073e-3f
#define VITCOD_EXP_P3 4.1665795894e-2f
#define VITCOD_EXP_P4 1.6666665459e-1f
#define VITCOD_EXP_P5 5.0000001201e-1f

#if defined(__AVX2__) && defined(__FMA__)

/** 8-lane expf approximation (AVX2 + FMA). */
inline __m256
expApprox256_ps(__m256 x)
{
    x = _mm256_min_ps(x, _mm256_set1_ps(VITCOD_EXP_HI));
    x = _mm256_max_ps(x, _mm256_set1_ps(VITCOD_EXP_LO));

    // n = round-to-nearest(x / ln2); r = x - n*ln2 in two steps for
    // extra bits of ln2.
    __m256 n = _mm256_round_ps(
        _mm256_mul_ps(x, _mm256_set1_ps(VITCOD_LOG2E)),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m256 r =
        _mm256_fnmadd_ps(n, _mm256_set1_ps(VITCOD_EXP_C1), x);
    r = _mm256_fnmadd_ps(n, _mm256_set1_ps(VITCOD_EXP_C2), r);

    __m256 p = _mm256_set1_ps(VITCOD_EXP_P0);
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(VITCOD_EXP_P1));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(VITCOD_EXP_P2));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(VITCOD_EXP_P3));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(VITCOD_EXP_P4));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(VITCOD_EXP_P5));
    const __m256 r2 = _mm256_mul_ps(r, r);
    p = _mm256_add_ps(_mm256_fmadd_ps(p, r2, r),
                      _mm256_set1_ps(1.0f));

    // 2^n via exponent-bit construction (n in [-127, 128] after the
    // domain clamp).
    const __m256i bits = _mm256_slli_epi32(
        _mm256_add_epi32(_mm256_cvtps_epi32(n),
                         _mm256_set1_epi32(0x7f)),
        23);
    return _mm256_mul_ps(p, _mm256_castsi256_ps(bits));
}

#endif // __AVX2__ && __FMA__

#if defined(__AVX512F__)

/** 16-lane expf approximation (AVX-512F). */
inline __m512
expApprox512_ps(__m512 x)
{
    x = _mm512_min_ps(x, _mm512_set1_ps(VITCOD_EXP_HI));
    x = _mm512_max_ps(x, _mm512_set1_ps(VITCOD_EXP_LO));

    __m512 n = _mm512_roundscale_ps(
        _mm512_mul_ps(x, _mm512_set1_ps(VITCOD_LOG2E)),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m512 r =
        _mm512_fnmadd_ps(n, _mm512_set1_ps(VITCOD_EXP_C1), x);
    r = _mm512_fnmadd_ps(n, _mm512_set1_ps(VITCOD_EXP_C2), r);

    __m512 p = _mm512_set1_ps(VITCOD_EXP_P0);
    p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(VITCOD_EXP_P1));
    p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(VITCOD_EXP_P2));
    p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(VITCOD_EXP_P3));
    p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(VITCOD_EXP_P4));
    p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(VITCOD_EXP_P5));
    const __m512 r2 = _mm512_mul_ps(r, r);
    p = _mm512_add_ps(_mm512_fmadd_ps(p, r2, r),
                      _mm512_set1_ps(1.0f));

    const __m512i bits = _mm512_slli_epi32(
        _mm512_add_epi32(_mm512_cvtps_epi32(n),
                         _mm512_set1_epi32(0x7f)),
        23);
    return _mm512_mul_ps(p, _mm512_castsi512_ps(bits));
}

#endif // __AVX512F__

} // namespace vitcod::linalg::engine::isa

#endif // VITCOD_LINALG_ENGINE_ISA_SIMD_MATH_H
