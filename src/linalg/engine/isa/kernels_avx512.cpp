/**
 * @file
 * AVX-512F kernel panels. This TU is compiled with `-mavx512f` (see
 * CMakeLists.txt) and must only be entered after runtime feature
 * detection — the engine guarantees that by resolving its kernel
 * table through isa::resolveIsa().
 *
 * Tails are handled with AVX-512 lane masks instead of scalar
 * remainder loops: one maskz load covers any n, which matters at
 * the DeiT head dim (d = 64 = 4 full vectors, but LeViT stages and
 * tests hit ragged widths). Same numerics policy as the AVX2 TU:
 * FMA accumulation in fixed lane order, polynomial expf, double row
 * sums — deterministic, ulp-close to the scalar oracle, not
 * bitwise-equal to it.
 */

#if defined(__AVX512F__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/engine/isa/isa.h"
#include "linalg/engine/isa/simd_math.h"

namespace vitcod::linalg::engine::isa {

namespace {

/** Lane mask selecting the low @p n of 16 lanes (n <= 16). */
inline __mmask16
tailMask(size_t n)
{
    return static_cast<__mmask16>((1u << n) - 1u);
}

/**
 * Upper 256 bits of @p v using only AVX-512F
 * (_mm512_extractf32x8_ps needs the DQ extension).
 */
inline __m256
upper256(__m512 v)
{
    return _mm512_castps512_ps256(
        _mm512_shuffle_f32x4(v, v, _MM_SHUFFLE(0, 0, 3, 2)));
}

/** dot(a, b) over n floats: 2x16 FMA lanes + masked tail. */
inline float
dot(const float *__restrict a, const float *__restrict b, size_t n)
{
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i),
                               _mm512_loadu_ps(b + i), acc0);
        acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                               _mm512_loadu_ps(b + i + 16), acc1);
    }
    if (i + 16 <= n) {
        acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i),
                               _mm512_loadu_ps(b + i), acc0);
        i += 16;
    }
    if (i < n) {
        const __mmask16 m = tailMask(n - i);
        acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + i),
                               _mm512_maskz_loadu_ps(m, b + i), acc1);
    }
    // _mm512_reduce_add_ps is a fixed tree reduction: deterministic.
    return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

/**
 * Single-accumulator d=64 dot: four 16-lane chunks into one
 * register, reduced with the fixed _mm512_reduce_add_ps tree. Used
 * for both grouped and tail SDDMM entries so every entry rounds
 * identically however the nnz stream is chunked (CSR and CSC
 * traversals must stay bitwise-equal).
 */
inline float
dot64(const float *__restrict a, const float *__restrict b)
{
    __m512 acc = _mm512_mul_ps(_mm512_loadu_ps(a),
                               _mm512_loadu_ps(b));
    for (int c = 1; c < 4; ++c)
        acc = _mm512_fmadd_ps(_mm512_loadu_ps(a + 16 * c),
                              _mm512_loadu_ps(b + 16 * c), acc);
    return _mm512_reduce_add_ps(acc);
}

/**
 * SDDMM inner loop specialized for d == 64: the stationary row
 * lives in four registers for the whole panel row, and groups of
 * four gathered rows run on independent accumulators to hide the
 * reduce latency.
 */
inline void
sddmmRow64(const float *__restrict stat, const Matrix &moving,
           const uint32_t *__restrict idx, uint32_t begin,
           uint32_t end, uint32_t nnz, float *__restrict values,
           float scale)
{
    __m512 sreg[4];
    for (int c = 0; c < 4; ++c)
        sreg[c] = _mm512_loadu_ps(stat + 16 * c);
    uint32_t i = begin;
    for (; i + 4 <= end; i += 4) {
        for (uint32_t p = i + 4; p < i + 8 && p < nnz; ++p)
            __builtin_prefetch(moving.rowData(idx[p]));
        const float *__restrict m0 = moving.rowData(idx[i]);
        const float *__restrict m1 = moving.rowData(idx[i + 1]);
        const float *__restrict m2 = moving.rowData(idx[i + 2]);
        const float *__restrict m3 = moving.rowData(idx[i + 3]);
        __m512 a0 = _mm512_mul_ps(sreg[0], _mm512_loadu_ps(m0));
        __m512 a1 = _mm512_mul_ps(sreg[0], _mm512_loadu_ps(m1));
        __m512 a2 = _mm512_mul_ps(sreg[0], _mm512_loadu_ps(m2));
        __m512 a3 = _mm512_mul_ps(sreg[0], _mm512_loadu_ps(m3));
        for (int c = 1; c < 4; ++c) {
            const __m512 s = sreg[c];
            a0 = _mm512_fmadd_ps(s, _mm512_loadu_ps(m0 + 16 * c), a0);
            a1 = _mm512_fmadd_ps(s, _mm512_loadu_ps(m1 + 16 * c), a1);
            a2 = _mm512_fmadd_ps(s, _mm512_loadu_ps(m2 + 16 * c), a2);
            a3 = _mm512_fmadd_ps(s, _mm512_loadu_ps(m3 + 16 * c), a3);
        }
        values[i] = scale * _mm512_reduce_add_ps(a0);
        values[i + 1] = scale * _mm512_reduce_add_ps(a1);
        values[i + 2] = scale * _mm512_reduce_add_ps(a2);
        values[i + 3] = scale * _mm512_reduce_add_ps(a3);
    }
    for (; i < end; ++i)
        values[i] = scale * dot64(stat, moving.rowData(idx[i]));
}

/** out[0..n) += s * v[0..n), masked tail. */
inline void
axpy(float *__restrict out, const float *__restrict v, float s,
     size_t n)
{
    const __m512 bs = _mm512_set1_ps(s);
    size_t i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(
            out + i, _mm512_fmadd_ps(bs, _mm512_loadu_ps(v + i),
                                     _mm512_loadu_ps(out + i)));
    if (i < n) {
        const __mmask16 m = tailMask(n - i);
        _mm512_mask_storeu_ps(
            out + i, m,
            _mm512_fmadd_ps(bs, _mm512_maskz_loadu_ps(m, v + i),
                            _mm512_maskz_loadu_ps(m, out + i)));
    }
}

void
gemmPanelAvx512(const Matrix &a, const Matrix &b, Matrix &c, size_t r0,
                size_t r1, size_t k_block, size_t j_block)
{
    const size_t K = a.cols();
    const size_t N = b.cols();
    if (k_block == 0)
        k_block = K;
    if (j_block == 0)
        j_block = N;
    for (size_t kb = 0; kb < K; kb += k_block) {
        const size_t ke = std::min(K, kb + k_block);
        for (size_t jb = 0; jb < N; jb += j_block) {
            const size_t je = std::min(N, jb + j_block);
            const size_t jn = je - jb;
            for (size_t i = r0; i < r1; ++i) {
                const float *__restrict a_row = a.rowData(i);
                float *__restrict c_row = c.rowData(i) + jb;
                for (size_t k = kb; k < ke; ++k) {
                    const float aik = a_row[k];
                    if (aik == 0.0f)
                        continue;
                    axpy(c_row, b.rowData(k) + jb, aik, jn);
                }
            }
        }
    }
}

void
gemmTransBPanelAvx512(const Matrix &a, const Matrix &b, Matrix &c,
                      size_t r0, size_t r1)
{
    const size_t K = a.cols();
    for (size_t i = r0; i < r1; ++i) {
        const float *a_row = a.rowData(i);
        float *c_row = c.rowData(i);
        for (size_t j = 0; j < b.rows(); ++j)
            c_row[j] = dot(a_row, b.rowData(j), K);
    }
}

void
sddmmCsrPanelAvx512(const Matrix &q, const Matrix &k,
                    const std::vector<uint32_t> &row_ptr,
                    const std::vector<uint32_t> &col_idx, float *values,
                    size_t r0, size_t r1, float scale)
{
    const size_t d = q.cols();
    const uint32_t nnz = row_ptr[r1];
    if (d == 64) {
        for (size_t r = r0; r < r1; ++r)
            sddmmRow64(q.rowData(r), k, col_idx.data(), row_ptr[r],
                       row_ptr[r + 1], nnz, values, scale);
        return;
    }
    for (size_t r = r0; r < r1; ++r) {
        const float *q_row = q.rowData(r);
        const uint32_t end = row_ptr[r + 1];
        for (uint32_t i = row_ptr[r]; i < end; ++i) {
            if (i + 4 < nnz)
                __builtin_prefetch(k.rowData(col_idx[i + 4]));
            values[i] = scale * dot(q_row, k.rowData(col_idx[i]), d);
        }
    }
}

void
sddmmCscPanelAvx512(const Matrix &q, const Matrix &k,
                    const std::vector<uint32_t> &col_ptr,
                    const std::vector<uint32_t> &row_idx, float *values,
                    size_t c0, size_t c1, float scale)
{
    const size_t d = q.cols();
    const uint32_t nnz = col_ptr[c1];
    if (d == 64) {
        // Same kernel with the roles swapped: K row stationary,
        // Q rows gathered. dot64 rounds identically to the grouped
        // path, so this stays bitwise-equal to the CSR traversal.
        for (size_t c = c0; c < c1; ++c)
            sddmmRow64(k.rowData(c), q, row_idx.data(), col_ptr[c],
                       col_ptr[c + 1], nnz, values, scale);
        return;
    }
    for (size_t c = c0; c < c1; ++c) {
        const float *k_row = k.rowData(c);
        const uint32_t end = col_ptr[c + 1];
        for (uint32_t i = col_ptr[c]; i < end; ++i) {
            if (i + 4 < nnz)
                __builtin_prefetch(q.rowData(row_idx[i + 4]));
            values[i] = scale * dot(q.rowData(row_idx[i]), k_row, d);
        }
    }
}

void
softmaxCsrPanelAvx512(const std::vector<uint32_t> &row_ptr,
                      float *values, size_t r0, size_t r1)
{
    const __m512 ninf =
        _mm512_set1_ps(-std::numeric_limits<float>::infinity());
    for (size_t r = r0; r < r1; ++r) {
        const uint32_t begin = row_ptr[r];
        const uint32_t end = row_ptr[r + 1];
        if (begin == end)
            continue;
        const uint32_t n = end - begin;
        float *__restrict row = values + begin;

        // Max pass: masked lanes read as -inf so they never win.
        __m512 vmax = ninf;
        uint32_t i = 0;
        for (; i + 16 <= n; i += 16)
            vmax = _mm512_max_ps(vmax, _mm512_loadu_ps(row + i));
        if (i < n)
            vmax = _mm512_max_ps(
                vmax, _mm512_mask_loadu_ps(ninf, tailMask(n - i),
                                           row + i));
        const float max_v = _mm512_reduce_max_ps(vmax);

        // Exp pass; masked lanes are zeroed after exp so they add
        // nothing to the double-lane sum.
        const __m512 vm = _mm512_set1_ps(max_v);
        __m512d sum_pd = _mm512_setzero_pd();
        for (i = 0; i + 16 <= n; i += 16) {
            const __m512 e = expApprox512_ps(
                _mm512_sub_ps(_mm512_loadu_ps(row + i), vm));
            _mm512_storeu_ps(row + i, e);
            sum_pd = _mm512_add_pd(
                sum_pd,
                _mm512_cvtps_pd(_mm512_castps512_ps256(e)));
            sum_pd = _mm512_add_pd(
                sum_pd,
                _mm512_cvtps_pd(upper256(e)));
        }
        if (i < n) {
            const __mmask16 m = tailMask(n - i);
            const __m512 e = _mm512_maskz_mov_ps(
                m, expApprox512_ps(_mm512_sub_ps(
                       _mm512_maskz_loadu_ps(m, row + i), vm)));
            _mm512_mask_storeu_ps(row + i, m, e);
            sum_pd = _mm512_add_pd(
                sum_pd,
                _mm512_cvtps_pd(_mm512_castps512_ps256(e)));
            sum_pd = _mm512_add_pd(
                sum_pd,
                _mm512_cvtps_pd(upper256(e)));
        }
        const double sum = _mm512_reduce_add_pd(sum_pd);

        // Normalize.
        const auto inv = static_cast<float>(1.0 / sum);
        const __m512 vinv = _mm512_set1_ps(inv);
        for (i = 0; i + 16 <= n; i += 16)
            _mm512_storeu_ps(
                row + i,
                _mm512_mul_ps(_mm512_loadu_ps(row + i), vinv));
        if (i < n) {
            const __mmask16 m = tailMask(n - i);
            _mm512_mask_storeu_ps(
                row + i, m,
                _mm512_mul_ps(_mm512_maskz_loadu_ps(m, row + i),
                              vinv));
        }
    }
}

void
spmmPanelAvx512(const std::vector<uint32_t> &row_ptr,
                const std::vector<uint32_t> &col_idx,
                const float *values, const Matrix &v, Matrix &out,
                size_t r0, size_t r1)
{
    const size_t d = v.cols();
    if (d == 64) {
        // Register-resident output row: four 16-lane accumulators
        // hold the whole row across the nnz stream, so out_row is
        // touched exactly twice (load, store) per CSR row.
        for (size_t r = r0; r < r1; ++r) {
            float *__restrict out_row = out.rowData(r);
            __m512 acc[4];
            for (int c = 0; c < 4; ++c)
                acc[c] = _mm512_loadu_ps(out_row + 16 * c);
            const uint32_t end = row_ptr[r + 1];
            for (uint32_t i = row_ptr[r]; i < end; ++i) {
                if (i + 4 < end)
                    __builtin_prefetch(v.rowData(col_idx[i + 4]));
                const __m512 s = _mm512_set1_ps(values[i]);
                const float *__restrict vp = v.rowData(col_idx[i]);
                for (int c = 0; c < 4; ++c)
                    acc[c] = _mm512_fmadd_ps(
                        s, _mm512_loadu_ps(vp + 16 * c), acc[c]);
            }
            for (int c = 0; c < 4; ++c)
                _mm512_storeu_ps(out_row + 16 * c, acc[c]);
        }
        return;
    }
    for (size_t r = r0; r < r1; ++r) {
        float *__restrict out_row = out.rowData(r);
        uint32_t i = row_ptr[r];
        const uint32_t end = row_ptr[r + 1];
        for (; i + 2 <= end; i += 2) {
            const __m512 s0 = _mm512_set1_ps(values[i]);
            const __m512 s1 = _mm512_set1_ps(values[i + 1]);
            const float *__restrict v0 = v.rowData(col_idx[i]);
            const float *__restrict v1 = v.rowData(col_idx[i + 1]);
            size_t j = 0;
            for (; j + 16 <= d; j += 16) {
                __m512 acc = _mm512_loadu_ps(out_row + j);
                acc = _mm512_fmadd_ps(s0, _mm512_loadu_ps(v0 + j),
                                      acc);
                acc = _mm512_fmadd_ps(s1, _mm512_loadu_ps(v1 + j),
                                      acc);
                _mm512_storeu_ps(out_row + j, acc);
            }
            if (j < d) {
                const __mmask16 m = tailMask(d - j);
                __m512 acc = _mm512_maskz_loadu_ps(m, out_row + j);
                acc = _mm512_fmadd_ps(
                    s0, _mm512_maskz_loadu_ps(m, v0 + j), acc);
                acc = _mm512_fmadd_ps(
                    s1, _mm512_maskz_loadu_ps(m, v1 + j), acc);
                _mm512_mask_storeu_ps(out_row + j, m, acc);
            }
        }
        for (; i < end; ++i)
            axpy(out_row, v.rowData(col_idx[i]), values[i], d);
    }
}

} // namespace

const IsaKernelTable &
avx512KernelTable()
{
    static const IsaKernelTable table = {
        IsaLevel::Avx512,        &gemmPanelAvx512,
        &gemmTransBPanelAvx512,  &sddmmCsrPanelAvx512,
        &sddmmCscPanelAvx512,    &softmaxCsrPanelAvx512,
        &spmmPanelAvx512,
    };
    return table;
}

} // namespace vitcod::linalg::engine::isa

#endif // __AVX512F__
