/**
 * @file
 * ARM NEON kernel panels (aarch64 builds only — Advanced SIMD is
 * mandatory there, so no runtime probe beyond architecture). Kept
 * deliberately simple relative to the AVX TUs: 4-lane FMA dot/axpy
 * and vectorized softmax max/normalize passes with the exp itself
 * left to libm — correctness first on a target the primary CI
 * matrix cannot execute. The differential ulp suite still covers
 * this TU wherever an ARM runner executes the tests.
 */

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/engine/isa/isa.h"

namespace vitcod::linalg::engine::isa {

namespace {

/** dot(a, b) over n floats: 2x4 FMA lanes + scalar tail. */
inline float
dot(const float *__restrict a, const float *__restrict b, size_t n)
{
    float32x4_t acc0 = vdupq_n_f32(0.0f);
    float32x4_t acc1 = vdupq_n_f32(0.0f);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
        acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4),
                         vld1q_f32(b + i + 4));
    }
    if (i + 4 <= n) {
        acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
        i += 4;
    }
    float s = vaddvq_f32(vaddq_f32(acc0, acc1));
    for (; i < n; ++i)
        s += a[i] * b[i];
    return s;
}

/** out[0..n) += s * v[0..n). */
inline void
axpy(float *__restrict out, const float *__restrict v, float s,
     size_t n)
{
    const float32x4_t bs = vdupq_n_f32(s);
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        vst1q_f32(out + i,
                  vfmaq_f32(vld1q_f32(out + i), bs, vld1q_f32(v + i)));
    for (; i < n; ++i)
        out[i] += s * v[i];
}

void
gemmPanelNeon(const Matrix &a, const Matrix &b, Matrix &c, size_t r0,
              size_t r1, size_t k_block, size_t j_block)
{
    const size_t K = a.cols();
    const size_t N = b.cols();
    if (k_block == 0)
        k_block = K;
    if (j_block == 0)
        j_block = N;
    for (size_t kb = 0; kb < K; kb += k_block) {
        const size_t ke = std::min(K, kb + k_block);
        for (size_t jb = 0; jb < N; jb += j_block) {
            const size_t je = std::min(N, jb + j_block);
            const size_t jn = je - jb;
            for (size_t i = r0; i < r1; ++i) {
                const float *__restrict a_row = a.rowData(i);
                float *__restrict c_row = c.rowData(i) + jb;
                for (size_t k = kb; k < ke; ++k) {
                    const float aik = a_row[k];
                    if (aik == 0.0f)
                        continue;
                    axpy(c_row, b.rowData(k) + jb, aik, jn);
                }
            }
        }
    }
}

void
gemmTransBPanelNeon(const Matrix &a, const Matrix &b, Matrix &c,
                    size_t r0, size_t r1)
{
    const size_t K = a.cols();
    for (size_t i = r0; i < r1; ++i) {
        const float *a_row = a.rowData(i);
        float *c_row = c.rowData(i);
        for (size_t j = 0; j < b.rows(); ++j)
            c_row[j] = dot(a_row, b.rowData(j), K);
    }
}

void
sddmmCsrPanelNeon(const Matrix &q, const Matrix &k,
                  const std::vector<uint32_t> &row_ptr,
                  const std::vector<uint32_t> &col_idx, float *values,
                  size_t r0, size_t r1, float scale)
{
    const size_t d = q.cols();
    const uint32_t nnz = row_ptr[r1];
    for (size_t r = r0; r < r1; ++r) {
        const float *q_row = q.rowData(r);
        const uint32_t end = row_ptr[r + 1];
        for (uint32_t i = row_ptr[r]; i < end; ++i) {
            if (i + 4 < nnz)
                __builtin_prefetch(k.rowData(col_idx[i + 4]));
            values[i] = scale * dot(q_row, k.rowData(col_idx[i]), d);
        }
    }
}

void
sddmmCscPanelNeon(const Matrix &q, const Matrix &k,
                  const std::vector<uint32_t> &col_ptr,
                  const std::vector<uint32_t> &row_idx, float *values,
                  size_t c0, size_t c1, float scale)
{
    const size_t d = q.cols();
    const uint32_t nnz = col_ptr[c1];
    for (size_t c = c0; c < c1; ++c) {
        const float *k_row = k.rowData(c);
        const uint32_t end = col_ptr[c + 1];
        for (uint32_t i = col_ptr[c]; i < end; ++i) {
            if (i + 4 < nnz)
                __builtin_prefetch(q.rowData(row_idx[i + 4]));
            values[i] = scale * dot(q.rowData(row_idx[i]), k_row, d);
        }
    }
}

void
softmaxCsrPanelNeon(const std::vector<uint32_t> &row_ptr,
                    float *values, size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const uint32_t begin = row_ptr[r];
        const uint32_t end = row_ptr[r + 1];
        if (begin == end)
            continue;
        const uint32_t n = end - begin;
        float *__restrict row = values + begin;

        float max_v = -std::numeric_limits<float>::infinity();
        uint32_t i = 0;
        if (n >= 4) {
            float32x4_t vmax = vld1q_f32(row);
            for (i = 4; i + 4 <= n; i += 4)
                vmax = vmaxq_f32(vmax, vld1q_f32(row + i));
            max_v = vmaxvq_f32(vmax);
        }
        for (; i < n; ++i)
            max_v = std::max(max_v, row[i]);

        double sum = 0.0;
        for (i = 0; i < n; ++i) {
            const float e = std::exp(row[i] - max_v);
            row[i] = e;
            sum += e;
        }

        const auto inv = static_cast<float>(1.0 / sum);
        const float32x4_t vinv = vdupq_n_f32(inv);
        for (i = 0; i + 4 <= n; i += 4)
            vst1q_f32(row + i, vmulq_f32(vld1q_f32(row + i), vinv));
        for (; i < n; ++i)
            row[i] *= inv;
    }
}

void
spmmPanelNeon(const std::vector<uint32_t> &row_ptr,
              const std::vector<uint32_t> &col_idx, const float *values,
              const Matrix &v, Matrix &out, size_t r0, size_t r1)
{
    const size_t d = v.cols();
    for (size_t r = r0; r < r1; ++r) {
        float *__restrict out_row = out.rowData(r);
        uint32_t i = row_ptr[r];
        const uint32_t end = row_ptr[r + 1];
        for (; i + 2 <= end; i += 2) {
            const float32x4_t s0 = vdupq_n_f32(values[i]);
            const float32x4_t s1 = vdupq_n_f32(values[i + 1]);
            const float *__restrict v0 = v.rowData(col_idx[i]);
            const float *__restrict v1 = v.rowData(col_idx[i + 1]);
            size_t j = 0;
            for (; j + 4 <= d; j += 4) {
                float32x4_t acc = vld1q_f32(out_row + j);
                acc = vfmaq_f32(acc, s0, vld1q_f32(v0 + j));
                acc = vfmaq_f32(acc, s1, vld1q_f32(v1 + j));
                vst1q_f32(out_row + j, acc);
            }
            for (; j < d; ++j)
                out_row[j] +=
                    values[i] * v0[j] + values[i + 1] * v1[j];
        }
        for (; i < end; ++i)
            axpy(out_row, v.rowData(col_idx[i]), values[i], d);
    }
}

} // namespace

const IsaKernelTable &
neonKernelTable()
{
    static const IsaKernelTable table = {
        IsaLevel::Neon,        &gemmPanelNeon,
        &gemmTransBPanelNeon,  &sddmmCsrPanelNeon,
        &sddmmCscPanelNeon,    &softmaxCsrPanelNeon,
        &spmmPanelNeon,
    };
    return table;
}

} // namespace vitcod::linalg::engine::isa

#endif // __aarch64__ && __ARM_NEON
