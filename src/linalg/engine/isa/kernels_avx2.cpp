/**
 * @file
 * AVX2+FMA kernel panels. This TU is compiled with `-mavx2 -mfma`
 * (see CMakeLists.txt) and must only be entered after runtime
 * feature detection — the engine guarantees that by resolving its
 * kernel table through isa::resolveIsa().
 *
 * Numerics: dot products use two independent 8-lane FMA
 * accumulators reduced in a fixed order, softmax uses the shared
 * polynomial expf (simd_math.h) with the row sum accumulated in
 * 4-lane double. Results are deterministic for a given (input,
 * panel split) and land within the differential ulp budget of the
 * scalar oracle; they are NOT bitwise identical to the scalar tier
 * (FMA contracts the multiply-add rounding).
 */

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/engine/isa/isa.h"
#include "linalg/engine/isa/simd_math.h"

namespace vitcod::linalg::engine::isa {

namespace {

/** Fixed-order horizontal sum of one 8-lane register. */
inline float
hsum256(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_movehdup_ps(s));
    return _mm_cvtss_f32(s);
}

/** dot(a, b) over n floats: 2x8 FMA lanes + scalar tail. */
inline float
dot(const float *__restrict a, const float *__restrict b, size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                               _mm256_loadu_ps(b + i + 8), acc1);
    }
    if (i + 8 <= n) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        i += 8;
    }
    float s = hsum256(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i)
        s += a[i] * b[i];
    return s;
}

/**
 * Lane sums of four 8-lane accumulators, one per output slot:
 * result[j] = ((aj0+aj1)+(aj2+aj3)) + ((aj4+aj5)+(aj6+aj7)).
 */
inline __m128
hsum4x256(__m256 a, __m256 b, __m256 c, __m256 d)
{
    const __m256 ab = _mm256_hadd_ps(a, b);
    const __m256 cd = _mm256_hadd_ps(c, d);
    const __m256 q = _mm256_hadd_ps(ab, cd);
    return _mm_add_ps(_mm256_castps256_ps128(q),
                      _mm256_extractf128_ps(q, 1));
}

/**
 * Single-accumulator d=64 dot whose reduce order matches one slot
 * of hsum4x256, so grouped and tail SDDMM entries round
 * identically (the CSR/CSC paths must stay bitwise-equal however
 * the nnz stream is chunked).
 */
inline float
dot64(const float *__restrict a, const float *__restrict b)
{
    __m256 acc = _mm256_mul_ps(_mm256_loadu_ps(a),
                               _mm256_loadu_ps(b));
    for (int c = 1; c < 8; ++c)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + 8 * c),
                              _mm256_loadu_ps(b + 8 * c), acc);
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    __m128 plo = _mm_hadd_ps(lo, lo);
    plo = _mm_hadd_ps(plo, plo);
    __m128 phi = _mm_hadd_ps(hi, hi);
    phi = _mm_hadd_ps(phi, phi);
    return _mm_cvtss_f32(_mm_add_ss(plo, phi));
}

/**
 * SDDMM inner loop specialized for d == 64 (the DeiT/LeViT head
 * dim): the stationary row lives in registers for the whole panel
 * row, and groups of four gathered rows share one transposing
 * horizontal reduce — quartering the hsum cost and halving load
 * traffic vs. the generic dot().
 */
inline void
sddmmRow64(const float *__restrict stat, const Matrix &moving,
           const uint32_t *__restrict idx, uint32_t begin,
           uint32_t end, uint32_t nnz, float *__restrict values,
           float scale)
{
    __m256 sreg[8];
    for (int c = 0; c < 8; ++c)
        sreg[c] = _mm256_loadu_ps(stat + 8 * c);
    const __m128 vscale = _mm_set1_ps(scale);
    uint32_t i = begin;
    for (; i + 4 <= end; i += 4) {
        // Each gathered row spans four cache lines; touch all four
        // for every row in the next group so the loads below hit.
        for (uint32_t p = i + 4; p < i + 8 && p < nnz; ++p) {
            const float *pf = moving.rowData(idx[p]);
            __builtin_prefetch(pf);
            __builtin_prefetch(pf + 16);
            __builtin_prefetch(pf + 32);
            __builtin_prefetch(pf + 48);
        }
        const float *__restrict m0 = moving.rowData(idx[i]);
        const float *__restrict m1 = moving.rowData(idx[i + 1]);
        const float *__restrict m2 = moving.rowData(idx[i + 2]);
        const float *__restrict m3 = moving.rowData(idx[i + 3]);
        __m256 a0 = _mm256_mul_ps(sreg[0], _mm256_loadu_ps(m0));
        __m256 a1 = _mm256_mul_ps(sreg[0], _mm256_loadu_ps(m1));
        __m256 a2 = _mm256_mul_ps(sreg[0], _mm256_loadu_ps(m2));
        __m256 a3 = _mm256_mul_ps(sreg[0], _mm256_loadu_ps(m3));
        for (int c = 1; c < 8; ++c) {
            const __m256 s = sreg[c];
            a0 = _mm256_fmadd_ps(s, _mm256_loadu_ps(m0 + 8 * c), a0);
            a1 = _mm256_fmadd_ps(s, _mm256_loadu_ps(m1 + 8 * c), a1);
            a2 = _mm256_fmadd_ps(s, _mm256_loadu_ps(m2 + 8 * c), a2);
            a3 = _mm256_fmadd_ps(s, _mm256_loadu_ps(m3 + 8 * c), a3);
        }
        _mm_storeu_ps(values + i,
                      _mm_mul_ps(hsum4x256(a0, a1, a2, a3), vscale));
    }
    for (; i < end; ++i)
        values[i] = scale * dot64(stat, moving.rowData(idx[i]));
}

/** out[0..n) += s * v[0..n). */
inline void
axpy(float *__restrict out, const float *__restrict v, float s,
     size_t n)
{
    const __m256 bs = _mm256_set1_ps(s);
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            out + i, _mm256_fmadd_ps(bs, _mm256_loadu_ps(v + i),
                                     _mm256_loadu_ps(out + i)));
    for (; i < n; ++i)
        out[i] += s * v[i];
}

void
gemmPanelAvx2(const Matrix &a, const Matrix &b, Matrix &c, size_t r0,
              size_t r1, size_t k_block, size_t j_block)
{
    const size_t K = a.cols();
    const size_t N = b.cols();
    if (k_block == 0)
        k_block = K;
    if (j_block == 0)
        j_block = N;
    for (size_t kb = 0; kb < K; kb += k_block) {
        const size_t ke = std::min(K, kb + k_block);
        for (size_t jb = 0; jb < N; jb += j_block) {
            const size_t je = std::min(N, jb + j_block);
            const size_t jn = je - jb;
            for (size_t i = r0; i < r1; ++i) {
                const float *__restrict a_row = a.rowData(i);
                float *__restrict c_row = c.rowData(i) + jb;
                for (size_t k = kb; k < ke; ++k) {
                    const float aik = a_row[k];
                    if (aik == 0.0f)
                        continue;
                    axpy(c_row, b.rowData(k) + jb, aik, jn);
                }
            }
        }
    }
}

void
gemmTransBPanelAvx2(const Matrix &a, const Matrix &b, Matrix &c,
                    size_t r0, size_t r1)
{
    const size_t K = a.cols();
    for (size_t i = r0; i < r1; ++i) {
        const float *a_row = a.rowData(i);
        float *c_row = c.rowData(i);
        for (size_t j = 0; j < b.rows(); ++j)
            c_row[j] = dot(a_row, b.rowData(j), K);
    }
}

void
sddmmCsrPanelAvx2(const Matrix &q, const Matrix &k,
                  const std::vector<uint32_t> &row_ptr,
                  const std::vector<uint32_t> &col_idx, float *values,
                  size_t r0, size_t r1, float scale)
{
    const size_t d = q.cols();
    const uint32_t nnz = row_ptr[r1];
    if (d == 64) {
        for (size_t r = r0; r < r1; ++r)
            sddmmRow64(q.rowData(r), k, col_idx.data(), row_ptr[r],
                       row_ptr[r + 1], nnz, values, scale);
        return;
    }
    for (size_t r = r0; r < r1; ++r) {
        const float *q_row = q.rowData(r);
        const uint32_t end = row_ptr[r + 1];
        for (uint32_t i = row_ptr[r]; i < end; ++i) {
            if (i + 4 < nnz)
                __builtin_prefetch(k.rowData(col_idx[i + 4]));
            values[i] = scale * dot(q_row, k.rowData(col_idx[i]), d);
        }
    }
}

void
sddmmCscPanelAvx2(const Matrix &q, const Matrix &k,
                  const std::vector<uint32_t> &col_ptr,
                  const std::vector<uint32_t> &row_idx, float *values,
                  size_t c0, size_t c1, float scale)
{
    const size_t d = q.cols();
    const uint32_t nnz = col_ptr[c1];
    if (d == 64) {
        // Same kernel with the roles swapped: K row stationary,
        // Q rows gathered. dot64/hsum4x256 round identically, so
        // this stays bitwise-equal to the CSR traversal.
        for (size_t c = c0; c < c1; ++c)
            sddmmRow64(k.rowData(c), q, row_idx.data(), col_ptr[c],
                       col_ptr[c + 1], nnz, values, scale);
        return;
    }
    for (size_t c = c0; c < c1; ++c) {
        const float *k_row = k.rowData(c);
        const uint32_t end = col_ptr[c + 1];
        for (uint32_t i = col_ptr[c]; i < end; ++i) {
            if (i + 4 < nnz)
                __builtin_prefetch(q.rowData(row_idx[i + 4]));
            values[i] = scale * dot(q.rowData(row_idx[i]), k_row, d);
        }
    }
}

void
softmaxCsrPanelAvx2(const std::vector<uint32_t> &row_ptr,
                    float *values, size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const uint32_t begin = row_ptr[r];
        const uint32_t end = row_ptr[r + 1];
        if (begin == end)
            continue;
        const uint32_t n = end - begin;
        float *__restrict row = values + begin;
        if (n < 8) {
            // Tiny rows (98%+ sparsity): scalar, libm exp.
            float max_v = row[0];
            for (uint32_t j = 1; j < n; ++j)
                max_v = std::max(max_v, row[j]);
            double sum = 0.0;
            for (uint32_t j = 0; j < n; ++j) {
                const float e = std::exp(row[j] - max_v);
                row[j] = e;
                sum += e;
            }
            const auto inv = static_cast<float>(1.0 / sum);
            for (uint32_t j = 0; j < n; ++j)
                row[j] *= inv;
            continue;
        }

        // n >= 8: every pass handles the sub-width remainder with an
        // overlapping group at row + n - 8 — no staging buffer, no
        // libm tail. The overlapped lanes recompute bit-identical
        // results, so only the sum needs a lane mask (keep the last
        // rem lanes exactly once).
        const uint32_t rem = n & 7u;

        // Max pass (duplicated lanes cannot change a max).
        __m256 vmax = _mm256_loadu_ps(row);
        uint32_t i = 8;
        for (; i + 8 <= n; i += 8)
            vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row + i));
        if (rem)
            vmax =
                _mm256_max_ps(vmax, _mm256_loadu_ps(row + n - 8));
        __m128 m = _mm_max_ps(_mm256_castps256_ps128(vmax),
                              _mm256_extractf128_ps(vmax, 1));
        m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        m = _mm_max_ss(m, _mm_movehdup_ps(m));
        const float max_v = _mm_cvtss_f32(m);

        // Exp pass storing the exponentials; the running sum stays
        // double (4 lanes, fixed reduce order) so normalization
        // tracks the scalar oracle to the last few ulps. The tail
        // group is computed from the original values up front and
        // stored after the main loop (its overlapped lanes rewrite
        // the main loop's bits unchanged).
        const __m256 vm = _mm256_set1_ps(max_v);
        __m256d sum_pd = _mm256_setzero_pd();
        __m256 e_tail = _mm256_setzero_ps();
        if (rem)
            e_tail = expApprox256_ps(
                _mm256_sub_ps(_mm256_loadu_ps(row + n - 8), vm));
        for (i = 0; i + 8 <= n; i += 8) {
            const __m256 e = expApprox256_ps(
                _mm256_sub_ps(_mm256_loadu_ps(row + i), vm));
            _mm256_storeu_ps(row + i, e);
            sum_pd = _mm256_add_pd(
                sum_pd, _mm256_cvtps_pd(_mm256_castps256_ps128(e)));
            sum_pd = _mm256_add_pd(
                sum_pd, _mm256_cvtps_pd(_mm256_extractf128_ps(e, 1)));
        }
        if (rem) {
            _mm256_storeu_ps(row + n - 8, e_tail);
            // Lane j of the tail group is new iff j >= 8 - rem.
            static const int32_t keep[16] = {0,  0,  0,  0,  0,  0,
                                             0,  0,  -1, -1, -1, -1,
                                             -1, -1, -1, -1};
            const __m256 masked = _mm256_and_ps(
                e_tail, _mm256_castsi256_ps(_mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(
                                keep + rem))));
            sum_pd = _mm256_add_pd(
                sum_pd,
                _mm256_cvtps_pd(_mm256_castps256_ps128(masked)));
            sum_pd = _mm256_add_pd(
                sum_pd,
                _mm256_cvtps_pd(_mm256_extractf128_ps(masked, 1)));
        }
        const __m128d lo = _mm256_castpd256_pd128(sum_pd);
        const __m128d hi = _mm256_extractf128_pd(sum_pd, 1);
        __m128d s2 = _mm_add_pd(lo, hi);
        s2 = _mm_add_sd(s2, _mm_unpackhi_pd(s2, s2));
        const double sum = _mm_cvtsd_f64(s2);

        // Normalize (tail group loaded before the main loop touches
        // its overlapped lanes, stored after — same bits either way).
        const auto inv = static_cast<float>(1.0 / sum);
        const __m256 vinv = _mm256_set1_ps(inv);
        __m256 t_norm = _mm256_setzero_ps();
        if (rem)
            t_norm = _mm256_loadu_ps(row + n - 8);
        for (i = 0; i + 8 <= n; i += 8)
            _mm256_storeu_ps(
                row + i,
                _mm256_mul_ps(_mm256_loadu_ps(row + i), vinv));
        if (rem)
            _mm256_storeu_ps(row + n - 8,
                             _mm256_mul_ps(t_norm, vinv));
    }
}

void
spmmPanelAvx2(const std::vector<uint32_t> &row_ptr,
              const std::vector<uint32_t> &col_idx, const float *values,
              const Matrix &v, Matrix &out, size_t r0, size_t r1)
{
    const size_t d = v.cols();
    if (d == 64) {
        // Register-resident output row: eight 8-lane accumulators
        // hold the whole row across the nnz stream, so out_row is
        // touched exactly twice (load, store) per CSR row.
        for (size_t r = r0; r < r1; ++r) {
            float *__restrict out_row = out.rowData(r);
            __m256 acc[8];
            for (int c = 0; c < 8; ++c)
                acc[c] = _mm256_loadu_ps(out_row + 8 * c);
            const uint32_t end = row_ptr[r + 1];
            for (uint32_t i = row_ptr[r]; i < end; ++i) {
                // Gathered V rows miss L1; prefetch the full row
                // (four cache lines) 8 iterations ahead.
                if (i + 8 < end) {
                    const float *pf = v.rowData(col_idx[i + 8]);
                    __builtin_prefetch(pf);
                    __builtin_prefetch(pf + 16);
                    __builtin_prefetch(pf + 32);
                    __builtin_prefetch(pf + 48);
                }
                const __m256 s = _mm256_set1_ps(values[i]);
                const float *__restrict vp = v.rowData(col_idx[i]);
                for (int c = 0; c < 8; ++c)
                    acc[c] = _mm256_fmadd_ps(
                        s, _mm256_loadu_ps(vp + 8 * c), acc[c]);
            }
            for (int c = 0; c < 8; ++c)
                _mm256_storeu_ps(out_row + 8 * c, acc[c]);
        }
        return;
    }
    for (size_t r = r0; r < r1; ++r) {
        float *__restrict out_row = out.rowData(r);
        uint32_t i = row_ptr[r];
        const uint32_t end = row_ptr[r + 1];
        // Paired update halves the out_row load/store traffic.
        for (; i + 2 <= end; i += 2) {
            const __m256 s0 = _mm256_set1_ps(values[i]);
            const __m256 s1 = _mm256_set1_ps(values[i + 1]);
            const float *__restrict v0 = v.rowData(col_idx[i]);
            const float *__restrict v1 = v.rowData(col_idx[i + 1]);
            size_t j = 0;
            for (; j + 8 <= d; j += 8) {
                __m256 acc = _mm256_loadu_ps(out_row + j);
                acc = _mm256_fmadd_ps(s0, _mm256_loadu_ps(v0 + j),
                                      acc);
                acc = _mm256_fmadd_ps(s1, _mm256_loadu_ps(v1 + j),
                                      acc);
                _mm256_storeu_ps(out_row + j, acc);
            }
            for (; j < d; ++j)
                out_row[j] +=
                    values[i] * v0[j] + values[i + 1] * v1[j];
        }
        for (; i < end; ++i)
            axpy(out_row, v.rowData(col_idx[i]), values[i], d);
    }
}

} // namespace

const IsaKernelTable &
avx2KernelTable()
{
    static const IsaKernelTable table = {
        IsaLevel::Avx2,        &gemmPanelAvx2,
        &gemmTransBPanelAvx2,  &sddmmCsrPanelAvx2,
        &sddmmCscPanelAvx2,    &softmaxCsrPanelAvx2,
        &spmmPanelAvx2,
    };
    return table;
}

} // namespace vitcod::linalg::engine::isa

#endif // __AVX2__ && __FMA__
