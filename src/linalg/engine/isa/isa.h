/**
 * @file
 * Runtime ISA registry of the kernel engine: CPUID feature
 * detection, the (pure, mockable) ISA resolution policy, and the
 * per-ISA kernel tables the KernelEngine dispatches through.
 *
 * Each supported instruction set lives in its own translation unit
 * under src/linalg/engine/isa/ compiled with exactly the flags it
 * needs (`-mavx2 -mfma`, `-mavx512f`, ...), and exports one
 * IsaKernelTable of panel entry points with signatures identical to
 * the scalar bodies in kernels_opt.h. The rest of the binary is
 * compiled for the baseline target, so a build carrying AVX-512
 * kernels still *runs* everywhere — vector instructions execute only
 * after hostCpuFeatures() proves the CPU has them.
 *
 * Resolution policy (resolveIsa) is a pure function of (forced
 * level, CPU features, env string) so tests exercise every
 * precedence and clamping case without touching real CPUID or the
 * process environment.
 */

#ifndef VITCOD_LINALG_ENGINE_ISA_ISA_H
#define VITCOD_LINALG_ENGINE_ISA_ISA_H

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/engine/variant.h"
#include "linalg/matrix.h"
#include "sparse/formats.h"

namespace vitcod::linalg::engine::isa {

/** Host capabilities relevant to kernel selection (mockable). */
struct CpuFeatures
{
    bool avx2 = false;   //!< AVX2 and FMA
    bool avx512f = false; //!< AVX-512 Foundation
    bool neon = false;   //!< ARM Advanced SIMD

    bool operator==(const CpuFeatures &) const = default;
};

/** CPUID (x86) / architecture (ARM) probe of the running host. */
CpuFeatures hostCpuFeatures();

/** Whether @p f can execute kernels at @p level. Scalar: always. */
bool cpuSupports(const CpuFeatures &f, IsaLevel level);

/**
 * Whether kernels for @p level were compiled into this binary.
 * Scalar is always present; vector levels depend on the build
 * (compiler flag support, target architecture).
 */
bool isaCompiled(IsaLevel level);

/**
 * Every compiled ISA level, highest preference first (Scalar is
 * always last). What the differential test suite parameterizes
 * over; levels the host cannot run are skipped with a notice.
 */
std::span<const IsaLevel> compiledIsaLevels();

/**
 * Resolve the ISA level an engine should dispatch to.
 *
 * Precedence: @p forced (EngineConfig::isa / forceIsa()) wins over
 * @p env (`VITCOD_ISA`, may be nullptr / empty / "auto" for "no
 * override"), which wins over auto-detection (the highest compiled
 * level @p f supports). A requested level that is not compiled or
 * not supported by @p f clamps down to the best available level at
 * or below it, warning once per process per requested level; an
 * unparsable env string warns and is ignored.
 */
IsaLevel resolveIsa(std::optional<IsaLevel> forced,
                    const CpuFeatures &f, const char *env);

/**
 * Entry points of one ISA's optimized panels. Signatures mirror
 * kernels_opt.h — every function works on a half-open row (or
 * column) range and writes only its own output slice, which keeps
 * ThreadPool panel fan-out bitwise deterministic per variant.
 */
struct IsaKernelTable
{
    IsaLevel level = IsaLevel::Scalar;

    void (*gemmPanel)(const Matrix &a, const Matrix &b, Matrix &c,
                      size_t r0, size_t r1, size_t k_block,
                      size_t j_block) = nullptr;
    void (*gemmTransBPanel)(const Matrix &a, const Matrix &b,
                            Matrix &c, size_t r0, size_t r1) = nullptr;
    void (*sddmmCsrPanel)(const Matrix &q, const Matrix &k,
                          const std::vector<uint32_t> &row_ptr,
                          const std::vector<uint32_t> &col_idx,
                          float *values, size_t r0, size_t r1,
                          float scale) = nullptr;
    void (*sddmmCscPanel)(const Matrix &q, const Matrix &k,
                          const std::vector<uint32_t> &col_ptr,
                          const std::vector<uint32_t> &row_idx,
                          float *values, size_t c0, size_t c1,
                          float scale) = nullptr;
    void (*softmaxCsrPanel)(const std::vector<uint32_t> &row_ptr,
                            float *values, size_t r0,
                            size_t r1) = nullptr;
    void (*spmmPanel)(const std::vector<uint32_t> &row_ptr,
                      const std::vector<uint32_t> &col_idx,
                      const float *values, const Matrix &v, Matrix &out,
                      size_t r0, size_t r1) = nullptr;
};

/**
 * Kernel table for @p level, or nullptr when that level was not
 * compiled into this binary. The returned table has every entry
 * point non-null and static lifetime.
 */
const IsaKernelTable *isaKernelTable(IsaLevel level);

} // namespace vitcod::linalg::engine::isa

#endif // VITCOD_LINALG_ENGINE_ISA_ISA_H
