#include "linalg/engine/isa/isa.h"

#include <mutex>

#include "common/logging.h"
#include "linalg/engine/kernels_opt.h"

namespace vitcod::linalg::engine::isa {

// Per-ISA tables live in their own translation units, compiled with
// exactly the target flags they need. CMake defines
// VITCOD_ENGINE_HAVE_* if and only if it adds the matching TU to the
// build, so these externs never dangle.
#if defined(VITCOD_ENGINE_HAVE_AVX2)
const IsaKernelTable &avx2KernelTable();
#endif
#if defined(VITCOD_ENGINE_HAVE_AVX512)
const IsaKernelTable &avx512KernelTable();
#endif
#if defined(VITCOD_ENGINE_HAVE_NEON)
const IsaKernelTable &neonKernelTable();
#endif

namespace {

/** The scalar tier-baseline table: the kernels_opt.cpp bodies. */
const IsaKernelTable kScalarTable = {
    IsaLevel::Scalar,  &gemmPanel,       &gemmTransBPanel,
    &sddmmCsrPanel,    &sddmmCscPanel,   &softmaxCsrPanel,
    &spmmPanel,
};

} // namespace

CpuFeatures
hostCpuFeatures()
{
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports is gcc/clang CPUID with cached results.
    f.avx2 = __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("fma");
    f.avx512f = __builtin_cpu_supports("avx512f");
#elif defined(__aarch64__)
    f.neon = true; // Advanced SIMD is mandatory on AArch64
#endif
    return f;
}

bool
cpuSupports(const CpuFeatures &f, IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar: return true;
    case IsaLevel::Neon: return f.neon;
    case IsaLevel::Avx2: return f.avx2;
    case IsaLevel::Avx512: return f.avx512f && f.avx2;
    }
    return false;
}

const IsaKernelTable *
isaKernelTable(IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar: return &kScalarTable;
    case IsaLevel::Neon:
#if defined(VITCOD_ENGINE_HAVE_NEON)
        return &neonKernelTable();
#else
        return nullptr;
#endif
    case IsaLevel::Avx2:
#if defined(VITCOD_ENGINE_HAVE_AVX2)
        return &avx2KernelTable();
#else
        return nullptr;
#endif
    case IsaLevel::Avx512:
#if defined(VITCOD_ENGINE_HAVE_AVX512)
        return &avx512KernelTable();
#else
        return nullptr;
#endif
    }
    return nullptr;
}

bool
isaCompiled(IsaLevel level)
{
    return isaKernelTable(level) != nullptr;
}

std::span<const IsaLevel>
compiledIsaLevels()
{
    static const std::vector<IsaLevel> levels = [] {
        std::vector<IsaLevel> v;
        // Highest preference first; Scalar always compiles.
        for (IsaLevel l : {IsaLevel::Avx512, IsaLevel::Avx2,
                           IsaLevel::Neon, IsaLevel::Scalar})
            if (isaCompiled(l))
                v.push_back(l);
        return v;
    }();
    return levels;
}

namespace {

/** Highest compiled level @p f supports (Scalar always qualifies). */
IsaLevel
bestIsa(const CpuFeatures &f)
{
    for (IsaLevel l : compiledIsaLevels())
        if (cpuSupports(f, l))
            return l;
    return IsaLevel::Scalar;
}

/** Clamp @p want down to the best available level at or below it. */
IsaLevel
clampIsa(IsaLevel want, const CpuFeatures &f, const char *origin)
{
    if (isaCompiled(want) && cpuSupports(f, want))
        return want;
    IsaLevel best = IsaLevel::Scalar;
    for (IsaLevel l : compiledIsaLevels())
        if (l <= want && cpuSupports(f, l)) {
            best = l;
            break; // compiledIsaLevels() is highest-first
        }
    // One warning per (requested, got) pair per process: engines are
    // constructed per worker and must not spam the log.
    static std::mutex mu;
    static bool warned[kNumIsaLevels][kNumIsaLevels] = {};
    std::lock_guard<std::mutex> g(mu);
    auto &w = warned[static_cast<size_t>(want)]
                    [static_cast<size_t>(best)];
    if (!w) {
        w = true;
        warn("requested ISA '", isaName(want), "' (", origin,
                ") is ",
                isaCompiled(want) ? "not supported by this CPU"
                                  : "not compiled into this binary",
                "; falling back to '", isaName(best), "'");
    }
    return best;
}

} // namespace

IsaLevel
resolveIsa(std::optional<IsaLevel> forced, const CpuFeatures &f,
           const char *env)
{
    if (forced)
        return clampIsa(*forced, f, "config");
    if (env && *env) {
        const std::string_view sv(env);
        if (sv != "auto") {
            if (const auto parsed = parseIsaName(sv))
                return clampIsa(*parsed, f, "VITCOD_ISA");
            static std::once_flag once;
            std::call_once(once, [&] {
                warn("VITCOD_ISA='", env,
                        "' is not a known ISA (expected scalar|neon|"
                        "avx2|avx512|auto); using auto detection");
            });
        }
    }
    return bestIsa(f);
}

} // namespace vitcod::linalg::engine::isa
