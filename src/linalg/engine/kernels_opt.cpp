#include "linalg/engine/kernels_opt.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vitcod::linalg::engine {

namespace {

/**
 * Four-lane dot product: independent accumulators break the serial
 * add chain so the compiler can keep the loop in SIMD registers.
 */
inline float
dot4(const float *__restrict a, const float *__restrict b, size_t n)
{
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    for (; i < n; ++i)
        s0 += a[i] * b[i];
    return (s0 + s1) + (s2 + s3);
}

/** out[0..n) += s * v[0..n), the SpMM/GEMM inner update. */
inline void
axpy(float *__restrict out, const float *__restrict v, float s, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] += s * v[i];
}

} // namespace

void
gemmPanel(const Matrix &a, const Matrix &b, Matrix &c, size_t r0,
          size_t r1, size_t k_block, size_t j_block)
{
    const size_t K = a.cols();
    const size_t N = b.cols();
    if (k_block == 0)
        k_block = K;
    if (j_block == 0)
        j_block = N;
    // Block k and j so the touched B panel (k_block x j_block floats)
    // stays cache-resident while every row of the C panel streams it.
    for (size_t kb = 0; kb < K; kb += k_block) {
        const size_t ke = std::min(K, kb + k_block);
        for (size_t jb = 0; jb < N; jb += j_block) {
            const size_t je = std::min(N, jb + j_block);
            const size_t jn = je - jb;
            for (size_t i = r0; i < r1; ++i) {
                const float *__restrict a_row = a.rowData(i);
                float *__restrict c_row = c.rowData(i) + jb;
                for (size_t k = kb; k < ke; ++k) {
                    const float aik = a_row[k];
                    if (aik == 0.0f)
                        continue;
                    axpy(c_row, b.rowData(k) + jb, aik, jn);
                }
            }
        }
    }
}

void
gemmTransBPanel(const Matrix &a, const Matrix &b, Matrix &c, size_t r0,
                size_t r1)
{
    const size_t K = a.cols();
    for (size_t i = r0; i < r1; ++i) {
        const float *a_row = a.rowData(i);
        float *c_row = c.rowData(i);
        for (size_t j = 0; j < b.rows(); ++j)
            c_row[j] = dot4(a_row, b.rowData(j), K);
    }
}

void
sddmmCsrPanel(const Matrix &q, const Matrix &k,
              const std::vector<uint32_t> &row_ptr,
              const std::vector<uint32_t> &col_idx, float *values,
              size_t r0, size_t r1, float scale)
{
    const size_t d = q.cols();
    const uint32_t nnz = row_ptr[r1];
    for (size_t r = r0; r < r1; ++r) {
        const float *q_row = q.rowData(r);
        const uint32_t end = row_ptr[r + 1];
        for (uint32_t i = row_ptr[r]; i < end; ++i) {
            // The gathered K rows are the only irregular accesses;
            // fetch a few entries ahead while this dot computes.
            if (i + 4 < nnz)
                __builtin_prefetch(k.rowData(col_idx[i + 4]));
            values[i] = scale * dot4(q_row, k.rowData(col_idx[i]), d);
        }
    }
}

void
sddmmCscPanel(const Matrix &q, const Matrix &k,
              const std::vector<uint32_t> &col_ptr,
              const std::vector<uint32_t> &row_idx, float *values,
              size_t c0, size_t c1, float scale)
{
    const size_t d = q.cols();
    const uint32_t nnz = col_ptr[c1];
    for (size_t c = c0; c < c1; ++c) {
        const float *k_row = k.rowData(c); // stationary across the column
        const uint32_t end = col_ptr[c + 1];
        for (uint32_t i = col_ptr[c]; i < end; ++i) {
            if (i + 4 < nnz)
                __builtin_prefetch(q.rowData(row_idx[i + 4]));
            values[i] = scale * dot4(q.rowData(row_idx[i]), k_row, d);
        }
    }
}

void
softmaxCsrPanel(const std::vector<uint32_t> &row_ptr, float *values,
                size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const uint32_t begin = row_ptr[r];
        const uint32_t end = row_ptr[r + 1];
        if (begin == end)
            continue;
        float max_v = -std::numeric_limits<float>::infinity();
        for (uint32_t i = begin; i < end; ++i)
            max_v = std::max(max_v, values[i]);
        // Single-precision exp (the scores and weights are float
        // anyway); the running sum stays double so normalization
        // matches the reference to the last few ulps.
        double sum = 0.0;
        for (uint32_t i = begin; i < end; ++i) {
            const float e = std::exp(values[i] - max_v);
            values[i] = e;
            sum += e;
        }
        const auto inv = static_cast<float>(1.0 / sum);
        for (uint32_t i = begin; i < end; ++i)
            values[i] *= inv;
    }
}

void
spmmPanel(const std::vector<uint32_t> &row_ptr,
          const std::vector<uint32_t> &col_idx, const float *values,
          const Matrix &v, Matrix &out, size_t r0, size_t r1)
{
    const size_t d = v.cols();
    for (size_t r = r0; r < r1; ++r) {
        float *__restrict out_row = out.rowData(r);
        uint32_t i = row_ptr[r];
        const uint32_t end = row_ptr[r + 1];
        // Paired update halves the out_row load/store traffic.
        for (; i + 2 <= end; i += 2) {
            const float s0 = values[i];
            const float s1 = values[i + 1];
            const float *__restrict v0 = v.rowData(col_idx[i]);
            const float *__restrict v1 = v.rowData(col_idx[i + 1]);
            for (size_t j = 0; j < d; ++j)
                out_row[j] += s0 * v0[j] + s1 * v1[j];
        }
        for (; i < end; ++i)
            axpy(out_row, v.rowData(col_idx[i]), values[i], d);
    }
}

void
maskToCsrStructure(const sparse::BitMask &mask,
                   std::vector<uint32_t> &row_ptr,
                   std::vector<uint32_t> &col_idx)
{
    const size_t rows = mask.rows();
    const size_t cols = mask.cols();
    // Count pass (vectorizable byte sum per row), then a branchless
    // fill pass: every cell stores its column, the cursor advances
    // only on set bits — random masks would mispredict a branch on
    // nearly every nonzero.
    row_ptr.assign(rows + 1, 0);
    for (size_t r = 0; r < rows; ++r) {
        uint32_t n = 0;
        for (size_t c = 0; c < cols; ++c)
            n += mask.get(r, c) ? 1u : 0u;
        row_ptr[r + 1] = row_ptr[r] + n;
    }
    // One lane of slack: the final iteration writes one past the
    // last nonzero's slot.
    col_idx.resize(row_ptr[rows] + 1);
    uint32_t *out = col_idx.data();
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
            *out = static_cast<uint32_t>(c);
            out += mask.get(r, c) ? 1 : 0;
        }
    }
    col_idx.resize(row_ptr[rows]);
}

void
csrToCscStructure(size_t rows, size_t cols,
                  const std::vector<uint32_t> &row_ptr,
                  const std::vector<uint32_t> &col_idx,
                  std::vector<uint32_t> &col_ptr,
                  std::vector<uint32_t> &row_idx)
{
    col_ptr.assign(cols + 1, 0);
    for (const uint32_t c : col_idx)
        ++col_ptr[c + 1];
    for (size_t c = 0; c < cols; ++c)
        col_ptr[c + 1] += col_ptr[c];
    row_idx.resize(col_idx.size());
    std::vector<uint32_t> cursor(col_ptr.begin(), col_ptr.end() - 1);
    for (size_t r = 0; r < rows; ++r) {
        const uint32_t end = row_ptr[r + 1];
        for (uint32_t i = row_ptr[r]; i < end; ++i)
            row_idx[cursor[col_idx[i]]++] = static_cast<uint32_t>(r);
    }
}

void
cscValuesToCsr(size_t rows, const std::vector<uint32_t> &col_ptr,
               const std::vector<uint32_t> &row_idx,
               const std::vector<float> &csc_values,
               const std::vector<uint32_t> &csr_row_ptr,
               std::vector<float> &csr_values)
{
    csr_values.resize(csc_values.size());
    // Walking columns left to right emits each row's entries in
    // increasing column order, so a per-row cursor lands every value
    // in its exact CSR slot.
    std::vector<uint32_t> cursor(csr_row_ptr.begin(),
                                 csr_row_ptr.begin() +
                                     static_cast<ptrdiff_t>(rows));
    const size_t cols = col_ptr.size() - 1;
    for (size_t c = 0; c < cols; ++c) {
        const uint32_t end = col_ptr[c + 1];
        for (uint32_t i = col_ptr[c]; i < end; ++i)
            csr_values[cursor[row_idx[i]]++] = csc_values[i];
    }
}

} // namespace vitcod::linalg::engine
