/**
 * @file
 * Optimized kernel bodies of the execution engine: cache-blocked,
 * branch-light, multi-accumulator loops over raw CSR/CSC arrays and
 * row-major dense panels. Every function here works on a half-open
 * row (or column) range so the KernelEngine can carve work into
 * independent panels for ThreadPool::parallelFor — a panel writes
 * only its own output slice, which is what makes parallel runs
 * bitwise deterministic.
 *
 * Numerics: dot products accumulate in four independent float lanes
 * (reduced at the end), softmax exponentiates in double like the
 * scalar reference. Differential tests pin the optimized results to
 * the golden kernels within a few hundred ulps.
 */

#ifndef VITCOD_LINALG_ENGINE_KERNELS_OPT_H
#define VITCOD_LINALG_ENGINE_KERNELS_OPT_H

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "sparse/formats.h"

namespace vitcod::linalg::engine {

/** Dense C += A*B over C rows [r0, r1), blocked on k and j. */
void gemmPanel(const Matrix &a, const Matrix &b, Matrix &c, size_t r0,
               size_t r1, size_t k_block, size_t j_block);

/** Dense C = A*B^T over C rows [r0, r1): the score kernel. */
void gemmTransBPanel(const Matrix &a, const Matrix &b, Matrix &c,
                     size_t r0, size_t r1);

/**
 * SDDMM over CSR rows [r0, r1): values[i] = scale * dot(q.row(r),
 * k.row(col_idx[i])) for every stored nonzero of those rows.
 * Row-stationary: one Q row stays hot while its mask columns stream.
 */
void sddmmCsrPanel(const Matrix &q, const Matrix &k,
                   const std::vector<uint32_t> &row_ptr,
                   const std::vector<uint32_t> &col_idx, float *values,
                   size_t r0, size_t r1, float scale);

/**
 * SDDMM over CSC columns [c0, c1): the K-stationary walk of the
 * ViTCoD sparser engine (paper Sec. V-B1) — one K row is reused
 * across every query attending to it, which is the prefetch-friendly
 * order when columns are sparse and rows are scattered.
 */
void sddmmCscPanel(const Matrix &q, const Matrix &k,
                   const std::vector<uint32_t> &col_ptr,
                   const std::vector<uint32_t> &row_idx, float *values,
                   size_t c0, size_t c1, float scale);

/**
 * Fused masked softmax over CSR rows [r0, r1), in place: single
 * max pass, single exp pass storing the exponentials, one normalize
 * multiply — no COO round-trip and no second exp.
 */
void softmaxCsrPanel(const std::vector<uint32_t> &row_ptr, float *values,
                     size_t r0, size_t r1);

/** SpMM out.rows [r0, r1) = S[r0:r1, :] * V, accumulation-friendly. */
void spmmPanel(const std::vector<uint32_t> &row_ptr,
               const std::vector<uint32_t> &col_idx, const float *values,
               const Matrix &v, Matrix &out, size_t r0, size_t r1);

/**
 * CSR structure of @p mask without values: bulk two-pass scan
 * (count, fill), no per-nonzero callback. Returns {row_ptr, col_idx}.
 */
void maskToCsrStructure(const sparse::BitMask &mask,
                        std::vector<uint32_t> &row_ptr,
                        std::vector<uint32_t> &col_idx);

/**
 * CSC structure from an existing CSR structure in O(nnz) (no second
 * mask scan): count column occupancy, prefix-sum, fill. Row indices
 * within each column come out ascending because CSR rows are walked
 * in order.
 */
void csrToCscStructure(size_t rows, size_t cols,
                       const std::vector<uint32_t> &row_ptr,
                       const std::vector<uint32_t> &col_idx,
                       std::vector<uint32_t> &col_ptr,
                       std::vector<uint32_t> &row_idx);

/**
 * Scatter CSC-ordered values into CSR order for the same structure:
 * csr_values[pos] = csc_values[i] with pos the CSR slot of nonzero i.
 * O(nnz) counting pass; lets the CSC SDDMM feed the CSR softmax/SpMM.
 */
void cscValuesToCsr(size_t rows, const std::vector<uint32_t> &col_ptr,
                    const std::vector<uint32_t> &row_idx,
                    const std::vector<float> &csc_values,
                    const std::vector<uint32_t> &csr_row_ptr,
                    std::vector<float> &csr_values);

} // namespace vitcod::linalg::engine

#endif // VITCOD_LINALG_ENGINE_KERNELS_OPT_H
