/**
 * @file
 * KernelEngine: the dispatch layer between callers (reference block,
 * serving backends, benches) and kernel implementations. Dispatch is
 * two-level (see variant.h):
 *
 *  - **Tier** — per call it chooses the scalar golden kernels
 *    (src/linalg/{kernels,sparse_kernels}) for tiny shapes or when
 *    pinned to KernelTier::Reference (the oracle stays the oracle),
 *    or the cache-blocked optimized panels: row-stationary CSR SDDMM
 *    for moderate sparsity, the K-stationary CSC walk above
 *    cscSparsityThreshold (mirroring the accelerator's denser /
 *    sparser split), and a ThreadPool parallel-for over row panels
 *    when the work amortizes the fork.
 *  - **ISA** — the optimized panels themselves are dispatched through
 *    a per-ISA kernel table (isa/isa.h) resolved once at engine
 *    construction: EngineConfig::isa, else `VITCOD_ISA`, else the
 *    highest level CPUID proves the host supports. forceIsa()
 *    re-targets a live engine.
 *
 * Dispatch decisions are counted (DispatchStats, including which ISA
 * ran) so tests and benches can assert which path actually executed.
 * Engines are safe to share across threads: all methods are const
 * apart from atomic counters and forceIsa()'s atomic table swap.
 */

#ifndef VITCOD_LINALG_ENGINE_ENGINE_H
#define VITCOD_LINALG_ENGINE_ENGINE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "linalg/engine/isa/isa.h"
#include "linalg/engine/thread_pool.h"
#include "linalg/engine/variant.h"
#include "linalg/matrix.h"
#include "sparse/formats.h"

namespace vitcod::linalg::engine {

/** Tuning knobs; defaults fit the 196x196 DeiT attention shapes. */
struct EngineConfig
{
    /**
     * Algorithm tier pin. Unset = Auto: per call, shapes below
     * minOptimizedMacs run the scalar reference, everything else the
     * optimized panels.
     */
    std::optional<KernelTier> tier;

    /**
     * ISA pin for the optimized panels. Unset defers to the
     * `VITCOD_ISA` environment variable, then CPUID auto-detection.
     * A pinned level the host cannot run clamps down (see
     * isa::resolveIsa); KernelEngine::variant() reports what
     * actually resolved.
     */
    std::optional<IsaLevel> isa;

    /** Rows per parallel panel. */
    size_t rowPanel = 16;

    /** GEMM cache blocking (0 = unblocked). */
    size_t gemmKBlock = 64;
    size_t gemmJBlock = 256;

    /** Auto tier: below this many MACs, the scalar reference runs. */
    size_t minOptimizedMacs = 2048;

    /** Auto mode: below this many MACs a single thread runs. */
    size_t minParallelMacs = 1u << 16;

    /**
     * Mask sparsity at or above which SDDMM switches to the
     * K-stationary CSC traversal (the sparser-engine order).
     */
    double cscSparsityThreshold = 0.95;

    /**
     * Entries in the mask -> compressed-structure cache. ViTCoD
     * masks are fixed per (layer, head), so the O(n^2) mask scan is
     * one-time work in steady state — exactly the paper's
     * preprocessing argument. Content-addressed (64-bit hash, full
     * compare on hit), LRU eviction; 0 disables caching. Must
     * exceed the masks a serving worker cycles through for steady-
     * state hits: the default covers two DeiT-Base-sized plans
     * (144 heads each) at ~60 KB per cached 196x196 entry.
     */
    size_t structureCacheCapacity = 320;
};

/** Cumulative dispatch counters (one engine instance). */
struct DispatchStats
{
    uint64_t gemmReference = 0;
    uint64_t gemmOptimized = 0;
    uint64_t sddmmReference = 0;
    uint64_t sddmmCsr = 0;
    uint64_t sddmmCsc = 0;
    uint64_t softmaxReference = 0;
    uint64_t softmaxOptimized = 0;
    uint64_t spmmReference = 0;
    uint64_t spmmOptimized = 0;
    uint64_t parallelLaunches = 0; //!< calls that fanned out to the pool
    uint64_t structureHits = 0;    //!< mask structure served from cache
    uint64_t structureMisses = 0;  //!< mask structure built fresh

    /** @name Optimized kernel launches by executing ISA
     *  (declaration order matches IsaLevel's enumerator order)
     *  @{ */
    uint64_t isaScalar = 0;
    uint64_t isaNeon = 0;
    uint64_t isaAvx2 = 0;
    uint64_t isaAvx512 = 0;
    /** @} */

    bool operator==(const DispatchStats &) const = default;
};

/** One DispatchStats counter: serialization name + member pointer. */
struct DispatchStatsField
{
    const char *name;
    uint64_t DispatchStats::*member;
};

/**
 * Every DispatchStats counter, in declaration order. Arithmetic,
 * serializers and comparators iterate this single table so a newly
 * added counter cannot be silently dropped by one of them.
 */
std::span<const DispatchStatsField> dispatchStatsFields();

/**
 * Counter-wise difference (a - b): the dispatch activity between two
 * stats() snapshots of the same engine. @pre a >= b counter-wise.
 */
DispatchStats operator-(const DispatchStats &a, const DispatchStats &b);

/**
 * Borrowed view of a prebuilt compressed mask layout — what the
 * Schedule IR (core::schedule::HeadLayout) hands the engine so a
 * caller that already compiled its masks skips the engine's
 * content-addressed structure cache entirely: no hashing, no lock,
 * no O(n^2) mask scan on the execution path. The referenced arrays
 * must outlive the call and describe the same mask the caller
 * passes alongside.
 */
struct MaskLayoutView
{
    size_t rows = 0;
    size_t cols = 0;
    const std::vector<uint32_t> *rowPtr = nullptr; //!< CSR, rows+1
    const std::vector<uint32_t> *colIdx = nullptr;
    const std::vector<uint32_t> *colPtr = nullptr; //!< useCsc only
    const std::vector<uint32_t> *rowIdx = nullptr;
    bool useCsc = false; //!< K-stationary CSC walk for the SDDMM
};

/** Shape/sparsity/ISA-dispatching kernel executor. */
class KernelEngine
{
  public:
    /**
     * @param pool Parallel-for provider; nullptr runs single-threaded.
     *        Not owned; must outlive the engine.
     */
    explicit KernelEngine(EngineConfig cfg = {},
                          ThreadPool *pool = nullptr);

    ~KernelEngine();

    KernelEngine(const KernelEngine &) = delete;
    KernelEngine &operator=(const KernelEngine &) = delete;

    const EngineConfig &config() const { return cfg_; }

    /**
     * The variant optimized-eligible dispatches execute with. A
     * Reference-pinned engine reports {Reference, Scalar} (the
     * oracle is host-independent by construction); otherwise the
     * tier is Optimized — what every hot shape runs — and the ISA is
     * the resolved level.
     */
    KernelVariant variant() const;

    /** The resolved ISA level of the optimized panels. */
    IsaLevel isaLevel() const;

    /**
     * Re-target the optimized panels to @p level, clamped down to
     * the best compiled-and-supported level at or below it. Returns
     * the level actually applied. Thread-safe (atomic table swap);
     * in-flight calls finish on the table they loaded.
     */
    IsaLevel forceIsa(IsaLevel level);

    /** Worker threads available to parallel-for (1 = serial). */
    size_t threads() const;

    /**
     * C = A * B into a caller-owned buffer: @p c is reshaped (its
     * capacity is reused, so steady-state callers never allocate —
     * the ModelExecutor's BufferArena path).
     */
    void gemmInto(const Matrix &a, const Matrix &b, Matrix &c) const;

    /** C = A * B^T into a caller-owned buffer (dense score kernel). */
    void gemmTransBInto(const Matrix &a, const Matrix &b,
                        Matrix &c) const;

    /** SDDMM: scores at mask nonzeros, CSR out. */
    sparse::Csr sddmm(const Matrix &q, const Matrix &k,
                      const sparse::BitMask &mask,
                      float scale = 1.0f) const;

    /** Row softmax over stored nonzeros (in place on the copy). */
    sparse::Csr maskedSoftmaxRows(sparse::Csr s) const;

    /** out = S * V. */
    Matrix spmm(const sparse::Csr &s, const Matrix &v) const;

    /**
     * Fused sparse attention into a caller-owned output buffer:
     * spmm(softmax(sddmm(q,k,mask))) without materializing
     * intermediate Csr objects — structure is built once (and
     * cached) and values flow through in place. The optimized path
     * allocates only the nnz value vector; a reference dispatch
     * still materializes its Csr intermediates.
     */
    void sparseAttentionInto(const Matrix &q, const Matrix &k,
                             const Matrix &v,
                             const sparse::BitMask &mask, float scale,
                             Matrix &out) const;

    /**
     * Fused sparse attention over a prebuilt layout (the Schedule
     * IR's visit order): the structure cache is bypassed — no
     * lookup, no scan, no structure counters. @p mask must be the
     * mask @p layout was compiled from; it is consulted only by the
     * reference dispatch (tiny shapes / KernelTier::Reference),
     * which keeps dispatch decisions identical to the mask-only
     * overload.
     */
    void sparseAttentionInto(const Matrix &q, const Matrix &k,
                             const Matrix &v,
                             const sparse::BitMask &mask,
                             const MaskLayoutView &layout, float scale,
                             Matrix &out) const;

    /** @name Allocating conveniences over the *Into primaries
     *  @{ */

    /** C = A * B. */
    Matrix gemm(const Matrix &a, const Matrix &b) const
    {
        Matrix c;
        gemmInto(a, b, c);
        return c;
    }

    /** C = A * B^T. */
    Matrix gemmTransB(const Matrix &a, const Matrix &b) const
    {
        Matrix c;
        gemmTransBInto(a, b, c);
        return c;
    }

    /** Fused sparse attention returning a fresh output matrix. */
    Matrix sparseAttention(const Matrix &q, const Matrix &k,
                           const Matrix &v, const sparse::BitMask &mask,
                           float scale = 1.0f) const
    {
        Matrix out;
        sparseAttentionInto(q, k, v, mask, scale, out);
        return out;
    }

    /** @} */

    /** Snapshot of the dispatch counters. */
    DispatchStats stats() const;

    /** Zero the dispatch counters. */
    void resetStats() const;

    /**
     * Process-wide default engine: Auto tier, env/CPUID-resolved
     * ISA, over ThreadPool::shared(). What reference_block and the
     * serving backends use unless handed a specific engine.
     */
    static const KernelEngine &shared();

  private:
    bool useOptimized(size_t macs) const;
    bool useParallel(size_t rows, size_t macs) const;
    void forPanels(size_t rows, size_t macs,
                   const std::function<void(size_t, size_t)> &body) const;

    /** The resolved per-ISA kernel table. */
    const isa::IsaKernelTable &kernels() const;

    /** Count one optimized kernel launch at @p level. */
    void noteIsaLaunch(IsaLevel level) const;

    /** kernels() + noteIsaLaunch() in one step. */
    const isa::IsaKernelTable &kernelsForLaunch() const;

    struct MaskStructure;
    struct StructureCache;

    /** Cached (or freshly built) compressed structure of @p mask. */
    std::shared_ptr<const MaskStructure>
    structureFor(const sparse::BitMask &mask) const;

    /** Optimized SDDMM core over a pre-built layout. */
    void sddmmInto(const Matrix &q, const Matrix &k,
                   const MaskLayoutView &layout, float scale,
                   std::vector<float> &values) const;

    /** Optimized fused attention core over a pre-built layout. */
    void sparseAttentionOpt(const Matrix &q, const Matrix &k,
                            const Matrix &v,
                            const MaskLayoutView &layout, float scale,
                            Matrix &out) const;

    EngineConfig cfg_;
    ThreadPool *pool_;
    std::unique_ptr<StructureCache> cache_;

    /** Resolved per-ISA panel table; forceIsa() swaps it. */
    std::atomic<const isa::IsaKernelTable *> kernels_;

    // Indexed by the private Counter enum in engine.cpp.
    mutable std::atomic<uint64_t> counters_[16];
};

} // namespace vitcod::linalg::engine

#endif // VITCOD_LINALG_ENGINE_ENGINE_H
