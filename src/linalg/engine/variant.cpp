#include "linalg/engine/variant.h"

#include <cctype>
#include <string>

namespace vitcod::linalg::engine {

const char *
tierName(KernelTier tier)
{
    switch (tier) {
    case KernelTier::Reference: return "reference";
    case KernelTier::Optimized: return "optimized";
    }
    return "?";
}

const char *
isaName(IsaLevel isa)
{
    switch (isa) {
    case IsaLevel::Scalar: return "scalar";
    case IsaLevel::Neon: return "neon";
    case IsaLevel::Avx2: return "avx2";
    case IsaLevel::Avx512: return "avx512";
    }
    return "?";
}

const char *
variantName(const KernelVariant &v)
{
    // 2 x kNumIsaLevels static labels so callers (trace spans, log
    // lines) get a stable const char* without interning.
    static const char *const kNames[2][kNumIsaLevels] = {
        {"reference/scalar", "reference/neon", "reference/avx2",
         "reference/avx512"},
        {"optimized/scalar", "optimized/neon", "optimized/avx2",
         "optimized/avx512"},
    };
    const auto t = static_cast<size_t>(v.tier);
    const auto i = static_cast<size_t>(v.isa);
    if (t >= 2 || i >= kNumIsaLevels)
        return "?";
    return kNames[t][i];
}

std::optional<IsaLevel>
parseIsaName(std::string_view name)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (lower == "scalar")
        return IsaLevel::Scalar;
    if (lower == "neon")
        return IsaLevel::Neon;
    if (lower == "avx2")
        return IsaLevel::Avx2;
    if (lower == "avx512")
        return IsaLevel::Avx512;
    return std::nullopt;
}

} // namespace vitcod::linalg::engine
