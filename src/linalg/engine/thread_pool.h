/**
 * @file
 * Reusable fixed-size thread pool with a deterministic parallel-for.
 * One pool serves two callers with different lifetimes:
 *
 *  - the KernelEngine's data-parallel kernels, which carve a row
 *    range into fixed chunks and block until every chunk ran
 *    (parallelFor); chunk boundaries depend only on (range, grain,
 *    threads), never on scheduling, so each chunk writes a disjoint
 *    output slice and results are bitwise reproducible;
 *  - the serve WorkerPool's long-running worker loops, which occupy
 *    one pool thread each until the scheduler drains (submit).
 *
 * parallelFor issued from inside a task of the SAME pool runs
 * inline on the calling thread — nested parallelism never deadlocks
 * on pool capacity, it just serializes. Calls from a task of a
 * different pool stay parallel (serving workers on the WorkerPool's
 * pool still fan kernel work out over the engine's shared pool).
 */

#ifndef VITCOD_LINALG_ENGINE_THREAD_POOL_H
#define VITCOD_LINALG_ENGINE_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vitcod::linalg::engine {

/** Fixed pool of worker threads; joins on destruction. */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 picks hardware_concurrency. */
    explicit ThreadPool(size_t threads = 0);

    /** Drains queued tasks, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    size_t threads() const { return workers_.size(); }

    /**
     * Enqueue one task. Tasks run in FIFO order across the pool; a
     * long-running task pins one worker until it returns.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void waitIdle();

    /**
     * Run body(chunk_begin, chunk_end) over [begin, end) split into
     * chunks of at most @p grain indices. Blocks until all chunks
     * completed. The caller participates, so the pool being busy (or
     * empty) only costs parallelism, never progress. Chunking is a
     * pure function of the arguments: output is deterministic as
     * long as chunks touch disjoint state.
     *
     * @param grain Maximum chunk length; 0 picks end-begin/threads.
     */
    void parallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t, size_t)> &body);

    /**
     * Process-wide default pool used by KernelEngine::shared().
     * Sized to hardware_concurrency, created on first use.
     */
    static ThreadPool &shared();

  private:
    void workerMain();

    std::mutex lock_;
    std::condition_variable wake_;     //!< workers: queue non-empty/stop
    std::condition_variable idle_;     //!< waiters: all tasks done
    std::deque<std::function<void()>> queue_;
    size_t inFlight_ = 0;              //!< popped but not yet finished
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace vitcod::linalg::engine

#endif // VITCOD_LINALG_ENGINE_THREAD_POOL_H
