/**
 * @file
 * KernelVariant: the two-level (algorithm tier x ISA level) identity
 * of a kernel implementation the engine can dispatch to.
 *
 *  - **Tier** says *which algorithm* runs: the scalar golden kernels
 *    (src/linalg/{kernels,sparse_kernels} — the differential-test
 *    oracle) or the cache-blocked optimized panels.
 *  - **ISA** says *which instruction set* the optimized panels use:
 *    portable scalar code, AVX2+FMA, AVX-512, or NEON. The reference
 *    tier is always scalar — the oracle must not depend on the host.
 *
 * Variants are resolved at engine construction (and on forceIsa())
 * from three sources, highest precedence first:
 *
 *  1. `EngineConfig::isa` — programmatic force (benches' `--isa=`).
 *  2. `VITCOD_ISA=scalar|neon|avx2|avx512|auto` — environment.
 *  3. CPUID detection — the highest level both compiled into this
 *     binary and supported by the host CPU.
 *
 * A request above what the host supports clamps *down* to the best
 * available level (with a warning), never up: a binary carrying
 * AVX-512 kernels still runs correctly on an AVX2-only machine.
 */

#ifndef VITCOD_LINALG_ENGINE_VARIANT_H
#define VITCOD_LINALG_ENGINE_VARIANT_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace vitcod::linalg::engine {

/** Algorithm tier of a kernel implementation. */
enum class KernelTier : uint8_t
{
    Reference, //!< scalar golden kernels (the oracle)
    Optimized, //!< cache-blocked / fused / vectorized panels
};

/**
 * Instruction-set level of the optimized panels, ordered by
 * preference: Auto resolution picks the highest compiled-and-
 * supported value.
 */
enum class IsaLevel : uint8_t
{
    Scalar = 0, //!< portable C++ (compiler-autovectorized baseline)
    Neon,       //!< 128-bit ARM NEON (aarch64 builds only)
    Avx2,       //!< 256-bit AVX2 + FMA
    Avx512,     //!< 512-bit AVX-512F
};

/** Number of IsaLevel enumerators (table sizing). */
inline constexpr size_t kNumIsaLevels = 4;

/** One dispatchable implementation identity: tier x ISA. */
struct KernelVariant
{
    KernelTier tier = KernelTier::Optimized;
    IsaLevel isa = IsaLevel::Scalar;

    bool operator==(const KernelVariant &) const = default;
};

/** Stable lowercase name: "reference" / "optimized". */
const char *tierName(KernelTier tier);

/** Stable lowercase name: "scalar" / "neon" / "avx2" / "avx512". */
const char *isaName(IsaLevel isa);

/** "optimized/avx2"-style label (static storage, no allocation). */
const char *variantName(const KernelVariant &v);

/**
 * Parse an ISA name as accepted by `VITCOD_ISA` / `--isa=`:
 * "scalar", "neon", "avx2", "avx512" (case-insensitive). Returns
 * nullopt for anything else — including "auto", which callers treat
 * as "no override" (see resolveIsa()).
 */
std::optional<IsaLevel> parseIsaName(std::string_view name);

} // namespace vitcod::linalg::engine

#endif // VITCOD_LINALG_ENGINE_VARIANT_H
