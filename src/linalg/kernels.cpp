#include "kernels.h"

#include <algorithm>
#include <cmath>

namespace vitcod::linalg {

Matrix
gemm(const Matrix &a, const Matrix &b)
{
    Matrix c;
    gemmInto(a, b, c);
    return c;
}

void
gemmInto(const Matrix &a, const Matrix &b, Matrix &c)
{
    VITCOD_ASSERT(a.cols() == b.rows(), "gemm shape mismatch: ",
                  a.rows(), "x", a.cols(), " * ", b.rows(), "x",
                  b.cols());
    c.resize(a.rows(), b.cols());
    // i-k-j loop order: streams B rows, accumulates into C rows.
    for (size_t i = 0; i < a.rows(); ++i) {
        float *c_row = c.rowData(i);
        for (size_t k = 0; k < a.cols(); ++k) {
            const float aik = a(i, k);
            if (aik == 0.0f)
                continue;
            const float *b_row = b.rowData(k);
            for (size_t j = 0; j < b.cols(); ++j)
                c_row[j] += aik * b_row[j];
        }
    }
}

Matrix
gemmTransB(const Matrix &a, const Matrix &b)
{
    VITCOD_ASSERT(a.cols() == b.cols(), "gemmTransB shape mismatch");
    Matrix c(a.rows(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *a_row = a.rowData(i);
        for (size_t j = 0; j < b.rows(); ++j) {
            const float *b_row = b.rowData(j);
            double acc = 0.0;
            for (size_t k = 0; k < a.cols(); ++k)
                acc += static_cast<double>(a_row[k]) * b_row[k];
            c(i, j) = static_cast<float>(acc);
        }
    }
    return c;
}

Matrix
axpby(float alpha, const Matrix &a, float beta, const Matrix &b)
{
    VITCOD_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                  "axpby shape mismatch");
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            c(i, j) = alpha * a(i, j) + beta * b(i, j);
    return c;
}

Matrix
transpose(const Matrix &a)
{
    Matrix t(a.cols(), a.rows());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            t(j, i) = a(i, j);
    return t;
}

Matrix
softmaxRows(const Matrix &a)
{
    Matrix s(a.rows(), a.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *row = a.rowData(i);
        float max_v = row[0];
        for (size_t j = 1; j < a.cols(); ++j)
            max_v = std::max(max_v, row[j]);
        double sum = 0.0;
        for (size_t j = 0; j < a.cols(); ++j) {
            const double e = std::exp(static_cast<double>(row[j] - max_v));
            s(i, j) = static_cast<float>(e);
            sum += e;
        }
        const auto inv = static_cast<float>(1.0 / sum);
        for (size_t j = 0; j < a.cols(); ++j)
            s(i, j) *= inv;
    }
    return s;
}

void
layerNormRowsInto(const Matrix &x, const std::vector<float> &gamma,
                  const std::vector<float> &beta, Matrix &out)
{
    VITCOD_ASSERT(gamma.size() == x.cols() &&
                      beta.size() == x.cols(),
                  "layerNorm parameter width mismatch");
    out.resize(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
        double mean = 0.0;
        for (size_t c = 0; c < x.cols(); ++c)
            mean += x(r, c);
        mean /= static_cast<double>(x.cols());
        double var = 0.0;
        for (size_t c = 0; c < x.cols(); ++c) {
            const double d = x(r, c) - mean;
            var += d * d;
        }
        var /= static_cast<double>(x.cols());
        const double inv = 1.0 / std::sqrt(var + 1e-6);
        for (size_t c = 0; c < x.cols(); ++c)
            out(r, c) = static_cast<float>(
                (x(r, c) - mean) * inv * gamma[c] + beta[c]);
    }
}

void
reluInPlace(Matrix &a)
{
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            a(i, j) = std::max(0.0f, a(i, j));
}

void
geluInPlace(Matrix &a)
{
    // tanh approximation: 0.5x(1 + tanh(sqrt(2/pi)(x + 0.044715 x^3)))
    constexpr double k = 0.7978845608028654; // sqrt(2/pi)
    for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t j = 0; j < a.cols(); ++j) {
            const double x = a(i, j);
            const double inner = k * (x + 0.044715 * x * x * x);
            a(i, j) = static_cast<float>(0.5 * x *
                                         (1.0 + std::tanh(inner)));
        }
    }
}

void
scaleInPlace(Matrix &a, float s)
{
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            a(i, j) *= s;
}

Matrix
permuteRows(const Matrix &a, const std::vector<uint32_t> &perm)
{
    VITCOD_ASSERT(perm.size() == a.rows(), "perm size mismatch");
    Matrix out(a.rows(), a.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        VITCOD_ASSERT(perm[i] < a.rows(), "perm index out of range");
        const float *src = a.rowData(perm[i]);
        std::copy(src, src + a.cols(), out.rowData(i));
    }
    return out;
}

double
frobeniusNorm(const Matrix &a)
{
    double sum = 0.0;
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            sum += static_cast<double>(a(i, j)) * a(i, j);
    return std::sqrt(sum);
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    VITCOD_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                  "maxAbsDiff shape mismatch");
    double m = 0.0;
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            m = std::max(m, std::abs(static_cast<double>(a(i, j)) -
                                     b(i, j)));
    return m;
}

double
meanSquaredError(const Matrix &a, const Matrix &b)
{
    VITCOD_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                  "meanSquaredError shape mismatch");
    double sum = 0.0;
    for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t j = 0; j < a.cols(); ++j) {
            const double d = static_cast<double>(a(i, j)) - b(i, j);
            sum += d * d;
        }
    }
    return sum / static_cast<double>(a.rows() * a.cols());
}

} // namespace vitcod::linalg
