/**
 * @file
 * Dense golden kernels: GEMM (plain and B-transposed), row softmax,
 * activations, transpose, permutation and matrix norms. These are the
 * functional references the accelerator models and tests check
 * against; they favor clarity over peak throughput but keep cache-
 * friendly loop orders.
 */

#ifndef VITCOD_LINALG_KERNELS_H
#define VITCOD_LINALG_KERNELS_H

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace vitcod::linalg {

/** C = A * B. @pre a.cols == b.rows. */
Matrix gemm(const Matrix &a, const Matrix &b);

/**
 * C = A * B into a caller-owned buffer (reshaped in place, capacity
 * reused). Identical arithmetic to gemm(); what the engine's
 * reference dispatch uses so arena-backed callers stay
 * allocation-free in steady state.
 */
void gemmInto(const Matrix &a, const Matrix &b, Matrix &c);

/** C = A * B^T; the attention score kernel S = Q * K^T. */
Matrix gemmTransB(const Matrix &a, const Matrix &b);

/** C = alpha * A + beta * B elementwise. @pre shapes match. */
Matrix axpby(float alpha, const Matrix &a, float beta, const Matrix &b);

/** Transpose. */
Matrix transpose(const Matrix &a);

/** Numerically-stable softmax applied to each row independently. */
Matrix softmaxRows(const Matrix &a);

/**
 * Row-wise LayerNorm (mean/variance accumulated in double, eps
 * 1e-6) into a caller-owned buffer. The single definition both
 * ReferenceBlock and ModelExecutor normalize with, so the
 * differential tests compare attention/MLP numerics, never two
 * drifting LayerNorm copies.
 * @pre gamma and beta have x.cols() entries.
 */
void layerNormRowsInto(const Matrix &x,
                       const std::vector<float> &gamma,
                       const std::vector<float> &beta, Matrix &out);

/** In-place ReLU. */
void reluInPlace(Matrix &a);

/** In-place GELU (tanh approximation, as used by ViT MLPs). */
void geluInPlace(Matrix &a);

/** Scale all elements in place. */
void scaleInPlace(Matrix &a, float s);

/** Permute rows: out.row(i) = a.row(perm[i]). */
Matrix permuteRows(const Matrix &a, const std::vector<uint32_t> &perm);

/** Frobenius norm. */
double frobeniusNorm(const Matrix &a);

/** max_ij |a - b|. @pre shapes match. */
double maxAbsDiff(const Matrix &a, const Matrix &b);

/** Mean squared difference. @pre shapes match. */
double meanSquaredError(const Matrix &a, const Matrix &b);

} // namespace vitcod::linalg

#endif // VITCOD_LINALG_KERNELS_H
