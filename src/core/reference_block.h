/**
 * @file
 * Functional reference of one ViT transformer block: LayerNorm ->
 * multi-head self-attention -> residual -> LayerNorm -> MLP (GELU)
 * -> residual, computed numerically with the golden kernels. Two
 * attention paths are provided: the dense baseline and the ViTCoD
 * path that executes a SparseAttentionPlan (token permutation +
 * fixed mask + SDDMM/softmax/SpMM). The cycle-level simulators
 * model *time*; this module pins down *values*, so adopters can
 * check that a plan is semantics-preserving on their own tensors.
 */

#ifndef VITCOD_CORE_REFERENCE_BLOCK_H
#define VITCOD_CORE_REFERENCE_BLOCK_H

#include <vector>

#include "core/split_conquer.h"
#include "linalg/engine/engine.h"
#include "linalg/matrix.h"
#include "model/vit_config.h"

namespace vitcod::core {

/** Learnable parameters of one block. */
struct BlockWeights
{
    linalg::Matrix wq; //!< d x (h*dk)
    linalg::Matrix wk;
    linalg::Matrix wv;
    linalg::Matrix wo;  //!< (h*dk) x d
    linalg::Matrix fc1; //!< d x hidden
    linalg::Matrix fc2; //!< hidden x d
    std::vector<float> ln1Gamma, ln1Beta;
    std::vector<float> ln2Gamma, ln2Beta;

    /** Random initialization scaled for stable activations. */
    static BlockWeights random(const model::StageConfig &stage,
                               Rng &rng);
};

/** Functional transformer block over one stage's shape. */
class ReferenceBlock
{
  public:
    /**
     * @param eng Kernel executor for the GEMMs and the sparse
     *        attention pipeline. Defaults to the shared Auto-dispatch
     *        engine; pass an engine pinned to
     *        KernelTier::Reference to force the scalar oracle.
     */
    ReferenceBlock(model::StageConfig stage, BlockWeights weights,
                   const linalg::engine::KernelEngine *eng =
                       &linalg::engine::KernelEngine::shared());

    const model::StageConfig &stage() const { return stage_; }

    /** Dense forward pass: x (n x d) -> y (n x d). */
    linalg::Matrix forwardDense(const linalg::Matrix &x) const;

    /**
     * ViTCoD forward pass: per-head fixed masks applied in the
     * plans' permuted token order, results un-permuted back.
     * @param plans One SparseAttentionPlan per head.
     */
    linalg::Matrix
    forwardSparse(const linalg::Matrix &x,
                  const std::vector<SparseAttentionPlan> &plans) const;

    /** The attention sub-module only (dense), exposed for tests. */
    linalg::Matrix attentionDense(const linalg::Matrix &x) const;

    /** The attention sub-module only (sparse plans). */
    linalg::Matrix attentionSparse(
        const linalg::Matrix &x,
        const std::vector<SparseAttentionPlan> &plans) const;

  private:
    /** Per-head slice over the concatenated width. */
    linalg::Matrix headSlice(const linalg::Matrix &m,
                             size_t head) const;

    linalg::Matrix layerNorm(const linalg::Matrix &x,
                             const std::vector<float> &gamma,
                             const std::vector<float> &beta) const;

    model::StageConfig stage_;
    BlockWeights w_;
    const linalg::engine::KernelEngine *engine_;
};

} // namespace vitcod::core

#endif // VITCOD_CORE_REFERENCE_BLOCK_H
