#include "split_conquer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace vitcod::core {

namespace {

/** Row indices sorted by descending value within one row. */
std::vector<uint32_t>
sortedRowIndices(const linalg::Matrix &a, size_t r)
{
    std::vector<uint32_t> idx(a.cols());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](uint32_t x, uint32_t y) {
        return a(r, x) > a(r, y);
    });
    return idx;
}

sparse::BitMask
pruneMassPerQuery(const linalg::Matrix &a, double theta_p)
{
    const size_t n = a.rows();
    sparse::BitMask mask(n, a.cols());
    for (size_t r = 0; r < n; ++r) {
        double row_sum = 0.0;
        for (size_t c = 0; c < a.cols(); ++c)
            row_sum += a(r, c);
        VITCOD_ASSERT(row_sum > 0.0, "attention row has no mass");
        const auto idx = sortedRowIndices(a, r);
        double cum = 0.0;
        for (uint32_t c : idx) {
            if (cum >= theta_p * row_sum)
                break;
            mask.set(r, c, true);
            cum += a(r, c);
        }
    }
    return mask;
}

sparse::BitMask
pruneMassGlobal(const linalg::Matrix &a, double theta_p)
{
    const size_t n = a.rows();
    const size_t m = a.cols();
    struct Entry
    {
        float v;
        uint32_t r;
        uint32_t c;
    };
    std::vector<Entry> entries;
    entries.reserve(n * m);
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < m; ++c) {
            entries.push_back({a(r, c), static_cast<uint32_t>(r),
                               static_cast<uint32_t>(c)});
            total += a(r, c);
        }
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &x, const Entry &y) { return x.v > y.v; });

    sparse::BitMask mask(n, m);
    double cum = 0.0;
    for (const auto &e : entries) {
        if (cum >= theta_p * total)
            break;
        mask.set(e.r, e.c, true);
        cum += e.v;
    }
    return mask;
}

sparse::BitMask
pruneTargetSparsity(const linalg::Matrix &a, double sparsity)
{
    const size_t n = a.rows();
    const size_t m = a.cols();
    const auto keep = std::max<size_t>(
        1, static_cast<size_t>(
               std::lround((1.0 - sparsity) * static_cast<double>(m))));
    sparse::BitMask mask(n, m);
    for (size_t r = 0; r < n; ++r) {
        const auto idx = sortedRowIndices(a, r);
        for (size_t i = 0; i < keep; ++i)
            mask.set(r, idx[i], true);
    }
    return mask;
}

double
retainedMassOf(const linalg::Matrix &a, const sparse::BitMask &mask)
{
    double kept = 0.0;
    double total = 0.0;
    for (size_t r = 0; r < a.rows(); ++r) {
        for (size_t c = 0; c < a.cols(); ++c) {
            total += a(r, c);
            if (mask.get(r, c))
                kept += a(r, c);
        }
    }
    return total > 0 ? kept / total : 0.0;
}

/** Assemble a plan from an original-order mask plus a reordering. */
SparseAttentionPlan
assemblePlan(const linalg::Matrix &a, const sparse::BitMask &mask0,
             const Reordering &reo)
{
    const size_t n = mask0.rows();
    SparseAttentionPlan plan;
    plan.tokens = n;
    plan.perm = reo.perm;
    plan.numGlobalTokens = reo.numGlobalTokens;
    plan.mask = mask0.permuteSymmetric(reo.perm);
    plan.sparsity = plan.mask.sparsity();
    plan.retainedMass = retainedMassOf(a, mask0);

    size_t denser = 0;
    for (size_t c = 0; c < plan.numGlobalTokens; ++c)
        denser += plan.mask.nnzInCol(c);
    plan.denserNnz = denser;
    plan.sparserNnz = plan.mask.nnz() - denser;

    if (plan.numGlobalTokens < n) {
        plan.sparserCsc = sparse::Csc::fromMask(
            plan.mask.sliceCols(plan.numGlobalTokens, n));
    }
    return plan;
}

} // namespace

sparse::BitMask
pruneAttention(const linalg::Matrix &a, const SplitConquerConfig &cfg)
{
    VITCOD_ASSERT(a.rows() == a.cols(), "attention map must be square");
    switch (cfg.mode) {
      case PruneMode::MassPerQuery:
        return pruneMassPerQuery(a, cfg.massThreshold);
      case PruneMode::MassGlobal:
        return pruneMassGlobal(a, cfg.massThreshold);
      case PruneMode::TargetSparsity:
        return pruneTargetSparsity(a, cfg.targetSparsity);
      default:
        panic("bad PruneMode");
    }
}

double
effectiveDenseThreshold(const sparse::BitMask &mask,
                        const SplitConquerConfig &cfg)
{
    // The 1.5x-density floor keeps low-sparsity masks from fronting
    // ordinary columns; the 0.92 cap keeps near-dense masks from
    // excluding everything (a dense map belongs on the denser
    // engine wholesale).
    const double frac = std::min(
        0.92, std::max(cfg.denseColFrac, 1.5 * mask.density()));
    return frac * static_cast<double>(mask.cols());
}

Reordering
reorderTokens(const sparse::BitMask &mask, const SplitConquerConfig &cfg)
{
    const size_t n = mask.cols();
    const double theta_d = effectiveDenseThreshold(mask, cfg);

    Reordering reo;
    reo.perm.resize(n);
    std::iota(reo.perm.begin(), reo.perm.end(), 0);

    if (cfg.literalSwapReorder) {
        // Algorithm 1 lines 7-13, literally: scan columns of the
        // original map; when column i qualifies as global, swap it
        // into the next front slot.
        for (size_t i = 0; i < n; ++i) {
            if (static_cast<double>(mask.nnzInCol(i)) > theta_d) {
                std::swap(reo.perm[reo.numGlobalTokens], reo.perm[i]);
                ++reo.numGlobalTokens;
            }
        }
    } else {
        // Stable variant: globals first, both halves keep relative
        // order (preserves the remaining diagonal fully).
        std::vector<uint32_t> globals;
        std::vector<uint32_t> locals;
        for (size_t i = 0; i < n; ++i) {
            if (static_cast<double>(mask.nnzInCol(i)) > theta_d)
                globals.push_back(static_cast<uint32_t>(i));
            else
                locals.push_back(static_cast<uint32_t>(i));
        }
        reo.numGlobalTokens = globals.size();
        std::copy(locals.begin(), locals.end(),
                  std::copy(globals.begin(), globals.end(),
                            reo.perm.begin()));
    }
    return reo;
}

SparseAttentionPlan
splitConquer(const linalg::Matrix &a, const SplitConquerConfig &cfg)
{
    const sparse::BitMask mask0 = pruneAttention(a, cfg);
    const Reordering reo = reorderTokens(mask0, cfg);
    return assemblePlan(a, mask0, reo);
}

SparseAttentionPlan
pruneOnly(const linalg::Matrix &a, const SplitConquerConfig &cfg)
{
    const sparse::BitMask mask0 = pruneAttention(a, cfg);
    Reordering identity;
    identity.perm.resize(mask0.rows());
    std::iota(identity.perm.begin(), identity.perm.end(), 0);
    identity.numGlobalTokens = 0;
    return assemblePlan(a, mask0, identity);
}

SparseAttentionPlan
reorderOnly(const linalg::Matrix &a, const SplitConquerConfig &cfg)
{
    const size_t n = a.rows();
    // Detect global tokens from a mean-thresholded pseudo-mask, then
    // keep the *full* (unpruned) map reordered.
    double mean = 0.0;
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            mean += a(r, c);
    mean /= static_cast<double>(n * n);

    sparse::BitMask pseudo(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            pseudo.set(r, c, a(r, c) > mean);

    const Reordering reo = reorderTokens(pseudo, cfg);

    sparse::BitMask full(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            full.set(r, c, true);
    return assemblePlan(a, full, reo);
}

} // namespace vitcod::core
