/**
 * @file
 * ViTCoD's split-and-conquer algorithm (paper Sec. IV-B, Algorithm
 * 1): prune an averaged attention map with a fixed mask, then
 * reorder tokens so that "global" tokens — columns attended by most
 * queries — cluster at the front as a *denser* pattern while the
 * remainder forms a highly *sparser*, diagonal-dominated pattern.
 * The result polarizes the attention workload into exactly two
 * levels, which the two-pronged accelerator exploits.
 */

#ifndef VITCOD_CORE_SPLIT_CONQUER_H
#define VITCOD_CORE_SPLIT_CONQUER_H

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "sparse/formats.h"

namespace vitcod::core {

/** How the pruning budget is selected. */
enum class PruneMode
{
    /**
     * Keep, per query row, the smallest top-score set whose
     * cumulative normalized mass reaches theta_p (the paper's prose:
     * "for each query, we select only attentions of high value ...").
     */
    MassPerQuery,
    /**
     * Keep the globally top-scored entries until the cumulative mass
     * over the whole map reaches theta_p (Algorithm 1 line 1-6 taken
     * literally, with a single Argsort over A).
     */
    MassGlobal,
    /**
     * Keep exactly the top ceil((1-target_sparsity)*n) entries of
     * each row: pins the mask at an exact sparsity ratio, which is
     * how the paper's hardware sweeps (60/70/80/90/95%) are run.
     */
    TargetSparsity,
};

/** Configuration of Algorithm 1. */
struct SplitConquerConfig
{
    PruneMode mode = PruneMode::TargetSparsity;

    /** theta_p: cumulative information mass to keep (Mass* modes). */
    double massThreshold = 0.90;

    /** Target fraction of pruned entries (TargetSparsity mode). */
    double targetSparsity = 0.90;

    /**
     * theta_d as a fraction of n: a column whose surviving nonzero
     * count exceeds denseColFrac * n is declared a global token.
     */
    double denseColFrac = 0.30;

    /**
     * Use Algorithm 1's literal selection-swap reordering (global
     * tokens stable, displaced locals scattered). When false, a
     * stable partition keeps the relative order of non-global tokens
     * — preserving more of the diagonal; provided for the ablation
     * of the reordering step.
     */
    bool literalSwapReorder = true;
};

/** Result of pruning + reordering one attention map. */
struct SparseAttentionPlan
{
    size_t tokens = 0;

    /** Pruned mask in the *reordered* token order. */
    sparse::BitMask mask;

    /**
     * Token permutation: new position i holds original token
     * perm[i]. Applies symmetrically to rows and columns.
     */
    std::vector<uint32_t> perm;

    /** N_gt: number of global tokens, fronted by the reordering. */
    size_t numGlobalTokens = 0;

    /** Fraction of map entries pruned. */
    double sparsity = 0.0;

    /** Fraction of the original attention mass the mask retains. */
    double retainedMass = 0.0;

    /** Mask nonzeros falling in the denser (global) columns. */
    size_t denserNnz = 0;

    /** Mask nonzeros in the sparser remainder columns. */
    size_t sparserNnz = 0;

    /**
     * CSC index structure of the sparser columns ([numGlobalTokens,
     * tokens)), exactly what the accelerator's IdxBuf pre-loads.
     */
    sparse::Csc sparserCsc;
};

/**
 * Step 1 of Algorithm 1: prune an averaged, row-normalized attention
 * map to a fixed binary mask.
 *
 * @param a n x n attention map with rows summing to ~1.
 * @param cfg Pruning configuration.
 * @return Binary mask in the *original* token order.
 */
sparse::BitMask pruneAttention(const linalg::Matrix &a,
                               const SplitConquerConfig &cfg);

/** Result of the reordering step alone. */
struct Reordering
{
    std::vector<uint32_t> perm;
    size_t numGlobalTokens = 0;
};

/**
 * The effective theta_d used by reordering: a column counts as a
 * global token when its surviving nonzeros exceed
 * max(denseColFrac, 1.5 * mask density) * n — the density floor
 * keeps low-sparsity masks from fronting ordinary columns.
 */
double effectiveDenseThreshold(const sparse::BitMask &mask,
                               const SplitConquerConfig &cfg);

/**
 * Step 2 of Algorithm 1: find global tokens (columns with more than
 * theta_d surviving nonzeros) and build the permutation moving them
 * to the front.
 */
Reordering reorderTokens(const sparse::BitMask &mask,
                         const SplitConquerConfig &cfg);

/**
 * Full Algorithm 1: prune, reorder, split into denser/sparser
 * workloads and build the sparser CSC index stream.
 */
SparseAttentionPlan splitConquer(const linalg::Matrix &a,
                                 const SplitConquerConfig &cfg);

/**
 * Variant that skips reordering (identity permutation, Ngt = 0):
 * the "pruning only" arm of the paper's Sec. VI-C ablation.
 */
SparseAttentionPlan pruneOnly(const linalg::Matrix &a,
                              const SplitConquerConfig &cfg);

/**
 * Variant that skips pruning (full mask) but still reorders using a
 * mask thresholded at the map's mean value: the "reordering only"
 * ablation arm. The returned mask keeps every entry.
 */
SparseAttentionPlan reorderOnly(const linalg::Matrix &a,
                                const SplitConquerConfig &cfg);

} // namespace vitcod::core

#endif // VITCOD_CORE_SPLIT_CONQUER_H
