#include "autoencoder.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "linalg/eigen.h"
#include "linalg/kernels.h"

namespace vitcod::core {

double
AeTrainTrajectory::finalLoss() const
{
    return points.empty() ? 0.0 : points.back().reconLoss;
}

AutoEncoder::AutoEncoder(AutoEncoderConfig cfg) : cfg_(cfg)
{
    VITCOD_ASSERT(cfg_.compressed >= 1 && cfg_.compressed <= cfg_.heads,
                  "bottleneck must be in [1, heads]");
    Rng rng(cfg_.seed);
    const auto scale =
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(cfg_.heads)));
    enc_ = linalg::Matrix::randomNormal(cfg_.compressed, cfg_.heads, rng,
                                        0.0f, scale);
    dec_ = linalg::Matrix::randomNormal(cfg_.heads, cfg_.compressed, rng,
                                        0.0f, scale);
}

double
AutoEncoder::compressionRatio() const
{
    return static_cast<double>(cfg_.compressed) /
           static_cast<double>(cfg_.heads);
}

linalg::Matrix
AutoEncoder::encode(const linalg::Matrix &x) const
{
    VITCOD_ASSERT(x.cols() == cfg_.heads, "encode: head dim mismatch");
    return linalg::gemmTransB(x, enc_);
}

linalg::Matrix
AutoEncoder::decode(const linalg::Matrix &z) const
{
    VITCOD_ASSERT(z.cols() == cfg_.compressed,
                  "decode: bottleneck dim mismatch");
    return linalg::gemmTransB(z, dec_);
}

linalg::Matrix
AutoEncoder::reconstruct(const linalg::Matrix &x) const
{
    return decode(encode(x));
}

double
AutoEncoder::reconstructionMse(const linalg::Matrix &x) const
{
    return linalg::meanSquaredError(x, reconstruct(x));
}

double
AutoEncoder::relativeError(const linalg::Matrix &x) const
{
    const double num = linalg::frobeniusNorm(
        linalg::axpby(1.0f, x, -1.0f, reconstruct(x)));
    const double den = linalg::frobeniusNorm(x);
    return den > 0 ? num / den : 0.0;
}

AeTrainTrajectory
AutoEncoder::trainSgd(const linalg::Matrix &data,
                      const AeTrainConfig &train)
{
    VITCOD_ASSERT(data.cols() == cfg_.heads, "train: head dim mismatch");
    const size_t n = data.rows();
    const size_t batch = std::min(train.batchSize, n);
    VITCOD_ASSERT(batch > 0, "empty training data");

    Rng rng(train.shuffleSeed);
    linalg::Matrix m_enc(enc_.rows(), enc_.cols());
    linalg::Matrix v_enc(enc_.rows(), enc_.cols());
    linalg::Matrix m_dec(dec_.rows(), dec_.cols());
    linalg::Matrix v_dec(dec_.rows(), dec_.cols());
    size_t step = 0;

    auto adam_update = [&](linalg::Matrix &w, linalg::Matrix &m,
                           linalg::Matrix &v, const linalg::Matrix &g) {
        const double b1 = train.beta1;
        const double b2 = train.beta2;
        const double bc1 =
            1.0 - std::pow(b1, static_cast<double>(step));
        const double bc2 =
            1.0 - std::pow(b2, static_cast<double>(step));
        for (size_t i = 0; i < w.rows(); ++i) {
            for (size_t j = 0; j < w.cols(); ++j) {
                const double gij = g(i, j);
                m(i, j) = static_cast<float>(b1 * m(i, j) +
                                             (1.0 - b1) * gij);
                v(i, j) = static_cast<float>(b2 * v(i, j) +
                                             (1.0 - b2) * gij * gij);
                const double mhat = m(i, j) / bc1;
                const double vhat = v(i, j) / bc2;
                w(i, j) -= static_cast<float>(
                    train.learningRate * mhat /
                    (std::sqrt(vhat) + 1e-8));
            }
        }
    };

    AeTrainTrajectory traj;
    for (size_t epoch = 0; epoch < train.epochs; ++epoch) {
        const auto order = rng.permutation(static_cast<uint32_t>(n));
        for (size_t start = 0; start + batch <= n; start += batch) {
            // Gather the mini-batch.
            linalg::Matrix xb(batch, cfg_.heads);
            for (size_t i = 0; i < batch; ++i) {
                const float *src = data.rowData(order[start + i]);
                std::copy(src, src + cfg_.heads, xb.rowData(i));
            }

            const linalg::Matrix z = encode(xb);        // B x c
            const linalg::Matrix xhat = decode(z);      // B x h
            linalg::Matrix g = linalg::axpby(
                2.0f / static_cast<float>(batch * cfg_.heads), xhat,
                -2.0f / static_cast<float>(batch * cfg_.heads), xb);

            // dD = G^T Z ; dE = (G D)^T X
            const linalg::Matrix g_t = linalg::transpose(g);
            const linalg::Matrix d_dec = linalg::gemm(g_t, z);
            const linalg::Matrix gd = linalg::gemm(g, dec_);
            const linalg::Matrix d_enc =
                linalg::gemm(linalg::transpose(gd), xb);

            ++step;
            adam_update(dec_, m_dec, v_dec, d_dec);
            adam_update(enc_, m_enc, v_enc, d_enc);
        }
        traj.points.push_back({epoch, reconstructionMse(data)});
    }
    return traj;
}

void
AutoEncoder::fitPca(const linalg::Matrix &data)
{
    VITCOD_ASSERT(data.cols() == cfg_.heads, "fitPca: head dim mismatch");
    const linalg::PcaResult pca =
        linalg::fitPca(data, cfg_.compressed, /*center=*/false);
    enc_ = pca.components;                 // c x h
    dec_ = linalg::transpose(pca.components); // h x c
}

linalg::Matrix
synthesizeHeadData(size_t samples, size_t heads, size_t latent_rank,
                   double noise_std, Rng &rng)
{
    VITCOD_ASSERT(latent_rank >= 1 && latent_rank <= heads,
                  "latent rank must be in [1, heads]");
    // Mixing matrix: heads are random combinations of the latents.
    const linalg::Matrix mixing = linalg::Matrix::randomNormal(
        latent_rank, heads, rng, 0.0f,
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(
                               latent_rank))));
    const linalg::Matrix latents =
        linalg::Matrix::randomNormal(samples, latent_rank, rng);
    linalg::Matrix x = linalg::gemm(latents, mixing);
    for (size_t i = 0; i < x.rows(); ++i)
        for (size_t j = 0; j < x.cols(); ++j)
            x(i, j) += static_cast<float>(rng.normal(0.0, noise_std));
    return x;
}

} // namespace vitcod::core
