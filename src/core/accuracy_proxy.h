/**
 * @file
 * Accuracy proxy (substitution S2 in DESIGN.md). The reproduction
 * cannot finetune on ImageNet, so model quality after pruning + AE
 * insertion is estimated from two measurable signals:
 *
 *  1. the attention mass the fixed mask retains (Algorithm 1 keeps
 *     the highest-information entries, so retained mass is exactly
 *     the paper's "information quantity" criterion), and
 *  2. the AE's relative reconstruction error on Q/K.
 *
 * The mapping is calibrated to the paper's reported anchors: <1%
 * top-1 drop at 90% sparsity for DeiT / 80% for LeViT (Sec. VI-C),
 * <=1.5% at 95% (abstract), <0.5% extra from the AE after finetuning
 * (Sec. IV-C), and -1.18% for a static 60% mask on BERT-MRPC (Sec.
 * VI-B) via the NLP penalty factor.
 */

#ifndef VITCOD_CORE_ACCURACY_PROXY_H
#define VITCOD_CORE_ACCURACY_PROXY_H

#include <cstddef>
#include <vector>

#include "model/vit_config.h"

namespace vitcod::core {

/** Calibration constants of the proxy. */
struct AccuracyProxyConfig
{
    /**
     * drop% = pruneScale * (1 - retained_mass)^pruneExponent.
     * Calibrated against the synthetic map generator (which retains
     * ~0.85 mass at 90% sparsity) so the paper's anchors hold:
     * <1% drop at the nominal operating points, <=1.5% at 95%.
     */
    double pruneScale = 5.5;
    double pruneExponent = 1.10;

    /** drop% = aeScale * rel_error^aeExponent (post-finetuning). */
    double aeScale = 3.0;
    double aeExponent = 1.50;

    /** Static masks hurt NLP more (input-dependent patterns). */
    double nlpPenaltyFactor = 3.0;

    /** Pose error (MPJPE, mm) grows by this many mm per drop%. */
    double poseMmPerDropPct = 0.55;

    /** Saturation of the total modeled drop. */
    double maxDropPct = 60.0;
};

/** Maps retained-mass / reconstruction-error signals to quality. */
class AccuracyProxy
{
  public:
    explicit AccuracyProxy(AccuracyProxyConfig cfg = {});

    const AccuracyProxyConfig &config() const { return cfg_; }

    /** Accuracy drop (%) caused by a mask retaining @p mass. */
    double dropFromMask(double retained_mass,
                        model::Task task) const;

    /** Accuracy drop (%) caused by AE rel. error @p rel_error. */
    double dropFromRecon(double rel_error) const;

    /**
     * Estimated model quality. For classification/NLP this is
     * baseline minus drops; for pose estimation (MPJPE) the error
     * *increases* with the drop.
     */
    double estimate(double baseline_quality, model::Task task,
                    double retained_mass, double ae_rel_error) const;

    /**
     * Exponential finetuning-recovery curve (the shape of Fig. 9(b)
     * / Fig. 18 accuracy traces): starts at @p start_quality right
     * after surgery and approaches @p final_quality with time
     * constant @p tau_epochs.
     */
    static std::vector<double>
    finetuneCurve(size_t epochs, double start_quality,
                  double final_quality, double tau_epochs = 12.0);

  private:
    AccuracyProxyConfig cfg_;
};

} // namespace vitcod::core

#endif // VITCOD_CORE_ACCURACY_PROXY_H
