#include "accuracy_proxy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vitcod::core {

AccuracyProxy::AccuracyProxy(AccuracyProxyConfig cfg) : cfg_(cfg) {}

double
AccuracyProxy::dropFromMask(double retained_mass,
                            model::Task task) const
{
    VITCOD_ASSERT(retained_mass >= 0.0 && retained_mass <= 1.0 + 1e-9,
                  "retained mass out of [0,1]");
    const double lost = std::max(0.0, 1.0 - retained_mass);
    double drop = cfg_.pruneScale * std::pow(lost, cfg_.pruneExponent);
    if (task == model::Task::NlpGlue)
        drop *= cfg_.nlpPenaltyFactor;
    return std::min(drop, cfg_.maxDropPct);
}

double
AccuracyProxy::dropFromRecon(double rel_error) const
{
    VITCOD_ASSERT(rel_error >= 0.0, "negative reconstruction error");
    const double drop =
        cfg_.aeScale * std::pow(rel_error, cfg_.aeExponent);
    return std::min(drop, cfg_.maxDropPct);
}

double
AccuracyProxy::estimate(double baseline_quality, model::Task task,
                        double retained_mass, double ae_rel_error) const
{
    const double drop = std::min(cfg_.maxDropPct,
                                 dropFromMask(retained_mass, task) +
                                     dropFromRecon(ae_rel_error));
    if (task == model::Task::PoseEstimation)
        return baseline_quality + drop * cfg_.poseMmPerDropPct;
    return std::max(0.0, baseline_quality - drop);
}

std::vector<double>
AccuracyProxy::finetuneCurve(size_t epochs, double start_quality,
                             double final_quality, double tau_epochs)
{
    std::vector<double> curve(epochs);
    for (size_t e = 0; e < epochs; ++e) {
        const double t = static_cast<double>(e);
        curve[e] = final_quality +
                   (start_quality - final_quality) *
                       std::exp(-t / tau_epochs);
    }
    return curve;
}

} // namespace vitcod::core
