/**
 * @file
 * ViTCoD's lightweight learnable auto-encoder (paper Sec. IV-C): a
 * pair of linear maps that compress Q/K vectors *along the attention
 * head dimension* (e.g. 12 heads -> 6) before they travel to
 * off-chip memory, and recover them on the way back — trading the
 * dominant data movement for cheap computation. The hypothesis is
 * inter-head redundancy; synthesizeHeadData() generates Q/K tensors
 * with exactly that property (substitution S3 in DESIGN.md) so the
 * module trains on a real signal.
 *
 * Two fitting paths are provided: Adam-based training that records
 * the per-epoch reconstruction loss (regenerating the Fig. 9(b) /
 * Fig. 18 trajectories) and a closed-form PCA optimum used by the
 * fast pipeline.
 */

#ifndef VITCOD_CORE_AUTOENCODER_H
#define VITCOD_CORE_AUTOENCODER_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace vitcod::core {

/** Static shape of an auto-encoder module. */
struct AutoEncoderConfig
{
    size_t heads = 12;      //!< input width h
    size_t compressed = 6;  //!< bottleneck width c (50% by default)
    uint64_t seed = 7;      //!< weight-init seed
};

/** Hyper-parameters of the Adam training loop. */
struct AeTrainConfig
{
    size_t epochs = 100;
    size_t batchSize = 256;
    double learningRate = 1e-2;
    double beta1 = 0.9;
    double beta2 = 0.999;
    uint64_t shuffleSeed = 11;
};

/** Per-epoch training record. */
struct AeTrainPoint
{
    size_t epoch;
    double reconLoss; //!< mean squared reconstruction error
};

/** Whole-run training record. */
struct AeTrainTrajectory
{
    std::vector<AeTrainPoint> points;

    /** Final reconstruction loss (0 if empty). */
    double finalLoss() const;
};

/**
 * Linear auto-encoder across the head dimension. Data layout: rows
 * are samples — one sample per (token, feature) pair — and columns
 * are the h per-head values of that coordinate.
 */
class AutoEncoder
{
  public:
    explicit AutoEncoder(AutoEncoderConfig cfg);

    const AutoEncoderConfig &config() const { return cfg_; }

    /** c/h, e.g. 0.5 for the paper's default. */
    double compressionRatio() const;

    /** Z = X E^T : (N x h) -> (N x c). */
    linalg::Matrix encode(const linalg::Matrix &x) const;

    /** X^ = Z D^T : (N x c) -> (N x h). */
    linalg::Matrix decode(const linalg::Matrix &z) const;

    /** decode(encode(x)). */
    linalg::Matrix reconstruct(const linalg::Matrix &x) const;

    /** Mean squared reconstruction error over @p x. */
    double reconstructionMse(const linalg::Matrix &x) const;

    /** ||X - X^||_F / ||X||_F. */
    double relativeError(const linalg::Matrix &x) const;

    /**
     * Train encoder+decoder with Adam on mini-batches of @p data,
     * minimizing the reconstruction MSE (the paper's L_Recons,
     * jointly trainable with the task loss). Records one point per
     * epoch.
     */
    AeTrainTrajectory trainSgd(const linalg::Matrix &data,
                               const AeTrainConfig &train);

    /**
     * Closed-form optimum: PCA of the head covariance. Sets the
     * encoder to the top-c principal directions and the decoder to
     * their transpose.
     */
    void fitPca(const linalg::Matrix &data);

    const linalg::Matrix &encoderWeights() const { return enc_; }
    const linalg::Matrix &decoderWeights() const { return dec_; }

  private:
    AutoEncoderConfig cfg_;
    linalg::Matrix enc_; //!< c x h
    linalg::Matrix dec_; //!< h x c
};

/**
 * Generate synthetic Q/K head data with genuine inter-head
 * redundancy: each sample's h head values are a random mixture of
 * @p latent_rank shared latent factors plus i.i.d. noise. With
 * latent_rank < compressed width, a well-trained AE recovers the
 * signal almost exactly; with latent_rank > compressed width it
 * cannot — tests exploit both directions.
 *
 * @param samples Number of rows (tokens x features in practice).
 * @param heads Number of columns h.
 * @param latent_rank Shared-factor count (the redundancy knob).
 * @param noise_std Standard deviation of the additive noise.
 */
linalg::Matrix synthesizeHeadData(size_t samples, size_t heads,
                                  size_t latent_rank, double noise_std,
                                  Rng &rng);

} // namespace vitcod::core

#endif // VITCOD_CORE_AUTOENCODER_H
