#include "reference_block.h"

#include <cmath>

#include "common/logging.h"
#include "linalg/kernels.h"
#include "linalg/sparse_kernels.h"

namespace vitcod::core {

BlockWeights
BlockWeights::random(const model::StageConfig &stage, Rng &rng)
{
    const size_t d = stage.embedDim;
    const size_t hd = stage.heads * stage.headDim;
    const size_t hidden = stage.mlpRatio * d;
    auto init = [&](size_t rows, size_t cols) {
        return linalg::Matrix::randomNormal(
            rows, cols, rng, 0.0f,
            static_cast<float>(
                1.0 / std::sqrt(static_cast<double>(rows))));
    };
    BlockWeights w;
    w.wq = init(d, hd);
    w.wk = init(d, hd);
    w.wv = init(d, hd);
    w.wo = init(hd, d);
    w.fc1 = init(d, hidden);
    w.fc2 = init(hidden, d);
    w.ln1Gamma.assign(d, 1.0f);
    w.ln1Beta.assign(d, 0.0f);
    w.ln2Gamma.assign(d, 1.0f);
    w.ln2Beta.assign(d, 0.0f);
    return w;
}

ReferenceBlock::ReferenceBlock(model::StageConfig stage,
                               BlockWeights weights,
                               const linalg::engine::KernelEngine *eng)
    : stage_(stage), w_(std::move(weights)), engine_(eng)
{
    VITCOD_ASSERT(engine_ != nullptr, "null kernel engine");
    VITCOD_ASSERT(w_.wq.rows() == stage_.embedDim &&
                      w_.wq.cols() == stage_.heads * stage_.headDim,
                  "weight shape mismatch");
}

linalg::Matrix
ReferenceBlock::headSlice(const linalg::Matrix &m, size_t head) const
{
    const size_t dk = stage_.headDim;
    linalg::Matrix out(m.rows(), dk);
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < dk; ++c)
            out(r, c) = m(r, head * dk + c);
    return out;
}

linalg::Matrix
ReferenceBlock::layerNorm(const linalg::Matrix &x,
                          const std::vector<float> &gamma,
                          const std::vector<float> &beta) const
{
    linalg::Matrix out;
    linalg::layerNormRowsInto(x, gamma, beta, out);
    return out;
}

linalg::Matrix
ReferenceBlock::attentionDense(const linalg::Matrix &x) const
{
    const size_t n = x.rows();
    const size_t dk = stage_.headDim;
    const size_t h = stage_.heads;
    const auto scale = static_cast<float>(
        1.0 / std::sqrt(static_cast<double>(dk)));

    const linalg::Matrix q = engine_->gemm(x, w_.wq);
    const linalg::Matrix k = engine_->gemm(x, w_.wk);
    const linalg::Matrix v = engine_->gemm(x, w_.wv);

    linalg::Matrix concat(n, h * dk);
    for (size_t head = 0; head < h; ++head) {
        linalg::Matrix s = engine_->gemmTransB(headSlice(q, head),
                                               headSlice(k, head));
        linalg::scaleInPlace(s, scale);
        const linalg::Matrix out = engine_->gemm(
            linalg::softmaxRows(s), headSlice(v, head));
        for (size_t r = 0; r < n; ++r)
            for (size_t c = 0; c < dk; ++c)
                concat(r, head * dk + c) = out(r, c);
    }
    return engine_->gemm(concat, w_.wo);
}

linalg::Matrix
ReferenceBlock::attentionSparse(
    const linalg::Matrix &x,
    const std::vector<SparseAttentionPlan> &plans) const
{
    const size_t n = x.rows();
    const size_t dk = stage_.headDim;
    const size_t h = stage_.heads;
    VITCOD_ASSERT(plans.size() == h, "one plan per head required");
    const auto scale = static_cast<float>(
        1.0 / std::sqrt(static_cast<double>(dk)));

    const linalg::Matrix q = engine_->gemm(x, w_.wq);
    const linalg::Matrix k = engine_->gemm(x, w_.wk);
    const linalg::Matrix v = engine_->gemm(x, w_.wv);

    linalg::Matrix concat(n, h * dk);
    for (size_t head = 0; head < h; ++head) {
        const auto &plan = plans[head];
        VITCOD_ASSERT(plan.tokens == n, "plan token count mismatch");
        // Execute in the plan's permuted token order, exactly as
        // the accelerator schedules it.
        const linalg::Matrix qp =
            linalg::permuteRows(headSlice(q, head), plan.perm);
        const linalg::Matrix kp =
            linalg::permuteRows(headSlice(k, head), plan.perm);
        const linalg::Matrix vp =
            linalg::permuteRows(headSlice(v, head), plan.perm);
        const linalg::Matrix outp =
            engine_->sparseAttention(qp, kp, vp, plan.mask, scale);
        // Un-permute: permuted row i is original token perm[i].
        for (size_t i = 0; i < n; ++i)
            for (size_t c = 0; c < dk; ++c)
                concat(plan.perm[i], head * dk + c) = outp(i, c);
    }
    return linalg::gemm(concat, w_.wo);
}

linalg::Matrix
ReferenceBlock::forwardDense(const linalg::Matrix &x) const
{
    const linalg::Matrix attn =
        attentionDense(layerNorm(x, w_.ln1Gamma, w_.ln1Beta));
    const linalg::Matrix mid = linalg::axpby(1.0f, x, 1.0f, attn);
    linalg::Matrix hidden = engine_->gemm(
        layerNorm(mid, w_.ln2Gamma, w_.ln2Beta), w_.fc1);
    linalg::geluInPlace(hidden);
    return linalg::axpby(1.0f, mid, 1.0f,
                         engine_->gemm(hidden, w_.fc2));
}

linalg::Matrix
ReferenceBlock::forwardSparse(
    const linalg::Matrix &x,
    const std::vector<SparseAttentionPlan> &plans) const
{
    const linalg::Matrix attn = attentionSparse(
        layerNorm(x, w_.ln1Gamma, w_.ln1Beta), plans);
    const linalg::Matrix mid = linalg::axpby(1.0f, x, 1.0f, attn);
    linalg::Matrix hidden = engine_->gemm(
        layerNorm(mid, w_.ln2Gamma, w_.ln2Beta), w_.fc1);
    linalg::geluInPlace(hidden);
    return linalg::axpby(1.0f, mid, 1.0f,
                         engine_->gemm(hidden, w_.fc2));
}

} // namespace vitcod::core
