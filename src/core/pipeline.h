/**
 * @file
 * The unified ViTCoD algorithm pipeline (paper Fig. 10): starting
 * from a pretrained model, Step 1 inserts auto-encoder modules and
 * finetunes, Step 2 runs split-and-conquer on the averaged attention
 * maps and finetunes again. The output is a ModelPlan carrying one
 * SparseAttentionPlan per (layer, head) plus per-layer AE summaries
 * — everything the ViTCoD accelerator simulator needs to schedule a
 * model.
 */

#ifndef VITCOD_CORE_PIPELINE_H
#define VITCOD_CORE_PIPELINE_H

#include <cstdint>
#include <vector>

#include "core/accuracy_proxy.h"
#include "core/autoencoder.h"
#include "core/split_conquer.h"
#include "model/attention_gen.h"
#include "model/vit_config.h"

namespace vitcod::core {

/** Configuration of the full pipeline. */
struct PipelineConfig
{
    SplitConquerConfig splitConquer;
    model::AttentionGenConfig gen;
    AccuracyProxyConfig proxy;

    /** Insert AE modules (Step 1)? */
    bool useAutoEncoder = true;

    /** Head compression denominator: c = ceil(h / this). */
    size_t aeCompressDenominator = 2;

    /** Latent rank of the synthetic Q/K head data; 0 = heads/3. */
    size_t aeLatentRank = 0;

    /** Noise level of the synthetic Q/K head data. */
    double aeNoiseStd = 0.15;

    /** Samples used to fit each per-layer AE (cap for speed). */
    size_t aeFitSamples = 4096;

    uint64_t seed = 123;
};

/** One attention head's plan within a model. */
struct HeadPlan
{
    size_t layer = 0;
    size_t head = 0;
    SparseAttentionPlan plan;
};

/** Per-layer AE fitting summary (Q and K share statistics). */
struct LayerAeSummary
{
    size_t layer = 0;
    size_t heads = 0;
    size_t compressed = 0;
    double relErrorQ = 0.0;
    double relErrorK = 0.0;

    /** compressed / heads. */
    double ratio() const;
};

/** Complete algorithm output for one model. */
struct ModelPlan
{
    model::VitModelConfig model;
    PipelineConfig cfg;

    std::vector<HeadPlan> heads;   //!< layer-major, head-minor
    std::vector<LayerAeSummary> ae; //!< empty when AE disabled

    double avgSparsity = 0.0;      //!< mean mask sparsity
    double avgRetainedMass = 0.0;  //!< mean retained attention mass
    double avgGlobalTokenFrac = 0.0; //!< mean Ngt / n
    double aeRelError = 0.0;       //!< mean AE rel. error (0 w/o AE)
    double estimatedQuality = 0.0; //!< proxy accuracy / MPJPE

    /** Find the plan of (layer, head); panics when absent. */
    const SparseAttentionPlan &planOf(size_t layer, size_t head) const;

    /** Mean AE compression ratio across layers (1.0 when disabled). */
    double aeCompressionRatio() const;
};

/**
 * Run the full pipeline (Fig. 10) for one model. Deterministic in
 * (model, cfg). AEs are fitted in closed form (PCA) here; the SGD
 * trajectory benches train the very same module explicitly.
 */
ModelPlan buildModelPlan(const model::VitModelConfig &model,
                         const PipelineConfig &cfg);

/**
 * Convenience: a PipelineConfig pinned at an exact target sparsity
 * with/without the AE — the operating points of the paper's
 * hardware evaluation sweeps.
 */
PipelineConfig makePipelineConfig(double target_sparsity, bool use_ae);

} // namespace vitcod::core

#endif // VITCOD_CORE_PIPELINE_H
