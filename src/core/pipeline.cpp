#include "pipeline.h"

#include <algorithm>

#include "common/logging.h"

namespace vitcod::core {

double
LayerAeSummary::ratio() const
{
    return heads ? static_cast<double>(compressed) /
                       static_cast<double>(heads)
                 : 1.0;
}

const SparseAttentionPlan &
ModelPlan::planOf(size_t layer, size_t head) const
{
    for (const auto &h : heads)
        if (h.layer == layer && h.head == head)
            return h.plan;
    panic("no plan for layer ", layer, " head ", head);
}

double
ModelPlan::aeCompressionRatio() const
{
    if (ae.empty())
        return 1.0;
    double sum = 0.0;
    for (const auto &l : ae)
        sum += l.ratio();
    return sum / static_cast<double>(ae.size());
}

ModelPlan
buildModelPlan(const model::VitModelConfig &model,
               const PipelineConfig &cfg)
{
    ModelPlan out;
    out.model = model;
    out.cfg = cfg;

    model::AttentionGenConfig gen_cfg = cfg.gen;
    gen_cfg.seed ^= cfg.seed;
    const model::AttentionMapGenerator gen(model, gen_cfg);
    const auto &shapes = gen.shapes();

    Rng rng(cfg.seed);

    // ---- Step 1 (Fig. 10): insert AE modules per layer and fit.
    if (cfg.useAutoEncoder) {
        for (size_t l = 0; l < shapes.size(); ++l) {
            const size_t h = shapes[l].heads;
            const size_t c =
                std::max<size_t>(1, (h + cfg.aeCompressDenominator - 1) /
                                        cfg.aeCompressDenominator);
            const size_t latent =
                cfg.aeLatentRank ? cfg.aeLatentRank
                                 : std::max<size_t>(1, h / 3);
            const size_t samples = std::min(
                cfg.aeFitSamples, shapes[l].tokens * shapes[l].headDim);

            LayerAeSummary summary;
            summary.layer = l;
            summary.heads = h;
            summary.compressed = c;

            for (int tensor = 0; tensor < 2; ++tensor) {
                Rng fork = rng.fork();
                const linalg::Matrix data = synthesizeHeadData(
                    samples, h, std::min(latent, h), cfg.aeNoiseStd,
                    fork);
                AutoEncoder ae({h, c, cfg.seed + l * 2 + tensor});
                ae.fitPca(data);
                const double err = ae.relativeError(data);
                (tensor == 0 ? summary.relErrorQ : summary.relErrorK) =
                    err;
            }
            out.ae.push_back(summary);
        }
    }

    // ---- Step 2 (Fig. 10): split-and-conquer every (layer, head).
    double sum_sparsity = 0.0;
    double sum_mass = 0.0;
    double sum_ngt_frac = 0.0;
    size_t count = 0;
    for (size_t l = 0; l < shapes.size(); ++l) {
        for (size_t h = 0; h < shapes[l].heads; ++h) {
            const linalg::Matrix a = gen.generate(l, h);
            HeadPlan hp;
            hp.layer = l;
            hp.head = h;
            hp.plan = splitConquer(a, cfg.splitConquer);
            sum_sparsity += hp.plan.sparsity;
            sum_mass += hp.plan.retainedMass;
            sum_ngt_frac +=
                static_cast<double>(hp.plan.numGlobalTokens) /
                static_cast<double>(hp.plan.tokens);
            ++count;
            out.heads.push_back(std::move(hp));
        }
    }
    VITCOD_ASSERT(count > 0, "model produced no attention heads");
    out.avgSparsity = sum_sparsity / static_cast<double>(count);
    out.avgRetainedMass = sum_mass / static_cast<double>(count);
    out.avgGlobalTokenFrac = sum_ngt_frac / static_cast<double>(count);

    if (cfg.useAutoEncoder && !out.ae.empty()) {
        double err = 0.0;
        for (const auto &l : out.ae)
            err += 0.5 * (l.relErrorQ + l.relErrorK);
        out.aeRelError = err / static_cast<double>(out.ae.size());
    }

    // ---- Final finetuning: quality estimate via the proxy.
    const AccuracyProxy proxy(cfg.proxy);
    out.estimatedQuality =
        proxy.estimate(model.baselineQuality, model.task,
                       out.avgRetainedMass, out.aeRelError);
    return out;
}

PipelineConfig
makePipelineConfig(double target_sparsity, bool use_ae)
{
    PipelineConfig cfg;
    cfg.splitConquer.mode = PruneMode::TargetSparsity;
    cfg.splitConquer.targetSparsity = target_sparsity;
    cfg.useAutoEncoder = use_ae;
    return cfg;
}

} // namespace vitcod::core
