#include "core/model_exec/model_weights.h"

#include <cmath>

#include "common/logging.h"

namespace vitcod::core::model_exec {

namespace {

linalg::Matrix
scaledInit(size_t rows, size_t cols, Rng &rng)
{
    return linalg::Matrix::randomNormal(
        rows, cols, rng, 0.0f,
        static_cast<float>(1.0 /
                           std::sqrt(static_cast<double>(rows))));
}

} // namespace

ModelWeights
ModelWeights::random(const model::VitModelConfig &model,
                     size_t in_dim, size_t num_classes, Rng &rng)
{
    VITCOD_ASSERT(!model.stages.empty(), "model has no stages");
    VITCOD_ASSERT(num_classes >= 1, "classifier needs >= 1 class");
    const size_t d0 = model.stages.front().embedDim;
    if (in_dim == 0)
        in_dim = d0;

    ModelWeights w;
    w.patchEmbed = scaledInit(in_dim, d0, rng);
    for (size_t layer = 0; layer < model.totalLayers(); ++layer)
        w.blocks.push_back(
            BlockWeights::random(model.stageForLayer(layer), rng));
    for (size_t s = 0; s + 1 < model.stages.size(); ++s)
        w.stageProj.push_back(
            scaledInit(model.stages[s].embedDim,
                       model.stages[s + 1].embedDim, rng));
    const size_t d_last = model.stages.back().embedDim;
    w.lnFinalGamma.assign(d_last, 1.0f);
    w.lnFinalBeta.assign(d_last, 0.0f);
    w.classifier = scaledInit(d_last, num_classes, rng);
    return w;
}

size_t
ModelWeights::parameterCount() const
{
    size_t n = patchEmbed.size() + classifier.size() +
               lnFinalGamma.size() + lnFinalBeta.size();
    for (const auto &p : stageProj)
        n += p.size();
    for (const BlockWeights &b : blocks)
        n += b.wq.size() + b.wk.size() + b.wv.size() + b.wo.size() +
             b.fc1.size() + b.fc2.size() + b.ln1Gamma.size() +
             b.ln1Beta.size() + b.ln2Gamma.size() + b.ln2Beta.size();
    return n;
}

} // namespace vitcod::core::model_exec
