/**
 * @file
 * Per-layer / per-head execution record of one ModelExecutor
 * forward (or forwardBatch) call: wall times of each block phase,
 * mask workload sizes, analytic MAC counts and the KernelEngine
 * dispatch-counter delta the call produced.
 *
 * Traces split into a *structural* part — shapes, mask nnz, global
 * token counts, MACs, dispatch counts — that is bit-deterministic
 * in (plan, engine config, thread count), and a *timing* part that
 * is machine-dependent. The golden-trace regression fixtures under
 * tests/data/ serialize whole traces but compare only the
 * structural part (structurallyEqual); timings ride along for
 * human inspection.
 */

#ifndef VITCOD_CORE_MODEL_EXEC_EXEC_TRACE_H
#define VITCOD_CORE_MODEL_EXEC_EXEC_TRACE_H

#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.h"
#include "linalg/engine/engine.h"

namespace vitcod::core::model_exec {

/** One attention head's execution record within a layer. */
struct HeadTrace
{
    size_t head = 0;
    size_t maskNnz = 0;         //!< plan mask nonzeros
    size_t numGlobalTokens = 0; //!< plan N_gt
    double seconds = 0;         //!< sparse attention wall time

    bool operator==(const HeadTrace &) const = default;
};

/** One transformer layer's execution record. */
struct LayerTrace
{
    size_t layer = 0;
    size_t tokens = 0;
    size_t heads = 0;
    size_t headDim = 0;
    size_t embedDim = 0;
    MacOps macs = 0; //!< analytic GEMM + sparse-attention MACs

    double qkvSeconds = 0;  //!< Q/K/V projection GEMMs
    double attnSeconds = 0; //!< all heads' sparse attention
    double projSeconds = 0; //!< output projection + residual
    double mlpSeconds = 0;  //!< LN + FC1 + GELU + FC2 + residual

    std::vector<HeadTrace> headTraces;

    double seconds() const;
};

/** Whole-forward execution record. */
struct ExecTrace
{
    std::string model;
    size_t batch = 0; //!< inputs this trace accumulates over

    double patchEmbedSeconds = 0;
    double classifierSeconds = 0;
    double totalSeconds = 0;
    MacOps totalMacs = 0;

    /** Engine dispatch-counter delta over the traced call. */
    linalg::engine::DispatchStats dispatch;

    std::vector<LayerTrace> layers;

    /** Serialize as a line-oriented text document. */
    void write(std::ostream &os) const;
    void writeFile(const std::string &path) const;

    /** Parse a document produced by write(); fatal() on malformed
     *  input. */
    static ExecTrace read(std::istream &is);
    static ExecTrace readFile(const std::string &path);
};

/**
 * Compare everything deterministic — model, batch, per-layer and
 * per-head shapes/workloads/MACs, dispatch counters — ignoring all
 * wall times. On mismatch returns false and, when @p why is
 * non-null, describes the first difference.
 */
bool structurallyEqual(const ExecTrace &a, const ExecTrace &b,
                       std::string *why = nullptr);

} // namespace vitcod::core::model_exec

#endif // VITCOD_CORE_MODEL_EXEC_EXEC_TRACE_H
