/**
 * @file
 * Reusable activation storage for a full-model forward pass. The
 * arena owns one matrix per named slot; reserveFor() sizes every
 * slot once to the model's worst-case stage shapes, and at() then
 * reshapes in place (matrix capacity is retained across reshapes),
 * so a steady-state forward pass performs zero activation
 * allocations — growths() counts the reallocations that did happen
 * and tests pin it at 0 after warmup.
 *
 * The residual stream is ping-pong buffered (kX0/kX1 via
 * flipResidual()): stage transitions read the old token grid from
 * one buffer while writing the pooled grid into the other, with no
 * aliasing and no copy-back.
 *
 * An arena belongs to exactly one executor (one thread); it keeps
 * no locks.
 */

#ifndef VITCOD_CORE_MODEL_EXEC_BUFFER_ARENA_H
#define VITCOD_CORE_MODEL_EXEC_BUFFER_ARENA_H

#include <array>
#include <cstddef>

#include "linalg/matrix.h"
#include "model/vit_config.h"

namespace vitcod::core::model_exec {

/** Named activation buffers of one forward pass. */
enum class Slot : size_t
{
    kX0,      //!< residual stream, ping
    kX1,      //!< residual stream, pong
    kNorm,    //!< LayerNorm output feeding attention / MLP
    kQ,       //!< Q projection, all heads concatenated
    kK,       //!< K projection
    kV,       //!< V projection
    kHeadQ,   //!< one head's Q, permuted to plan order
    kHeadK,   //!< one head's K, permuted
    kHeadV,   //!< one head's V, permuted
    kHeadOut, //!< one head's attention output (plan order)
    kConcat,  //!< all heads' outputs, original token order
    kProj,    //!< attention output projection
    kHidden,  //!< MLP hidden activation
    kMlpOut,  //!< MLP down-projection
    kPooled,  //!< classifier token pool (1 x d)
    kLogits,  //!< classifier output
    kCount,
};

/** Fixed set of reusable activation matrices. */
class BufferArena
{
  public:
    BufferArena() = default;

    BufferArena(const BufferArena &) = delete;
    BufferArena &operator=(const BufferArena &) = delete;

    /**
     * Pre-size every slot for @p model so no later at() call grows a
     * buffer. @p in_dim is the patch-feature width entering the
     * embedding, @p num_classes the classifier width.
     */
    void reserveFor(const model::VitModelConfig &model, size_t in_dim,
                    size_t num_classes);

    /**
     * The slot's matrix reshaped (and zeroed) to rows x cols.
     * Reuses the slot's capacity; growths() increments if the shape
     * exceeds everything this slot has held before.
     */
    linalg::Matrix &at(Slot s, size_t rows, size_t cols);

    /**
     * Like at(rows, cols) but without the zero pass: element values
     * are stale. Only for slots the caller overwrites in full
     * before reading (permute/pool destinations).
     */
    linalg::Matrix &atOverwrite(Slot s, size_t rows, size_t cols);

    /**
     * The slot's matrix at its current shape: for read-back, or as
     * the destination of an *Into call (gemmInto, layerNormRowsInto)
     * that reshapes the buffer itself — acquiring shape-free avoids
     * zeroing the buffer twice.
     */
    linalg::Matrix &at(Slot s);
    const linalg::Matrix &at(Slot s) const;

    /** Swap which of kX0/kX1 residual() returns. */
    void flipResidual();

    /** The current residual-stream buffer (kX0 or kX1). */
    linalg::Matrix &residual();

    /** The other residual buffer (stage-transition write target). */
    linalg::Matrix &residualSpare();

    /** Slot acquisitions that had to grow past their reservation. */
    size_t growths() const { return growths_; }

    /** Total bytes currently reserved across all slots. */
    size_t footprintBytes() const;

  private:
    std::array<linalg::Matrix, static_cast<size_t>(Slot::kCount)>
        slots_;
    std::array<size_t, static_cast<size_t>(Slot::kCount)> reserved_{};
    size_t growths_ = 0;
    bool residualIsX1_ = false;
};

} // namespace vitcod::core::model_exec

#endif // VITCOD_CORE_MODEL_EXEC_BUFFER_ARENA_H
