#include "core/model_exec/buffer_arena.h"

#include <algorithm>

#include "common/logging.h"

namespace vitcod::core::model_exec {

namespace {

size_t
idx(Slot s)
{
    return static_cast<size_t>(s);
}

} // namespace

void
BufferArena::reserveFor(const model::VitModelConfig &model,
                        size_t in_dim, size_t num_classes)
{
    const size_t n = model.maxTokens();
    const size_t d = model.maxEmbedDim();
    const size_t hd = model.maxHeadConcat();
    const size_t dk = model.maxHeadDim();
    const size_t hidden = model.maxMlpHidden();
    const size_t stream = std::max({d, in_dim});

    auto reserve = [&](Slot s, size_t rows, size_t cols) {
        slots_[idx(s)].resize(rows, cols);
        reserved_[idx(s)] = rows * cols;
    };
    reserve(Slot::kX0, n, stream);
    reserve(Slot::kX1, n, stream);
    reserve(Slot::kNorm, n, d);
    reserve(Slot::kQ, n, hd);
    reserve(Slot::kK, n, hd);
    reserve(Slot::kV, n, hd);
    reserve(Slot::kHeadQ, n, dk);
    reserve(Slot::kHeadK, n, dk);
    reserve(Slot::kHeadV, n, dk);
    reserve(Slot::kHeadOut, n, dk);
    reserve(Slot::kConcat, n, hd);
    reserve(Slot::kProj, n, d);
    reserve(Slot::kHidden, n, hidden);
    reserve(Slot::kMlpOut, n, d);
    reserve(Slot::kPooled, 1, d);
    reserve(Slot::kLogits, 1, num_classes);
}

linalg::Matrix &
BufferArena::at(Slot s, size_t rows, size_t cols)
{
    VITCOD_ASSERT(s < Slot::kCount, "bad arena slot");
    linalg::Matrix &m = slots_[idx(s)];
    if (rows * cols > reserved_[idx(s)]) {
        ++growths_;
        reserved_[idx(s)] = rows * cols;
    }
    m.resize(rows, cols);
    return m;
}

linalg::Matrix &
BufferArena::atOverwrite(Slot s, size_t rows, size_t cols)
{
    VITCOD_ASSERT(s < Slot::kCount, "bad arena slot");
    linalg::Matrix &m = slots_[idx(s)];
    if (rows * cols > reserved_[idx(s)]) {
        ++growths_;
        reserved_[idx(s)] = rows * cols;
    }
    m.reshapeUninit(rows, cols);
    return m;
}

linalg::Matrix &
BufferArena::at(Slot s)
{
    VITCOD_ASSERT(s < Slot::kCount, "bad arena slot");
    return slots_[idx(s)];
}

const linalg::Matrix &
BufferArena::at(Slot s) const
{
    VITCOD_ASSERT(s < Slot::kCount, "bad arena slot");
    return slots_[idx(s)];
}

void
BufferArena::flipResidual()
{
    residualIsX1_ = !residualIsX1_;
}

linalg::Matrix &
BufferArena::residual()
{
    return slots_[idx(residualIsX1_ ? Slot::kX1 : Slot::kX0)];
}

linalg::Matrix &
BufferArena::residualSpare()
{
    return slots_[idx(residualIsX1_ ? Slot::kX0 : Slot::kX1)];
}

size_t
BufferArena::footprintBytes() const
{
    size_t bytes = 0;
    for (const auto &m : slots_)
        bytes += m.capacity() * sizeof(float);
    return bytes;
}

} // namespace vitcod::core::model_exec
