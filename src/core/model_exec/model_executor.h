/**
 * @file
 * Full-model forward-pass runtime: executes an entire N-layer ViT
 * with real activations through the KernelEngine — the quantity
 * the paper's Fig. 15/17 latency results are about, where the rest
 * of the repo only times isolated attention blocks.
 *
 * Per forward: patch-embedding proxy GEMM, then per layer
 * {LayerNorm, Q/K/V projection GEMMs, per-head sparse attention
 * (SDDMM -> fused masked softmax -> SpMM) in that head's plan-
 * permuted token order using the engine's cached mask structure,
 * output projection, residual, LayerNorm, MLP (GELU), residual},
 * LeViT-style token pooling + projection at stage transitions, and
 * a final LayerNorm + mean-pool + classifier GEMM. The math is the
 * layer-by-layer composition of ReferenceBlock::forwardSparse —
 * tests/core/test_model_exec.cpp holds the two implementations to
 * a ulp budget differentially.
 *
 * All activations live in a BufferArena sized once per model:
 * steady-state forwards perform zero activation allocations.
 * forwardBatch() runs a batch back to back through the same arena,
 * so every head's mask-structure lookup after the first sample is
 * an engine cache hit (size structureCacheCapacity >= the model's
 * total head count to keep that true).
 *
 * An executor owns mutable per-call state (arena, scratch): one
 * executor per thread. The plan and engine are borrowed and must
 * outlive the executor.
 */

#ifndef VITCOD_CORE_MODEL_EXEC_MODEL_EXECUTOR_H
#define VITCOD_CORE_MODEL_EXEC_MODEL_EXECUTOR_H

#include <memory>
#include <vector>

#include "core/model_exec/buffer_arena.h"
#include "core/model_exec/exec_trace.h"
#include "core/model_exec/model_weights.h"
#include "core/pipeline.h"
#include "core/schedule/builder.h"
#include "linalg/engine/engine.h"

namespace vitcod::core::model_exec {

/** Knobs of one executor instance. */
struct ExecutorConfig
{
    /** Classifier width. */
    size_t numClasses = 1000;

    /** Patch-feature width entering the embedding; 0 = stage 0's
     *  embedDim. */
    size_t inDim = 0;

    /** Record per-head traces (tiny cost; off for pure latency). */
    bool collectHeadTraces = true;
};

/** Whole-model forward executor over a built ModelPlan. */
class ModelExecutor
{
  public:
    /**
     * @param plan Built algorithm output; borrowed, must outlive
     *        the executor. One SparseAttentionPlan per (layer,
     *        head) is required.
     * @param weights Full weight set; the executor takes ownership.
     * @param eng Kernel executor; defaults to the shared
     *        Auto-dispatch engine.
     * @param sched Prebuilt Schedule IR for @p plan (borrowed, must
     *        outlive the executor) — what the serving path passes so
     *        the one compiled schedule drives simulator and runtime
     *        alike. nullptr builds a private schedule once here;
     *        either way the executor runs from schedule layouts and
     *        never scans a mask itself.
     */
    ModelExecutor(const core::ModelPlan *plan, ModelWeights weights,
                  ExecutorConfig cfg = {},
                  const linalg::engine::KernelEngine *eng =
                      &linalg::engine::KernelEngine::shared(),
                  const core::schedule::ModelSchedule *sched = nullptr);

    const core::ModelPlan &plan() const { return *plan_; }

    /** The schedule this executor runs from. */
    const core::schedule::ModelSchedule &schedule() const
    {
        return *schedule_;
    }
    const ExecutorConfig &config() const { return cfg_; }
    const ModelWeights &weights() const { return weights_; }
    const BufferArena &arena() const { return arena_; }

    /**
     * One forward pass: @p patches is (stage0.tokens x inDim),
     * result is (1 x numClasses) logits. When @p trace is non-null
     * it is overwritten with this call's record.
     */
    linalg::Matrix forward(const linalg::Matrix &patches,
                           ExecTrace *trace = nullptr);

    /**
     * Batch entry point: runs every input back to back through the
     * same arena and warm mask-structure cache, amortizing the
     * per-head structure lookups across the batch. @p trace (when
     * non-null) accumulates times/dispatch over the whole batch
     * with batch = inputs.size().
     */
    std::vector<linalg::Matrix>
    forwardBatch(const std::vector<linalg::Matrix> &inputs,
                 ExecTrace *trace = nullptr);

    /** Analytic MACs of one forward pass (constant per config). */
    MacOps forwardMacs() const;

  private:
    /** One transformer layer in place on arena.residual(). */
    void runLayer(size_t layer, LayerTrace *lt);

    /** Token pooling + projection entering stage @p next_stage. */
    void stageTransition(size_t next_stage);

    /** Final LN + mean pool + classifier; result in kLogits. */
    void classify();

    /** LayerNorm of @p x into @p out (row-wise, eps 1e-6). */
    void layerNormInto(const linalg::Matrix &x,
                       const std::vector<float> &gamma,
                       const std::vector<float> &beta,
                       linalg::Matrix &out) const;

    /** Skeleton of forward(); shared by the batch path. */
    void forwardInto(const linalg::Matrix &patches, ExecTrace *trace);

    /** Reset @p trace with static per-layer fields for @p batch. */
    void initTrace(ExecTrace *trace, size_t batch) const;

    /** Fill dispatch delta, MAC counts and total time. */
    void finalizeTrace(ExecTrace *trace, size_t batch,
                       const linalg::engine::DispatchStats &before,
                       double seconds) const;

    const core::ModelPlan *plan_;
    ModelWeights weights_;
    ExecutorConfig cfg_;
    const linalg::engine::KernelEngine *engine_;

    /** Built here when the caller did not inject a schedule. */
    std::unique_ptr<core::schedule::ModelSchedule> ownSchedule_;
    /** The Schedule IR execution runs from (owned or borrowed):
     *  per-head mask layouts, nnz and MAC counts — no mask is ever
     *  scanned on the request path. */
    const core::schedule::ModelSchedule *schedule_ = nullptr;

    /** headPlans_[layer][head] -> plan, resolved once at build. */
    std::vector<std::vector<const SparseAttentionPlan *>> headPlans_;

    MacOps forwardMacs_ = 0;

    BufferArena arena_;
};

} // namespace vitcod::core::model_exec

#endif // VITCOD_CORE_MODEL_EXEC_MODEL_EXECUTOR_H
