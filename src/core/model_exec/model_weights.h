/**
 * @file
 * The full weight set of one model as the ModelExecutor consumes
 * it: a patch-embedding projection proxy, one BlockWeights per
 * transformer layer, a projection per pyramid stage transition
 * (LeViT-style token pooling), a final LayerNorm and the classifier
 * head. Weights are plain matrices; random() draws them with the
 * same 1/sqrt(fan_in) scaling BlockWeights uses so activations stay
 * stable through deep stacks.
 */

#ifndef VITCOD_CORE_MODEL_EXEC_MODEL_WEIGHTS_H
#define VITCOD_CORE_MODEL_EXEC_MODEL_WEIGHTS_H

#include <vector>

#include "core/reference_block.h"
#include "linalg/matrix.h"
#include "model/vit_config.h"

namespace vitcod::core::model_exec {

/** Every learnable tensor of one model. */
struct ModelWeights
{
    /** Patch-feature projection: inDim x embedDim(stage 0). */
    linalg::Matrix patchEmbed;

    /** One per global layer, in layer order. */
    std::vector<BlockWeights> blocks;

    /**
     * One per stage transition (stages.size() - 1 entries):
     * embedDim(stage s) x embedDim(stage s+1), applied after token
     * pooling. Identity-free: present even when dims match so the
     * executor has a single code path.
     */
    std::vector<linalg::Matrix> stageProj;

    /** Final LayerNorm before the classifier. */
    std::vector<float> lnFinalGamma, lnFinalBeta;

    /** Classifier head: embedDim(last stage) x numClasses. */
    linalg::Matrix classifier;

    /**
     * Random initialization for @p model. @p in_dim is the
     * patch-feature width (0 picks stage 0's embedDim);
     * @p num_classes the classifier width.
     */
    static ModelWeights random(const model::VitModelConfig &model,
                               size_t in_dim, size_t num_classes,
                               Rng &rng);

    /** Total scalar parameters (for weight-streaming estimates). */
    size_t parameterCount() const;
};

} // namespace vitcod::core::model_exec

#endif // VITCOD_CORE_MODEL_EXEC_MODEL_WEIGHTS_H
