#include "core/model_exec/exec_trace.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace vitcod::core::model_exec {

namespace {

constexpr const char *kMagic = "vitcod-exec-trace";
constexpr const char *kVersion = "v1";

} // namespace

double
LayerTrace::seconds() const
{
    return qkvSeconds + attnSeconds + projSeconds + mlpSeconds;
}

void
ExecTrace::write(std::ostream &os) const
{
    // Doubles round-trip exactly at 17 significant digits;
    // restored on return (ostream precision is sticky).
    const auto old_precision = os.precision(17);
    os << kMagic << ' ' << kVersion << '\n';
    os << "model " << model << '\n';
    os << "batch " << batch << '\n';
    os << "total_macs " << totalMacs << '\n';
    os << "patch_embed_seconds " << patchEmbedSeconds << '\n';
    os << "classifier_seconds " << classifierSeconds << '\n';
    os << "total_seconds " << totalSeconds << '\n';
    for (const auto &[name, member] : linalg::engine::dispatchStatsFields())
        os << "dispatch " << name << ' ' << dispatch.*member << '\n';
    os << "layers " << layers.size() << '\n';
    for (const LayerTrace &l : layers) {
        os << "layer " << l.layer << " tokens " << l.tokens
           << " heads " << l.heads << " head_dim " << l.headDim
           << " embed_dim " << l.embedDim << " macs " << l.macs
           << " qkv_s " << l.qkvSeconds << " attn_s " << l.attnSeconds
           << " proj_s " << l.projSeconds << " mlp_s " << l.mlpSeconds
           << '\n';
        // Explicit count: heads above is the layer shape, while the
        // records below may be absent (collectHeadTraces = false).
        os << "head_traces " << l.headTraces.size() << '\n';
        for (const HeadTrace &h : l.headTraces)
            os << "head " << h.head << " nnz " << h.maskNnz
               << " global " << h.numGlobalTokens << " seconds "
               << h.seconds << '\n';
    }
    os.precision(old_precision);
}

void
ExecTrace::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    write(os);
    if (!os)
        fatal("write to '", path, "' failed");
}

namespace {

/** Read one token and panic if it is not @p expected. */
void
expectWord(std::istream &is, const char *expected)
{
    std::string word;
    if (!(is >> word) || word != expected)
        fatal("exec trace parse error: expected '", expected,
              "', got '", word, "'");
}

template <typename T>
T
readValue(std::istream &is, const char *label)
{
    expectWord(is, label);
    T v{};
    if (!(is >> v))
        fatal("exec trace parse error: bad value for '", label, "'");
    return v;
}

} // namespace

ExecTrace
ExecTrace::read(std::istream &is)
{
    expectWord(is, kMagic);
    expectWord(is, kVersion);

    ExecTrace t;
    t.model = readValue<std::string>(is, "model");
    t.batch = readValue<size_t>(is, "batch");
    t.totalMacs = readValue<MacOps>(is, "total_macs");
    t.patchEmbedSeconds =
        readValue<double>(is, "patch_embed_seconds");
    t.classifierSeconds =
        readValue<double>(is, "classifier_seconds");
    t.totalSeconds = readValue<double>(is, "total_seconds");
    for (const auto &[name, member] : linalg::engine::dispatchStatsFields()) {
        expectWord(is, "dispatch");
        t.dispatch.*member = readValue<uint64_t>(is, name);
    }
    const auto n_layers = readValue<size_t>(is, "layers");
    t.layers.reserve(n_layers);
    for (size_t i = 0; i < n_layers; ++i) {
        LayerTrace l;
        l.layer = readValue<size_t>(is, "layer");
        l.tokens = readValue<size_t>(is, "tokens");
        l.heads = readValue<size_t>(is, "heads");
        l.headDim = readValue<size_t>(is, "head_dim");
        l.embedDim = readValue<size_t>(is, "embed_dim");
        l.macs = readValue<MacOps>(is, "macs");
        l.qkvSeconds = readValue<double>(is, "qkv_s");
        l.attnSeconds = readValue<double>(is, "attn_s");
        l.projSeconds = readValue<double>(is, "proj_s");
        l.mlpSeconds = readValue<double>(is, "mlp_s");
        const auto n_heads = readValue<size_t>(is, "head_traces");
        l.headTraces.reserve(n_heads);
        for (size_t h = 0; h < n_heads; ++h) {
            HeadTrace ht;
            ht.head = readValue<size_t>(is, "head");
            ht.maskNnz = readValue<size_t>(is, "nnz");
            ht.numGlobalTokens = readValue<size_t>(is, "global");
            ht.seconds = readValue<double>(is, "seconds");
            l.headTraces.push_back(ht);
        }
        t.layers.push_back(std::move(l));
    }
    return t;
}

ExecTrace
ExecTrace::readFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '", path, "' for reading");
    return read(is);
}

namespace {

bool
fail(std::string *why, const std::string &msg)
{
    if (why)
        *why = msg;
    return false;
}

template <typename T>
bool
check(std::string *why, const std::string &what, const T &a,
      const T &b)
{
    if (a == b)
        return true;
    std::ostringstream os;
    os << what << ": " << a << " vs " << b;
    return fail(why, os.str());
}

} // namespace

bool
structurallyEqual(const ExecTrace &a, const ExecTrace &b,
                  std::string *why)
{
    if (!check(why, "model", a.model, b.model) ||
        !check(why, "batch", a.batch, b.batch) ||
        !check(why, "total_macs", a.totalMacs, b.totalMacs) ||
        !check(why, "layer count", a.layers.size(), b.layers.size()))
        return false;
    for (const auto &[name, member] : linalg::engine::dispatchStatsFields())
        if (!check(why, std::string("dispatch ") + name,
                   a.dispatch.*member, b.dispatch.*member))
            return false;
    for (size_t i = 0; i < a.layers.size(); ++i) {
        const LayerTrace &la = a.layers[i];
        const LayerTrace &lb = b.layers[i];
        const std::string tag = "layer " + std::to_string(i) + " ";
        if (!check(why, tag + "index", la.layer, lb.layer) ||
            !check(why, tag + "tokens", la.tokens, lb.tokens) ||
            !check(why, tag + "heads", la.heads, lb.heads) ||
            !check(why, tag + "head_dim", la.headDim, lb.headDim) ||
            !check(why, tag + "embed_dim", la.embedDim,
                   lb.embedDim) ||
            !check(why, tag + "macs", la.macs, lb.macs) ||
            !check(why, tag + "head count", la.headTraces.size(),
                   lb.headTraces.size()))
            return false;
        for (size_t h = 0; h < la.headTraces.size(); ++h) {
            const HeadTrace &ha = la.headTraces[h];
            const HeadTrace &hb = lb.headTraces[h];
            const std::string htag =
                tag + "head " + std::to_string(h) + " ";
            if (!check(why, htag + "index", ha.head, hb.head) ||
                !check(why, htag + "nnz", ha.maskNnz, hb.maskNnz) ||
                !check(why, htag + "global", ha.numGlobalTokens,
                       hb.numGlobalTokens))
                return false;
        }
    }
    return true;
}

} // namespace vitcod::core::model_exec
