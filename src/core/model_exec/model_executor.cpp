#include "core/model_exec/model_executor.h"

#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "linalg/kernels.h"
#include "obs/trace.h"

namespace vitcod::core::model_exec {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * One timed executor phase: a single clock measurement feeding both
 * an ExecTrace accumulator (when the caller collects one) and a
 * tracer span — ExecTrace is a view over exactly what the tracer
 * records, never a second, divergent stopwatch.
 */
class PhaseTimer
{
  public:
    PhaseTimer(const char *name, double *accum, const char *k1,
               double v1, const char *k2 = nullptr, double v2 = 0)
        : name_(name), accum_(accum), k1_(k1), v1_(v1), k2_(k2),
          v2_(v2), live_(obs::TraceSession::enabled())
    {
        if (live_)
            startMicros_ =
                obs::TraceSession::instance().nowMicros();
        t0_ = Clock::now();
    }

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

    ~PhaseTimer()
    {
        const double s = secondsSince(t0_);
        if (accum_)
            *accum_ += s;
        if (!live_)
            return;
        obs::TraceEvent ev;
        ev.name = name_;
        ev.category = "model_exec";
        ev.phase = obs::Phase::Complete;
        ev.tsMicros = startMicros_;
        ev.durMicros = static_cast<int64_t>(s * 1e6);
        ev.argKey1 = k1_;
        ev.argVal1 = v1_;
        ev.argKey2 = k2_;
        ev.argVal2 = v2_;
        obs::TraceSession::instance().record(ev);
    }

  private:
    const char *name_;
    double *accum_;
    const char *k1_;
    double v1_;
    const char *k2_;
    double v2_;
    bool live_;
    int64_t startMicros_ = 0;
    Clock::time_point t0_;
};

} // namespace

ModelExecutor::ModelExecutor(const core::ModelPlan *plan,
                             ModelWeights weights, ExecutorConfig cfg,
                             const linalg::engine::KernelEngine *eng,
                             const core::schedule::ModelSchedule *sched)
    : plan_(plan), weights_(std::move(weights)), cfg_(cfg),
      engine_(eng)
{
    VITCOD_ASSERT(plan_ != nullptr, "null model plan");
    VITCOD_ASSERT(engine_ != nullptr, "null kernel engine");
    const model::VitModelConfig &m = plan_->model;
    VITCOD_ASSERT(!m.stages.empty(), "model has no stages");
    // Pyramids only shrink; a growing stage would leave pooling
    // groups empty (divide by zero -> NaN activations).
    for (size_t s = 0; s + 1 < m.stages.size(); ++s)
        VITCOD_ASSERT(m.stages[s + 1].tokens <= m.stages[s].tokens,
                      "stage transition must not grow tokens");
    const size_t layers = m.totalLayers();
    VITCOD_ASSERT(weights_.blocks.size() == layers,
                  "one BlockWeights per layer required");
    VITCOD_ASSERT(weights_.stageProj.size() + 1 == m.stages.size(),
                  "one stage projection per transition required");
    if (cfg_.inDim == 0)
        cfg_.inDim = m.stages.front().embedDim;
    VITCOD_ASSERT(weights_.patchEmbed.rows() == cfg_.inDim &&
                      weights_.patchEmbed.cols() ==
                          m.stages.front().embedDim,
                  "patch embedding shape mismatch");
    VITCOD_ASSERT(weights_.classifier.rows() ==
                          m.stages.back().embedDim &&
                      weights_.classifier.cols() == cfg_.numClasses,
                  "classifier shape mismatch");

    // Resolve every (layer, head) plan once; forward never searches.
    headPlans_.resize(layers);
    for (size_t l = 0; l < layers; ++l)
        headPlans_[l].assign(m.stageForLayer(l).heads, nullptr);
    for (const core::HeadPlan &hp : plan_->heads) {
        VITCOD_ASSERT(hp.layer < layers &&
                          hp.head < headPlans_[hp.layer].size(),
                      "head plan outside model shape");
        headPlans_[hp.layer][hp.head] = &hp.plan;
    }
    for (size_t l = 0; l < layers; ++l) {
        const model::StageConfig &s = m.stageForLayer(l);
        for (size_t h = 0; h < headPlans_[l].size(); ++h) {
            const SparseAttentionPlan *p = headPlans_[l][h];
            VITCOD_ASSERT(p != nullptr, "missing plan for layer ", l,
                          " head ", h);
            VITCOD_ASSERT(p->tokens == s.tokens,
                          "plan token count mismatch at layer ", l);
        }
    }

    // The Schedule IR carries the per-head mask layouts, nnz and MAC
    // counts this executor runs from. Building it is the one place
    // the masks are scanned; the serving path shares the PlanCache's
    // schedule instead of rebuilding.
    if (sched == nullptr) {
        ownSchedule_ = std::make_unique<core::schedule::ModelSchedule>(
            core::schedule::ScheduleBuilder().build(
                *plan_, /*end_to_end=*/false));
        sched = ownSchedule_.get();
    }
    schedule_ = sched;
    VITCOD_ASSERT(schedule_->layers.size() == layers,
                  "schedule does not match the plan's layer count");
    for (size_t l = 0; l < layers; ++l) {
        const core::schedule::LayerSchedule &ls = schedule_->layers[l];
        VITCOD_ASSERT(ls.heads.size() == headPlans_[l].size() &&
                          ls.shape.tokens ==
                              m.stageForLayer(l).tokens,
                      "schedule does not match layer ", l);
        for (const core::schedule::HeadSchedule &hs : ls.heads)
            VITCOD_ASSERT(hs.layout.rowPtr.size() == hs.tokens + 1,
                          "schedule head layout malformed at layer ",
                          l);
    }

    forwardMacs_ = static_cast<MacOps>(m.stages.front().tokens) *
                   cfg_.inDim * m.stages.front().embedDim;
    forwardMacs_ += schedule_->execMacs();
    for (size_t s = 0; s + 1 < m.stages.size(); ++s)
        forwardMacs_ += static_cast<MacOps>(m.stages[s + 1].tokens) *
                        m.stages[s].embedDim *
                        m.stages[s + 1].embedDim;
    forwardMacs_ += static_cast<MacOps>(m.stages.back().embedDim) *
                    cfg_.numClasses;

    arena_.reserveFor(m, cfg_.inDim, cfg_.numClasses);
}

void
ModelExecutor::layerNormInto(const linalg::Matrix &x,
                             const std::vector<float> &gamma,
                             const std::vector<float> &beta,
                             linalg::Matrix &out) const
{
    // One shared definition with ReferenceBlock, so the
    // differential test compares attention/MLP numerics rather
    // than two LayerNorm copies.
    linalg::layerNormRowsInto(x, gamma, beta, out);
}

void
ModelExecutor::runLayer(size_t layer, LayerTrace *lt)
{
    const model::StageConfig &s = plan_->model.stageForLayer(layer);
    const BlockWeights &w = weights_.blocks[layer];
    const size_t n = s.tokens;
    const size_t d = s.embedDim;
    const size_t dk = s.headDim;
    const size_t hd = s.heads * dk;
    const auto scale = static_cast<float>(
        1.0 / std::sqrt(static_cast<double>(dk)));

    linalg::Matrix &x = arena_.residual();
    VITCOD_ASSERT(x.rows() == n && x.cols() == d,
                  "residual shape mismatch at layer ", layer);

    VITCOD_TRACE_SPAN("layer", "model_exec", "layer", double(layer),
                      "tokens", double(n));

    // --- attention: LN -> QKV -> per-head sparse attention -------
    // Slots consumed by *Into callees are acquired shape-free: the
    // callee reshapes (and zeroes) them itself, so pre-shaping here
    // would just clear the buffer twice.
    linalg::Matrix &norm = arena_.at(Slot::kNorm);
    layerNormInto(x, w.ln1Gamma, w.ln1Beta, norm);

    {
        PhaseTimer phase("qkv", lt ? &lt->qkvSeconds : nullptr,
                         "layer", double(layer));
        linalg::Matrix &q = arena_.at(Slot::kQ);
        linalg::Matrix &k = arena_.at(Slot::kK);
        linalg::Matrix &v = arena_.at(Slot::kV);
        engine_->gemmInto(norm, w.wq, q);
        engine_->gemmInto(norm, w.wk, k);
        engine_->gemmInto(norm, w.wv, v);
    }
    const linalg::Matrix &q = arena_.at(Slot::kQ);
    const linalg::Matrix &k = arena_.at(Slot::kK);
    const linalg::Matrix &v = arena_.at(Slot::kV);

    // Overwrite-acquired: every element of these is written by the
    // permute loops below (perm is a bijection over rows, heads
    // cover all columns), so the zeroing pass is skipped.
    linalg::Matrix &concat = arena_.atOverwrite(Slot::kConcat, n, hd);
    {
        PhaseTimer phase("attn", lt ? &lt->attnSeconds : nullptr,
                         "layer", double(layer), "heads",
                         double(s.heads));
        const core::schedule::LayerSchedule &lsched =
            schedule_->layers[layer];
        for (size_t head = 0; head < s.heads; ++head) {
            const SparseAttentionPlan &hp = *headPlans_[layer][head];
            const core::schedule::HeadSchedule &hsched =
                lsched.heads[head];
            // Slice this head's columns and permute rows into the
            // plan's token order in one pass, exactly as the
            // accelerator schedules it.
            linalg::Matrix &hq =
                arena_.atOverwrite(Slot::kHeadQ, n, dk);
            linalg::Matrix &hk =
                arena_.atOverwrite(Slot::kHeadK, n, dk);
            linalg::Matrix &hv =
                arena_.atOverwrite(Slot::kHeadV, n, dk);
            for (size_t i = 0; i < n; ++i) {
                const size_t src = hp.perm[i];
                for (size_t c = 0; c < dk; ++c) {
                    hq(i, c) = q(src, head * dk + c);
                    hk(i, c) = k(src, head * dk + c);
                    hv(i, c) = v(src, head * dk + c);
                }
            }
            HeadTrace *ht = lt && cfg_.collectHeadTraces
                                ? &lt->headTraces[head]
                                : nullptr;
            if (ht) {
                ht->head = head;
                ht->maskNnz = hsched.maskNnz();
                ht->numGlobalTokens = hp.numGlobalTokens;
            }
            linalg::Matrix &hout = arena_.at(Slot::kHeadOut);
            // Execute through the schedule's prebuilt layout: the
            // same CSC/CSR visit order the simulator priced, and no
            // engine structure-cache traffic on the request path.
            const linalg::engine::MaskLayoutView layout{
                hp.mask.rows(),        hp.mask.cols(),
                &hsched.layout.rowPtr, &hsched.layout.colIdx,
                &hsched.layout.colPtr, &hsched.layout.rowIdx,
                hsched.layout.useCsc};
            {
                PhaseTimer head_phase(
                    "head", ht ? &ht->seconds : nullptr, "layer",
                    double(layer), "head", double(head));
                engine_->sparseAttentionInto(hq, hk, hv, hp.mask,
                                             layout, scale, hout);
            }
            // Un-permute: permuted row i is original token perm[i].
            for (size_t i = 0; i < n; ++i)
                for (size_t c = 0; c < dk; ++c)
                    concat(hp.perm[i], head * dk + c) = hout(i, c);
        }
    }

    // --- output projection + residual ----------------------------
    {
        PhaseTimer phase("proj", lt ? &lt->projSeconds : nullptr,
                         "layer", double(layer));
        linalg::Matrix &proj = arena_.at(Slot::kProj);
        engine_->gemmInto(concat, w.wo, proj);
        for (size_t r = 0; r < n; ++r)
            for (size_t c = 0; c < d; ++c)
                x(r, c) += proj(r, c);
    }

    // --- MLP + residual ------------------------------------------
    {
        PhaseTimer phase("mlp", lt ? &lt->mlpSeconds : nullptr,
                         "layer", double(layer));
        layerNormInto(x, w.ln2Gamma, w.ln2Beta, norm);
        linalg::Matrix &hidden = arena_.at(Slot::kHidden);
        engine_->gemmInto(norm, w.fc1, hidden);
        linalg::geluInPlace(hidden);
        linalg::Matrix &mlp_out = arena_.at(Slot::kMlpOut);
        engine_->gemmInto(hidden, w.fc2, mlp_out);
        for (size_t r = 0; r < n; ++r)
            for (size_t c = 0; c < d; ++c)
                x(r, c) += mlp_out(r, c);
    }
}

void
ModelExecutor::stageTransition(size_t next_stage)
{
    // LeViT-style pyramid shrink, as a proxy: average-pool token
    // groups down to the next stage's count, then project the
    // embedding width. Group boundaries are floor(i * n_old /
    // n_new), handling non-integer ratios (49 -> 16).
    const model::VitModelConfig &m = plan_->model;
    const size_t n_new = m.stages[next_stage].tokens;
    linalg::Matrix &x = arena_.residual();
    const size_t n_old = x.rows();
    const size_t d_old = x.cols();

    linalg::Matrix &pooled = arena_.residualSpare();
    pooled.reshapeUninit(n_new, d_old); // every element written below
    for (size_t i = 0; i < n_new; ++i) {
        const size_t r0 = i * n_old / n_new;
        const size_t r1 = (i + 1) * n_old / n_new;
        const auto inv =
            static_cast<float>(1.0 / static_cast<double>(r1 - r0));
        for (size_t c = 0; c < d_old; ++c) {
            float sum = 0.0f;
            for (size_t r = r0; r < r1; ++r)
                sum += x(r, c);
            pooled(i, c) = sum * inv;
        }
    }
    arena_.flipResidual();
    engine_->gemmInto(arena_.residual(),
                      weights_.stageProj[next_stage - 1],
                      arena_.residualSpare());
    arena_.flipResidual();
}

void
ModelExecutor::classify()
{
    const size_t d = plan_->model.stages.back().embedDim;
    linalg::Matrix &x = arena_.residual();
    linalg::Matrix &norm = arena_.at(Slot::kNorm);
    layerNormInto(x, weights_.lnFinalGamma, weights_.lnFinalBeta,
                  norm);
    linalg::Matrix &pooled = arena_.atOverwrite(Slot::kPooled, 1, d);
    const auto inv =
        static_cast<float>(1.0 / static_cast<double>(norm.rows()));
    for (size_t c = 0; c < d; ++c) {
        double sum = 0.0;
        for (size_t r = 0; r < norm.rows(); ++r)
            sum += norm(r, c);
        pooled(0, c) = static_cast<float>(sum) * inv;
    }
    engine_->gemmInto(pooled, weights_.classifier,
                      arena_.at(Slot::kLogits));
}

void
ModelExecutor::forwardInto(const linalg::Matrix &patches,
                           ExecTrace *trace)
{
    const model::VitModelConfig &m = plan_->model;
    VITCOD_ASSERT(patches.rows() == m.stages.front().tokens &&
                      patches.cols() == cfg_.inDim,
                  "patch input shape mismatch");

    {
        PhaseTimer phase("patch_embed",
                         trace ? &trace->patchEmbedSeconds : nullptr,
                         "tokens", double(patches.rows()));
        engine_->gemmInto(patches, weights_.patchEmbed,
                          arena_.residual());
    }

    size_t stage = 0;
    size_t stage_first_layer = 0;
    for (size_t layer = 0; layer < m.totalLayers(); ++layer) {
        while (layer >= stage_first_layer + m.stages[stage].layers) {
            stage_first_layer += m.stages[stage].layers;
            ++stage;
            stageTransition(stage);
        }
        runLayer(layer, trace ? &trace->layers[layer] : nullptr);
    }

    {
        PhaseTimer phase("classifier",
                         trace ? &trace->classifierSeconds : nullptr,
                         "classes", double(cfg_.numClasses));
        classify();
    }
}

void
ModelExecutor::initTrace(ExecTrace *trace, size_t batch) const
{
    if (!trace)
        return;
    const model::VitModelConfig &m = plan_->model;
    *trace = ExecTrace{};
    trace->model = m.name;
    trace->batch = batch;
    trace->layers.resize(m.totalLayers());
    for (size_t l = 0; l < m.totalLayers(); ++l) {
        const model::StageConfig &s = m.stageForLayer(l);
        LayerTrace &lt = trace->layers[l];
        lt.layer = l;
        lt.tokens = s.tokens;
        lt.heads = s.heads;
        lt.headDim = s.headDim;
        lt.embedDim = s.embedDim;
        if (cfg_.collectHeadTraces)
            lt.headTraces.resize(s.heads);
    }
}

void
ModelExecutor::finalizeTrace(
    ExecTrace *trace, size_t batch,
    const linalg::engine::DispatchStats &before, double seconds) const
{
    if (!trace)
        return;
    trace->totalSeconds = seconds;
    trace->dispatch = engine_->stats() - before;
    trace->totalMacs = forwardMacs() * static_cast<MacOps>(batch);
    for (size_t l = 0; l < trace->layers.size(); ++l)
        trace->layers[l].macs =
            schedule_->layers[l].execMacs.total() *
            static_cast<MacOps>(batch);
}

linalg::Matrix
ModelExecutor::forward(const linalg::Matrix &patches,
                       ExecTrace *trace)
{
    initTrace(trace, 1);
    const linalg::engine::DispatchStats before = engine_->stats();
    VITCOD_TRACE_SPAN("forward", "model_exec", "batch", 1.0);
    const auto t0 = Clock::now();
    forwardInto(patches, trace);
    finalizeTrace(trace, 1, before, secondsSince(t0));
    return arena_.at(Slot::kLogits);
}

std::vector<linalg::Matrix>
ModelExecutor::forwardBatch(const std::vector<linalg::Matrix> &inputs,
                            ExecTrace *trace)
{
    VITCOD_ASSERT(!inputs.empty(), "empty batch");
    initTrace(trace, inputs.size());
    const linalg::engine::DispatchStats before = engine_->stats();
    VITCOD_TRACE_SPAN("forward", "model_exec", "batch",
                      double(inputs.size()));
    const auto t0 = Clock::now();

    std::vector<linalg::Matrix> logits;
    logits.reserve(inputs.size());
    for (const linalg::Matrix &patches : inputs) {
        forwardInto(patches, trace);
        logits.push_back(arena_.at(Slot::kLogits));
    }

    finalizeTrace(trace, inputs.size(), before, secondsSince(t0));
    return logits;
}

MacOps
ModelExecutor::forwardMacs() const
{
    return forwardMacs_;
}

} // namespace vitcod::core::model_exec
