#include "core/schedule/schedule.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace vitcod::core::schedule {

// --------------------------------------------------------- schedule math

std::vector<size_t>
allocateEngineLines(const std::vector<double> &weights, size_t total)
{
    const size_t k = weights.size();
    std::vector<size_t> lines(k, 0);
    double sum = 0.0;
    for (double w : weights)
        sum += w;
    if (sum <= 0.0 || total == 0)
        return lines;

    // Largest-remainder method with a floor of 1 for non-zero work.
    size_t given = 0;
    std::vector<double> frac(k, 0.0);
    for (size_t i = 0; i < k; ++i) {
        if (weights[i] <= 0.0)
            continue;
        const double exact =
            static_cast<double>(total) * weights[i] / sum;
        lines[i] = std::max<size_t>(1, static_cast<size_t>(exact));
        frac[i] = exact - std::floor(exact);
        given += lines[i];
    }
    // Trim if floors overshot (more busy heads than lines handled by
    // caller via grouping; here we only trim down to total).
    while (given > total) {
        size_t victim = k;
        for (size_t i = 0; i < k; ++i)
            if (lines[i] > 1 && (victim == k || lines[i] > lines[victim]))
                victim = i;
        if (victim == k)
            break; // all at 1 line; caller must group
        --lines[victim];
        --given;
    }
    // Distribute leftovers by largest fractional part.
    while (given < total) {
        size_t best = k;
        for (size_t i = 0; i < k; ++i)
            if (weights[i] > 0.0 && (best == k || frac[i] > frac[best]))
                best = i;
        if (best == k)
            break;
        ++lines[best];
        frac[best] = -1.0;
        ++given;
    }
    return lines;
}

Cycles
sparserHeadCycles(const sparse::Csc &csc, size_t head_dim,
                  size_t lines, size_t macs_per_line,
                  Cycles col_overhead)
{
    VITCOD_ASSERT(lines > 0 && macs_per_line > 0,
                  "sparser engine needs lines");
    Cycles cy = 0;
    for (size_t c = 0; c < csc.cols(); ++c) {
        const size_t nnz_c = csc.colNnz(c);
        if (nnz_c == 0)
            continue;
        const MacOps macs = static_cast<MacOps>(nnz_c) * head_dim;
        cy += ceilDiv(macs, lines * macs_per_line) + col_overhead;
    }
    return cy;
}

Cycles
sparserEngineCycles(
    const std::vector<const core::SparseAttentionPlan *> &heads,
    size_t head_dim, size_t lines, size_t macs_per_line,
    Cycles col_overhead)
{
    if (lines == 0)
        return 0;
    std::vector<double> weights;
    std::vector<const core::SparseAttentionPlan *> active;
    for (const auto *p : heads) {
        if (p->sparserNnz > 0) {
            weights.push_back(static_cast<double>(p->sparserNnz));
            active.push_back(p);
        }
    }
    if (active.empty())
        return 0;

    if (lines >= active.size()) {
        const auto alloc = allocateEngineLines(weights, lines);
        Cycles worst = 0;
        for (size_t i = 0; i < active.size(); ++i) {
            worst = std::max(
                worst,
                sparserHeadCycles(active[i]->sparserCsc, head_dim,
                                  std::max<size_t>(1, alloc[i]),
                                  macs_per_line, col_overhead));
        }
        return worst;
    }
    // More busy heads than lines: LPT-pack heads onto lines.
    std::vector<Cycles> per_head;
    per_head.reserve(active.size());
    for (const auto *p : active)
        per_head.push_back(sparserHeadCycles(p->sparserCsc, head_dim,
                                             1, macs_per_line,
                                             col_overhead));
    std::sort(per_head.rbegin(), per_head.rend());
    std::vector<Cycles> bins(lines, 0);
    for (Cycles c : per_head)
        *std::min_element(bins.begin(), bins.end()) += c;
    return *std::max_element(bins.begin(), bins.end());
}

uint64_t
lruQMisses(const sparse::Csc &csc, size_t window_rows)
{
    if (window_rows == 0)
        return csc.nnz();
    // Exact LRU over the column-major nonzero stream. Token counts
    // are a few hundred, so a linear-scan LRU list is fine.
    std::vector<uint32_t> lru; // front = most recent
    lru.reserve(window_rows);
    uint64_t misses = 0;
    for (size_t c = 0; c < csc.cols(); ++c) {
        for (uint32_t i = csc.colPtr()[c]; i < csc.colPtr()[c + 1];
             ++i) {
            const uint32_t row = csc.rowIdx()[i];
            auto it = std::find(lru.begin(), lru.end(), row);
            if (it != lru.end()) {
                lru.erase(it);
            } else {
                ++misses;
                if (lru.size() >= window_rows)
                    lru.pop_back();
            }
            lru.insert(lru.begin(), row);
        }
    }
    return misses;
}

// ------------------------------------------------------------- totals

MacOps
ModelSchedule::attentionMacs() const
{
    MacOps m = 0;
    for (const LayerSchedule &l : layers)
        m += l.attentionMacs();
    return m;
}

MacOps
ModelSchedule::execMacs() const
{
    MacOps m = 0;
    for (const LayerSchedule &l : layers)
        m += l.execMacs.total();
    return m;
}

model::Breakdown
ModelSchedule::breakdown() const
{
    model::Breakdown b{};
    for (const LayerSchedule &l : layers) {
        const model::Breakdown lb = blockBreakdown(
            l.shape, static_cast<double>(l.softmaxElems),
            params.elemBytes);
        for (size_t g = 0; g < lb.size(); ++g)
            b[g] += lb[g];
    }
    groupOf(b, model::OpGroup::Other) +=
        {stemFlops,
         stemFlops / 4.0 * static_cast<double>(params.elemBytes)};
    return b;
}

// ------------------------------------------------------- serialization

namespace {

constexpr const char *kMagic = "vitcod-schedule";
constexpr const char *kVersion = "v2";

void
expectWord(std::istream &is, const char *expected)
{
    std::string word;
    if (!(is >> word) || word != expected)
        fatal("schedule parse error: expected '", expected,
              "', got '", word, "'");
}

template <typename T>
T
readValue(std::istream &is, const char *label)
{
    expectWord(is, label);
    T v{};
    if (!(is >> v))
        fatal("schedule parse error: bad value for '", label, "'");
    return v;
}

void
writeVec(std::ostream &os, const char *label,
         const std::vector<uint32_t> &v)
{
    os << label << ' ' << v.size();
    for (uint32_t x : v)
        os << ' ' << x;
    os << '\n';
}

std::vector<uint32_t>
readVec(std::istream &is, const char *label)
{
    const auto n = readValue<size_t>(is, label);
    std::vector<uint32_t> v(n);
    for (size_t i = 0; i < n; ++i)
        if (!(is >> v[i]))
            fatal("schedule parse error: short '", label, "' array");
    return v;
}

} // namespace

void
ModelSchedule::write(std::ostream &os) const
{
    // Doubles round-trip exactly at 17 significant digits.
    const auto old_precision = os.precision(17);
    os << kMagic << ' ' << kVersion << '\n';
    os << "model " << modelName << '\n';
    os << "end_to_end " << endToEnd << '\n';
    os << "stem_macs " << stemMacs << '\n';
    os << "stem_flops " << stemFlops << '\n';
    const HardwareParams &p = params;
    os << "hw mac_lines " << p.macLines << " macs_per_line "
       << p.macsPerLine << " elem_bytes " << p.elemBytes
       << " index_bytes " << p.indexBytes << " qkv_buf "
       << p.qkvBufBytes << " s_buf " << p.sBufferBytes << " ae_lines "
       << p.aeLines << " ae_decode_rate " << p.aeDecodeRate
       << " softmax_lanes " << p.softmaxLanesPerEngine
       << " col_overhead " << p.colOverheadCycles << " reconfig "
       << p.reconfigCycles << " dense_eff " << p.denseEff
       << " gemm_eff " << p.gemmEff << " two_pronged " << p.twoPronged
       << " ae_engines " << p.enableAeEngines << " dyn_mask "
       << p.dynamicMaskPrediction << " pred_cost "
       << p.predictionCostFactor << " sparser_frac "
       << p.sparserLineFrac << '\n';
    os << "layers " << layers.size() << '\n';
    for (const LayerSchedule &l : layers) {
        os << "layer " << l.layer << " tokens " << l.shape.tokens
           << " heads " << l.shape.heads << " head_dim "
           << l.shape.headDim << " embed_dim " << l.shape.embedDim
           << " mlp_ratio " << l.shape.mlpRatio << '\n';
        os << "ae " << l.aeOn << " ratio " << l.aeRatio
           << " compressed " << l.compressedHeads << " decode_macs "
           << l.decodeMacs << '\n';
        os << "split sddmm_d " << l.denserSddmmMacs << " sddmm_s "
           << l.sparserSddmmMacs << " spmm_d " << l.denserSpmmMacs
           << " spmm_s " << l.sparserSpmmMacs << " softmax_elems "
           << l.softmaxElems << '\n';
        os << "lines sddmm_d " << l.sddmmDenserLines << " sddmm_s "
           << l.sddmmSparserLines << " spmm_d " << l.spmmDenserLines
           << " spmm_s " << l.spmmSparserLines << " sddmm_s_cycles "
           << l.sddmmSparserCycles << " spmm_s_cycles "
           << l.spmmSparserCycles << '\n';
        os << "mem window " << l.windowRows << " idx " << l.idxBytes
           << " qk " << l.qkLoadBytes << " gathers " << l.gatherMisses
           << " gather_row " << l.gatherRowBytes << " s " << l.sBytes
           << " spill " << l.spillBytes << " v " << l.vLoadBytes
           << " out " << l.outStoreBytes << '\n';
        os << "predict macs " << l.predictMacs << " overhead "
           << l.predictOverhead << '\n';
        os << "exec qkv " << l.execMacs.qkv << " attn "
           << l.execMacs.attn << " out_proj " << l.execMacs.outProj
           << " mlp " << l.execMacs.mlp << '\n';
        const DenseBlockSchedule &d = l.dense;
        os << "dense proj " << d.projMacs << " encode "
           << d.encodeMacs << " out_proj " << d.outProjMacs << " mlp "
           << d.mlpMacs << " proj_load " << d.projLoadBytes
           << " proj_store " << d.projStoreBytes << " op_bytes "
           << d.outProjBytes << " mlp_bytes " << d.mlpBytes << " ln "
           << d.lnElems << '\n';
        os << "head_scheds " << l.heads.size() << '\n';
        for (const HeadSchedule &h : l.heads) {
            os << "head " << h.head << " tokens " << h.tokens
               << " head_dim " << h.headDim << " global "
               << h.numGlobalTokens << " denser_nnz " << h.denserNnz
               << " sparser_nnz " << h.sparserNnz << " denser_macs "
               << h.denserMacs << " sparser_macs " << h.sparserMacs
               << " idx_bytes " << h.idxBytes << " gathers "
               << h.qGatherMisses << " use_csc " << h.layout.useCsc
               << '\n';
            writeVec(os, "row_ptr", h.layout.rowPtr);
            writeVec(os, "col_idx", h.layout.colIdx);
            if (h.layout.useCsc) {
                writeVec(os, "col_ptr", h.layout.colPtr);
                writeVec(os, "row_idx", h.layout.rowIdx);
            }
        }
    }
    os.precision(old_precision);
}

void
ModelSchedule::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    write(os);
    if (!os)
        fatal("write to '", path, "' failed");
}

ModelSchedule
ModelSchedule::read(std::istream &is)
{
    expectWord(is, kMagic);
    expectWord(is, kVersion);

    ModelSchedule s;
    s.modelName = readValue<std::string>(is, "model");
    s.endToEnd = readValue<bool>(is, "end_to_end");
    s.stemMacs = readValue<MacOps>(is, "stem_macs");
    s.stemFlops = readValue<double>(is, "stem_flops");
    expectWord(is, "hw");
    HardwareParams &p = s.params;
    p.macLines = readValue<size_t>(is, "mac_lines");
    p.macsPerLine = readValue<size_t>(is, "macs_per_line");
    p.elemBytes = readValue<size_t>(is, "elem_bytes");
    p.indexBytes = readValue<size_t>(is, "index_bytes");
    p.qkvBufBytes = readValue<Bytes>(is, "qkv_buf");
    p.sBufferBytes = readValue<Bytes>(is, "s_buf");
    p.aeLines = readValue<size_t>(is, "ae_lines");
    p.aeDecodeRate = readValue<double>(is, "ae_decode_rate");
    p.softmaxLanesPerEngine = readValue<size_t>(is, "softmax_lanes");
    p.colOverheadCycles = readValue<Cycles>(is, "col_overhead");
    p.reconfigCycles = readValue<Cycles>(is, "reconfig");
    p.denseEff = readValue<double>(is, "dense_eff");
    p.gemmEff = readValue<double>(is, "gemm_eff");
    p.twoPronged = readValue<bool>(is, "two_pronged");
    p.enableAeEngines = readValue<bool>(is, "ae_engines");
    p.dynamicMaskPrediction = readValue<bool>(is, "dyn_mask");
    p.predictionCostFactor = readValue<double>(is, "pred_cost");
    p.sparserLineFrac = readValue<double>(is, "sparser_frac");

    const auto n_layers = readValue<size_t>(is, "layers");
    s.layers.reserve(n_layers);
    for (size_t i = 0; i < n_layers; ++i) {
        LayerSchedule l;
        l.layer = readValue<size_t>(is, "layer");
        l.shape.tokens = readValue<size_t>(is, "tokens");
        l.shape.heads = readValue<size_t>(is, "heads");
        l.shape.headDim = readValue<size_t>(is, "head_dim");
        l.shape.embedDim = readValue<size_t>(is, "embed_dim");
        l.shape.mlpRatio = readValue<size_t>(is, "mlp_ratio");
        l.aeOn = readValue<bool>(is, "ae");
        l.aeRatio = readValue<double>(is, "ratio");
        l.compressedHeads = readValue<size_t>(is, "compressed");
        l.decodeMacs = readValue<MacOps>(is, "decode_macs");
        expectWord(is, "split");
        l.denserSddmmMacs = readValue<MacOps>(is, "sddmm_d");
        l.sparserSddmmMacs = readValue<MacOps>(is, "sddmm_s");
        l.denserSpmmMacs = readValue<MacOps>(is, "spmm_d");
        l.sparserSpmmMacs = readValue<MacOps>(is, "spmm_s");
        l.softmaxElems = readValue<uint64_t>(is, "softmax_elems");
        expectWord(is, "lines");
        l.sddmmDenserLines = readValue<size_t>(is, "sddmm_d");
        l.sddmmSparserLines = readValue<size_t>(is, "sddmm_s");
        l.spmmDenserLines = readValue<size_t>(is, "spmm_d");
        l.spmmSparserLines = readValue<size_t>(is, "spmm_s");
        l.sddmmSparserCycles = readValue<Cycles>(is, "sddmm_s_cycles");
        l.spmmSparserCycles = readValue<Cycles>(is, "spmm_s_cycles");
        expectWord(is, "mem");
        l.windowRows = readValue<size_t>(is, "window");
        l.idxBytes = readValue<Bytes>(is, "idx");
        l.qkLoadBytes = readValue<Bytes>(is, "qk");
        l.gatherMisses = readValue<uint64_t>(is, "gathers");
        l.gatherRowBytes = readValue<Bytes>(is, "gather_row");
        l.sBytes = readValue<Bytes>(is, "s");
        l.spillBytes = readValue<Bytes>(is, "spill");
        l.vLoadBytes = readValue<Bytes>(is, "v");
        l.outStoreBytes = readValue<Bytes>(is, "out");
        expectWord(is, "predict");
        l.predictMacs = readValue<MacOps>(is, "macs");
        l.predictOverhead = readValue<Cycles>(is, "overhead");
        expectWord(is, "exec");
        l.execMacs.qkv = readValue<MacOps>(is, "qkv");
        l.execMacs.attn = readValue<MacOps>(is, "attn");
        l.execMacs.outProj = readValue<MacOps>(is, "out_proj");
        l.execMacs.mlp = readValue<MacOps>(is, "mlp");
        expectWord(is, "dense");
        DenseBlockSchedule &d = l.dense;
        d.projMacs = readValue<MacOps>(is, "proj");
        d.encodeMacs = readValue<MacOps>(is, "encode");
        d.outProjMacs = readValue<MacOps>(is, "out_proj");
        d.mlpMacs = readValue<MacOps>(is, "mlp");
        d.projLoadBytes = readValue<Bytes>(is, "proj_load");
        d.projStoreBytes = readValue<Bytes>(is, "proj_store");
        d.outProjBytes = readValue<Bytes>(is, "op_bytes");
        d.mlpBytes = readValue<Bytes>(is, "mlp_bytes");
        d.lnElems = readValue<uint64_t>(is, "ln");
        const auto n_heads = readValue<size_t>(is, "head_scheds");
        l.heads.reserve(n_heads);
        for (size_t h = 0; h < n_heads; ++h) {
            HeadSchedule hs;
            hs.head = readValue<size_t>(is, "head");
            hs.tokens = readValue<size_t>(is, "tokens");
            hs.headDim = readValue<size_t>(is, "head_dim");
            hs.numGlobalTokens = readValue<size_t>(is, "global");
            hs.denserNnz = readValue<size_t>(is, "denser_nnz");
            hs.sparserNnz = readValue<size_t>(is, "sparser_nnz");
            hs.denserMacs = readValue<MacOps>(is, "denser_macs");
            hs.sparserMacs = readValue<MacOps>(is, "sparser_macs");
            hs.idxBytes = readValue<Bytes>(is, "idx_bytes");
            hs.qGatherMisses = readValue<uint64_t>(is, "gathers");
            hs.layout.useCsc = readValue<bool>(is, "use_csc");
            hs.layout.rowPtr = readVec(is, "row_ptr");
            hs.layout.colIdx = readVec(is, "col_idx");
            if (hs.layout.useCsc) {
                hs.layout.colPtr = readVec(is, "col_ptr");
                hs.layout.rowIdx = readVec(is, "row_idx");
            }
            l.heads.push_back(std::move(hs));
        }
        s.layers.push_back(std::move(l));
    }
    return s;
}

ModelSchedule
ModelSchedule::readFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '", path, "' for reading");
    return read(is);
}

// ----------------------------------------------------------- equality

namespace {

bool
fail(std::string *why, const std::string &msg)
{
    if (why)
        *why = msg;
    return false;
}

template <typename T>
bool
check(std::string *why, const std::string &what, const T &a,
      const T &b)
{
    if (a == b)
        return true;
    std::ostringstream os;
    os << what << ": " << a << " vs " << b;
    return fail(why, os.str());
}

} // namespace

bool
structurallyEqual(const ModelSchedule &a, const ModelSchedule &b,
                  std::string *why)
{
    if (!check(why, "model", a.modelName, b.modelName) ||
        !check(why, "end_to_end", a.endToEnd, b.endToEnd) ||
        !check(why, "stem_macs", a.stemMacs, b.stemMacs) ||
        !check(why, "stem_flops", a.stemFlops, b.stemFlops) ||
        !check(why, "layer count", a.layers.size(), b.layers.size()))
        return false;
    if (!(a.params == b.params))
        return fail(why, "hardware params differ");
    for (size_t i = 0; i < a.layers.size(); ++i) {
        const LayerSchedule &la = a.layers[i];
        const LayerSchedule &lb = b.layers[i];
        const std::string tag = "layer " + std::to_string(i) + " ";
        if (!check(why, tag + "index", la.layer, lb.layer) ||
            !check(why, tag + "tokens", la.shape.tokens,
                   lb.shape.tokens) ||
            !check(why, tag + "heads", la.shape.heads,
                   lb.shape.heads) ||
            !check(why, tag + "head_dim", la.shape.headDim,
                   lb.shape.headDim) ||
            !check(why, tag + "embed_dim", la.shape.embedDim,
                   lb.shape.embedDim) ||
            !check(why, tag + "mlp_ratio", la.shape.mlpRatio,
                   lb.shape.mlpRatio) ||
            !check(why, tag + "ae", la.aeOn, lb.aeOn) ||
            !check(why, tag + "ae_ratio", la.aeRatio, lb.aeRatio) ||
            !check(why, tag + "compressed", la.compressedHeads,
                   lb.compressedHeads) ||
            !check(why, tag + "decode_macs", la.decodeMacs,
                   lb.decodeMacs) ||
            !check(why, tag + "sddmm_d", la.denserSddmmMacs,
                   lb.denserSddmmMacs) ||
            !check(why, tag + "sddmm_s", la.sparserSddmmMacs,
                   lb.sparserSddmmMacs) ||
            !check(why, tag + "spmm_d", la.denserSpmmMacs,
                   lb.denserSpmmMacs) ||
            !check(why, tag + "spmm_s", la.sparserSpmmMacs,
                   lb.sparserSpmmMacs) ||
            !check(why, tag + "softmax_elems", la.softmaxElems,
                   lb.softmaxElems) ||
            !check(why, tag + "sddmm lines d", la.sddmmDenserLines,
                   lb.sddmmDenserLines) ||
            !check(why, tag + "sddmm lines s", la.sddmmSparserLines,
                   lb.sddmmSparserLines) ||
            !check(why, tag + "spmm lines d", la.spmmDenserLines,
                   lb.spmmDenserLines) ||
            !check(why, tag + "spmm lines s", la.spmmSparserLines,
                   lb.spmmSparserLines) ||
            !check(why, tag + "sddmm_s_cycles", la.sddmmSparserCycles,
                   lb.sddmmSparserCycles) ||
            !check(why, tag + "spmm_s_cycles", la.spmmSparserCycles,
                   lb.spmmSparserCycles) ||
            !check(why, tag + "window", la.windowRows,
                   lb.windowRows) ||
            !check(why, tag + "idx", la.idxBytes, lb.idxBytes) ||
            !check(why, tag + "qk", la.qkLoadBytes, lb.qkLoadBytes) ||
            !check(why, tag + "gathers", la.gatherMisses,
                   lb.gatherMisses) ||
            !check(why, tag + "gather_row", la.gatherRowBytes,
                   lb.gatherRowBytes) ||
            !check(why, tag + "s_bytes", la.sBytes, lb.sBytes) ||
            !check(why, tag + "spill", la.spillBytes,
                   lb.spillBytes) ||
            !check(why, tag + "v", la.vLoadBytes, lb.vLoadBytes) ||
            !check(why, tag + "out", la.outStoreBytes,
                   lb.outStoreBytes) ||
            !check(why, tag + "predict_macs", la.predictMacs,
                   lb.predictMacs) ||
            !check(why, tag + "predict_overhead", la.predictOverhead,
                   lb.predictOverhead) ||
            !check(why, tag + "exec qkv", la.execMacs.qkv,
                   lb.execMacs.qkv) ||
            !check(why, tag + "exec attn", la.execMacs.attn,
                   lb.execMacs.attn) ||
            !check(why, tag + "exec out_proj", la.execMacs.outProj,
                   lb.execMacs.outProj) ||
            !check(why, tag + "exec mlp", la.execMacs.mlp,
                   lb.execMacs.mlp) ||
            !check(why, tag + "head count", la.heads.size(),
                   lb.heads.size()))
            return false;
        if (!(la.dense == lb.dense))
            return fail(why, tag + "dense block differs");
        for (size_t h = 0; h < la.heads.size(); ++h) {
            if (!(la.heads[h] == lb.heads[h]))
                return fail(why, tag + "head " + std::to_string(h) +
                                     " differs");
        }
    }
    return true;
}

} // namespace vitcod::core::schedule
