/**
 * @file
 * The network parser of the paper's Fig. 14 as a single reusable
 * pass: ScheduleBuilder walks a built ModelPlan once and derives
 * every statically-known scheduling decision — workload split, MAC
 * line allocation, CSC walk cost, Q-residency window and LRU gather
 * count, SRAM spill plan, per-phase DRAM streams, runtime mask
 * layouts and exact MAC counts — into a ModelSchedule. The
 * instruction compiler, the analytic simulator and the ModelExecutor
 * all consume the result instead of re-deriving it.
 */

#ifndef VITCOD_CORE_SCHEDULE_BUILDER_H
#define VITCOD_CORE_SCHEDULE_BUILDER_H

#include "core/pipeline.h"
#include "core/schedule/schedule.h"
#include "linalg/engine/engine.h"

namespace vitcod::core::schedule {

/** Knobs of one builder instance. */
struct BuilderConfig
{
    HardwareParams hw;

    /**
     * Mask sparsity at or above which the runtime layout carries the
     * K-stationary CSC traversal in addition to CSR. Defaults to
     * the engine's own dispatch threshold (the one source of the
     * constant), so the executor's CSC/CSR split matches what it
     * did when the engine built structures itself.
     */
    double cscSparsityThreshold =
        linalg::engine::EngineConfig{}.cscSparsityThreshold;

    /**
     * Materialize the runtime CSR/CSC head layouts (an O(mask bits)
     * scan per head). Required for schedules a ModelExecutor will
     * run from; pricing-only consumers (the analytic simulator, the
     * instruction compiler) skip it.
     */
    bool buildLayouts = true;
};

/** One-pass plan -> schedule compiler front end. */
class ScheduleBuilder
{
  public:
    explicit ScheduleBuilder(BuilderConfig cfg = {});

    const BuilderConfig &config() const { return cfg_; }

    /**
     * Build the complete schedule for @p plan. Dense-block and stem
     * phases are populated only when @p end_to_end; the attention
     * and runtime-execution parts are always present. Pure function
     * of (plan, cfg). O(total mask bits) — the only full mask scan
     * in the system.
     */
    ModelSchedule build(const core::ModelPlan &plan,
                        bool end_to_end) const;

    /** One layer's attention schedule (no dense block). */
    LayerSchedule buildAttentionLayer(const core::ModelPlan &plan,
                                      size_t layer) const;

  private:
    void fillDenseBlock(LayerSchedule &ls,
                        const core::ModelPlan &plan) const;

    BuilderConfig cfg_;
};

} // namespace vitcod::core::schedule

#endif // VITCOD_CORE_SCHEDULE_BUILDER_H
