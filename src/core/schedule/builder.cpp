#include "core/schedule/builder.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.h"
#include "linalg/engine/kernels_opt.h"
#include "model/flops.h"

namespace vitcod::core::schedule {

ScheduleBuilder::ScheduleBuilder(BuilderConfig cfg) : cfg_(std::move(cfg))
{
    VITCOD_ASSERT(cfg_.hw.macLines > 0 && cfg_.hw.macsPerLine > 0,
                  "schedule needs a MAC array");
}

LayerSchedule
ScheduleBuilder::buildAttentionLayer(const core::ModelPlan &plan,
                                     size_t layer) const
{
    const HardwareParams &hw = cfg_.hw;
    const auto shapes = model::attentionShapes(plan.model);
    VITCOD_ASSERT(layer < shapes.size(), "layer out of range");
    const auto &shape = shapes[layer];
    const size_t n = shape.tokens;
    const size_t dk = shape.headDim;
    const size_t h = shape.heads;
    const auto eb = static_cast<double>(hw.elemBytes);

    // Pair plans by their explicit (layer, head) ids — never by
    // position in plan.heads, whose ordering is a producer detail.
    std::vector<const core::SparseAttentionPlan *> hp(h, nullptr);
    for (const auto &head : plan.heads) {
        if (head.layer != layer)
            continue;
        VITCOD_ASSERT(head.head < h && hp[head.head] == nullptr,
                      "bad or duplicate head plan at layer ", layer);
        hp[head.head] = &head.plan;
    }
    for (size_t head = 0; head < h; ++head)
        VITCOD_ASSERT(hp[head] != nullptr,
                      "plan missing heads for layer ", layer);

    LayerSchedule ls;
    ls.layer = layer;
    ls.shape = {n, h, dk, shape.embedDim,
                plan.model.stageForLayer(layer).mlpRatio};

    // ---- AE compression state.
    ls.aeOn = hw.enableAeEngines && !plan.ae.empty();
    if (ls.aeOn) {
        VITCOD_ASSERT(layer < plan.ae.size(), "AE summary missing");
        ls.aeRatio = plan.ae[layer].ratio();
        ls.compressedHeads = plan.ae[layer].compressed;
        // Every token's Q and K row is recovered from the compressed
        // representation once per layer.
        ls.decodeMacs = static_cast<MacOps>(2) * n * dk * h *
                        ls.compressedHeads;
    }

    // ---- Workload split (the parser step of Fig. 14) + runtime
    // layouts, one head at a time; the mask is scanned exactly here
    // and nowhere else.
    uint64_t s_elems_denser = 0, s_elems_sparser = 0;
    size_t mask_nnz = 0;
    ls.heads.reserve(h);
    for (size_t head = 0; head < h; ++head) {
        const core::SparseAttentionPlan *p = hp[head];
        HeadSchedule hs;
        hs.head = head;
        hs.tokens = p->tokens;
        hs.headDim = dk;
        hs.numGlobalTokens = p->numGlobalTokens;
        hs.denserNnz = p->denserNnz;
        hs.sparserNnz = p->sparserNnz;
        hs.denserMacs =
            static_cast<MacOps>(n) * p->numGlobalTokens * dk;
        hs.sparserMacs = static_cast<MacOps>(p->sparserNnz) * dk;
        if (p->numGlobalTokens < p->tokens)
            hs.idxBytes = p->sparserCsc.indexBytes(hw.indexBytes);

        if (cfg_.buildLayouts) {
            linalg::engine::maskToCsrStructure(
                p->mask, hs.layout.rowPtr, hs.layout.colIdx);
            const auto nnz =
                static_cast<double>(hs.layout.colIdx.size());
            hs.layout.useCsc =
                nnz < (1.0 - cfg_.cscSparsityThreshold) *
                          static_cast<double>(p->mask.rows() *
                                              p->mask.cols());
            if (hs.layout.useCsc)
                linalg::engine::csrToCscStructure(
                    p->mask.rows(), p->mask.cols(),
                    hs.layout.rowPtr, hs.layout.colIdx,
                    hs.layout.colPtr, hs.layout.rowIdx);
            VITCOD_ASSERT(
                hs.layout.colIdx.size() == hs.maskNnz(),
                "denser/sparser split must partition the mask");
        }

        ls.denserSddmmMacs += hs.denserMacs;
        ls.sparserSddmmMacs += hs.sparserMacs;
        ls.denserSpmmMacs += hs.denserMacs;
        ls.sparserSpmmMacs += hs.sparserMacs;
        s_elems_denser += n * p->numGlobalTokens;
        s_elems_sparser += p->sparserNnz;
        ls.idxBytes += hs.idxBytes;
        mask_nnz += hs.maskNnz();
        ls.heads.push_back(std::move(hs));
    }
    ls.softmaxElems = s_elems_denser + s_elems_sparser;

    // ---- Dynamic MAC-line allocation (paper Sec. V-B1). The
    // proportional split is always recorded (it is what the
    // ConfigLines instructions carry); the monolithic ablation
    // ignores it at pricing time and runs both splits serially, so
    // its sparser cost is precomputed at the whole array width.
    const size_t lines = hw.macLines;
    const size_t mpl = hw.macsPerLine;
    {
        // A static sparser share (hw.sparserLineFrac, a DSE axis)
        // overrides the proportional split, except when only one
        // engine has work — then it takes the whole array, exactly
        // like the dynamic allocator.
        const auto split = [&](MacOps denser,
                               MacOps sparser) -> std::array<size_t, 2> {
            // lines >= 2: a static split needs one line per engine;
            // a single-line array falls back to the dynamic path.
            if (hw.sparserLineFrac > 0.0 && denser > 0 &&
                sparser > 0 && lines >= 2) {
                const auto s = std::clamp<size_t>(
                    static_cast<size_t>(std::lround(
                        hw.sparserLineFrac *
                        static_cast<double>(lines))),
                    1, lines - 1);
                return {lines - s, s};
            }
            const auto a = allocateEngineLines(
                {static_cast<double>(denser),
                 static_cast<double>(sparser)},
                lines);
            return {a[0], a[1]};
        };
        const auto sddmm =
            split(ls.denserSddmmMacs, ls.sparserSddmmMacs);
        ls.sddmmDenserLines = sddmm[0];
        ls.sddmmSparserLines = sddmm[1];
        const auto spmm = split(ls.denserSpmmMacs, ls.sparserSpmmMacs);
        ls.spmmDenserLines = spmm[0];
        ls.spmmSparserLines = spmm[1];
    }
    const size_t sddmm_width =
        hw.twoPronged ? ls.sddmmSparserLines : lines;
    const size_t spmm_width =
        hw.twoPronged ? ls.spmmSparserLines : lines;
    ls.sddmmSparserCycles = sparserEngineCycles(
        hp, dk, sddmm_width, mpl, hw.colOverheadCycles);
    ls.spmmSparserCycles = sparserEngineCycles(
        hp, dk, spmm_width, mpl, hw.colOverheadCycles);

    // ---- SDDMM input movement under the K-stationary dataflow
    // (paper Fig. 13): each K vector streams once; Q rows stream
    // once when the head's Q block fits on chip and re-stream K per
    // extra Q block otherwise. Heads without a denser stream to
    // snoop (pruning-only ablation) gather Q rows through an exact
    // LRU window instead.
    const double q_row_bytes = dk * eb * ls.aeRatio;
    ls.windowRows = std::max<size_t>(
        1, static_cast<size_t>(
               static_cast<double>(hw.qkvBufBytes) / 2.0 /
               (static_cast<double>(h) * q_row_bytes)));
    double k_bytes =
        static_cast<double>(n) * h * dk * eb * ls.aeRatio;
    double q_bytes = 0.0;
    for (HeadSchedule &hs : ls.heads) {
        const core::SparseAttentionPlan *p = hp[hs.head];
        if (p->numGlobalTokens > 0 || p->sparserNnz == 0) {
            q_bytes += static_cast<double>(n) * q_row_bytes;
            if (ls.windowRows < n) {
                const auto extra_passes = static_cast<double>(
                    ceilDiv(n, ls.windowRows) - 1);
                k_bytes += static_cast<double>(p->numGlobalTokens) *
                           dk * eb * ls.aeRatio * extra_passes;
            }
        } else {
            hs.qGatherMisses =
                lruQMisses(p->sparserCsc, ls.windowRows);
            ls.gatherMisses += hs.qGatherMisses;
            q_bytes += static_cast<double>(hs.qGatherMisses) *
                       q_row_bytes;
        }
    }
    ls.qkLoadBytes = static_cast<Bytes>(k_bytes + q_bytes);
    ls.gatherRowBytes =
        static_cast<Bytes>(std::max(1.0, q_row_bytes));

    // ---- SpMM streams: V in, V' out, S spills past the S buffer.
    const double s_bytes =
        static_cast<double>(ls.softmaxElems) * eb;
    const double spill = std::max(
        0.0, s_bytes - static_cast<double>(hw.sBufferBytes));
    const double v_bytes = static_cast<double>(n) * h * dk * eb;
    ls.sBytes = static_cast<Bytes>(s_bytes);
    ls.spillBytes = static_cast<Bytes>(spill);
    ls.vLoadBytes = static_cast<Bytes>(v_bytes + spill);
    ls.outStoreBytes = static_cast<Bytes>(v_bytes + spill);

    // ---- Optional on-the-fly mask prediction (NLP mode).
    if (hw.dynamicMaskPrediction) {
        ls.predictMacs = static_cast<MacOps>(
            static_cast<double>(n) * n * h * dk *
            hw.predictionCostFactor);
        ls.predictOverhead = static_cast<Cycles>(2 * n);
    }

    // ---- Exact runtime MACs of this layer.
    ls.execMacs = blockMacs(ls.shape, mask_nnz);
    return ls;
}

void
ScheduleBuilder::fillDenseBlock(LayerSchedule &ls,
                                const core::ModelPlan &plan) const
{
    const HardwareParams &hw = cfg_.hw;
    const double n = static_cast<double>(ls.shape.tokens);
    const double d = static_cast<double>(ls.shape.embedDim);
    const double hd = static_cast<double>(ls.shape.heads) *
                      static_cast<double>(ls.shape.headDim);
    const double mlp_hidden =
        d * static_cast<double>(ls.shape.mlpRatio);
    const auto eb = static_cast<double>(hw.elemBytes);
    const double c_heads =
        ls.aeOn ? static_cast<double>(ls.compressedHeads) : 0.0;

    DenseBlockSchedule &db = ls.dense;

    // Q/K/V projection (+ encoder overlapped): Q and K leave the
    // array AE-compressed, V at full width.
    db.projMacs = static_cast<MacOps>(n * d * 3.0 * hd);
    if (ls.aeOn)
        db.encodeMacs = static_cast<MacOps>(
            2.0 * n * static_cast<double>(ls.shape.headDim) *
            static_cast<double>(ls.shape.heads) * c_heads);
    db.projLoadBytes =
        static_cast<Bytes>(n * d * eb + 3.0 * d * hd * eb);
    db.projStoreBytes = static_cast<Bytes>(
        2.0 * n * hd * eb * ls.aeRatio + n * hd * eb);

    // Output projection.
    db.outProjMacs = static_cast<MacOps>(n * hd * d);
    db.outProjBytes =
        static_cast<Bytes>(hd * d * eb + n * hd * eb + n * d * eb);

    // MLP (two layers).
    db.mlpMacs = static_cast<MacOps>(2.0 * n * d * mlp_hidden);
    db.mlpBytes = static_cast<Bytes>(2.0 * d * mlp_hidden * eb +
                                     2.0 * n * d * eb);

    // LayerNorms: elementwise on the softmax/activation lanes.
    db.lnElems = static_cast<uint64_t>(2.0 * n * d);
    (void)plan;
}

ModelSchedule
ScheduleBuilder::build(const core::ModelPlan &plan,
                       bool end_to_end) const
{
    ModelSchedule s;
    s.modelName = plan.model.name;
    s.params = cfg_.hw;
    s.endToEnd = end_to_end;
    s.stemFlops = plan.model.stemFlops;
    s.stemMacs = static_cast<MacOps>(plan.model.stemFlops / 2.0);

    const auto shapes = model::attentionShapes(plan.model);
    s.layers.reserve(shapes.size());
    for (size_t l = 0; l < shapes.size(); ++l) {
        LayerSchedule ls = buildAttentionLayer(plan, l);
        if (end_to_end)
            fillDenseBlock(ls, plan);
        s.layers.push_back(std::move(ls));
    }
    return s;
}

} // namespace vitcod::core::schedule
