/**
 * @file
 * The single copy of the per-block MAC/FLOP/byte formulas. Every
 * other accounting in the repo — `model::modelBreakdown`'s Fig. 4
 * op-group breakdowns, the Schedule IR's per-layer MAC counts, the
 * ModelExecutor's trace MACs and the accelerator simulators' dense
 * phases — derives from these two functions, so the four historic
 * copies (flops.cpp, vitcod_accel.cpp, compiler.cpp,
 * model_executor.cpp) can never drift apart again.
 *
 * The attention terms are parameterized on *stored score elements*
 * (`s_elems`): callers with a real mask pass its nonzero count
 * summed over heads; analytic callers pass `keep * h * n * n`.
 */

#ifndef VITCOD_CORE_SCHEDULE_WORKLOAD_H
#define VITCOD_CORE_SCHEDULE_WORKLOAD_H

#include <cstddef>

#include "common/units.h"
#include "model/flops.h"

namespace vitcod::core::schedule {

/** Shape of one transformer block (a stage's per-layer geometry). */
struct BlockShape
{
    size_t tokens = 0;   //!< sequence length n
    size_t heads = 0;    //!< attention heads h
    size_t headDim = 0;  //!< per-head width d_k
    size_t embedDim = 0; //!< model width d
    size_t mlpRatio = 0; //!< MLP hidden = mlpRatio * embedDim
};

/** Exact matmul MAC counts of one block at an integer mask nnz. */
struct BlockMacs
{
    MacOps qkv = 0;     //!< three d -> h*dk projections
    MacOps attn = 0;    //!< SDDMM + SpMM at the mask nonzeros
    MacOps outProj = 0; //!< h*dk -> d projection
    MacOps mlp = 0;     //!< FC1 + FC2 (GELU is not a MAC)

    /** Whole-block matmul MACs. */
    MacOps total() const { return qkv + attn + outProj + mlp; }
};

/**
 * Matmul MACs of one block whose attention masks keep @p mask_nnz
 * score entries summed over all heads.
 */
BlockMacs blockMacs(const BlockShape &b, size_t mask_nnz);

/**
 * Per-op-group FLOPs and bytes of one block (the currency of
 * `model::modelBreakdown`). @p s_elems is the stored attention score
 * count summed over heads (may be fractional for analytic callers);
 * the Reshape/Softmax/LayerNorm groups are included, the stem is
 * not (it is a whole-model constant, not a block cost).
 */
model::Breakdown blockBreakdown(const BlockShape &b, double s_elems,
                                size_t elem_bytes);

} // namespace vitcod::core::schedule

#endif // VITCOD_CORE_SCHEDULE_WORKLOAD_H
