#include "core/schedule/workload.h"

namespace vitcod::core::schedule {

BlockMacs
blockMacs(const BlockShape &b, size_t mask_nnz)
{
    const MacOps n = b.tokens;
    const MacOps d = b.embedDim;
    const MacOps hd = static_cast<MacOps>(b.heads) * b.headDim;
    const MacOps hidden = static_cast<MacOps>(b.mlpRatio) * b.embedDim;

    BlockMacs m;
    m.qkv = 3 * n * d * hd;
    m.attn = static_cast<MacOps>(mask_nnz) * b.headDim * 2;
    m.outProj = n * hd * d;
    m.mlp = 2 * n * d * hidden;
    return m;
}

model::Breakdown
blockBreakdown(const BlockShape &b, double s_elems, size_t elem_bytes)
{
    const auto n = static_cast<double>(b.tokens);
    const auto dk = static_cast<double>(b.headDim);
    const auto d = static_cast<double>(b.embedDim);
    const auto hidden = static_cast<double>(b.mlpRatio) * d;
    const double hd = static_cast<double>(b.heads) * dk;
    const auto eb = static_cast<double>(elem_bytes);

    model::Breakdown out{};

    // Q/K/V projections: three d -> h*dk linear maps.
    groupOf(out, model::OpGroup::QkvProj) = {
        2.0 * n * d * 3.0 * hd,
        (n * d + 3.0 * d * hd + 3.0 * n * hd) * eb};

    // Q.K^T (SDDMM when sparse) and S.V (SpMM when sparse).
    groupOf(out, model::OpGroup::AttnMatMul) = {
        2.0 * s_elems * dk     // Q.K^T
            + 2.0 * s_elems * dk, // S.V
        (2.0 * n * hd          // Q and K
         + s_elems             // S write
         + s_elems             // S read
         + n * hd              // V
         + n * hd) * eb};      // V' write

    // Head split before attention, concat after: pure movement.
    groupOf(out, model::OpGroup::Reshape) = {
        0.0, 2.0 * (3.0 * n * hd) * eb};

    // Softmax: exp + accumulate + normalize per surviving score.
    groupOf(out, model::OpGroup::Softmax) = {5.0 * s_elems,
                                             2.0 * s_elems * eb};

    // Output projection h*dk -> d.
    groupOf(out, model::OpGroup::OutProj) = {
        2.0 * n * hd * d, (n * hd + hd * d + n * d) * eb};

    // Two-layer MLP with GELU.
    groupOf(out, model::OpGroup::Mlp) = {
        2.0 * n * d * hidden * 2.0 + 8.0 * n * hidden,
        (2.0 * d * hidden + n * d * 2.0 + n * hidden) * eb};

    // Two LayerNorms per block: ~5 ops/element each.
    groupOf(out, model::OpGroup::LayerNorm) = {
        2.0 * 5.0 * n * d, 2.0 * 2.0 * n * d * eb};

    return out;
}

} // namespace vitcod::core::schedule
