/**
 * @file
 * The Schedule IR (paper Fig. 14, "one-time compilation cost for
 * each task"): everything that is statically derivable from a
 * `(ModelPlan, mask)` pair — the denser/sparser workload split, MAC
 * line allocations, CSC walk order, per-phase byte streams, SRAM
 * window/spill plan and exact MAC counts — captured once by the
 * ScheduleBuilder and then consumed by *all three* execution stacks:
 *
 *   - the instruction compiler lowers a ModelSchedule to a Program,
 *   - the cycle-level simulator prices the same schedule analytically,
 *   - the ModelExecutor/KernelEngine run real kernels in the
 *     schedule's visit order through its prebuilt mask layouts.
 *
 * Because every consumer reads the same numbers, the compiler agrees
 * with the simulator cycle-for-cycle and the runtime's executed MACs
 * equal the simulator's priced MACs by construction — the three-way
 * invariant tests/schedule/ pins.
 *
 * Schedules serialize to a line-oriented text document (write/read)
 * with a golden fixture under tests/data/, same --update-goldens
 * flow as ExecTrace.
 */

#ifndef VITCOD_CORE_SCHEDULE_SCHEDULE_H
#define VITCOD_CORE_SCHEDULE_SCHEDULE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/schedule/workload.h"
#include "core/split_conquer.h"
#include "sparse/formats.h"

namespace vitcod::core::schedule {

/**
 * The hardware parameters the *static* schedule depends on — a
 * mirror of the scheduling-relevant subset of accel::ViTCoDConfig
 * (defaults = paper Sec. VI-A). Cycle pricing knobs that do not
 * change the schedule itself (DRAM timing, energy) stay in the
 * accelerator config; `accel::scheduleParams()` converts.
 */
struct HardwareParams
{
    size_t macLines = 64;        //!< engine MAC lines (denser+sparser)
    size_t macsPerLine = 8;      //!< MAC units per line
    size_t elemBytes = 2;        //!< activation/weight element size
    size_t indexBytes = 1;       //!< CSC row-index size
    Bytes qkvBufBytes = 128 * 1024; //!< Q/K/S/V (or input) buffer
    Bytes sBufferBytes = 96 * 1024; //!< S working set before spilling
    size_t aeLines = 16;         //!< dedicated AE en/decoder lines
    double aeDecodeRate = 2.0;   //!< AE throughput multiplier (8-bit)
    size_t softmaxLanesPerEngine = 16; //!< exp/normalize lanes
    Cycles colOverheadCycles = 2;  //!< per-CSC-column index decode
    Cycles reconfigCycles = 16;    //!< inter-/intra-PE accumulation switch
    double denseEff = 0.95;      //!< denser-engine streaming efficiency
    double gemmEff = 0.90;       //!< reused-array GEMM efficiency
    bool twoPronged = true;      //!< false: single monolithic engine
    bool enableAeEngines = true; //!< false: Q/K move uncompressed
    bool dynamicMaskPrediction = false; //!< NLP on-the-fly mask mode
    double predictionCostFactor = 0.25; //!< low-precision factor of it

    /**
     * Static sparser-engine share of the MAC lines in (0, 1); the
     * design-space explorer sweeps this denser/sparser PE split.
     * 0 (the default) keeps the dynamic proportional allocation of
     * paper Sec. V-B1. Ignored when a phase has work on only one
     * engine (that engine then takes the whole array, matching the
     * dynamic allocator's behavior).
     */
    double sparserLineFrac = 0.0;

    bool operator==(const HardwareParams &) const = default;
};

/**
 * Compressed visit-order layout of one head's *full* pruned mask:
 * CSR always (the softmax/SpMM order), CSC additionally when the
 * mask is sparse enough for the K-stationary sparser-engine walk.
 * This is what the KernelEngine executes from directly — the mask
 * is scanned exactly once, at schedule build.
 */
struct HeadLayout
{
    std::vector<uint32_t> rowPtr, colIdx; //!< CSR
    std::vector<uint32_t> colPtr, rowIdx; //!< CSC (useCsc only)
    bool useCsc = false;

    bool operator==(const HeadLayout &) const = default;
};

/** One (layer, head) attention schedule. */
struct HeadSchedule
{
    size_t head = 0;
    size_t tokens = 0;
    size_t headDim = 0;
    size_t numGlobalTokens = 0; //!< N_gt fronted by the reordering
    size_t denserNnz = 0;       //!< nonzeros in the global columns
    size_t sparserNnz = 0;      //!< nonzeros walked via CSC
    MacOps denserMacs = 0;      //!< n * N_gt * dk (per phase)
    MacOps sparserMacs = 0;     //!< sparserNnz * dk (per phase)
    Bytes idxBytes = 0;         //!< CSC index stream -> IdxBuf
    uint64_t qGatherMisses = 0; //!< LRU gathers (no Q forwarding)
    HeadLayout layout;          //!< runtime visit order

    /** Total mask nonzeros (denser + sparser partition). */
    size_t maskNnz() const { return denserNnz + sparserNnz; }

    bool operator==(const HeadSchedule &) const = default;
};

/** Dense (non-attention) phases of one layer, end-to-end scope. */
struct DenseBlockSchedule
{
    MacOps projMacs = 0;       //!< Q/K/V generation GEMM
    MacOps encodeMacs = 0;     //!< AE encoder (overlapped)
    MacOps outProjMacs = 0;
    MacOps mlpMacs = 0;
    Bytes projLoadBytes = 0;
    Bytes projStoreBytes = 0;  //!< Q/K compressed + V
    Bytes outProjBytes = 0;
    Bytes mlpBytes = 0;
    uint64_t lnElems = 0;      //!< 2 * n * d elementwise ops

    bool operator==(const DenseBlockSchedule &) const = default;
};

/** One layer's complete attention schedule. */
struct LayerSchedule
{
    size_t layer = 0;
    BlockShape shape; //!< tokens/heads/headDim/embedDim/mlpRatio

    /** @name AE compression state
     *  @{ */
    bool aeOn = false;
    double aeRatio = 1.0;      //!< compressed / heads
    size_t compressedHeads = 0;
    MacOps decodeMacs = 0;     //!< dedicated decoder engine work
    /** @} */

    /** @name Denser/sparser workload split (paper Sec. V-B1)
     *  @{ */
    MacOps denserSddmmMacs = 0;
    MacOps sparserSddmmMacs = 0;
    MacOps denserSpmmMacs = 0;
    MacOps sparserSpmmMacs = 0;
    uint64_t softmaxElems = 0; //!< stored scores (denser + sparser)
    /** @} */

    /** @name MAC-line allocation and static sparser-engine cost
     *  @{ */
    size_t sddmmDenserLines = 0;
    size_t sddmmSparserLines = 0;
    size_t spmmDenserLines = 0;
    size_t spmmSparserLines = 0;
    Cycles sddmmSparserCycles = 0; //!< at the SDDMM allocation
    Cycles spmmSparserCycles = 0;  //!< at the SpMM allocation
    /** @} */

    /** @name SRAM buffer plan + DRAM streams
     *  @{ */
    size_t windowRows = 0;     //!< resident Q rows per head
    Bytes idxBytes = 0;        //!< summed CSC index bytes
    Bytes qkLoadBytes = 0;     //!< Q + K streams (AE-compressed)
    uint64_t gatherMisses = 0; //!< summed LRU Q gathers
    Bytes gatherRowBytes = 0;  //!< bytes per gathered row
    Bytes sBytes = 0;          //!< stored score bytes
    Bytes spillBytes = 0;      //!< S overflow past the S buffer
    Bytes vLoadBytes = 0;      //!< V stream + S spill re-read
    Bytes outStoreBytes = 0;   //!< V' stream + S spill write
    /** @} */

    /** @name Dynamic-mask prediction (NLP mode)
     *  @{ */
    MacOps predictMacs = 0;
    Cycles predictOverhead = 0;
    /** @} */

    /** Exact matmul MACs the runtime executes for this layer. */
    BlockMacs execMacs;

    DenseBlockSchedule dense; //!< populated when endToEnd
    std::vector<HeadSchedule> heads;

    /** Total attention-phase MACs (SDDMM + SpMM, both engines). */
    MacOps attentionMacs() const
    {
        return denserSddmmMacs + sparserSddmmMacs + denserSpmmMacs +
               sparserSpmmMacs;
    }
};

/** The whole model's compiled schedule. */
struct ModelSchedule
{
    std::string modelName;
    HardwareParams params;
    bool endToEnd = false;
    MacOps stemMacs = 0;       //!< conv stem as one GEMM (e2e)
    double stemFlops = 0.0;    //!< for breakdown() parity
    std::vector<LayerSchedule> layers;

    /** Attention MACs summed over layers. */
    MacOps attentionMacs() const;

    /** Runtime matmul MACs summed over layers (no stem/classifier). */
    MacOps execMacs() const;

    /**
     * Fig. 4 op-group breakdown derived from the schedule: the same
     * totals model::modelBreakdown computes analytically, but at the
     * masks' *actual* nonzero counts.
     */
    model::Breakdown breakdown() const;

    /** @name Text serialization (same flow as ExecTrace)
     *  @{ */
    void write(std::ostream &os) const;
    void writeFile(const std::string &path) const;
    static ModelSchedule read(std::istream &is);
    static ModelSchedule readFile(const std::string &path);
    /** @} */
};

/**
 * Everything-compared equality (layouts included); doubles compare
 * exactly, which round-trips through write/read at 17 significant
 * digits. On mismatch returns false and describes the first
 * difference in @p why (when non-null).
 */
bool structurallyEqual(const ModelSchedule &a, const ModelSchedule &b,
                       std::string *why = nullptr);

/** @name Static schedule math (shared by builder, simulator, tests)
 *  @{ */

/**
 * Largest-remainder integer allocation of @p total MAC lines
 * proportional to @p weights (floor of 1 for nonzero weights).
 */
std::vector<size_t> allocateEngineLines(
    const std::vector<double> &weights, size_t total);

/**
 * Sparser-engine cost of one head: walk the CSC columns, each
 * costing ceil(nnz_c * dk / (lines * macs_per_line)) plus the
 * per-column index-decode overhead.
 */
Cycles sparserHeadCycles(const sparse::Csc &csc, size_t head_dim,
                         size_t lines, size_t macs_per_line,
                         Cycles col_overhead);

/**
 * Whole sparser-engine cost for a layer: allocate @p lines across
 * the active heads proportional to their nonzeros (or LPT-pack heads
 * onto lines when heads outnumber lines) and take the slowest head.
 */
Cycles sparserEngineCycles(
    const std::vector<const core::SparseAttentionPlan *> &heads,
    size_t head_dim, size_t lines, size_t macs_per_line,
    Cycles col_overhead);

/**
 * Exact LRU simulation of sparser-engine Q-row residency over a CSC
 * nonzero stream: DRAM gathers needed with an on-chip window of
 * @p window_rows Q rows.
 */
uint64_t lruQMisses(const sparse::Csc &csc, size_t window_rows);

/** @} */

} // namespace vitcod::core::schedule

#endif // VITCOD_CORE_SCHEDULE_SCHEDULE_H
