/**
 * @file
 * The ModelExec serving backend runs whole-model forward passes:
 * nonzero wall time, full-model MAC accounting (projections + MLP +
 * classifier, not just attention), a resident per-plan executor
 * whose arena never grows in steady state, and end-to-end traffic
 * through a WorkerPool-backed server.
 */

#include <gtest/gtest.h>

#include "serve/backend.h"
#include "serve/plan_cache.h"
#include "serve/server.h"

namespace vitcod::serve {
namespace {

PlanKey
tinyKey()
{
    PlanKey k;
    k.model = "DeiT-Tiny";
    k.sparsity = 0.9;
    return k;
}

TEST(ModelExecServeBackend, RunsFullForwardAndAccountsModelMacs)
{
    PlanCache cache;
    const auto cp = cache.get(tinyKey());

    auto backend = makeServeBackend("ModelExec", accel::ViTCoDConfig{});
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), "ModelExec");

    const auto r = backend->runBatch(*cp, 1);
    EXPECT_GT(r.stats.seconds, 0.0);
    EXPECT_TRUE(r.switched); // first batch loads weights

    // Whole-model MACs dwarf the attention-only count CPUKernel
    // reports: QKV/output projections and the MLP dominate DeiT.
    MacOps attn_only = 0;
    for (const auto &hp : cp->plan.heads) {
        const auto dk = cp->plan.model.stages.front().headDim;
        attn_only +=
            static_cast<MacOps>(hp.plan.mask.nnz()) * dk * 2;
    }
    EXPECT_GT(r.stats.macs, attn_only * 10);
    EXPECT_EQ(r.stats.model, "DeiT-Tiny");
}

TEST(ModelExecServeBackend, KeepsResidentExecutorAndTraces)
{
    PlanCache cache;
    const auto cp = cache.get(tinyKey());
    ModelExecServeBackend backend;

    (void)backend.runBatch(*cp, 1);
    const auto &trace = backend.lastTrace();
    EXPECT_EQ(trace.model, "DeiT-Tiny");
    ASSERT_EQ(trace.layers.size(), cp->plan.model.totalLayers());
    for (const auto &lt : trace.layers)
        EXPECT_EQ(lt.heads, 3u);

    // Second batch reuses the resident executor, which runs from
    // the plan's compiled Schedule IR: the engine's structure cache
    // sees no traffic at all — the masks were scanned exactly once,
    // when the PlanCache built the schedule.
    (void)backend.runBatch(*cp, 2);
    EXPECT_EQ(backend.lastTrace().dispatch.structureMisses, 0u);
    EXPECT_EQ(backend.lastTrace().dispatch.structureHits, 0u);
    EXPECT_GT(backend.lastTrace().dispatch.sddmmCsr +
                  backend.lastTrace().dispatch.sddmmCsc,
              0u);
}

TEST(ModelExecServeBackend, ServesTrafficInMixedPool)
{
    ServerConfig cfg;
    cfg.backends = {"ModelExec", "ViTCoD"};
    InferenceServer server(cfg);
    server.warmup({tinyKey()});
    for (int i = 0; i < 8; ++i)
        server.submit(tinyKey());
    server.drain();
    const auto snap = server.snapshot();
    EXPECT_EQ(snap.completed, 8u);
    server.shutdown();
}

} // namespace
} // namespace vitcod::serve
