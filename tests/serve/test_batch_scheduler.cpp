/**
 * @file
 * BatchScheduler policies under a deterministic injected clock:
 * FIFO prefix batching, size-bucketed full/max-wait dispatch,
 * priority ordering, and the stop()-flush drain path.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "serve/batch_scheduler.h"

namespace vitcod::serve {
namespace {

PlanKey
keyOf(const std::string &model)
{
    PlanKey k;
    k.model = model;
    return k;
}

InferenceRequest
reqOf(uint64_t id, const std::string &model, int priority = 0)
{
    InferenceRequest r;
    r.id = id;
    r.key = keyOf(model);
    r.priority = priority;
    return r;
}

/** Scheduler with a hand-driven clock. */
struct Harness
{
    std::shared_ptr<double> now = std::make_shared<double>(0.0);
    BatchScheduler sched;

    explicit Harness(SchedulerPolicy policy, size_t max_batch = 8,
                     double max_wait = 10.0)
        : sched(makeConfig(policy, max_batch, max_wait, now))
    {
    }

    static SchedulerConfig
    makeConfig(SchedulerPolicy policy, size_t max_batch,
               double max_wait, std::shared_ptr<double> now)
    {
        SchedulerConfig cfg;
        cfg.policy = policy;
        cfg.maxBatch = max_batch;
        cfg.maxWaitSeconds = max_wait;
        cfg.clock = [now] { return *now; };
        return cfg;
    }
};

TEST(BatchSchedulerFifo, BatchesTheSamePlanPrefix)
{
    Harness h(SchedulerPolicy::Fifo);
    h.sched.submit(reqOf(1, "A"));
    h.sched.submit(reqOf(2, "A"));
    h.sched.submit(reqOf(3, "B"));
    h.sched.submit(reqOf(4, "A"));

    auto b1 = h.sched.nextBatch();
    ASSERT_TRUE(b1);
    EXPECT_EQ(b1->key.model, "A");
    ASSERT_EQ(b1->requests.size(), 2u);
    EXPECT_EQ(b1->requests[0].id, 1u);
    EXPECT_EQ(b1->requests[1].id, 2u);

    auto b2 = h.sched.nextBatch();
    ASSERT_TRUE(b2);
    EXPECT_EQ(b2->key.model, "B");
    EXPECT_EQ(b2->requests.size(), 1u);

    auto b3 = h.sched.nextBatch();
    ASSERT_TRUE(b3);
    EXPECT_EQ(b3->key.model, "A");
    EXPECT_EQ(b3->requests[0].id, 4u);

    EXPECT_FALSE(h.sched.nextBatch());
    EXPECT_EQ(h.sched.depth(), 0u);
}

TEST(BatchSchedulerFifo, RespectsMaxBatch)
{
    Harness h(SchedulerPolicy::Fifo, /*max_batch=*/2);
    for (uint64_t i = 1; i <= 5; ++i)
        h.sched.submit(reqOf(i, "A"));

    EXPECT_EQ(h.sched.nextBatch()->requests.size(), 2u);
    EXPECT_EQ(h.sched.nextBatch()->requests.size(), 2u);
    EXPECT_EQ(h.sched.nextBatch()->requests.size(), 1u);
}

TEST(BatchSchedulerBucketed, WaitsForFullBatchUntilDeadline)
{
    Harness h(SchedulerPolicy::SizeBucketed, /*max_batch=*/4,
              /*max_wait=*/10.0);
    h.sched.submit(reqOf(1, "A"));
    h.sched.submit(reqOf(2, "A"));

    *h.now = 9.9; // not full, deadline not reached
    EXPECT_FALSE(h.sched.nextBatch());

    *h.now = 10.1; // oldest has waited past maxWait
    auto b = h.sched.nextBatch();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->requests.size(), 2u);
}

TEST(BatchSchedulerBucketed, DispatchesFullBucketImmediately)
{
    Harness h(SchedulerPolicy::SizeBucketed, /*max_batch=*/4);
    for (uint64_t i = 1; i <= 4; ++i)
        h.sched.submit(reqOf(i, "A"));
    auto b = h.sched.nextBatch();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->requests.size(), 4u);
}

TEST(BatchSchedulerBucketed, PrefersTheOldestReadyBucket)
{
    Harness h(SchedulerPolicy::SizeBucketed, /*max_batch=*/2,
              /*max_wait=*/10.0);
    h.sched.submit(reqOf(1, "A")); // t=0, never fills
    *h.now = 1.0;
    h.sched.submit(reqOf(2, "B"));
    h.sched.submit(reqOf(3, "B")); // B full at t=1

    auto b1 = h.sched.nextBatch();
    ASSERT_TRUE(b1);
    EXPECT_EQ(b1->key.model, "B");

    *h.now = 5.0;
    EXPECT_FALSE(h.sched.nextBatch()); // A still under deadline

    *h.now = 10.5;
    auto b2 = h.sched.nextBatch();
    ASSERT_TRUE(b2);
    EXPECT_EQ(b2->key.model, "A");
}

TEST(BatchSchedulerBucketed, BothReadyPicksOlderArrival)
{
    Harness h(SchedulerPolicy::SizeBucketed, /*max_batch=*/2,
              /*max_wait=*/10.0);
    h.sched.submit(reqOf(1, "A"));
    *h.now = 1.0;
    h.sched.submit(reqOf(2, "B"));
    *h.now = 20.0; // both expired; A arrived first
    auto b = h.sched.nextBatch();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->key.model, "A");
}

TEST(BatchSchedulerBucketed, StopFlushesIgnoringDeadlines)
{
    Harness h(SchedulerPolicy::SizeBucketed, /*max_batch=*/8,
              /*max_wait=*/100.0);
    h.sched.submit(reqOf(1, "A"));
    EXPECT_FALSE(h.sched.nextBatch());

    h.sched.stop();
    auto b = h.sched.nextBatch();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->requests.size(), 1u);
    EXPECT_FALSE(h.sched.nextBatch());
}

TEST(BatchSchedulerPriority, HighestPriorityLeadsTheBatch)
{
    Harness h(SchedulerPolicy::Priority);
    h.sched.submit(reqOf(1, "A", 0));
    h.sched.submit(reqOf(2, "B", 5));
    h.sched.submit(reqOf(3, "A", 3));

    auto b1 = h.sched.nextBatch();
    ASSERT_TRUE(b1);
    EXPECT_EQ(b1->key.model, "B");

    auto b2 = h.sched.nextBatch();
    ASSERT_TRUE(b2);
    EXPECT_EQ(b2->key.model, "A");
    ASSERT_EQ(b2->requests.size(), 2u);
    // Same-plan members ride along, highest priority first.
    EXPECT_EQ(b2->requests[0].id, 3u);
    EXPECT_EQ(b2->requests[1].id, 1u);
}

TEST(BatchSchedulerPriority, TiesBreakByArrival)
{
    Harness h(SchedulerPolicy::Priority, /*max_batch=*/1);
    h.sched.submit(reqOf(1, "A", 2));
    h.sched.submit(reqOf(2, "B", 2));
    EXPECT_EQ(h.sched.nextBatch()->requests[0].id, 1u);
    EXPECT_EQ(h.sched.nextBatch()->requests[0].id, 2u);
}

TEST(BatchScheduler, DepthTracksQueuedRequests)
{
    Harness h(SchedulerPolicy::Fifo);
    EXPECT_EQ(h.sched.depth(), 0u);
    h.sched.submit(reqOf(1, "A"));
    h.sched.submit(reqOf(2, "A"));
    EXPECT_EQ(h.sched.depth(), 2u);
    h.sched.nextBatch();
    EXPECT_EQ(h.sched.depth(), 0u);
}

TEST(BatchScheduler, WaitBatchWakesOnSubmitAndStops)
{
    BatchScheduler sched{SchedulerConfig{}}; // wall clock, bucketed

    std::thread consumer([&] {
        auto b = sched.waitBatch(); // blocks until stop() flushes
        ASSERT_TRUE(b);
        EXPECT_EQ(b->requests.size(), 1u);
        EXPECT_FALSE(sched.waitBatch()); // stopped and empty
    });

    sched.submit(reqOf(1, "A"));
    sched.stop();
    consumer.join();
}

TEST(BatchScheduler, PolicyNamesRoundTrip)
{
    EXPECT_EQ(schedulerPolicyByName("fifo"), SchedulerPolicy::Fifo);
    EXPECT_EQ(schedulerPolicyByName("bucketed"),
              SchedulerPolicy::SizeBucketed);
    EXPECT_EQ(schedulerPolicyByName("priority"),
              SchedulerPolicy::Priority);
    EXPECT_STREQ(schedulerPolicyName(SchedulerPolicy::Fifo), "fifo");
}

} // namespace
} // namespace vitcod::serve
