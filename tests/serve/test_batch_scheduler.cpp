/**
 * @file
 * BatchScheduler policies under a deterministic injected clock:
 * FIFO prefix batching, size-bucketed full/max-wait dispatch,
 * priority ordering, and the stop()-flush drain path.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "serve/batch_scheduler.h"

namespace vitcod::serve {
namespace {

PlanKey
keyOf(const std::string &model)
{
    PlanKey k;
    k.model = model;
    return k;
}

InferenceRequest
reqOf(uint64_t id, const std::string &model, int priority = 0)
{
    InferenceRequest r;
    r.id = id;
    r.key = keyOf(model);
    r.priority = priority;
    return r;
}

/** Scheduler with a hand-driven clock. */
struct Harness
{
    std::shared_ptr<double> now = std::make_shared<double>(0.0);
    BatchScheduler sched;

    explicit Harness(SchedulerPolicy policy, size_t max_batch = 8,
                     double max_wait = 10.0)
        : sched(makeConfig(policy, max_batch, max_wait, now))
    {
    }

    static SchedulerConfig
    makeConfig(SchedulerPolicy policy, size_t max_batch,
               double max_wait, std::shared_ptr<double> now)
    {
        SchedulerConfig cfg;
        cfg.policy = policy;
        cfg.maxBatch = max_batch;
        cfg.maxWaitSeconds = max_wait;
        cfg.clock = [now] { return *now; };
        return cfg;
    }
};

TEST(BatchSchedulerFifo, BatchesTheSamePlanPrefix)
{
    Harness h(SchedulerPolicy::Fifo);
    h.sched.submit(reqOf(1, "A"));
    h.sched.submit(reqOf(2, "A"));
    h.sched.submit(reqOf(3, "B"));
    h.sched.submit(reqOf(4, "A"));

    auto b1 = h.sched.nextBatch();
    ASSERT_TRUE(b1);
    EXPECT_EQ(b1->key.model, "A");
    ASSERT_EQ(b1->requests.size(), 2u);
    EXPECT_EQ(b1->requests[0].id, 1u);
    EXPECT_EQ(b1->requests[1].id, 2u);

    auto b2 = h.sched.nextBatch();
    ASSERT_TRUE(b2);
    EXPECT_EQ(b2->key.model, "B");
    EXPECT_EQ(b2->requests.size(), 1u);

    auto b3 = h.sched.nextBatch();
    ASSERT_TRUE(b3);
    EXPECT_EQ(b3->key.model, "A");
    EXPECT_EQ(b3->requests[0].id, 4u);

    EXPECT_FALSE(h.sched.nextBatch());
    EXPECT_EQ(h.sched.depth(), 0u);
}

TEST(BatchSchedulerFifo, RespectsMaxBatch)
{
    Harness h(SchedulerPolicy::Fifo, /*max_batch=*/2);
    for (uint64_t i = 1; i <= 5; ++i)
        h.sched.submit(reqOf(i, "A"));

    EXPECT_EQ(h.sched.nextBatch()->requests.size(), 2u);
    EXPECT_EQ(h.sched.nextBatch()->requests.size(), 2u);
    EXPECT_EQ(h.sched.nextBatch()->requests.size(), 1u);
}

TEST(BatchSchedulerBucketed, WaitsForFullBatchUntilDeadline)
{
    Harness h(SchedulerPolicy::SizeBucketed, /*max_batch=*/4,
              /*max_wait=*/10.0);
    h.sched.submit(reqOf(1, "A"));
    h.sched.submit(reqOf(2, "A"));

    *h.now = 9.9; // not full, deadline not reached
    EXPECT_FALSE(h.sched.nextBatch());

    *h.now = 10.1; // oldest has waited past maxWait
    auto b = h.sched.nextBatch();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->requests.size(), 2u);
}

TEST(BatchSchedulerBucketed, DispatchesFullBucketImmediately)
{
    Harness h(SchedulerPolicy::SizeBucketed, /*max_batch=*/4);
    for (uint64_t i = 1; i <= 4; ++i)
        h.sched.submit(reqOf(i, "A"));
    auto b = h.sched.nextBatch();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->requests.size(), 4u);
}

TEST(BatchSchedulerBucketed, PrefersTheOldestReadyBucket)
{
    Harness h(SchedulerPolicy::SizeBucketed, /*max_batch=*/2,
              /*max_wait=*/10.0);
    h.sched.submit(reqOf(1, "A")); // t=0, never fills
    *h.now = 1.0;
    h.sched.submit(reqOf(2, "B"));
    h.sched.submit(reqOf(3, "B")); // B full at t=1

    auto b1 = h.sched.nextBatch();
    ASSERT_TRUE(b1);
    EXPECT_EQ(b1->key.model, "B");

    *h.now = 5.0;
    EXPECT_FALSE(h.sched.nextBatch()); // A still under deadline

    *h.now = 10.5;
    auto b2 = h.sched.nextBatch();
    ASSERT_TRUE(b2);
    EXPECT_EQ(b2->key.model, "A");
}

TEST(BatchSchedulerBucketed, BothReadyPicksOlderArrival)
{
    Harness h(SchedulerPolicy::SizeBucketed, /*max_batch=*/2,
              /*max_wait=*/10.0);
    h.sched.submit(reqOf(1, "A"));
    *h.now = 1.0;
    h.sched.submit(reqOf(2, "B"));
    *h.now = 20.0; // both expired; A arrived first
    auto b = h.sched.nextBatch();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->key.model, "A");
}

TEST(BatchSchedulerBucketed, StopFlushesIgnoringDeadlines)
{
    Harness h(SchedulerPolicy::SizeBucketed, /*max_batch=*/8,
              /*max_wait=*/100.0);
    h.sched.submit(reqOf(1, "A"));
    EXPECT_FALSE(h.sched.nextBatch());

    h.sched.stop();
    auto b = h.sched.nextBatch();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->requests.size(), 1u);
    EXPECT_FALSE(h.sched.nextBatch());
}

TEST(BatchSchedulerPriority, HighestPriorityLeadsTheBatch)
{
    Harness h(SchedulerPolicy::Priority);
    h.sched.submit(reqOf(1, "A", 0));
    h.sched.submit(reqOf(2, "B", 5));
    h.sched.submit(reqOf(3, "A", 3));

    auto b1 = h.sched.nextBatch();
    ASSERT_TRUE(b1);
    EXPECT_EQ(b1->key.model, "B");

    auto b2 = h.sched.nextBatch();
    ASSERT_TRUE(b2);
    EXPECT_EQ(b2->key.model, "A");
    ASSERT_EQ(b2->requests.size(), 2u);
    // Same-plan members ride along, highest priority first.
    EXPECT_EQ(b2->requests[0].id, 3u);
    EXPECT_EQ(b2->requests[1].id, 1u);
}

TEST(BatchSchedulerPriority, TiesBreakByArrival)
{
    Harness h(SchedulerPolicy::Priority, /*max_batch=*/1);
    h.sched.submit(reqOf(1, "A", 2));
    h.sched.submit(reqOf(2, "B", 2));
    EXPECT_EQ(h.sched.nextBatch()->requests[0].id, 1u);
    EXPECT_EQ(h.sched.nextBatch()->requests[0].id, 2u);
}

TEST(BatchScheduler, DepthTracksQueuedRequests)
{
    Harness h(SchedulerPolicy::Fifo);
    EXPECT_EQ(h.sched.depth(), 0u);
    h.sched.submit(reqOf(1, "A"));
    h.sched.submit(reqOf(2, "A"));
    EXPECT_EQ(h.sched.depth(), 2u);
    h.sched.nextBatch();
    EXPECT_EQ(h.sched.depth(), 0u);
}

TEST(BatchScheduler, WaitBatchWakesOnSubmitAndStops)
{
    BatchScheduler sched{SchedulerConfig{}}; // wall clock, bucketed

    std::thread consumer([&] {
        auto b = sched.waitBatch(); // blocks until stop() flushes
        ASSERT_TRUE(b);
        EXPECT_EQ(b->requests.size(), 1u);
        EXPECT_FALSE(sched.waitBatch()); // stopped and empty
    });

    sched.submit(reqOf(1, "A"));
    sched.stop();
    consumer.join();
}

TEST(BatchScheduler, PolicyNamesRoundTrip)
{
    EXPECT_EQ(schedulerPolicyByName("fifo"), SchedulerPolicy::Fifo);
    EXPECT_EQ(schedulerPolicyByName("bucketed"),
              SchedulerPolicy::SizeBucketed);
    EXPECT_EQ(schedulerPolicyByName("priority"),
              SchedulerPolicy::Priority);
    EXPECT_EQ(schedulerPolicyByName("continuous"),
              SchedulerPolicy::Continuous);
    EXPECT_STREQ(schedulerPolicyName(SchedulerPolicy::Fifo), "fifo");
    EXPECT_STREQ(schedulerPolicyName(SchedulerPolicy::Continuous),
                 "continuous");
}

TEST(BatchSchedulerContinuous, DispatchesEagerlyWithoutDeadline)
{
    // Unlike bucketed, a lone request never waits for a bucket to
    // fill or expire: a free worker takes it immediately.
    Harness h(SchedulerPolicy::Continuous, /*max_batch=*/8,
              /*max_wait=*/100.0);
    h.sched.submit(reqOf(1, "A"));
    auto b = h.sched.nextBatch();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->requests.size(), 1u);
}

TEST(BatchSchedulerContinuous, GathersPlanAcrossInterleavedArrivals)
{
    // Fifo would stop at the first B; continuous collects every
    // queued A (arrival order preserved), then every B.
    Harness h(SchedulerPolicy::Continuous);
    h.sched.submit(reqOf(1, "A"));
    h.sched.submit(reqOf(2, "B"));
    h.sched.submit(reqOf(3, "A"));
    h.sched.submit(reqOf(4, "B"));
    h.sched.submit(reqOf(5, "A"));

    auto b1 = h.sched.nextBatch();
    ASSERT_TRUE(b1);
    EXPECT_EQ(b1->key.model, "A");
    ASSERT_EQ(b1->requests.size(), 3u);
    EXPECT_EQ(b1->requests[0].id, 1u);
    EXPECT_EQ(b1->requests[1].id, 3u);
    EXPECT_EQ(b1->requests[2].id, 5u);

    auto b2 = h.sched.nextBatch();
    ASSERT_TRUE(b2);
    EXPECT_EQ(b2->key.model, "B");
    EXPECT_EQ(b2->requests.size(), 2u);
}

TEST(BatchSchedulerContinuous, PrefersTheWorkersResidentPlan)
{
    // A worker that just ran B tops up with queued B requests (no
    // weight reload) even though an A arrived first.
    Harness h(SchedulerPolicy::Continuous);
    h.sched.submit(reqOf(1, "A"));
    h.sched.submit(reqOf(2, "B"));

    const PlanKey resident = keyOf("B");
    auto b1 = h.sched.nextBatch(&resident);
    ASSERT_TRUE(b1);
    EXPECT_EQ(b1->key.model, "B");

    auto b2 = h.sched.nextBatch(&resident);
    ASSERT_TRUE(b2);
    EXPECT_EQ(b2->key.model, "A");
}

TEST(BatchSchedulerContinuous, StarvationGuardOverridesAffinity)
{
    // Once the head of the queue has waited past maxWaitSeconds,
    // arrival order beats plan affinity: B workers cannot starve A.
    Harness h(SchedulerPolicy::Continuous, /*max_batch=*/8,
              /*max_wait=*/1.0);
    h.sched.submit(reqOf(1, "A"));
    h.sched.submit(reqOf(2, "B"));

    const PlanKey resident = keyOf("B");
    *h.now = 1.5; // head (A) has waited 1.5 > maxWait
    auto b = h.sched.nextBatch(&resident);
    ASSERT_TRUE(b);
    EXPECT_EQ(b->key.model, "A");
}

TEST(BatchSchedulerContinuous, AffinityIgnoredWhenPlanNotQueued)
{
    Harness h(SchedulerPolicy::Continuous);
    h.sched.submit(reqOf(1, "A"));
    const PlanKey resident = keyOf("C"); // nothing queued for C
    auto b = h.sched.nextBatch(&resident);
    ASSERT_TRUE(b);
    EXPECT_EQ(b->key.model, "A");
}

TEST(BatchSchedulerContinuous, RespectsMaxBatch)
{
    Harness h(SchedulerPolicy::Continuous, /*max_batch=*/3);
    for (uint64_t i = 1; i <= 7; ++i)
        h.sched.submit(reqOf(i, "A"));
    EXPECT_EQ(h.sched.nextBatch()->requests.size(), 3u);
    EXPECT_EQ(h.sched.nextBatch()->requests.size(), 3u);
    EXPECT_EQ(h.sched.nextBatch()->requests.size(), 1u);
    EXPECT_EQ(h.sched.depth(), 0u);
}

/**
 * Batch formation must *move* requests from the queue into the
 * batch, never copy them. A copy would reallocate the (non-SSO)
 * model string, so surviving heap pointers prove the whole
 * submit -> queue -> batch path is copy-free — the pin for the old
 * formPriority, which copied every selected request and then erased
 * them one by one (O(n^2)).
 */
TEST(BatchScheduler, BatchFormationMovesRequestsWithoutCopying)
{
    const std::string longA(128, 'a'); // defeats SSO
    const std::string longB(128, 'b');

    for (const auto policy :
         {SchedulerPolicy::Fifo, SchedulerPolicy::SizeBucketed,
          SchedulerPolicy::Priority, SchedulerPolicy::Continuous}) {
        Harness h(policy, /*max_batch=*/8, /*max_wait=*/0.0);

        std::vector<const char *> heap;
        for (uint64_t i = 1; i <= 6; ++i) {
            InferenceRequest r = reqOf(
                i, i % 2 ? longA : longB,
                /*priority=*/static_cast<int>(i % 3));
            heap.push_back(r.key.model.data());
            h.sched.submit(std::move(r));
        }

        size_t matched = 0;
        while (auto b = h.sched.nextBatch())
            for (const auto &r : b->requests) {
                ASSERT_GE(r.id, 1u);
                EXPECT_EQ(r.key.model.data(), heap[r.id - 1])
                    << schedulerPolicyName(policy) << " copied id "
                    << r.id;
                ++matched;
            }
        EXPECT_EQ(matched, 6u) << schedulerPolicyName(policy);
    }
}

TEST(BatchSchedulerPriority, SustainedHighPriorityStarvesLow)
{
    // Characterization of the policy's known edge: Priority has no
    // aging, so a sustained high-priority stream starves low
    // priority until it pauses. (Production overload control demotes
    // within the grace band only — see AdmissionController — so
    // starvation is bounded by shedding, not by the scheduler.)
    Harness h(SchedulerPolicy::Priority, /*max_batch=*/1);
    h.sched.submit(reqOf(1, "L", 0));

    uint64_t nextId = 2;
    for (int round = 0; round < 50; ++round) {
        h.sched.submit(reqOf(nextId++, "H", 5));
        auto b = h.sched.nextBatch();
        ASSERT_TRUE(b);
        EXPECT_EQ(b->key.model, "H") << "round " << round;
        EXPECT_EQ(h.sched.depth(), 1u); // L still waiting
    }

    // The moment the high-priority flow stops, L is served.
    auto b = h.sched.nextBatch();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->key.model, "L");
    EXPECT_EQ(b->requests[0].id, 1u);
}

TEST(BatchSchedulerBucketed, MultipleDeadlinesFlushInArrivalOrder)
{
    // Two underfull buckets with staggered deadlines: the fake clock
    // walks each deadline in turn and exactly one bucket flushes per
    // expiry.
    Harness h(SchedulerPolicy::SizeBucketed, /*max_batch=*/8,
              /*max_wait=*/10.0);
    h.sched.submit(reqOf(1, "A")); // deadline t=10
    *h.now = 3.0;
    h.sched.submit(reqOf(2, "B")); // deadline t=13
    h.sched.submit(reqOf(3, "B"));

    *h.now = 9.9;
    EXPECT_FALSE(h.sched.nextBatch());

    *h.now = 10.5; // only A has expired
    auto b1 = h.sched.nextBatch();
    ASSERT_TRUE(b1);
    EXPECT_EQ(b1->key.model, "A");
    EXPECT_FALSE(h.sched.nextBatch()); // B still under deadline

    *h.now = 13.5;
    auto b2 = h.sched.nextBatch();
    ASSERT_TRUE(b2);
    EXPECT_EQ(b2->key.model, "B");
    EXPECT_EQ(b2->requests.size(), 2u);
}

TEST(BatchScheduler, WaitBatchWakesOnDeadlineExpiry)
{
    // Wall clock, no further submissions, no stop(): waitBatch must
    // wake itself when the bucket's maxWaitSeconds deadline passes
    // (timed wait), not hang until an external nudge.
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::SizeBucketed;
    cfg.maxBatch = 8;
    cfg.maxWaitSeconds = 0.02;
    BatchScheduler sched(cfg);

    sched.submit(reqOf(1, "A"));
    auto b = sched.waitBatch();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->requests.size(), 1u);
    // The request had waited out its deadline when dispatched.
    EXPECT_GE(b->formedSeconds - b->requests[0].submitSeconds,
              cfg.maxWaitSeconds);
}

} // namespace
} // namespace vitcod::serve
