/**
 * @file
 * End-to-end serving: a fixed request trace through a 2-worker pool.
 * Wall-clock timings are nondeterministic, but every *simulated*
 * quantity must be exactly reproducible run over run — that is the
 * deterministic contract the serving runtime inherits from the
 * simulators.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <set>
#include <vector>

#include "accel/compiler.h"
#include "dse/pareto.h"
#include "serve/load_gen.h"
#include "serve/plan_cache.h"
#include "serve/server.h"
#include "support/temp_path.h"

namespace vitcod::serve {
namespace {

PlanKey
tinyKey()
{
    PlanKey k;
    k.model = "DeiT-Tiny";
    k.sparsity = 0.9;
    return k;
}

/** Collects responses from worker threads. */
struct Collector
{
    std::mutex lock;
    std::vector<InferenceResponse> responses;

    std::function<void(const InferenceResponse &)>
    callback()
    {
        return [this](const InferenceResponse &r) {
            std::lock_guard<std::mutex> g(lock);
            responses.push_back(r);
        };
    }
};

TEST(ServingE2E, DeterministicSimAggregatesOnTwoWorkers)
{
    const PlanKey key = tinyKey();
    constexpr size_t kRequests = 32;

    // Independently computed ground truth: one simulated inference
    // of the shared Program.
    PlanCache reference;
    const auto cp = reference.get(key);
    const double single =
        accel::Interpreter(accel::ViTCoDConfig{}).execute(cp->program).seconds;
    ASSERT_GT(single, 0.0);

    auto runOnce = [&](Collector &col) {
        ServerConfig cfg;
        cfg.backends = {"ViTCoD", "ViTCoD"};
        cfg.scheduler.policy = SchedulerPolicy::SizeBucketed;
        cfg.scheduler.maxBatch = 4;
        cfg.scheduler.maxWaitSeconds = 1e-3;

        InferenceServer server(cfg, col.callback());
        server.warmup({key});
        for (size_t i = 0; i < kRequests; ++i)
            server.submit(key);
        server.drain();
        auto snap = server.snapshot();
        auto cacheStats = server.planCacheStats();
        server.shutdown();
        return std::make_pair(snap, cacheStats);
    };

    Collector col1, col2;
    const auto [snap1, cache1] = runOnce(col1);
    const auto [snap2, cache2] = runOnce(col2);

    // All requests completed, split across exactly two workers.
    EXPECT_EQ(snap1.completed, kRequests);
    ASSERT_EQ(snap1.backends.size(), 2u);
    EXPECT_EQ(snap1.backends[0].requests + snap1.backends[1].requests,
              kRequests);

    // Every response carries the same marginal simulated latency,
    // equal to the independently computed single-run time.
    ASSERT_EQ(col1.responses.size(), kRequests);
    for (const auto &r : col1.responses) {
        EXPECT_DOUBLE_EQ(r.simSeconds, single);
        EXPECT_GE(r.wallLatencySeconds, 0.0);
        EXPECT_GE(r.queueSeconds, 0.0);
        EXPECT_LE(r.queueSeconds, r.wallLatencySeconds + 1e-12);
        EXPECT_GE(r.batchSize, 1u);
        EXPECT_LE(r.batchSize, 4u);
    }

    // Aggregate simulated busy time is batch-split-invariant.
    const double busy1 = snap1.backends[0].busySimSeconds +
                         snap1.backends[1].busySimSeconds;
    EXPECT_NEAR(busy1, static_cast<double>(kRequests) * single,
                1e-9);

    // Predicted-vs-measured per plan: the ViTCoD backend executes
    // the schedule's own program, so measurement equals the cached
    // schedule-derived prediction exactly.
    ASSERT_EQ(snap1.plans.size(), 1u);
    EXPECT_EQ(snap1.plans[0].key, key.str());
    EXPECT_EQ(snap1.plans[0].requests, kRequests);
    EXPECT_DOUBLE_EQ(snap1.plans[0].predictedSeconds, single);
    EXPECT_NEAR(snap1.plans[0].ratio(), 1.0, 1e-9);

    // Plan switches: a single-task trace switches each worker at
    // most once (cold load), and the switch cost matches the plan's.
    for (const auto &b : snap1.backends) {
        EXPECT_LE(b.planSwitches, 1u);
        EXPECT_NEAR(b.switchSimSeconds,
                    static_cast<double>(b.planSwitches) *
                        cp->weightLoadSeconds,
                    1e-12);
    }

    // The device-clock tick counter agrees with the simulated time
    // at the ViTCoD frequency, modulo one round-up per batch.
    for (const auto &b : snap1.backends) {
        const double expect_ticks =
            (b.busySimSeconds + b.switchSimSeconds) * 0.5e9;
        EXPECT_NEAR(static_cast<double>(b.busyTicks), expect_ticks,
                    static_cast<double>(b.batches) + 1.0);
    }

    // One compilation total: the warmup missed, everything after hit.
    EXPECT_EQ(cache1.misses, 1u);
    EXPECT_GE(cache1.hits, kRequests);
    EXPECT_GT(cache1.hitRate(), 0.95);

    // Run-over-run stability of the simulated aggregates.
    EXPECT_EQ(snap2.completed, snap1.completed);
    const double busy2 = snap2.backends[0].busySimSeconds +
                         snap2.backends[1].busySimSeconds;
    EXPECT_NEAR(busy2, busy1, 1e-12);
    EXPECT_EQ(cache2.misses, cache1.misses);
}

TEST(ServingE2E, HeterogeneousPoolServesMixedBurst)
{
    PlanKey deit = tinyKey();
    PlanKey levit;
    levit.model = "LeViT-128";
    levit.sparsity = 0.8;

    ServerConfig cfg;
    cfg.backends = {"ViTCoD", "CPU"};
    cfg.scheduler.policy = SchedulerPolicy::Fifo;
    cfg.scheduler.maxBatch = 8;

    Collector col;
    InferenceServer server(cfg, col.callback());

    TrafficConfig traffic;
    traffic.ratePerSec = 1e6; // burst: arrivals in the past
    traffic.requests = 200;
    traffic.mix = {deit, levit};
    traffic.seed = 7;
    traffic.openLoop = false;

    const TrafficReport rep = runPoissonTraffic(server, traffic);
    EXPECT_EQ(rep.submitted, 200u);
    EXPECT_GT(rep.achievedRps, 0.0);

    const auto snap = server.snapshot();
    EXPECT_EQ(snap.completed, 200u);
    ASSERT_EQ(snap.backends.size(), 2u);
    EXPECT_EQ(snap.backends[0].requests + snap.backends[1].requests,
              200u);

    std::set<std::string> served;
    for (const auto &r : col.responses)
        served.insert(r.backend);
    EXPECT_LE(served.size(), 2u);
    EXPECT_TRUE(served.count("ViTCoD") || served.count("CPU"));

    // Two tasks -> two compilations, everything else cache hits.
    const auto cacheStats = server.planCacheStats();
    EXPECT_EQ(cacheStats.misses, 2u);
    EXPECT_GT(cacheStats.hitRate(), 0.95);
}

TEST(ServingE2E, PriorityPolicyServesAllPriorities)
{
    ServerConfig cfg;
    cfg.backends = {"ViTCoD", "ViTCoD"};
    cfg.scheduler.policy = SchedulerPolicy::Priority;
    cfg.scheduler.maxBatch = 4;

    Collector col;
    InferenceServer server(cfg, col.callback());
    server.warmup({tinyKey()});

    for (int i = 0; i < 30; ++i)
        server.submit(tinyKey(), /*priority=*/i % 3);
    server.drain();

    ASSERT_EQ(col.responses.size(), 30u);
    std::set<int> prios;
    for (const auto &r : col.responses)
        prios.insert(r.priority);
    EXPECT_EQ(prios, (std::set<int>{0, 1, 2}));
}

TEST(ServingE2E, TunedFrontierPathRetunesTheServerHardware)
{
    // A DSE result file handed to the server via the tuned-config
    // hook must reach the plan cache: plans compile against the
    // frontier's best-latency hardware, not the default.
    dse::ParetoFrontier f;
    dse::DsePoint p;
    p.hw.macLines = 128;
    p.hw.bandwidthGBps = 153.6;
    p.obj = {1e-4, 1e-5, 3.0};
    ASSERT_TRUE(f.insert(p));
    const std::string path =
        test::uniqueTempPath("server_tuned.json");
    f.writeJsonFile(path);

    ServerConfig cfg;
    cfg.backends = {"ViTCoD"};
    cfg.tunedFrontierPath = path;
    InferenceServer server(cfg);
    EXPECT_EQ(server.config().hw.macArray.macLines, 128u);

    PlanKey key;
    key.model = "DeiT-Tiny";
    server.warmup({key});
    server.submit(key);
    server.drain();
    const auto snap = server.snapshot();
    EXPECT_EQ(snap.completed, 1u);
    server.shutdown();

    // The same task on a default server is simulated slower than on
    // the tuned hardware the frontier selected.
    PlanCache tuned(tunedHwConfig(path));
    PlanCache stock;
    EXPECT_LT(tuned.get(key)->simEstimate.seconds,
              stock.get(key)->simEstimate.seconds);
    std::remove(path.c_str());
}

TEST(ServingE2E, ShutdownDrainsPendingWork)
{
    ServerConfig cfg;
    cfg.backends = {"ViTCoD"};
    cfg.scheduler.policy = SchedulerPolicy::SizeBucketed;
    cfg.scheduler.maxBatch = 64;      // never fills
    cfg.scheduler.maxWaitSeconds = 60; // never expires

    Collector col;
    InferenceServer server(cfg, col.callback());
    server.warmup({tinyKey()});
    for (int i = 0; i < 10; ++i)
        server.submit(tinyKey());

    // Requests are parked in a bucket; shutdown must flush them.
    server.shutdown();
    EXPECT_EQ(col.responses.size(), 10u);
}

TEST(ServingE2E, ContinuousPolicyServesEverythingOnce)
{
    PlanKey deit = tinyKey();
    PlanKey levit;
    levit.model = "LeViT-128";
    levit.sparsity = 0.8;

    ServerConfig cfg;
    cfg.backends = {"ViTCoD", "ViTCoD"};
    cfg.scheduler.policy = SchedulerPolicy::Continuous;
    cfg.scheduler.maxBatch = 4;
    cfg.scheduler.maxWaitSeconds = 1e-3;

    Collector col;
    InferenceServer server(cfg, col.callback());
    server.warmup({deit, levit});

    constexpr size_t kRequests = 120;
    std::set<uint64_t> ids;
    for (size_t i = 0; i < kRequests; ++i)
        ids.insert(server.submit(i % 3 ? deit : levit));
    server.drain();

    // Exactly-once completion with valid ids (no shed: admission is
    // off by default).
    ASSERT_EQ(col.responses.size(), kRequests);
    EXPECT_EQ(ids.size(), kRequests);
    EXPECT_FALSE(ids.count(0));
    std::set<uint64_t> doneIds;
    for (const auto &r : col.responses) {
        doneIds.insert(r.id);
        EXPECT_LE(r.batchSize, 4u);
        EXPECT_FALSE(r.deprioritized);
        EXPECT_GT(r.predictedServiceSeconds, 0.0);
    }
    EXPECT_EQ(doneIds, ids);

    const auto snap = server.snapshot();
    EXPECT_EQ(snap.completed, kRequests);
    EXPECT_EQ(snap.shed, 0u);
    EXPECT_EQ(snap.admitted, kRequests);
}

TEST(ServingE2E, AdmissionShedsUnderRealtimeOverload)
{
    const PlanKey key = tinyKey();
    const double service = PlanCache().get(key)->simEstimate.seconds;
    ASSERT_GT(service, 0.0);

    // Pace workers so one request occupies ~1ms of wall time, then
    // submit a tight-loop burst far beyond what 2 workers can absorb
    // within the SLO: admission must shed, and every accounting path
    // (submit()==0, snapshot counters, traffic report) must agree.
    ServerConfig cfg;
    cfg.backends = {"ViTCoD", "ViTCoD"};
    cfg.scheduler.policy = SchedulerPolicy::Continuous;
    cfg.scheduler.maxBatch = 8;
    cfg.realtimeFactor = 1e-3 / service;
    cfg.admission.enabled = true;
    cfg.admission.defaultSloSeconds = 10 * service;
    cfg.admission.shedMultiplier = 2.0;

    Collector col;
    InferenceServer server(cfg, col.callback());
    server.warmup({key});

    constexpr size_t kRequests = 500;
    size_t shed = 0;
    for (size_t i = 0; i < kRequests; ++i)
        if (server.submit(key) == 0)
            ++shed;
    server.drain();

    // The SLO admits ~20 predicted-exit requests per worker; a
    // 500-deep instantaneous burst must mostly shed.
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(col.responses.size(), kRequests - shed);

    const auto snap = server.snapshot();
    EXPECT_EQ(snap.shed, shed);
    EXPECT_EQ(snap.admitted + snap.shed, kRequests);
    EXPECT_EQ(snap.completed, kRequests - shed);
    EXPECT_NEAR(snap.shedRate,
                static_cast<double>(shed) / kRequests, 1e-12);

    // Deprioritized (grace-band) requests carry the demoted
    // priority and the flag end to end.
    for (const auto &r : col.responses) {
        if (r.deprioritized)
            EXPECT_EQ(r.priority, -cfg.admission.deprioritizeDelta);
    }

    // Backlog fully retired once everything admitted completed.
    EXPECT_EQ(server.admission().inflight(), 0u);
    EXPECT_NEAR(server.admission().backlogSeconds(), 0.0, 1e-9);
}

TEST(ServingE2E, TrafficReportSeparatesOfferedAndCompletionRates)
{
    ServerConfig cfg;
    cfg.backends = {"ViTCoD"};
    cfg.scheduler.policy = SchedulerPolicy::Continuous;

    InferenceServer server(cfg);

    TrafficConfig traffic;
    traffic.ratePerSec = 1e6; // burst mode: no pacing sleeps
    traffic.requests = 100;
    traffic.mix = {tinyKey()};
    traffic.openLoop = false;

    const TrafficReport rep = runTraffic(server, traffic);
    EXPECT_EQ(rep.submitted, 100u);
    EXPECT_EQ(rep.shed, 0u);
    EXPECT_DOUBLE_EQ(rep.shedRate, 0.0);

    // The submit window excludes drain time, so offered >= completion
    // and both are self-consistent with their own denominators.
    EXPECT_GT(rep.submitWindowSeconds, 0.0);
    EXPECT_GE(rep.durationSeconds, rep.submitWindowSeconds);
    EXPECT_NEAR(rep.offeredRps, 100.0 / rep.submitWindowSeconds,
                1e-6);
    EXPECT_NEAR(rep.completionRps, 100.0 / rep.durationSeconds,
                1e-6);
    EXPECT_GE(rep.offeredRps, rep.completionRps);
    EXPECT_DOUBLE_EQ(rep.achievedRps, rep.completionRps);
}

} // namespace
} // namespace vitcod::serve
