/**
 * @file
 * AdmissionController units (decision ladder, backlog accounting,
 * per-plan SLOs) plus the headline acceptance test of the SLO
 * serving story: on the *same* deterministic bursty trace at 2x the
 * pool's capacity, a no-admission fifo server grows its queue
 * without bound while the SLO-admission server sheds the excess at
 * the door and keeps admitted queue-exit latency within the SLO
 * band. The overload scenario is replayed as a discrete-event
 * simulation over the real BatchScheduler + AdmissionController with
 * an injected clock, so the result is exact and bit-reproducible.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "serve/admission.h"
#include "serve/batch_scheduler.h"
#include "serve/load_gen.h"

namespace vitcod::serve {
namespace {

AdmissionConfig
ladderCfg(double slo, double mult = 2.0)
{
    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.defaultSloSeconds = slo;
    cfg.shedMultiplier = mult;
    return cfg;
}

TEST(Admission, DisabledAdmitsEverythingButTracksBacklog)
{
    AdmissionController ac(AdmissionConfig{}, /*workers=*/1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(ac.decide("p", 1.0), AdmissionDecision::Admit);
    EXPECT_DOUBLE_EQ(ac.backlogSeconds(), 100.0);
    EXPECT_EQ(ac.inflight(), 100u);
}

TEST(Admission, LadderAdmitDeprioritizeShed)
{
    // workers=1, service=0.25 (exact in binary), slo=1, band to 2:
    // predicted exit after k admitted = 0.25 * (k + 1).
    AdmissionController ac(ladderCfg(1.0), 1);
    for (int i = 0; i < 4; ++i) // exits 0.25 .. 1.0
        EXPECT_EQ(ac.decide("p", 0.25), AdmissionDecision::Admit);
    for (int i = 0; i < 4; ++i) // exits 1.25 .. 2.0
        EXPECT_EQ(ac.decide("p", 0.25),
                  AdmissionDecision::Deprioritize);
    // exit 2.25 > slo * mult; shed does not charge the backlog, so
    // it keeps shedding.
    EXPECT_EQ(ac.decide("p", 0.25), AdmissionDecision::Shed);
    EXPECT_EQ(ac.decide("p", 0.25), AdmissionDecision::Shed);
    EXPECT_DOUBLE_EQ(ac.backlogSeconds(), 2.0);
    EXPECT_EQ(ac.inflight(), 8u);
}

TEST(Admission, ReleaseRestoresAdmission)
{
    AdmissionController ac(ladderCfg(1.0, /*mult=*/1.0), 1);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(ac.decide("p", 0.25), AdmissionDecision::Admit);
    EXPECT_EQ(ac.decide("p", 0.25), AdmissionDecision::Shed);

    ac.release(0.25); // one completion frees one slot exactly
    EXPECT_EQ(ac.decide("p", 0.25), AdmissionDecision::Admit);
    EXPECT_EQ(ac.decide("p", 0.25), AdmissionDecision::Shed);
    EXPECT_EQ(ac.inflight(), 4u); // 4 admits + 1 release + 1 admit
}

TEST(Admission, BacklogIsDividedAcrossWorkers)
{
    // Same backlog, 4 workers: predicted exit = backlog/4 + service.
    AdmissionController ac(ladderCfg(1.0, 1.0), 4);
    for (int i = 0; i < 13; ++i) // exit = 0.25*i/4 + 0.25 <= 1
        EXPECT_EQ(ac.decide("p", 0.25), AdmissionDecision::Admit)
            << "request " << i;
    EXPECT_EQ(ac.decide("p", 0.25), AdmissionDecision::Shed);
}

TEST(Admission, PerPlanSloOverridesDefault)
{
    AdmissionConfig cfg = ladderCfg(10.0, 1.0);
    cfg.planSloSeconds["gold"] = 0.5;
    AdmissionController ac(cfg, 1);
    EXPECT_DOUBLE_EQ(ac.sloFor("gold"), 0.5);
    EXPECT_DOUBLE_EQ(ac.sloFor("anything-else"), 10.0);

    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(ac.decide("bulk", 0.25), AdmissionDecision::Admit);
    // backlog=1.0: bulk (slo 10) still admits, gold (slo 0.5) sheds.
    EXPECT_EQ(ac.decide("gold", 0.25), AdmissionDecision::Shed);
    EXPECT_EQ(ac.decide("bulk", 0.25), AdmissionDecision::Admit);
}

TEST(Admission, NonPositiveSloAdmitsUnconditionally)
{
    AdmissionController ac(ladderCfg(0.0), 1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(ac.decide("p", 1.0), AdmissionDecision::Admit);
    EXPECT_DOUBLE_EQ(ac.backlogSeconds(), 1000.0);
}

TEST(Admission, ReleaseClampsAtZero)
{
    AdmissionController ac(AdmissionConfig{}, 1);
    ac.decide("p", 0.1);
    ac.release(0.1);
    ac.release(0.1); // spurious; must not go negative
    EXPECT_GE(ac.backlogSeconds(), 0.0);
}

TEST(Admission, DecisionNames)
{
    EXPECT_STREQ(admissionDecisionName(AdmissionDecision::Admit),
                 "admit");
    EXPECT_STREQ(
        admissionDecisionName(AdmissionDecision::Deprioritize),
        "deprioritize");
    EXPECT_STREQ(admissionDecisionName(AdmissionDecision::Shed),
                 "shed");
}

// ---------------------------------------------------------------------
// Acceptance: bursty 2x overload, fifo vs SLO admission, replayed as
// a deterministic discrete-event simulation.
// ---------------------------------------------------------------------

constexpr double kService = 1e-3; //!< per-request service seconds
constexpr double kSlo = 20e-3;    //!< 20 service times
constexpr double kShedMult = 2.0;
constexpr size_t kMaxBatch = 8;

struct SimOutcome
{
    uint64_t admitted = 0;
    uint64_t deprioritized = 0;
    uint64_t shed = 0;
    size_t maxDepth = 0;
    size_t served = 0;  //!< requests that left through a batch
    double exitP99 = 0; //!< p99 queue-exit latency of admitted
    double exitSum = 0; //!< determinism fingerprint

    bool operator==(const SimOutcome &o) const
    {
        return admitted == o.admitted &&
               deprioritized == o.deprioritized && shed == o.shed &&
               maxDepth == o.maxDepth && served == o.served &&
               exitP99 == o.exitP99 && exitSum == o.exitSum;
    }
};

/**
 * Replay @p arrivals through the real scheduler (+ optional
 * admission) with one simulated worker of fixed per-request service
 * time. Single-threaded and clock-injected: every quantity is a pure
 * function of the trace.
 */
SimOutcome
replayOverload(const std::vector<double> &arrivals, bool useSlo)
{
    auto now = std::make_shared<double>(0.0);
    SchedulerConfig sc;
    sc.policy = useSlo ? SchedulerPolicy::Continuous
                       : SchedulerPolicy::Fifo;
    sc.maxBatch = kMaxBatch;
    sc.maxWaitSeconds = 5e-3;
    sc.clock = [now] { return *now; };
    BatchScheduler sched(sc);

    AdmissionController admission(
        useSlo ? ladderCfg(kSlo, kShedMult) : AdmissionConfig{}, 1);

    PlanKey key;
    key.model = "M";

    SimOutcome out;
    std::vector<double> exits;
    double workerFree = 0;
    std::deque<double> completions; // nondecreasing (single worker)

    auto serveOne = [&]() -> bool {
        *now = workerFree;
        auto b = sched.nextBatch();
        if (!b)
            return false;
        // All members arrived at or before "now"; an idle worker
        // starts at the latest member arrival, a busy one when it
        // freed.
        double start = workerFree;
        for (const auto &r : b->requests)
            start = std::max(start, r.submitSeconds);
        const double done =
            start +
            static_cast<double>(b->requests.size()) * kService;
        for (const auto &r : b->requests) {
            exits.push_back(done - r.submitSeconds);
            completions.push_back(done);
        }
        workerFree = done;
        return true;
    };

    for (const double t : arrivals) {
        while (workerFree <= t && serveOne())
            ;
        while (!completions.empty() && completions.front() <= t) {
            admission.release(kService);
            completions.pop_front();
        }
        *now = t;
        const AdmissionDecision d =
            admission.decide(key.str(), kService);
        switch (d) {
        case AdmissionDecision::Shed: ++out.shed; continue;
        case AdmissionDecision::Deprioritize:
            ++out.deprioritized;
            [[fallthrough]];
        case AdmissionDecision::Admit: ++out.admitted; break;
        }
        InferenceRequest req;
        req.id = out.admitted;
        req.key = key;
        sched.submit(std::move(req));
        out.maxDepth = std::max(out.maxDepth, sched.depth());
    }
    while (serveOne()) // drain
        ;

    out.served = exits.size();
    for (double e : exits)
        out.exitSum += e;
    if (!exits.empty()) {
        const size_t i99 = (exits.size() * 99) / 100;
        std::nth_element(exits.begin(), exits.begin() + i99,
                         exits.end());
        out.exitP99 = exits[i99];
    }
    return out;
}

TEST(AdmissionOverload, SloShedsAndBoundsLatencyWhereFifoDiverges)
{
    // 2x the worker's 1/kService capacity, bursty: the same trace
    // shape the soak harness offers (bench_serving --soak), scaled
    // down.
    TrafficConfig cfg;
    cfg.process = ArrivalProcess::MarkovOnOff;
    cfg.ratePerSec = 2.0 / kService;
    cfg.burstRateMultiplier = 8.0;
    cfg.meanBurstSeconds = 0.05;
    cfg.meanIdleSeconds = 0.20;
    cfg.requests = 20000;
    cfg.seed = 42;
    const std::vector<double> arrivals = generateArrivalTimes(cfg);
    ASSERT_EQ(arrivals.size(), cfg.requests);

    const SimOutcome fifo = replayOverload(arrivals, false);
    const SimOutcome slo = replayOverload(arrivals, true);
    EXPECT_EQ(fifo.served, fifo.admitted);
    EXPECT_EQ(slo.served, slo.admitted);

    // Fifo admits everything and its queue diverges: ~half the
    // offered work is still waiting when arrivals stop.
    EXPECT_EQ(fifo.shed, 0u);
    EXPECT_EQ(fifo.admitted, cfg.requests);
    EXPECT_GT(fifo.maxDepth, 2000u);

    // SLO admission sheds a meaningful fraction at the door...
    EXPECT_GT(slo.shed, 0u);
    const double shedRate =
        static_cast<double>(slo.shed) /
        static_cast<double>(slo.admitted + slo.shed);
    EXPECT_GT(shedRate, 0.15);
    EXPECT_LT(shedRate, 0.70);

    // ...which keeps the queue bounded by the SLO band (about
    // slo * mult / service predicted-exit requests plus batching
    // slack), orders of magnitude below fifo...
    EXPECT_LE(slo.maxDepth, 100u);
    EXPECT_GT(fifo.maxDepth, 10 * slo.maxDepth);

    // ...and admitted queue-exit latency inside the grace band
    // (small overshoot allowed for prediction error); fifo's p99 is
    // the divergent drain tail.
    EXPECT_LE(slo.exitP99, kSlo * kShedMult * 1.5);
    EXPECT_GT(fifo.exitP99, 10 * kSlo);
}

TEST(AdmissionOverload, ReplayIsDeterministic)
{
    TrafficConfig cfg;
    cfg.process = ArrivalProcess::MarkovOnOff;
    cfg.ratePerSec = 2.0 / kService;
    cfg.requests = 5000;
    cfg.seed = 7;
    const std::vector<double> a1 = generateArrivalTimes(cfg);
    const std::vector<double> a2 = generateArrivalTimes(cfg);
    ASSERT_EQ(a1, a2);

    const SimOutcome r1 = replayOverload(a1, true);
    const SimOutcome r2 = replayOverload(a2, true);
    EXPECT_TRUE(r1 == r2);
    EXPECT_GT(r1.shed, 0u);
}

} // namespace
} // namespace vitcod::serve
