/**
 * @file
 * Arrival-process generation: determinism (a (seed, config) pair is
 * one trace), monotonicity, long-run mean-rate calibration across
 * all three process families, markov burstiness (inter-arrival CV^2
 * well above Poisson's 1), and the diurnal rate swing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "serve/load_gen.h"

namespace vitcod::serve {
namespace {

TrafficConfig
baseCfg(ArrivalProcess p, size_t requests, uint64_t seed = 1)
{
    TrafficConfig cfg;
    cfg.process = p;
    cfg.ratePerSec = 1000.0;
    cfg.requests = requests;
    cfg.seed = seed;
    return cfg;
}

double
interArrivalCv2(const std::vector<double> &t)
{
    double mean = 0, m2 = 0;
    const size_t n = t.size() - 1;
    for (size_t i = 1; i < t.size(); ++i)
        mean += t[i] - t[i - 1];
    mean /= static_cast<double>(n);
    for (size_t i = 1; i < t.size(); ++i) {
        const double d = (t[i] - t[i - 1]) - mean;
        m2 += d * d;
    }
    return m2 / static_cast<double>(n) / (mean * mean);
}

TEST(LoadGen, TracesAreDeterministicAndMonotonic)
{
    for (const auto p :
         {ArrivalProcess::Poisson, ArrivalProcess::MarkovOnOff,
          ArrivalProcess::Diurnal}) {
        const TrafficConfig cfg = baseCfg(p, 5000, 17);
        const auto a = generateArrivalTimes(cfg);
        const auto b = generateArrivalTimes(cfg);
        ASSERT_EQ(a.size(), cfg.requests)
            << arrivalProcessName(p);
        EXPECT_EQ(a, b) << arrivalProcessName(p);
        for (size_t i = 1; i < a.size(); ++i)
            ASSERT_LE(a[i - 1], a[i]) << arrivalProcessName(p);
        EXPECT_GT(a.front(), 0.0);
    }
}

TEST(LoadGen, SeedChangesTheTrace)
{
    const auto a =
        generateArrivalTimes(baseCfg(ArrivalProcess::Poisson, 100, 1));
    const auto b =
        generateArrivalTimes(baseCfg(ArrivalProcess::Poisson, 100, 2));
    EXPECT_NE(a, b);
}

TEST(LoadGen, LongRunMeanRateMatchesConfigForAllProcesses)
{
    // Every family is calibrated so the duty-weighted long-run mean
    // is ratePerSec; over ~50s of trace the realized rate must land
    // near it (markov has the widest variance: ~200 dwell cycles).
    constexpr size_t kN = 50000;
    for (const auto p :
         {ArrivalProcess::Poisson, ArrivalProcess::MarkovOnOff,
          ArrivalProcess::Diurnal}) {
        const auto t = generateArrivalTimes(baseCfg(p, kN, 3));
        const double realized =
            static_cast<double>(kN) / t.back();
        EXPECT_NEAR(realized, 1000.0, 150.0)
            << arrivalProcessName(p);
    }
}

TEST(LoadGen, MarkovIsBurstierThanPoisson)
{
    const auto poisson = generateArrivalTimes(
        baseCfg(ArrivalProcess::Poisson, 50000, 5));
    const auto markov = generateArrivalTimes(
        baseCfg(ArrivalProcess::MarkovOnOff, 50000, 5));

    // Exponential inter-arrivals have CV^2 = 1; the two-state MMPP
    // mixes a fast and a slow exponential, pushing CV^2 well past 1.
    EXPECT_NEAR(interArrivalCv2(poisson), 1.0, 0.1);
    EXPECT_GT(interArrivalCv2(markov), 1.5);
}

TEST(LoadGen, DiurnalRateFollowsTheDayCurve)
{
    TrafficConfig cfg = baseCfg(ArrivalProcess::Diurnal, 20000, 9);
    cfg.diurnalPeriodSeconds = 10.0;
    cfg.diurnalAmplitude = 0.8;
    const auto t = generateArrivalTimes(cfg);

    // First half-period rides the sine peak, second the trough:
    // expected count ratio (1 + 2a/pi) / (1 - 2a/pi) ~ 3.1 at
    // a = 0.8. Demand well above 1 to keep the test robust.
    size_t peak = 0, trough = 0;
    for (const double x : t) {
        const double phase =
            std::fmod(x, cfg.diurnalPeriodSeconds);
        if (phase < cfg.diurnalPeriodSeconds / 2)
            ++peak;
        else
            ++trough;
    }
    ASSERT_GT(trough, 0u);
    EXPECT_GT(static_cast<double>(peak) /
                  static_cast<double>(trough),
              1.5);
}

TEST(LoadGen, ProcessNamesRoundTrip)
{
    EXPECT_EQ(arrivalProcessByName("poisson"),
              ArrivalProcess::Poisson);
    EXPECT_EQ(arrivalProcessByName("markov"),
              ArrivalProcess::MarkovOnOff);
    EXPECT_EQ(arrivalProcessByName("diurnal"),
              ArrivalProcess::Diurnal);
    for (const auto p :
         {ArrivalProcess::Poisson, ArrivalProcess::MarkovOnOff,
          ArrivalProcess::Diurnal})
        EXPECT_EQ(arrivalProcessByName(arrivalProcessName(p)), p);
}

} // namespace
} // namespace vitcod::serve
