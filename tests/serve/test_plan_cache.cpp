/**
 * @file
 * PlanCache: hit/miss accounting, plan sharing, LRU eviction, and
 * single-compilation under concurrent first requests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "dse/pareto.h"
#include "serve/plan_cache.h"
#include "support/temp_path.h"

namespace vitcod::serve {
namespace {

PlanKey
tinyKey(double sparsity)
{
    PlanKey k;
    k.model = "DeiT-Tiny";
    k.sparsity = sparsity;
    k.useAe = true;
    k.endToEnd = false;
    return k;
}

TEST(PlanCache, MissThenHitSharesThePlan)
{
    PlanCache cache;
    const auto a = cache.get(tinyKey(0.9));
    const auto b = cache.get(tinyKey(0.9));
    EXPECT_EQ(a.get(), b.get());

    const auto st = cache.stats();
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.evictions, 0u);
    EXPECT_DOUBLE_EQ(st.hitRate(), 0.5);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, CompiledPlanIsPopulated)
{
    PlanCache cache;
    const auto cp = cache.get(tinyKey(0.9));
    EXPECT_FALSE(cp->plan.heads.empty());
    EXPECT_FALSE(cp->program.code.empty());
    EXPECT_GT(cp->weightLoadSeconds, 0.0);
    EXPECT_GT(cache.stats().compileWallSeconds, 0.0);
}

TEST(PlanCache, DistinctKeysBuildDistinctPlans)
{
    PlanCache cache;
    const auto a = cache.get(tinyKey(0.7));
    const auto b = cache.get(tinyKey(0.9));
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCache, EvictsLeastRecentlyUsedAtCapacity)
{
    PlanCache cache({}, /*capacity=*/2);
    cache.get(tinyKey(0.5)); // A
    cache.get(tinyKey(0.6)); // B
    cache.get(tinyKey(0.5)); // A again -> B is now LRU
    cache.get(tinyKey(0.7)); // C -> evicts B

    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);

    // B was evicted: a fresh lookup misses (and displaces A, the
    // least recently used of the residents {C, A}).
    cache.get(tinyKey(0.6));
    EXPECT_EQ(cache.stats().misses, 4u);
    EXPECT_EQ(cache.stats().evictions, 2u);
    // C was most recently used before B came back: it survived.
    cache.get(tinyKey(0.7));
    EXPECT_EQ(cache.stats().misses, 4u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCache, ConcurrentFirstRequestsCompileOnce)
{
    PlanCache cache;
    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const CompiledPlan>> got(kThreads);

    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back(
            [&, i] { got[i] = cache.get(tinyKey(0.9)); });
    for (auto &t : threads)
        t.join();

    for (int i = 1; i < kThreads; ++i)
        EXPECT_EQ(got[0].get(), got[i].get());

    const auto st = cache.stats();
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(PlanCache, CompiledPlanCarriesScheduleAndSimEstimate)
{
    PlanCache cache;
    const auto cp = cache.get(tinyKey(0.9));

    // The schedule is the single compilation artifact: one layer
    // entry per block, one head schedule (with a runtime layout)
    // per head, and the same MAC totals the instruction stream and
    // the simulator report.
    ASSERT_EQ(cp->schedule.layers.size(),
              cp->plan.model.totalLayers());
    for (const auto &ls : cp->schedule.layers) {
        ASSERT_EQ(ls.heads.size(), 3u);
        for (const auto &hs : ls.heads)
            EXPECT_EQ(hs.layout.rowPtr.size(), hs.tokens + 1);
    }

    // The cached estimate is the interpreter's own cost of the
    // cached program — schedule-derived, cycle-for-cycle.
    const accel::RunStats executed =
        accel::Interpreter(cache.hwConfig()).execute(cp->program);
    EXPECT_EQ(cp->simEstimate.cycles, executed.cycles);
    EXPECT_EQ(cp->simEstimate.macs, executed.macs);
    EXPECT_GT(cp->simEstimate.seconds, 0.0);
    EXPECT_GT(cp->simEstimate.energyJoules(), 0.0);
}

TEST(PlanCache, WeightBytesGrowWithModelSize)
{
    const auto tiny =
        modelWeightBytes(model::modelByName("DeiT-Tiny"), 2);
    const auto small =
        modelWeightBytes(model::modelByName("DeiT-Small"), 2);
    EXPECT_GT(tiny, 0u);
    EXPECT_GT(small, tiny);
}

TEST(PlanCache, TunedConfigHookPricesPlansOnTunedHardware)
{
    // Write a one-point DSE frontier and let the hook apply its
    // best-latency point onto the default hardware config.
    dse::ParetoFrontier f;
    f.algorithm = "exhaustive";
    f.evaluated = 1;
    dse::DsePoint p;
    p.hw.macLines = 128;
    p.hw.sBufferBytes = 32 * 1024;
    p.hw.bandwidthGBps = 153.6;
    p.obj = {1e-4, 1e-5, 2.5};
    ASSERT_TRUE(f.insert(p));
    const std::string path =
        test::uniqueTempPath("tuned_frontier.json");
    f.writeJsonFile(path);

    const accel::ViTCoDConfig hw = tunedHwConfig(path);
    EXPECT_EQ(hw.macArray.macLines, 128u);
    EXPECT_EQ(hw.sBufferBytes, 32u * 1024u);
    EXPECT_DOUBLE_EQ(hw.dram.bandwidthGBps, 153.6);
    // Non-swept knobs keep their base values.
    EXPECT_EQ(hw.qkvBufBytes, accel::ViTCoDConfig{}.qkvBufBytes);

    // A cache on the tuned hardware prices the same task cheaper
    // than the default (the tuned point has more lines + bandwidth).
    PlanCache tuned(hw);
    PlanCache stock;
    const auto cp_tuned = tuned.get(tinyKey(0.9));
    const auto cp_stock = stock.get(tinyKey(0.9));
    EXPECT_EQ(cp_tuned->schedule.params.macLines, 128u);
    EXPECT_LT(cp_tuned->simEstimate.seconds,
              cp_stock->simEstimate.seconds);

    std::remove(path.c_str());
}

} // namespace
} // namespace vitcod::serve
