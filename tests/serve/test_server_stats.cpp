/**
 * @file
 * ServerStats: exact percentiles, per-backend counters, utilization
 * math, plan-latency normalization, and concurrent recording (run
 * under TSan in CI).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "serve/server_stats.h"

namespace vitcod::serve {
namespace {

InferenceResponse
respWith(double wall, double queue, double sim)
{
    InferenceResponse r;
    r.wallLatencySeconds = wall;
    r.queueSeconds = queue;
    r.simSeconds = sim;
    return r;
}

TEST(ServerStats, EmptySnapshotIsZero)
{
    ServerStats st;
    const auto s = st.snapshot(1.0);
    EXPECT_EQ(s.completed, 0u);
    EXPECT_DOUBLE_EQ(s.throughputRps, 0.0);
    EXPECT_DOUBLE_EQ(s.wallP99, 0.0);
}

TEST(ServerStats, ExactPercentilesOfKnownSamples)
{
    ServerStats st;
    for (int i = 1; i <= 100; ++i)
        st.recordResponse(respWith(i * 1e-3, 0.0, 0.0));

    const auto s = st.snapshot(10.0);
    EXPECT_EQ(s.completed, 100u);
    EXPECT_NEAR(s.wallP50, 0.050, 1e-12);
    EXPECT_NEAR(s.wallP95, 0.095, 1e-12);
    EXPECT_NEAR(s.wallP99, 0.099, 1e-12);
    EXPECT_NEAR(s.wallMax, 0.100, 1e-12);
    EXPECT_NEAR(s.wallMean, 0.0505, 1e-12);
    EXPECT_DOUBLE_EQ(s.throughputRps, 10.0);
}

TEST(ServerStats, SingleSamplePercentiles)
{
    ServerStats st;
    st.recordResponse(respWith(0.25, 0.125, 0.5));
    const auto s = st.snapshot(1.0);
    EXPECT_DOUBLE_EQ(s.wallP50, 0.25);
    EXPECT_DOUBLE_EQ(s.wallP99, 0.25);
    EXPECT_DOUBLE_EQ(s.queueP95, 0.125);
    EXPECT_DOUBLE_EQ(s.simP50, 0.5);
}

TEST(ServerStats, BackendCountersAndUtilization)
{
    ServerStats st;
    st.registerBackend(0, "ViTCoD");
    st.registerBackend(1, "CPU");

    st.recordBatch(/*worker=*/0, /*batch_size=*/4,
                   /*sim_seconds=*/0.2, /*switch_seconds=*/0.05,
                   /*switched=*/true, /*wall_seconds=*/0.01,
                   /*busy_ticks=*/1000, /*energy_joules=*/2.0);
    st.recordBatch(0, 2, 0.1, 0.0, false, 0.01, 1500, 1.0);
    st.recordBatch(1, 1, 0.4, 0.0, false, 0.02, 400, 4.0);

    const auto s = st.snapshot(/*elapsed=*/1.0);
    ASSERT_EQ(s.backends.size(), 2u);

    const auto &v = s.backends[0];
    EXPECT_EQ(v.name, "ViTCoD");
    EXPECT_EQ(v.batches, 2u);
    EXPECT_EQ(v.requests, 6u);
    EXPECT_EQ(v.planSwitches, 1u);
    EXPECT_NEAR(v.busySimSeconds, 0.3, 1e-12);
    EXPECT_NEAR(v.switchSimSeconds, 0.05, 1e-12);
    EXPECT_EQ(v.busyTicks, 1500u);
    EXPECT_NEAR(v.simUtilization, 0.35, 1e-12);
    EXPECT_NEAR(v.wallUtilization, 0.02, 1e-12);

    EXPECT_NEAR(s.meanBatchSize, (4 + 2 + 1) / 3.0, 1e-12);
    EXPECT_NEAR(s.totalEnergyJoules, 7.0, 1e-12);
}

TEST(ServerStats, QueueDepthSamples)
{
    ServerStats st;
    st.sampleQueueDepth(2);
    st.sampleQueueDepth(4);
    st.sampleQueueDepth(9);
    const auto s = st.snapshot(1.0);
    EXPECT_NEAR(s.meanQueueDepth, 5.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.maxQueueDepth, 9.0);
}

TEST(ServerStats, PredictedVsMeasuredPerPlan)
{
    ServerStats st;
    // Plan A: prediction 0.010s, two batches measuring 0.012/0.008.
    st.recordPlanBatch("A", 0.010, 0.012, 2);
    st.recordPlanBatch("A", 0.010, 0.008, 2);
    // Plan B: prediction matches measurement exactly (a simulator
    // backend replaying the schedule's own cost).
    st.recordPlanBatch("B", 0.020, 0.020, 3);

    const auto s = st.snapshot(1.0);
    ASSERT_EQ(s.plans.size(), 2u);
    const auto &a = s.plans[0];
    EXPECT_EQ(a.key, "A");
    EXPECT_DOUBLE_EQ(a.predictedSeconds, 0.010);
    EXPECT_EQ(a.requests, 4u);
    EXPECT_NEAR(a.measuredMeanSeconds, 0.010, 1e-12);
    EXPECT_NEAR(a.ratio(), 1.0, 1e-9);

    const auto &b = s.plans[1];
    EXPECT_EQ(b.key, "B");
    EXPECT_EQ(b.requests, 3u);
    EXPECT_NEAR(b.ratio(), 1.0, 1e-12);
}

TEST(ServerStats, PlanLatencyRatioHandlesZeroPrediction)
{
    StatsSnapshot::PlanLatency pl;
    pl.measuredMeanSeconds = 1.0;
    EXPECT_DOUBLE_EQ(pl.ratio(), 0.0);
}

TEST(ServerStats, PlanPredictionIsRequestWeightedMean)
{
    // Both sides of the ratio use the same normalization: a
    // request-weighted mean across batches. A plan whose prediction
    // changes between batches (e.g. after a re-compile) must not
    // report only the last batch's prediction.
    ServerStats st;
    st.recordPlanBatch("A", /*predicted=*/0.010, /*measured=*/0.010,
                       /*requests=*/1);
    st.recordPlanBatch("A", /*predicted=*/0.040, /*measured=*/0.040,
                       /*requests=*/3);

    const auto s = st.snapshot(1.0);
    ASSERT_EQ(s.plans.size(), 1u);
    const auto &a = s.plans[0];
    EXPECT_EQ(a.requests, 4u);
    // (0.010*1 + 0.040*3) / 4, not 0.040.
    EXPECT_NEAR(a.predictedSeconds, 0.0325, 1e-12);
    EXPECT_NEAR(a.measuredMeanSeconds, 0.0325, 1e-12);
    EXPECT_NEAR(a.ratio(), 1.0, 1e-12);
}

TEST(ServerStats, ZeroPredictionPlansStayFinite)
{
    // A plan priced at zero (degenerate schedule) must not produce
    // NaN/inf anywhere in the snapshot.
    ServerStats st;
    st.recordPlanBatch("Z", 0.0, 0.005, 2);

    const auto s = st.snapshot(1.0);
    ASSERT_EQ(s.plans.size(), 1u);
    EXPECT_DOUBLE_EQ(s.plans[0].predictedSeconds, 0.0);
    EXPECT_NEAR(s.plans[0].measuredMeanSeconds, 0.005, 1e-12);
    EXPECT_DOUBLE_EQ(s.plans[0].ratio(), 0.0);
}

TEST(ServerStats, ZeroRequestPlanBatchIsIgnoredInMeans)
{
    // recordPlanBatch with requests=0 (an empty dispatch) adds no
    // weight; the means stay those of the real batches.
    ServerStats st;
    st.recordPlanBatch("A", 0.010, 0.012, 2);
    st.recordPlanBatch("A", 0.999, 0.999, 0);

    const auto s = st.snapshot(1.0);
    ASSERT_EQ(s.plans.size(), 1u);
    EXPECT_EQ(s.plans[0].requests, 2u);
    EXPECT_NEAR(s.plans[0].predictedSeconds, 0.010, 1e-12);
    EXPECT_NEAR(s.plans[0].measuredMeanSeconds, 0.012, 1e-12);
}

TEST(ServerStats, EmptySnapshotHasNoPlansAndCarriesMetrics)
{
    ServerStats st;
    const auto s = st.snapshot(1.0);
    EXPECT_TRUE(s.plans.empty());
    EXPECT_DOUBLE_EQ(s.meanQueueDepth, 0.0);
    EXPECT_DOUBLE_EQ(s.maxQueueDepth, 0.0);
    // The snapshot embeds the process-wide metrics registry; the
    // field is populated even when this ServerStats saw no traffic.
    for (size_t i = 1; i < s.metrics.counters.size(); ++i)
        EXPECT_LT(s.metrics.counters[i - 1].name,
                  s.metrics.counters[i].name);
}

TEST(ServerStats, PlansAreSortedByKeyAtSnapshot)
{
    // The accumulation map is unordered (O(1) hot path); the
    // snapshot must sort, so JSON/stats output is identical run over
    // run regardless of hash order or insertion order.
    ServerStats st;
    st.recordPlanBatch("b", 0.01, 0.01, 1);
    st.recordPlanBatch("a", 0.01, 0.01, 1);
    st.recordPlanBatch("c", 0.01, 0.01, 1);

    const auto s1 = st.snapshot(1.0);
    ASSERT_EQ(s1.plans.size(), 3u);
    EXPECT_EQ(s1.plans[0].key, "a");
    EXPECT_EQ(s1.plans[1].key, "b");
    EXPECT_EQ(s1.plans[2].key, "c");

    // A second stats object fed in a different order snapshots to
    // the same sequence.
    ServerStats st2;
    st2.recordPlanBatch("c", 0.01, 0.01, 1);
    st2.recordPlanBatch("b", 0.01, 0.01, 1);
    st2.recordPlanBatch("a", 0.01, 0.01, 1);
    const auto s2 = st2.snapshot(1.0);
    ASSERT_EQ(s2.plans.size(), 3u);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(s2.plans[i].key, s1.plans[i].key);
}

TEST(ServerStats, AdmissionCountersAndShedRate)
{
    ServerStats st;
    for (int i = 0; i < 6; ++i)
        st.recordAdmission(AdmissionDecision::Admit);
    for (int i = 0; i < 2; ++i)
        st.recordAdmission(AdmissionDecision::Deprioritize);
    for (int i = 0; i < 2; ++i)
        st.recordAdmission(AdmissionDecision::Shed);

    const auto s = st.snapshot(1.0);
    EXPECT_EQ(s.admitted, 8u); // deprioritized are admitted too
    EXPECT_EQ(s.deprioritized, 2u);
    EXPECT_EQ(s.shed, 2u);
    EXPECT_NEAR(s.shedRate, 0.2, 1e-12);
}

TEST(ServerStats, ShedRateIsZeroWithoutDecisions)
{
    ServerStats st;
    const auto s = st.snapshot(1.0);
    EXPECT_EQ(s.admitted, 0u);
    EXPECT_DOUBLE_EQ(s.shedRate, 0.0);
}

TEST(ServerStats, ConcurrentRecordersAreConsistent)
{
    ServerStats st;
    st.registerBackend(0, "w0");
    st.registerBackend(1, "w1");

    constexpr size_t kThreads = 4;
    constexpr size_t kPerThread = 2000;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (size_t i = 0; i < kPerThread; ++i) {
                st.recordResponse(respWith(1e-3, 1e-4, 1e-3));
                st.recordPlanBatch("P", 0.002, 0.002, 1);
                st.recordBatch(t % 2, 1, 1e-3, 0.0, false, 1e-3, 10,
                               0.01);
                st.sampleQueueDepth(i % 8);
            }
        });
    for (auto &th : threads)
        th.join();

    const auto s = st.snapshot(1.0);
    EXPECT_EQ(s.completed, kThreads * kPerThread);
    ASSERT_EQ(s.plans.size(), 1u);
    EXPECT_EQ(s.plans[0].requests, kThreads * kPerThread);
    EXPECT_NEAR(s.plans[0].ratio(), 1.0, 1e-9);
    EXPECT_EQ(s.backends[0].batches + s.backends[1].batches,
              kThreads * kPerThread);
    EXPECT_NEAR(s.meanQueueDepth, 3.5, 1e-9);
}

} // namespace
} // namespace vitcod::serve
