/**
 * @file
 * The CPUKernel serving backend really executes the sparse-attention
 * kernels: nonzero wall time, MAC accounting derived from the plan's
 * masks, batch scaling, and an end-to-end pass through a server
 * mixing the functional backend with simulated ones.
 */

#include <gtest/gtest.h>

#include "serve/backend.h"
#include "serve/plan_cache.h"
#include "serve/server.h"

namespace vitcod::serve {
namespace {

PlanKey
tinyKey()
{
    PlanKey k;
    k.model = "DeiT-Tiny";
    k.sparsity = 0.9;
    return k;
}

TEST(KernelServeBackend, ExecutesPlanAndAccountsMacs)
{
    PlanCache cache;
    const auto cp = cache.get(tinyKey());

    auto backend = makeServeBackend("CPUKernel", accel::ViTCoDConfig{});
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), "CPUKernel");

    const auto r = backend->runBatch(*cp, 1);
    EXPECT_GT(r.stats.seconds, 0.0);
    EXPECT_GT(r.perRequestSeconds, 0.0);

    // MACs: 2 * nnz * dk summed over every head plan.
    MacOps expected = 0;
    for (const auto &hp : cp->plan.heads) {
        const auto dk = cp->plan.model.stages.front().headDim;
        expected += static_cast<MacOps>(hp.plan.mask.nnz()) * dk * 2;
    }
    EXPECT_EQ(r.stats.macs, expected);
    EXPECT_TRUE(r.switched); // first batch loads weights
}

TEST(KernelServeBackend, EveryBatchReallyExecutes)
{
    PlanCache cache;
    const auto cp = cache.get(tinyKey());
    auto backend = makeServeBackend("CPUKernel", accel::ViTCoDConfig{});

    const auto one = backend->runBatch(*cp, 1);
    const auto four = backend->runBatch(*cp, 4);
    // Second batch: no plan switch, and the kernels ran again — the
    // batch time is 4x a *fresh* measurement, not a replay of the
    // first batch's wall time.
    EXPECT_FALSE(four.switched);
    EXPECT_GT(four.perRequestSeconds, 0.0);
    EXPECT_DOUBLE_EQ(four.stats.seconds, four.perRequestSeconds * 4);
    EXPECT_GT(one.perRequestSeconds, 0.0);
}

TEST(KernelServeBackend, ServesTrafficInMixedPool)
{
    ServerConfig cfg;
    cfg.backends = {"CPUKernel", "ViTCoD"};
    InferenceServer server(cfg);
    server.warmup({tinyKey()});
    for (int i = 0; i < 12; ++i)
        server.submit(tinyKey());
    server.drain();
    const auto snap = server.snapshot();
    EXPECT_EQ(snap.completed, 12u);
    server.shutdown();
}

} // namespace
} // namespace vitcod::serve
