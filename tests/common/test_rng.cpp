/**
 * @file
 * Tests of the deterministic RNG substrate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"

namespace vitcod {
namespace {

TEST(SplitMix64, DeterministicStream)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 256; ++i)
        ASSERT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(5);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBounded)
{
    Rng rng(6);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(8);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.uniformInt(10));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(9);
    const int n = 200000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments)
{
    Rng rng(10);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, PermutationIsBijection)
{
    Rng rng(11);
    const auto perm = rng.permutation(197);
    std::vector<bool> seen(197, false);
    for (uint32_t p : perm) {
        ASSERT_LT(p, 197u);
        ASSERT_FALSE(seen[p]);
        seen[p] = true;
    }
}

TEST(Rng, PermutationNotIdentityForLargeN)
{
    Rng rng(12);
    const auto perm = rng.permutation(100);
    size_t fixed = 0;
    for (uint32_t i = 0; i < 100; ++i)
        fixed += perm[i] == i;
    EXPECT_LT(fixed, 20u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(13);
    Rng child = parent.fork();
    // The child stream should differ from the parent's continuation.
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= parent.nextU64() != child.nextU64();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, ForkDeterministic)
{
    Rng a(14);
    Rng b(14);
    Rng ca = a.fork();
    Rng cb = b.fork();
    for (int i = 0; i < 32; ++i)
        ASSERT_EQ(ca.nextU64(), cb.nextU64());
}

} // namespace
} // namespace vitcod
