/**
 * @file
 * Tests of the unit helpers.
 */

#include <gtest/gtest.h>

#include "common/units.h"

namespace vitcod {
namespace {

TEST(Units, CyclesToSeconds)
{
    // 500M cycles at 0.5 GHz = 1 second.
    EXPECT_DOUBLE_EQ(cyclesToSeconds(500'000'000, 0.5), 1.0);
}

TEST(Units, SecondsToCyclesRoundsUp)
{
    EXPECT_EQ(secondsToCycles(1.0, 0.5), 500'000'000u);
    EXPECT_EQ(secondsToCycles(1e-9, 0.5), 1u); // 0.5 cycles -> 1
}

TEST(Units, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 5), 2u);
    EXPECT_EQ(ceilDiv(11, 5), 3u);
    EXPECT_EQ(ceilDiv(0, 5), 0u);
    EXPECT_EQ(ceilDiv(1, 1), 1u);
}

TEST(Units, RoundUp)
{
    EXPECT_EQ(roundUp(63, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
}

TEST(Units, ByteLiterals)
{
    EXPECT_EQ(128_KiB, 131072u);
    EXPECT_EQ(1_MiB, 1048576u);
    EXPECT_EQ(1_GiB, 1073741824u);
}

TEST(Units, RoundTripCycles)
{
    const Cycles c = 123456;
    EXPECT_EQ(secondsToCycles(cyclesToSeconds(c, 1.0), 1.0), c);
}

} // namespace
} // namespace vitcod
