/**
 * @file
 * Tests of RunningStat and Histogram.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace vitcod {
namespace {

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.geomean(), 0.0);
}

TEST(RunningStat, MeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStat, GeomeanOfPowers)
{
    RunningStat s;
    s.add(1.0);
    s.add(4.0);
    s.add(16.0);
    EXPECT_NEAR(s.geomean(), 4.0, 1e-12);
}

TEST(RunningStat, GeomeanZeroWhenNonPositiveSample)
{
    RunningStat s;
    s.add(3.0);
    s.add(-1.0);
    EXPECT_DOUBLE_EQ(s.geomean(), 0.0);
}

TEST(RunningStat, MinMaxSum)
{
    RunningStat s;
    s.add(3.0);
    s.add(-2.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.min(), -2.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
    EXPECT_DOUBLE_EQ(s.sum(), 11.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_NEAR(s.geomean(), 42.0, 1e-9);
}

TEST(Histogram, BinningBasics)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.9);
    h.add(9.99);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-0.1);
    h.add(1.0); // upper edge counts as overflow
    h.add(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(0.0, 100.0, 10);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLo(5), 50.0);
    EXPECT_DOUBLE_EQ(h.binLo(9), 90.0);
}

TEST(Histogram, MedianOfUniformFill)
{
    Histogram h(0.0, 1.0, 100);
    for (int i = 0; i < 1000; ++i)
        h.add((i + 0.5) / 1000.0);
    EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
    EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, QuantileOfEmptyIsLo)
{
    Histogram h(2.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

} // namespace
} // namespace vitcod
