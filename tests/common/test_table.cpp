/**
 * @file
 * Tests of the bench table printer and formatting helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.h"

namespace vitcod {
namespace {

TEST(Table, AlignsColumnsAndPrintsRule)
{
    Table t({"Model", "Speedup"});
    t.row().cell("DeiT-Base").cellRatio(10.1);
    t.row().cell("LeViT-128").cellRatio(6.8);
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("Model"), std::string::npos);
    EXPECT_NE(out.find("10.1x"), std::string::npos);
    EXPECT_NE(out.find("6.8x"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumericFormatting)
{
    Table t({"a", "b", "c"});
    t.row().cell(3.14159, 3).cell(int64_t{-7}).cell(uint64_t{99});
    std::ostringstream oss;
    t.print(oss);
    EXPECT_NE(oss.str().find("3.142"), std::string::npos);
    EXPECT_NE(oss.str().find("-7"), std::string::npos);
    EXPECT_NE(oss.str().find("99"), std::string::npos);
}

TEST(Table, RowCount)
{
    Table t({"x"});
    EXPECT_EQ(t.rows(), 0u);
    t.row().cell("1");
    t.row().cell("2");
    EXPECT_EQ(t.rows(), 2u);
}

TEST(FormatBytes, Scales)
{
    EXPECT_EQ(formatBytes(512), "512.0 B");
    EXPECT_EQ(formatBytes(320.0 * 1024), "320.0 KiB");
    EXPECT_EQ(formatBytes(1.5 * 1024 * 1024), "1.5 MiB");
}

TEST(FormatOps, Scales)
{
    EXPECT_EQ(formatOps(500), "500.00 OP");
    EXPECT_EQ(formatOps(2.5e9), "2.50 GOP");
}

TEST(PrintBanner, ContainsTitle)
{
    std::ostringstream oss;
    printBanner(oss, "Fig. 15");
    EXPECT_NE(oss.str().find("Fig. 15"), std::string::npos);
}

} // namespace
} // namespace vitcod
