/**
 * @file
 * Explorer tests: exhaustive exactness (every valid grid point is
 * on the frontier or dominated by it), bitwise determinism of all
 * three search algorithms across independent Explorer instances
 * (same seed => identical frontier), the paper's co-design payoff
 * (a config strictly dominating the default accelerator on latency
 * at equal-or-lower area proxy for DeiT-Tiny @ 90% sparsity), and a
 * golden frontier fixture under tests/data/ with the established
 * --update-goldens flow:
 *
 *     dse_test_explorer --update-goldens
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "dse/explorer.h"

namespace vitcod::dse {
namespace {

bool g_update_goldens = false;

std::string
dataDir()
{
#ifdef VITCOD_TEST_DATA_DIR
    return std::string(VITCOD_TEST_DATA_DIR) + "/";
#else
    return "tests/data/";
#endif
}

constexpr const char *kFrontierGolden = "dse_frontier.golden.json";

/** The acceptance workload: DeiT-Tiny at 90% sparsity, AE on. */
std::vector<WorkloadSpec>
tinyBundle()
{
    return {{"DeiT-Tiny", 0.9, true, false, 1.0}};
}

ExplorerConfig
testConfig()
{
    ExplorerConfig ec;
    ec.threads = 4; // pinned per TESTING.md determinism rules
    ec.seed = 7;
    ec.annealChains = 2;
    ec.annealSteps = 40;
    return ec;
}

TEST(Explorer, ExhaustiveFrontierIsExact)
{
    Explorer ex(tinyBundle(), HwConfigSpace::smokeSpace(),
                testConfig());
    const DseResult r = ex.exhaustive();
    const HwConfigSpace &space = ex.space();

    size_t n_valid = 0;
    for (size_t i = 0; i < space.size(); ++i)
        if (space.valid(i))
            ++n_valid;
    EXPECT_EQ(r.evaluated, n_valid);
    EXPECT_EQ(r.frontier.evaluated, n_valid);
    ASSERT_FALSE(r.frontier.points().empty());

    // Every valid grid point is either on the frontier (equal
    // objectives) or dominated by a frontier point; frontier points
    // carry exactly the objectives a fresh evaluation reproduces.
    for (size_t i = 0; i < space.size(); ++i) {
        if (!space.valid(i))
            continue;
        const DsePoint p = ex.evaluateIndex(i);
        bool on_frontier = false;
        for (const DsePoint &q : r.frontier.points())
            if (q.obj == p.obj)
                on_frontier = true;
        EXPECT_TRUE(on_frontier || !r.frontier.nonDominated(p.obj))
            << "point " << i
            << " neither on the frontier nor dominated";
    }
    for (const DsePoint &q : r.frontier.points())
        EXPECT_EQ(ex.evaluateIndex(q.index).obj, q.obj);
}

TEST(Explorer, SameSeedSameFrontierAcrossInstances)
{
    const auto run = [](const DseResult &r) { return r.frontier; };

    Explorer a(tinyBundle(), HwConfigSpace::smokeSpace(),
               testConfig());
    Explorer b(tinyBundle(), HwConfigSpace::smokeSpace(),
               testConfig());

    EXPECT_EQ(a.baseline(), b.baseline());
    EXPECT_EQ(run(a.exhaustive()), run(b.exhaustive()));
    EXPECT_EQ(run(a.coordinateDescent()), run(b.coordinateDescent()));
    // The seeded guided search too — including a repeat on the same
    // instance (the schedule memo must not change results).
    const ParetoFrontier sa1 = run(a.anneal());
    const ParetoFrontier sa2 = run(a.anneal());
    const ParetoFrontier sb = run(b.anneal());
    EXPECT_EQ(sa1, sa2);
    EXPECT_EQ(sa1, sb);
}

TEST(Explorer, DifferentSeedsExploreDifferently)
{
    ExplorerConfig ec = testConfig();
    Explorer a(tinyBundle(), HwConfigSpace::defaultSpace(), ec);
    const DseResult r7 = a.anneal();
    // Annealing is stochastic in the seed: a different seed prices
    // a different point set (the frontier may or may not coincide).
    ExplorerConfig ec2 = ec;
    ec2.seed = 8;
    Explorer b(tinyBundle(), HwConfigSpace::defaultSpace(), ec2);
    const DseResult r8 = b.anneal();
    EXPECT_NE(r7.frontier.seed, r8.frontier.seed);
    EXPECT_GT(r7.evaluated, 0u);
    EXPECT_GT(r8.evaluated, 0u);
}

TEST(Explorer, FindsConfigDominatingTheDefaultAccelerator)
{
    // The headline acceptance criterion: for DeiT-Tiny @ 90%
    // sparsity the explorer finds a configuration *strictly* faster
    // than the default accel::ViTCoDConfig at equal-or-lower area
    // proxy — the space trades the oversized S buffer for MAC lines
    // and bandwidth the workload can actually use.
    Explorer ex(tinyBundle(), HwConfigSpace::defaultSpace(),
                testConfig());
    const Objectives base = ex.baseline();
    const DseResult r = ex.exhaustive();

    bool dominating = false;
    for (const DsePoint &p : r.frontier.points())
        if (p.obj.latencySeconds < base.latencySeconds &&
            p.obj.areaMm2 <= base.areaMm2)
            dominating = true;
    EXPECT_TRUE(dominating)
        << "no frontier point beats the default config";

    // Guided search finds a strictly-dominating point too, at a
    // fraction of the grid evaluations.
    const DseResult sa = ex.anneal();
    EXPECT_LT(sa.evaluated, r.evaluated / 2);
    bool sa_dominating = false;
    for (const DsePoint &p : sa.frontier.points())
        if (p.obj.latencySeconds < base.latencySeconds &&
            p.obj.areaMm2 <= base.areaMm2)
            sa_dominating = true;
    EXPECT_TRUE(sa_dominating);
}

TEST(Explorer, WeightedBundleAggregatesObjectives)
{
    std::vector<WorkloadSpec> both = {
        {"DeiT-Tiny", 0.9, true, false, 1.0},
        {"DeiT-Tiny", 0.9, true, false, 2.0}};
    Explorer one(tinyBundle(), HwConfigSpace::smokeSpace(),
                 testConfig());
    Explorer three(both, HwConfigSpace::smokeSpace(), testConfig());
    // Same task at weights 1 + 2 == 3x the single-task objectives;
    // area does not depend on the bundle.
    const Objectives o1 = one.baseline();
    const Objectives o3 = three.baseline();
    EXPECT_DOUBLE_EQ(o3.latencySeconds, 3.0 * o1.latencySeconds);
    EXPECT_DOUBLE_EQ(o3.energyJoules, 3.0 * o1.energyJoules);
    EXPECT_DOUBLE_EQ(o3.areaMm2, o1.areaMm2);
}

TEST(Explorer, PipelinedModeSweepsFifoDepthAxis)
{
    // Under SimMode::Pipelined the FIFO-depth axis becomes a real
    // latency knob: on a starved DRAM a shallow FIFO costs cycles a
    // deep one saves, so the exhaustive frontier must carry at least
    // one point from the depth axis, and every pipelined latency
    // must bound its analytic twin from above. The depth axis rides
    // on memoized schedules (pricing-only), so evaluation count
    // equals the valid grid size without schedule rebuilds.
    // Depth 1 clamps to single-item capacity (no cross-item
    // prefetch); 1024 chunks of 1 KiB hold two items, restoring the
    // analytic double-buffer overlap. End-to-end scope: the dense
    // block's back-to-back loaded phases (proj -> outproj -> mlp)
    // are where prefetch depth can matter at all — in the attention
    // group every cross-item edge is already structurally gated.
    const std::vector<WorkloadSpec> bundle = {
        {"DeiT-Tiny", 0.9, true, true, 1.0}};
    HwConfigSpace space = HwConfigSpace::smokeSpace();
    space.bandwidthGBps = {12.8};
    space.pipeFifoDepth = {1, 1024};
    space.pipeStageLatency = {0, 16};
    space.base.pipeline.fifoChunkBytes = 1024;

    ExplorerConfig pc = testConfig();
    pc.simMode = sim::SimMode::Pipelined;
    Explorer pipelined(bundle, space, pc);
    Explorer analytic(bundle, space, testConfig());

    const DseResult rp = pipelined.exhaustive();
    const DseResult ra = analytic.exhaustive();
    ASSERT_FALSE(rp.frontier.points().empty());

    bool depth_axis_on_frontier = false;
    for (const DsePoint &p : rp.frontier.points())
        if (p.hw.pipeFifoDepth != space.pipeFifoDepth.front() ||
            p.hw.pipeStageLatency != 0)
            depth_axis_on_frontier = true;
    EXPECT_TRUE(depth_axis_on_frontier)
        << "pipelined frontier ignored the FIFO-depth axis";

    for (size_t i = 0; i < space.size(); ++i) {
        if (!space.valid(i))
            continue;
        EXPECT_GE(pipelined.evaluateIndex(i).obj.latencySeconds,
                  analytic.evaluateIndex(i).obj.latencySeconds)
            << "point " << i << " priced below the analytic bound";
    }

    // The depth knob is a real latency lever under backpressure:
    // same point, shallow vs deep FIFO, strictly slower shallow.
    std::vector<size_t> shallow(HwConfigSpace::kAxes, 0);
    std::vector<size_t> deep = shallow;
    deep[7] = 1;
    EXPECT_LT(pipelined.evaluateIndex(space.encode(deep))
                  .obj.latencySeconds,
              pipelined.evaluateIndex(space.encode(shallow))
                  .obj.latencySeconds);

    // Determinism holds in pipelined mode too.
    Explorer again(bundle, space, pc);
    EXPECT_EQ(again.exhaustive().frontier, rp.frontier);
}

TEST(ExplorerGolden, FrontierMatchesCheckedInFixture)
{
    // Pinned: DeiT-Tiny @ 90% on the smoke grid, exhaustive. Any
    // diff means the pricing model (Schedule IR, simulator, area
    // proxy) changed and must be intentional.
    Explorer ex(tinyBundle(), HwConfigSpace::smokeSpace(),
                testConfig());
    const DseResult r = ex.exhaustive();
    const std::string path = dataDir() + kFrontierGolden;

    if (g_update_goldens)
        r.frontier.writeJsonFile(path);

    // Round-trip exactness first, then the golden comparison.
    std::stringstream ss;
    r.frontier.writeJson(ss);
    EXPECT_EQ(ParetoFrontier::readJson(ss), r.frontier);

    const ParetoFrontier golden =
        ParetoFrontier::readJsonFile(path);
    EXPECT_EQ(golden, r.frontier)
        << "frontier diverged from " << path
        << " (regenerate with --update-goldens if intentional)";
}

} // namespace
} // namespace vitcod::dse

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--update-goldens")
            vitcod::dse::g_update_goldens = true;
    return RUN_ALL_TESTS();
}
