/**
 * @file
 * HwConfigSpace tests: mixed-radix indexing round-trips, config
 * materialization onto the base, validity rules, axis validation,
 * and monotonicity of the area proxy in every resource it counts.
 */

#include <gtest/gtest.h>

#include "dse/design_space.h"

namespace vitcod::dse {
namespace {

TEST(HwConfigSpace, SizeIsAxisProduct)
{
    const HwConfigSpace s = HwConfigSpace::defaultSpace();
    size_t expect = 1;
    for (size_t a = 0; a < HwConfigSpace::kAxes; ++a)
        expect *= s.axisSize(a);
    EXPECT_EQ(s.size(), expect);
    EXPECT_EQ(HwConfigSpace{}.size(), 1u);
}

TEST(HwConfigSpace, EncodeDecodeRoundTripsEveryIndex)
{
    const HwConfigSpace s = HwConfigSpace::defaultSpace();
    for (size_t i = 0; i < s.size(); ++i) {
        const std::vector<size_t> d = s.decode(i);
        ASSERT_EQ(d.size(), HwConfigSpace::kAxes);
        EXPECT_EQ(s.encode(d), i);
    }
}

TEST(HwConfigSpace, ConfigAtMaterializesAxesOntoBase)
{
    HwConfigSpace s;
    s.macLines = {32, 64};
    s.aeLines = {8, 16};
    s.bandwidthGBps = {38.4, 76.8};
    s.base.name = "tuned";
    s.base.freqGhz = 1.0;

    std::vector<size_t> d(HwConfigSpace::kAxes, 0);
    d[0] = 1; // macLines = 64
    d[2] = 1; // aeLines = 16
    d[6] = 1; // bandwidth = 76.8
    const accel::ViTCoDConfig cfg = s.configAt(s.encode(d));
    EXPECT_EQ(cfg.macArray.macLines, 64u);
    EXPECT_EQ(cfg.aeLines, 16u);
    EXPECT_DOUBLE_EQ(cfg.dram.bandwidthGBps, 76.8);
    // Non-swept knobs come from the base, untouched.
    EXPECT_EQ(cfg.name, "tuned");
    EXPECT_DOUBLE_EQ(cfg.freqGhz, 1.0);
    EXPECT_EQ(cfg.qkvBufBytes, s.qkvBufBytes[0]);
}

TEST(HwConfigSpace, ValidRejectsAeEatingTheArray)
{
    HwConfigSpace s;
    s.macLines = {16, 64};
    s.aeLines = {16};
    // macLines must exceed aeLines (accelerator ctor invariant).
    std::vector<size_t> d(HwConfigSpace::kAxes, 0);
    EXPECT_FALSE(s.valid(s.encode(d)));
    d[0] = 1;
    EXPECT_TRUE(s.valid(s.encode(d)));
}

TEST(HwConfigSpace, ValidateRejectsBadAxes)
{
    HwConfigSpace empty;
    empty.macLines = {};
    EXPECT_DEATH(empty.validate(), "empty axis");

    HwConfigSpace frac;
    frac.sparserLineFrac = {1.0};
    EXPECT_DEATH(frac.validate(), "sparserLineFrac");

    HwConfigSpace dead;
    dead.macLines = {8};
    dead.aeLines = {16};
    EXPECT_DEATH(dead.validate(), "no valid point");

    EXPECT_NO_FATAL_FAILURE(HwConfigSpace::defaultSpace().validate());
    EXPECT_NO_FATAL_FAILURE(HwConfigSpace::smokeSpace().validate());
}

TEST(AreaProxy, MonotoneInEveryResource)
{
    const accel::ViTCoDConfig base;
    const double a0 = areaProxyMm2(base);
    EXPECT_GT(a0, 0.0);

    accel::ViTCoDConfig more = base;
    more.macArray.macLines *= 2;
    EXPECT_GT(areaProxyMm2(more), a0);

    more = base;
    more.aeLines += 8;
    EXPECT_GT(areaProxyMm2(more), a0);

    more = base;
    more.sBufferBytes += 64 * 1024;
    EXPECT_GT(areaProxyMm2(more), a0);

    more = base;
    more.qkvBufBytes /= 2;
    EXPECT_LT(areaProxyMm2(more), a0);

    more = base;
    more.dram.bandwidthGBps *= 2;
    EXPECT_GT(areaProxyMm2(more), a0);
}

TEST(AreaProxy, ScalesWithModelConstants)
{
    const accel::ViTCoDConfig cfg;
    AreaModel m;
    const double a0 = areaProxyMm2(cfg, m);
    m.macUm2 *= 2;
    m.sramUm2PerByte *= 2;
    m.ioUm2PerGBps *= 2;
    EXPECT_DOUBLE_EQ(areaProxyMm2(cfg, m), 2.0 * a0);
}

} // namespace
} // namespace vitcod::dse
