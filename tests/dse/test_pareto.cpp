/**
 * @file
 * Pareto-frontier tests: dominance semantics, the non-dominated-set
 * invariant under any insertion order, deterministic sorting, exact
 * JSON round-trips (metadata, workloads, 17-digit doubles), CSV
 * shape, and parser rejection of malformed documents.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "dse/pareto.h"
#include "support/temp_path.h"

namespace vitcod::dse {
namespace {

DsePoint
point(size_t index, double lat, double energy, double area)
{
    DsePoint p;
    p.index = index;
    p.hw.macLines = 32 + index;
    p.obj = {lat, energy, area};
    return p;
}

TEST(Dominance, StrictOnAtLeastOneObjective)
{
    const Objectives a{1.0, 1.0, 1.0};
    const Objectives better_lat{0.5, 1.0, 1.0};
    const Objectives tradeoff{0.5, 2.0, 1.0};
    EXPECT_TRUE(dominates(better_lat, a));
    EXPECT_FALSE(dominates(a, better_lat));
    EXPECT_FALSE(dominates(tradeoff, a));
    EXPECT_FALSE(dominates(a, tradeoff));
    // Equal vectors dominate in neither direction.
    EXPECT_FALSE(dominates(a, a));
}

TEST(ParetoFrontier, KeepsExactlyTheNonDominatedSet)
{
    ParetoFrontier f;
    EXPECT_TRUE(f.insert(point(0, 2.0, 2.0, 2.0)));
    // Dominated by #0 on every objective: rejected.
    EXPECT_FALSE(f.insert(point(1, 3.0, 3.0, 3.0)));
    // Trade-off against #0: kept.
    EXPECT_TRUE(f.insert(point(2, 1.0, 3.0, 2.0)));
    // Dominates #0: replaces it.
    EXPECT_TRUE(f.insert(point(3, 1.5, 1.5, 1.5)));

    ASSERT_EQ(f.points().size(), 2u);
    // Sorted by latency ascending.
    EXPECT_EQ(f.points()[0].index, 2u);
    EXPECT_EQ(f.points()[1].index, 3u);
    EXPECT_EQ(f.bestLatency().index, 2u);

    // Mutual non-dominance invariant.
    for (const DsePoint &a : f.points())
        for (const DsePoint &b : f.points())
            EXPECT_FALSE(dominates(a.obj, b.obj));

    EXPECT_FALSE(f.nonDominated({9.0, 9.0, 9.0}));
    EXPECT_TRUE(f.nonDominated({0.1, 9.0, 9.0}));
}

TEST(ParetoFrontier, InsertionOrderDoesNotMatter)
{
    const std::vector<DsePoint> pts = {
        point(0, 2.0, 2.0, 2.0), point(1, 3.0, 3.0, 3.0),
        point(2, 1.0, 3.0, 2.0), point(3, 1.5, 1.5, 1.5),
        point(4, 1.0, 3.0, 2.0)}; // same objectives as #2: coexists

    ParetoFrontier fwd, rev;
    for (const DsePoint &p : pts)
        fwd.insert(p);
    for (auto it = pts.rbegin(); it != pts.rend(); ++it)
        rev.insert(*it);
    EXPECT_EQ(fwd.points(), rev.points());
    // Equal-cost distinct configs both survive, deterministically
    // ordered by index.
    ASSERT_EQ(fwd.points().size(), 3u);
    EXPECT_EQ(fwd.points()[0].index, 2u);
    EXPECT_EQ(fwd.points()[1].index, 4u);
}

TEST(ParetoFrontier, DuplicatePointIsRejected)
{
    ParetoFrontier f;
    EXPECT_TRUE(f.insert(point(7, 1.0, 1.0, 1.0)));
    EXPECT_FALSE(f.insert(point(7, 1.0, 1.0, 1.0)));
    EXPECT_EQ(f.points().size(), 1u);
}

TEST(ParetoJson, RoundTripsExactly)
{
    ParetoFrontier f;
    f.algorithm = "anneal";
    f.seed = 42;
    f.evaluated = 17;
    f.workloads = {{"DeiT-Tiny", 0.9, true, false, 1.0},
                   {"LeViT-128", 0.8, false, true, 1.0 / 3.0}};
    DsePoint a = point(3, 1.0 / 3.0, 2.625e-5, 2.87672e0);
    a.hw.sparserLineFrac = 0.3;
    a.hw.bandwidthGBps = 76.8;
    DsePoint b = point(11, 0.1, 1e-7, 9.999999999999999e2);
    f.insert(a);
    f.insert(b);

    std::stringstream ss;
    f.writeJson(ss);
    const ParetoFrontier back = ParetoFrontier::readJson(ss);
    EXPECT_EQ(back, f);

    // File form too (PID-unique path per TESTING.md).
    const std::string path = test::uniqueTempPath("frontier.json");
    f.writeJsonFile(path);
    EXPECT_EQ(ParetoFrontier::readJsonFile(path), f);
    std::remove(path.c_str());
}

TEST(ParetoJson, EmptyFrontierRoundTrips)
{
    ParetoFrontier f;
    f.algorithm = "exhaustive";
    std::stringstream ss;
    f.writeJson(ss);
    const ParetoFrontier back = ParetoFrontier::readJson(ss);
    EXPECT_EQ(back, f);
    EXPECT_TRUE(back.points().empty());
}

TEST(ParetoJson, RejectsGarbage)
{
    std::stringstream not_json("pareto? no.");
    EXPECT_DEATH((void)ParetoFrontier::readJson(not_json),
                 "parse error");

    std::stringstream wrong_tag(
        "{\"format\": \"something-else\", \"version\": 1}");
    EXPECT_DEATH((void)ParetoFrontier::readJson(wrong_tag),
                 "format");
}

TEST(ParetoCsv, OneHeaderOneRowPerPoint)
{
    ParetoFrontier f;
    f.insert(point(0, 2.0, 2.0, 2.0));
    f.insert(point(2, 1.0, 3.0, 2.0));
    std::stringstream ss;
    f.writeCsv(ss);
    std::string line;
    size_t lines = 0;
    while (std::getline(ss, line))
        ++lines;
    EXPECT_EQ(lines, 1u + f.points().size());
    std::stringstream again;
    f.writeCsv(again);
    std::getline(again, line);
    EXPECT_EQ(line.substr(0, 15), "index,mac_lines");
}

} // namespace
} // namespace vitcod::dse
