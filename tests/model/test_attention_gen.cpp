/**
 * @file
 * Tests of the synthetic attention-map generator: the statistical
 * properties Algorithm 1 depends on (row normalization, diagonal
 * concentration, global-token columns, determinism).
 */

#include <gtest/gtest.h>

#include "model/attention_gen.h"

namespace vitcod::model {
namespace {

TEST(AttentionGen, RowsSumToOne)
{
    const AttentionMapGenerator gen(deitTiny());
    const linalg::Matrix a = gen.generate(0, 0);
    ASSERT_EQ(a.rows(), 197u);
    for (size_t r = 0; r < a.rows(); ++r) {
        double sum = 0.0;
        for (size_t c = 0; c < a.cols(); ++c) {
            ASSERT_GE(a(r, c), 0.0f);
            sum += a(r, c);
        }
        EXPECT_NEAR(sum, 1.0, 1e-4) << "row " << r;
    }
}

TEST(AttentionGen, Deterministic)
{
    const AttentionMapGenerator g1(deitSmall());
    const AttentionMapGenerator g2(deitSmall());
    EXPECT_EQ(g1.generate(3, 2), g2.generate(3, 2));
}

TEST(AttentionGen, DifferentHeadsDiffer)
{
    const AttentionMapGenerator gen(deitSmall());
    EXPECT_NE(gen.generate(0, 0), gen.generate(0, 1));
    EXPECT_NE(gen.generate(0, 0), gen.generate(1, 0));
}

TEST(AttentionGen, SeedChangesMaps)
{
    AttentionGenConfig a;
    a.seed = 1;
    AttentionGenConfig b;
    b.seed = 2;
    const AttentionMapGenerator ga(deitTiny(), a);
    const AttentionMapGenerator gb(deitTiny(), b);
    EXPECT_NE(ga.generate(0, 0), gb.generate(0, 0));
}

TEST(AttentionGen, DiagonalConcentration)
{
    // Early layers must concentrate mass near the diagonal: the mean
    // attention within |i-j|<=10 should far exceed the background.
    const AttentionMapGenerator gen(deitBase());
    const linalg::Matrix a = gen.generate(0, 0);
    const size_t n = a.rows();
    double near = 0.0, far = 0.0;
    size_t near_cnt = 0, far_cnt = 0;
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < n; ++c) {
            const size_t d = r > c ? r - c : c - r;
            if (d <= 10) {
                near += a(r, c);
                ++near_cnt;
            } else if (d >= 50) {
                far += a(r, c);
                ++far_cnt;
            }
        }
    }
    EXPECT_GT((near / near_cnt) / (far / far_cnt), 5.0);
}

TEST(AttentionGen, ClsColumnIsGlobal)
{
    // Column 0 (CLS) should carry far more mass than the median
    // column in every layer.
    const AttentionMapGenerator gen(deitSmall());
    for (size_t l : {size_t{0}, size_t{6}, size_t{11}}) {
        const linalg::Matrix a = gen.generate(l, 0);
        const size_t n = a.rows();
        double cls = 0.0, mid = 0.0;
        for (size_t r = 0; r < n; ++r) {
            cls += a(r, 0);
            mid += a(r, n / 3 + 1);
        }
        EXPECT_GT(cls, 3.0 * mid) << "layer " << l;
    }
}

TEST(AttentionGen, DeeperLayersMoreGlobalMass)
{
    const AttentionMapGenerator gen(deitBase());
    auto off_diag_mass = [&](size_t layer) {
        const linalg::Matrix a = gen.generate(layer, 0);
        double m = 0.0;
        for (size_t r = 0; r < a.rows(); ++r)
            for (size_t c = 0; c < a.cols(); ++c)
                if ((r > c ? r - c : c - r) > 20)
                    m += a(r, c);
        return m / static_cast<double>(a.rows());
    };
    EXPECT_GT(off_diag_mass(11), off_diag_mass(0));
}

TEST(AttentionGen, LeViTStageTokenCounts)
{
    const AttentionMapGenerator gen(levit128());
    EXPECT_EQ(gen.tokens(0), 196u);
    EXPECT_EQ(gen.tokens(5), 49u);
    EXPECT_EQ(gen.tokens(10), 16u);
    const linalg::Matrix a = gen.generate(10, 0);
    EXPECT_EQ(a.rows(), 16u);
}

TEST(AttentionGen, ShapesMatchModel)
{
    const AttentionMapGenerator gen(levit192());
    EXPECT_EQ(gen.shapes().size(), 12u);
    EXPECT_EQ(gen.model().name, "LeViT-192");
}

} // namespace
} // namespace vitcod::model
